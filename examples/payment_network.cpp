// Payment-network extension demo (the paper's §VIII future work): five
// motes in a mesh route payments through each other's channels, a node
// drops offline mid-experiment, and a depleted channel is rebalanced
// Revive-style without touching the main chain.
//
//   $ ./examples/payment_network
#include <cstdio>

#include "network/payment_network.hpp"

using namespace tinyevm;

namespace {
network::Address addr(std::uint8_t id) {
  network::Address a{};
  a[19] = id;
  return a;
}
}  // namespace

int main() {
  // Mesh: car - lot - hub - charger, with a backup path car - meter - hub.
  const auto car = addr(1);
  const auto lot = addr(2);
  const auto hub = addr(3);
  const auto charger = addr(4);
  const auto meter = addr(5);

  network::PaymentNetwork net;
  net.open_channel(car, lot, U256{500}, U256{0});
  net.open_channel(lot, hub, U256{500}, U256{100});
  net.open_channel(hub, charger, U256{500}, U256{0});
  net.open_channel(car, meter, U256{300}, U256{0});
  net.open_channel(meter, hub, U256{300}, U256{0});
  net.open_channel(hub, lot, U256{50}, U256{50});  // parallel thin channel

  std::printf("mesh: car-lot-hub-charger with car-meter-hub backup\n\n");

  // 1. Multi-hop payment: the car pays the EV charger through the mesh.
  auto outcome = net.pay(car, charger, U256{120});
  std::printf("car -> charger, 120 wei: %s over %zu hops"
              " (%zu signature rounds)\n",
              outcome.success ? "ok" : outcome.failure.c_str(),
              outcome.hops, outcome.signature_rounds);
  std::printf("  lot forwarded %llu HTLC(s); hub forwarded %llu\n",
              static_cast<unsigned long long>(net.stats(lot).htlcs_forwarded),
              static_cast<unsigned long long>(net.stats(hub).htlcs_forwarded));

  // 2. The lot's mote goes offline; routing falls back to the meter path.
  net.set_offline(lot, true);
  outcome = net.pay(car, charger, U256{80});
  std::printf("\nlot offline; car -> charger, 80 wei: %s over %zu hops\n",
              outcome.success ? "ok" : outcome.failure.c_str(),
              outcome.hops);
  std::printf("  expired HTLCs so far: %llu (locks through the dead hop)\n",
              static_cast<unsigned long long>(net.htlcs_expired()));
  net.set_offline(lot, false);

  // 3. Nearly drain the direct car->meter channel, then shift capacity
  //    back around the mesh (Revive-style, no on-chain transaction).
  for (int i = 0; i < 4; ++i) {
    (void)net.pay(car, meter, U256{50});
  }
  std::printf("\ncar -> meter channel nearly drained"
              " (car outbound total: %s wei)\n",
              net.outbound_capacity(car).to_decimal().c_str());
  const bool rebalanced = net.rebalance(car, U256{60});
  std::printf("rebalance 60 wei around a cycle: %s\n",
              rebalanced ? "ok" : "no cycle with capacity");
  std::printf("car outbound capacity after rebalance: %s wei\n",
              net.outbound_capacity(car).to_decimal().c_str());

  std::printf("\ntotal HTLCs created: %llu, expired: %llu\n",
              static_cast<unsigned long long>(net.htlcs_created()),
              static_cast<unsigned long long>(net.htlcs_expired()));
  return 0;
}
