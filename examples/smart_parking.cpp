// The paper's motivating scenario end-to-end (Figures 1 & 2): a smart car
// parks at a sensor-equipped lot.
//
//   Phase 1 — the parking company publishes the Template contract on the
//             (simulated) main chain; the car locks a deposit.
//   Phase 2 — car and lot meet over low-power radio, open an off-chain
//             channel by executing the template on their local TinyEVMs
//             (the constructor samples the occupancy sensor via opcode
//             0x0c), and exchange signed hourly payments.
//   Phase 3 — the lot commits the final doubly-signed state on-chain,
//             the challenge period runs, and funds settle.
//
//   $ ./examples/smart_parking
#include <cstdio>

#include "chain/template_contract.hpp"
#include "device/offchain_round.hpp"

using namespace tinyevm;

int main() {
  // --- Phase 1: on-chain setup -------------------------------------
  chain::Blockchain mainnet;
  const auto car_key = channel::PrivateKey::from_seed("smart-car");
  const auto lot_key = channel::PrivateKey::from_seed("parking-lot");
  mainnet.credit(car_key.address(), U256{1'000'000});
  mainnet.credit(lot_key.address(), U256{1'000'000});

  chain::Address template_addr{};
  template_addr[19] = 0x7A;
  auto owned = std::make_unique<chain::TemplateContract>(
      mainnet, template_addr, lot_key.address(), /*challenge_period=*/20);
  chain::TemplateContract* tmpl = owned.get();
  mainnet.register_native(template_addr, std::move(owned));

  std::printf("=== Phase 1: on-chain template ===\n");
  tmpl->deposit(car_key.address(), U256{5'000}, U256{500});
  const auto channel_id = tmpl->create_payment_channel(car_key.address());
  std::printf("car locked 5000 wei (500 insurance); channel id %s"
              " (logical clock %llu)\n",
              channel_id->to_decimal().c_str(),
              static_cast<unsigned long long>(tmpl->logical_clock()));

  // --- Phase 2: off-chain channel between two motes ------------------
  std::printf("\n=== Phase 2: off-chain payments (TinyEVM on both motes) ===\n");
  device::Mote car_mote("car");
  device::Mote lot_mote("lot");
  channel::ChannelEndpoint car("car", car_key, tmpl->genesis_anchor());
  channel::ChannelEndpoint lot("lot", lot_key, tmpl->genesis_anchor());
  car.sensors().set_reading(7, U256{1});  // occupancy sensor: occupied
  lot.sensors().set_reading(7, U256{1});

  device::OffchainRound round(car_mote, lot_mote, car, lot);
  const auto result =
      round.run(*channel_id, /*hourly rate=*/U256{150}, /*sensor=*/7,
                /*payments=*/3);
  if (!result.ok) {
    std::printf("off-chain round failed\n");
    return 1;
  }
  std::printf("3 hourly payments signed; paid_total = %s wei, final seq %llu\n",
              result.paid_total.to_decimal().c_str(),
              static_cast<unsigned long long>(result.sequence));
  std::printf("payment latency %.0f ms, full round %.0f ms, energy %.1f mJ\n",
              result.timing.payment_latency_us / 1000.0,
              result.timing.total_us / 1000.0,
              car_mote.energest().total_energy_mj());

  // --- Phase 3: on-chain commit & settlement ------------------------
  std::printf("\n=== Phase 3: on-chain commit & challenge period ===\n");
  const auto final_state = lot.final_state();
  const auto commit_status = tmpl->on_chain_commit(*final_state);
  std::printf("lot commits final state: %s\n",
              std::string(chain::to_string(commit_status)).c_str());

  tmpl->request_exit(lot_key.address(), *channel_id);
  std::printf("exit requested; challenge window open for 20 blocks\n");
  mainnet.mine_blocks(21);

  const U256 lot_before = mainnet.balance_of(lot_key.address());
  tmpl->finalize(*channel_id);
  const U256 lot_after = mainnet.balance_of(lot_key.address());
  std::printf("challenge window passed; finalize pays the lot %s wei\n",
              (lot_after - lot_before).to_decimal().c_str());
  std::printf("car balance after refund: %s wei\n",
              mainnet.balance_of(car_key.address()).to_decimal().c_str());
  std::printf("side-chain sum tree total: %s wei across %zu commits\n",
              tmpl->side_chain_root().sum.to_decimal().c_str(),
              static_cast<std::size_t>(1));
  return 0;
}
