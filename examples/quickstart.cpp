// Quickstart: assemble a contract, run it on the TinyEVM profile, read a
// sensor from bytecode, and inspect the execution statistics.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "channel/manager.hpp"
#include "evm/asm.hpp"
#include "evm/vm.hpp"

using namespace tinyevm;

int main() {
  // 1. A mote with a temperature sensor (device id 7).
  channel::SensorBank sensors;
  sensors.set_reading(7, U256{22});
  channel::DeviceHost host(sensors, evm::VmConfig::tiny());

  // 2. Assemble a contract: price = sensor_reading * 3 + 10, store it,
  //    return it. The 0x0c SENSOR opcode is TinyEVM's IoT extension.
  evm::Assembler prog;
  prog.sensor(7, /*actuate=*/false, U256{0});  // push temperature
  prog.push(3).op(evm::Opcode::MUL);
  prog.push(10).op(evm::Opcode::ADD);
  prog.dup(1);
  prog.push(0x01).op(evm::Opcode::SSTORE);  // slot 1 = price
  prog.push(0).op(evm::Opcode::MSTORE);
  prog.push(32).push(0).op(evm::Opcode::RETURN);

  // 3. Execute on the TinyEVM profile: 96-element stack, 8 KB memory,
  //    1 KB storage, no gas (off-chain execution is free).
  evm::Vm vm{evm::VmConfig::tiny()};
  evm::Message msg;
  msg.code = prog.take();
  const evm::ExecResult result = vm.execute(host, msg);

  if (!result.ok()) {
    std::printf("execution failed: %s\n",
                std::string(evm::to_string(result.status)).c_str());
    return 1;
  }

  const U256 price = U256::from_bytes(result.output);
  std::printf("sensor reading : 22 C\n");
  std::printf("computed price : %s wei/hour\n", price.to_decimal().c_str());
  std::printf("stored slot 1  : %s\n",
              host.sload(msg.self, U256{1}).to_decimal().c_str());
  std::printf("ops executed   : %llu\n",
              static_cast<unsigned long long>(result.stats.ops_executed));
  std::printf("max stack ptr  : %zu elements\n",
              result.stats.max_stack_pointer);
  std::printf("MCU cycles     : %llu (%.2f ms at 32 MHz)\n",
              static_cast<unsigned long long>(result.stats.mcu_cycles),
              static_cast<double>(result.stats.mcu_cycles) / 32'000.0);
  return 0;
}
