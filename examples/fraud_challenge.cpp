// Dispute walk-through (paper §V, "Detection"): the car tries to settle the
// channel on an old, cheap state; the parking lot catches it during the
// challenge period, submits the newer doubly-signed state, and claims the
// insurance. Sequence numbers — not synchronized clocks — decide who wins.
//
//   $ ./examples/fraud_challenge
#include <cstdio>

#include "chain/template_contract.hpp"

using namespace tinyevm;

namespace {

channel::SignedState make_state(const U256& id, std::uint64_t seq,
                                std::uint64_t paid,
                                const channel::PrivateKey& sender,
                                const channel::PrivateKey& receiver) {
  channel::ChannelState s;
  s.channel_id = id;
  s.sequence = seq;
  s.paid_total = U256{paid};
  s.sensor_data = U256{1};
  channel::SignedState out;
  out.state = s;
  out.sender_sig = secp256k1::sign(s.digest(), sender);
  out.receiver_sig = secp256k1::sign(s.digest(), receiver);
  return out;
}

}  // namespace

int main() {
  chain::Blockchain mainnet;
  const auto car = channel::PrivateKey::from_seed("cheating-car");
  const auto lot = channel::PrivateKey::from_seed("honest-lot");
  mainnet.credit(car.address(), U256{100'000});
  mainnet.credit(lot.address(), U256{100'000});

  chain::Address addr{};
  addr[19] = 0xF0;
  auto owned = std::make_unique<chain::TemplateContract>(
      mainnet, addr, lot.address(), /*challenge_period=*/10);
  chain::TemplateContract* tmpl = owned.get();
  mainnet.register_native(addr, std::move(owned));

  tmpl->deposit(car.address(), U256{2'000}, U256{400});
  const U256 id = *tmpl->create_payment_channel(car.address());
  std::printf("channel %s open: 1600 wei budget, 400 wei insurance bond\n",
              id.to_decimal().c_str());

  // Off-chain, the parties signed up to seq 9 for 1,200 wei...
  const auto honest = make_state(id, 9, 1'200, car, lot);
  // ...but the car commits the stale seq-2 state worth only 100 wei.
  const auto stale = make_state(id, 2, 100, car, lot);

  std::printf("\ncar commits stale state: seq %llu, paid %s wei -> %s\n",
              static_cast<unsigned long long>(stale.state.sequence),
              stale.state.paid_total.to_decimal().c_str(),
              std::string(chain::to_string(tmpl->on_chain_commit(stale)))
                  .c_str());
  std::printf("car requests exit (starts the challenge window)\n");
  tmpl->request_exit(car.address(), id);

  mainnet.mine_blocks(3);  // the lot notices within the window

  const U256 lot_before = mainnet.balance_of(lot.address());
  const auto status = tmpl->challenge(lot.address(), honest);
  const U256 lot_after = mainnet.balance_of(lot.address());
  std::printf("\nlot challenges with seq %llu, paid %s wei -> %s\n",
              static_cast<unsigned long long>(honest.state.sequence),
              honest.state.paid_total.to_decimal().c_str(),
              std::string(chain::to_string(status)).c_str());
  std::printf("insurance slashed to the challenger: +%s wei\n",
              (lot_after - lot_before).to_decimal().c_str());

  mainnet.mine_blocks(8);  // window expires
  tmpl->finalize(id);
  std::printf("\nsettlement after the challenge period:\n");
  std::printf("  lot balance: %s wei (received the honest 1,200 + 400 bond)\n",
              mainnet.balance_of(lot.address()).to_decimal().c_str());
  std::printf("  car balance: %s wei (refund minus payment, bond gone)\n",
              mainnet.balance_of(car.address()).to_decimal().c_str());
  std::printf("  channel closed: %s\n",
              tmpl->channel(id)->closed ? "yes" : "no");

  // The reverse attack — replaying the stale state as a challenge — fails.
  std::printf("\nreplaying the stale state as a challenge now: %s\n",
              std::string(chain::to_string(tmpl->challenge(lot.address(),
                                                           stale)))
                  .c_str());
  return 0;
}
