// Sensor & actuator access from contract bytecode — the IoT-opcode story
// (paper §IV-B). A climate-control contract reads the temperature sensor,
// decides a fan setting, and *actuates* it, all inside EVM bytecode via the
// 0x0c opcode. No oracle service involved: the contract talks to the
// device directly.
//
//   $ ./examples/sensor_oracle
#include <cstdio>

#include "channel/manager.hpp"
#include "evm/asm.hpp"
#include "evm/vm.hpp"

using namespace tinyevm;

namespace {
constexpr std::uint32_t kThermometer = 7;
constexpr std::uint32_t kFan = 9;

// Contract: t = SENSOR(thermometer); fan_level = t > 25 ? 3 : 1;
// SENSOR(fan, actuate, fan_level); sstore(0x0c, t); return fan_level.
evm::Bytes climate_contract() {
  evm::Assembler a;
  a.sensor(kThermometer, false, U256{0});     // [t]
  a.dup(1).push(0x0c).op(evm::Opcode::SSTORE);  // Listing-2 pattern
  a.dup(1).push(25).op(evm::Opcode::LT);      // 25 < t  -> hot?
  // if hot jump to HI
  const std::uint64_t kHi = 27;
  a.push_label(kHi).op(evm::Opcode::JUMPI);
  a.push(1);                                  // fan level 1
  const std::uint64_t kOut = 30;
  a.push_label(kOut).op(evm::Opcode::JUMP);
  while (a.size() < kHi) a.op(evm::Opcode::STOP);
  a.label();   // HI
  a.push(3);   // fan level 3
  a.label();   // OUT (kOut)
  // actuate: SENSOR(fan, actuate=1, level) — selector pushed by helper.
  a.dup(1);                                   // keep level for return
  a.swap(1);
  // manual: push param (level) and selector
  a.push((static_cast<std::uint64_t>(kFan) << 1) | 1);
  a.op(evm::Opcode::SENSOR);
  a.op(evm::Opcode::POP);                     // drop actuation ack
  a.push(0).op(evm::Opcode::MSTORE);
  a.push(32).push(0).op(evm::Opcode::RETURN);
  return a.take();
}

U256 run_once(channel::SensorBank& sensors, const evm::Bytes& code) {
  channel::DeviceHost host(sensors, evm::VmConfig::tiny());
  evm::Vm vm{evm::VmConfig::tiny()};
  evm::Message msg;
  msg.code = code;
  const auto r = vm.execute(host, msg);
  if (!r.ok()) {
    std::printf("  execution failed: %s\n",
                std::string(evm::to_string(r.status)).c_str());
    return U256{};
  }
  return U256::from_bytes(r.output);
}

}  // namespace

int main() {
  channel::SensorBank sensors;
  sensors.set_reading(kFan, U256{0});  // fan exists, currently off
  const auto code = climate_contract();
  std::printf("climate contract: %zu bytes of TinyEVM bytecode\n\n",
              code.size());

  for (std::uint64_t temp : {18, 24, 26, 31}) {
    sensors.set_reading(kThermometer, U256{temp});
    const U256 level = run_once(sensors, code);
    std::printf("temperature %2llu C -> fan level %s (actuated: %s)\n",
                static_cast<unsigned long long>(temp),
                level.to_decimal().c_str(),
                sensors.last_actuation(kFan)->to_decimal().c_str());
  }

  std::printf("\nthe same bytecode aborts on a stock EVM —"
              " 0x0c is undefined there:\n");
  channel::DeviceHost host(sensors, evm::VmConfig::ethereum());
  evm::Vm evm_vm{evm::VmConfig::ethereum()};
  evm::Message msg;
  msg.code = code;
  const auto r = evm_vm.execute(host, msg);
  std::printf("stock EVM status: %s\n",
              std::string(evm::to_string(r.status)).c_str());
  return 0;
}
