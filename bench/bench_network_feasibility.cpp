// Extension bench — the paper's future-work question (§VIII): are payment
// networks / routing feasible on low-power motes?
//
// Each hop of a multi-hop payment costs two signature rounds (lock +
// settle), and every signature is a 350 ms / 19.1 mJ crypto-engine
// operation on a CC2538. This bench sweeps hop count and link loss and
// reports end-to-end latency, per-mote energy, and battery impact — the
// trade-off a deployment would actually face.
#include <cstdio>
#include <string>

#include "bench_json.hpp"
#include "device/mote.hpp"
#include "network/payment_network.hpp"

using namespace tinyevm;

namespace {

network::Address addr(std::uint8_t id) {
  network::Address a{};
  a[19] = id;
  return a;
}

/// Device-level cost of one multi-hop payment: per the HTLC protocol, the
/// payer does 1 sign + 1 verify; each intermediary does 1 verify + 2 signs
/// (ack the incoming lock, offer the outgoing one) + 1 settle-verify; plus
/// one radio exchange per hop in each phase.
struct HopCosts {
  double latency_ms = 0;
  double payer_energy_mj = 0;
  double intermediary_energy_mj = 0;
};

HopCosts model_payment(unsigned hops, unsigned loss_percent) {
  // Lock phase marches hop by hop to the receiver; settle phase marches
  // back. Simulate the payer and the first intermediary as real motes;
  // remaining hops contribute serialized latency of the same shape.
  device::Mote payer("payer");
  device::Mote fwd("intermediary");
  device::TschLink link(payer, fwd);
  link.set_loss_rate(loss_percent);

  // Payer: build + sign the lock, ship it.
  payer.keccak256_latency();
  payer.ecdsa_sign_latency();
  link.transfer(payer, 300);
  // First intermediary: verify, re-sign the forwarded lock.
  fwd.keccak256_latency();
  fwd.ecdsa_verify_latency();
  fwd.ecdsa_sign_latency();

  const std::uint64_t one_hop_us = std::max(payer.now_us(), fwd.now_us());
  // Settle leg per hop: reveal message + settlement signature + verify.
  device::Mote s_payer("payer-settle");
  device::Mote s_fwd("fwd-settle");
  device::TschLink settle_link(s_payer, s_fwd);
  settle_link.set_loss_rate(loss_percent);
  settle_link.transfer(s_fwd, 120);
  s_fwd.ecdsa_sign_latency();
  s_payer.ecdsa_verify_latency();
  const std::uint64_t settle_us = std::max(s_payer.now_us(), s_fwd.now_us());

  HopCosts costs;
  costs.latency_ms =
      static_cast<double>(one_hop_us) / 1000.0 * hops +
      static_cast<double>(settle_us) / 1000.0 * hops;
  costs.payer_energy_mj = payer.energest().total_energy_mj() +
                          s_payer.energest().total_energy_mj();
  costs.intermediary_energy_mj = fwd.energest().total_energy_mj() +
                                 s_fwd.energest().total_energy_mj();
  return costs;
}

}  // namespace

int main() {
  std::printf("==============================================================\n");
  std::printf("Extension: payment-network feasibility on low-power motes\n");
  std::printf("==============================================================\n");

  benchjson::Emitter json("network_feasibility");

  // Protocol-level check on a line topology: signatures really scale 2/hop.
  std::printf("\nprotocol signature count (line topology, 1 payment):\n");
  for (unsigned hops : {1u, 2u, 4u, 8u}) {
    network::PaymentNetwork net;
    for (unsigned i = 0; i < hops; ++i) {
      net.open_channel(addr(static_cast<std::uint8_t>(i + 1)),
                       addr(static_cast<std::uint8_t>(i + 2)), U256{1000},
                       U256{0});
    }
    const auto outcome =
        net.pay(addr(1), addr(static_cast<std::uint8_t>(hops + 1)), U256{10});
    std::printf("  %u hop(s): success=%s  signature rounds=%zu\n", hops,
                outcome.success ? "yes" : "no", outcome.signature_rounds);
    json.metric("signature_rounds_hops_" + std::to_string(hops),
                outcome.signature_rounds);
  }

  std::printf("\ndevice-model cost per payment (CC2538, lossless link):\n");
  std::printf("  %-6s %12s %16s %20s\n", "hops", "latency", "payer energy",
              "per-intermediary");
  for (unsigned hops : {1u, 2u, 3u, 5u, 8u}) {
    const auto c = model_payment(hops, 0);
    std::printf("  %-6u %9.0f ms %13.1f mJ %17.1f mJ\n", hops, c.latency_ms,
                c.payer_energy_mj, c.intermediary_energy_mj);
    json.metric("latency_ms_hops_" + std::to_string(hops), c.latency_ms);
    json.metric("payer_energy_mj_hops_" + std::to_string(hops),
                c.payer_energy_mj);
    json.metric("intermediary_energy_mj_hops_" + std::to_string(hops),
                c.intermediary_energy_mj);
  }

  std::printf("\nlossy-link sensitivity (3 hops):\n");
  std::printf("  %-10s %12s\n", "loss", "latency");
  for (unsigned loss : {0u, 10u, 30u, 50u}) {
    const auto c = model_payment(3, loss);
    std::printf("  %7u %%  %9.0f ms\n", loss, c.latency_ms);
    json.metric("latency_ms_3hops_loss_" + std::to_string(loss) + "pct",
                c.latency_ms);
  }

  std::printf("\nconclusion: each hop adds ~2 crypto-engine signatures\n"
              "(~0.7 s, ~38 mJ across the route); direct channels stay the\n"
              "right default for IoT, multi-hop is affordable for occasional\n"
              "payments — consistent with the paper deferring networks to\n"
              "future work.\n");
  return 0;
}
