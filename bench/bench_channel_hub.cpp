// Channel-hub server throughput: 1k (default; TINYEVM_BENCH_HUB_10K=1 for
// 10k) concurrent client endpoints driving payment rounds — real ECDSA
// sign/countersign/recover per round — against one ChannelHub, swept over
// worker counts. Reports rounds/s, p50/p99 per-request service latency,
// and the translation-cache shard contention counters that motivated the
// lock-striped CodeCache.
//
// Environment knobs:
//   TINYEVM_BENCH_HUB_SESSIONS  concurrent channels per run (default 1000)
//   TINYEVM_BENCH_HUB_ROUNDS    payment rounds per channel (default 1)
//   TINYEVM_BENCH_HUB_10K       also run a 10,000-session sweep point
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "channel/manager.hpp"
#include "evm/code_cache.hpp"
#include "obs/metrics.hpp"
#include "runtime/thread_pool.hpp"

namespace {

using namespace tinyevm;
using namespace tinyevm::channel;
using Clock = std::chrono::steady_clock;

constexpr std::uint32_t kDev = 7;
const U256 kRate{10};

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  const long parsed = std::atol(raw);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

std::uint32_t percentile(std::vector<std::uint32_t>& sorted_us, double p) {
  if (sorted_us.empty()) return 0;
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted_us.size() - 1));
  return sorted_us[rank];
}

struct RunResult {
  bool ok = false;
  double opens_per_s = 0;
  double rounds_per_s = 0;   // hub-side service throughput, payment phase
  double closes_per_s = 0;
  std::uint32_t p50_us = 0;  // per-request payment service latency
  std::uint32_t p99_us = 0;
  std::uint32_t q50_us = 0;  // per-request queue wait before dispatch
  std::uint32_t q99_us = 0;
  double client_s = 0;       // endpoint-side sign/verify time (context)
  evm::CodeCache::Stats cache;
  std::uint64_t contention_max_shard = 0;
};

RunResult run_sweep_point(std::size_t sessions, std::size_t rounds,
                          std::size_t workers) {
  RunResult result;
  ChannelHub::Config config;
  config.workers = workers;
  config.code_cache = std::make_shared<evm::CodeCache>();
  ChannelHub hub("hub", PrivateKey::from_seed("hub-key"),
                 keccak256("hub-bench-anchor"), config);
  hub.set_sensor_default(kDev, U256{21});

  std::vector<ChannelEndpoint> cars;
  cars.reserve(sessions);
  std::vector<HubRequest> opens;
  opens.reserve(sessions);
  auto client_start = Clock::now();
  for (std::size_t i = 0; i < sessions; ++i) {
    cars.emplace_back("car-" + std::to_string(i),
                      PrivateKey::from_seed("car-" + std::to_string(i)),
                      keccak256("hub-bench-anchor"));
    cars.back().sensors().set_reading(kDev, U256{22});
    const auto open = cars.back().open_request(U256{i + 1}, kRate, kDev);
    if (!open) return result;
    opens.push_back(*open);
  }
  result.client_s += seconds_since(client_start);

  auto hub_start = Clock::now();
  for (const auto& response : hub.handle_batch(opens)) {
    if (!response.ok()) return result;
  }
  result.opens_per_s =
      static_cast<double>(sessions) / seconds_since(hub_start);

  std::vector<std::uint32_t> service_us;
  service_us.reserve(sessions * rounds);
  std::vector<std::uint32_t> queue_us;
  queue_us.reserve(sessions * rounds);
  double payment_hub_s = 0;
  for (std::size_t r = 0; r < rounds; ++r) {
    client_start = Clock::now();
    std::vector<HubRequest> updates;
    updates.reserve(sessions);
    for (auto& car : cars) {
      auto update = car.propose_payment(U256{r % 4 + 1});
      if (!update) return result;
      updates.push_back(std::move(*update));
    }
    result.client_s += seconds_since(client_start);

    hub_start = Clock::now();
    const auto responses = hub.handle_batch(updates);
    payment_hub_s += seconds_since(hub_start);

    client_start = Clock::now();
    for (std::size_t i = 0; i < sessions; ++i) {
      if (!responses[i].ok() || !cars[i].apply(responses[i])) return result;
      service_us.push_back(responses[i].service_us);
      queue_us.push_back(responses[i].queue_us);
    }
    result.client_s += seconds_since(client_start);
  }
  result.rounds_per_s =
      static_cast<double>(sessions * rounds) / payment_hub_s;
  std::sort(service_us.begin(), service_us.end());
  result.p50_us = percentile(service_us, 0.50);
  result.p99_us = percentile(service_us, 0.99);
  std::sort(queue_us.begin(), queue_us.end());
  result.q50_us = percentile(queue_us, 0.50);
  result.q99_us = percentile(queue_us, 0.99);

  std::vector<HubRequest> closes;
  closes.reserve(sessions);
  for (auto& car : cars) closes.push_back(car.close_request());
  hub_start = Clock::now();
  for (const auto& response : hub.handle_batch(closes)) {
    if (!response.ok()) return result;
  }
  result.closes_per_s =
      static_cast<double>(sessions) / seconds_since(hub_start);

  if (!hub.audit_all()) return result;
  result.cache = hub.code_cache()->stats();
  for (std::size_t s = 0; s < hub.code_cache()->shard_count(); ++s) {
    result.contention_max_shard =
        std::max(result.contention_max_shard,
                 hub.code_cache()->shard_stats(s).lock_contentions);
  }
  result.ok = true;
  return result;
}

}  // namespace

int main() {
  const std::size_t sessions = env_size("TINYEVM_BENCH_HUB_SESSIONS", 1000);
  const std::size_t rounds = env_size("TINYEVM_BENCH_HUB_ROUNDS", 1);
  const std::size_t hw = runtime::ThreadPool::hardware_threads();

  std::vector<std::size_t> worker_sweep{1, 2, 4, hw};
  std::sort(worker_sweep.begin(), worker_sweep.end());
  worker_sweep.erase(std::unique(worker_sweep.begin(), worker_sweep.end()),
                     worker_sweep.end());

  std::printf("==========================================================\n");
  std::printf("Channel hub: %zu sessions x %zu payment rounds, real ECDSA\n",
              sessions, rounds);
  std::printf("==========================================================\n");
  std::printf("hardware threads: %zu\n\n", hw);

  benchjson::Emitter json("channel_hub");
  json.metric("sessions", static_cast<double>(sessions));
  json.metric("rounds", static_cast<double>(rounds));
  json.metric("hardware_threads", static_cast<double>(hw));

  bool all_ok = true;
  double w1_rounds_per_s = 0;
  double wmax_rounds_per_s = 0;
  for (const std::size_t workers : worker_sweep) {
    const RunResult r = run_sweep_point(sessions, rounds, workers);
    if (!r.ok) {
      std::printf("workers=%zu: RUN FAILED\n", workers);
      all_ok = false;
      continue;
    }
    if (workers == 1) w1_rounds_per_s = r.rounds_per_s;
    wmax_rounds_per_s = r.rounds_per_s;
    const double speedup =
        w1_rounds_per_s > 0 ? r.rounds_per_s / w1_rounds_per_s : 0;
    std::printf(
        "workers=%zu  rounds/s %7.1f (%.2fx w1)  p50 %6u us  p99 %6u us\n"
        "           queue-wait p50 %6u us  p99 %6u us\n"
        "           opens/s %7.1f  closes/s %7.1f  client-side %.2f s\n"
        "           cache: %llu hits / %llu misses, %llu contended locks "
        "(max shard %llu) over %zu shards\n",
        workers, r.rounds_per_s, speedup, r.p50_us, r.p99_us, r.q50_us,
        r.q99_us, r.opens_per_s, r.closes_per_s, r.client_s,
        static_cast<unsigned long long>(r.cache.hits),
        static_cast<unsigned long long>(r.cache.misses),
        static_cast<unsigned long long>(r.cache.lock_contentions),
        static_cast<unsigned long long>(r.contention_max_shard),
        r.cache.shards);

    const std::string prefix = "w" + std::to_string(workers) + "_";
    json.metric(prefix + "rounds_per_s", r.rounds_per_s);
    json.metric(prefix + "speedup_vs_w1", speedup);
    json.metric(prefix + "round_p50_us", r.p50_us);
    json.metric(prefix + "round_p99_us", r.p99_us);
    json.metric(prefix + "queue_p50_us", r.q50_us);
    json.metric(prefix + "queue_p99_us", r.q99_us);
    json.metric(prefix + "opens_per_s", r.opens_per_s);
    json.metric(prefix + "closes_per_s", r.closes_per_s);
    json.metric(prefix + "client_side_s", r.client_s);
    json.metric(prefix + "cache_hits", static_cast<double>(r.cache.hits));
    json.metric(prefix + "cache_misses",
                static_cast<double>(r.cache.misses));
    json.metric(prefix + "cache_lock_contentions",
                static_cast<double>(r.cache.lock_contentions));
    json.metric(prefix + "cache_contention_max_shard",
                static_cast<double>(r.contention_max_shard));
    json.metric(prefix + "cache_shards",
                static_cast<double>(r.cache.shards));
  }

  // Telemetry cost at the hub level: the same sweep point with the full
  // metrics layer recording (per-request counters, histograms, spans'
  // metric side). The delta against the disabled default run above is the
  // real-world cost of leaving --metrics on in production.
  {
    obs::set_metrics_enabled(true);
    const RunResult r = run_sweep_point(sessions, rounds, worker_sweep.back());
    obs::set_metrics_enabled(false);
    if (r.ok && wmax_rounds_per_s > 0) {
      const double overhead_pct =
          (wmax_rounds_per_s - r.rounds_per_s) / wmax_rounds_per_s * 100.0;
      std::printf(
          "\nmetrics enabled (workers=%zu): rounds/s %7.1f "
          "(overhead %+.2f%% vs disabled)\n",
          worker_sweep.back(), r.rounds_per_s, overhead_pct);
      json.metric("obs_enabled_rounds_per_s", r.rounds_per_s);
      json.metric("obs_overhead_pct", overhead_pct);
    } else if (!r.ok) {
      std::printf("\nmetrics-enabled sweep point: RUN FAILED\n");
      all_ok = false;
    }
  }

  if (std::getenv("TINYEVM_BENCH_HUB_10K") != nullptr) {
    std::printf("\n10k-session sweep point (workers=%zu):\n", hw);
    const RunResult r = run_sweep_point(10'000, 1, hw);
    if (r.ok) {
      std::printf("  rounds/s %7.1f  p50 %6u us  p99 %6u us\n",
                  r.rounds_per_s, r.p50_us, r.p99_us);
      json.metric("s10k_rounds_per_s", r.rounds_per_s);
      json.metric("s10k_round_p50_us", r.p50_us);
      json.metric("s10k_round_p99_us", r.p99_us);
    } else {
      std::printf("  RUN FAILED\n");
      all_ok = false;
    }
  }

  if (!all_ok) {
    std::fprintf(stderr, "bench_channel_hub: a sweep point failed\n");
    return 1;
  }
  return 0;
}
