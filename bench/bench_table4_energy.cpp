// Table IV: energy of one complete off-chain signing round on the CC2538
// model (2.1 V supply). Runs the real protocol (TinyEVM execution + real
// secp256k1 signatures) between two simulated motes and prints the derived
// per-state time/current/energy split next to the paper's numbers, plus the
// battery-lifetime estimate of paper Sec. VI-C.
#include <cstdio>

#include "bench_json.hpp"
#include "device/offchain_round.hpp"

int main() {
  using namespace tinyevm::device;

  Mote car_mote("smart-car");
  Mote lot_mote("parking-lot");
  tinyevm::channel::ChannelEndpoint car(
      "car", tinyevm::channel::PrivateKey::from_seed("car-key"),
      tinyevm::keccak256("bench-anchor"));
  tinyevm::channel::ChannelEndpoint lot(
      "lot", tinyevm::channel::PrivateKey::from_seed("lot-key"),
      tinyevm::keccak256("bench-anchor"));
  car.sensors().set_reading(7, tinyevm::U256{22});
  lot.sensors().set_reading(7, tinyevm::U256{21});

  OffchainRound round(car_mote, lot_mote, car, lot);
  const RoundResult result =
      round.run(tinyevm::U256{1}, tinyevm::U256{10}, 7, /*payments=*/1);
  if (!result.ok) {
    std::printf("round failed!\n");
    return 1;
  }

  std::printf("=========================================================\n");
  std::printf("Table IV: energy of the off-chain signing round (car mote)\n");
  std::printf("=========================================================\n\n");
  const auto& e = car_mote.energest();
  std::printf("  %-26s %10s %10s %10s\n", "State", "Time ms", "mA",
              "Energy mJ");
  const PowerState states[] = {PowerState::CryptoEngine, PowerState::Tx,
                               PowerState::Rx, PowerState::CpuActive,
                               PowerState::Lpm2};
  for (PowerState s : states) {
    std::printf("  %-26s %10.0f %10.1f %10.1f\n",
                std::string(to_string(s)).c_str(), e.time_ms(s),
                current_ma(s), e.energy_mj(s));
  }
  std::printf("  %-26s %10.0f %10s %10.1f\n", "Total",
              static_cast<double>(e.total_time_us()) / 1000.0, "-",
              e.total_energy_mj());

  std::printf("\n  paper reference:  crypto 350 ms/19.1 mJ, TX 32 ms/1.6 mJ,"
              " RX 52 ms/2.1 mJ,\n"
              "                    CPU 150 ms/4.1 mJ, LPM2 982 ms/2.7 mJ,"
              " total 1,566 ms/29.6 mJ\n");

  // Headline: payer-side payment latency (sign + ship + register).
  std::printf("\n  off-chain payment latency: %.0f ms (paper: 584 ms average)\n",
              static_cast<double>(result.timing.payment_latency_us) / 1000.0);
  std::printf("  full round             : %.0f ms\n",
              static_cast<double>(result.timing.total_us) / 1000.0);

  // Battery estimate (paper Sec. VI-C): 2 AA cells ~ 10 kJ.
  const double round_mj = e.total_energy_mj();
  const double payments = 10'000'000.0 / round_mj;
  std::printf("\n  battery life: %.0f payments per 10 kJ battery"
              " (paper: ~333,000)\n",
              payments);
  std::printf("  at 1 payment / 10 min: %.1f years (paper: > 6 years)\n",
              payments * 10.0 / 60.0 / 24.0 / 365.0);

  tinyevm::benchjson::Emitter json("table4_energy");
  json.metric("crypto_engine_ms", e.time_ms(PowerState::CryptoEngine));
  json.metric("crypto_engine_mj", e.energy_mj(PowerState::CryptoEngine));
  json.metric("tx_ms", e.time_ms(PowerState::Tx));
  json.metric("tx_mj", e.energy_mj(PowerState::Tx));
  json.metric("rx_ms", e.time_ms(PowerState::Rx));
  json.metric("rx_mj", e.energy_mj(PowerState::Rx));
  json.metric("cpu_active_ms", e.time_ms(PowerState::CpuActive));
  json.metric("cpu_active_mj", e.energy_mj(PowerState::CpuActive));
  json.metric("lpm2_ms", e.time_ms(PowerState::Lpm2));
  json.metric("lpm2_mj", e.energy_mj(PowerState::Lpm2));
  json.metric("round_total_ms",
              static_cast<double>(e.total_time_us()) / 1000.0);
  json.metric("round_total_mj", round_mj);
  json.metric("payment_latency_ms",
              static_cast<double>(result.timing.payment_latency_us) / 1000.0);
  json.metric("payments_per_10kj_battery", payments);
  json.metric("battery_years_at_1_per_10min",
              payments * 10.0 / 60.0 / 24.0 / 365.0);
  return 0;
}
