// Baseline comparison — IoT opcode vs the oracle pattern (paper §II-B).
//
// The status quo the paper argues against: a contract cannot read a sensor,
// so the reading travels  mote --radio--> gateway --tx--> oracle contract
// on the main chain, and the consumer contract reads it back in a second
// transaction. TinyEVM's alternative is one local opcode.
//
// This bench runs both paths on the same substrate and reports latency,
// energy on the mote, and on-chain fees — quantifying the gap the paper
// motivates qualitatively.
#include <cstdio>

#include "abi/abi.hpp"
#include "bench_json.hpp"
#include "chain/chain.hpp"
#include "channel/manager.hpp"
#include "device/mote.hpp"
#include "evm/asm.hpp"

using namespace tinyevm;

namespace {

/// Path A: TinyEVM IoT opcode — contract samples the sensor locally.
struct LocalResult {
  double latency_ms;
  double energy_mj;
  U256 reading;
};

LocalResult run_local_opcode() {
  device::Mote mote("sensor-mote");
  channel::SensorBank sensors;
  sensors.set_reading(7, U256{22});
  channel::DeviceHost host(sensors, evm::VmConfig::tiny());

  evm::Assembler prog;
  prog.sensor(7, false, U256{0});
  prog.push(0x0c).op(evm::Opcode::SSTORE);
  prog.push(0x0c).op(evm::Opcode::SLOAD);
  prog.push(0).op(evm::Opcode::MSTORE);
  prog.push(32).push(0).op(evm::Opcode::RETURN);

  evm::Vm vm{evm::VmConfig::tiny()};
  evm::Message msg;
  msg.code = prog.take();
  const auto r = vm.execute(host, msg);
  mote.spend_cpu_cycles(r.stats.mcu_cycles);

  return LocalResult{static_cast<double>(mote.now_us()) / 1000.0,
                     mote.energest().total_energy_mj(),
                     U256::from_bytes(r.output)};
}

/// Path B: oracle round-trip. The mote radios the reading to a gateway
/// (signed), the gateway submits it to an oracle contract on the main
/// chain, a block confirms, and the consumer contract SLOADs it.
struct OracleResult {
  double mote_latency_ms;
  double mote_energy_mj;
  double end_to_end_s;
  U256 fees_paid;
  U256 reading;
};

OracleResult run_oracle_path() {
  // -- mote side: sign the reading, radio it to the gateway --
  device::Mote mote("sensor-mote");
  device::Mote gateway("gateway");
  device::TschLink uplink(mote, gateway);
  mote.keccak256_latency();
  mote.ecdsa_sign_latency();  // the oracle requires attributable data
  uplink.transfer(mote, 150);

  // -- chain side: oracle contract stores the reading --
  chain::Blockchain mainnet;
  const auto gw_key = channel::PrivateKey::from_seed("gateway");
  mainnet.credit(gw_key.address(), U256{10'000'000});

  // Oracle contract: sstore(key, calldata[0..32]); reader returns it.
  evm::Assembler oracle;
  oracle.push(0).op(evm::Opcode::CALLDATALOAD);
  oracle.push(1).op(evm::Opcode::SSTORE);
  oracle.op(evm::Opcode::STOP);
  chain::Transaction deploy;
  deploy.data = evm::Assembler::deployer(oracle.take());
  const auto deployed = mainnet.submit(gw_key, deploy);

  chain::Transaction update;
  update.to = deployed->contract_address;
  update.data.assign(32, 0);
  update.data[31] = 22;
  const auto updated = mainnet.submit(gw_key, update);
  mainnet.mine_block();  // confirmation

  // Consumer read (another transaction in the general case).
  evm::Assembler reader;
  reader.push(1).op(evm::Opcode::SLOAD);
  reader.push(0).op(evm::Opcode::MSTORE);
  reader.push(32).push(0).op(evm::Opcode::RETURN);
  // (The consumer contract would CALL the oracle; a direct storage read
  // keeps the fee accounting conservative — the real path costs more.)
  const U256 reading =
      mainnet.storage_at(deployed->contract_address, U256{1});

  OracleResult out;
  out.mote_latency_ms = static_cast<double>(mote.now_us()) / 1000.0;
  out.mote_energy_mj = mote.energest().total_energy_mj();
  // End-to-end: mote path + gateway backhaul (~100 ms) + one block
  // confirmation (15 s nominal).
  out.end_to_end_s = out.mote_latency_ms / 1000.0 + 0.1 + 15.0;
  out.fees_paid = deployed->fee_paid + updated->fee_paid;
  out.reading = reading;
  return out;
}

}  // namespace

int main() {
  std::printf("==============================================================\n");
  std::printf("Baseline: IoT opcode (TinyEVM) vs oracle round-trip\n");
  std::printf("==============================================================\n");

  const auto local = run_local_opcode();
  const auto oracle = run_oracle_path();

  std::printf("\n  %-28s %16s %16s\n", "", "IoT opcode", "oracle path");
  std::printf("  %-28s %13.2f ms %13.0f ms\n", "mote-side latency",
              local.latency_ms, oracle.mote_latency_ms);
  std::printf("  %-28s %13.2f mJ %13.1f mJ\n", "mote-side energy",
              local.energy_mj, oracle.mote_energy_mj);
  std::printf("  %-28s %13.2f ms %13.1f s\n", "sensor-to-contract latency",
              local.latency_ms, oracle.end_to_end_s);
  std::printf("  %-28s %16s %16s\n", "on-chain fees (wei)", "0",
              oracle.fees_paid.to_decimal().c_str());
  std::printf("  %-28s %16s %16s\n", "reading delivered",
              local.reading.to_decimal().c_str(),
              oracle.reading.to_decimal().c_str());

  std::printf("\n  the oracle path needs a signature + radio + gateway +\n"
              "  two on-chain transactions + a block confirmation before a\n"
              "  contract can *price* anything off the sensor; the IoT\n"
              "  opcode does it in-place for ~%.0fx less mote energy and\n"
              "  ~%.0fx lower latency.\n",
              oracle.mote_energy_mj / local.energy_mj,
              oracle.end_to_end_s * 1000.0 / local.latency_ms);

  benchjson::Emitter json("oracle_baseline");
  json.metric("iot_opcode_latency_ms", local.latency_ms);
  json.metric("iot_opcode_energy_mj", local.energy_mj);
  json.metric("oracle_mote_latency_ms", oracle.mote_latency_ms);
  json.metric("oracle_mote_energy_mj", oracle.mote_energy_mj);
  json.metric("oracle_end_to_end_s", oracle.end_to_end_s);
  json.text("oracle_fees_wei", oracle.fees_paid.to_decimal());
  json.metric("energy_advantage_x", oracle.mote_energy_mj / local.energy_mj);
  json.metric("latency_advantage_x",
              oracle.end_to_end_s * 1000.0 / local.latency_ms);
  return 0;
}
