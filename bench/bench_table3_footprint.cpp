// Table III: memory footprint of TinyEVM on the CC2538 (32 KB RAM / 512 KB
// ROM). OS rows come from the Contiki-NG calibration constants; the TinyEVM
// row is computed from the configured VM arenas; the template row is the
// actual payment-channel bytecode this repository assembles.
#include <cctype>
#include <cstdio>

#include "bench_json.hpp"
#include "channel/template_bytecode.hpp"
#include "device/footprint.hpp"

int main() {
  using namespace tinyevm::device;

  // The deployed template: the paper reports 2,035 B for its evaluation
  // contract; ours is the assembled payment-channel init code plus the
  // per-channel storage arena it claims when instantiated.
  const auto init_code = tinyevm::channel::payment_channel_init_code(7);
  const auto runtime = tinyevm::channel::payment_channel_runtime();
  const auto template_ram =
      static_cast<std::uint32_t>(init_code.size() + 1024 /* channel slots */);

  const auto report = footprint_report(tinyevm::evm::VmConfig::tiny(),
                                       template_ram);

  std::printf("=========================================================\n");
  std::printf("Table III: memory footprint on CC2538 (32 KB RAM / 512 KB ROM)\n");
  std::printf("=========================================================\n\n");
  std::printf("  %-26s %10s %8s %10s %8s\n", "Component", "RAM B", "RAM %",
              "ROM B", "ROM %");
  for (const auto& row : report.rows) {
    std::printf("  %-26s %10u %7.0f%% %10u %7.0f%%\n", row.component.c_str(),
                row.ram_bytes, row.ram_percent(), row.rom_bytes,
                row.rom_percent());
  }
  const auto total = report.total();
  const auto avail = report.available();
  std::printf("  %-26s %10u %7.0f%% %10u %7.0f%%\n", total.component.c_str(),
              total.ram_bytes, total.ram_percent(), total.rom_bytes,
              total.rom_percent());
  std::printf("  %-26s %10u %7.0f%% %10u %7.0f%%\n", avail.component.c_str(),
              avail.ram_bytes, avail.ram_percent(), avail.rom_bytes,
              avail.rom_percent());

  std::printf("\n  paper reference: Contiki-NG 10,394 B RAM (33%%) / 40,527 B"
              " ROM (10%%)\n");
  std::printf("                   TinyEVM   13,286 B RAM (42%%) /  1,937 B"
              " ROM (1%%)\n");
  std::printf("                   Template   2,035 B RAM (5%%)\n");
  std::printf("                   Total     25,715 B RAM (80%%) / 53,239 B"
              " ROM (11%%)\n");
  std::printf("\n  assembled template bytecode: %zu B init (%zu B runtime)\n",
              init_code.size(), runtime.size());

  tinyevm::benchjson::Emitter json("table3_footprint");
  for (const auto& row : report.rows) {
    std::string slug;
    for (char c : row.component) {
      slug += (std::isalnum(static_cast<unsigned char>(c)) != 0)
                  ? static_cast<char>(std::tolower(static_cast<unsigned char>(c)))
                  : '_';
    }
    json.metric(slug + "_ram_bytes", row.ram_bytes);
    json.metric(slug + "_rom_bytes", row.rom_bytes);
  }
  json.metric("total_ram_bytes", total.ram_bytes);
  json.metric("total_ram_pct", total.ram_percent());
  json.metric("total_rom_bytes", total.rom_bytes);
  json.metric("total_rom_pct", total.rom_percent());
  json.metric("available_ram_bytes", avail.ram_bytes);
  json.metric("available_rom_bytes", avail.rom_bytes);
  json.metric("template_init_bytes", init_code.size());
  json.metric("template_runtime_bytes", runtime.size());
  return 0;
}
