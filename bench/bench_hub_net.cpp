// Networked-hub throughput: the full socket path — LoadGenerator clients
// running real-ECDSA payment rounds over localhost TCP against a
// HubServer/ChannelHub — swept over connection counts up to 10,000.
// Reports end-to-end rounds/s and the split between end-to-end latency
// (client send → response applied) and hub-side service/queue time, plus
// the backpressure counters (which must stay zero below capacity).
//
// Process layout: the client runs in a forked child, the server in the
// parent. Two reasons: (a) the per-process fd ceiling — 10k sessions need
// ~10k server-side fds *and* ~10k client-side fds, which only fit when
// split across two processes; (b) the measurement is honest — client and
// server share nothing but the socket. Each sweep point forks while the
// parent is still (again) single-threaded, so fork never races server
// threads; the port travels down a pipe, the child's report travels back
// up another.
//
// Environment knobs:
//   TINYEVM_BENCH_NET_WORKERS  hub worker threads (default 2)
//   TINYEVM_BENCH_NET_10K      0 skips the 10,000-connection point
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "channel/hub.hpp"
#include "evm/code_cache.hpp"
#include "net/client.hpp"
#include "net/server.hpp"

namespace {

using namespace tinyevm;
using Clock = std::chrono::steady_clock;

constexpr std::uint32_t kDev = 7;

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  const long parsed = std::atol(raw);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

bool env_flag(const char* name, bool fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  return std::atoi(raw) != 0;
}

std::uint32_t percentile(std::vector<std::uint32_t>& sorted_us, double p) {
  if (sorted_us.empty()) return 0;
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted_us.size() - 1));
  return sorted_us[rank];
}

/// What the client child sends back up its pipe: counts plus percentiles
/// computed child-side (the raw latency vectors stay in the child).
struct ChildReport {
  std::uint64_t connections_done = 0;
  std::uint64_t rounds_done = 0;
  std::uint64_t busy_retries = 0;
  std::uint64_t failures = 0;
  std::uint64_t connect_failures = 0;
  double elapsed_s = 0;
  std::uint32_t e2e_p50_us = 0;
  std::uint32_t e2e_p99_us = 0;
  std::uint32_t service_p50_us = 0;
  std::uint32_t service_p99_us = 0;
  std::uint32_t queue_p50_us = 0;
  std::uint32_t queue_p99_us = 0;
};

bool read_full(int fd, void* buf, std::size_t len) {
  auto* p = static_cast<std::uint8_t*>(buf);
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::read(fd, p + off, len - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

bool write_full(int fd, const void* buf, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, p + off, len - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

/// The forked client: wait for the port, run the load, report, _exit.
[[noreturn]] void run_client_child(int port_rd, int report_wr,
                                   std::size_t connections,
                                   std::size_t rounds, bool close_channels) {
  std::uint16_t port = 0;
  if (!read_full(port_rd, &port, sizeof(port))) ::_exit(2);
  ::close(port_rd);

  net::LoadGenerator::Config config;
  config.port = port;
  config.connections = connections;
  config.rounds = rounds;
  config.close_channels = close_channels;
  config.onchain_root = keccak256("hub-net-bench-anchor");
  const auto start = Clock::now();
  auto report = net::LoadGenerator(config).run();

  ChildReport out;
  out.connections_done = report.connections_done;
  out.rounds_done = report.rounds_done;
  out.busy_retries = report.busy_retries;
  out.failures = report.failures;
  out.connect_failures = report.connect_failures;
  out.elapsed_s = std::chrono::duration<double>(Clock::now() - start).count();
  std::sort(report.e2e_us.begin(), report.e2e_us.end());
  out.e2e_p50_us = percentile(report.e2e_us, 0.50);
  out.e2e_p99_us = percentile(report.e2e_us, 0.99);
  std::sort(report.service_us.begin(), report.service_us.end());
  out.service_p50_us = percentile(report.service_us, 0.50);
  out.service_p99_us = percentile(report.service_us, 0.99);
  std::sort(report.queue_us.begin(), report.queue_us.end());
  out.queue_p50_us = percentile(report.queue_us, 0.50);
  out.queue_p99_us = percentile(report.queue_us, 0.99);

  write_full(report_wr, &out, sizeof(out));
  ::close(report_wr);
  ::_exit(0);
}

struct SweepResult {
  bool ok = false;
  ChildReport client;
  net::HubServer::Stats server;
  std::uint64_t hub_payments = 0;
};

SweepResult run_sweep_point(std::size_t connections, std::size_t rounds,
                            bool close_channels, std::size_t workers) {
  SweepResult result;

  int port_pipe[2];
  int report_pipe[2];
  if (::pipe(port_pipe) != 0 || ::pipe(report_pipe) != 0) return result;

  // Fork before the server spins up its threads: at this point the
  // process is single-threaded (previous sweep points joined everything),
  // so the child inherits a clean world.
  std::fflush(stdout);
  const pid_t child = ::fork();
  if (child < 0) return result;
  if (child == 0) {
    ::close(port_pipe[1]);
    ::close(report_pipe[0]);
    run_client_child(port_pipe[0], report_pipe[1], connections, rounds,
                     close_channels);
  }
  ::close(port_pipe[0]);
  ::close(report_pipe[1]);

  {
    channel::ChannelHub::Config hub_config;
    hub_config.workers = workers;
    hub_config.code_cache = std::make_shared<evm::CodeCache>();
    channel::ChannelHub hub("net-bench",
                            channel::PrivateKey::from_seed("hub-key"),
                            keccak256("hub-net-bench-anchor"), hub_config);
    hub.set_sensor_default(kDev, U256{21});

    net::HubServer::Config server_config;
    server_config.name = "net-bench";
    net::HubServer server(hub, server_config);
    const std::uint16_t port = server.bind();
    std::thread serve_thread([&server] { server.serve(); });

    bool handshake_ok = write_full(port_pipe[1], &port, sizeof(port));
    ::close(port_pipe[1]);

    // The child's report arriving is the load-complete signal.
    const bool report_ok =
        handshake_ok &&
        read_full(report_pipe[0], &result.client, sizeof(result.client));
    ::close(report_pipe[0]);

    server.request_stop();
    serve_thread.join();
    result.server = server.stats();
    result.hub_payments = hub.stats().payments;
    result.ok = report_ok && hub.audit_all();
  }

  int status = 0;
  ::waitpid(child, &status, 0);
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) result.ok = false;
  return result;
}

}  // namespace

int main() {
  const std::size_t workers = env_size("TINYEVM_BENCH_NET_WORKERS", 2);
  const bool with_10k = env_flag("TINYEVM_BENCH_NET_10K", true);

  struct Point {
    std::size_t connections;
    std::size_t rounds;
    bool close_channels;
  };
  // Sized to this class of hardware: every round costs one client-side
  // ECDSA sign + verify and one hub-side countersign, so total rounds —
  // not concurrency — dominates wall clock. Large points skip the close
  // phase (3 ms of hub VM each) to keep the sweep affordable.
  std::vector<Point> sweep{
      {64, 16, true},
      {512, 4, true},
      {2048, 1, false},
  };
  if (with_10k) sweep.push_back({10000, 1, false});

  std::printf("==========================================================\n");
  std::printf("Networked hub: LoadGenerator over localhost TCP, %zu workers\n",
              workers);
  std::printf("==========================================================\n\n");

  benchjson::Emitter json("hub_net");
  json.metric("workers", static_cast<double>(workers));
  json.metric("sweep_points", static_cast<double>(sweep.size()));

  bool all_ok = true;
  for (const auto& point : sweep) {
    const SweepResult r = run_sweep_point(point.connections, point.rounds,
                                          point.close_channels, workers);
    const auto& c = r.client;
    const double rounds_per_s =
        c.elapsed_s > 0 ? static_cast<double>(c.rounds_done) / c.elapsed_s
                        : 0;
    const bool point_ok =
        r.ok && c.connections_done == point.connections &&
        c.rounds_done == point.connections * point.rounds &&
        c.failures == 0 && c.connect_failures == 0 &&
        // Lockstep clients never outrun the per-connection budget, so a
        // healthy steady state sheds nothing.
        c.busy_retries == 0 && r.server.busy_rejections == 0 &&
        r.server.protocol_errors == 0;
    all_ok = all_ok && point_ok;

    std::printf(
        "conns=%-5zu rounds=%-2zu %s  rounds/s %7.1f  elapsed %6.1f s%s\n"
        "            e2e     p50 %7u us  p99 %7u us\n"
        "            service p50 %7u us  p99 %7u us\n"
        "            queue   p50 %7u us  p99 %7u us\n"
        "            busy %llu  failures %llu  frames in/out %llu/%llu\n",
        point.connections, point.rounds, point.close_channels ? "close" : "     ",
        rounds_per_s, c.elapsed_s, point_ok ? "" : "  [FAILED]",
        c.e2e_p50_us, c.e2e_p99_us, c.service_p50_us, c.service_p99_us,
        c.queue_p50_us, c.queue_p99_us,
        static_cast<unsigned long long>(c.busy_retries +
                                        r.server.busy_rejections),
        static_cast<unsigned long long>(c.failures),
        static_cast<unsigned long long>(r.server.frames_in),
        static_cast<unsigned long long>(r.server.frames_out));

    const std::string prefix = "c" + std::to_string(point.connections) + "_";
    json.metric(prefix + "rounds", static_cast<double>(point.rounds));
    json.metric(prefix + "rounds_per_s", rounds_per_s);
    json.metric(prefix + "elapsed_s", c.elapsed_s);
    json.metric(prefix + "e2e_p50_us", c.e2e_p50_us);
    json.metric(prefix + "e2e_p99_us", c.e2e_p99_us);
    json.metric(prefix + "service_p50_us", c.service_p50_us);
    json.metric(prefix + "service_p99_us", c.service_p99_us);
    json.metric(prefix + "queue_p50_us", c.queue_p50_us);
    json.metric(prefix + "queue_p99_us", c.queue_p99_us);
    json.metric(prefix + "busy_rejections",
                static_cast<double>(r.server.busy_rejections));
    json.metric(prefix + "busy_retries",
                static_cast<double>(c.busy_retries));
    json.metric(prefix + "failures", static_cast<double>(c.failures));
    json.metric(prefix + "connections_done",
                static_cast<double>(c.connections_done));
    json.metric(prefix + "hub_payments",
                static_cast<double>(r.hub_payments));
    json.metric(prefix + "frames_in", static_cast<double>(r.server.frames_in));
    json.metric(prefix + "ok", point_ok ? 1 : 0);
  }

  json.metric("all_ok", all_ok ? 1 : 0);
  std::printf("%s\n", all_ok ? "all sweep points ok"
                             : "SOME SWEEP POINTS FAILED");
  return all_ok ? 0 : 1;
}
