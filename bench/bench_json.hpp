// Machine-readable output for the plain (self-timed) benchmarks.
//
// Each driver constructs one Emitter and records its headline numbers right
// next to the printf that shows them. On destruction the emitter writes
// BENCH_<name>.json into $TINYEVM_BENCH_JSON_DIR — the `bench` CMake target
// points that at the repository root — or into the current directory when
// the variable is unset.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace tinyevm::benchjson {

class Emitter {
 public:
  explicit Emitter(std::string name) : name_(std::move(name)) {}

  Emitter(const Emitter&) = delete;
  Emitter& operator=(const Emitter&) = delete;

  /// Record a numeric metric. NaN/inf become JSON null.
  void metric(const std::string& key, double value) {
    entries_.emplace_back(escape(key), format_double(value));
  }

  /// Record a string-valued metric (e.g. big integers beyond double range).
  void text(const std::string& key, const std::string& value) {
    // Built with += rather than operator+ chains: GCC 12's -Wrestrict
    // false-positives on literal + temporary string concatenation (PR105651).
    std::string quoted;
    quoted.reserve(value.size() + 2);
    quoted += '"';
    quoted += escape(value);
    quoted += '"';
    entries_.emplace_back(escape(key), std::move(quoted));
  }

  ~Emitter() {
    const char* dir = std::getenv("TINYEVM_BENCH_JSON_DIR");
    std::string path = (dir && *dir) ? std::string(dir) + "/" : std::string();
    path += "BENCH_" + name_ + ".json";
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "benchjson: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"%s\",\n"
                 "  \"schema\": \"tinyevm-bench-v1\",\n"
                 "  \"metrics\": {\n",
                 name_.c_str());
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      std::fprintf(out, "    \"%s\": %s%s\n", entries_[i].first.c_str(),
                   entries_[i].second.c_str(),
                   i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(out, "  }\n}\n");
    std::fclose(out);
    std::printf("\n[benchjson] wrote %s\n", path.c_str());
  }

 private:
  static std::string escape(const std::string& raw) {
    std::string out;
    out.reserve(raw.size());
    for (char c : raw) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buffer[8];
            std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
            out += buffer;
          } else {
            out += c;
          }
      }
    }
    return out;
  }

  static std::string format_double(double value) {
    if (!std::isfinite(value)) return "null";
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.6g", value);
    return buffer;
  }

  std::string name_;
  std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace tinyevm::benchjson
