// Figures 3a/3b/3c + Table II: deploy the 7,000-contract corpus on the
// TinyEVM device model and report the paper's memory/stack statistics —
// then redo the deployment in parallel at corpus scale.
//
//   paper: 93 % (5,953/7,000) deployable at the 8 KB limit; contract size
//          mean 4,023 B / std 2,899 B / min 28 B / max (deployed) 10,058 B;
//          max SP 41, mean SP 8; deployment time mean 215 ms, std 277 ms.
//
// The paper runs the corpus serially; a production channel hub would not.
// After the serial baseline this driver sweeps worker counts over the
// parallel deployment path (src/corpus/parallel.hpp) asserting the Fig 3
// statistics stay bit-identical, then grows the corpus 10x (and 100x with
// TINYEVM_BENCH_SCALE_100X=1) comparing shared-translation-cache against
// cache-bypass streaming — the unique-code corpus overruns the 8 MiB cache
// cap, so the cached path is pure translate/insert/evict churn.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "corpus/corpus.hpp"
#include "corpus/parallel.hpp"
#include "evm/code_cache.hpp"
#include "runtime/thread_pool.hpp"

namespace {

using tinyevm::corpus::CorpusStats;
using tinyevm::corpus::DeploymentOutcome;
using tinyevm::corpus::Generator;
using tinyevm::corpus::GeneratorConfig;
using tinyevm::corpus::ParallelDeployConfig;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void print_histogram(const char* title, std::vector<double> values,
                     double bucket_width, double max_value,
                     const char* unit) {
  std::printf("\n%s\n", title);
  if (values.empty()) return;
  const std::size_t buckets =
      static_cast<std::size_t>(max_value / bucket_width) + 1;
  std::vector<std::size_t> counts(buckets, 0);
  for (double v : values) {
    const auto b = static_cast<std::size_t>(std::min(v, max_value) /
                                            bucket_width);
    counts[std::min(b, buckets - 1)]++;
  }
  const std::size_t peak = *std::max_element(counts.begin(), counts.end());
  for (std::size_t b = 0; b < buckets; ++b) {
    if (counts[b] == 0) continue;
    const int bars =
        static_cast<int>(60.0 * static_cast<double>(counts[b]) /
                         static_cast<double>(peak));
    std::printf("  %7.0f-%-7.0f %-5s |%-60.*s| %zu\n", b * bucket_width,
                (b + 1) * bucket_width, unit, bars,
                "############################################################",
                counts[b]);
  }
}

void print_summary_row(const char* name, const CorpusStats::Summary& s,
                       const char* unit) {
  std::printf("  %-22s max %10.0f   min %8.0f   mean %9.1f   std %9.1f  [%s]\n",
              name, s.max, s.min, s.mean, s.stddev, unit);
}

/// One timed parallel deployment over a fresh cache (unless bypassing).
struct ParallelRun {
  std::vector<DeploymentOutcome> outcomes;
  double seconds = 0;
  tinyevm::evm::CodeCache::Stats cache;
};

ParallelRun run_parallel(const Generator& generator,
                         const tinyevm::evm::VmConfig& vm_config,
                         std::size_t workers, bool use_cache) {
  ParallelRun run;
  ParallelDeployConfig pcfg;
  pcfg.workers = workers;
  pcfg.use_translation_cache = use_cache;
  if (use_cache) {
    pcfg.code_cache = std::make_shared<tinyevm::evm::CodeCache>();
  }
  const double t0 = now_seconds();
  run.outcomes = deploy_corpus_parallel(generator, vm_config, pcfg);
  run.seconds = now_seconds() - t0;
  if (pcfg.code_cache) run.cache = pcfg.code_cache->stats();
  return run;
}

}  // namespace

int main() {
  std::printf("==============================================================\n");
  std::printf("Figures 3a-3c + Table II: smart-contract deployment corpus\n");
  std::printf("==============================================================\n");

  GeneratorConfig cfg;  // 7,000 contracts, paper seed
  const Generator generator{cfg};
  const auto vm_config = tinyevm::evm::VmConfig::tiny();
  tinyevm::benchjson::Emitter json("fig3_corpus");
  json.metric("hardware_threads",
              static_cast<double>(
                  tinyevm::runtime::ThreadPool::hardware_threads()));

  // --- serial baseline (the paper's experiment, and the reference the
  // parallel runs must reproduce bit-for-bit) -------------------------------
  auto serial_cache = std::make_shared<tinyevm::evm::CodeCache>();
  std::vector<DeploymentOutcome> outcomes;
  outcomes.reserve(cfg.count);
  const double serial_t0 = now_seconds();
  for (std::size_t i = 0; i < cfg.count; ++i) {
    outcomes.push_back(tinyevm::corpus::deploy_on_device(
        generator.make(i), vm_config, serial_cache));
  }
  const double serial_seconds = now_seconds() - serial_t0;
  const double serial_rate =
      static_cast<double>(cfg.count) / serial_seconds;
  const CorpusStats stats = tinyevm::corpus::summarize(outcomes);
  json.metric("corpus_size", static_cast<double>(outcomes.size()));
  json.metric("deployed", static_cast<double>(stats.deployed));
  json.metric("deploy_success_rate_pct", stats.success_rate);
  json.metric("serial_deploy_seconds", serial_seconds);
  json.metric("serial_deploys_per_sec", serial_rate);

  // --- headline (Fig 3a caption) ---
  std::printf("\nDeployment success at the 8 KB memory limit\n");
  std::printf("  paper   : 93%% (5,953 of 7,000)\n");
  std::printf("  measured: %.0f%% (%zu of %zu)\n", stats.success_rate,
              stats.deployed, outcomes.size());

  // --- Fig 3a: contract size distribution ---
  std::vector<double> sizes;
  std::vector<double> memories;
  std::vector<double> sps;
  for (const auto& o : outcomes) {
    sizes.push_back(static_cast<double>(o.contract_size));
    if (o.success) {
      memories.push_back(static_cast<double>(o.memory_used));
      sps.push_back(static_cast<double>(o.max_stack_pointer));
    }
  }
  print_histogram("Fig 3a — contract size density (all 7,000)", sizes, 2000,
                  26000, "B");
  print_histogram("Fig 3a — device memory use density (deployed)", memories,
                  1000, 8192, "B");

  // --- Fig 3b: memory vs size (correlation + the outlier observation) ---
  double sum_xy = 0;
  double sum_x = 0;
  double sum_y = 0;
  double sum_x2 = 0;
  double sum_y2 = 0;
  std::size_t n_succ = 0;
  std::size_t mem_exceeds_size = 0;
  std::size_t big_but_deployable = 0;
  for (const auto& o : outcomes) {
    if (!o.success) continue;
    ++n_succ;
    const double x = static_cast<double>(o.contract_size);
    const double y = static_cast<double>(o.memory_used);
    sum_x += x;
    sum_y += y;
    sum_xy += x * y;
    sum_x2 += x * x;
    sum_y2 += y * y;
    if (o.memory_used > o.contract_size) ++mem_exceeds_size;
    if (o.contract_size > 8192) ++big_but_deployable;
  }
  // Pearson r is undefined with no successful deployments (nf == 0 made
  // this 0/0 = NaN) and with zero variance in either variable (all equal
  // values also NaN'd); report 0 / "n/a" instead of NaN in those cases.
  const double nf = static_cast<double>(n_succ);
  const double var_product =
      (nf * sum_x2 - sum_x * sum_x) * (nf * sum_y2 - sum_y * sum_y);
  const bool corr_defined = n_succ > 1 && var_product > 0.0;
  const double corr =
      corr_defined ? (nf * sum_xy - sum_x * sum_y) / std::sqrt(var_product)
                   : 0.0;
  json.metric("memory_vs_size_correlation_r", corr);
  json.metric("deploys_memory_exceeds_size",
              static_cast<double>(mem_exceeds_size));
  json.metric("deployed_contracts_over_8kb",
              static_cast<double>(big_but_deployable));
  std::printf("\nFig 3b — memory usage vs contract size (deployed)\n");
  if (corr_defined) {
    std::printf(
        "  positive correlation (paper: 'positive correlation'): r = %.3f\n",
        corr);
  } else {
    std::printf(
        "  positive correlation (paper: 'positive correlation'): r = n/a "
        "(undefined: %zu deployments)\n",
        n_succ);
  }
  std::printf("  deployments needing more memory than the contract size: %zu"
              " (paper: 'never')\n",
              mem_exceeds_size);
  std::printf("  contracts >8 KB bytecode that still deployed: %zu"
              " (paper: outliers exist)\n",
              big_but_deployable);

  // --- Fig 3c: stack pointer density ---
  print_histogram("Fig 3c — maximum stack pointer density (deployed)", sps, 2,
                  48, "");
  std::size_t sp_le_10 = 0;
  for (double sp : sps) {
    if (sp <= 10) ++sp_le_10;
  }
  // Same zero-denominator hazard as the correlation above.
  const double sp_le_10_pct =
      n_succ == 0 ? 0.0
                  : 100.0 * static_cast<double>(sp_le_10) / nf;
  if (n_succ == 0) {
    std::printf("  deployments with max SP <= 10: n/a (no deployments)\n");
  } else {
    std::printf("  deployments with max SP <= 10: %.0f%% (paper: 'majority')\n",
                sp_le_10_pct);
  }
  json.metric("max_sp_le_10_pct", sp_le_10_pct);

  // --- Table II ---
  std::printf("\nTable II — successfully deployed contracts (measured)\n");
  print_summary_row("Contract Size", stats.contract_size, "B");
  print_summary_row("Stack Pointer", stats.stack_pointer, "elements");
  print_summary_row("Stack", stats.stack_bytes, "B");
  print_summary_row("Memory", stats.memory_bytes, "B");
  print_summary_row("Deployment Time", stats.deploy_time_ms, "ms");
  json.metric("contract_size_mean_bytes", stats.contract_size.mean);
  json.metric("contract_size_std_bytes", stats.contract_size.stddev);
  json.metric("contract_size_max_bytes", stats.contract_size.max);
  json.metric("stack_pointer_mean", stats.stack_pointer.mean);
  json.metric("stack_pointer_max", stats.stack_pointer.max);
  json.metric("memory_mean_bytes", stats.memory_bytes.mean);
  json.metric("memory_max_bytes", stats.memory_bytes.max);
  json.metric("deploy_time_mean_ms", stats.deploy_time_ms.mean);
  json.metric("deploy_time_std_ms", stats.deploy_time_ms.stddev);
  json.metric("deploy_time_max_ms", stats.deploy_time_ms.max);
  std::printf("\nTable II — paper reference\n");
  std::printf("  %-22s max %10s   min %8s   mean %9s   std %9s\n",
              "Contract Size", "10,058", "28", "4,023", "2,899");
  std::printf("  %-22s max %10s   min %8s   mean %9s   std %9s\n",
              "Stack Pointer", "41", "3", "8", "3");
  std::printf("  %-22s max %10s   min %8s   mean %9s   std %9s\n", "Stack",
              "3,056", "768", "2,048", "827");
  std::printf("  %-22s max %10s   min %8s   mean %9s   std %9s\n", "Memory",
              "8,056", "96", "3,676", "2,801");
  std::printf("  %-22s max %10s   min %8s   mean %9s   std %9s\n",
              "Deployment Time", "9,159", "5", "215", "277");

  // --- parallel deployment: worker sweep at paper scale --------------------
  const std::size_t hw = tinyevm::runtime::ThreadPool::hardware_threads();
  std::vector<std::size_t> worker_counts{1, 2, 4, 8};
  if (std::find(worker_counts.begin(), worker_counts.end(), hw) ==
      worker_counts.end()) {
    worker_counts.push_back(hw);
  }
  std::printf("\nParallel deployment — worker sweep, %zu contracts "
              "(serial: %.2f s, %.0f deploys/s, hw threads: %zu)\n",
              cfg.count, serial_seconds, serial_rate, hw);
  std::printf("  %7s %9s %12s %9s %10s %10s %10s %6s\n", "workers", "sec",
              "deploys/s", "speedup", "misses", "evicted", "dup_xlat",
              "exact");
  bool all_identical = true;
  double best_speedup = 0;
  for (const std::size_t workers : worker_counts) {
    const ParallelRun run = run_parallel(generator, vm_config, workers, true);
    const bool identical = run.outcomes == outcomes;
    all_identical = all_identical && identical;
    const double rate = static_cast<double>(cfg.count) / run.seconds;
    const double speedup = serial_seconds / run.seconds;
    best_speedup = std::max(best_speedup, speedup);
    std::printf("  %7zu %9.2f %12.0f %8.2fx %10llu %10llu %10llu %6s\n",
                workers, run.seconds, rate, speedup,
                static_cast<unsigned long long>(run.cache.misses),
                static_cast<unsigned long long>(run.cache.evictions),
                static_cast<unsigned long long>(run.cache.dup_translations),
                identical ? "yes" : "NO");
    const std::string prefix = "parallel_w" + std::to_string(workers);
    json.metric(prefix + "_deploys_per_sec", rate);
    json.metric(prefix + "_speedup_vs_serial", speedup);
    json.metric(prefix + "_identical_to_serial", identical ? 1.0 : 0.0);
    json.metric(prefix + "_cache_misses",
                static_cast<double>(run.cache.misses));
    json.metric(prefix + "_cache_evictions",
                static_cast<double>(run.cache.evictions));
    json.metric(prefix + "_dup_translations",
                static_cast<double>(run.cache.dup_translations));
  }
  json.metric("parallel_outcomes_identical", all_identical ? 1.0 : 0.0);
  json.metric("parallel_best_speedup", best_speedup);
  if (!all_identical) {
    std::printf("  ERROR: a parallel run diverged from the serial "
                "baseline!\n");
  }

  // --- cached vs streaming at paper scale ----------------------------------
  // Nearly every corpus contract is unique code deployed once (the only
  // duplicates are the identical micro-contract stubs every 211 indices,
  // whose tiny entry is evicted long before the next one arrives): at
  // ~100 KB of decoded stream per 4 KB contract the corpus working set
  // overruns the 8 MiB cap thousands of entries deep, so the cached path
  // is a translate/insert/evict cycle per contract. Streaming mode (raw
  // interpreter, no cache traffic) measures what that churn costs under
  // contention — against the decoded stream's payoff *within* one
  // deployment, where looping constructors re-execute each translated
  // instruction thousands of times.
  const std::size_t sweep_max = *std::max_element(worker_counts.begin(),
                                                  worker_counts.end());
  const ParallelRun bypass =
      run_parallel(generator, vm_config, sweep_max, false);
  const bool bypass_identical = bypass.outcomes == outcomes;
  const double bypass_rate =
      static_cast<double>(cfg.count) / bypass.seconds;
  std::printf("\nCache-bypass streaming mode at %zu workers: %.2f s "
              "(%.0f deploys/s, exact: %s)\n",
              sweep_max, bypass.seconds, bypass_rate,
              bypass_identical ? "yes" : "NO");
  json.metric("bypass_deploys_per_sec", bypass_rate);
  json.metric("bypass_identical_to_serial", bypass_identical ? 1.0 : 0.0);

  // --- corpus scale sweep: 10x always, 100x opt-in -------------------------
  std::vector<std::size_t> scales{10};
  if (const char* full = std::getenv("TINYEVM_BENCH_SCALE_100X");
      full != nullptr && *full != '\0' && *full != '0') {
    scales.push_back(100);
  } else {
    std::printf("\n(100x scale sweep skipped — set TINYEVM_BENCH_SCALE_100X=1 "
                "to deploy the 700,000-contract corpus)\n");
  }
  bool scales_identical = true;
  for (const std::size_t scale : scales) {
    GeneratorConfig big = cfg;
    big.count = cfg.count * scale;
    const Generator big_gen{big};
    std::printf("\nCorpus at %zux scale — %zu contracts, %zu workers\n",
                scale, big.count, hw);
    const std::string sp = "scale" + std::to_string(scale);
    const ParallelRun cached = run_parallel(big_gen, vm_config, hw, true);
    const ParallelRun stream = run_parallel(big_gen, vm_config, hw, false);
    // No serial baseline at scale (that is the point), but the two modes
    // execute through different interpreter paths (decoded vs raw loop)
    // and must still agree outcome-for-outcome.
    const bool identical = cached.outcomes == stream.outcomes;
    scales_identical = scales_identical && identical;
    for (const bool use_cache : {true, false}) {
      const ParallelRun& run = use_cache ? cached : stream;
      // Per-mode summary: identical runs give identical stats, and if the
      // modes ever diverge each row must show its own numbers.
      const CorpusStats big_stats = tinyevm::corpus::summarize(run.outcomes);
      const double rate = static_cast<double>(big.count) / run.seconds;
      const char* mode = use_cache ? "cached " : "bypass ";
      std::printf("  %s: %8.2f s  %8.0f deploys/s  success %.1f%%", mode,
                  run.seconds, rate, big_stats.success_rate);
      if (use_cache) {
        std::printf("  (misses %llu, evicted %llu, dup %llu, resident %.1f "
                    "MiB)",
                    static_cast<unsigned long long>(run.cache.misses),
                    static_cast<unsigned long long>(run.cache.evictions),
                    static_cast<unsigned long long>(run.cache.dup_translations),
                    static_cast<double>(run.cache.bytes) / (1024.0 * 1024.0));
      }
      std::printf("\n");
      const std::string prefix = sp + (use_cache ? "_cached" : "_bypass");
      json.metric(prefix + "_deploys_per_sec", rate);
      json.metric(prefix + "_seconds", run.seconds);
      if (use_cache) {
        json.metric(prefix + "_cache_evictions",
                    static_cast<double>(run.cache.evictions));
        json.metric(prefix + "_dup_translations",
                    static_cast<double>(run.cache.dup_translations));
        json.metric(sp + "_success_rate_pct", big_stats.success_rate);
      }
    }
    std::printf("  cached/bypass outcomes identical: %s\n",
                identical ? "yes" : "NO");
    json.metric(sp + "_modes_identical", identical ? 1.0 : 0.0);
    if (!identical) {
      std::printf("  ERROR: cached and bypass runs diverged at %zux "
                  "scale!\n",
                  scale);
    }
  }

  return all_identical && bypass_identical && scales_identical ? 0 : 1;
}
