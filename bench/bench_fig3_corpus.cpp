// Figures 3a/3b/3c + Table II: deploy the 7,000-contract corpus on the
// TinyEVM device model and report the paper's memory/stack statistics.
//
//   paper: 93 % (5,953/7,000) deployable at the 8 KB limit; contract size
//          mean 4,023 B / std 2,899 B / min 28 B / max (deployed) 10,058 B;
//          max SP 41, mean SP 8; deployment time mean 215 ms, std 277 ms.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_json.hpp"
#include "corpus/corpus.hpp"

namespace {

using tinyevm::corpus::CorpusStats;
using tinyevm::corpus::DeploymentOutcome;

void print_histogram(const char* title, std::vector<double> values,
                     double bucket_width, double max_value,
                     const char* unit) {
  std::printf("\n%s\n", title);
  if (values.empty()) return;
  const std::size_t buckets =
      static_cast<std::size_t>(max_value / bucket_width) + 1;
  std::vector<std::size_t> counts(buckets, 0);
  for (double v : values) {
    const auto b = static_cast<std::size_t>(std::min(v, max_value) /
                                            bucket_width);
    counts[std::min(b, buckets - 1)]++;
  }
  const std::size_t peak = *std::max_element(counts.begin(), counts.end());
  for (std::size_t b = 0; b < buckets; ++b) {
    if (counts[b] == 0) continue;
    const int bars =
        static_cast<int>(60.0 * static_cast<double>(counts[b]) /
                         static_cast<double>(peak));
    std::printf("  %7.0f-%-7.0f %-5s |%-60.*s| %zu\n", b * bucket_width,
                (b + 1) * bucket_width, unit, bars,
                "############################################################",
                counts[b]);
  }
}

void print_summary_row(const char* name, const CorpusStats::Summary& s,
                       const char* unit) {
  std::printf("  %-22s max %10.0f   min %8.0f   mean %9.1f   std %9.1f  [%s]\n",
              name, s.max, s.min, s.mean, s.stddev, unit);
}

}  // namespace

int main() {
  std::printf("==============================================================\n");
  std::printf("Figures 3a-3c + Table II: smart-contract deployment corpus\n");
  std::printf("==============================================================\n");

  tinyevm::corpus::GeneratorConfig cfg;  // 7,000 contracts, paper seed
  const tinyevm::corpus::Generator generator{cfg};
  const auto vm_config = tinyevm::evm::VmConfig::tiny();

  std::vector<DeploymentOutcome> outcomes;
  outcomes.reserve(cfg.count);
  for (std::size_t i = 0; i < cfg.count; ++i) {
    outcomes.push_back(
        tinyevm::corpus::deploy_on_device(generator.make(i), vm_config));
  }
  const CorpusStats stats = tinyevm::corpus::summarize(outcomes);
  tinyevm::benchjson::Emitter json("fig3_corpus");
  json.metric("corpus_size", outcomes.size());
  json.metric("deployed", stats.deployed);
  json.metric("deploy_success_rate_pct", stats.success_rate);

  // --- headline (Fig 3a caption) ---
  std::printf("\nDeployment success at the 8 KB memory limit\n");
  std::printf("  paper   : 93%% (5,953 of 7,000)\n");
  std::printf("  measured: %.0f%% (%zu of %zu)\n", stats.success_rate,
              stats.deployed, outcomes.size());

  // --- Fig 3a: contract size distribution ---
  std::vector<double> sizes;
  std::vector<double> memories;
  std::vector<double> sps;
  for (const auto& o : outcomes) {
    sizes.push_back(static_cast<double>(o.contract_size));
    if (o.success) {
      memories.push_back(static_cast<double>(o.memory_used));
      sps.push_back(static_cast<double>(o.max_stack_pointer));
    }
  }
  print_histogram("Fig 3a — contract size density (all 7,000)", sizes, 2000,
                  26000, "B");
  print_histogram("Fig 3a — device memory use density (deployed)", memories,
                  1000, 8192, "B");

  // --- Fig 3b: memory vs size (correlation + the outlier observation) ---
  double sum_xy = 0;
  double sum_x = 0;
  double sum_y = 0;
  double sum_x2 = 0;
  double sum_y2 = 0;
  std::size_t n_succ = 0;
  std::size_t mem_exceeds_size = 0;
  std::size_t big_but_deployable = 0;
  for (const auto& o : outcomes) {
    if (!o.success) continue;
    ++n_succ;
    const double x = static_cast<double>(o.contract_size);
    const double y = static_cast<double>(o.memory_used);
    sum_x += x;
    sum_y += y;
    sum_xy += x * y;
    sum_x2 += x * x;
    sum_y2 += y * y;
    if (o.memory_used > o.contract_size) ++mem_exceeds_size;
    if (o.contract_size > 8192) ++big_but_deployable;
  }
  const double nf = static_cast<double>(n_succ);
  const double corr =
      (nf * sum_xy - sum_x * sum_y) /
      std::sqrt((nf * sum_x2 - sum_x * sum_x) * (nf * sum_y2 - sum_y * sum_y));
  json.metric("memory_vs_size_correlation_r", corr);
  json.metric("deploys_memory_exceeds_size", mem_exceeds_size);
  json.metric("deployed_contracts_over_8kb", big_but_deployable);
  std::printf("\nFig 3b — memory usage vs contract size (deployed)\n");
  std::printf("  positive correlation (paper: 'positive correlation'): r = %.3f\n",
              corr);
  std::printf("  deployments needing more memory than the contract size: %zu"
              " (paper: 'never')\n",
              mem_exceeds_size);
  std::printf("  contracts >8 KB bytecode that still deployed: %zu"
              " (paper: outliers exist)\n",
              big_but_deployable);

  // --- Fig 3c: stack pointer density ---
  print_histogram("Fig 3c — maximum stack pointer density (deployed)", sps, 2,
                  48, "");
  std::size_t sp_le_10 = 0;
  for (double sp : sps) {
    if (sp <= 10) ++sp_le_10;
  }
  std::printf("  deployments with max SP <= 10: %.0f%% (paper: 'majority')\n",
              100.0 * static_cast<double>(sp_le_10) / nf);
  json.metric("max_sp_le_10_pct", 100.0 * static_cast<double>(sp_le_10) / nf);

  // --- Table II ---
  std::printf("\nTable II — successfully deployed contracts (measured)\n");
  print_summary_row("Contract Size", stats.contract_size, "B");
  print_summary_row("Stack Pointer", stats.stack_pointer, "elements");
  print_summary_row("Stack", stats.stack_bytes, "B");
  print_summary_row("Memory", stats.memory_bytes, "B");
  print_summary_row("Deployment Time", stats.deploy_time_ms, "ms");
  json.metric("contract_size_mean_bytes", stats.contract_size.mean);
  json.metric("contract_size_std_bytes", stats.contract_size.stddev);
  json.metric("contract_size_max_bytes", stats.contract_size.max);
  json.metric("stack_pointer_mean", stats.stack_pointer.mean);
  json.metric("stack_pointer_max", stats.stack_pointer.max);
  json.metric("memory_mean_bytes", stats.memory_bytes.mean);
  json.metric("memory_max_bytes", stats.memory_bytes.max);
  json.metric("deploy_time_mean_ms", stats.deploy_time_ms.mean);
  json.metric("deploy_time_std_ms", stats.deploy_time_ms.stddev);
  json.metric("deploy_time_max_ms", stats.deploy_time_ms.max);
  std::printf("\nTable II — paper reference\n");
  std::printf("  %-22s max %10s   min %8s   mean %9s   std %9s\n",
              "Contract Size", "10,058", "28", "4,023", "2,899");
  std::printf("  %-22s max %10s   min %8s   mean %9s   std %9s\n",
              "Stack Pointer", "41", "3", "8", "3");
  std::printf("  %-22s max %10s   min %8s   mean %9s   std %9s\n", "Stack",
              "3,056", "768", "2,048", "827");
  std::printf("  %-22s max %10s   min %8s   mean %9s   std %9s\n", "Memory",
              "8,056", "96", "3,676", "2,801");
  std::printf("  %-22s max %10s   min %8s   mean %9s   std %9s\n",
              "Deployment Time", "9,159", "5", "215", "277");
  return 0;
}
