// Figure 4: deployment time (ms) vs bytecode size, on the 32 MHz device
// model. The paper's observation to reproduce: *no correlation* between
// size and time (time is dominated by constructor opcodes, not bytes), an
// average of 215 ms, and multi-second outliers up to ~9 s.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_json.hpp"
#include "corpus/corpus.hpp"

int main() {
  std::printf("==============================================================\n");
  std::printf("Figure 4: deployment time vs smart-contract size\n");
  std::printf("==============================================================\n");

  tinyevm::corpus::GeneratorConfig cfg;
  cfg.count = 2000;  // a scatter sample is enough for the trend statistics
  const tinyevm::corpus::Generator generator{cfg};
  const auto vm_config = tinyevm::evm::VmConfig::tiny();

  std::vector<double> sizes;
  std::vector<double> times;
  for (std::size_t i = 0; i < cfg.count; ++i) {
    const auto outcome =
        tinyevm::corpus::deploy_on_device(generator.make(i), vm_config);
    if (!outcome.success) continue;
    sizes.push_back(static_cast<double>(outcome.contract_size));
    times.push_back(outcome.deploy_time_ms);
  }

  // Scatter sample (CSV-ish series a plotting script can consume).
  std::printf("\nscatter sample (size_bytes, deploy_ms) — every 40th point:\n");
  for (std::size_t i = 0; i < sizes.size(); i += 40) {
    std::printf("  %6.0f  %8.1f\n", sizes[i], times[i]);
  }

  // Correlation: the paper's key claim is the absence of one.
  const double n = static_cast<double>(sizes.size());
  double sx = 0;
  double sy = 0;
  double sxy = 0;
  double sx2 = 0;
  double sy2 = 0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    sx += sizes[i];
    sy += times[i];
    sxy += sizes[i] * times[i];
    sx2 += sizes[i] * sizes[i];
    sy2 += times[i] * times[i];
  }
  const double r = (n * sxy - sx * sy) /
                   std::sqrt((n * sx2 - sx * sx) * (n * sy2 - sy * sy));

  double mean = sy / n;
  double var = 0;
  double max_ms = 0;
  for (double t : times) {
    var += (t - mean) * (t - mean);
    max_ms = std::max(max_ms, t);
  }

  std::printf("\nsize-time correlation r = %+.3f   (paper: 'no correlation')\n",
              r);
  std::printf("average deployment time  = %.0f ms (paper: 215 ms)\n", mean);
  std::printf("std deviation            = %.0f ms (paper: 277 ms)\n",
              std::sqrt(var / n));
  std::printf("slowest deployment       = %.1f s  (paper: 9.2 s outlier)\n",
              max_ms / 1000.0);

  tinyevm::benchjson::Emitter json("fig4_deploy_time");
  json.metric("sample_size", sizes.size());
  json.metric("size_time_correlation_r", r);
  json.metric("deploy_time_mean_ms", mean);
  json.metric("deploy_time_std_ms", std::sqrt(var / n));
  json.metric("deploy_time_max_ms", max_ms);
  return 0;
}
