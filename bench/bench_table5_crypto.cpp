// Table V: performance of the cryptographic operations.
//
// Two views are reported:
//   1. The device model's per-operation latencies (what the CC2538 crypto
//      engine at 250 MHz / software keccak cost on the mote — the numbers
//      the paper's table contains).
//   2. Host-side google-benchmark measurements of this repository's real
//      from-scratch primitives (the artifacts are genuine; only their
//      device-side *timing* is modeled).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "crypto/hash.hpp"
#include "crypto/secp256k1.hpp"
#include "device/cc2538.hpp"

namespace {

using namespace tinyevm;

void BM_EcdsaSign(benchmark::State& state) {
  const auto key = secp256k1::PrivateKey::from_seed("bench");
  const auto digest = keccak256("payment #1");
  for (auto _ : state) {
    benchmark::DoNotOptimize(secp256k1::sign(digest, key));
  }
}
BENCHMARK(BM_EcdsaSign);

void BM_EcdsaVerify(benchmark::State& state) {
  const auto key = secp256k1::PrivateKey::from_seed("bench");
  const auto digest = keccak256("payment #1");
  const auto sig = secp256k1::sign(digest, key);
  const auto pub = key.public_key();
  for (auto _ : state) {
    benchmark::DoNotOptimize(secp256k1::verify(digest, sig, pub));
  }
}
BENCHMARK(BM_EcdsaVerify);

void BM_EcdsaRecover(benchmark::State& state) {
  const auto key = secp256k1::PrivateKey::from_seed("bench");
  const auto digest = keccak256("payment #1");
  const auto sig = secp256k1::sign(digest, key);
  for (auto _ : state) {
    benchmark::DoNotOptimize(secp256k1::recover(digest, sig));
  }
}
BENCHMARK(BM_EcdsaRecover);

void BM_Sha256_64B(benchmark::State& state) {
  const std::vector<std::uint8_t> data(64, 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sha256(data));
  }
}
BENCHMARK(BM_Sha256_64B);

void BM_Keccak256_64B(benchmark::State& state) {
  const std::vector<std::uint8_t> data(64, 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(keccak256(data));
  }
}
BENCHMARK(BM_Keccak256_64B);

void BM_Keccak256_4K(benchmark::State& state) {
  const std::vector<std::uint8_t> data(4096, 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(keccak256(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          4096);
}
BENCHMARK(BM_Keccak256_4K);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=========================================================\n");
  std::printf("Table V: cryptographic operation performance\n");
  std::printf("=========================================================\n\n");
  std::printf("  device model (CC2538, crypto engine @ 250 MHz):\n");
  std::printf("  %-32s %-6s %10s\n", "Operation type", "Mode", "Time");
  std::printf("  %-32s %-6s %7.0f ms   (paper: 350 ms)\n",
              "ECDSA - Signature", "HW",
              device::CryptoLatency::kEcdsaSignUs / 1000.0);
  std::printf("  %-32s %-6s %7.0f ms   (paper: 1 ms)\n",
              "SHA256 - Hash function", "HW",
              device::CryptoLatency::kSha256Us / 1000.0);
  std::printf("  %-32s %-6s %7.0f ms   (paper: 5 ms)\n",
              "Keccak256 - Hash function", "SW",
              device::CryptoLatency::kKeccak256Us / 1000.0);
  std::printf("  %-32s %-6s %7.0f ms   (paper: 356 ms)\n", "Total", "",
              (device::CryptoLatency::kEcdsaSignUs +
               device::CryptoLatency::kSha256Us +
               device::CryptoLatency::kKeccak256Us) /
                  1000.0);
  std::printf("\n  host-side measurements of the real primitives follow:\n\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
