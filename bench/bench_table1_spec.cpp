// Table I: EVM vs TinyEVM specification — word sizes and the opcode census
// by category. Generated from the live opcode table, so any drift between
// the implementation and the paper's accounting fails loudly here.
#include <cstdio>

#include "bench_json.hpp"
#include "evm/opcodes.hpp"
#include "evm/vm.hpp"

int main() {
  using tinyevm::evm::census;

  const auto evm = census(false);
  const auto tiny = census(true);
  const auto eth_cfg = tinyevm::evm::VmConfig::ethereum();
  const auto tiny_cfg = tinyevm::evm::VmConfig::tiny();
  tinyevm::benchjson::Emitter json("table1_spec");

  std::printf("=========================================================\n");
  std::printf("Table I: original EVM vs TinyEVM specification\n");
  std::printf("=========================================================\n\n");
  std::printf("  %-28s %12s %12s\n", "Component", "EVM", "TinyEVM");
  std::printf("  %-28s %12s %12s\n", "Stack memory", "256-bit", "256-bit");
  std::printf("  %-28s %12s %12s\n", "Random access memory", "8-bit",
              "8-bit");
  std::printf("  %-28s %12s %12s\n", "Storage space", "256-bit", "8-bit");
  std::printf("  %-28s %12u %12u\n", "Operation opcodes", evm.operation,
              tiny.operation);
  std::printf("  %-28s %12u %12u\n", "Smart contract opcodes",
              evm.smart_contract, tiny.smart_contract);
  std::printf("  %-28s %12u %12u\n", "Memory opcodes", evm.memory,
              tiny.memory);
  std::printf("  %-28s %12u %12s\n", "Blockchain opcodes", evm.blockchain,
              tiny.blockchain == 0 ? "-" : "?");
  std::printf("  %-28s %12s %12u\n", "IoT opcodes", "-", tiny.iot);
  std::printf("\n  active opcodes total: EVM %u (paper: 71), TinyEVM %u\n",
              evm.total(), tiny.total());

  std::printf("\nProfile limits (paper Sec. VI-A configuration)\n");
  std::printf("  %-28s %12s %12s\n", "stack arena", "32 KB",
              "3 KB (96 elems)");
  std::printf("  %-28s %12s %12s\n", "RAM arena", "gas-bounded", "8 KB");
  std::printf("  %-28s %12s %12s\n", "off-chain storage", "-", "1 KB");
  std::printf("  %-28s %12s %12s\n", "gas metering",
              eth_cfg.metering ? "on" : "off",
              tiny_cfg.metering ? "on" : "off");
  std::printf("  %-28s %12s %12s\n", "IoT opcode 0x0c",
              eth_cfg.iot_opcodes ? "yes" : "no",
              tiny_cfg.iot_opcodes ? "yes" : "no");

  json.metric("evm_operation_opcodes", evm.operation);
  json.metric("evm_smart_contract_opcodes", evm.smart_contract);
  json.metric("evm_memory_opcodes", evm.memory);
  json.metric("evm_blockchain_opcodes", evm.blockchain);
  json.metric("evm_total_opcodes", evm.total());
  json.metric("tiny_operation_opcodes", tiny.operation);
  json.metric("tiny_smart_contract_opcodes", tiny.smart_contract);
  json.metric("tiny_memory_opcodes", tiny.memory);
  json.metric("tiny_blockchain_opcodes", tiny.blockchain);
  json.metric("tiny_iot_opcodes", tiny.iot);
  json.metric("tiny_total_opcodes", tiny.total());
  json.metric("tiny_stack_limit_elems", tiny_cfg.stack_limit);
  json.metric("tiny_memory_limit_bytes", tiny_cfg.memory_limit);
  json.metric("tiny_storage_limit_bytes", tiny_cfg.storage_limit);
  json.metric("tiny_gas_metering", tiny_cfg.metering ? 1 : 0);
  json.metric("eth_gas_metering", eth_cfg.metering ? 1 : 0);
  return 0;
}
