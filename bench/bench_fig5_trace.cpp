// Figure 5: electric current (mA) drawn over a complete off-chain payment
// round. Prints the trace as a time series (10 ms sampling, like the
// paper's measurement setup) plus an ASCII strip chart per component.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_json.hpp"
#include "device/offchain_round.hpp"

int main() {
  using namespace tinyevm::device;

  Mote car_mote("smart-car");
  Mote lot_mote("parking-lot");
  tinyevm::channel::ChannelEndpoint car(
      "car", tinyevm::channel::PrivateKey::from_seed("car-key"),
      tinyevm::keccak256("trace-anchor"));
  tinyevm::channel::ChannelEndpoint lot(
      "lot", tinyevm::channel::PrivateKey::from_seed("lot-key"),
      tinyevm::keccak256("trace-anchor"));
  car.sensors().set_reading(7, tinyevm::U256{22});
  lot.sensors().set_reading(7, tinyevm::U256{21});

  OffchainRound round(car_mote, lot_mote, car, lot);
  const RoundResult result =
      round.run(tinyevm::U256{1}, tinyevm::U256{10}, 7, 1);
  if (!result.ok) {
    std::printf("round failed!\n");
    return 1;
  }

  std::printf("=========================================================\n");
  std::printf("Figure 5: current draw over one off-chain round (car mote)\n");
  std::printf("=========================================================\n");

  std::printf("\nphase timeline:\n");
  std::printf("  sensor-data exchange : %7.1f ms\n",
              result.timing.exchange_sensor_us / 1000.0);
  std::printf("  open channel (VM)    : %7.1f ms  (paper: ~200 ms)\n",
              result.timing.open_channel_us / 1000.0);
  std::printf("  sign payment         : %7.1f ms  (paper: ~350 ms signature)\n",
              result.timing.sign_payment_us / 1000.0);
  std::printf("  register side-chain  : %7.1f ms  (paper: ~80 ms)\n",
              result.timing.register_sidechain_us / 1000.0);
  std::printf("  closing exchange     : %7.1f ms\n",
              result.timing.closing_exchange_us / 1000.0);
  std::printf("  total                : %7.1f ms  (paper: ~1.6 s)\n",
              result.timing.total_us / 1000.0);

  tinyevm::benchjson::Emitter json("fig5_trace");
  json.metric("exchange_sensor_ms", result.timing.exchange_sensor_us / 1000.0);
  json.metric("open_channel_ms", result.timing.open_channel_us / 1000.0);
  json.metric("sign_payment_ms", result.timing.sign_payment_us / 1000.0);
  json.metric("register_sidechain_ms",
              result.timing.register_sidechain_us / 1000.0);
  json.metric("closing_exchange_ms",
              result.timing.closing_exchange_us / 1000.0);
  json.metric("round_total_ms", result.timing.total_us / 1000.0);

  // Resample the segment trace to a 10 ms grid: current at each sample is
  // the maximum draw within the window (matches how a scope peak-detects).
  const auto& trace = car_mote.trace();
  const std::uint64_t total_us = car_mote.now_us();
  constexpr std::uint64_t kStepUs = 10'000;
  std::vector<double> samples(total_us / kStepUs + 1, 0.0);
  for (const auto& seg : trace) {
    const std::uint64_t first = seg.start_us / kStepUs;
    const std::uint64_t last = (seg.start_us + seg.duration_us) / kStepUs;
    for (std::uint64_t s = first; s <= last && s < samples.size(); ++s) {
      samples[s] = std::max(samples[s], seg.current_ma);
    }
  }

  std::printf("\ncurrent trace (time_s, mA) at 10 ms sampling:\n");
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (i % 2 != 0) continue;  // print every 20 ms to keep it readable
    const double t = static_cast<double>(i) * kStepUs / 1e6;
    const int bars = static_cast<int>(samples[i] * 2);
    std::printf("  %5.2f  %5.1f |%-52.*s|\n", t, samples[i], bars,
                "####################################################");
  }

  std::printf("\ncomponent activity totals (car mote):\n");
  const auto& e = car_mote.energest();
  const std::pair<PowerState, const char*> components[] = {
      {PowerState::CryptoEngine, "crypto_engine"},
      {PowerState::Tx, "tx"},
      {PowerState::Rx, "rx"},
      {PowerState::CpuActive, "cpu_active"},
      {PowerState::Lpm2, "lpm2"},
  };
  for (const auto& [s, slug] : components) {
    std::printf("  %-24s %8.1f ms  %6.1f mJ\n",
                std::string(to_string(s)).c_str(), e.time_ms(s),
                e.energy_mj(s));
    json.metric(std::string(slug) + "_ms", e.time_ms(s));
    json.metric(std::string(slug) + "_mj", e.energy_mj(s));
  }
  json.metric("trace_samples_10ms", samples.size());
  return 0;
}
