// Ablation benchmarks for the design choices DESIGN.md calls out:
//   * gas metering on/off (TinyEVM removes it for off-chain runs),
//   * the cost of 256-bit word emulation (per-opcode throughput),
//   * stack/memory cap sensitivity (why 8 KB is the paper's "favourable
//     memory allocation point"),
//   * interpreter throughput on a representative constructor workload.
#include <benchmark/benchmark.h>

#include "channel/manager.hpp"
#include "corpus/corpus.hpp"
#include "evm/asm.hpp"
#include "evm/vm.hpp"

namespace {

using namespace tinyevm;
using evm::Assembler;
using evm::Opcode;

/// A counting loop of `iters` iterations used as the standard workload.
evm::Bytes loop_program(std::uint64_t iters) {
  Assembler a;
  a.push(iters);
  const auto loop = a.label();
  a.push(1).swap(1).op(Opcode::SUB).dup(1);
  a.push_label(loop).op(Opcode::JUMPI);
  return a.take();
}

void run_program(benchmark::State& state, const evm::Bytes& code,
                 evm::VmConfig config, std::int64_t gas = 1'000'000'000) {
  channel::SensorBank sensors;
  sensors.set_reading(7, U256{22});
  channel::DeviceHost host(sensors, config);
  evm::Vm vm{config};
  evm::Message msg;
  msg.code = code;
  msg.gas = gas;
  std::uint64_t ops = 0;
  for (auto _ : state) {
    const auto r = vm.execute(host, msg);
    benchmark::DoNotOptimize(r);
    ops += r.stats.ops_executed;
  }
  state.counters["ops/s"] = benchmark::Counter(
      static_cast<double>(ops), benchmark::Counter::kIsRate);
}

// --- ablation: gas metering ---
void BM_Loop_TinyEvm_NoGas(benchmark::State& state) {
  run_program(state, loop_program(10'000), evm::VmConfig::tiny());
}
BENCHMARK(BM_Loop_TinyEvm_NoGas);

void BM_Loop_Ethereum_Gas(benchmark::State& state) {
  run_program(state, loop_program(10'000), evm::VmConfig::ethereum());
}
BENCHMARK(BM_Loop_Ethereum_Gas);

// --- ablation: dispatch strategy (token-threaded table vs the legacy
// two-level switch it replaced). Same programs, same VM, only
// VmConfig::dispatch differs — the counter pair quantifies the dispatch
// rewrite in isolation. The old-switch variants exist only while the
// legacy path is still compiled (TINYEVM_LEGACY_DISPATCH, one-PR soak).
evm::Bytes opmix_program() {
  // The ADD/MUL/DUP/SWAP hot mix the ROADMAP calls out.
  Assembler a;
  a.push_word(U256::max() - U256{5});
  a.push_word(*U256::from_hex("0x123456789abcdef0fedcba9876543210"));
  for (int i = 0; i < 100; ++i) {
    a.dup(1).op(Opcode::ADD).swap(1).dup(2).op(Opcode::MUL).swap(1);
  }
  return a.take();
}

void BM_Dispatch_Loop_Threaded(benchmark::State& state) {
  evm::VmConfig config = evm::VmConfig::tiny();
  config.dispatch = evm::DispatchKind::Threaded;
  run_program(state, loop_program(10'000), config);
}
BENCHMARK(BM_Dispatch_Loop_Threaded);

void BM_Dispatch_OpMix_Threaded(benchmark::State& state) {
  evm::VmConfig config = evm::VmConfig::tiny();
  config.dispatch = evm::DispatchKind::Threaded;
  run_program(state, opmix_program(), config);
}
BENCHMARK(BM_Dispatch_OpMix_Threaded);

#ifdef TINYEVM_LEGACY_DISPATCH
void BM_Dispatch_Loop_OldSwitch(benchmark::State& state) {
  evm::VmConfig config = evm::VmConfig::tiny();
  config.dispatch = evm::DispatchKind::LegacySwitch;
  run_program(state, loop_program(10'000), config);
}
BENCHMARK(BM_Dispatch_Loop_OldSwitch);

void BM_Dispatch_OpMix_OldSwitch(benchmark::State& state) {
  evm::VmConfig config = evm::VmConfig::tiny();
  config.dispatch = evm::DispatchKind::LegacySwitch;
  run_program(state, opmix_program(), config);
}
BENCHMARK(BM_Dispatch_OpMix_OldSwitch);
#endif  // TINYEVM_LEGACY_DISPATCH

// --- ablation: 256-bit emulation cost by opcode class ---
void BM_Op_Add(benchmark::State& state) {
  Assembler a;
  a.push_word(U256::max() - U256{5});
  for (int i = 0; i < 200; ++i) a.dup(1).op(Opcode::ADD);
  run_program(state, a.take(), evm::VmConfig::tiny());
}
BENCHMARK(BM_Op_Add);

void BM_Op_Mul(benchmark::State& state) {
  Assembler a;
  a.push_word(*U256::from_hex("0x123456789abcdef0fedcba9876543210"));
  for (int i = 0; i < 200; ++i) a.dup(1).op(Opcode::MUL);
  run_program(state, a.take(), evm::VmConfig::tiny());
}
BENCHMARK(BM_Op_Mul);

void BM_Op_Div(benchmark::State& state) {
  Assembler a;
  a.push_word(U256::max());
  for (int i = 0; i < 200; ++i) {
    a.push(12345).dup(2).op(Opcode::DIV).op(Opcode::POP);
  }
  run_program(state, a.take(), evm::VmConfig::tiny());
}
BENCHMARK(BM_Op_Div);

void BM_Op_Sha3(benchmark::State& state) {
  Assembler a;
  for (int i = 0; i < 50; ++i) {
    a.push(64).push(0).op(Opcode::SHA3).op(Opcode::POP);
  }
  run_program(state, a.take(), evm::VmConfig::tiny());
}
BENCHMARK(BM_Op_Sha3);

void BM_Op_Sstore(benchmark::State& state) {
  Assembler a;
  for (int i = 0; i < 100; ++i) {
    a.push(i + 1).push(i % 16).op(Opcode::SSTORE);
  }
  run_program(state, a.take(), evm::VmConfig::tiny());
}
BENCHMARK(BM_Op_Sstore);

// --- ablation: memory-cap sensitivity (the "8 KB favourable point") ---
void BM_DeployAtMemoryCap(benchmark::State& state) {
  const auto cap = static_cast<std::size_t>(state.range(0));
  corpus::GeneratorConfig cfg;
  cfg.count = 64;
  const corpus::Generator gen{cfg};
  evm::VmConfig config = evm::VmConfig::tiny();
  config.memory_limit = cap;

  std::size_t deployed = 0;
  std::size_t total = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < cfg.count; ++i) {
      const auto outcome = corpus::deploy_on_device(gen.make(i), config);
      ++total;
      if (outcome.success) ++deployed;
    }
  }
  state.counters["deploy_rate_%"] =
      100.0 * static_cast<double>(deployed) / static_cast<double>(total);
}
BENCHMARK(BM_DeployAtMemoryCap)
    ->Arg(2048)
    ->Arg(4096)
    ->Arg(8192)
    ->Arg(16384)
    ->Unit(benchmark::kMillisecond);

// --- ablation: stack-cap sensitivity ---
void BM_DeployAtStackCap(benchmark::State& state) {
  const auto cap = static_cast<std::size_t>(state.range(0));
  corpus::GeneratorConfig cfg;
  cfg.count = 64;
  const corpus::Generator gen{cfg};
  evm::VmConfig config = evm::VmConfig::tiny();
  config.stack_limit = cap;

  std::size_t deployed = 0;
  std::size_t total = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < cfg.count; ++i) {
      const auto outcome = corpus::deploy_on_device(gen.make(i), config);
      ++total;
      if (outcome.success) ++deployed;
    }
  }
  state.counters["deploy_rate_%"] =
      100.0 * static_cast<double>(deployed) / static_cast<double>(total);
}
BENCHMARK(BM_DeployAtStackCap)
    ->Arg(16)
    ->Arg(32)
    ->Arg(96)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

// --- end-to-end: template deployment + one payment on the endpoint ---
void BM_ChannelOpenAndPay(benchmark::State& state) {
  for (auto _ : state) {
    channel::ChannelEndpoint car("car",
                                 channel::PrivateKey::from_seed("car-key"),
                                 keccak256("bench"));
    car.sensors().set_reading(7, U256{22});
    benchmark::DoNotOptimize(car.open_channel(U256{1}, U256{10}, 7));
    benchmark::DoNotOptimize(car.make_payment(U256{1}));
  }
}
BENCHMARK(BM_ChannelOpenAndPay)->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main so the JSON context records the *project's* build type.
// (Google Benchmark's own "library_build_type" field describes the
// libbenchmark package — on Debian that reads "debug" regardless of how
// this tree was compiled, which is how debug-build baselines once slipped
// into the committed BENCH_*.json unnoticed.)
int main(int argc, char** argv) {
#ifdef TINYEVM_BUILD_TYPE
  benchmark::AddCustomContext("tinyevm_build_type", TINYEVM_BUILD_TYPE);
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
