// Ablation benchmarks for the design choices DESIGN.md calls out:
//   * gas metering on/off (TinyEVM removes it for off-chain runs),
//   * the cost of 256-bit word emulation (per-opcode throughput),
//   * stack/memory cap sensitivity (why 8 KB is the paper's "favourable
//     memory allocation point"),
//   * interpreter throughput on a representative constructor workload.
#include <benchmark/benchmark.h>

#include <random>

#include "channel/manager.hpp"
#include "corpus/corpus.hpp"
#include "evm/asm.hpp"
#include "evm/code_cache.hpp"
#include "evm/decoded.hpp"
#include "evm/vm.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace tinyevm;
using evm::Assembler;
using evm::Opcode;

/// A counting loop of `iters` iterations used as the standard workload.
evm::Bytes loop_program(std::uint64_t iters) {
  Assembler a;
  a.push(iters);
  const auto loop = a.label();
  a.push(1).swap(1).op(Opcode::SUB).dup(1);
  a.push_label(loop).op(Opcode::JUMPI);
  return a.take();
}

/// The same counting loop with the back edge as a *plain* JUMPI: the
/// target is pushed once and DUPed to the top each iteration, so only the
/// whole-contract constant dataflow can resolve it. On the elided engine
/// the resolved branch becomes a one-slot span tail — this row pair
/// (vs. loop_program's fused PUSH+JUMPI) prices the resolution.
evm::Bytes dyn_loop_program(std::uint64_t iters) {
  Assembler a;
  a.push_label(6);      // loop head: two fixed-width PUSH2s precede it
  a.push_label(iters);  // PUSH2 keeps the layout fixed for any iters
  a.op(Opcode::JUMPDEST);
  a.push(1).swap(1).op(Opcode::SUB);
  a.dup(1).dup(3);
  a.op(Opcode::JUMPI);
  a.op(Opcode::POP).op(Opcode::POP);
  return a.take();
}

/// Runs `code` repeatedly on one Vm with a private translation cache, so
/// the predecoded variants measure the warm-cache steady state and report
/// the observed hit rate.
void run_program(benchmark::State& state, const evm::Bytes& code,
                 evm::VmConfig config, std::int64_t gas = 1'000'000'000) {
  channel::SensorBank sensors;
  sensors.set_reading(7, U256{22});
  channel::DeviceHost host(sensors, config);
  auto cache = std::make_shared<evm::CodeCache>();
  evm::Vm vm{config, cache};
  evm::Message msg;
  msg.code = code;
  // Hash once, like every repeat-execution call site (chain accounts and
  // channel endpoints cache keccak256(code) beside the code itself).
  msg.code_hash = keccak256(code);
  msg.gas = gas;
  std::uint64_t ops = 0;
  for (auto _ : state) {
    const auto r = vm.execute(host, msg);
    benchmark::DoNotOptimize(r);
    ops += r.stats.ops_executed;
  }
  state.counters["ops/s"] = benchmark::Counter(
      static_cast<double>(ops), benchmark::Counter::kIsRate);
  const evm::CodeCache::Stats cs = cache->stats();
  if (cs.lookups > 0) {  // translation-consuming engines only
    state.counters["cache_hit_%"] = 100.0 * cs.hit_rate();
    // Span coverage of the one resident translation: how many stream
    // slots the analyzer proved check-elidable, and how many dynamic
    // jumps the dataflow turned into static span tails.
    if (cs.entries == 1) {
      const evm::TranslationProfile profile{
          config.profile == evm::VmProfile::TinyEvm, config.iot_opcodes,
          config.block_opcodes};
      const evm::DecodedProgram program = evm::translate(code, profile);
      state.counters["span_slots"] =
          static_cast<double>(cs.analysis.span_slots);
      state.counters["span_coverage_%"] =
          100.0 * static_cast<double>(cs.analysis.span_slots) /
          static_cast<double>(program.insts.size());
      state.counters["resolved_jumps"] =
          static_cast<double>(cs.analysis.resolved_jumps);
    }
  }
}

// --- ablation: gas metering (both profiles on their default engine; the
// engine suffix keeps the JSON rows attributable per-engine). ---
void BM_Loop_TinyEvm_NoGas(benchmark::State& state, const char* engine) {
  evm::VmConfig config = evm::VmConfig::tiny();
  config.engine = engine;
  run_program(state, loop_program(10'000), config);
}
BENCHMARK_CAPTURE(BM_Loop_TinyEvm_NoGas, elided, "elided");

void BM_Loop_Ethereum_Gas(benchmark::State& state, const char* engine) {
  evm::VmConfig config = evm::VmConfig::ethereum();
  config.engine = engine;
  run_program(state, loop_program(10'000), config);
}
BENCHMARK_CAPTURE(BM_Loop_Ethereum_Gas, elided, "elided");

// --- ablation: the execution-engine sweep. Same programs, same VM; only
// VmConfig::engine differs, so the row triple quantifies what the one-time
// translation amortizes away (raw → predecoded: immediate materialization,
// jump resolution, superinstruction fusion) and what check elision buys on
// top (predecoded → elided: one entry test per proven block). The
// translation-consuming engines run against a warm private cache (hit rate
// reported as a counter).
evm::Bytes opmix_program() {
  // The ADD/MUL/DUP/SWAP hot mix the ROADMAP calls out.
  Assembler a;
  a.push_word(U256::max() - U256{5});
  a.push_word(*U256::from_hex("0x123456789abcdef0fedcba9876543210"));
  for (int i = 0; i < 100; ++i) {
    a.dup(1).op(Opcode::ADD).swap(1).dup(2).op(Opcode::MUL).swap(1);
  }
  return a.take();
}

void BM_Loop_TinyEvm(benchmark::State& state, const char* engine) {
  evm::VmConfig config = evm::VmConfig::tiny();
  config.engine = engine;
  run_program(state, loop_program(10'000), config);
}
BENCHMARK_CAPTURE(BM_Loop_TinyEvm, raw, "raw");
BENCHMARK_CAPTURE(BM_Loop_TinyEvm, predecoded, "predecoded");
BENCHMARK_CAPTURE(BM_Loop_TinyEvm, elided, "elided");

// The dynamic-jump variant: raw and predecoded must take the checked
// JUMPI every iteration; elided rides the resolved one-slot span tail.
void BM_DynLoop_TinyEvm(benchmark::State& state, const char* engine) {
  evm::VmConfig config = evm::VmConfig::tiny();
  config.engine = engine;
  run_program(state, dyn_loop_program(10'000), config);
}
BENCHMARK_CAPTURE(BM_DynLoop_TinyEvm, raw, "raw");
BENCHMARK_CAPTURE(BM_DynLoop_TinyEvm, predecoded, "predecoded");
BENCHMARK_CAPTURE(BM_DynLoop_TinyEvm, elided, "elided");

// --- ablation: telemetry cost. The same loop on the same engine with the
// metrics layer recording around every Vm::execute (the --metrics path);
// the disabled-default baseline is BM_Loop_TinyEvm/elided above, so the
// row pair quantifies what leaving metrics on costs per execution.
void BM_Loop_TinyEvm_Obs(benchmark::State& state, const char* engine) {
  evm::VmConfig config = evm::VmConfig::tiny();
  config.engine = engine;
  obs::set_metrics_enabled(true);
  run_program(state, loop_program(10'000), config);
  obs::set_metrics_enabled(false);
}
BENCHMARK_CAPTURE(BM_Loop_TinyEvm_Obs, elided, "elided");

void BM_OpMix(benchmark::State& state, const char* engine) {
  evm::VmConfig config = evm::VmConfig::tiny();
  config.engine = engine;
  run_program(state, opmix_program(), config);
}
BENCHMARK_CAPTURE(BM_OpMix, raw, "raw");
BENCHMARK_CAPTURE(BM_OpMix, predecoded, "predecoded");
BENCHMARK_CAPTURE(BM_OpMix, elided, "elided");

// --- translation cost: cold translate by code size, and the warm-lookup
// overhead (keccak + LRU probe) a cache hit still pays.
evm::Bytes sized_program(std::size_t target_size) {
  Assembler a;
  std::mt19937_64 rng(20200711);
  while (a.size() + 40 < target_size) {
    switch (rng() % 5) {
      case 0: a.push(rng() & 0xFFFF).push(rng() & 0xFFFF).op(Opcode::ADD)
                  .op(Opcode::POP); break;
      case 1: a.push_word(U256{rng(), rng(), rng(), rng()}).op(Opcode::POP);
              break;
      case 2: a.dup(1 + rng() % 4).op(Opcode::MUL); break;
      case 3: a.op(Opcode::JUMPDEST); break;
      default: a.push(rng() & 0xFF).swap(1).op(Opcode::SUB); break;
    }
  }
  while (a.size() < target_size) a.op(Opcode::JUMPDEST);
  return a.take();
}

void BM_Translate_Cold(benchmark::State& state) {
  const auto code = sized_program(static_cast<std::size_t>(state.range(0)));
  const evm::TranslationProfile profile{};
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    auto program = evm::translate(code, profile);
    benchmark::DoNotOptimize(program);
    bytes += code.size();
  }
  state.counters["code_bytes/s"] = benchmark::Counter(
      static_cast<double>(bytes), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Translate_Cold)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_Translate_WarmLookup(benchmark::State& state) {
  const auto code = sized_program(static_cast<std::size_t>(state.range(0)));
  const evm::TranslationProfile profile{};
  evm::CodeCache cache;
  benchmark::DoNotOptimize(cache.get_or_translate(code, profile));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.get_or_translate(code, profile));
  }
  state.counters["cache_hit_%"] = 100.0 * cache.stats().hit_rate();
}
BENCHMARK(BM_Translate_WarmLookup)->Arg(256)->Arg(4096);

// --- warm-cache corpus re-deployment: the Fig. 3/4 workload re-executed
// with shared translations, the channel-hub re-execution pattern.
void BM_Corpus_Redeploy(benchmark::State& state, const char* engine) {
  corpus::GeneratorConfig cfg;
  cfg.count = 16;
  const corpus::Generator gen{cfg};
  std::vector<corpus::Contract> contracts;
  for (std::size_t i = 0; i < cfg.count; ++i) contracts.push_back(gen.make(i));
  evm::VmConfig config = evm::VmConfig::tiny();
  config.engine = engine;
  auto cache = std::make_shared<evm::CodeCache>();
  for (auto _ : state) {
    for (const auto& c : contracts) {
      const auto outcome = corpus::deploy_on_device(c, config, cache);
      benchmark::DoNotOptimize(outcome);
    }
  }
  if (cache->stats().lookups > 0) {
    state.counters["cache_hit_%"] = 100.0 * cache->stats().hit_rate();
  }
}
BENCHMARK_CAPTURE(BM_Corpus_Redeploy, raw, "raw")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Corpus_Redeploy, elided, "elided")
    ->Unit(benchmark::kMillisecond);

// --- ablation: 256-bit emulation cost by opcode class ---
void BM_Op_Add(benchmark::State& state) {
  Assembler a;
  a.push_word(U256::max() - U256{5});
  for (int i = 0; i < 200; ++i) a.dup(1).op(Opcode::ADD);
  run_program(state, a.take(), evm::VmConfig::tiny());
}
BENCHMARK(BM_Op_Add);

void BM_Op_Mul(benchmark::State& state) {
  Assembler a;
  a.push_word(*U256::from_hex("0x123456789abcdef0fedcba9876543210"));
  for (int i = 0; i < 200; ++i) a.dup(1).op(Opcode::MUL);
  run_program(state, a.take(), evm::VmConfig::tiny());
}
BENCHMARK(BM_Op_Mul);

void BM_Op_Div(benchmark::State& state) {
  Assembler a;
  a.push_word(U256::max());
  for (int i = 0; i < 200; ++i) {
    a.push(12345).dup(2).op(Opcode::DIV).op(Opcode::POP);
  }
  run_program(state, a.take(), evm::VmConfig::tiny());
}
BENCHMARK(BM_Op_Div);

void BM_Op_Sha3(benchmark::State& state) {
  Assembler a;
  for (int i = 0; i < 50; ++i) {
    a.push(64).push(0).op(Opcode::SHA3).op(Opcode::POP);
  }
  run_program(state, a.take(), evm::VmConfig::tiny());
}
BENCHMARK(BM_Op_Sha3);

void BM_Op_Sstore(benchmark::State& state) {
  Assembler a;
  for (int i = 0; i < 100; ++i) {
    a.push(i + 1).push(i % 16).op(Opcode::SSTORE);
  }
  run_program(state, a.take(), evm::VmConfig::tiny());
}
BENCHMARK(BM_Op_Sstore);

// --- ablation: memory-cap sensitivity (the "8 KB favourable point") ---
void BM_DeployAtMemoryCap(benchmark::State& state) {
  const auto cap = static_cast<std::size_t>(state.range(0));
  corpus::GeneratorConfig cfg;
  cfg.count = 64;
  const corpus::Generator gen{cfg};
  evm::VmConfig config = evm::VmConfig::tiny();
  config.memory_limit = cap;

  std::size_t deployed = 0;
  std::size_t total = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < cfg.count; ++i) {
      const auto outcome = corpus::deploy_on_device(gen.make(i), config);
      ++total;
      if (outcome.success) ++deployed;
    }
  }
  state.counters["deploy_rate_%"] =
      100.0 * static_cast<double>(deployed) / static_cast<double>(total);
}
BENCHMARK(BM_DeployAtMemoryCap)
    ->Arg(2048)
    ->Arg(4096)
    ->Arg(8192)
    ->Arg(16384)
    ->Unit(benchmark::kMillisecond);

// --- ablation: stack-cap sensitivity ---
void BM_DeployAtStackCap(benchmark::State& state) {
  const auto cap = static_cast<std::size_t>(state.range(0));
  corpus::GeneratorConfig cfg;
  cfg.count = 64;
  const corpus::Generator gen{cfg};
  evm::VmConfig config = evm::VmConfig::tiny();
  config.stack_limit = cap;

  std::size_t deployed = 0;
  std::size_t total = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < cfg.count; ++i) {
      const auto outcome = corpus::deploy_on_device(gen.make(i), config);
      ++total;
      if (outcome.success) ++deployed;
    }
  }
  state.counters["deploy_rate_%"] =
      100.0 * static_cast<double>(deployed) / static_cast<double>(total);
}
BENCHMARK(BM_DeployAtStackCap)
    ->Arg(16)
    ->Arg(32)
    ->Arg(96)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

// --- end-to-end: template deployment + one payment on the endpoint ---
void BM_ChannelOpenAndPay(benchmark::State& state) {
  for (auto _ : state) {
    channel::ChannelEndpoint car("car",
                                 channel::PrivateKey::from_seed("car-key"),
                                 keccak256("bench"));
    car.sensors().set_reading(7, U256{22});
    benchmark::DoNotOptimize(car.open_channel(U256{1}, U256{10}, 7));
    benchmark::DoNotOptimize(car.make_payment(U256{1}));
  }
}
BENCHMARK(BM_ChannelOpenAndPay)->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main so the JSON context records the *project's* build type.
// (Google Benchmark's own "library_build_type" field describes the
// libbenchmark package — on Debian that reads "debug" regardless of how
// this tree was compiled, which is how debug-build baselines once slipped
// into the committed BENCH_*.json unnoticed.)
int main(int argc, char** argv) {
#ifdef TINYEVM_BUILD_TYPE
  benchmark::AddCustomContext("tinyevm_build_type", TINYEVM_BUILD_TYPE);
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
