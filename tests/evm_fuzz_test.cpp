// Interpreter robustness: random bytecode must always terminate with a
// typed status — never crash, never hang, never corrupt the host. The
// watchdog (max_ops) bounds runaway loops in the unmetered TinyEVM
// profile, mirroring a mote's watchdog timer.
#include <gtest/gtest.h>

#include <random>

#include "channel/manager.hpp"
#include "evm/asm.hpp"
#include "evm/vm.hpp"

namespace tinyevm::evm {
namespace {

Bytes random_code(std::mt19937_64& rng, std::size_t len) {
  Bytes code(len);
  for (auto& b : code) b = static_cast<std::uint8_t>(rng());
  return code;
}

/// Biased generator: mostly valid opcodes, realistic push density.
Bytes biased_code(std::mt19937_64& rng, std::size_t len) {
  Assembler a;
  while (a.size() < len) {
    switch (rng() % 8) {
      case 0:
      case 1:
      case 2:
        a.push(rng() & 0xFFFFFF);
        break;
      case 3: {
        static constexpr Opcode kBin[] = {Opcode::ADD, Opcode::MUL,
                                          Opcode::SUB, Opcode::DIV,
                                          Opcode::AND, Opcode::XOR};
        a.op(kBin[rng() % std::size(kBin)]);
        break;
      }
      case 4:
        a.dup(1 + rng() % 16);
        break;
      case 5:
        a.swap(1 + rng() % 16);
        break;
      case 6:
        a.op(rng() % 2 ? Opcode::MSTORE : Opcode::MLOAD);
        break;
      default:
        a.op(rng() % 2 ? Opcode::JUMP : Opcode::JUMPI);
        break;
    }
  }
  return a.take();
}

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeds, RawRandomBytesTerminateTyped) {
  std::mt19937_64 rng(GetParam());
  channel::SensorBank sensors;
  sensors.set_reading(7, U256{22});
  for (int round = 0; round < 40; ++round) {
    channel::DeviceHost host(sensors, VmConfig::tiny());
    VmConfig config = VmConfig::tiny();
    config.max_ops = 200'000;  // tight watchdog for the fuzz loop
    Vm vm{config};
    Message msg;
    msg.code = random_code(rng, 16 + rng() % 512);
    msg.data = random_code(rng, rng() % 64);
    const ExecResult r = vm.execute(host, msg);
    // Any status is fine; the invariant is typed, bounded termination.
    EXPECT_LE(r.stats.ops_executed, config.max_ops + 1);
    EXPECT_LE(r.stats.max_stack_pointer, config.stack_limit);
    EXPECT_LE(r.stats.peak_memory, config.memory_limit);
  }
}

TEST_P(FuzzSeeds, BiasedCodeTerminatesTyped) {
  std::mt19937_64 rng(GetParam() ^ 0xBEEF);
  channel::SensorBank sensors;
  for (int round = 0; round < 40; ++round) {
    channel::DeviceHost host(sensors, VmConfig::tiny());
    VmConfig config = VmConfig::tiny();
    config.max_ops = 200'000;
    Vm vm{config};
    Message msg;
    msg.code = biased_code(rng, 32 + rng() % 256);
    const ExecResult r = vm.execute(host, msg);
    EXPECT_LE(r.stats.max_stack_pointer, config.stack_limit);
  }
}

TEST_P(FuzzSeeds, EthereumProfileBoundedByGas) {
  std::mt19937_64 rng(GetParam() ^ 0xCAFE);
  channel::SensorBank sensors;
  for (int round = 0; round < 20; ++round) {
    channel::DeviceHost host(sensors, VmConfig::ethereum());
    Vm vm{VmConfig::ethereum()};
    Message msg;
    msg.code = random_code(rng, 16 + rng() % 512);
    msg.gas = 100'000;
    const ExecResult r = vm.execute(host, msg);
    if (r.status == Status::Success || r.status == Status::Revert) {
      EXPECT_GE(r.gas_left, 0);
    } else {
      EXPECT_EQ(r.gas_left, 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

TEST(Watchdog, InfiniteLoopAborts) {
  // JUMPDEST; PUSH1 0; JUMP — the canonical off-chain footgun.
  Assembler prog;
  prog.label();
  prog.push(0).op(Opcode::JUMP);
  channel::SensorBank sensors;
  channel::DeviceHost host(sensors, VmConfig::tiny());
  VmConfig config = VmConfig::tiny();
  config.max_ops = 10'000;
  Vm vm{config};
  Message msg;
  msg.code = prog.take();
  const ExecResult r = vm.execute(host, msg);
  EXPECT_EQ(r.status, Status::WatchdogExpired);
  EXPECT_EQ(r.stats.ops_executed, 10'001u);
}

TEST(Watchdog, ZeroMeansUnlimited) {
  Assembler prog;
  prog.push(30'000);
  const auto loop = prog.label();
  prog.push(1).swap(1).op(Opcode::SUB).dup(1);
  prog.push_label(loop).op(Opcode::JUMPI);
  channel::SensorBank sensors;
  channel::DeviceHost host(sensors, VmConfig::tiny());
  VmConfig config = VmConfig::tiny();
  config.max_ops = 0;
  Vm vm{config};
  Message msg;
  msg.code = prog.take();
  const ExecResult r = vm.execute(host, msg);
  EXPECT_TRUE(r.ok());
  EXPECT_GT(r.stats.ops_executed, 100'000u);
}

TEST(Watchdog, DefaultHighEnoughForHeavyCorpusContracts) {
  // The heaviest corpus constructors run minutes of MCU time but stay
  // well under the default 50M-op watchdog.
  EXPECT_GE(VmConfig::tiny().max_ops, 10'000'000u);
}

}  // namespace
}  // namespace tinyevm::evm
