// Golden + N-way differential harness over the execution-engine registry.
//
// Every program — random bytes, biased fuzz programs, the synthetic
// contract corpus, and directed edge programs — runs once per registered
// engine (raw token-threaded, checked pre-decoded, check-elided, and any
// engine registered after these: a fourth engine is differential-tested
// here for free). All observations must be bit-identical (halt status,
// output, gas, stack high-water, memory peak, op/cycle counts, logs,
// storage), and the reference engine ("raw", first in the registry) must
// match the recorded golden corpus in tests/golden/ — so a regression
// that changes every engine the same way is still caught.
//
// Regenerating the golden files (only when semantics intentionally
// change): run the test binary directly with TINYEVM_REGEN_GOLDEN=1 and
// commit the rewritten tests/golden/*.txt. The recorded values are
// platform-independent except for the corpus category, whose programs are
// shaped by std::lognormal_distribution (identical across libstdc++
// builds, which is what CI runs).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <random>
#include <sstream>
#include <string>

#include "channel/manager.hpp"
#include "corpus/corpus.hpp"
#include "evm/asm.hpp"
#include "evm/code_cache.hpp"
#include "evm/engine.hpp"
#include "evm/vm.hpp"

namespace tinyevm::evm {
namespace {

Bytes random_code(std::mt19937_64& rng, std::size_t len) {
  Bytes code(len);
  for (auto& b : code) b = static_cast<std::uint8_t>(rng());
  return code;
}

/// Biased generator mirroring evm_fuzz_test: mostly valid opcodes with
/// realistic push density, plus the signed/shift ops and the PUSH/DUP/SWAP
/// heads the peephole pass fuses.
Bytes biased_code(std::mt19937_64& rng, std::size_t len) {
  Assembler a;
  while (a.size() < len) {
    switch (rng() % 10) {
      case 0:
      case 1:
      case 2:
        a.push(rng() & 0xFFFFFF);
        break;
      case 3: {
        static constexpr Opcode kBin[] = {
            Opcode::ADD,  Opcode::MUL,  Opcode::SUB,        Opcode::DIV,
            Opcode::SDIV, Opcode::MOD,  Opcode::SMOD,       Opcode::AND,
            Opcode::OR,   Opcode::XOR,  Opcode::LT,         Opcode::GT,
            Opcode::SLT,  Opcode::SGT,  Opcode::EQ,         Opcode::BYTE,
            Opcode::SHL,  Opcode::SHR,  Opcode::SAR,        Opcode::EXP,
            Opcode::SIGNEXTEND};
        a.op(kBin[rng() % std::size(kBin)]);
        break;
      }
      case 4:
        a.dup(1 + rng() % 16);
        break;
      case 5:
        a.swap(1 + rng() % 16);
        break;
      case 6:
        a.op(rng() % 2 ? Opcode::MSTORE : Opcode::MLOAD);
        break;
      case 7:
        a.op(rng() % 2 ? Opcode::SSTORE : Opcode::SLOAD);
        break;
      case 8:
        a.op(rng() % 2 ? Opcode::ISZERO : Opcode::NOT);
        break;
      default:
        a.op(rng() % 2 ? Opcode::JUMP : Opcode::JUMPI);
        break;
    }
  }
  return a.take();
}

/// Everything observable from one execution, with logs and storage folded
/// into digests so they fit one golden line.
struct Observation {
  ExecResult result;
  std::size_t log_count = 0;
  std::size_t storage_slots = 0;
  Hash256 output_hash{};
  Hash256 log_digest{};
  Hash256 storage_digest{};
};

Hash256 digest_logs(const std::vector<LogEntry>& logs) {
  Bytes blob;
  for (const auto& log : logs) {
    blob.insert(blob.end(), log.address.begin(), log.address.end());
    blob.push_back(static_cast<std::uint8_t>(log.topics.size()));
    for (const auto& topic : log.topics) {
      const auto w = topic.to_word();
      blob.insert(blob.end(), w.begin(), w.end());
    }
    for (unsigned i = 0; i < 4; ++i) {  // length-prefix against aliasing
      blob.push_back(static_cast<std::uint8_t>(log.data.size() >> (8 * i)));
    }
    blob.insert(blob.end(), log.data.begin(), log.data.end());
  }
  return keccak256(blob);
}

Hash256 digest_storage(const TinyStorage* storage) {
  Bytes blob;
  if (storage != nullptr) {
    for (const auto& [slot, value] : storage->slots()) {  // sorted map
      blob.push_back(slot);
      const auto w = value.to_word();
      blob.insert(blob.end(), w.begin(), w.end());
    }
  }
  return keccak256(blob);
}

/// Runs `code` through one execution engine and returns everything
/// observable. Each run gets a private translation cache so the
/// translation-consuming engines always start from a cold, deterministic
/// translation.
Observation observe(const Bytes& code, const Bytes& data, VmConfig config,
                    const std::string& engine, std::int64_t gas) {
  config.engine = engine;
  channel::SensorBank sensors;
  sensors.set_reading(7, U256{22});
  channel::DeviceHost host(sensors, config);
  Vm vm{config, std::make_shared<CodeCache>()};
  Message msg;
  msg.code = code;
  msg.data = data;
  msg.gas = gas;
  Observation obs;
  obs.result = vm.execute(host, msg);
  obs.log_count = host.logs().size();
  obs.output_hash = keccak256(obs.result.output);
  obs.log_digest = digest_logs(host.logs());
  const auto* storage = host.storage_of(msg.self);
  if (storage != nullptr) obs.storage_slots = storage->used_slots();
  obs.storage_digest = digest_storage(storage);
  return obs;
}

std::string serialize(const Observation& o) {
  std::ostringstream os;
  os << static_cast<int>(o.result.status) << ' ' << o.result.gas_left << ' '
     << o.result.stats.ops_executed << ' ' << o.result.stats.mcu_cycles
     << ' ' << o.result.stats.max_stack_pointer << ' '
     << o.result.stats.peak_memory << ' ' << o.result.output.size() << ' '
     << to_hex(o.output_hash) << ' ' << o.log_count << ' '
     << to_hex(o.log_digest) << ' ' << o.storage_slots << ' '
     << to_hex(o.storage_digest);
  return os.str();
}

/// One recorded-expectations file under tests/golden/. Normal runs compare
/// every case against its recorded line; with TINYEVM_REGEN_GOLDEN set the
/// file is rewritten from the current observations instead.
class Golden {
 public:
  explicit Golden(const std::string& category)
      : path_(std::string(TINYEVM_GOLDEN_DIR "/") + category + ".txt"),
        regen_(std::getenv("TINYEVM_REGEN_GOLDEN") != nullptr) {
    if (regen_) return;
    std::ifstream in(path_);
    loaded_ = in.good();
    std::string line;
    while (std::getline(in, line)) {
      const auto space = line.find(' ');
      if (space == std::string::npos) continue;
      recorded_[line.substr(0, space)] = line.substr(space + 1);
    }
  }

  void check(const std::string& name, const std::string& line) {
    if (regen_) {
      lines_.push_back(name + ' ' + line);
      return;
    }
    if (!loaded_) {
      if (!missing_reported_) {
        ADD_FAILURE() << "golden file " << path_
                      << " is missing — regenerate with "
                         "TINYEVM_REGEN_GOLDEN=1 ./evm_dispatch_test";
        missing_reported_ = true;
      }
      return;
    }
    const auto it = recorded_.find(name);
    if (it == recorded_.end()) {
      ADD_FAILURE() << "no golden entry for " << name << " in " << path_;
      return;
    }
    EXPECT_EQ(it->second, line) << "golden mismatch: " << name;
  }

  void finish() {
    if (!regen_) return;
    std::ofstream out(path_);
    ASSERT_TRUE(out.good()) << "cannot write " << path_;
    for (const auto& l : lines_) out << l << '\n';
  }

 private:
  std::string path_;
  bool regen_;
  bool loaded_ = false;
  bool missing_reported_ = false;
  std::map<std::string, std::string> recorded_;
  std::vector<std::string> lines_;
};

void expect_identical(const Observation& a, const Observation& b) {
  EXPECT_EQ(a.result.status, b.result.status);
  EXPECT_EQ(a.result.output, b.result.output);
  EXPECT_EQ(a.result.gas_left, b.result.gas_left);
  EXPECT_EQ(a.result.stats.max_stack_pointer,
            b.result.stats.max_stack_pointer);
  EXPECT_EQ(a.result.stats.peak_memory, b.result.stats.peak_memory);
  EXPECT_EQ(a.result.stats.ops_executed, b.result.stats.ops_executed);
  EXPECT_EQ(a.result.stats.mcu_cycles, b.result.stats.mcu_cycles);
  EXPECT_EQ(a.log_count, b.log_count);
  EXPECT_EQ(a.log_digest, b.log_digest);
  EXPECT_EQ(a.storage_slots, b.storage_slots);
  EXPECT_EQ(a.storage_digest, b.storage_digest);
}

/// The core of the suite: every registered engine's observation must match
/// the reference engine's ("raw", first in registration order), and the
/// reference must match the recorded golden line.
void run_case(Golden& golden, const std::string& name, const Bytes& code,
              const Bytes& data, const VmConfig& config, std::int64_t gas) {
  SCOPED_TRACE(name);
  const std::vector<std::string> engines = EngineRegistry::instance().names();
  ASSERT_FALSE(engines.empty());
  const Observation reference = observe(code, data, config, engines[0], gas);
  for (std::size_t i = 1; i < engines.size(); ++i) {
    SCOPED_TRACE("engine=" + engines[i]);
    expect_identical(reference, observe(code, data, config, engines[i], gas));
  }
  golden.check(name, serialize(reference));
}

TEST(DispatchGolden, RawRandomBytes) {
  Golden golden("random");
  for (const std::uint64_t seed : {11u, 22u, 33u, 44u, 55u, 66u}) {
    std::mt19937_64 rng(seed);
    for (int round = 0; round < 40; ++round) {
      VmConfig config = VmConfig::tiny();
      config.max_ops = 200'000;
      const Bytes code = random_code(rng, 16 + rng() % 512);
      const Bytes data = random_code(rng, rng() % 64);
      run_case(golden,
               "random/" + std::to_string(seed) + "/" + std::to_string(round),
               code, data, config, 10'000'000);
    }
  }
  golden.finish();
}

TEST(DispatchGolden, BiasedCode) {
  Golden golden("biased");
  for (const std::uint64_t seed : {11u, 22u, 33u, 44u, 55u, 66u}) {
    std::mt19937_64 rng(seed ^ 0xBEEF);
    for (int round = 0; round < 40; ++round) {
      VmConfig config = VmConfig::tiny();
      config.max_ops = 200'000;
      const Bytes code = biased_code(rng, 32 + rng() % 256);
      run_case(golden,
               "biased/" + std::to_string(seed) + "/" + std::to_string(round),
               code, {}, config, 10'000'000);
    }
  }
  golden.finish();
}

TEST(DispatchGolden, EthereumProfileUnderGas) {
  Golden golden("eth");
  for (const std::uint64_t seed : {11u, 22u, 33u, 44u, 55u, 66u}) {
    std::mt19937_64 rng(seed ^ 0xCAFE);
    for (int round = 0; round < 30; ++round) {
      const Bytes code = round % 2 == 0 ? random_code(rng, 16 + rng() % 512)
                                        : biased_code(rng, 32 + rng() % 256);
      run_case(golden,
               "eth/" + std::to_string(seed) + "/" + std::to_string(round),
               code, {}, VmConfig::ethereum(), 100'000);
    }
  }
  golden.finish();
}

TEST(DispatchGolden, SyntheticCorpusConstructors) {
  // The Fig. 3/4 corpus constructors: storage loops, keccak slot
  // derivation, memory staging — the realistic deployment workload.
  Golden golden("corpus");
  corpus::GeneratorConfig cfg;
  cfg.count = 48;
  const corpus::Generator gen{cfg};
  for (std::size_t i = 0; i < cfg.count; ++i) {
    const auto contract = gen.make(i);
    run_case(golden, "corpus/tiny/" + std::to_string(i), contract.init_code,
             {}, VmConfig::tiny(), 10'000'000);
    run_case(golden, "corpus/eth/" + std::to_string(i), contract.init_code,
             {}, VmConfig::ethereum(), 10'000'000);
  }
  golden.finish();
}

TEST(DispatchGolden, DirectedEdgePrograms) {
  // Directed programs for the paths the translation rewrite touches most:
  // signed-op boundaries, shift saturation, fused superinstruction pairs,
  // translate-time jump resolution, watchdog/gas expiry exactly between a
  // fused pair, and truncated-PUSH / JUMPDEST-in-pushdata translator
  // edges.
  Golden golden("directed");
  std::vector<std::pair<const char*, Bytes>> programs;

  {
    Assembler a;  // INT256_MIN / -1 and INT256_MIN % -1
    a.push_word(U256::max());  // -1
    a.push_word(U256::sign_bit());
    a.op(Opcode::SDIV);
    a.push_word(U256::max());
    a.push_word(U256::sign_bit());
    a.op(Opcode::SMOD);
    programs.emplace_back("sdiv-smod-min", a.take());
  }
  {
    Assembler a;  // SIGNEXTEND index sweep across the 31 boundary
    for (std::uint64_t idx : {0ULL, 30ULL, 31ULL, 32ULL, 1000ULL}) {
      a.push_word(U256::sign_bit() | U256{0x80});
      a.push(idx);
      a.op(Opcode::SIGNEXTEND);
      a.op(Opcode::POP);
    }
    programs.emplace_back("signextend-sweep", a.take());
  }
  {
    Assembler a;  // SAR/SHL/SHR at and past 256
    for (std::uint64_t sh : {0ULL, 1ULL, 255ULL, 256ULL, 257ULL}) {
      a.push_word(U256::sign_bit());
      a.push(sh);
      a.op(Opcode::SAR);
      a.op(Opcode::POP);
      a.push_word(U256::max());
      a.push(sh);
      a.op(Opcode::SHL);
      a.push(sh);
      a.op(Opcode::SHR);
      a.op(Opcode::POP);
    }
    programs.emplace_back("shift-saturation", a.take());
  }
  {
    Assembler a;  // DUP1+MUL / DUP1+ADD — the DupBin superinstruction
    a.push_word(*U256::from_hex("0x123456789abcdef0fedcba9876543210"));
    for (int i = 0; i < 64; ++i) a.dup(1).op(Opcode::MUL);
    for (int i = 0; i < 64; ++i) a.dup(1).op(Opcode::ADD);
    programs.emplace_back("fused-dup-pairs", a.take());
  }
  {
    Assembler a;  // PUSH+binop and SWAP1+binop superinstructions,
                  // including the non-commutative operand order
    a.push(1000);
    for (int i = 0; i < 16; ++i) {
      a.push(3).op(Opcode::ADD);      // PushBin: 3 + top
      a.push(7).op(Opcode::SUB);      // PushBin: 7 - top
      a.push(5).swap(1).op(Opcode::SUB);  // SwapBin: top' = old_top - 5
      a.push(11).op(Opcode::MUL);
      a.dup(2).op(Opcode::XOR);       // DupBin at depth 2
    }
    programs.emplace_back("fused-push-swap-pairs", a.take());
  }
  {
    Assembler a;  // PC interleaved with fused pairs: decoded pc bookkeeping
    a.op(Opcode::PC);
    a.push(3).op(Opcode::ADD);
    a.op(Opcode::PC);
    a.dup(1).op(Opcode::MUL);
    a.op(Opcode::PC);
    a.push(0).op(Opcode::POP);
    a.op(Opcode::PC);
    programs.emplace_back("pc-between-fusions", a.take());
  }
  {
    Assembler a;  // EXP with zero and full-width exponents
    a.push(0).push(3).op(Opcode::EXP).op(Opcode::POP);
    a.push_word(U256::max()).push(3).op(Opcode::EXP).op(Opcode::POP);
    programs.emplace_back("exp-extremes", a.take());
  }
  {
    Assembler a;  // memory-expansion gas overflow offsets
    a.push(1).push_word(U256{0x0FFF'FFFF'FFFF'FFFFULL}).op(Opcode::MSTORE);
    programs.emplace_back("mstore-huge-offset", a.take());
  }
  {
    Assembler a;  // PUSH+JUMP over a JUMPDEST (fused direct jump)
    a.push(4).op(Opcode::JUMP).op(Opcode::INVALID);
    a.op(Opcode::JUMPDEST);  // at pc 4
    a.push(42).push(0).op(Opcode::SSTORE);
    programs.emplace_back("push-jump-valid", a.take());
  }
  {
    Assembler a;  // PUSH+JUMP to a non-JUMPDEST (fused fail)
    a.push(200).op(Opcode::JUMP);
    programs.emplace_back("push-jump-invalid", a.take());
  }
  {
    Assembler a;  // PUSH+JUMP with a >64-bit destination immediate
    a.push_word(U256::max()).op(Opcode::JUMP);
    programs.emplace_back("push-jump-wide-imm", a.take());
  }
  {
    Assembler a;  // PUSH+JUMPI taken and not taken, plus invalid-when-taken
    a.push(1).push(6).op(Opcode::JUMPI);   // taken -> pc 6
    a.op(Opcode::INVALID);
    a.op(Opcode::JUMPDEST);                // pc 6
    a.push(0).push(200).op(Opcode::JUMPI); // not taken, bad dest ignored
    a.push(1).push(200).op(Opcode::JUMPI); // taken, bad dest -> InvalidJump
    programs.emplace_back("push-jumpi-paths", a.take());
  }
  {
    // PUSH+ADD with an empty stack: the fused pair must fall back to a
    // plain PUSH and fail StackUnderflow on the ADD instruction.
    programs.emplace_back("pushbin-underflow", Bytes{0x60, 0x01, 0x01});
  }
  {
    // Raw-byte translator edges: PUSH32 with a truncated immediate.
    programs.emplace_back("trunc-push32", Bytes{0x60, 0x01, 0x7f, 0xAA});
    programs.emplace_back("trunc-push2", Bytes{0x61, 0xAB});
    programs.emplace_back("trunc-push-empty", Bytes{0x7f});
  }
  {
    // JUMPDEST hidden inside pushdata is not a valid target: PUSH1 4; JUMP
    // lands on the 0x5b byte inside `PUSH1 0x5b` -> InvalidJump.
    programs.emplace_back("jumpdest-in-pushdata",
                          Bytes{0x60, 0x04, 0x56, 0x60, 0x5b, 0x00});
  }

  for (const auto& [label, code] : programs) {
    run_case(golden, std::string("directed/") + label + "/tiny", code, {},
             VmConfig::tiny(), 10'000'000);
    run_case(golden, std::string("directed/") + label + "/eth", code, {},
             VmConfig::ethereum(), 10'000'000);
    run_case(golden, std::string("directed/") + label + "/eth-oog", code, {},
             VmConfig::ethereum(), 150);  // OOG mid-run
  }

  // Gas sweep across a fused-pair-heavy program: exhausting gas at every
  // possible point exercises each superinstruction's fallback boundary.
  {
    Assembler a;
    a.push(9);
    a.push(3).op(Opcode::ADD);
    a.dup(1).op(Opcode::MUL);
    a.push(5).swap(1).op(Opcode::SUB);
    a.push(1).push(17).op(Opcode::JUMPI);
    a.op(Opcode::INVALID);
    a.op(Opcode::JUMPDEST);  // pc 17
    a.op(Opcode::POP);
    const Bytes code = a.take();
    for (std::int64_t gas = 0; gas <= 40; ++gas) {
      run_case(golden, "directed/gas-sweep/" + std::to_string(gas), code, {},
               VmConfig::ethereum(), gas);
    }
  }

  // Watchdog expiring at every op boundary of the same program, and of the
  // classic DUP1+MUL squaring loop.
  {
    Assembler a;
    a.push(3);
    for (int i = 0; i < 8; ++i) {
      a.dup(1).op(Opcode::MUL);
      a.push(1).op(Opcode::ADD);
    }
    const Bytes code = a.take();
    for (std::uint64_t cap = 1; cap <= 34; ++cap) {
      VmConfig config = VmConfig::tiny();
      config.max_ops = cap;
      run_case(golden, "directed/watchdog/" + std::to_string(cap), code, {},
               config, 10'000'000);
    }
  }

  // Stack-limit boundary: fused heads must fall back (and overflow exactly
  // like the unfused pair) when the transient push would burst the cap.
  {
    Assembler a;
    for (int i = 0; i < 4; ++i) a.push(i + 1);
    a.push(5).op(Opcode::ADD);  // PushBin at the cap: transient sp+1
    const Bytes code = a.take();
    for (std::size_t limit : {3ULL, 4ULL, 5ULL, 6ULL}) {
      VmConfig config = VmConfig::tiny();
      config.stack_limit = limit;
      run_case(golden, "directed/stack-cap/" + std::to_string(limit), code,
               {}, config, 10'000'000);
    }
  }

  golden.finish();
}

TEST(DispatchGolden, ElisionBoundarySweeps) {
  // Check-elision boundary torture: resource limits that expire *inside*
  // an elidable block, so the span's bulk entry test must fail and the
  // checked fallback must reproduce the per-instruction failure point
  // bit-for-bit (run_case already holds all three paths identical).
  Golden golden("elision");

  // A JUMPDEST-led counting loop whose body starts with an elidable span
  // (PUSH 1; SWAP1; SUB; DUP1 -> Push + SwapBin + Dup) before the
  // terminating PUSH+JUMPI. Every iteration re-enters the span.
  Assembler loop;
  loop.push(10);                      // counter
  loop.op(Opcode::JUMPDEST);          // pc 2: loop head
  loop.push(1).swap(1).op(Opcode::SUB);
  loop.dup(1);
  loop.push(2).op(Opcode::JUMPI);     // counter != 0 -> loop
  loop.op(Opcode::POP);
  const Bytes loop_code = loop.take();

  // A straight-line program whose entry span covers the whole body: the
  // limits then land inside the single bulk-charged region.
  Assembler line;
  line.push(7);
  for (int i = 0; i < 12; ++i) {
    line.push(3).op(Opcode::ADD);
    line.dup(1).op(Opcode::XOR);
    line.op(Opcode::ISZERO);
    line.op(Opcode::NOT);
  }
  const Bytes line_code = line.take();

  // Gas expiring at every possible point of the loop (Ethereum profile
  // meters gas; the span entry test reads the live gas counter).
  for (std::int64_t gas = 0; gas <= 120; ++gas) {
    run_case(golden, "elision/loop-gas/" + std::to_string(gas), loop_code,
             {}, VmConfig::ethereum(), gas);
  }
  for (std::int64_t gas = 0; gas <= 160; ++gas) {
    run_case(golden, "elision/line-gas/" + std::to_string(gas), line_code,
             {}, VmConfig::ethereum(), gas);
  }

  // Watchdog expiring at every op boundary, including mid-span.
  for (std::uint64_t cap = 1; cap <= 70; ++cap) {
    VmConfig config = VmConfig::tiny();
    config.max_ops = cap;
    run_case(golden, "elision/loop-watchdog/" + std::to_string(cap),
             loop_code, {}, config, 10'000'000);
    run_case(golden, "elision/line-watchdog/" + std::to_string(cap),
             line_code, {}, config, 10'000'000);
  }

  // Stack caps around the spans' peak: entry tests must reject exactly
  // when the checked path would overflow mid-block.
  for (std::size_t limit = 1; limit <= 6; ++limit) {
    VmConfig config = VmConfig::tiny();
    config.stack_limit = limit;
    run_case(golden, "elision/loop-stack-cap/" + std::to_string(limit),
             loop_code, {}, config, 10'000'000);
    run_case(golden, "elision/line-stack-cap/" + std::to_string(limit),
             line_code, {}, config, 10'000'000);
  }

  // The DUP-fed variant of the counting loop: the target is pushed once
  // before the loop and DUPed to the top each iteration, so the back
  // edge is a *plain* JUMPI until the constant dataflow resolves it.
  // The elided engine then runs it as a one-slot span tail
  // (kSpanTailDynJumpI); these sweeps drive every limit through that
  // tail and the checked engines must agree at each boundary.
  Assembler dyn;
  dyn.push(4);                        // jump target: the JUMPDEST below
  dyn.push(10);                       // counter
  dyn.op(Opcode::JUMPDEST);           // pc 4: loop head
  dyn.push(1).swap(1).op(Opcode::SUB);
  dyn.dup(1);
  dyn.dup(3);
  dyn.op(Opcode::JUMPI);              // counter != 0 -> loop (resolved)
  dyn.op(Opcode::POP).op(Opcode::POP);
  const Bytes dyn_code = dyn.take();

  for (std::int64_t gas = 0; gas <= 140; ++gas) {
    run_case(golden, "elision/dynloop-gas/" + std::to_string(gas), dyn_code,
             {}, VmConfig::ethereum(), gas);
  }
  for (std::uint64_t cap = 1; cap <= 80; ++cap) {
    VmConfig config = VmConfig::tiny();
    config.max_ops = cap;
    run_case(golden, "elision/dynloop-watchdog/" + std::to_string(cap),
             dyn_code, {}, config, 10'000'000);
  }
  for (std::size_t limit = 1; limit <= 6; ++limit) {
    VmConfig config = VmConfig::tiny();
    config.stack_limit = limit;
    run_case(golden, "elision/dynloop-stack-cap/" + std::to_string(limit),
             dyn_code, {}, config, 10'000'000);
  }

  golden.finish();
}

}  // namespace
}  // namespace tinyevm::evm
