// Differential test for the token-threaded dispatcher: every program —
// random bytes, biased fuzz programs, and the synthetic contract corpus —
// must produce bit-identical results (halt status, output, gas, stack
// high-water, memory peak, op/cycle counts, logs, storage) under the new
// table dispatcher and the legacy two-level switch it replaced. The legacy
// path is compiled behind TINYEVM_LEGACY_DISPATCH for exactly this
// comparison and is scheduled for removal once it has soaked.
#include <gtest/gtest.h>

#include <random>

#include "channel/manager.hpp"
#include "corpus/corpus.hpp"
#include "evm/asm.hpp"
#include "evm/vm.hpp"

namespace tinyevm::evm {
namespace {

#ifndef TINYEVM_LEGACY_DISPATCH

TEST(DispatchDifferential, LegacyDispatchCompiledOut) {
  GTEST_SKIP() << "configure with -DTINYEVM_LEGACY_DISPATCH=ON to enable "
                  "the old-vs-new dispatch comparison";
}

#else

Bytes random_code(std::mt19937_64& rng, std::size_t len) {
  Bytes code(len);
  for (auto& b : code) b = static_cast<std::uint8_t>(rng());
  return code;
}

/// Biased generator mirroring evm_fuzz_test: mostly valid opcodes with
/// realistic push density, plus the signed/shift ops the dispatch rewrite
/// touched.
Bytes biased_code(std::mt19937_64& rng, std::size_t len) {
  Assembler a;
  while (a.size() < len) {
    switch (rng() % 10) {
      case 0:
      case 1:
      case 2:
        a.push(rng() & 0xFFFFFF);
        break;
      case 3: {
        static constexpr Opcode kBin[] = {
            Opcode::ADD,  Opcode::MUL,  Opcode::SUB,        Opcode::DIV,
            Opcode::SDIV, Opcode::MOD,  Opcode::SMOD,       Opcode::AND,
            Opcode::OR,   Opcode::XOR,  Opcode::LT,         Opcode::GT,
            Opcode::SLT,  Opcode::SGT,  Opcode::EQ,         Opcode::BYTE,
            Opcode::SHL,  Opcode::SHR,  Opcode::SAR,        Opcode::EXP,
            Opcode::SIGNEXTEND};
        a.op(kBin[rng() % std::size(kBin)]);
        break;
      }
      case 4:
        a.dup(1 + rng() % 16);
        break;
      case 5:
        a.swap(1 + rng() % 16);
        break;
      case 6:
        a.op(rng() % 2 ? Opcode::MSTORE : Opcode::MLOAD);
        break;
      case 7:
        a.op(rng() % 2 ? Opcode::SSTORE : Opcode::SLOAD);
        break;
      case 8:
        a.op(rng() % 2 ? Opcode::ISZERO : Opcode::NOT);
        break;
      default:
        a.op(rng() % 2 ? Opcode::JUMP : Opcode::JUMPI);
        break;
    }
  }
  return a.take();
}

/// Runs `code` under one dispatch kind and returns everything observable.
struct Observation {
  ExecResult result;
  std::size_t log_count = 0;
  std::size_t storage_slots = 0;
};

Observation observe(const Bytes& code, const Bytes& data, VmConfig config,
                    DispatchKind kind, std::int64_t gas) {
  config.dispatch = kind;
  channel::SensorBank sensors;
  sensors.set_reading(7, U256{22});
  channel::DeviceHost host(sensors, config);
  Vm vm{config};
  Message msg;
  msg.code = code;
  msg.data = data;
  msg.gas = gas;
  Observation obs;
  obs.result = vm.execute(host, msg);
  obs.log_count = host.logs().size();
  if (const auto* storage = host.storage_of(msg.self)) {
    obs.storage_slots = storage->used_slots();
  }
  return obs;
}

void expect_identical(const Bytes& code, const Bytes& data, VmConfig config,
                      std::int64_t gas, const char* label) {
  const Observation threaded =
      observe(code, data, config, DispatchKind::Threaded, gas);
  const Observation legacy =
      observe(code, data, config, DispatchKind::LegacySwitch, gas);
  EXPECT_EQ(threaded.result.status, legacy.result.status) << label;
  EXPECT_EQ(threaded.result.output, legacy.result.output) << label;
  EXPECT_EQ(threaded.result.gas_left, legacy.result.gas_left) << label;
  EXPECT_EQ(threaded.result.stats.max_stack_pointer,
            legacy.result.stats.max_stack_pointer)
      << label;
  EXPECT_EQ(threaded.result.stats.peak_memory,
            legacy.result.stats.peak_memory)
      << label;
  EXPECT_EQ(threaded.result.stats.ops_executed,
            legacy.result.stats.ops_executed)
      << label;
  EXPECT_EQ(threaded.result.stats.mcu_cycles, legacy.result.stats.mcu_cycles)
      << label;
  EXPECT_EQ(threaded.log_count, legacy.log_count) << label;
  EXPECT_EQ(threaded.storage_slots, legacy.storage_slots) << label;
}

class DispatchDifferentialSeeds
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DispatchDifferentialSeeds, RawRandomBytesMatch) {
  std::mt19937_64 rng(GetParam());
  for (int round = 0; round < 40; ++round) {
    VmConfig config = VmConfig::tiny();
    config.max_ops = 200'000;
    const Bytes code = random_code(rng, 16 + rng() % 512);
    const Bytes data = random_code(rng, rng() % 64);
    expect_identical(code, data, config, 10'000'000, "tiny/random");
  }
}

TEST_P(DispatchDifferentialSeeds, BiasedCodeMatches) {
  std::mt19937_64 rng(GetParam() ^ 0xBEEF);
  for (int round = 0; round < 40; ++round) {
    VmConfig config = VmConfig::tiny();
    config.max_ops = 200'000;
    const Bytes code = biased_code(rng, 32 + rng() % 256);
    expect_identical(code, {}, config, 10'000'000, "tiny/biased");
  }
}

TEST_P(DispatchDifferentialSeeds, EthereumProfileMatchesUnderGas) {
  std::mt19937_64 rng(GetParam() ^ 0xCAFE);
  for (int round = 0; round < 30; ++round) {
    const Bytes code = round % 2 == 0 ? random_code(rng, 16 + rng() % 512)
                                      : biased_code(rng, 32 + rng() % 256);
    expect_identical(code, {}, VmConfig::ethereum(), 100'000, "eth/fuzz");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DispatchDifferentialSeeds,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

TEST(DispatchDifferential, SyntheticCorpusConstructorsMatch) {
  // The Fig. 3/4 corpus constructors: storage loops, keccak slot
  // derivation, memory staging — the realistic deployment workload.
  corpus::GeneratorConfig cfg;
  cfg.count = 96;
  const corpus::Generator gen{cfg};
  for (std::size_t i = 0; i < cfg.count; ++i) {
    const auto contract = gen.make(i);
    expect_identical(contract.init_code, {}, VmConfig::tiny(), 10'000'000,
                     "corpus/tiny");
    expect_identical(contract.init_code, {}, VmConfig::ethereum(),
                     10'000'000, "corpus/eth");
  }
}

TEST(DispatchDifferential, EdgeCaseProgramsMatch) {
  // Directed programs for the paths the rewrite touched most: signed-op
  // boundaries, shift saturation, fused DUP1+MUL/ADD, watchdog expiry at
  // the exact op boundary, and gas exhaustion mid-pair.
  std::vector<std::pair<const char*, Bytes>> programs;

  {
    Assembler a;  // INT256_MIN / -1 and INT256_MIN % -1
    a.push_word(U256::max());  // -1
    a.push_word(U256::sign_bit());
    a.op(Opcode::SDIV);
    a.push_word(U256::max());
    a.push_word(U256::sign_bit());
    a.op(Opcode::SMOD);
    programs.emplace_back("sdiv-smod-min", a.take());
  }
  {
    Assembler a;  // SIGNEXTEND index sweep across the 31 boundary
    for (std::uint64_t idx : {0ULL, 30ULL, 31ULL, 32ULL, 1000ULL}) {
      a.push_word(U256::sign_bit() | U256{0x80});
      a.push(idx);
      a.op(Opcode::SIGNEXTEND);
      a.op(Opcode::POP);
    }
    programs.emplace_back("signextend-sweep", a.take());
  }
  {
    Assembler a;  // SAR/SHL/SHR at and past 256
    for (std::uint64_t sh : {0ULL, 1ULL, 255ULL, 256ULL, 257ULL}) {
      a.push_word(U256::sign_bit());
      a.push(sh);
      a.op(Opcode::SAR);
      a.op(Opcode::POP);
      a.push_word(U256::max());
      a.push(sh);
      a.op(Opcode::SHL);
      a.push(sh);
      a.op(Opcode::SHR);
      a.op(Opcode::POP);
    }
    programs.emplace_back("shift-saturation", a.take());
  }
  {
    Assembler a;  // the fused DUP1+MUL / DUP1+ADD hot pair
    a.push_word(*U256::from_hex("0x123456789abcdef0fedcba9876543210"));
    for (int i = 0; i < 64; ++i) a.dup(1).op(Opcode::MUL);
    for (int i = 0; i < 64; ++i) a.dup(1).op(Opcode::ADD);
    programs.emplace_back("fused-pairs", a.take());
  }
  {
    Assembler a;  // EXP with zero and full-width exponents
    a.push(0).push(3).op(Opcode::EXP).op(Opcode::POP);
    a.push_word(U256::max()).push(3).op(Opcode::EXP).op(Opcode::POP);
    programs.emplace_back("exp-extremes", a.take());
  }
  {
    Assembler a;  // memory-expansion gas overflow offsets
    a.push(1).push_word(U256{0x0FFF'FFFF'FFFF'FFFFULL}).op(Opcode::MSTORE);
    programs.emplace_back("mstore-huge-offset", a.take());
  }

  for (const auto& [label, code] : programs) {
    expect_identical(code, {}, VmConfig::tiny(), 10'000'000, label);
    expect_identical(code, {}, VmConfig::ethereum(), 10'000'000, label);
    expect_identical(code, {}, VmConfig::ethereum(), 150, label);  // OOG mid-run
  }

  // Watchdog expiring exactly between a fused DUP1+MUL pair.
  Assembler loop;
  loop.push_word(U256{3});
  for (int i = 0; i < 100; ++i) loop.dup(1).op(Opcode::MUL);
  const Bytes code = loop.take();
  for (std::uint64_t cap : {1ULL, 2ULL, 3ULL, 100ULL, 101ULL, 102ULL}) {
    VmConfig config = VmConfig::tiny();
    config.max_ops = cap;
    expect_identical(code, {}, config, 10'000'000, "watchdog-boundary");
  }
}

#endif  // TINYEVM_LEGACY_DISPATCH

}  // namespace
}  // namespace tinyevm::evm
