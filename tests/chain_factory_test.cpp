// The factory pattern in real EVM bytecode on the simulated main chain —
// Listing 1's mechanism at the bytecode level: a factory contract that
// CREATEs child payment-channel contracts and counts them with an on-chain
// logical clock. Exercises nested CREATE, cross-contract CALL, and
// DELEGATECALL semantics through the ChainHost.
#include <gtest/gtest.h>

#include "chain/chain.hpp"
#include "evm/asm.hpp"

namespace tinyevm::chain {
namespace {

using evm::Assembler;
using evm::Opcode;

PrivateKey key(const char* seed) { return PrivateKey::from_seed(seed); }

/// Factory runtime: on any call, CREATE a child whose runtime returns 42,
/// bump slot 0 (the logical clock), and return the child address.
evm::Bytes factory_runtime() {
  // Child runtime: PUSH1 42 PUSH1 0 MSTORE PUSH1 32 PUSH1 0 RETURN.
  Assembler child;
  child.push(42).push(0).op(Opcode::MSTORE);
  child.push(32).push(0).op(Opcode::RETURN);
  const evm::Bytes child_init = Assembler::deployer(child.take());

  Assembler f;
  // Stage the child init code into memory byte by byte (simple and
  // size-independent).
  for (std::size_t i = 0; i < child_init.size(); ++i) {
    f.push(child_init[i]).push(i).op(Opcode::MSTORE8);
  }
  // CREATE(value=0, offset=0, len).
  f.push(child_init.size()).push(0).push(0).op(Opcode::CREATE);
  // Logical clock: slot0 += 1  (Listing 1's Logical-Clock).
  f.push(0).op(Opcode::SLOAD).push(1).op(Opcode::ADD);
  f.push(0).op(Opcode::SSTORE);
  // Return the child address.
  f.push(0).op(Opcode::MSTORE);
  f.push(32).push(0).op(Opcode::RETURN);
  return f.take();
}

struct FactoryFixture {
  Blockchain chain;
  PrivateKey deployer = key("factory-owner");
  Address factory{};

  FactoryFixture() {
    chain.credit(deployer.address(), U256{1'000'000'000});
    Transaction tx;
    tx.data = Assembler::deployer(factory_runtime());
    tx.gas_limit = 50'000'000;
    const auto receipt = chain.submit(deployer, tx);
    EXPECT_TRUE(receipt && receipt->success);
    factory = receipt->contract_address;
  }

  Address create_child() {
    Transaction tx;
    tx.to = factory;
    tx.gas_limit = 50'000'000;
    const auto receipt = chain.submit(deployer, tx);
    EXPECT_TRUE(receipt && receipt->success);
    Address child{};
    if (receipt->output.size() == 32) {
      std::copy(receipt->output.begin() + 12, receipt->output.end(),
                child.begin());
    }
    return child;
  }
};

TEST(BytecodeFactory, DeploysChildContracts) {
  FactoryFixture f;
  const Address child = f.create_child();
  ASSERT_NE(child, Address{});
  const auto* code = f.chain.code_of(child);
  ASSERT_NE(code, nullptr);
  EXPECT_FALSE(code->empty());
}

TEST(BytecodeFactory, ChildrenAreCallable) {
  FactoryFixture f;
  const Address child = f.create_child();
  Transaction call;
  call.to = child;
  const auto receipt = f.chain.submit(f.deployer, call);
  ASSERT_TRUE(receipt && receipt->success);
  EXPECT_EQ(U256::from_bytes(receipt->output), U256{42});
}

TEST(BytecodeFactory, LogicalClockCountsChildren) {
  FactoryFixture f;
  f.create_child();
  f.create_child();
  f.create_child();
  EXPECT_EQ(f.chain.storage_at(f.factory, U256{0}), U256{3});
}

TEST(BytecodeFactory, ChildrenHaveDistinctAddresses) {
  FactoryFixture f;
  const Address c1 = f.create_child();
  const Address c2 = f.create_child();
  EXPECT_NE(c1, c2);
  EXPECT_NE(c1, Address{});
}

// ---- nested call semantics through the chain host ----

TEST(ChainCalls, ValueTransferViaCall) {
  Blockchain chain;
  const auto alice = key("alice");
  chain.credit(alice.address(), U256{1'000'000'000});

  // Forwarder runtime: if calldata names a target, CALL it with value 100.
  // The empty-calldata guard matters: contracts execute on plain value
  // transfers too, and an unguarded forwarder would pay address zero when
  // it gets funded.
  Assembler fwd;
  fwd.op(Opcode::CALLDATASIZE).op(Opcode::ISZERO);
  const std::uint64_t kStop = 35;
  fwd.push_label(kStop).op(Opcode::JUMPI);
  fwd.push(0).push(0).push(0).push(0);    // ret/arg ranges
  fwd.push(100);                          // value
  fwd.push(0).op(Opcode::CALLDATALOAD);   // target address (word 0)
  fwd.push(50'000);                       // gas
  fwd.op(Opcode::CALL);
  fwd.push(0).op(Opcode::MSTORE);
  fwd.push(32).push(0).op(Opcode::RETURN);
  while (fwd.size() < kStop) fwd.op(Opcode::STOP);
  fwd.label();  // kStop
  fwd.op(Opcode::STOP);

  Transaction deploy;
  deploy.data = Assembler::deployer(fwd.take());
  deploy.gas_limit = 10'000'000;
  const auto dr = chain.submit(alice, deploy);
  ASSERT_TRUE(dr && dr->success);

  // Fund the forwarder, then have it pay bob.
  const auto bob = key("bob").address();
  Transaction fund;
  fund.to = dr->contract_address;
  fund.value = U256{500};
  ASSERT_TRUE(chain.submit(alice, fund)->success);

  Transaction trigger;
  trigger.to = dr->contract_address;
  trigger.data.assign(32, 0);
  std::copy(bob.begin(), bob.end(), trigger.data.begin() + 12);
  trigger.gas_limit = 10'000'000;
  const auto tr = chain.submit(alice, trigger);
  ASSERT_TRUE(tr && tr->success);
  EXPECT_EQ(U256::from_bytes(tr->output), U256{1});  // CALL succeeded
  EXPECT_EQ(chain.balance_of(bob), U256{100});
  EXPECT_EQ(chain.balance_of(dr->contract_address), U256{400});
}

TEST(ChainCalls, SelfdestructSweepsBalance) {
  Blockchain chain;
  const auto alice = key("alice");
  chain.credit(alice.address(), U256{1'000'000'000});

  // Runtime: SELFDESTRUCT(caller).
  Assembler sd;
  sd.op(Opcode::CALLER).op(Opcode::SELFDESTRUCT);
  Transaction deploy;
  deploy.data = Assembler::deployer(sd.take());
  deploy.value = U256{777};  // endow the contract
  deploy.gas_limit = 10'000'000;
  const auto dr = chain.submit(alice, deploy);
  ASSERT_TRUE(dr && dr->success);
  EXPECT_EQ(chain.balance_of(dr->contract_address), U256{777});

  const U256 before = chain.balance_of(alice.address());
  Transaction boom;
  boom.to = dr->contract_address;
  boom.gas_limit = 100'000;
  ASSERT_TRUE(chain.submit(alice, boom)->success);
  // Balance swept back to the caller (modulo the tx fee).
  EXPECT_EQ(chain.balance_of(dr->contract_address), U256{});
  EXPECT_EQ(chain.balance_of(alice.address()),
            before + U256{777} - U256{21'000});
  // Code wiped.
  EXPECT_TRUE(chain.code_of(dr->contract_address)->empty());
}

TEST(ChainCalls, RevertingCalleeReportsFailureToCaller) {
  Blockchain chain;
  const auto alice = key("alice");
  chain.credit(alice.address(), U256{1'000'000'000});

  // Callee: always REVERT.
  Assembler bad;
  bad.push(0).push(0).op(Opcode::REVERT);
  Transaction d1;
  d1.data = Assembler::deployer(bad.take());
  d1.gas_limit = 10'000'000;
  const auto r1 = chain.submit(alice, d1);
  ASSERT_TRUE(r1 && r1->success);

  // Caller: CALL callee, return the success flag.
  Assembler caller;
  caller.push(0).push(0).push(0).push(0).push(0);
  caller.push_word(U256::from_bytes(r1->contract_address));
  caller.push(50'000).op(Opcode::CALL);
  caller.push(0).op(Opcode::MSTORE);
  caller.push(32).push(0).op(Opcode::RETURN);
  Transaction d2;
  d2.data = Assembler::deployer(caller.take());
  d2.gas_limit = 10'000'000;
  const auto r2 = chain.submit(alice, d2);
  ASSERT_TRUE(r2 && r2->success);

  Transaction trigger;
  trigger.to = r2->contract_address;
  trigger.gas_limit = 10'000'000;
  const auto tr = chain.submit(alice, trigger);
  ASSERT_TRUE(tr && tr->success);
  EXPECT_EQ(U256::from_bytes(tr->output), U256{0});  // callee reverted
}

}  // namespace
}  // namespace tinyevm::chain
