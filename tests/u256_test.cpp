#include "u256/u256.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>

namespace tinyevm {
namespace {

TEST(U256, DefaultIsZero) {
  U256 v;
  EXPECT_TRUE(v.is_zero());
  EXPECT_EQ(v.bit_length(), 0u);
  EXPECT_EQ(v.byte_length(), 0u);
}

TEST(U256, FromHexRoundTrip) {
  const auto v = U256::from_hex("0xdeadbeefcafebabe1234567890abcdef");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->to_hex(), "0xdeadbeefcafebabe1234567890abcdef");
}

TEST(U256, FromHexRejectsBadInput) {
  EXPECT_FALSE(U256::from_hex("").has_value());
  EXPECT_FALSE(U256::from_hex("0x").has_value());
  EXPECT_FALSE(U256::from_hex("xyz").has_value());
  EXPECT_FALSE(U256::from_hex(std::string(65, 'f')).has_value());
  EXPECT_TRUE(U256::from_hex(std::string(64, 'f')).has_value());
}

TEST(U256, FromHexMax) {
  const auto v = U256::from_hex(std::string(64, 'f'));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, U256::max());
}

TEST(U256, WordRoundTrip) {
  const U256 v{0x0102030405060708ULL, 0x1112131415161718ULL,
               0x2122232425262728ULL, 0x3132333435363738ULL};
  const auto w = v.to_word();
  EXPECT_EQ(w[0], 0x01);
  EXPECT_EQ(w[31], 0x38);
  EXPECT_EQ(U256::from_word(w), v);
}

TEST(U256, FromBytesShortInputLeftPads) {
  const std::uint8_t data[] = {0xAB, 0xCD};
  EXPECT_EQ(U256::from_bytes(data), U256{0xABCDULL});
}

TEST(U256, MinimalBytes) {
  EXPECT_TRUE(U256{}.to_minimal_bytes().empty());
  const auto one = U256{1}.to_minimal_bytes();
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 1);
  const auto big = U256{0x1234}.to_minimal_bytes();
  ASSERT_EQ(big.size(), 2u);
  EXPECT_EQ(big[0], 0x12);
  EXPECT_EQ(big[1], 0x34);
}

TEST(U256, AdditionCarriesAcrossLimbs) {
  const U256 a{0, 0, 0, ~0ULL};
  EXPECT_EQ(a + U256{1}, (U256{0, 0, 1, 0}));
}

TEST(U256, AdditionWrapsAtMax) {
  EXPECT_EQ(U256::max() + U256{1}, U256{});
  EXPECT_EQ(U256::max() + U256::max(), U256::max() - U256{1});
}

TEST(U256, SubtractionBorrowsAcrossLimbs) {
  const U256 a{0, 0, 1, 0};
  EXPECT_EQ(a - U256{1}, (U256{0, 0, 0, ~0ULL}));
}

TEST(U256, SubtractionWrapsBelowZero) {
  EXPECT_EQ(U256{} - U256{1}, U256::max());
}

TEST(U256, MultiplicationSmall) {
  EXPECT_EQ(U256{7} * U256{6}, U256{42});
}

TEST(U256, MultiplicationCrossLimb) {
  // (2^64 - 1)^2 = 2^128 - 2^65 + 1
  const U256 a{~0ULL};
  const U256 expected = (U256{1} << 128) - (U256{1} << 65) + U256{1};
  EXPECT_EQ(a * a, expected);
}

TEST(U256, MultiplicationWraps) {
  // 2^255 * 2 == 0 (mod 2^256)
  EXPECT_EQ(U256::sign_bit() * U256{2}, U256{});
}

TEST(U256, DivisionBasics) {
  EXPECT_EQ(U256{100} / U256{7}, U256{14});
  EXPECT_EQ(U256{100} % U256{7}, U256{2});
}

TEST(U256, DivisionByZeroYieldsZero) {
  EXPECT_EQ(U256{123} / U256{}, U256{});
  EXPECT_EQ(U256{123} % U256{}, U256{});
}

TEST(U256, DivisionWideOperands) {
  const U256 a = *U256::from_hex(
      "f000000000000000000000000000000000000000000000000000000000000001");
  const U256 b = *U256::from_hex("100000000000000000000000000000000");
  const auto [q, r] = U256::divmod(a, b);
  EXPECT_EQ(q, *U256::from_hex("f0000000000000000000000000000000"));
  EXPECT_EQ(r, U256{1});
  EXPECT_EQ(q * b + r, a);
}

TEST(U256, ComparisonOrdering) {
  EXPECT_LT(U256{1}, U256{2});
  EXPECT_LT(U256{~0ULL}, (U256{0, 0, 1, 0}));
  EXPECT_GT(U256::max(), U256{});
  EXPECT_EQ(U256{5} <=> U256{5}, std::strong_ordering::equal);
}

TEST(U256, ShiftLeftBasics) {
  EXPECT_EQ(U256{1} << 0, U256{1});
  EXPECT_EQ(U256{1} << 64, (U256{0, 0, 1, 0}));
  EXPECT_EQ(U256{1} << 255, U256::sign_bit());
  EXPECT_EQ(U256{1} << 256, U256{});
}

TEST(U256, ShiftRightBasics) {
  EXPECT_EQ(U256::sign_bit() >> 255, U256{1});
  EXPECT_EQ((U256{0, 0, 1, 0}) >> 64, U256{1});
  EXPECT_EQ(U256{1} >> 1, U256{});
  EXPECT_EQ(U256::max() >> 256, U256{});
}

TEST(U256, ShiftAcrossLimbBoundary) {
  const U256 v{0xF0F0F0F0F0F0F0F0ULL};
  EXPECT_EQ(v << 4, (U256{0, 0, 0xF, 0x0F0F0F0F0F0F0F00ULL}));
  EXPECT_EQ((v << 4) >> 4, v);
}

TEST(U256, BitwiseOps) {
  const U256 a{0b1100};
  const U256 b{0b1010};
  EXPECT_EQ(a & b, U256{0b1000});
  EXPECT_EQ(a | b, U256{0b1110});
  EXPECT_EQ(a ^ b, U256{0b0110});
  EXPECT_EQ(~U256{}, U256::max());
}

TEST(U256, SdivTruncatesTowardZero) {
  const U256 minus_seven = U256{7}.negate();
  EXPECT_EQ(U256::sdiv(minus_seven, U256{2}), U256{3}.negate());
  EXPECT_EQ(U256::sdiv(U256{7}, U256{2}.negate()), U256{3}.negate());
  EXPECT_EQ(U256::sdiv(minus_seven, U256{2}.negate()), U256{3});
}

TEST(U256, SdivOverflowCase) {
  // INT256_MIN / -1 wraps to INT256_MIN (EVM rule).
  const U256 int_min = U256::sign_bit();
  EXPECT_EQ(U256::sdiv(int_min, U256{1}.negate()), int_min);
}

TEST(U256, SdivByZero) {
  EXPECT_EQ(U256::sdiv(U256{5}.negate(), U256{}), U256{});
}

TEST(U256, SmodTakesDividendSign) {
  const U256 minus_seven = U256{7}.negate();
  EXPECT_EQ(U256::smod(minus_seven, U256{3}), U256{1}.negate());
  EXPECT_EQ(U256::smod(U256{7}, U256{3}.negate()), U256{1});
  EXPECT_EQ(U256::smod(U256{7}, U256{}), U256{});
}

TEST(U256, AddmodWithWrappingSum) {
  // (2^256-1 + 2) mod 7: 2^3 ≡ 1 (mod 7) so 2^256 ≡ 2, the sum is
  // (2 - 1) + 2 = 3. The naive wrapped sum would give 1 — this catches
  // implementations lacking the 512-bit intermediate.
  EXPECT_EQ(U256::addmod(U256::max(), U256{2}, U256{7}), U256{3});
}

TEST(U256, AddmodZeroModulus) {
  EXPECT_EQ(U256::addmod(U256{5}, U256{6}, U256{}), U256{});
}

TEST(U256, MulmodUses512BitIntermediate) {
  // (2^255)*(2^255) mod (2^256-1): 2^510 mod (2^256-1).
  // 2^510 = 2^254 * 2^256 ≡ 2^254 (mod 2^256-1).
  const U256 x = U256::sign_bit();
  EXPECT_EQ(U256::mulmod(x, x, U256::max()), U256{1} << 254);
}

TEST(U256, MulmodSmall) {
  EXPECT_EQ(U256::mulmod(U256{10}, U256{10}, U256{7}), U256{2});
  EXPECT_EQ(U256::mulmod(U256{10}, U256{10}, U256{}), U256{});
}

TEST(U256, ExpBasics) {
  EXPECT_EQ(U256::exp(U256{2}, U256{10}), U256{1024});
  EXPECT_EQ(U256::exp(U256{0}, U256{0}), U256{1});  // EVM: 0^0 == 1
  EXPECT_EQ(U256::exp(U256{123}, U256{0}), U256{1});
  EXPECT_EQ(U256::exp(U256{0}, U256{5}), U256{});
}

TEST(U256, ExpWraps) {
  EXPECT_EQ(U256::exp(U256{2}, U256{256}), U256{});
  EXPECT_EQ(U256::exp(U256{2}, U256{255}), U256::sign_bit());
}

TEST(U256, SignextendPositiveByte) {
  EXPECT_EQ(U256::signextend(U256{0}, U256{0x7F}), U256{0x7F});
}

TEST(U256, SignextendNegativeByte) {
  const U256 extended = U256::signextend(U256{0}, U256{0xFF});
  EXPECT_EQ(extended, U256::max());  // -1
}

TEST(U256, SignextendClearsHighGarbage) {
  // Byte 0 is 0x7F but higher bytes hold garbage: they must be cleared.
  EXPECT_EQ(U256::signextend(U256{0}, U256{0xAA7F}), U256{0x7F});
}

TEST(U256, SignextendOutOfRangeIsIdentity) {
  EXPECT_EQ(U256::signextend(U256{31}, U256{0xFF}), U256{0xFF});
  EXPECT_EQ(U256::signextend(U256::max(), U256{0xFF}), U256{0xFF});
}

TEST(U256, ByteOpcode) {
  const U256 v = *U256::from_hex(
      "0102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f20");
  EXPECT_EQ(U256::byte(U256{0}, v), U256{0x01});
  EXPECT_EQ(U256::byte(U256{31}, v), U256{0x20});
  EXPECT_EQ(U256::byte(U256{32}, v), U256{});
  EXPECT_EQ(U256::byte(U256::max(), v), U256{});
}

TEST(U256, SarPositive) {
  EXPECT_EQ(U256::sar(U256{1}, U256{8}), U256{4});
  EXPECT_EQ(U256::sar(U256{300}, U256{8}), U256{});
}

TEST(U256, SarNegativeFillsOnes) {
  const U256 minus_eight = U256{8}.negate();
  EXPECT_EQ(U256::sar(U256{1}, minus_eight), U256{4}.negate());
  EXPECT_EQ(U256::sar(U256{300}, minus_eight), U256::max());
  EXPECT_EQ(U256::sar(U256{255}, U256::sign_bit()), U256::max());
}

TEST(U256, SignedComparisons) {
  const U256 minus_one = U256{1}.negate();
  EXPECT_TRUE(U256::slt(minus_one, U256{0}));
  EXPECT_TRUE(U256::slt(minus_one, U256{1}));
  EXPECT_FALSE(U256::slt(U256{1}, minus_one));
  EXPECT_TRUE(U256::sgt(U256{1}, minus_one));
  EXPECT_TRUE(U256::slt(U256::sign_bit(), U256::sign_bit() + U256{1}));
  EXPECT_FALSE(U256::slt(U256{5}, U256{5}));
}

TEST(U256, DecimalRendering) {
  EXPECT_EQ(U256{}.to_decimal(), "0");
  EXPECT_EQ(U256{1234567890}.to_decimal(), "1234567890");
  EXPECT_EQ(
      U256::max().to_decimal(),
      "115792089237316195423570985008687907853269984665640564039457584007913129"
      "639935");
}

// ---- signed-op boundaries (the dispatch-rewrite bugfix sweep) ----
// EVM two's-complement corner cases: INT256_MIN behaves like the C
// INT_MIN it is — negation wraps to itself — and the byte/shift indices
// saturate rather than wrap.

TEST(U256SignedBoundary, SdivIntMinByMinusOneWraps) {
  // INT256_MIN / -1 overflows; the EVM defines the result as INT256_MIN.
  const U256 min = U256::sign_bit();
  const U256 minus_one = U256::max();
  EXPECT_EQ(U256::sdiv(min, minus_one), min);
}

TEST(U256SignedBoundary, SmodIntMinByMinusOneIsZero) {
  EXPECT_EQ(U256::smod(U256::sign_bit(), U256::max()), U256{});
}

TEST(U256SignedBoundary, SdivIntMinByOtherDivisors) {
  const U256 min = U256::sign_bit();
  EXPECT_EQ(U256::sdiv(min, U256{1}), min);
  // INT256_MIN / -2 == 2^254 (positive: both operands negative).
  EXPECT_EQ(U256::sdiv(min, U256{2}.negate()), U256{1} << 254);
  // INT256_MIN / 2 == -(2^254).
  EXPECT_EQ(U256::sdiv(min, U256{2}), (U256{1} << 254).negate());
  // x / 0 == 0 even for INT256_MIN.
  EXPECT_EQ(U256::sdiv(min, U256{}), U256{});
  EXPECT_EQ(U256::smod(min, U256{}), U256{});
}

TEST(U256SignedBoundary, SmodTakesSignOfDividend) {
  const U256 five_neg = U256{5}.negate();
  EXPECT_EQ(U256::smod(five_neg, U256{3}), U256{2}.negate());
  EXPECT_EQ(U256::smod(U256{5}, U256{3}.negate()), U256{2});
  EXPECT_EQ(U256::smod(five_neg, U256{3}.negate()), U256{2}.negate());
}

TEST(U256SignedBoundary, SignextendIndexThirtyOneAndBeyondIsIdentity) {
  // Byte 31 is already the sign byte; 31 and anything larger (including
  // values that do not fit in 64 bits) must leave x untouched.
  const U256 x = U256::sign_bit() | U256{0x80};
  EXPECT_EQ(U256::signextend(U256{31}, x), x);
  EXPECT_EQ(U256::signextend(U256{32}, x), x);
  EXPECT_EQ(U256::signextend(U256{1000}, x), x);
  EXPECT_EQ(U256::signextend(U256{1} << 64, x), x);
  EXPECT_EQ(U256::signextend(U256::max(), x), x);
}

TEST(U256SignedBoundary, SignextendBoundaryBytes) {
  // b == 0: sign bit is bit 7.
  EXPECT_EQ(U256::signextend(U256{0}, U256{0x80}),
            U256::max() - U256{0x7F});
  EXPECT_EQ(U256::signextend(U256{0}, U256{0x7F}), U256{0x7F});
  // b == 0 must also *truncate* high garbage when the sign bit is clear.
  EXPECT_EQ(U256::signextend(U256{0}, (U256{1} << 200) | U256{0x7F}),
            U256{0x7F});
  // b == 30: sign bit is bit 247; bit 255 garbage is replaced.
  const U256 negative30 = (U256{1} << 247) | U256{42};
  const U256 extended = U256::signextend(U256{30}, negative30);
  EXPECT_TRUE(extended.is_negative());
  EXPECT_EQ(extended & U256{0xFF}, U256{42});
  const U256 positive30 = (U256{1} << 255) | U256{42};
  EXPECT_EQ(U256::signextend(U256{30}, positive30), U256{42});
}

TEST(U256SignedBoundary, SarShiftAtAndPast256) {
  const U256 min = U256::sign_bit();
  // Negative values saturate to all ones, positives to zero.
  EXPECT_EQ(U256::sar(U256{255}, min), U256::max());
  EXPECT_EQ(U256::sar(U256{256}, min), U256::max());
  EXPECT_EQ(U256::sar(U256{257}, min), U256::max());
  EXPECT_EQ(U256::sar(U256{1} << 128, min), U256::max());
  EXPECT_EQ(U256::sar(U256::max(), min), U256::max());
  EXPECT_EQ(U256::sar(U256{256}, U256{5}), U256{});
  EXPECT_EQ(U256::sar(U256::max(), U256{5}), U256{});
  // Zero shift is the identity; sign fill starts at shift 1.
  EXPECT_EQ(U256::sar(U256{0}, min), min);
  EXPECT_EQ(U256::sar(U256{1}, min), min | (U256{1} << 254));
}

TEST(U256SignedBoundary, ShiftOperatorsSaturateAt256) {
  EXPECT_EQ(U256::max() << 256, U256{});
  EXPECT_EQ(U256::max() >> 256, U256{});
  U256 a = U256::max();
  a.shl_assign(256);
  EXPECT_EQ(a, U256{});
  U256 b = U256::max();
  b.shr_assign(256);
  EXPECT_EQ(b, U256{});
}

TEST(U256SignedBoundary, InPlaceOpsMatchOperators) {
  // The interpreter's in-place ops must agree with the value-semantics
  // operators, including when both operands alias.
  const U256 a = *U256::from_hex(
      "0xfedcba9876543210123456789abcdef0deadbeefcafebabe0102030405060708");
  const U256 b = *U256::from_hex(
      "0x8000000000000000000000000000000000000000000000000000000000000001");
  U256 r = a;
  r.add_assign(b);
  EXPECT_EQ(r, a + b);
  r = a;
  r.sub_assign(b);
  EXPECT_EQ(r, a - b);
  r = b;
  r.rsub_assign(a);
  EXPECT_EQ(r, a - b);
  r = a;
  r.mul_assign(b);
  EXPECT_EQ(r, a * b);
  r = a;
  r.mul_assign(r);  // aliasing: x *= x
  EXPECT_EQ(r, a * a);
  r = a;
  r.add_assign(r);
  EXPECT_EQ(r, a + a);
  r = a;
  r.not_assign();
  EXPECT_EQ(r, ~a);
  r = a;
  r.shl_assign(100);
  EXPECT_EQ(r, a << 100);
  r = a;
  r.shr_assign(100);
  EXPECT_EQ(r, a >> 100);
}

TEST(U512, MulFullWidth) {
  // (2^256-1)^2 = 2^512 - 2^257 + 1.
  const U512 sq = U512::mul(U256::max(), U256::max());
  EXPECT_EQ(sq.limb(0), 1u);
  EXPECT_EQ(sq.limb(4), ~0ULL - 1);  // limb straddling 2^257 subtraction
  EXPECT_EQ(sq.limb(7), ~0ULL);
  EXPECT_EQ(sq.bit_length(), 512u);
}

TEST(U512, ModLargeModulus) {
  const U512 sq = U512::mul(U256::max(), U256::max());
  // (2^256-1)^2 mod (2^256-2) : let m = 2^256-2, x = m+1.
  // x^2 = m^2 + 2m + 1 ≡ 1 (mod m).
  EXPECT_EQ(sq.mod(U256::max() - U256{1}), U256{1});
}

// Property sweep: random 64x64 products cross-checked against native
// 128-bit arithmetic.
class U256RandomProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(U256RandomProperty, ArithmeticMatchesNative128) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t a = rng();
    const std::uint64_t b = rng() | 1;  // avoid div by zero
    const unsigned __int128 wide =
        static_cast<unsigned __int128>(a) * b;
    const U256 prod = U256{a} * U256{b};
    EXPECT_EQ(prod.limb(0), static_cast<std::uint64_t>(wide));
    EXPECT_EQ(prod.limb(1), static_cast<std::uint64_t>(wide >> 64));
    EXPECT_EQ(U256{a} / U256{b}, U256{a / b});
    EXPECT_EQ(U256{a} % U256{b}, U256{a % b});
    const unsigned __int128 wide_sum = static_cast<unsigned __int128>(a) + b;
    const U256 sum = U256{a} + U256{b};
    EXPECT_EQ(sum.limb(0), static_cast<std::uint64_t>(wide_sum));
    EXPECT_EQ(sum.limb(1), static_cast<std::uint64_t>(wide_sum >> 64));
  }
}

TEST_P(U256RandomProperty, DivModInvariant) {
  std::mt19937_64 rng(GetParam() ^ 0x9E3779B97F4A7C15ULL);
  for (int i = 0; i < 100; ++i) {
    const U256 a{rng(), rng(), rng(), rng()};
    const U256 b{0, rng() & 0xFFFF, rng(), rng()};
    if (b.is_zero()) continue;
    const auto [q, r] = U256::divmod(a, b);
    EXPECT_LT(r, b);
    EXPECT_EQ(q * b + r, a);
  }
}

TEST_P(U256RandomProperty, ShiftComposition) {
  std::mt19937_64 rng(GetParam() ^ 0xABCDEF);
  for (int i = 0; i < 100; ++i) {
    const U256 a{rng(), rng(), rng(), rng()};
    const unsigned n = static_cast<unsigned>(rng() % 255) + 1;
    // (a >> n) << n clears the low n bits.
    const U256 mask = ~((U256{1} << n) - U256{1});
    EXPECT_EQ((a >> n) << n, a & mask);
  }
}

TEST_P(U256RandomProperty, MulmodMatchesDirectWhenSmall) {
  std::mt19937_64 rng(GetParam() ^ 0x5555AAAA);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t a = rng() >> 32;
    const std::uint64_t b = rng() >> 32;
    const std::uint64_t m = (rng() >> 32) | 1;
    EXPECT_EQ(U256::mulmod(U256{a}, U256{b}, U256{m}),
              U256{static_cast<std::uint64_t>(
                  (a * static_cast<unsigned __int128>(b)) % m)});
  }
}

TEST_P(U256RandomProperty, NegationIsAdditiveInverse) {
  std::mt19937_64 rng(GetParam() ^ 0x1234);
  for (int i = 0; i < 100; ++i) {
    const U256 a{rng(), rng(), rng(), rng()};
    EXPECT_EQ(a + a.negate(), U256{});
  }
}

TEST_P(U256RandomProperty, HexRoundTrip) {
  std::mt19937_64 rng(GetParam() ^ 0x77777);
  for (int i = 0; i < 50; ++i) {
    const U256 a{rng(), rng(), rng(), rng()};
    const auto parsed = U256::from_hex(a.to_hex());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, a);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, U256RandomProperty,
                         ::testing::Values(1u, 2u, 3u, 42u, 20200713u));

}  // namespace
}  // namespace tinyevm
