#include "rlp/rlp.hpp"

#include <gtest/gtest.h>

#include "crypto/hash.hpp"

namespace tinyevm::rlp {
namespace {

Bytes enc_hex(std::string_view h) { return tinyevm::from_hex(h); }

TEST(RlpEncode, SingleByteBelow0x80IsItself) {
  EXPECT_EQ(encode(Item::bytes(Bytes{0x00})), Bytes{0x00});
  EXPECT_EQ(encode(Item::bytes(Bytes{0x7F})), Bytes{0x7F});
}

TEST(RlpEncode, EmptyString) {
  EXPECT_EQ(encode(Item::bytes(Bytes{})), Bytes{0x80});
}

TEST(RlpEncode, ShortString) {
  // "dog" -> 0x83 'd' 'o' 'g'
  EXPECT_EQ(encode(Item::string("dog")), (Bytes{0x83, 'd', 'o', 'g'}));
}

TEST(RlpEncode, SingleHighByte) {
  EXPECT_EQ(encode(Item::bytes(Bytes{0x80})), (Bytes{0x81, 0x80}));
}

TEST(RlpEncode, FiftyFiveByteBoundary) {
  const Bytes payload(55, 'a');
  const Bytes encoded = encode(Item::bytes(payload));
  EXPECT_EQ(encoded.size(), 56u);
  EXPECT_EQ(encoded[0], 0x80 + 55);

  const Bytes payload56(56, 'a');
  const Bytes encoded56 = encode(Item::bytes(payload56));
  EXPECT_EQ(encoded56[0], 0xB8);
  EXPECT_EQ(encoded56[1], 56);
  EXPECT_EQ(encoded56.size(), 58u);
}

TEST(RlpEncode, LongString) {
  const Bytes payload(1024, 'x');
  const Bytes encoded = encode(Item::bytes(payload));
  EXPECT_EQ(encoded[0], 0xB9);  // 0xB7 + 2 length bytes
  EXPECT_EQ(encoded[1], 0x04);
  EXPECT_EQ(encoded[2], 0x00);
}

TEST(RlpEncode, EmptyList) {
  EXPECT_EQ(encode(Item::list({})), Bytes{0xC0});
}

TEST(RlpEncode, CatDogList) {
  // ["cat", "dog"] -> 0xC8 0x83 cat 0x83 dog
  const auto item = Item::list({Item::string("cat"), Item::string("dog")});
  EXPECT_EQ(encode(item),
            (Bytes{0xC8, 0x83, 'c', 'a', 't', 0x83, 'd', 'o', 'g'}));
}

TEST(RlpEncode, NestedSetRepresentation) {
  // [ [], [[]], [ [], [[]] ] ] — canonical nested example.
  const auto empty = Item::list({});
  const auto one = Item::list({Item::list({})});
  const auto item = Item::list({empty, one, Item::list({empty, one})});
  EXPECT_EQ(encode(item), enc_hex("c7c0c1c0c3c0c1c0"));
}

TEST(RlpEncode, QuantityIsMinimal) {
  EXPECT_EQ(encode(Item::quantity(U256{})), Bytes{0x80});
  EXPECT_EQ(encode(Item::quantity(U256{15})), Bytes{0x0F});
  EXPECT_EQ(encode(Item::quantity(U256{1024})), (Bytes{0x82, 0x04, 0x00}));
}

TEST(RlpDecode, RoundTripScalars) {
  for (const auto& item :
       {Item::bytes(Bytes{}), Item::bytes(Bytes{0x01}),
        Item::string("hello world"), Item::quantity(U256{987654321})}) {
    const auto decoded = decode(encode(item));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, item);
  }
}

TEST(RlpDecode, RoundTripNestedLists) {
  const auto item = Item::list(
      {Item::string("channel"), Item::quantity(U256{42}),
       Item::list({Item::quantity(U256{1}), Item::quantity(U256{2})})});
  const auto decoded = decode(encode(item));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, item);
}

TEST(RlpDecode, RoundTripLongPayloads) {
  const auto item = Item::list({Item::bytes(Bytes(300, 0xAB)),
                                Item::bytes(Bytes(56, 0xCD))});
  const auto decoded = decode(encode(item));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, item);
}

TEST(RlpDecode, RejectsTrailingBytes) {
  Bytes data = encode(Item::string("dog"));
  data.push_back(0x00);
  EXPECT_FALSE(decode(data).has_value());
}

TEST(RlpDecode, RejectsTruncatedString) {
  Bytes data = {0x85, 'a', 'b'};  // claims 5 bytes, has 2
  EXPECT_FALSE(decode(data).has_value());
}

TEST(RlpDecode, RejectsTruncatedList) {
  Bytes data = {0xC5, 0x83, 'c', 'a'};  // list payload cut short
  EXPECT_FALSE(decode(data).has_value());
}

TEST(RlpDecode, RejectsNonCanonicalSingleByte) {
  // 0x05 must be encoded as itself, not 0x81 0x05.
  EXPECT_FALSE(decode(Bytes{0x81, 0x05}).has_value());
}

TEST(RlpDecode, RejectsNonMinimalLongLength) {
  // Length 3 must use the short form, not 0xB8 0x03.
  EXPECT_FALSE(decode(Bytes{0xB8, 0x03, 'a', 'b', 'c'}).has_value());
  // Leading zero in long length.
  Bytes data = {0xB9, 0x00, 0x38};
  data.insert(data.end(), 56, 'a');
  EXPECT_FALSE(decode(data).has_value());
}

TEST(RlpDecode, RejectsEmptyInput) {
  EXPECT_FALSE(decode(Bytes{}).has_value());
}

TEST(RlpQuantity, AsQuantityParsesBigEndian) {
  const auto item = Item::quantity(U256{0xDEADBEEF});
  EXPECT_EQ(item.as_quantity(), U256{0xDEADBEEF});
}

TEST(RlpQuantity, AsQuantityRejectsLeadingZero) {
  const auto item = Item::bytes(Bytes{0x00, 0x01});
  EXPECT_THROW((void)item.as_quantity(), std::invalid_argument);
}

TEST(RlpQuantity, AsQuantityRejectsOverlongValue) {
  const auto item = Item::bytes(Bytes(33, 0x01));
  EXPECT_THROW((void)item.as_quantity(), std::invalid_argument);
}

TEST(RlpHashing, EncodingIsStableForHashing) {
  // The side-chain log hashes RLP encodings; identical structures must
  // produce identical bytes.
  const auto state = Item::list({Item::quantity(U256{7}),
                                 Item::quantity(U256{100}),
                                 Item::string("sensor:22C")});
  EXPECT_EQ(tinyevm::keccak256(encode(state)),
            tinyevm::keccak256(encode(state)));
}

}  // namespace
}  // namespace tinyevm::rlp
