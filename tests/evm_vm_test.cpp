// VM-level behaviour: profiles, limits, gas metering, nested calls/creates,
// code analysis, statistics, and the opcode census behind Table I.
#include <gtest/gtest.h>

#include <map>

#include "evm/asm.hpp"
#include "evm/vm.hpp"

namespace tinyevm::evm {
namespace {

/// Host with a contract table so CREATE/CALL re-enter the interpreter, the
/// way the chain and device layers drive it.
class RecursiveHost : public NullHost {
 public:
  explicit RecursiveHost(VmConfig config) : config_(config) {}

  U256 sload(const Address&, const U256& key) override {
    return storage.load(key);
  }
  bool sstore(const Address&, const U256& key, const U256& value) override {
    return storage.store(key, value);
  }
  Bytes code_at(const Address& addr) override {
    const auto it = contracts.find(addr);
    return it == contracts.end() ? Bytes{} : it->second;
  }
  BlockInfo block_info() override { return block; }
  Hash256 block_hash(std::uint64_t n) override {
    Hash256 h{};
    h[31] = static_cast<std::uint8_t>(n);
    return h;
  }

  CreateResult create(const CreateRequest& req) override {
    Vm vm{config_};
    Message msg;
    msg.self[19] = next_address++;
    msg.caller = req.sender;
    msg.value = req.value;
    msg.code = req.init_code;
    msg.gas = req.gas;
    msg.depth = req.depth;
    const ExecResult r = vm.execute(*this, msg);
    if (!r.ok()) return CreateResult{false, {}, r.gas_left};
    contracts[msg.self] = r.output;
    return CreateResult{true, msg.self, r.gas_left};
  }

  CallResult call(const CallRequest& req) override {
    const auto it = contracts.find(req.to);
    if (it == contracts.end()) return CallResult{true, {}, req.gas};
    Vm vm{config_};
    Message msg;
    msg.self = req.to;
    msg.caller = req.sender;
    msg.value = req.value;
    msg.data = req.data;
    msg.code = it->second;
    msg.gas = req.gas;
    msg.depth = req.depth;
    msg.is_static = req.is_static;
    const ExecResult r = vm.execute(*this, msg);
    return CallResult{r.ok(), r.output, r.gas_left};
  }

  TinyStorage storage;
  std::map<Address, Bytes> contracts;
  BlockInfo block;
  std::uint8_t next_address = 1;
  VmConfig config_;
};

ExecResult exec(const Bytes& code, Host& host, VmConfig config,
                std::int64_t gas = 10'000'000) {
  Vm vm{config};
  Message msg;
  msg.code = code;
  msg.gas = gas;
  return vm.execute(host, msg);
}

// ---- profile differences ----

TEST(Profiles, BlockOpcodesTrapInTinyEvm) {
  RecursiveHost host{VmConfig::tiny()};
  for (auto op : {Opcode::NUMBER, Opcode::TIMESTAMP, Opcode::COINBASE,
                  Opcode::DIFFICULTY, Opcode::GASLIMIT, Opcode::BLOCKHASH}) {
    Assembler prog;
    if (op == Opcode::BLOCKHASH) prog.push(0);
    prog.op(op);
    const auto r = exec(prog.take(), host, VmConfig::tiny());
    EXPECT_EQ(r.status, Status::ForbiddenOpcode)
        << info(op).name << " should trap in TinyEVM";
  }
}

TEST(Profiles, BlockOpcodesWorkInEthereum) {
  RecursiveHost host{VmConfig::ethereum()};
  host.block.number = 99;
  host.block.timestamp = 12345;
  Assembler prog;
  prog.op(Opcode::NUMBER).op(Opcode::TIMESTAMP).op(Opcode::ADD);
  prog.push(0).op(Opcode::MSTORE).push(32).push(0).op(Opcode::RETURN);
  const auto r = exec(prog.take(), host, VmConfig::ethereum());
  ASSERT_TRUE(r.ok()) << to_string(r.status);
  EXPECT_EQ(U256::from_bytes(r.output), U256{99 + 12345});
}

TEST(Profiles, GasOpcodesTrapInTinyEvm) {
  RecursiveHost host{VmConfig::tiny()};
  for (auto op : {Opcode::GAS, Opcode::GASPRICE, Opcode::EXTCODESIZE}) {
    Assembler prog;
    if (op == Opcode::EXTCODESIZE) prog.push(0);
    prog.op(op);
    const auto r = exec(prog.take(), host, VmConfig::tiny());
    EXPECT_EQ(r.status, Status::ForbiddenOpcode) << info(op).name;
  }
}

TEST(Profiles, StackLimitIs96InTinyEvm) {
  RecursiveHost host{VmConfig::tiny()};
  Assembler ok_prog;
  for (int i = 0; i < 96; ++i) ok_prog.push(1);
  EXPECT_TRUE(exec(ok_prog.take(), host, VmConfig::tiny()).ok());

  Assembler over_prog;
  for (int i = 0; i < 97; ++i) over_prog.push(1);
  EXPECT_EQ(exec(over_prog.take(), host, VmConfig::tiny()).status,
            Status::StackOverflow);
}

TEST(Profiles, StackLimitIs1024InEthereum) {
  RecursiveHost host{VmConfig::ethereum()};
  Assembler prog;
  for (int i = 0; i < 1024; ++i) prog.push(1);
  EXPECT_TRUE(exec(prog.take(), host, VmConfig::ethereum()).ok());
  Assembler over;
  for (int i = 0; i < 1025; ++i) over.push(1);
  EXPECT_EQ(exec(over.take(), host, VmConfig::ethereum()).status,
            Status::StackOverflow);
}

TEST(Profiles, NoMeteringInTinyEvm) {
  // A long loop with gas=1 still completes off-chain.
  RecursiveHost host{VmConfig::tiny()};
  Assembler prog;
  prog.push(200);
  const auto loop = prog.label();
  prog.push(1).swap(1).op(Opcode::SUB).dup(1);
  prog.push_label(loop).op(Opcode::JUMPI);
  const auto r = exec(prog.take(), host, VmConfig::tiny(), /*gas=*/1);
  EXPECT_TRUE(r.ok());
  EXPECT_GT(r.stats.ops_executed, 1000u);
}

TEST(Profiles, MeteringAbortsInEthereum) {
  RecursiveHost host{VmConfig::ethereum()};
  Assembler prog;
  prog.push(1000000);
  const auto loop = prog.label();
  prog.push(1).swap(1).op(Opcode::SUB).dup(1);
  prog.push_label(loop).op(Opcode::JUMPI);
  const auto r = exec(prog.take(), host, VmConfig::ethereum(), /*gas=*/5000);
  EXPECT_EQ(r.status, Status::OutOfGas);
  EXPECT_EQ(r.gas_left, 0);
}

TEST(Profiles, GasChargedForMemoryExpansion) {
  RecursiveHost host{VmConfig::ethereum()};
  Assembler prog;
  prog.push(1).push(100000).op(Opcode::MSTORE);
  const auto cheap = exec(prog.bytes(), host, VmConfig::ethereum(),
                          /*gas=*/1000);
  EXPECT_EQ(cheap.status, Status::OutOfGas);
  const auto rich = exec(prog.take(), host, VmConfig::ethereum(),
                         /*gas=*/10'000'000);
  EXPECT_TRUE(rich.ok());
}

// ---- statistics (the evaluation hooks) ----

TEST(Stats, MaxStackPointerTracksHighWater) {
  RecursiveHost host{VmConfig::tiny()};
  Assembler prog;
  prog.push(1).push(2).push(3).op(Opcode::POP).op(Opcode::POP).push(4);
  const auto r = exec(prog.take(), host, VmConfig::tiny());
  EXPECT_EQ(r.stats.max_stack_pointer, 3u);
}

TEST(Stats, OpsAndCyclesAccumulate) {
  RecursiveHost host{VmConfig::tiny()};
  Assembler prog;
  prog.push(3).push(4).op(Opcode::ADD);
  const auto r = exec(prog.take(), host, VmConfig::tiny());
  EXPECT_EQ(r.stats.ops_executed, 3u);
  // Two pushes (~66, 66) + one ADD (~180).
  EXPECT_GT(r.stats.mcu_cycles, 200u);
  EXPECT_LT(r.stats.mcu_cycles, 1000u);
}

TEST(Stats, PeakMemoryReported) {
  RecursiveHost host{VmConfig::tiny()};
  Assembler prog;
  prog.push(1).push(1000).op(Opcode::MSTORE);
  const auto r = exec(prog.take(), host, VmConfig::tiny());
  EXPECT_EQ(r.stats.peak_memory, 1056u);  // 1032 rounded to words
}

// ---- nested execution ----

TEST(Create, DeploysChildAndReturnsAddress) {
  RecursiveHost host{VmConfig::tiny()};
  // init code returning a 1-byte runtime (STOP).
  const Bytes runtime = {0x00};
  const Bytes init = Assembler::deployer(runtime);

  Assembler prog;
  // Store init code into memory then CREATE.
  for (std::size_t i = 0; i < init.size(); ++i) {
    prog.push(init[i]).push(i).op(Opcode::MSTORE8);
  }
  prog.push(init.size()).push(0).push(0).op(Opcode::CREATE);
  prog.push(0).op(Opcode::MSTORE).push(32).push(0).op(Opcode::RETURN);
  const auto r = exec(prog.take(), host, VmConfig::tiny());
  ASSERT_TRUE(r.ok()) << to_string(r.status);
  EXPECT_FALSE(U256::from_bytes(r.output).is_zero());
  ASSERT_EQ(host.contracts.size(), 1u);
  EXPECT_EQ(host.contracts.begin()->second, runtime);
}

TEST(Call, RoundTripThroughChildContract) {
  RecursiveHost host{VmConfig::tiny()};
  // Child: returns CALLDATA[0..32] + 1.
  Assembler child;
  child.push(0).op(Opcode::CALLDATALOAD).push(1).op(Opcode::ADD);
  child.push(0).op(Opcode::MSTORE).push(32).push(0).op(Opcode::RETURN);
  Address child_addr{};
  child_addr[19] = 0x77;
  host.contracts[child_addr] = child.take();

  // Parent: mem[0]=41, CALL child, return child's answer from mem[32].
  Assembler parent;
  parent.push(41).push(0).op(Opcode::MSTORE);
  parent.push(32).push(32);  // ret len, ret offset
  parent.push(32).push(0);   // args len, args offset
  parent.push(0);            // value
  parent.push_word(U256::from_bytes(child_addr));
  parent.push(100000);  // gas
  parent.op(Opcode::CALL);
  parent.op(Opcode::POP);
  parent.push(32).push(32).op(Opcode::RETURN);
  const auto r = exec(parent.take(), host, VmConfig::tiny());
  ASSERT_TRUE(r.ok()) << to_string(r.status);
  EXPECT_EQ(U256::from_bytes(r.output), U256{42});
}

TEST(Call, ReturndatacopyFetchesChildOutput) {
  RecursiveHost host{VmConfig::tiny()};
  Assembler child;
  child.push(0xBEEF).push(0).op(Opcode::MSTORE);
  child.push(32).push(0).op(Opcode::RETURN);
  Address child_addr{};
  child_addr[19] = 0x55;
  host.contracts[child_addr] = child.take();

  Assembler parent;
  parent.push(0).push(0).push(0).push(0).push(0);
  parent.push_word(U256::from_bytes(child_addr));
  parent.push(100000).op(Opcode::CALL).op(Opcode::POP);
  parent.op(Opcode::RETURNDATASIZE);  // -> 32
  parent.push(0).push(0).op(Opcode::RETURNDATACOPY);  // copy all to mem 0
  parent.push(32).push(0).op(Opcode::RETURN);
  const auto r = exec(parent.take(), host, VmConfig::tiny());
  ASSERT_TRUE(r.ok()) << to_string(r.status);
  EXPECT_EQ(U256::from_bytes(r.output), U256{0xBEEF});
}

TEST(Call, StaticCallBlocksStateMutation) {
  RecursiveHost host{VmConfig::tiny()};
  Assembler child;
  child.push(1).push(0).op(Opcode::SSTORE);
  Address child_addr{};
  child_addr[19] = 0x66;
  host.contracts[child_addr] = child.take();

  Assembler parent;
  parent.push(0).push(0).push(0).push(0);
  parent.push_word(U256::from_bytes(child_addr));
  parent.push(100000).op(Opcode::STATICCALL);
  parent.push(0).op(Opcode::MSTORE).push(32).push(0).op(Opcode::RETURN);
  const auto r = exec(parent.take(), host, VmConfig::tiny());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(U256::from_bytes(r.output), U256{});  // child failed
  EXPECT_EQ(host.storage.used_slots(), 0u);
}

TEST(Call, DepthLimitEnforced) {
  RecursiveHost host{VmConfig::tiny()};
  // Self-calling contract: infinite recursion must stop at max_call_depth.
  Address self_addr{};
  self_addr[19] = 0x99;
  Assembler prog;
  prog.push(0).push(0).push(0).push(0).push(0);
  prog.push_word(U256::from_bytes(self_addr));
  prog.push(100000).op(Opcode::CALL);
  prog.push(0).op(Opcode::MSTORE).push(32).push(0).op(Opcode::RETURN);
  host.contracts[self_addr] = prog.take();

  Vm vm{VmConfig::tiny()};
  Message msg;
  msg.self = self_addr;
  msg.code = host.contracts[self_addr];
  const auto r = vm.execute(host, msg);
  EXPECT_TRUE(r.ok());  // the recursion bottoms out with failed inner calls
}

// ---- code analysis ----

TEST(CodeAnalysis, FindsJumpdests) {
  const Bytes code = {0x5b, 0x60, 0x5b, 0x5b};  // JUMPDEST PUSH1 0x5b JUMPDEST
  CodeAnalysis analysis(code);
  EXPECT_TRUE(analysis.valid_jumpdest(0));
  EXPECT_FALSE(analysis.valid_jumpdest(1));
  EXPECT_FALSE(analysis.valid_jumpdest(2));  // inside PUSH immediate
  EXPECT_TRUE(analysis.valid_jumpdest(3));
}

TEST(CodeAnalysis, OutOfRangeIsInvalid) {
  const Bytes code = {0x5b};
  CodeAnalysis analysis(code);
  EXPECT_FALSE(analysis.valid_jumpdest(1));
  EXPECT_FALSE(analysis.valid_jumpdest(1000));
}

TEST(CodeAnalysis, TruncatedPushAtEnd) {
  const Bytes code = {0x7f, 0x5b};  // PUSH32 with 1 byte of immediate
  CodeAnalysis analysis(code);
  EXPECT_FALSE(analysis.valid_jumpdest(1));
}

// ---- opcode census (Table I) ----

TEST(Census, EvmCountsMatchPaperTable1) {
  const CategoryCensus evm = census(false);
  EXPECT_EQ(evm.operation, 27u);
  EXPECT_EQ(evm.smart_contract, 25u);
  EXPECT_EQ(evm.memory, 13u);
  EXPECT_EQ(evm.blockchain, 6u);
  EXPECT_EQ(evm.iot, 0u);
  EXPECT_EQ(evm.total(), 71u);  // "71 active (discrete) opcodes"
}

TEST(Census, TinyEvmCountsMatchPaperTable1) {
  const CategoryCensus tiny = census(true);
  EXPECT_EQ(tiny.operation, 27u);
  EXPECT_EQ(tiny.smart_contract, 21u);
  EXPECT_EQ(tiny.memory, 13u);
  EXPECT_EQ(tiny.blockchain, 0u);
  EXPECT_EQ(tiny.iot, 1u);
}

TEST(Census, SensorUsesUnused0x0cSlot) {
  EXPECT_FALSE(info(std::uint8_t{0x0c}).defined);  // unused in original EVM
  EXPECT_TRUE(info(std::uint8_t{0x0c}).tinyevm);
  EXPECT_EQ(info(std::uint8_t{0x0c}).name, "SENSOR");
}

// ---- assembler/disassembler ----

TEST(Asm, PushPicksMinimalWidth) {
  Assembler a;
  a.push(0).push(0xFF).push(0x100).push_word(U256{1});
  const Bytes& code = a.bytes();
  EXPECT_EQ(code[0], 0x60);  // PUSH1 0
  EXPECT_EQ(code[2], 0x60);  // PUSH1 FF
  EXPECT_EQ(code[4], 0x61);  // PUSH2 0100
  EXPECT_EQ(code[7], 0x7f);  // PUSH32
}

TEST(Asm, DeployerReturnsRuntime) {
  RecursiveHost host{VmConfig::tiny()};
  const Bytes runtime = {0x60, 0x01, 0x60, 0x02, 0x01, 0x00};
  const Bytes init = Assembler::deployer(runtime);
  const auto r = exec(init, host, VmConfig::tiny());
  ASSERT_TRUE(r.ok()) << to_string(r.status);
  EXPECT_EQ(r.output, runtime);
}

TEST(Asm, DeployerRunsPrologueFirst) {
  RecursiveHost host{VmConfig::tiny()};
  Assembler prologue;
  prologue.push(777).push(3).op(Opcode::SSTORE);
  const Bytes runtime = {0x00};
  const Bytes init = Assembler::deployer(runtime, prologue.take());
  const auto r = exec(init, host, VmConfig::tiny());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.output, runtime);
  EXPECT_EQ(host.storage.load(U256{3}), U256{777});
}

TEST(Disassembler, NamesFamiliesAndImmediates) {
  const Bytes code = {0x60, 0xAA, 0x81, 0x91, 0xa2, 0x0c, 0x2f};
  const auto listing = disassemble(code);
  ASSERT_EQ(listing.size(), 6u);
  EXPECT_EQ(listing[0].name, "PUSH1");
  EXPECT_EQ(listing[0].immediate, Bytes{0xAA});
  EXPECT_EQ(listing[1].name, "DUP2");
  EXPECT_EQ(listing[2].name, "SWAP2");
  EXPECT_EQ(listing[3].name, "LOG2");
  EXPECT_EQ(listing[4].name, "SENSOR");
  EXPECT_EQ(listing[5].name, "UNDEFINED(0x2f)");
}

}  // namespace
}  // namespace tinyevm::evm
