// Gas-accounting tests for the Ethereum profile — the semantics TinyEVM
// *removes* must first exist to be removed. Exact static costs, dynamic
// costs (EXP per byte, SHA3 per word, memory expansion, copy per word),
// and the 63/64 forwarding rule.
#include <gtest/gtest.h>

#include <random>

#include "evm/asm.hpp"
#include "evm/vm.hpp"

namespace tinyevm::evm {
namespace {

class GasHost : public NullHost {
 public:
  U256 sload(const Address&, const U256& key) override {
    return storage.load(key);
  }
  bool sstore(const Address&, const U256& key, const U256& value) override {
    return storage.store(key, value);
  }
  TinyStorage storage{0};  // unbounded
};

std::int64_t gas_used(const Bytes& code, std::int64_t gas = 1'000'000) {
  GasHost host;
  Vm vm{VmConfig::ethereum()};
  Message msg;
  msg.code = code;
  msg.gas = gas;
  const auto r = vm.execute(host, msg);
  EXPECT_TRUE(r.ok() || r.status == Status::Revert)
      << to_string(r.status);
  return gas - r.gas_left;
}

TEST(Gas, StaticCostsOfSimpleOps) {
  // PUSH1 (3) + PUSH1 (3) + ADD (3) = 9.
  Assembler prog;
  prog.push(1).push(2).op(Opcode::ADD);
  EXPECT_EQ(gas_used(prog.take()), 9);
}

TEST(Gas, ArithmeticTiers) {
  // MUL is the low tier (5): 3 + 3 + 5 = 11.
  Assembler prog;
  prog.push(3).push(4).op(Opcode::MUL);
  EXPECT_EQ(gas_used(prog.take()), 11);

  // ADDMOD is the mid tier (8): 3*3 + 8 = 17.
  Assembler prog2;
  prog2.push(1).push(2).push(3).op(Opcode::ADDMOD);
  EXPECT_EQ(gas_used(prog2.take()), 17);
}

TEST(Gas, ExpChargesPerExponentByte) {
  // EXP base cost 10 + 50/byte of exponent.
  Assembler one_byte;
  one_byte.push(0xFF).push(2).op(Opcode::EXP);
  const auto g1 = gas_used(one_byte.take());

  Assembler two_bytes;
  two_bytes.push(0xFFFF).push(2).op(Opcode::EXP);
  const auto g2 = gas_used(two_bytes.take());
  // Same push widths? push(0xFF) = PUSH1, push(0xFFFF) = PUSH2 — static
  // costs are equal (3 each), so the delta is exactly the 50/byte term.
  EXPECT_EQ(g2 - g1, 50);
}

TEST(Gas, ExpByteCountBoundaries) {
  // Zero exponent has zero significant bytes: only the static 10 is
  // charged. A full 32-byte exponent charges 10 + 50*32.
  Assembler zero_exp;
  zero_exp.push(0).push(2).op(Opcode::EXP);
  // PUSH1 + PUSH1 + EXP static = 3 + 3 + 10.
  EXPECT_EQ(gas_used(zero_exp.take()), 16);

  Assembler full_exp;
  full_exp.push_word(U256::max()).push(2).op(Opcode::EXP);
  // PUSH32 + PUSH1 + EXP static + 50 * 32 bytes.
  EXPECT_EQ(gas_used(full_exp.take()), 3 + 3 + 10 + 50 * 32);

  // 255 (one byte) vs 256 (two bytes): the byte count steps at the
  // byte boundary, not the value.
  Assembler one_byte;
  one_byte.push_word(U256{255}).push(2).op(Opcode::EXP);
  Assembler two_bytes;
  two_bytes.push_word(U256{256}).push(2).op(Opcode::EXP);
  EXPECT_EQ(gas_used(two_bytes.take()) - gas_used(one_byte.take()), 50);
}

TEST(Gas, MemoryExpansionHugeOffsetMustOutOfGas) {
  // Regression: the quadratic memory term w*w/512 used to be computed in
  // 64-bit arithmetic, so for any power-of-two word count w >= 2^32 the
  // w*w term wrapped to exactly zero and the op was charged only the
  // linear 3w. With a gas budget above that wrapped price (but far below
  // the true quadratic cost of ~w^2/512 >= 2^55) the interpreter passed
  // the charge and attempted a 100 GB+ std::vector resize — aborting the
  // process. The 128-bit costing must price honestly and die OutOfGas.
  for (const std::uint64_t offset : {1ULL << 37, 1ULL << 40, 1ULL << 45}) {
    const std::uint64_t words = offset / 32 + 2;
    const auto gas = static_cast<std::int64_t>(4 * words);  // > wrapped 3w
    Assembler prog;
    prog.push(1).push_word(U256{offset}).op(Opcode::MSTORE);
    GasHost host;
    Vm vm{VmConfig::ethereum()};
    Message msg;
    msg.code = prog.take();
    msg.gas = gas;
    const auto r = vm.execute(host, msg);
    EXPECT_EQ(r.status, Status::OutOfGas) << "offset " << offset;
    EXPECT_EQ(r.gas_left, 0) << "offset " << offset;
  }
  // And the far end: offsets near 2^64 where even 3w would be enormous.
  for (const std::uint64_t offset :
       {1ULL << 62, (1ULL << 63) + 12345ULL, ~0ULL - 100}) {
    Assembler prog;
    prog.push(1).push_word(U256{offset}).op(Opcode::MSTORE);
    GasHost host;
    Vm vm{VmConfig::ethereum()};
    Message msg;
    msg.code = prog.take();
    msg.gas = 10'000'000;
    const auto r = vm.execute(host, msg);
    EXPECT_EQ(r.status, Status::OutOfGas) << "offset " << offset;
    EXPECT_EQ(r.gas_left, 0) << "offset " << offset;
  }
}

TEST(Gas, MemoryExpansionEndOverflowMustOutOfGas) {
  // offset fits in 64 bits but offset + 32 wraps past 2^64: must fail,
  // not expand to offset 0.
  Assembler prog;
  prog.push(1).push_word(U256{~0ULL}).op(Opcode::MSTORE);
  GasHost host;
  Vm vm{VmConfig::ethereum()};
  Message msg;
  msg.code = prog.take();
  msg.gas = 10'000'000;
  const auto r = vm.execute(host, msg);
  EXPECT_EQ(r.status, Status::OutOfGas);
  EXPECT_EQ(r.gas_left, 0);
}

TEST(Gas, UnmeteredHugeOffsetFailsTypedNotBadAlloc) {
  // In an unmetered profile with no memory cap, a huge MSTORE offset has
  // no gas backstop; the Memory hard cap must turn it into a typed
  // OutOfMemory instead of std::bad_alloc out of the interpreter.
  Assembler prog;
  prog.push(1).push_word(U256{1ULL << 40}).op(Opcode::MSTORE);
  GasHost host;
  VmConfig config = VmConfig::tiny();
  config.memory_limit = 0;  // unbounded
  Vm vm{config};
  Message msg;
  msg.code = prog.take();
  const auto r = vm.execute(host, msg);
  EXPECT_EQ(r.status, Status::OutOfMemory);
}

TEST(Gas, Sha3ChargesPerWord) {
  auto sha3_of = [](std::uint64_t len) {
    Assembler prog;
    prog.push(len).push(0).op(Opcode::SHA3);
    return prog.take();
  };
  const auto g32 = gas_used(sha3_of(32));
  const auto g64 = gas_used(sha3_of(64));
  const auto g65 = gas_used(sha3_of(65));
  EXPECT_EQ(g64 - g32, 6 + 3);   // one more hash word + one memory word
  EXPECT_EQ(g65 - g64, 6 + 3);   // partial word rounds up
}

TEST(Gas, MemoryExpansionLinearTerm) {
  auto touch = [](std::uint64_t offset) {
    Assembler prog;
    prog.push(1).push(offset).op(Opcode::MSTORE);
    return prog.take();
  };
  // Expanding by one word costs 3 extra in the linear region.
  const auto g0 = gas_used(touch(0));
  const auto g32 = gas_used(touch(32));
  EXPECT_EQ(g32 - g0, 3);
}

TEST(Gas, MemoryExpansionQuadraticTerm) {
  auto touch = [](std::uint64_t offset) {
    Assembler prog;
    prog.push(1).push(offset).op(Opcode::MSTORE);
    return prog.take();
  };
  // At 100 KB the w^2/512 term dominates: cost(w) = 3w + w*w/512.
  const std::uint64_t offset = 100'000;
  const std::uint64_t words = (offset + 32 + 31) / 32;
  const std::int64_t expected_mem =
      static_cast<std::int64_t>(3 * words + words * words / 512);
  // PUSH1 + PUSH3 + MSTORE static = 3 + 3 + 3.
  EXPECT_EQ(gas_used(touch(offset), 10'000'000), expected_mem + 9);
}

TEST(Gas, CopyChargesPerWord) {
  auto copy = [](std::uint64_t len) {
    Assembler prog;
    prog.push(len).push(0).push(0).op(Opcode::CALLDATACOPY);
    return prog.take();
  };
  const auto g32 = gas_used(copy(32));
  const auto g96 = gas_used(copy(96));
  // Two more copy words (3 each) + two more memory words (3 each).
  EXPECT_EQ(g96 - g32, 2 * 3 + 2 * 3);
}

TEST(Gas, SloadIstanbulCost) {
  Assembler prog;
  prog.push(0).op(Opcode::SLOAD);
  EXPECT_EQ(gas_used(prog.take()), 3 + 800);
}

TEST(Gas, LogCostsScaleWithTopicsAndBytes) {
  auto log_cost = [](unsigned topics, std::uint64_t len) {
    Assembler prog;
    for (unsigned t = 0; t < topics; ++t) prog.push(t);
    prog.push(len).push(0).log(topics);
    return gas_used(prog.take());
  };
  // One more topic: +375 (+3 for its push).
  EXPECT_EQ(log_cost(2, 0) - log_cost(1, 0), 375 + 3);
  // 32 more bytes: +8*32 (+1 memory word expansion only on first).
  EXPECT_EQ(log_cost(1, 64) - log_cost(1, 32), 8 * 32 + 3);
}

TEST(Gas, OutOfGasLeavesZero) {
  Assembler prog;
  for (int i = 0; i < 100; ++i) prog.push(1).op(Opcode::POP);
  GasHost host;
  Vm vm{VmConfig::ethereum()};
  Message msg;
  msg.code = prog.take();
  msg.gas = 50;
  const auto r = vm.execute(host, msg);
  EXPECT_EQ(r.status, Status::OutOfGas);
  EXPECT_EQ(r.gas_left, 0);
}

TEST(Gas, RevertRefundsRemainingGas) {
  Assembler prog;
  prog.push(0).push(0).op(Opcode::REVERT);
  GasHost host;
  Vm vm{VmConfig::ethereum()};
  Message msg;
  msg.code = prog.take();
  msg.gas = 1000;
  const auto r = vm.execute(host, msg);
  EXPECT_EQ(r.status, Status::Revert);
  EXPECT_GT(r.gas_left, 900);  // only the two pushes were charged
}

TEST(Gas, TinyProfileChargesNothing) {
  // The same expensive program consumes zero gas in the TinyEVM profile.
  Assembler prog;
  prog.push(64).push(0).op(Opcode::SHA3).op(Opcode::POP);
  prog.push(12345).push(3).op(Opcode::SSTORE);
  GasHost host;
  Vm vm{VmConfig::tiny()};
  Message msg;
  msg.code = prog.take();
  msg.gas = 7;  // absurdly low; irrelevant without metering
  const auto r = vm.execute(host, msg);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.gas_left, 7);
}

// --- differential: both profiles agree on pure computation ---

class ProfileDifferential
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProfileDifferential, SameResultWithAndWithoutGas) {
  std::mt19937_64 rng(GetParam());
  // Random arithmetic expression over the stack, returned as one word.
  Assembler prog;
  prog.push(rng() & 0xFFFF);
  for (int i = 0; i < 12; ++i) {
    prog.push(rng() & 0xFFFF);
    static constexpr Opcode kOps[] = {Opcode::ADD, Opcode::MUL, Opcode::SUB,
                                      Opcode::XOR, Opcode::OR,  Opcode::AND,
                                      Opcode::DIV, Opcode::MOD};
    prog.op(kOps[rng() % std::size(kOps)]);
  }
  prog.push(0).op(Opcode::MSTORE).push(32).push(0).op(Opcode::RETURN);
  const Bytes code = prog.take();

  auto run = [&](VmConfig config) {
    GasHost host;
    Vm vm{config};
    Message msg;
    msg.code = code;
    msg.gas = 10'000'000;
    return vm.execute(host, msg);
  };
  const auto tiny = run(VmConfig::tiny());
  const auto eth = run(VmConfig::ethereum());
  ASSERT_TRUE(tiny.ok());
  ASSERT_TRUE(eth.ok());
  EXPECT_EQ(tiny.output, eth.output);
  EXPECT_EQ(tiny.stats.max_stack_pointer, eth.stats.max_stack_pointer);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProfileDifferential,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace tinyevm::evm
