#include "crypto/hash.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace tinyevm {
namespace {

TEST(Keccak256, EmptyInput) {
  // Canonical Ethereum empty-string hash.
  EXPECT_EQ(to_hex(keccak256("")),
            "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470");
}

TEST(Keccak256, Abc) {
  EXPECT_EQ(to_hex(keccak256("abc")),
            "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45");
}

TEST(Keccak256, HelloEthereumStyle) {
  // keccak256("hello") as produced by web3/solidity tooling.
  EXPECT_EQ(to_hex(keccak256("hello")),
            "1c8aff950685c2ed4bc3174f3472287b56d9517b9c948127319a09a7a36deac8");
}

TEST(Keccak256, FunctionSelectorTransfer) {
  // The well-known ERC-20 transfer selector is the first 4 bytes.
  const auto h = keccak256("transfer(address,uint256)");
  EXPECT_EQ(h[0], 0xa9);
  EXPECT_EQ(h[1], 0x05);
  EXPECT_EQ(h[2], 0x9c);
  EXPECT_EQ(h[3], 0xbb);
}

TEST(Keccak256, ExactRateBlockBoundary) {
  // 136 bytes == one full sponge block; exercises the empty final block
  // with padding only.
  const std::string block(136, 'a');
  const std::string block_plus(137, 'a');
  EXPECT_NE(to_hex(keccak256(block)), to_hex(keccak256(block_plus)));
  // Self-generated golden value pinned for regression (primitive itself is
  // validated by the Ethereum vectors above).
  EXPECT_EQ(to_hex(keccak256(block)),
            "a6c4d403279fe3e0af03729caada8374b5ca54d8065329a3ebcaeb4b60aa386e");
}

TEST(Keccak256, MultiBlockInput) {
  const std::string long_input(1000, 'x');
  const auto h1 = keccak256(long_input);
  const auto h2 = keccak256(long_input);
  EXPECT_EQ(h1, h2);
  EXPECT_NE(to_hex(h1), to_hex(keccak256(std::string(999, 'x'))));
}

TEST(Sha256, EmptyInput) {
  EXPECT_EQ(to_hex(sha256("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  // FIPS 180-4 test vector.
  EXPECT_EQ(to_hex(sha256("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  // FIPS 180-4 two-block test vector.
  EXPECT_EQ(to_hex(sha256("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomno"
                          "pnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  // FIPS 180-4 long test vector; also exercises streaming updates.
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    h.update({reinterpret_cast<const std::uint8_t*>(chunk.data()),
              chunk.size()});
  }
  EXPECT_EQ(to_hex(h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShot) {
  const std::string data(300, 'q');
  Sha256 h;
  for (char c : data) {
    const auto b = static_cast<std::uint8_t>(c);
    h.update({&b, 1});
  }
  EXPECT_EQ(h.finalize(), sha256(data));
}

TEST(Sha256, BoundaryLengths) {
  // 55/56/64 bytes straddle the padding boundary.
  for (std::size_t n : {55u, 56u, 63u, 64u, 65u}) {
    const std::string a(n, 'z');
    EXPECT_EQ(sha256(a), sha256(a)) << n;
    EXPECT_NE(to_hex(sha256(a)), to_hex(sha256(a + "z"))) << n;
  }
}

TEST(HmacSha256, Rfc4231Case1) {
  const std::vector<std::uint8_t> key(20, 0x0b);
  const std::string msg = "Hi There";
  const auto mac = hmac_sha256(
      key, {reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()});
  EXPECT_EQ(to_hex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  const std::string key = "Jefe";
  const std::string msg = "what do ya want for nothing?";
  const auto mac = hmac_sha256(
      {reinterpret_cast<const std::uint8_t*>(key.data()), key.size()},
      {reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()});
  EXPECT_EQ(to_hex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, LongKeyIsHashedFirst) {
  // RFC 4231 case 6: 131-byte key.
  const std::vector<std::uint8_t> key(131, 0xaa);
  const std::string msg = "Test Using Larger Than Block-Size Key - Hash Key First";
  const auto mac = hmac_sha256(
      key, {reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()});
  EXPECT_EQ(to_hex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HexCodec, RoundTrip) {
  const std::vector<std::uint8_t> data = {0x00, 0x01, 0xAB, 0xFF};
  EXPECT_EQ(to_hex(data), "0001abff");
  EXPECT_EQ(from_hex("0001abff"), data);
  EXPECT_EQ(from_hex("0x0001ABFF"), data);
}

TEST(HexCodec, RejectsMalformed) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

TEST(HexCodec, EmptyInput) {
  EXPECT_TRUE(from_hex("").empty());
  EXPECT_EQ(to_hex(std::vector<std::uint8_t>{}), "");
}

}  // namespace
}  // namespace tinyevm
