// Simulated main-chain substrate: transactions, signing, nonces, fees,
// EVM deployments, block clock, and native-contract dispatch.
#include <gtest/gtest.h>

#include "chain/chain.hpp"
#include "evm/asm.hpp"

namespace tinyevm::chain {
namespace {

PrivateKey key(const char* seed) { return PrivateKey::from_seed(seed); }

TEST(Blockchain, GenesisState) {
  Blockchain chain;
  EXPECT_EQ(chain.height(), 0u);
  EXPECT_EQ(chain.balance_of(Address{}), U256{});
}

TEST(Blockchain, CreditAndTransfer) {
  Blockchain chain;
  const auto alice = key("alice").address();
  const auto bob = key("bob").address();
  chain.credit(alice, U256{1000});
  EXPECT_TRUE(chain.transfer(alice, bob, U256{400}));
  EXPECT_EQ(chain.balance_of(alice), U256{600});
  EXPECT_EQ(chain.balance_of(bob), U256{400});
  EXPECT_FALSE(chain.transfer(alice, bob, U256{601}));
}

TEST(Blockchain, MiningAdvancesLogicalClock) {
  Blockchain chain;
  const auto h0 = chain.head().hash;
  chain.mine_blocks(5);
  EXPECT_EQ(chain.height(), 5u);
  EXPECT_NE(chain.head().hash, h0);
  EXPECT_EQ(chain.head().parent_hash != Hash256{}, true);
}

TEST(Transaction, DigestBindsFields) {
  Transaction a;
  a.value = U256{5};
  Transaction b = a;
  b.value = U256{6};
  EXPECT_NE(a.digest(), b.digest());
  b = a;
  b.nonce = 9;
  EXPECT_NE(a.digest(), b.digest());
  b = a;
  b.data = {0x01};
  EXPECT_NE(a.digest(), b.digest());
}

TEST(Transactions, ValueTransferWithFee) {
  Blockchain chain;
  const auto alice = key("alice");
  const auto bob = key("bob").address();
  chain.credit(alice.address(), U256{1'000'000});

  Transaction tx;
  tx.to = bob;
  tx.value = U256{1000};
  tx.gas_limit = 21'000;
  const auto receipt = chain.submit(alice, tx);
  ASSERT_TRUE(receipt.has_value());
  EXPECT_TRUE(receipt->success);
  EXPECT_EQ(receipt->fee_paid, U256{21'000});
  EXPECT_EQ(chain.balance_of(bob), U256{1000});
  // Fees are burned by the escrow (no miner account in the simulation).
  EXPECT_EQ(chain.balance_of(alice.address()),
            U256{1'000'000 - 1000 - 21'000});
}

TEST(Transactions, RejectsWrongSigner) {
  Blockchain chain;
  const auto alice = key("alice");
  const auto mallory = key("mallory");
  chain.credit(alice.address(), U256{1'000'000});

  Transaction tx;
  tx.from = alice.address();
  tx.to = key("bob").address();
  tx.value = U256{100};
  tx.nonce = 0;
  const auto sig = secp256k1::sign(tx.digest(), mallory);
  EXPECT_FALSE(chain.apply(tx, sig).has_value());
}

TEST(Transactions, RejectsBadNonce) {
  Blockchain chain;
  const auto alice = key("alice");
  chain.credit(alice.address(), U256{1'000'000});

  Transaction tx;
  tx.from = alice.address();
  tx.to = key("bob").address();
  tx.value = U256{100};
  tx.nonce = 7;  // expected 0
  const auto sig = secp256k1::sign(tx.digest(), alice);
  EXPECT_FALSE(chain.apply(tx, sig).has_value());
}

TEST(Transactions, NonceAdvancesPerTransaction) {
  Blockchain chain;
  const auto alice = key("alice");
  chain.credit(alice.address(), U256{10'000'000});
  for (int i = 0; i < 3; ++i) {
    Transaction tx;
    tx.to = key("bob").address();
    tx.value = U256{1};
    tx.gas_limit = 21'000;
    ASSERT_TRUE(chain.submit(alice, tx).has_value());
  }
  EXPECT_EQ(chain.nonce_of(alice.address()), 3u);
}

TEST(Transactions, RejectsUnaffordableFeeEscrow) {
  Blockchain chain;
  const auto alice = key("alice");
  chain.credit(alice.address(), U256{10'000});  // < gas_limit * price

  Transaction tx;
  tx.to = key("bob").address();
  tx.value = U256{1};
  tx.gas_limit = 21'000;
  EXPECT_FALSE(chain.submit(alice, tx).has_value());
}

TEST(Deployment, CreatesContractAndRunsIt) {
  Blockchain chain;
  const auto alice = key("alice");
  chain.credit(alice.address(), U256{100'000'000});

  // Runtime: return CALLDATA[0] * 2.
  evm::Assembler runtime;
  runtime.push(0)
      .op(evm::Opcode::CALLDATALOAD)
      .push(2)
      .op(evm::Opcode::MUL);
  runtime.push(0).op(evm::Opcode::MSTORE);
  runtime.push(32).push(0).op(evm::Opcode::RETURN);

  Transaction deploy;
  deploy.data = evm::Assembler::deployer(runtime.take());
  const auto receipt = chain.submit(alice, deploy);
  ASSERT_TRUE(receipt.has_value());
  ASSERT_TRUE(receipt->success);
  const Address contract = receipt->contract_address;
  ASSERT_NE(chain.code_of(contract), nullptr);
  EXPECT_FALSE(chain.code_of(contract)->empty());

  Transaction call;
  call.to = contract;
  call.data.assign(32, 0);
  call.data[31] = 21;
  const auto result = chain.submit(alice, call);
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->success);
  EXPECT_EQ(U256::from_bytes(result->output), U256{42});
}

TEST(Deployment, DistinctAddressesPerNonce) {
  Blockchain chain;
  const auto alice = key("alice");
  chain.credit(alice.address(), U256{100'000'000});

  const evm::Bytes init = evm::Assembler::deployer({0x00});
  Transaction d1;
  d1.data = init;
  Transaction d2;
  d2.data = init;
  const auto r1 = chain.submit(alice, d1);
  const auto r2 = chain.submit(alice, d2);
  ASSERT_TRUE(r1 && r2);
  EXPECT_NE(r1->contract_address, r2->contract_address);
}

TEST(Deployment, StorageWritesPersistAcrossTransactions) {
  Blockchain chain;
  const auto alice = key("alice");
  chain.credit(alice.address(), U256{100'000'000});

  // Runtime: slot0 += 1; return slot0.
  evm::Assembler runtime;
  runtime.push(0).op(evm::Opcode::SLOAD).push(1).op(evm::Opcode::ADD);
  runtime.dup(1).push(0).op(evm::Opcode::SSTORE);
  runtime.push(0).op(evm::Opcode::MSTORE);
  runtime.push(32).push(0).op(evm::Opcode::RETURN);

  Transaction deploy;
  deploy.data = evm::Assembler::deployer(runtime.take());
  const auto receipt = chain.submit(alice, deploy);
  ASSERT_TRUE(receipt && receipt->success);

  for (std::uint64_t expected = 1; expected <= 3; ++expected) {
    Transaction call;
    call.to = receipt->contract_address;
    const auto r = chain.submit(alice, call);
    ASSERT_TRUE(r && r->success);
    EXPECT_EQ(U256::from_bytes(r->output), U256{expected});
  }
  EXPECT_EQ(chain.storage_at(receipt->contract_address, U256{0}), U256{3});
}

TEST(Deployment, BlockOpcodesSeeChainState) {
  Blockchain chain;
  const auto alice = key("alice");
  chain.credit(alice.address(), U256{100'000'000});
  chain.mine_blocks(41);

  evm::Assembler runtime;
  runtime.op(evm::Opcode::NUMBER);
  runtime.push(0).op(evm::Opcode::MSTORE);
  runtime.push(32).push(0).op(evm::Opcode::RETURN);
  Transaction deploy;
  deploy.data = evm::Assembler::deployer(runtime.take());
  const auto receipt = chain.submit(alice, deploy);
  ASSERT_TRUE(receipt && receipt->success);

  Transaction call;
  call.to = receipt->contract_address;
  const auto r = chain.submit(alice, call);
  ASSERT_TRUE(r && r->success);
  EXPECT_EQ(U256::from_bytes(r->output), U256{41});
}

TEST(Deployment, RevertingConstructorFailsCreation) {
  Blockchain chain;
  const auto alice = key("alice");
  chain.credit(alice.address(), U256{100'000'000});

  evm::Assembler bad_init;
  bad_init.push(0).push(0).op(evm::Opcode::REVERT);
  Transaction deploy;
  deploy.data = bad_init.take();
  const auto receipt = chain.submit(alice, deploy);
  ASSERT_TRUE(receipt.has_value());
  EXPECT_FALSE(receipt->success);
}

// A trivial native contract for dispatch checks.
class EchoNative : public NativeContract {
 public:
  std::pair<bool, evm::Bytes> invoke(const Address&, const U256&,
                                     std::span<const std::uint8_t> data)
      override {
    return {true, evm::Bytes{data.begin(), data.end()}};
  }
};

TEST(NativeContracts, DispatchedOnTransaction) {
  Blockchain chain;
  const auto alice = key("alice");
  chain.credit(alice.address(), U256{100'000'000});
  Address native_addr{};
  native_addr[19] = 0xEE;
  chain.register_native(native_addr, std::make_unique<EchoNative>());
  ASSERT_TRUE(chain.is_native(native_addr));

  Transaction tx;
  tx.to = native_addr;
  tx.data = {0xCA, 0xFE};
  const auto r = chain.submit(alice, tx);
  ASSERT_TRUE(r && r->success);
  EXPECT_EQ(r->output, (evm::Bytes{0xCA, 0xFE}));
}

TEST(NativeContracts, ValueReachesNativeAccount) {
  Blockchain chain;
  const auto alice = key("alice");
  chain.credit(alice.address(), U256{100'000'000});
  Address native_addr{};
  native_addr[19] = 0xEE;
  chain.register_native(native_addr, std::make_unique<EchoNative>());

  Transaction tx;
  tx.to = native_addr;
  tx.value = U256{12345};
  tx.data = {0x00};
  const auto r = chain.submit(alice, tx);
  ASSERT_TRUE(r && r->success);
  EXPECT_EQ(chain.balance_of(native_addr), U256{12345});
}

}  // namespace
}  // namespace tinyevm::chain
