// End-to-end off-chain channel behaviour on the device side: template
// bytecode execution on the local TinyEVM (sensor read in the constructor,
// pay/status/close dispatch), endpoint signing flows, and the two-party
// payment exchange the paper's Figure 5 traces.
#include <gtest/gtest.h>

#include "channel/manager.hpp"

namespace tinyevm::channel {
namespace {

constexpr std::uint32_t kTempSensor = 7;

struct Parties {
  ChannelEndpoint car;
  ChannelEndpoint lot;
};

Parties make_parties(const Hash256& anchor = keccak256("template-anchor")) {
  Parties p{
      ChannelEndpoint("car", PrivateKey::from_seed("car-key"), anchor),
      ChannelEndpoint("lot", PrivateKey::from_seed("lot-key"), anchor),
  };
  p.car.sensors().set_reading(kTempSensor, U256{22});
  p.lot.sensors().set_reading(kTempSensor, U256{21});
  return p;
}

TEST(TemplateBytecode, RuntimeDeploysUnder8K) {
  // The deployment limit the paper sets for the MCU (§VI-A).
  EXPECT_LT(payment_channel_init_code(kTempSensor).size(), 8192u);
  EXPECT_LT(payment_channel_runtime().size(), 1024u);
}

TEST(TemplateBytecode, ConstructorSamplesSensor) {
  auto p = make_parties();
  const auto addr = p.car.open_channel(U256{1}, U256{10}, kTempSensor);
  ASSERT_TRUE(addr.has_value());
  // Listing 2: the reading lands in slot 0x0c.
  EXPECT_EQ(p.car.stored(TemplateSlots::kSensor), U256{22});
  EXPECT_EQ(p.car.stored(TemplateSlots::kRate), U256{10});
}

TEST(TemplateBytecode, OpenFailsWithoutSensor) {
  auto p = make_parties();
  // Device 99 does not exist on the mote: the 0x0c opcode aborts, so the
  // constructor fails and no channel contract is installed.
  EXPECT_FALSE(p.car.open_channel(U256{1}, U256{10}, 99).has_value());
}

TEST(TemplateBytecode, PayAccumulatesAtNegotiatedRate) {
  auto p = make_parties();
  ASSERT_TRUE(p.car.open_channel(U256{1}, U256{10}, kTempSensor));
  const auto s1 = p.car.make_payment(U256{3});  // 3 units * rate 10
  ASSERT_TRUE(s1.has_value());
  EXPECT_EQ(s1->state.paid_total, U256{30});
  EXPECT_EQ(s1->state.sequence, 1u);

  const auto s2 = p.car.make_payment(U256{2});
  ASSERT_TRUE(s2.has_value());
  EXPECT_EQ(s2->state.paid_total, U256{50});
  EXPECT_EQ(s2->state.sequence, 2u);
}

TEST(TemplateBytecode, StateCarriesSensorData) {
  auto p = make_parties();
  ASSERT_TRUE(p.car.open_channel(U256{1}, U256{10}, kTempSensor));
  const auto s = p.car.make_payment(U256{1});
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->state.sensor_data, U256{22});
}

TEST(Endpoint, FullPaymentRoundTwoParties) {
  auto p = make_parties();
  ASSERT_TRUE(p.car.open_channel(U256{1}, U256{10}, kTempSensor));
  ASSERT_TRUE(p.lot.open_channel(U256{1}, U256{10}, kTempSensor));

  // Car proposes a payment, lot countersigns, both record it.
  auto proposal = p.car.make_payment(U256{4});
  ASSERT_TRUE(proposal.has_value());
  const auto counter = p.lot.countersign(proposal->state);
  ASSERT_TRUE(counter.has_value());
  proposal->receiver_sig = *counter;

  EXPECT_TRUE(p.car.accept(*proposal));
  EXPECT_TRUE(p.lot.accept(*proposal));
  EXPECT_EQ(p.car.log().size(), 1u);
  EXPECT_EQ(p.lot.log().size(), 1u);
  EXPECT_EQ(p.car.log().head(), p.lot.log().head());

  // The artifact is verifiable stand-alone.
  EXPECT_TRUE(proposal->verify(p.car.address(), p.lot.address()));
}

TEST(Endpoint, MultiplePaymentsExtendBothLogs) {
  auto p = make_parties();
  ASSERT_TRUE(p.car.open_channel(U256{1}, U256{5}, kTempSensor));
  ASSERT_TRUE(p.lot.open_channel(U256{1}, U256{5}, kTempSensor));

  for (int i = 1; i <= 5; ++i) {
    auto proposal = p.car.make_payment(U256{1});
    ASSERT_TRUE(proposal.has_value());
    const auto counter = p.lot.countersign(proposal->state);
    ASSERT_TRUE(counter.has_value());
    proposal->receiver_sig = *counter;
    ASSERT_TRUE(p.car.accept(*proposal));
    ASSERT_TRUE(p.lot.accept(*proposal));
  }
  EXPECT_EQ(p.car.log().size(), 5u);
  EXPECT_EQ(p.lot.log().latest()->state.paid_total, U256{25});
  EXPECT_TRUE(p.car.log().audit(keccak256("template-anchor")));
  EXPECT_TRUE(p.lot.log().audit(keccak256("template-anchor")));
}

TEST(Endpoint, CountersignRejectsWrongChannel) {
  auto p = make_parties();
  ASSERT_TRUE(p.car.open_channel(U256{1}, U256{10}, kTempSensor));
  ASSERT_TRUE(p.lot.open_channel(U256{2}, U256{10}, kTempSensor));  // id 2!
  const auto proposal = p.car.make_payment(U256{1});
  ASSERT_TRUE(proposal.has_value());
  EXPECT_FALSE(p.lot.countersign(proposal->state).has_value());
}

TEST(Endpoint, CountersignRejectsReplayedSequence) {
  auto p = make_parties();
  ASSERT_TRUE(p.car.open_channel(U256{1}, U256{10}, kTempSensor));
  ASSERT_TRUE(p.lot.open_channel(U256{1}, U256{10}, kTempSensor));

  auto first = p.car.make_payment(U256{1});
  ASSERT_TRUE(first.has_value());
  const auto counter = p.lot.countersign(first->state);
  ASSERT_TRUE(counter.has_value());
  first->receiver_sig = *counter;
  ASSERT_TRUE(p.lot.accept(*first));

  // Replaying the same state: hash link no longer matches the log head.
  EXPECT_FALSE(p.lot.countersign(first->state).has_value());
}

TEST(Endpoint, CountersignRejectsDecreasingTotal) {
  auto p = make_parties();
  ASSERT_TRUE(p.car.open_channel(U256{1}, U256{10}, kTempSensor));
  ASSERT_TRUE(p.lot.open_channel(U256{1}, U256{10}, kTempSensor));

  auto first = p.car.make_payment(U256{5});
  ASSERT_TRUE(first.has_value());
  auto counter = p.lot.countersign(first->state);
  ASSERT_TRUE(counter.has_value());
  first->receiver_sig = *counter;
  ASSERT_TRUE(p.lot.accept(*first));

  // A forged follow-up paying less than the recorded total.
  ChannelState forged = first->state;
  forged.sequence = 2;
  forged.paid_total = U256{10};  // below the accepted 50
  forged.prev_hash = p.lot.log().head();
  EXPECT_FALSE(p.lot.countersign(forged).has_value());
}

TEST(Endpoint, AcceptRejectsUnsignedState) {
  auto p = make_parties();
  ASSERT_TRUE(p.car.open_channel(U256{1}, U256{10}, kTempSensor));
  auto proposal = p.car.make_payment(U256{1});
  ASSERT_TRUE(proposal.has_value());
  // receiver_sig left default-initialized (r = s = 0).
  EXPECT_FALSE(p.car.accept(*proposal));
}

TEST(Endpoint, CloseProducesFinalState) {
  auto p = make_parties();
  ASSERT_TRUE(p.car.open_channel(U256{1}, U256{10}, kTempSensor));
  ASSERT_TRUE(p.car.make_payment(U256{3}).has_value());
  const auto final_state = p.car.close_channel();
  ASSERT_TRUE(final_state.has_value());
  EXPECT_EQ(final_state->state.paid_total, U256{30});
  EXPECT_EQ(final_state->state.sequence, 2u);  // close advances the clock
  // After close the contract is gone; further payments fail.
  EXPECT_FALSE(p.car.make_payment(U256{1}).has_value());
}

TEST(Endpoint, StatsCountVmAndCrypto) {
  auto p = make_parties();
  ASSERT_TRUE(p.car.open_channel(U256{1}, U256{10}, kTempSensor));
  ASSERT_TRUE(p.car.make_payment(U256{1}).has_value());
  const auto& stats = p.car.stats();
  EXPECT_GT(stats.vm_cycles, 10'000u);  // constructor + pay + status
  EXPECT_EQ(stats.signatures, 1u);
  EXPECT_EQ(stats.states_signed, 1u);
}

TEST(Endpoint, SequentialChannelsOnOneLog) {
  // The paper: "the nodes can open and close an arbitrary number of
  // payment channels" (§IV-A). A second channel restarts its logical
  // clock at 1; the shared side-chain log still links every state.
  auto p = make_parties();
  for (std::uint64_t session = 1; session <= 3; ++session) {
    ASSERT_TRUE(p.car.open_channel(U256{session}, U256{10}, kTempSensor))
        << session;
    ASSERT_TRUE(p.lot.open_channel(U256{session}, U256{10}, kTempSensor));
    auto proposal = p.car.make_payment(U256{1});
    ASSERT_TRUE(proposal.has_value()) << session;
    EXPECT_EQ(proposal->state.sequence, 1u) << "clock restarts per channel";
    const auto counter = p.lot.countersign(proposal->state);
    ASSERT_TRUE(counter.has_value()) << session;
    proposal->receiver_sig = *counter;
    ASSERT_TRUE(p.car.accept(*proposal)) << session;
    ASSERT_TRUE(p.lot.accept(*proposal)) << session;
    ASSERT_TRUE(p.car.close_channel().has_value()) << session;
    ASSERT_TRUE(p.lot.close_channel().has_value()) << session;
  }
  EXPECT_EQ(p.car.log().size(), 3u);
  EXPECT_TRUE(p.car.log().audit(keccak256("template-anchor")));
}

TEST(SideChainLogMultiChannel, PerChannelClockOrdering) {
  const auto car = PrivateKey::from_seed("car");
  const auto lot = PrivateKey::from_seed("lot");
  const Hash256 genesis = keccak256("anchor-mc");
  SideChainLog log(genesis);

  auto signed_state = [&](std::uint64_t channel, std::uint64_t seq) {
    ChannelState s;
    s.channel_id = U256{channel};
    s.sequence = seq;
    s.paid_total = U256{seq * 10};
    s.prev_hash = log.head();
    SignedState out;
    out.state = s;
    out.sender_sig = secp256k1::sign(s.digest(), car);
    out.receiver_sig = secp256k1::sign(s.digest(), lot);
    return out;
  };

  ASSERT_TRUE(log.append(signed_state(1, 5)));
  // Channel 2 may start at 1 even though channel 1 reached 5.
  ASSERT_TRUE(log.append(signed_state(2, 1)));
  // But channel 1 may not regress.
  EXPECT_FALSE(log.append(signed_state(1, 5)));
  EXPECT_FALSE(log.append(signed_state(1, 4)));
  ASSERT_TRUE(log.append(signed_state(1, 6)));
  EXPECT_TRUE(log.audit(genesis));
}

TEST(SensorBank, RegisteredActuatorNeedsNoReading) {
  // Hub-side sessions drive actuators that never produced a reading;
  // registration alone makes the device actuatable.
  SensorBank sensors;
  sensors.register_actuator(4);
  EXPECT_TRUE(sensors.actuate(4, U256{7}));
  EXPECT_EQ(sensors.last_actuation(4), U256{7});
  EXPECT_FALSE(sensors.read(4).has_value());  // still no reading
}

TEST(SensorBank, UnknownDeviceStillRejectsActuation) {
  SensorBank sensors;
  sensors.register_actuator(4);
  EXPECT_FALSE(sensors.actuate(5, U256{1}));
  EXPECT_FALSE(sensors.last_actuation(5).has_value());
}

TEST(SensorBank, ReadingImpliesActuatable) {
  // Back-compat: a device with a reading has always accepted commands.
  SensorBank sensors;
  sensors.set_reading(9, U256{0});
  EXPECT_TRUE(sensors.actuate(9, U256{3}));
  EXPECT_EQ(sensors.last_actuation(9), U256{3});
}

TEST(DeviceHost, ActuatesRegisteredActuatorViaSensorOpcode) {
  SensorBank sensors;
  sensors.register_actuator(11);  // no reading ever set
  DeviceHost host(sensors, evm::VmConfig::tiny());
  evm::SensorRequest req;
  req.device_id = 11;
  req.actuate = true;
  req.parameter = U256{99};
  EXPECT_TRUE(host.sensor_access(req).has_value());
  EXPECT_EQ(sensors.last_actuation(11), U256{99});
  // The read path still fails for a write-only actuator.
  req.actuate = false;
  EXPECT_FALSE(host.sensor_access(req).has_value());
}

TEST(DeviceHost, ActuationRecorded) {
  SensorBank sensors;
  sensors.set_reading(9, U256{0});
  DeviceHost host(sensors, evm::VmConfig::tiny());
  evm::SensorRequest req;
  req.device_id = 9;
  req.actuate = true;
  req.parameter = U256{42};
  EXPECT_TRUE(host.sensor_access(req).has_value());
  EXPECT_EQ(sensors.last_actuation(9), U256{42});
}

TEST(DeviceHost, StoragePerContractIsolated) {
  SensorBank sensors;
  DeviceHost host(sensors, evm::VmConfig::tiny());
  evm::Address a{};
  a[19] = 1;
  evm::Address b{};
  b[19] = 2;
  ASSERT_TRUE(host.sstore(a, U256{1}, U256{100}));
  ASSERT_TRUE(host.sstore(b, U256{1}, U256{200}));
  EXPECT_EQ(host.sload(a, U256{1}), U256{100});
  EXPECT_EQ(host.sload(b, U256{1}), U256{200});
}

}  // namespace
}  // namespace tinyevm::channel
