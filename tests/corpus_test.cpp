// Corpus-generator tests: determinism, size-distribution targets, and the
// emergent deployment behaviour the Figure 3/4 experiments rely on.
#include <gtest/gtest.h>

#include "corpus/corpus.hpp"

namespace tinyevm::corpus {
namespace {

GeneratorConfig small_config(std::size_t count = 300) {
  GeneratorConfig cfg;
  cfg.count = count;
  return cfg;
}

TEST(Generator, DeterministicPerIndex) {
  Generator g1{small_config()};
  Generator g2{small_config()};
  for (std::size_t i : {0u, 1u, 7u, 99u}) {
    EXPECT_EQ(g1.make(i).init_code, g2.make(i).init_code) << i;
  }
}

TEST(Generator, DistinctAcrossIndices) {
  Generator g{small_config()};
  EXPECT_NE(g.make(1).init_code, g.make(2).init_code);
}

TEST(Generator, SeedChangesCorpus) {
  GeneratorConfig cfg = small_config();
  cfg.seed = 999;
  Generator g1{cfg};
  Generator g2{small_config()};
  EXPECT_NE(g1.make(1).init_code, g2.make(1).init_code);
}

TEST(Generator, SizesWithinPaperBounds) {
  Generator g{small_config()};
  for (std::size_t i = 0; i < 300; ++i) {
    const auto c = g.make(i);
    EXPECT_GE(c.init_code.size(), 20u) << i;
    EXPECT_LE(c.init_code.size(), 26'000u) << i;
  }
}

TEST(Generator, MeanSizeNear4K) {
  // Paper Table II: mean 4,023 bytes over the full corpus.
  Generator g{small_config(500)};
  double total = 0;
  for (std::size_t i = 0; i < 500; ++i) {
    total += static_cast<double>(g.make(i).init_code.size());
  }
  const double mean = total / 500;
  EXPECT_GT(mean, 2'500.0);
  EXPECT_LT(mean, 6'000.0);
}

TEST(Generator, IncludesMicroContracts) {
  Generator g{small_config(500)};
  std::size_t minimum = SIZE_MAX;
  for (std::size_t i = 0; i < 500; ++i) {
    minimum = std::min(minimum, g.make(i).init_code.size());
  }
  EXPECT_LT(minimum, 64u);  // paper min: 28 bytes
}

TEST(Deployment, SucceedsForTypicalContract) {
  Generator g{small_config()};
  const auto outcome = deploy_on_device(g.make(3), evm::VmConfig::tiny());
  EXPECT_TRUE(outcome.success) << evm::to_string(outcome.status);
  EXPECT_GT(outcome.max_stack_pointer, 0u);
  EXPECT_GT(outcome.mcu_cycles, 0u);
}

TEST(Deployment, MemoryNeverExceedsDeviceLimit) {
  Generator g{small_config()};
  for (std::size_t i = 0; i < 100; ++i) {
    const auto outcome = deploy_on_device(g.make(i), evm::VmConfig::tiny());
    if (outcome.success) {
      EXPECT_LE(outcome.memory_used, 8192u) << i;
    }
  }
}

TEST(Deployment, LargeRuntimesFailOnMemory) {
  // Contracts whose runtime exceeds the 8 KB arena must fail with the
  // device's out-of-memory status — the paper's 7 % failure mode.
  Generator g{small_config(2000)};
  bool saw_oom_failure = false;
  for (std::size_t i = 0; i < 2000 && !saw_oom_failure; ++i) {
    const auto c = g.make(i);
    if (c.runtime_size <= 8192) continue;
    const auto outcome = deploy_on_device(c, evm::VmConfig::tiny());
    EXPECT_FALSE(outcome.success);
    EXPECT_EQ(outcome.status, evm::Status::OutOfMemory);
    saw_oom_failure = true;
  }
  EXPECT_TRUE(saw_oom_failure) << "corpus contains no >8K runtime?";
}

TEST(Deployment, SuccessRateNearPaper93Percent) {
  Generator g{small_config(600)};
  std::vector<DeploymentOutcome> outcomes;
  for (std::size_t i = 0; i < 600; ++i) {
    outcomes.push_back(deploy_on_device(g.make(i), evm::VmConfig::tiny()));
  }
  const auto stats = summarize(outcomes);
  EXPECT_GT(stats.success_rate, 85.0);
  EXPECT_LT(stats.success_rate, 99.0);
}

TEST(Deployment, StackPointersMatchFig3cShape) {
  // Fig 3c: majority of deployments stay at or below ~10 stack elements,
  // with a tail reaching tens of elements; Table II mean SP is 8.
  Generator g{small_config(400)};
  std::size_t shallow = 0;
  std::size_t total = 0;
  std::size_t max_sp = 0;
  for (std::size_t i = 0; i < 400; ++i) {
    const auto outcome = deploy_on_device(g.make(i), evm::VmConfig::tiny());
    if (!outcome.success) continue;
    ++total;
    if (outcome.max_stack_pointer <= 12) ++shallow;
    max_sp = std::max(max_sp, outcome.max_stack_pointer);
  }
  ASSERT_GT(total, 300u);
  EXPECT_GT(static_cast<double>(shallow) / static_cast<double>(total), 0.5);
  EXPECT_GT(max_sp, 10u);
  EXPECT_LT(max_sp, 96u);  // never breaches the TinyEVM arena
}

TEST(Deployment, EthereumProfileDeploysTheOverflows) {
  // The 7 % that fail on the mote deploy fine on an unconstrained EVM —
  // the failures stem from the device limits, not from the bytecode.
  Generator g{small_config(2000)};
  for (std::size_t i = 0; i < 2000; ++i) {
    const auto c = g.make(i);
    if (c.runtime_size <= 8192) continue;
    auto cfg = evm::VmConfig::ethereum();
    const auto outcome = deploy_on_device(c, cfg);
    EXPECT_TRUE(outcome.success) << evm::to_string(outcome.status);
    break;
  }
}

TEST(Summarize, ComputesAggregates) {
  std::vector<DeploymentOutcome> outcomes(4);
  outcomes[0] = {true, evm::Status::Success, 100, 200, 5, 160, 3200, 0.1};
  outcomes[1] = {true, evm::Status::Success, 300, 400, 7, 224, 6400, 0.2};
  outcomes[2] = {false, evm::Status::OutOfMemory, 9000, 0, 0, 0, 0, 0};
  outcomes[3] = {true, evm::Status::Success, 200, 300, 6, 192, 4800, 0.3};
  const auto stats = summarize(outcomes);
  EXPECT_EQ(stats.deployed, 3u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_NEAR(stats.success_rate, 75.0, 0.01);
  EXPECT_NEAR(stats.contract_size.mean, 200.0, 0.01);
  EXPECT_NEAR(stats.stack_pointer.max, 7.0, 0.01);
  EXPECT_NEAR(stats.deploy_time_ms.min, 0.1, 0.001);
}

TEST(Summarize, EmptyCorpusIsSafe) {
  const auto stats = summarize({});
  EXPECT_EQ(stats.deployed, 0u);
  EXPECT_EQ(stats.success_rate, 0.0);
}

}  // namespace
}  // namespace tinyevm::corpus
