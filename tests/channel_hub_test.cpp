// ChannelHub: the session-centric channel server. Covers the message API
// (open/payment/close round trips), rejection paths, batch determinism,
// concurrency (suite ChannelHubConcurrency runs under TSan in CI), and the
// acceptance differential: hub-side SignedState logs must be bit-identical
// to the equivalent serial ChannelEndpoint exchange at 1/2/8 workers —
// including at 1,000 concurrent sessions (suite ChannelHubScale).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "channel/hub.hpp"
#include "channel/manager.hpp"
#include "evm/code_cache.hpp"
#include "obs/metrics.hpp"

namespace tinyevm::channel {
namespace {

constexpr std::uint32_t kDev = 7;
const U256 kRate{10};

PrivateKey hub_key() { return PrivateKey::from_seed("hub-key"); }
Hash256 anchor() { return keccak256("hub-anchor"); }

std::unique_ptr<ChannelHub> make_hub(std::size_t workers) {
  ChannelHub::Config config;
  config.workers = workers;
  config.code_cache = std::make_shared<evm::CodeCache>();
  auto hub = std::make_unique<ChannelHub>("hub", hub_key(), anchor(), config);
  hub->set_sensor_default(kDev, U256{21});
  return hub;
}

ChannelEndpoint make_car(std::size_t i = 0) {
  ChannelEndpoint car("car-" + std::to_string(i),
                      PrivateKey::from_seed("car-key-" + std::to_string(i)),
                      anchor());
  car.sensors().set_reading(kDev, U256{22});
  return car;
}

void expect_logs_equal(const SideChainLog& hub_log,
                       const SideChainLog& reference) {
  ASSERT_EQ(hub_log.size(), reference.size());
  EXPECT_EQ(hub_log.head(), reference.head());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_TRUE(hub_log.entries()[i] == reference.entries()[i]) << i;
  }
}

// ---------------------------------------------------------------------------
// Message API round trips
// ---------------------------------------------------------------------------

TEST(ChannelHub, OpenPaymentCloseRoundTrip) {
  auto hub = make_hub(2);
  auto car = make_car();

  const auto open = car.open_request(U256{1}, kRate, kDev);
  ASSERT_TRUE(open.has_value());
  const auto opened = hub->handle(*open);
  ASSERT_EQ(opened.status, HubStatus::Ok) << to_string(opened.status);
  ASSERT_TRUE(opened.contract.has_value());
  EXPECT_TRUE(car.apply(opened));
  EXPECT_EQ(hub->session_stored(U256{1}, TemplateSlots::kRate), kRate);
  EXPECT_EQ(hub->session_stored(U256{1}, TemplateSlots::kSensor), U256{21});

  const auto update = car.propose_payment(U256{3});
  ASSERT_TRUE(update.has_value());
  const auto paid = hub->handle(*update);
  ASSERT_EQ(paid.status, HubStatus::Ok);
  ASSERT_TRUE(paid.state.has_value());
  EXPECT_EQ(paid.state->state.paid_total, U256{30});
  EXPECT_EQ(paid.state->state.sequence, 1u);
  // The returned artifact is fully signed: car + hub.
  EXPECT_TRUE(paid.state->verify(car.address(), hub->address()));
  // The endpoint ingests it into its own log.
  EXPECT_TRUE(car.apply(paid));
  EXPECT_EQ(car.log().size(), 1u);

  const auto closed = hub->handle(car.close_request());
  ASSERT_EQ(closed.status, HubStatus::Ok);
  ASSERT_TRUE(closed.state.has_value());
  // Like a serial receiving endpoint, the hub never executes pay() on its
  // own contract — the countersigned log is the billing artifact — so its
  // close state reports the local contract's (zero) counter while chaining
  // onto the log that holds the real total.
  EXPECT_EQ(closed.state->state.paid_total, U256{});
  EXPECT_EQ(closed.state->state.prev_hash, paid.state->state.digest());
  EXPECT_TRUE(car.apply(closed));  // hub-final artifact, informational

  const auto stats = hub->stats();
  EXPECT_EQ(stats.opens, 1u);
  EXPECT_EQ(stats.payments, 1u);
  EXPECT_EQ(stats.closes, 1u);
  EXPECT_EQ(stats.sessions, 1u);
  EXPECT_EQ(stats.open_sessions, 0u);
}

TEST(ChannelHub, DuplicateOpenRejected) {
  auto hub = make_hub(1);
  EXPECT_EQ(hub->handle(OpenRequest{U256{5}, kRate, kDev}).status,
            HubStatus::Ok);
  const auto dup = hub->handle(OpenRequest{U256{5}, kRate, kDev});
  EXPECT_EQ(dup.status, HubStatus::DuplicateChannel);
  EXPECT_EQ(hub->stats().rejected, 1u);
}

TEST(ChannelHub, UnknownChannelRejected) {
  auto hub = make_hub(1);
  auto car = make_car();
  ASSERT_TRUE(car.open_request(U256{1}, kRate, kDev).has_value());
  const auto update = car.propose_payment(U256{1});
  ASSERT_TRUE(update.has_value());
  EXPECT_EQ(hub->handle(*update).status, HubStatus::UnknownChannel);
  EXPECT_EQ(hub->handle(CloseRequest{U256{1}}).status,
            HubStatus::UnknownChannel);
  EXPECT_FALSE(car.apply(hub->handle(*update)));
}

TEST(ChannelHub, OpenFailsWithoutSensorAndAllowsRetry) {
  auto hub = make_hub(1);
  // Device 99 has no default reading: the constructor's 0x0c aborts.
  EXPECT_EQ(hub->handle(OpenRequest{U256{9}, kRate, 99}).status,
            HubStatus::VmFailure);
  EXPECT_EQ(hub->session_count(), 0u);
  // The placeholder is gone, so the endpoint can retry once the sensor
  // exists.
  hub->set_sensor_default(99, U256{5});
  EXPECT_EQ(hub->handle(OpenRequest{U256{9}, kRate, 99}).status,
            HubStatus::Ok);
}

TEST(ChannelHub, ReplayedPaymentRejected) {
  auto hub = make_hub(1);
  auto car = make_car();
  ASSERT_TRUE(car.open_request(U256{1}, kRate, kDev).has_value());
  ASSERT_EQ(hub->handle(OpenRequest{U256{1}, kRate, kDev}).status,
            HubStatus::Ok);
  const auto update = car.propose_payment(U256{2});
  ASSERT_TRUE(update.has_value());
  ASSERT_EQ(hub->handle(*update).status, HubStatus::Ok);
  // Same state again: the hash link no longer extends the hub's log head.
  EXPECT_EQ(hub->handle(*update).status, HubStatus::BadState);
}

TEST(ChannelHub, PaymentAndCloseAfterCloseRejected) {
  auto hub = make_hub(1);
  auto car = make_car();
  ASSERT_TRUE(car.open_request(U256{1}, kRate, kDev).has_value());
  ASSERT_EQ(hub->handle(OpenRequest{U256{1}, kRate, kDev}).status,
            HubStatus::Ok);
  ASSERT_EQ(hub->handle(CloseRequest{U256{1}}).status, HubStatus::Ok);
  const auto update = car.propose_payment(U256{1});
  ASSERT_TRUE(update.has_value());
  EXPECT_EQ(hub->handle(*update).status, HubStatus::ChannelClosed);
  EXPECT_EQ(hub->handle(CloseRequest{U256{1}}).status,
            HubStatus::ChannelClosed);
  // And the channel id stays reserved: re-open is a duplicate.
  EXPECT_EQ(hub->handle(OpenRequest{U256{1}, kRate, kDev}).status,
            HubStatus::DuplicateChannel);
}

TEST(ChannelHub, RegisteredActuatorDefaultsReachSessions) {
  auto hub = make_hub(1);
  hub->register_actuator_default(40);
  ASSERT_EQ(hub->handle(OpenRequest{U256{1}, kRate, kDev}).status,
            HubStatus::Ok);
  // The hub session's peripherals accepted the registration: probing the
  // stored slots shows the session exists; actuator wiring is covered at
  // the SensorBank/DeviceHost layer (channel_endpoint_test).
  EXPECT_EQ(hub->session_stored(U256{1}, TemplateSlots::kSensor), U256{21});
}

TEST(ChannelHub, MixedBatchKeepsPerChannelOrder) {
  auto hub = make_hub(4);
  auto car = make_car();
  const auto open = car.open_request(U256{3}, kRate, kDev);
  ASSERT_TRUE(open.has_value());
  const auto u1 = car.propose_payment(U256{1});
  ASSERT_TRUE(u1.has_value());
  // Open, payment, and close for one channel inside a single batch: the
  // hub must serialize them in batch order on one worker.
  std::vector<HubRequest> batch{*open, *u1, car.close_request()};
  const auto responses = hub->handle_batch(batch);
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(responses[0].status, HubStatus::Ok);
  EXPECT_EQ(responses[1].status, HubStatus::Ok);
  EXPECT_EQ(responses[2].status, HubStatus::Ok);
  ASSERT_TRUE(responses[1].state.has_value());
  EXPECT_EQ(responses[1].state->state.paid_total, U256{10});
  EXPECT_TRUE(hub->audit_all());
}

TEST(ChannelHub, EmptyBatchIsANoOp) {
  auto hub = make_hub(2);
  EXPECT_TRUE(hub->handle_batch({}).empty());
  EXPECT_EQ(hub->session_count(), 0u);
}

TEST(ChannelHub, BoundedVmSetMatchesWorkerCount) {
  auto hub = make_hub(3);
  EXPECT_EQ(hub->worker_count(), 3u);
  auto single = make_hub(1);
  EXPECT_EQ(single->worker_count(), 1u);
}

// ---------------------------------------------------------------------------
// Concurrency (runs under TSan in CI)
// ---------------------------------------------------------------------------

TEST(ChannelHubConcurrency, ParallelSessionsStayConsistent) {
  constexpr std::size_t kSessions = 24;
  auto hub = make_hub(4);

  std::vector<ChannelEndpoint> cars;
  cars.reserve(kSessions);
  std::vector<HubRequest> opens;
  for (std::size_t i = 0; i < kSessions; ++i) {
    cars.push_back(make_car(i));
    const auto open = cars.back().open_request(U256{i + 1}, kRate, kDev);
    ASSERT_TRUE(open.has_value()) << i;
    opens.push_back(*open);
  }
  for (const auto& response : hub->handle_batch(opens)) {
    ASSERT_EQ(response.status, HubStatus::Ok);
  }

  std::vector<HubRequest> updates;
  for (std::size_t i = 0; i < kSessions; ++i) {
    const auto update = cars[i].propose_payment(U256{i % 3 + 1});
    ASSERT_TRUE(update.has_value()) << i;
    updates.push_back(*update);
  }
  const auto responses = hub->handle_batch(updates);
  for (std::size_t i = 0; i < kSessions; ++i) {
    ASSERT_EQ(responses[i].status, HubStatus::Ok) << i;
    ASSERT_TRUE(responses[i].state.has_value());
    EXPECT_TRUE(cars[i].apply(responses[i])) << i;
  }

  EXPECT_TRUE(hub->audit_all());
  const auto stats = hub->stats();
  EXPECT_EQ(stats.opens, kSessions);
  EXPECT_EQ(stats.payments, kSessions);
  EXPECT_EQ(stats.open_sessions, kSessions);
  EXPECT_EQ(stats.signatures, kSessions);          // one countersign each
  EXPECT_EQ(stats.verifications, 2 * kSessions);   // one accept each

  std::vector<HubRequest> closes;
  for (std::size_t i = 0; i < kSessions; ++i) {
    closes.push_back(cars[i].close_request());
  }
  for (const auto& response : hub->handle_batch(closes)) {
    ASSERT_EQ(response.status, HubStatus::Ok);
  }
  EXPECT_EQ(hub->stats().open_sessions, 0u);
}

TEST(ChannelHubConcurrency, ConcurrentDirectHandlesShareTheVmSet) {
  constexpr std::size_t kThreads = 8;
  auto hub = make_hub(2);  // 2 Vms, 8 caller threads: leases must queue
  std::vector<std::thread> threads;
  std::array<HubResponse, kThreads> responses;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      responses[t] = hub->handle(OpenRequest{U256{t + 1}, kRate, kDev});
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& response : responses) {
    EXPECT_EQ(response.status, HubStatus::Ok);
  }
  EXPECT_EQ(hub->session_count(), kThreads);
  EXPECT_TRUE(hub->audit_all());
}

// ---------------------------------------------------------------------------
// Differential: hub exchange ≡ serial endpoint exchange, bit for bit
// ---------------------------------------------------------------------------

/// Precomputed client-side traffic plus the serial reference produced by
/// plain two-party ChannelEndpoint exchanges with an endpoint holding the
/// hub's key. The same requests are replayed against hubs at several
/// worker counts; every hub session log must equal the serial log bit for
/// bit (states and both signatures).
struct Exchange {
  std::vector<U256> ids;
  std::vector<HubRequest> opens;
  std::vector<std::vector<HubRequest>> rounds;  // [round][session]
  std::vector<SideChainLog> reference_logs;
};

Exchange build_exchange(std::size_t sessions, std::size_t round_count) {
  Exchange ex;
  std::vector<ChannelEndpoint> cars;
  std::vector<ChannelEndpoint> lots;  // serial stand-ins for the hub
  cars.reserve(sessions);
  lots.reserve(sessions);
  for (std::size_t i = 0; i < sessions; ++i) {
    const U256 id{i + 1};
    ex.ids.push_back(id);
    cars.push_back(make_car(i));
    lots.emplace_back("lot", hub_key(), anchor());
    lots.back().sensors().set_reading(kDev, U256{21});
    const auto open = cars.back().open_request(id, kRate, kDev);
    EXPECT_TRUE(open.has_value()) << i;
    ex.opens.push_back(*open);
    EXPECT_TRUE(lots.back().open_channel(id, kRate, kDev).has_value()) << i;
  }
  ex.rounds.resize(round_count);
  for (std::size_t r = 0; r < round_count; ++r) {
    for (std::size_t i = 0; i < sessions; ++i) {
      auto update = cars[i].propose_payment(U256{(r + i) % 4 + 1});
      EXPECT_TRUE(update.has_value()) << r << ":" << i;
      // Serial reference: the lot countersigns and records, the car
      // ingests the fully-signed state so its next round chains onto it.
      const auto counter = lots[i].countersign(update->proposal.state);
      EXPECT_TRUE(counter.has_value()) << r << ":" << i;
      SignedState full = update->proposal;
      full.receiver_sig = *counter;
      EXPECT_TRUE(lots[i].accept(full)) << r << ":" << i;
      EXPECT_TRUE(cars[i].accept(full)) << r << ":" << i;
      ex.rounds[r].push_back(std::move(*update));
    }
  }
  for (std::size_t i = 0; i < sessions; ++i) {
    ex.reference_logs.push_back(lots[i].log());
  }
  return ex;
}

void run_hub_and_compare(const Exchange& ex, std::size_t workers) {
  SCOPED_TRACE("workers=" + std::to_string(workers));
  auto hub = make_hub(workers);
  for (const auto& response : hub->handle_batch(ex.opens)) {
    ASSERT_EQ(response.status, HubStatus::Ok);
  }
  for (const auto& round : ex.rounds) {
    for (const auto& response : hub->handle_batch(round)) {
      ASSERT_EQ(response.status, HubStatus::Ok);
    }
  }
  ASSERT_EQ(hub->session_count(), ex.ids.size());
  for (std::size_t i = 0; i < ex.ids.size(); ++i) {
    const auto log = hub->session_log(ex.ids[i]);
    ASSERT_TRUE(log.has_value()) << i;
    expect_logs_equal(*log, ex.reference_logs[i]);
  }
  EXPECT_TRUE(hub->audit_all());
}

TEST(ChannelHubDifferential, BitIdenticalLogsAcrossWorkerCounts) {
  const Exchange ex = build_exchange(48, 2);
  if (::testing::Test::HasFailure()) return;
  for (const std::size_t workers : {1u, 2u, 8u}) {
    run_hub_and_compare(ex, workers);
  }
}

TEST(ChannelHubDifferential, MultiRoundSingleBatchMatchesSerial) {
  // Both rounds of every session in ONE batch: per-channel grouping must
  // serialize them in order, still reproducing the serial logs exactly.
  const Exchange ex = build_exchange(16, 2);
  if (::testing::Test::HasFailure()) return;
  auto hub = make_hub(4);
  for (const auto& response : hub->handle_batch(ex.opens)) {
    ASSERT_EQ(response.status, HubStatus::Ok);
  }
  std::vector<HubRequest> all_rounds;
  for (const auto& round : ex.rounds) {
    all_rounds.insert(all_rounds.end(), round.begin(), round.end());
  }
  for (const auto& response : hub->handle_batch(all_rounds)) {
    ASSERT_EQ(response.status, HubStatus::Ok);
  }
  for (std::size_t i = 0; i < ex.ids.size(); ++i) {
    const auto log = hub->session_log(ex.ids[i]);
    ASSERT_TRUE(log.has_value()) << i;
    expect_logs_equal(*log, ex.reference_logs[i]);
  }
}

// The acceptance criterion: >= 1,000 concurrent sessions, bit-identical
// logs at 1/2/8 workers. ECDSA-heavy (~5k signs + ~8k recovers), so this
// is the slowest test in the tree — still well inside the 300 s ctest
// timeout on the baseline container.
TEST(ChannelHubScale, Serves1000SessionsBitIdentically) {
  constexpr std::size_t kSessions = 1000;
  const Exchange ex = build_exchange(kSessions, 1);
  if (::testing::Test::HasFailure()) return;
  for (const std::size_t workers : {1u, 2u, 8u}) {
    run_hub_and_compare(ex, workers);
  }
}

// ---------------------------------------------------------------------------
// Telemetry: the queue/service split on HubResponse and the registry
// counters (suite ChannelHubTelemetry also runs under TSan in CI).
// ---------------------------------------------------------------------------

TEST(ChannelHubTelemetry, BatchSplitsQueueWaitFromServiceTime) {
  // One worker serializes the batch, so every later request's queue wait
  // covers at least one earlier request's full service time.
  constexpr std::size_t kSessions = 4;
  auto hub = make_hub(1);
  std::vector<ChannelEndpoint> cars;
  std::vector<HubRequest> opens;
  for (std::size_t i = 0; i < kSessions; ++i) {
    cars.push_back(make_car(i));
    const auto open = cars.back().open_request(U256{i + 1}, kRate, kDev);
    ASSERT_TRUE(open.has_value()) << i;
    opens.push_back(*open);
  }
  for (const auto& response : hub->handle_batch(opens)) {
    ASSERT_EQ(response.status, HubStatus::Ok);
  }

  std::vector<HubRequest> updates;
  for (auto& car : cars) {
    auto update = car.propose_payment(U256{1});
    ASSERT_TRUE(update.has_value());
    updates.push_back(std::move(*update));
  }
  const auto responses = hub->handle_batch(updates);
  ASSERT_EQ(responses.size(), kSessions);
  std::uint32_t max_queue = 0;
  std::uint32_t min_service = ~std::uint32_t{0};
  for (const auto& response : responses) {
    ASSERT_EQ(response.status, HubStatus::Ok);
    max_queue = std::max(max_queue, response.queue_us);
    min_service = std::min(min_service, response.service_us);
  }
  // Signed payments spend real time in ECDSA, so the service clock ticks...
  EXPECT_GE(min_service, 1u);
  // ...and with one worker, the last-dispatched payment queued behind at
  // least one full service slice (+2 us covers independent rounding of the
  // two measurements).
  EXPECT_GE(max_queue + 2, min_service);
}

TEST(ChannelHubTelemetry, DirectHandleReportsServiceTime) {
  auto hub = make_hub(2);
  auto car = make_car();
  const auto open = car.open_request(U256{1}, kRate, kDev);
  ASSERT_TRUE(open.has_value());
  const auto opened = hub->handle(*open);
  ASSERT_EQ(opened.status, HubStatus::Ok);
  // Template deployment runs the VM: measurable service, and with both
  // Vms free the lease wait stays far below the service time.
  EXPECT_GE(opened.service_us, 1u);
  EXPECT_LE(opened.queue_us, opened.service_us * 100 + 1000);
}

TEST(ChannelHubTelemetry, RegistryCountersTrackTheWorkload) {
#ifdef TINYEVM_OBS_DISABLED
  GTEST_SKIP() << "telemetry compiled out (-DTINYEVM_OBS=OFF)";
#endif
  obs::set_metrics_enabled(true);
  {
    // A unique hub name keeps this test's series out of the ones the other
    // suites' hubs (all named "hub") feed while metrics are enabled.
    ChannelHub::Config config;
    config.workers = 1;
    config.code_cache = std::make_shared<evm::CodeCache>();
    ChannelHub hub("hub-telemetry", hub_key(), anchor(), config);
    hub.set_sensor_default(kDev, U256{21});
    auto car = make_car();

    const auto open = car.open_request(U256{1}, kRate, kDev);
    ASSERT_TRUE(open.has_value());
    ASSERT_EQ(hub.handle(*open).status, HubStatus::Ok);
    auto update = car.propose_payment(U256{2});
    ASSERT_TRUE(update.has_value());
    const auto paid = hub.handle(*update);
    ASSERT_EQ(paid.status, HubStatus::Ok);
    ASSERT_TRUE(car.apply(paid));
    ASSERT_EQ(hub.handle(car.close_request()).status, HubStatus::Ok);
    // A rejection lands under its own status label.
    EXPECT_NE(hub.handle(OpenRequest{U256{1}, kRate, kDev}).status,
              HubStatus::Ok);

    auto series_value = [](const std::string& name, const obs::LabelSet& labels)
        -> double {
      for (const auto& family : obs::Registry::instance().collect()) {
        if (family.name != name) continue;
        for (const auto& sample : family.samples) {
          if (sample.labels == labels) return sample.value;
        }
      }
      return -1.0;
    };
    EXPECT_EQ(series_value("tinyevm_hub_requests_total",
                           {{"hub", "hub-telemetry"},
                            {"kind", "open"},
                            {"status", "ok"}}),
              1.0);
    EXPECT_EQ(series_value("tinyevm_hub_requests_total",
                           {{"hub", "hub-telemetry"},
                            {"kind", "payment"},
                            {"status", "ok"}}),
              1.0);
    EXPECT_EQ(series_value("tinyevm_hub_requests_total",
                           {{"hub", "hub-telemetry"},
                            {"kind", "close"},
                            {"status", "ok"}}),
              1.0);
    EXPECT_EQ(series_value("tinyevm_hub_requests_total",
                           {{"hub", "hub-telemetry"},
                            {"kind", "open"},
                            {"status", "duplicate-channel"}}),
              1.0);
    // The collector publishes the hub's lifetime stats while it is alive.
    EXPECT_EQ(series_value("tinyevm_hub_opens_total",
                           {{"hub", "hub-telemetry"}}),
              1.0);
    EXPECT_EQ(series_value("tinyevm_hub_payments_total",
                           {{"hub", "hub-telemetry"}}),
              1.0);
    // The per-kind service histograms saw exactly one ok request each.
    for (const auto& family : obs::Registry::instance().collect()) {
      if (family.name != "tinyevm_hub_service_us") continue;
      for (const auto& sample : family.samples) {
        obs::LabelSet want{{"hub", "hub-telemetry"}, {"kind", "payment"}};
        if (sample.labels == want) {
          EXPECT_EQ(sample.histogram.count, 1u);
        }
      }
    }
  }
  obs::set_metrics_enabled(false);
  // The hub is gone: its collector must have unregistered, so a scrape
  // no longer shows its lifetime stats (the interned request counters are
  // process-lifetime instruments and legitimately remain).
  for (const auto& family : obs::Registry::instance().collect()) {
    if (family.name != "tinyevm_hub_opens_total") continue;
    for (const auto& sample : family.samples) {
      for (const auto& [key, value] : sample.labels) {
        EXPECT_FALSE(key == "hub" && value == "hub-telemetry");
      }
    }
  }
}

}  // namespace
}  // namespace tinyevm::channel
