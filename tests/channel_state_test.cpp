// Channel state encoding, signed-state verification, and the side-chain
// log's hash-link / logical-clock invariants.
#include <gtest/gtest.h>

#include "channel/state.hpp"

namespace tinyevm::channel {
namespace {

ChannelState sample_state(std::uint64_t seq = 1, std::uint64_t paid = 100) {
  ChannelState s;
  s.channel_id = U256{7};
  s.sequence = seq;
  s.paid_total = U256{paid};
  s.sensor_data = U256{22};
  s.prev_hash = keccak256("genesis");
  return s;
}

SignedState sign_both(const ChannelState& state, const PrivateKey& sender,
                      const PrivateKey& receiver) {
  SignedState out;
  out.state = state;
  out.sender_sig = secp256k1::sign(state.digest(), sender);
  out.receiver_sig = secp256k1::sign(state.digest(), receiver);
  return out;
}

TEST(ChannelState, EncodeDecodeRoundTrip) {
  const ChannelState s = sample_state(42, 12345);
  const auto decoded = ChannelState::decode(s.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, s);
}

TEST(ChannelState, DigestBindsEveryField) {
  const ChannelState base = sample_state();
  const Hash256 d0 = base.digest();

  ChannelState mod = base;
  mod.channel_id = U256{8};
  EXPECT_NE(mod.digest(), d0) << "channel id not bound";

  mod = base;
  mod.sequence += 1;
  EXPECT_NE(mod.digest(), d0) << "sequence not bound";

  mod = base;
  mod.paid_total += U256{1};
  EXPECT_NE(mod.digest(), d0) << "amount not bound";

  mod = base;
  mod.sensor_data += U256{1};
  EXPECT_NE(mod.digest(), d0) << "sensor data not bound";

  mod = base;
  mod.prev_hash[0] ^= 0xFF;
  EXPECT_NE(mod.digest(), d0) << "hash link not bound";
}

TEST(ChannelState, DecodeRejectsGarbage) {
  EXPECT_FALSE(ChannelState::decode(rlp::Bytes{}).has_value());
  EXPECT_FALSE(ChannelState::decode(rlp::Bytes{0x01, 0x02}).has_value());
  // A valid RLP list with the wrong arity.
  const auto wrong = rlp::encode(rlp::Item::list({rlp::Item::quantity(U256{1})}));
  EXPECT_FALSE(ChannelState::decode(wrong).has_value());
}

TEST(ChannelState, DecodeRejectsShortPrevHash) {
  const auto bad = rlp::encode(rlp::Item::list({
      rlp::Item::quantity(U256{1}),
      rlp::Item::quantity(U256{1}),
      rlp::Item::quantity(U256{1}),
      rlp::Item::quantity(U256{1}),
      rlp::Item::bytes(rlp::Bytes(16, 0xAA)),  // 16 != 32
  }));
  EXPECT_FALSE(ChannelState::decode(bad).has_value());
}

TEST(SignedState, RecoversBothSigners) {
  const auto car = PrivateKey::from_seed("car");
  const auto lot = PrivateKey::from_seed("lot");
  const SignedState ss = sign_both(sample_state(), car, lot);
  const auto signers = ss.recover_signers();
  ASSERT_TRUE(signers.has_value());
  EXPECT_EQ(signers->sender, car.address());
  EXPECT_EQ(signers->receiver, lot.address());
  EXPECT_TRUE(ss.verify(car.address(), lot.address()));
}

TEST(SignedState, VerifyRejectsSwappedRoles) {
  const auto car = PrivateKey::from_seed("car");
  const auto lot = PrivateKey::from_seed("lot");
  const SignedState ss = sign_both(sample_state(), car, lot);
  EXPECT_FALSE(ss.verify(lot.address(), car.address()));
}

TEST(SignedState, VerifyRejectsThirdPartySignature) {
  const auto car = PrivateKey::from_seed("car");
  const auto lot = PrivateKey::from_seed("lot");
  const auto mallory = PrivateKey::from_seed("mallory");
  const SignedState ss = sign_both(sample_state(), car, mallory);
  EXPECT_FALSE(ss.verify(car.address(), lot.address()));
}

TEST(SignedState, TamperedStateBreaksSignatures) {
  const auto car = PrivateKey::from_seed("car");
  const auto lot = PrivateKey::from_seed("lot");
  SignedState ss = sign_both(sample_state(1, 100), car, lot);
  ss.state.paid_total = U256{1};  // receiver shortchanged after signing
  EXPECT_FALSE(ss.verify(car.address(), lot.address()));
}

TEST(SideChainLog, AppendsLinkedStates) {
  const auto car = PrivateKey::from_seed("car");
  const auto lot = PrivateKey::from_seed("lot");
  const Hash256 genesis = keccak256("anchor");
  SideChainLog log(genesis);

  ChannelState s1 = sample_state(1, 100);
  s1.prev_hash = genesis;
  ASSERT_TRUE(log.append(sign_both(s1, car, lot)));

  ChannelState s2 = sample_state(2, 250);
  s2.prev_hash = s1.digest();
  ASSERT_TRUE(log.append(sign_both(s2, car, lot)));

  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.head(), s2.digest());
  EXPECT_TRUE(log.audit(genesis));
}

TEST(SideChainLog, RejectsBrokenHashLink) {
  const auto car = PrivateKey::from_seed("car");
  const auto lot = PrivateKey::from_seed("lot");
  const Hash256 genesis = keccak256("anchor");
  SideChainLog log(genesis);

  ChannelState orphan = sample_state(1, 100);
  orphan.prev_hash = keccak256("somewhere else");
  EXPECT_FALSE(log.append(sign_both(orphan, car, lot)));
  EXPECT_EQ(log.size(), 0u);
}

TEST(SideChainLog, RejectsNonAdvancingSequence) {
  const auto car = PrivateKey::from_seed("car");
  const auto lot = PrivateKey::from_seed("lot");
  const Hash256 genesis = keccak256("anchor");
  SideChainLog log(genesis);

  ChannelState s1 = sample_state(5, 100);
  s1.prev_hash = genesis;
  ASSERT_TRUE(log.append(sign_both(s1, car, lot)));

  ChannelState stale = sample_state(5, 200);  // same logical time
  stale.prev_hash = s1.digest();
  EXPECT_FALSE(log.append(sign_both(stale, car, lot)));

  ChannelState backwards = sample_state(4, 200);
  backwards.prev_hash = s1.digest();
  EXPECT_FALSE(log.append(sign_both(backwards, car, lot)));
}

TEST(SideChainLog, AuditDetectsTamperedEntry) {
  const auto car = PrivateKey::from_seed("car");
  const auto lot = PrivateKey::from_seed("lot");
  const Hash256 genesis = keccak256("anchor");
  SideChainLog log(genesis);

  ChannelState s1 = sample_state(1, 100);
  s1.prev_hash = genesis;
  ASSERT_TRUE(log.append(sign_both(s1, car, lot)));
  EXPECT_TRUE(log.audit(genesis));
  EXPECT_FALSE(log.audit(keccak256("wrong anchor")));
}

TEST(SideChainLog, LatestReflectsNewestState) {
  const auto car = PrivateKey::from_seed("car");
  const auto lot = PrivateKey::from_seed("lot");
  const Hash256 genesis = keccak256("anchor");
  SideChainLog log(genesis);
  EXPECT_FALSE(log.latest().has_value());

  ChannelState s1 = sample_state(1, 100);
  s1.prev_hash = genesis;
  ASSERT_TRUE(log.append(sign_both(s1, car, lot)));
  ASSERT_TRUE(log.latest().has_value());
  EXPECT_EQ(log.latest()->state.sequence, 1u);
}

}  // namespace
}  // namespace tinyevm::channel
