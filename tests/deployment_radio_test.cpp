// Over-the-radio deployment: the paper's workflow ships contract bytecode
// from a powerful node to the mote ("TinyEVM allows deploying smart
// contracts from powerful nodes on a resource-constrained device", §VIII).
// This exercises the whole receive-then-deploy path on the device model:
// TSCH fragmentation of kilobytes of bytecode, then constructor execution.
#include <gtest/gtest.h>

#include "corpus/corpus.hpp"
#include "device/mote.hpp"

namespace tinyevm::device {
namespace {

struct RadioDeploy {
  double transfer_ms = 0;
  double execute_ms = 0;
  bool success = false;
};

RadioDeploy deploy_over_radio(const corpus::Contract& contract,
                              unsigned loss_percent = 0) {
  Mote gateway("gateway");
  Mote mote("mote");
  TschLink link(gateway, mote);
  link.set_loss_rate(loss_percent);

  const std::uint64_t t0 = mote.now_us();
  link.transfer(gateway, static_cast<std::uint32_t>(contract.init_code.size()));
  const std::uint64_t t1 = mote.now_us();

  const auto outcome =
      corpus::deploy_on_device(contract, evm::VmConfig::tiny());
  mote.spend_cpu_cycles(outcome.mcu_cycles);

  RadioDeploy out;
  out.transfer_ms = static_cast<double>(t1 - t0) / 1000.0;
  out.execute_ms = static_cast<double>(mote.now_us() - t1) / 1000.0;
  out.success = outcome.success && !link.last_transfer_failed();
  return out;
}

TEST(RadioDeployment, TypicalContractArrivesAndDeploys) {
  corpus::Generator gen;
  const auto result = deploy_over_radio(gen.make(3));
  EXPECT_TRUE(result.success);
  EXPECT_GT(result.transfer_ms, 0.0);
  EXPECT_GT(result.execute_ms, 0.0);
}

TEST(RadioDeployment, TransferTimeScalesWithSize) {
  corpus::Generator gen;
  // Find one small and one large contract.
  std::optional<corpus::Contract> small;
  std::optional<corpus::Contract> large;
  for (std::size_t i = 0; i < 200 && (!small || !large); ++i) {
    auto c = gen.make(i);
    if (c.init_code.size() < 1'000 && !small) small = std::move(c);
    else if (c.init_code.size() > 6'000 && !large) large = std::move(c);
  }
  ASSERT_TRUE(small && large);
  const auto rs = deploy_over_radio(*small);
  const auto rl = deploy_over_radio(*large);
  EXPECT_GT(rl.transfer_ms, rs.transfer_ms * 2);
}

TEST(RadioDeployment, MultiKilobyteTransferTakesSeconds) {
  // A 4 KB contract needs ~40 fragments; at one 10 ms TSCH slot each the
  // radio leg alone costs a large fraction of a second — exactly why the
  // paper deploys templates once and reuses them per channel.
  corpus::Generator gen;
  for (std::size_t i = 0; i < 100; ++i) {
    const auto c = gen.make(i);
    if (c.init_code.size() < 3'500 || c.init_code.size() > 4'500) continue;
    const auto r = deploy_over_radio(c);
    EXPECT_GT(r.transfer_ms, 300.0);
    EXPECT_LT(r.transfer_ms, 5'000.0);
    return;
  }
  FAIL() << "no ~4 KB contract in the sample";
}

TEST(RadioDeployment, LossyLinkStretchesTransfer) {
  corpus::Generator gen;
  const auto contract = gen.make(5);
  const auto clean = deploy_over_radio(contract, 0);
  const auto lossy = deploy_over_radio(contract, 35);
  ASSERT_TRUE(clean.success);
  EXPECT_GT(lossy.transfer_ms, clean.transfer_ms);
}

TEST(RadioDeployment, DeadLinkFailsDeployment) {
  corpus::Generator gen;
  const auto result = deploy_over_radio(gen.make(5), 99);
  EXPECT_FALSE(result.success);
}

}  // namespace
}  // namespace tinyevm::device
