// Integration test of the full off-chain round (paper §VI-C): two motes,
// real TinyEVM execution and real signatures, device-time accounting whose
// totals must land at the paper's Table IV / Figure 5 scale.
#include <gtest/gtest.h>

#include "device/offchain_round.hpp"

namespace tinyevm::device {
namespace {

constexpr std::uint32_t kTempSensor = 7;

struct RoundFixture {
  Mote car_mote{"car"};
  Mote lot_mote{"lot"};
  channel::ChannelEndpoint car{
      "car", channel::PrivateKey::from_seed("car-key"),
      keccak256("anchor")};
  channel::ChannelEndpoint lot{
      "lot", channel::PrivateKey::from_seed("lot-key"),
      keccak256("anchor")};

  RoundFixture() {
    car.sensors().set_reading(kTempSensor, U256{22});
    lot.sensors().set_reading(kTempSensor, U256{21});
  }

  RoundResult run(unsigned payments = 1) {
    OffchainRound round(car_mote, lot_mote, car, lot);
    return round.run(U256{1}, U256{10}, kTempSensor, payments);
  }
};

TEST(OffchainRound, CompletesWithSignedArtifacts) {
  RoundFixture f;
  const RoundResult r = f.run();
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.paid_total, U256{10});  // 1 unit at rate 10
  EXPECT_EQ(r.sequence, 1u);
  // Both logs hold the same fully-signed state.
  ASSERT_EQ(f.car.log().size(), 1u);
  ASSERT_EQ(f.lot.log().size(), 1u);
  EXPECT_EQ(f.car.log().head(), f.lot.log().head());
  EXPECT_TRUE(
      f.car.log().latest()->verify(f.car.address(), f.lot.address()));
}

TEST(OffchainRound, TotalTimeAtPaperScale) {
  // Paper: a complete off-chain payment takes 584 ms on average and the
  // full signing round spans ~1.5 s (Table IV row "Total" = 1,566 ms).
  RoundFixture f;
  const RoundResult r = f.run();
  ASSERT_TRUE(r.ok);
  const double total_ms = static_cast<double>(r.timing.total_us) / 1000.0;
  EXPECT_GT(total_ms, 400.0);
  EXPECT_LT(total_ms, 3'000.0);
}

TEST(OffchainRound, SigningDominatesLatency) {
  // Table V: ECDSA (350 ms) dwarfs everything else in the payment phase.
  RoundFixture f;
  const RoundResult r = f.run();
  ASSERT_TRUE(r.ok);
  EXPECT_GT(r.timing.sign_payment_us, r.timing.open_channel_us);
  EXPECT_GT(r.timing.sign_payment_us, r.timing.exchange_sensor_us);
  EXPECT_GT(r.timing.sign_payment_us, r.timing.register_sidechain_us);
}

TEST(OffchainRound, CryptoEngineDominatesEnergy) {
  // Table IV: the crypto engine is ~65 % of the round's energy.
  RoundFixture f;
  ASSERT_TRUE(f.run().ok);
  const auto& e = f.car_mote.energest();
  const double crypto = e.energy_mj(PowerState::CryptoEngine);
  const double total = e.total_energy_mj();
  EXPECT_GT(crypto / total, 0.45);
  EXPECT_GT(total, 10.0);   // tens of millijoules
  EXPECT_LT(total, 100.0);
}

TEST(OffchainRound, RadioEnergySmallerThanCompute) {
  RoundFixture f;
  ASSERT_TRUE(f.run().ok);
  const auto& e = f.car_mote.energest();
  const double radio =
      e.energy_mj(PowerState::Tx) + e.energy_mj(PowerState::Rx);
  EXPECT_LT(radio, e.energy_mj(PowerState::CryptoEngine));
  EXPECT_GT(radio, 0.0);
}

TEST(OffchainRound, TraceCoversAllComponents) {
  // Figure 5 shows TX, RX, CPU and crypto-engine activity in one round.
  RoundFixture f;
  ASSERT_TRUE(f.run().ok);
  bool has_tx = false;
  bool has_rx = false;
  bool has_cpu = false;
  bool has_crypto = false;
  for (const auto& seg : f.car_mote.trace()) {
    switch (seg.state) {
      case PowerState::Tx: has_tx = true; break;
      case PowerState::Rx: has_rx = true; break;
      case PowerState::CpuActive: has_cpu = true; break;
      case PowerState::CryptoEngine: has_crypto = true; break;
      case PowerState::Lpm2: break;
    }
  }
  EXPECT_TRUE(has_tx);
  EXPECT_TRUE(has_rx);
  EXPECT_TRUE(has_cpu);
  EXPECT_TRUE(has_crypto);
}

TEST(OffchainRound, TraceIsContiguous) {
  RoundFixture f;
  ASSERT_TRUE(f.run().ok);
  const auto& trace = f.car_mote.trace();
  ASSERT_FALSE(trace.empty());
  std::uint64_t cursor = trace.front().start_us;
  for (const auto& seg : trace) {
    EXPECT_EQ(seg.start_us, cursor);
    cursor += seg.duration_us;
  }
  EXPECT_EQ(cursor, f.car_mote.now_us());
}

TEST(OffchainRound, MultiplePaymentsScaleLinearly) {
  RoundFixture f1;
  const RoundResult one = f1.run(1);
  RoundFixture f3;
  const RoundResult three = f3.run(3);
  ASSERT_TRUE(one.ok && three.ok);
  EXPECT_EQ(three.paid_total, U256{30});
  EXPECT_EQ(three.sequence, 3u);
  // Three payments -> roughly three signing phases.
  EXPECT_GT(three.timing.sign_payment_us,
            2 * one.timing.sign_payment_us);
}

TEST(OffchainRound, BatteryLifetimeEstimateMatchesPaperOrder) {
  // Paper §VI-C: two AA cells (~10 kJ) support ~333k payments; at one
  // payment per 10 minutes that's 6+ years.
  RoundFixture f;
  ASSERT_TRUE(f.run().ok);
  const double round_mj = f.car_mote.energest().total_energy_mj();
  const double payments = 10'000'000.0 / round_mj;  // 10 kJ in mJ
  EXPECT_GT(payments, 100'000.0);
  EXPECT_LT(payments, 1'000'000.0);
}

}  // namespace
}  // namespace tinyevm::device
