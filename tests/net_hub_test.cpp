// The networked hub front-end (src/net). Four suites:
//
//   * NetFrame — the wire codec in isolation: round trips for every frame
//     kind, checksum/version/length rejection, byte-at-a-time reassembly,
//     and the sticky-error contract after stream corruption.
//   * NetHubLoopback — HubServer + HubClient over a real localhost socket:
//     open/pay/close round trips, pipelined correlation, malformed and
//     oversized frames closing the connection, deterministic backpressure
//     Busy behavior, the remote stats scrape, and graceful-drain delivery.
//     Runs under TSan in CI (two server threads + the test thread).
//   * NetHubShutdown — ChannelHub destruction racing a live handle_batch:
//     the lifecycle gate must drain the batch before teardown (TSan).
//   * NetHubDifferential — the acceptance bar: 1,000 sessions driven over
//     real sockets by the LoadGenerator produce hub-side SignedState logs
//     bit-identical (states and both signatures) to the same exchange run
//     in-process through handle_batch, at 1 and 2 workers.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "channel/hub.hpp"
#include "channel/manager.hpp"
#include "evm/code_cache.hpp"
#include "net/client.hpp"
#include "net/frame.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"

namespace tinyevm::net {
namespace {

using channel::ChannelEndpoint;
using channel::ChannelHub;
using channel::CloseRequest;
using channel::HubRequest;
using channel::HubResponse;
using channel::HubResponseKind;
using channel::HubStatus;
using channel::OpenRequest;
using channel::PaymentUpdate;
using channel::PrivateKey;
using channel::SideChainLog;
using channel::SignedState;

constexpr std::uint32_t kDev = 7;
const U256 kRate{10};

PrivateKey hub_key() { return PrivateKey::from_seed("hub-key"); }
Hash256 anchor() { return keccak256("hub-anchor"); }

std::unique_ptr<ChannelHub> make_hub(std::size_t workers) {
  ChannelHub::Config config;
  config.workers = workers;
  config.code_cache = std::make_shared<evm::CodeCache>();
  auto hub =
      std::make_unique<ChannelHub>("net-hub", hub_key(), anchor(), config);
  hub->set_sensor_default(kDev, U256{21});
  return hub;
}

ChannelEndpoint make_car(std::size_t i = 0) {
  ChannelEndpoint car("car-" + std::to_string(i),
                      PrivateKey::from_seed("car-key-" + std::to_string(i)),
                      anchor());
  car.sensors().set_reading(kDev, U256{22});
  return car;
}

void expect_logs_equal(const SideChainLog& socket_log,
                       const SideChainLog& reference) {
  ASSERT_EQ(socket_log.size(), reference.size());
  EXPECT_EQ(socket_log.head(), reference.head());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_TRUE(socket_log.entries()[i] == reference.entries()[i]) << i;
  }
}

/// A half-signed payment proposal for tests that need a real wire payload.
PaymentUpdate make_update(ChannelEndpoint& car, const U256& units) {
  auto update = car.propose_payment(units);
  EXPECT_TRUE(update.has_value());
  return *update;
}

// ---------------------------------------------------------------------------
// NetFrame: the codec in isolation
// ---------------------------------------------------------------------------

TEST(NetFrame, Crc32KnownValue) {
  // The CRC-32/IEEE check value: crc of the ASCII digits "123456789".
  const std::string digits = "123456789";
  const auto crc = crc32({reinterpret_cast<const std::uint8_t*>(digits.data()),
                          digits.size()});
  EXPECT_EQ(crc, 0xCBF43926u);
  EXPECT_EQ(crc32({}), 0u);
}

TEST(NetFrame, RoundTripsEveryRequestKind) {
  auto car = make_car();
  const auto open = car.open_request(U256{9}, kRate, kDev);
  ASSERT_TRUE(open.has_value());
  const std::vector<HubRequest> requests = {
      HubRequest{*open},
      HubRequest{PaymentUpdate{U256{9}, SignedState{}}},
      HubRequest{CloseRequest{U256{9}}},
  };
  std::uint32_t seq = 7;
  for (const auto& request : requests) {
    FrameReader reader;
    reader.feed(encode_request(request, seq));
    const auto frame = reader.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->seq, seq);
    const auto back = decode_request(*frame);
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(*back == request);
    EXPECT_EQ(reader.buffered(), 0u);
    ++seq;
  }
}

TEST(NetFrame, RoundTripsResponses) {
  auto hub = make_hub(1);
  auto car = make_car();
  const auto open = car.open_request(U256{1}, kRate, kDev);
  ASSERT_TRUE(open.has_value());
  const auto opened = hub->handle(*open);
  ASSERT_TRUE(opened.ok());
  const auto paid = hub->handle(make_update(car, U256{3}));
  ASSERT_TRUE(paid.ok());

  for (const auto& response : {opened, paid}) {
    FrameReader reader;
    reader.feed(encode_response(response, 42));
    const auto frame = reader.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->kind, FrameKind::Response);
    const auto back = decode_response(*frame);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->status, response.status);
    EXPECT_EQ(back->kind, response.kind);
    EXPECT_EQ(back->channel_id, response.channel_id);
    EXPECT_EQ(back->contract, response.contract);
    EXPECT_TRUE(back->state == response.state);
    EXPECT_EQ(back->queue_us, response.queue_us);
    EXPECT_EQ(back->service_us, response.service_us);
  }
}

TEST(NetFrame, RoundTripsStatsMessages) {
  FrameReader reader;
  reader.feed(encode_stats_request(StatsRequest{StatsRequest::Format::Json},
                                   3));
  auto frame = reader.next();
  ASSERT_TRUE(frame.has_value());
  const auto request = decode_stats_request(*frame);
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->format, StatsRequest::Format::Json);

  const std::string text = "# TYPE tinyevm_hub_requests_total counter\n";
  reader.feed(encode_stats_response(text, 3));
  frame = reader.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->kind, FrameKind::StatsResponse);
  const auto back = decode_stats_response(*frame);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, text);
}

TEST(NetFrame, ReassemblesByteAtATime) {
  auto car = make_car();
  ASSERT_TRUE(car.open_request(U256{1}, kRate, kDev).has_value());
  const auto update = make_update(car, U256{2});
  const auto bytes = encode_request(HubRequest{update}, 11);
  FrameReader reader;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    EXPECT_FALSE(reader.next().has_value());
    reader.feed({&bytes[i], 1});
  }
  const auto frame = reader.next();
  ASSERT_TRUE(frame.has_value());
  const auto back = decode_request(*frame);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(*back == HubRequest{update});
}

TEST(NetFrame, DrainsMultipleFramesFromOneFeed) {
  Bytes stream;
  for (std::uint32_t seq = 1; seq <= 3; ++seq) {
    const auto bytes =
        encode_request(HubRequest{CloseRequest{U256{seq}}}, seq);
    stream.insert(stream.end(), bytes.begin(), bytes.end());
  }
  FrameReader reader;
  reader.feed(stream);
  for (std::uint32_t seq = 1; seq <= 3; ++seq) {
    const auto frame = reader.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->seq, seq);
  }
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.error(), FrameError::None);
}

TEST(NetFrame, RejectsFlippedChecksumAndStaysDead) {
  auto bytes = encode_request(HubRequest{CloseRequest{U256{1}}}, 1);
  bytes.back() ^= 0x01;
  FrameReader reader;
  reader.feed(bytes);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.error(), FrameError::BadChecksum);
  // Sticky: a healthy frame after the corruption is never surfaced.
  reader.feed(encode_request(HubRequest{CloseRequest{U256{2}}}, 2));
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.error(), FrameError::BadChecksum);
}

TEST(NetFrame, RejectsWrongVersion) {
  auto bytes = encode_request(HubRequest{CloseRequest{U256{1}}}, 1);
  bytes[4] = kProtocolVersion + 1;  // version byte sits after the length
  // Re-seal the checksum (it covers version..body) so the version check —
  // not the CRC — is what convicts the frame.
  const auto crc = crc32({bytes.data() + 4, bytes.size() - 8});
  for (int i = 0; i < 4; ++i) {
    bytes[bytes.size() - 4 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(crc >> (24 - 8 * i));
  }
  FrameReader reader;
  reader.feed(bytes);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.error(), FrameError::BadVersion);
}

TEST(NetFrame, RejectsShortDeclaredLength) {
  // length = 9 < the 10-byte fixed minimum (version..crc).
  const Bytes bytes = {0x00, 0x00, 0x00, 0x09};
  FrameReader reader;
  reader.feed(bytes);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.error(), FrameError::BadLength);
}

TEST(NetFrame, RejectsOversizedDeclaredLength) {
  FrameReader reader(/*max_frame_bytes=*/64);
  const Bytes bytes = {0x00, 0x00, 0x01, 0x00};  // 256 > 64 cap
  reader.feed(bytes);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.error(), FrameError::Oversized);
  // The same declared length is fine under the default cap.
  FrameReader wide;
  wide.feed(bytes);
  EXPECT_FALSE(wide.next().has_value());
  EXPECT_EQ(wide.error(), FrameError::None);
}

TEST(NetFrame, DecodeRejectsShapeMismatch) {
  // A Close body decoded as a Payment (and vice versa) must come back
  // empty, not crash or mis-decode.
  const auto close_bytes = encode_request(HubRequest{CloseRequest{U256{1}}}, 1);
  FrameReader reader;
  reader.feed(close_bytes);
  auto frame = reader.next();
  ASSERT_TRUE(frame.has_value());
  frame->kind = FrameKind::Payment;
  EXPECT_FALSE(decode_request(*frame).has_value());
  frame->kind = FrameKind::Response;
  EXPECT_FALSE(decode_response(*frame).has_value());
  frame->kind = FrameKind::Close;
  EXPECT_TRUE(decode_request(*frame).has_value());
}

// ---------------------------------------------------------------------------
// NetHubLoopback: server + client over localhost
// ---------------------------------------------------------------------------

class NetHubLoopback : public ::testing::Test {
 protected:
  void start(HubServer::Config config = {}, std::size_t workers = 2) {
    obs::set_metrics_enabled(true);
    config.name = "net-test";
    hub_ = make_hub(workers);
    server_ = std::make_unique<HubServer>(*hub_, config);
    port_ = server_->bind();
    serve_thread_ = std::thread([this] { server_->serve(); });
  }

  void stop() {
    if (serve_thread_.joinable()) {
      server_->request_stop();
      serve_thread_.join();
    }
  }

  void TearDown() override {
    stop();
    server_.reset();
    hub_.reset();
  }

  HubClient connect() {
    HubClient client;
    EXPECT_TRUE(client.connect("127.0.0.1", port_));
    return client;
  }

  std::unique_ptr<ChannelHub> hub_;
  std::unique_ptr<HubServer> server_;
  std::uint16_t port_ = 0;
  std::thread serve_thread_;
};

TEST_F(NetHubLoopback, OpenPayCloseRoundTrip) {
  start();
  auto client = connect();
  auto car = make_car();

  const auto open = car.open_request(U256{1}, kRate, kDev);
  ASSERT_TRUE(open.has_value());
  const auto opened = client.call(HubRequest{*open});
  ASSERT_TRUE(opened.has_value());
  ASSERT_EQ(opened->status, HubStatus::Ok) << to_string(opened->status);
  ASSERT_TRUE(opened->contract.has_value());
  EXPECT_TRUE(car.apply(*opened));

  const auto paid = client.call(HubRequest{make_update(car, U256{3})});
  ASSERT_TRUE(paid.has_value());
  ASSERT_EQ(paid->status, HubStatus::Ok);
  ASSERT_TRUE(paid->state.has_value());
  EXPECT_EQ(paid->state->state.paid_total, U256{30});
  EXPECT_TRUE(car.apply(*paid));

  const auto closed = client.call(HubRequest{car.close_request()});
  ASSERT_TRUE(closed.has_value());
  EXPECT_EQ(closed->status, HubStatus::Ok);
  EXPECT_EQ(closed->kind, HubResponseKind::Close);

  // What crossed the wire is what the hub recorded.
  const auto log = hub_->session_log(U256{1});
  ASSERT_TRUE(log.has_value());
  EXPECT_EQ(log->size(), 1u);
  EXPECT_TRUE(log->entries()[0] == paid->state);

  const auto stats = server_->stats();
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_GE(stats.frames_in, 3u);
  EXPECT_GE(stats.frames_out, 3u);
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_EQ(stats.busy_rejections, 0u);
}

TEST_F(NetHubLoopback, PipelinedRequestsEchoTheirSeqs) {
  start();
  auto client = connect();
  auto car_a = make_car(0);
  auto car_b = make_car(1);
  const auto open_a = car_a.open_request(U256{1}, kRate, kDev);
  const auto open_b = car_b.open_request(U256{2}, kRate, kDev);
  ASSERT_TRUE(open_a.has_value());
  ASSERT_TRUE(open_b.has_value());

  // Two opens on the wire before any response is read.
  ASSERT_TRUE(client.send_raw(encode_request(HubRequest{*open_a}, 101)));
  ASSERT_TRUE(client.send_raw(encode_request(HubRequest{*open_b}, 102)));

  std::size_t matched = 0;
  for (int i = 0; i < 2; ++i) {
    const auto reply = client.recv();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->second.status, HubStatus::Ok);
    if (reply->first == 101) {
      EXPECT_EQ(reply->second.channel_id, U256{1});
      ++matched;
    } else if (reply->first == 102) {
      EXPECT_EQ(reply->second.channel_id, U256{2});
      ++matched;
    }
  }
  EXPECT_EQ(matched, 2u);
}

TEST_F(NetHubLoopback, ServerReassemblesDribbledFrames) {
  start();
  auto client = connect();
  auto car = make_car();
  const auto open = car.open_request(U256{1}, kRate, kDev);
  ASSERT_TRUE(open.has_value());
  const auto bytes = encode_request(HubRequest{*open}, 5);
  // Trickle the frame a few bytes per write so the server sees partial
  // reads and must reassemble across them.
  const std::size_t step = 3;
  for (std::size_t i = 0; i < bytes.size(); i += step) {
    const std::size_t n = std::min(step, bytes.size() - i);
    ASSERT_TRUE(client.send_raw({&bytes[i], n}));
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  const auto reply = client.recv();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->first, 5u);
  EXPECT_EQ(reply->second.status, HubStatus::Ok);
}

TEST_F(NetHubLoopback, MalformedFrameClosesConnection) {
  start();
  auto client = connect();
  auto bytes = encode_request(HubRequest{CloseRequest{U256{1}}}, 1);
  bytes.back() ^= 0xFF;  // corrupt the checksum
  ASSERT_TRUE(client.send_raw(bytes));
  EXPECT_FALSE(client.recv().has_value());  // EOF: the server hung up
  EXPECT_GE(server_->stats().protocol_errors, 1u);

  // The server survives and serves the next connection normally.
  auto again = connect();
  auto car = make_car();
  const auto open = car.open_request(U256{1}, kRate, kDev);
  ASSERT_TRUE(open.has_value());
  const auto opened = again.call(HubRequest{*open});
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(opened->status, HubStatus::Ok);
}

TEST_F(NetHubLoopback, OversizedFrameClosesConnection) {
  HubServer::Config config;
  config.max_frame_bytes = 512;
  start(config);
  auto client = connect();
  // Declared length 1024 > the 512 cap; no body needed — the length
  // prefix alone convicts the stream.
  ASSERT_TRUE(client.send_raw(Bytes{0x00, 0x00, 0x04, 0x00}));
  EXPECT_FALSE(client.recv().has_value());
  EXPECT_GE(server_->stats().protocol_errors, 1u);
}

TEST_F(NetHubLoopback, ResponseKindFromClientClosesConnection) {
  start();
  auto client = connect();
  ASSERT_TRUE(client.send_raw(encode_response(HubResponse{}, 1)));
  EXPECT_FALSE(client.recv().has_value());
  EXPECT_GE(server_->stats().protocol_errors, 1u);
}

TEST_F(NetHubLoopback, BackpressureAnswersBusyPastTheBudget) {
  HubServer::Config config;
  config.inflight_budget = 4;
  start(config);
  auto client = connect();
  auto car = make_car();
  const auto open = car.open_request(U256{1}, kRate, kDev);
  ASSERT_TRUE(open.has_value());
  const auto opened = client.call(HubRequest{*open});
  ASSERT_TRUE(opened.has_value());
  ASSERT_EQ(opened->status, HubStatus::Ok);

  // Hold the dispatcher so decoded requests pile up against the inflight
  // budget instead of being answered as fast as they arrive.
  server_->pause_dispatch(true);
  const auto update = make_update(car, U256{2});
  for (std::uint32_t seq = 201; seq <= 208; ++seq) {
    ASSERT_TRUE(client.send_raw(encode_request(HubRequest{update}, seq)));
  }

  // 8 pipelined requests against a budget of 4: exactly 4 immediate Busy
  // rejections from the I/O thread, then — once the dispatcher resumes —
  // the 4 queued requests are served (one applies; the identical replays
  // fail log validation).
  std::size_t busy = 0;
  std::size_t ok = 0;
  std::size_t bad_state = 0;
  for (int i = 0; i < 8; ++i) {
    if (i == 4) {
      EXPECT_EQ(busy, 4u);  // the Busy frames never waited on the pause
      server_->pause_dispatch(false);
    }
    const auto reply = client.recv();
    ASSERT_TRUE(reply.has_value()) << i;
    switch (reply->second.status) {
      case HubStatus::Busy: ++busy; break;
      case HubStatus::Ok: ++ok; break;
      case HubStatus::BadState: ++bad_state; break;
      default: FAIL() << to_string(reply->second.status);
    }
  }
  EXPECT_EQ(busy, 4u);
  EXPECT_EQ(ok, 1u);
  EXPECT_EQ(bad_state, 3u);
  EXPECT_EQ(server_->stats().busy_rejections, 4u);
}

TEST_F(NetHubLoopback, StatsRequestScrapesOverTheSamePort) {
  start();
  auto client = connect();
  auto car = make_car();
  const auto open = car.open_request(U256{1}, kRate, kDev);
  ASSERT_TRUE(open.has_value());
  ASSERT_TRUE(client.call(HubRequest{*open}).has_value());

  const auto prom = client.scrape(StatsRequest::Format::Prometheus);
  ASSERT_TRUE(prom.has_value());
  EXPECT_NE(prom->find("tinyevm_net_connections"), std::string::npos);
  EXPECT_NE(prom->find("tinyevm_net_frames_in_total"), std::string::npos);
  EXPECT_NE(prom->find("tinyevm_hub_requests_total"), std::string::npos);

  const auto json = client.scrape(StatsRequest::Format::Json);
  ASSERT_TRUE(json.has_value());
  EXPECT_NE(json->find("\"metrics\""), std::string::npos);
  EXPECT_NE(json->find("tinyevm_net_accepted_total"), std::string::npos);
}

TEST_F(NetHubLoopback, GracefulDrainDeliversQueuedResponses) {
  start();
  auto client = connect();
  auto car = make_car();
  const auto open = car.open_request(U256{1}, kRate, kDev);
  ASSERT_TRUE(open.has_value());

  // Park the request behind a paused dispatcher, then stop the server:
  // the graceful drain must finish the batch and flush the response
  // before tearing the connection down.
  server_->pause_dispatch(true);
  ASSERT_TRUE(client.send_raw(encode_request(HubRequest{*open}, 31)));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stop();

  const auto reply = client.recv();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->first, 31u);
  EXPECT_EQ(reply->second.status, HubStatus::Ok);
}

TEST_F(NetHubLoopback, DrainShedsNewRequestsWithBusy) {
  start();
  auto client = connect();
  auto car = make_car();
  const auto open = car.open_request(U256{1}, kRate, kDev);
  ASSERT_TRUE(open.has_value());
  // Opened normally first so the shed below is unambiguous.
  ASSERT_TRUE(client.call(HubRequest{*open}).has_value());

  stop();  // serve() has returned; the drain already ran

  // A request that raced the drain window was either answered or the
  // connection is gone — both are valid; what must never happen is a
  // hang. Requests sent after serve() returned see a closed socket.
  const auto update = make_update(car, U256{1});
  client.send_raw(encode_request(HubRequest{update}, 99));
  const auto reply = client.recv();
  if (reply.has_value()) {
    EXPECT_EQ(reply->second.status, HubStatus::Busy);
  }
}

// ---------------------------------------------------------------------------
// NetHubShutdown: hub destruction vs in-flight batches (TSan)
// ---------------------------------------------------------------------------

TEST(NetHubShutdown, DestructionDrainsActiveBatch) {
  constexpr std::size_t kSessions = 256;
  auto hub = make_hub(2);

  std::vector<ChannelEndpoint> cars;
  cars.reserve(kSessions);
  std::vector<HubRequest> opens;
  opens.reserve(kSessions);
  for (std::size_t i = 0; i < kSessions; ++i) {
    cars.push_back(make_car(i));
    const auto open = cars.back().open_request(U256{i + 1}, kRate, kDev);
    ASSERT_TRUE(open.has_value());
    opens.push_back(*open);
  }

  std::vector<HubResponse> responses;
  ChannelHub* raw = hub.get();  // the thread must not touch the unique_ptr
  std::thread batch([&responses, raw, &opens] {
    responses = raw->handle_batch(opens);
  });
  // Wait until the hub's own counters prove the batch is admitted and
  // mid-flight, then land the destructor on it: the lifecycle gate must
  // block teardown until the batch has fully drained.
  while (hub->stats().opens == 0) std::this_thread::yield();
  hub.reset();
  batch.join();

  // The batch was in flight when destruction began, so it ran to
  // completion against a live session table — every open succeeded.
  ASSERT_EQ(responses.size(), kSessions);
  for (const auto& response : responses) {
    EXPECT_EQ(response.status, HubStatus::Ok);
  }
}

TEST(NetHubShutdown, ConcurrentBatchesDrainIndependently) {
  auto hub = make_hub(2);
  constexpr std::size_t kPerBatch = 64;

  std::vector<ChannelEndpoint> cars;
  cars.reserve(2 * kPerBatch);
  std::vector<std::vector<HubRequest>> batches(2);
  for (std::size_t b = 0; b < 2; ++b) {
    for (std::size_t i = 0; i < kPerBatch; ++i) {
      const std::size_t id = b * kPerBatch + i;
      cars.push_back(make_car(id));
      const auto open = cars.back().open_request(U256{id + 1}, kRate, kDev);
      ASSERT_TRUE(open.has_value());
      batches[b].push_back(*open);
    }
  }

  std::vector<std::vector<HubResponse>> responses(2);
  std::vector<std::thread> threads;
  ChannelHub* raw = hub.get();  // threads must not touch the unique_ptr
  for (std::size_t b = 0; b < 2; ++b) {
    threads.emplace_back([&responses, raw, &batches, b] {
      responses[b] = raw->handle_batch(batches[b]);
    });
  }
  // Each batch's first channel appearing in the session table proves that
  // batch is admitted and mid-flight; then destroy under both.
  while (!hub->session_log(U256{1}).has_value() ||
         !hub->session_log(U256{kPerBatch + 1}).has_value()) {
    std::this_thread::yield();
  }
  hub.reset();
  for (auto& t : threads) t.join();

  for (const auto& batch : responses) {
    ASSERT_EQ(batch.size(), kPerBatch);
    for (const auto& response : batch) {
      EXPECT_EQ(response.status, HubStatus::Ok);
    }
  }
}

// ---------------------------------------------------------------------------
// NetHubDifferential: socket exchange ≡ in-process exchange
// ---------------------------------------------------------------------------

/// Runs `sessions` channels × `rounds` payment rounds twice — once over
/// real sockets through HubServer/LoadGenerator, once in-process through
/// handle_batch with identically-seeded endpoints — and requires the two
/// hubs' per-channel SignedState logs to match bit-for-bit (states and
/// both signatures; RFC-6979 deterministic ECDSA makes that exact).
void run_differential(std::size_t sessions, std::size_t rounds,
                      std::size_t workers) {
  // --- socket side ---------------------------------------------------------
  auto socket_hub = make_hub(workers);
  HubServer::Config server_config;
  server_config.name = "net-diff";
  HubServer server(*socket_hub, server_config);
  const auto port = server.bind();
  std::thread serve_thread([&] { server.serve(); });

  LoadGenerator::Config load;
  load.port = port;
  load.connections = sessions;
  load.rounds = rounds;
  load.onchain_root = anchor();
  const auto report = LoadGenerator(load).run();

  EXPECT_EQ(report.connections_done, sessions);
  EXPECT_EQ(report.rounds_done, sessions * rounds);
  EXPECT_EQ(report.failures, 0u);
  EXPECT_EQ(report.connect_failures, 0u);
  // Lockstep clients below the budget: steady state sheds nothing.
  EXPECT_EQ(report.busy_retries, 0u);

  server.request_stop();
  serve_thread.join();
  EXPECT_EQ(server.stats().protocol_errors, 0u);
  EXPECT_EQ(server.stats().busy_rejections, 0u);

  // --- in-process reference ------------------------------------------------
  auto reference_hub = make_hub(workers);
  std::vector<ChannelEndpoint> cars;
  cars.reserve(sessions);
  std::vector<HubRequest> opens;
  opens.reserve(sessions);
  for (std::size_t i = 0; i < sessions; ++i) {
    cars.push_back(make_car(i));
    const auto open = cars.back().open_request(U256{i + 1}, kRate, kDev);
    ASSERT_TRUE(open.has_value());
    opens.push_back(*open);
  }
  for (std::size_t i = 0;
       const auto& response : reference_hub->handle_batch(opens)) {
    ASSERT_TRUE(response.ok()) << to_string(response.status);
    ASSERT_TRUE(cars[i++].apply(response));
  }
  for (std::size_t r = 0; r < rounds; ++r) {
    std::vector<HubRequest> updates;
    updates.reserve(sessions);
    for (std::size_t i = 0; i < sessions; ++i) {
      // The LoadGenerator's deterministic script: units (r + i) % 4 + 1.
      auto update = cars[i].propose_payment(U256{(r + i) % 4 + 1});
      ASSERT_TRUE(update.has_value());
      updates.push_back(std::move(*update));
    }
    for (std::size_t i = 0;
         const auto& response : reference_hub->handle_batch(updates)) {
      ASSERT_TRUE(response.ok()) << to_string(response.status);
      ASSERT_TRUE(cars[i++].apply(response));
    }
  }
  std::vector<HubRequest> closes;
  closes.reserve(sessions);
  for (auto& car : cars) closes.push_back(car.close_request());
  for (const auto& response : reference_hub->handle_batch(closes)) {
    ASSERT_TRUE(response.ok()) << to_string(response.status);
  }

  // --- the bar: bit-identical per-channel logs -----------------------------
  ASSERT_EQ(socket_hub->session_count(), reference_hub->session_count());
  for (std::size_t i = 0; i < sessions; ++i) {
    const auto socket_log = socket_hub->session_log(U256{i + 1});
    const auto reference_log = reference_hub->session_log(U256{i + 1});
    ASSERT_TRUE(socket_log.has_value()) << i;
    ASSERT_TRUE(reference_log.has_value()) << i;
    expect_logs_equal(*socket_log, *reference_log);
  }
  EXPECT_TRUE(socket_hub->audit_all());
  EXPECT_TRUE(reference_hub->audit_all());
}

TEST(NetHubDifferential, ThousandSessionsOneWorker) {
  run_differential(/*sessions=*/1000, /*rounds=*/1, /*workers=*/1);
}

TEST(NetHubDifferential, ThousandSessionsTwoWorkers) {
  run_differential(/*sessions=*/1000, /*rounds=*/1, /*workers=*/2);
}

TEST(NetHubDifferential, MultiRoundTwoWorkers) {
  run_differential(/*sessions=*/64, /*rounds=*/3, /*workers=*/2);
}

}  // namespace
}  // namespace tinyevm::net
