// On-chain Template contract protocol tests: deposits, the logical clock,
// commits with sequence/sum validation, challenge-period disputes, insurance
// slashing, and final settlement — the security properties of paper §V.
#include <gtest/gtest.h>

#include "abi/abi.hpp"
#include "chain/template_contract.hpp"

namespace tinyevm::chain {
namespace {

constexpr std::uint64_t kChallengePeriod = 10;  // blocks

struct Fixture {
  Blockchain chain;
  PrivateKey car = PrivateKey::from_seed("car-key");
  PrivateKey lot = PrivateKey::from_seed("lot-key");
  Address template_addr{};
  TemplateContract* contract = nullptr;

  Fixture() {
    template_addr[19] = 0xAB;
    auto owned = std::make_unique<TemplateContract>(
        chain, template_addr, lot.address(), kChallengePeriod);
    contract = owned.get();
    chain.register_native(template_addr, std::move(owned));
    // Enough to cover the up-front gas escrow (gas_limit * price) of
    // several transactions plus the channel deposits.
    chain.credit(car.address(), U256{100'000'000});
    chain.credit(lot.address(), U256{100'000'000});
  }

  /// Opens a funded channel; returns its id.
  U256 open_channel(const U256& deposit = U256{1000},
                    const U256& insurance = U256{100}) {
    EXPECT_EQ(contract->deposit(car.address(), deposit, insurance),
              TemplateStatus::Ok);
    const auto id = contract->create_payment_channel(car.address());
    EXPECT_TRUE(id.has_value());
    return *id;
  }

  channel::SignedState signed_state(const U256& id, std::uint64_t seq,
                                    std::uint64_t paid,
                                    const Hash256& prev = Hash256{}) {
    channel::ChannelState s;
    s.channel_id = id;
    s.sequence = seq;
    s.paid_total = U256{paid};
    s.sensor_data = U256{22};
    s.prev_hash = prev;
    channel::SignedState out;
    out.state = s;
    out.sender_sig = secp256k1::sign(s.digest(), car);
    out.receiver_sig = secp256k1::sign(s.digest(), lot);
    return out;
  }
};

TEST(TemplateDeposit, LocksFundsOnChain) {
  Fixture f;
  ASSERT_EQ(f.contract->deposit(f.car.address(), U256{500}, U256{50}),
            TemplateStatus::Ok);
  EXPECT_EQ(f.chain.balance_of(f.car.address()), U256{100'000'000 - 500});
  EXPECT_EQ(f.chain.balance_of(f.template_addr), U256{500});
  EXPECT_EQ(f.contract->locked_of(f.car.address()), U256{450});
}

TEST(TemplateDeposit, RejectsInsufficientBalance) {
  Fixture f;
  EXPECT_EQ(f.contract->deposit(f.car.address(), U256{200'000'000}, U256{0}),
            TemplateStatus::InsufficientDeposit);
}

TEST(TemplateDeposit, RejectsInsuranceAboveAmount) {
  Fixture f;
  EXPECT_EQ(f.contract->deposit(f.car.address(), U256{100}, U256{200}),
            TemplateStatus::InsufficientDeposit);
}

TEST(TemplateClock, ChannelIdsAreMonotonic) {
  Fixture f;
  ASSERT_EQ(f.contract->deposit(f.car.address(), U256{1000}, U256{0}),
            TemplateStatus::Ok);
  const auto id1 = f.contract->create_payment_channel(f.car.address());
  const auto id2 = f.contract->create_payment_channel(f.car.address());
  ASSERT_TRUE(id1 && id2);
  EXPECT_EQ(*id1, U256{1});
  EXPECT_EQ(*id2, U256{2});
  EXPECT_EQ(f.contract->logical_clock(), 2u);
}

TEST(TemplateClock, ChannelNeedsDeposit) {
  Fixture f;
  EXPECT_FALSE(f.contract->create_payment_channel(f.car.address()).has_value());
}

TEST(TemplateCommit, AcceptsValidSignedState) {
  Fixture f;
  const U256 id = f.open_channel();
  const auto state = f.signed_state(id, 1, 300);
  ASSERT_EQ(f.contract->on_chain_commit(state), TemplateStatus::Ok);
  const auto* rec = f.contract->channel(id);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->highest_sequence, 1u);
  EXPECT_EQ(rec->committed_total, U256{300});
  EXPECT_EQ(f.contract->side_chain_root().sum, U256{300});
}

TEST(TemplateCommit, HigherSequenceAccumulates) {
  Fixture f;
  const U256 id = f.open_channel();
  ASSERT_EQ(f.contract->on_chain_commit(f.signed_state(id, 1, 300)),
            TemplateStatus::Ok);
  ASSERT_EQ(f.contract->on_chain_commit(f.signed_state(id, 5, 700)),
            TemplateStatus::Ok);
  const auto* rec = f.contract->channel(id);
  EXPECT_EQ(rec->highest_sequence, 5u);
  EXPECT_EQ(rec->committed_total, U256{700});
  // The sum tree accumulates deltas: 300 + 400.
  EXPECT_EQ(f.contract->side_chain_root().sum, U256{700});
}

TEST(TemplateCommit, RejectsStaleSequence) {
  Fixture f;
  const U256 id = f.open_channel();
  ASSERT_EQ(f.contract->on_chain_commit(f.signed_state(id, 5, 300)),
            TemplateStatus::Ok);
  EXPECT_EQ(f.contract->on_chain_commit(f.signed_state(id, 5, 400)),
            TemplateStatus::StaleSequence);
  EXPECT_EQ(f.contract->on_chain_commit(f.signed_state(id, 4, 400)),
            TemplateStatus::StaleSequence);
}

TEST(TemplateCommit, RejectsOverspend) {
  Fixture f;
  const U256 id = f.open_channel(U256{1000}, U256{100});
  // Deposit net of insurance is 900; paying 950 breaches the lock.
  EXPECT_EQ(f.contract->on_chain_commit(f.signed_state(id, 1, 950)),
            TemplateStatus::OverLockedFunds);
}

TEST(TemplateCommit, RejectsShrinkingTotal) {
  Fixture f;
  const U256 id = f.open_channel();
  ASSERT_EQ(f.contract->on_chain_commit(f.signed_state(id, 1, 500)),
            TemplateStatus::Ok);
  EXPECT_EQ(f.contract->on_chain_commit(f.signed_state(id, 2, 400)),
            TemplateStatus::OverLockedFunds);
}

TEST(TemplateCommit, RejectsWrongSigners) {
  Fixture f;
  const U256 id = f.open_channel();
  auto state = f.signed_state(id, 1, 100);
  const auto mallory = PrivateKey::from_seed("mallory");
  state.receiver_sig = secp256k1::sign(state.state.digest(), mallory);
  EXPECT_EQ(f.contract->on_chain_commit(state), TemplateStatus::BadSignature);
}

TEST(TemplateCommit, RejectsTamperedState) {
  Fixture f;
  const U256 id = f.open_channel();
  auto state = f.signed_state(id, 1, 100);
  state.state.paid_total = U256{999};  // altered after signing
  EXPECT_EQ(f.contract->on_chain_commit(state), TemplateStatus::BadSignature);
}

TEST(TemplateCommit, RejectsUnknownChannel) {
  Fixture f;
  EXPECT_EQ(f.contract->on_chain_commit(f.signed_state(U256{42}, 1, 100)),
            TemplateStatus::UnknownChannel);
}

TEST(TemplateExit, SettlesAfterChallengePeriod) {
  Fixture f;
  const U256 id = f.open_channel(U256{1000}, U256{100});
  ASSERT_EQ(f.contract->on_chain_commit(f.signed_state(id, 3, 600)),
            TemplateStatus::Ok);
  ASSERT_EQ(f.contract->request_exit(f.lot.address(), id),
            TemplateStatus::Ok);

  // Too early to finalize.
  EXPECT_EQ(f.contract->finalize(id), TemplateStatus::ChallengeActive);
  f.chain.mine_blocks(kChallengePeriod + 1);

  const U256 lot_before = f.chain.balance_of(f.lot.address());
  const U256 car_before = f.chain.balance_of(f.car.address());
  ASSERT_EQ(f.contract->finalize(id), TemplateStatus::Ok);
  // Receiver gets the committed 600; sender gets refund 300 + insurance 100.
  EXPECT_EQ(f.chain.balance_of(f.lot.address()), lot_before + U256{600});
  EXPECT_EQ(f.chain.balance_of(f.car.address()), car_before + U256{400});
  EXPECT_TRUE(f.contract->channel(id)->closed);
}

TEST(TemplateExit, DoubleFinalizeRejected) {
  Fixture f;
  const U256 id = f.open_channel();
  ASSERT_EQ(f.contract->request_exit(f.car.address(), id), TemplateStatus::Ok);
  f.chain.mine_blocks(kChallengePeriod + 1);
  ASSERT_EQ(f.contract->finalize(id), TemplateStatus::Ok);
  EXPECT_EQ(f.contract->finalize(id), TemplateStatus::ChannelClosed);
}

TEST(TemplateExit, FinalizeWithoutExitRejected) {
  Fixture f;
  const U256 id = f.open_channel();
  EXPECT_EQ(f.contract->finalize(id), TemplateStatus::NotInChallenge);
}

TEST(TemplateExit, OnlyParticipantsMayExit) {
  Fixture f;
  const U256 id = f.open_channel();
  const auto mallory = PrivateKey::from_seed("mallory").address();
  EXPECT_EQ(f.contract->request_exit(mallory, id),
            TemplateStatus::NotParticipant);
}

TEST(TemplateChallenge, NewerStateOverridesStaleExit) {
  // The paper's core fraud story: the car exits on an old, cheap state; the
  // parking sensor disputes with a newer signed state during the window.
  Fixture f;
  const U256 id = f.open_channel(U256{1000}, U256{100});
  ASSERT_EQ(f.contract->on_chain_commit(f.signed_state(id, 1, 100)),
            TemplateStatus::Ok);  // the stale state the car wants to settle
  ASSERT_EQ(f.contract->request_exit(f.car.address(), id), TemplateStatus::Ok);

  const U256 lot_before = f.chain.balance_of(f.lot.address());
  ASSERT_EQ(
      f.contract->challenge(f.lot.address(), f.signed_state(id, 7, 800)),
      TemplateStatus::Ok);
  // The payer's insurance is slashed to the challenger immediately.
  EXPECT_EQ(f.chain.balance_of(f.lot.address()), lot_before + U256{100});

  f.chain.mine_blocks(kChallengePeriod + 1);
  ASSERT_EQ(f.contract->finalize(id), TemplateStatus::Ok);
  // Settlement now uses the disputed (newer) total.
  EXPECT_EQ(f.contract->channel(id)->committed_total, U256{800});
}

TEST(TemplateChallenge, RequiresActiveWindow) {
  Fixture f;
  const U256 id = f.open_channel();
  EXPECT_EQ(
      f.contract->challenge(f.lot.address(), f.signed_state(id, 2, 200)),
      TemplateStatus::NotInChallenge);

  ASSERT_EQ(f.contract->request_exit(f.car.address(), id), TemplateStatus::Ok);
  f.chain.mine_blocks(kChallengePeriod + 1);
  EXPECT_EQ(
      f.contract->challenge(f.lot.address(), f.signed_state(id, 2, 200)),
      TemplateStatus::NotInChallenge)
      << "window expired";
}

TEST(TemplateChallenge, StaleChallengeRejected) {
  Fixture f;
  const U256 id = f.open_channel();
  ASSERT_EQ(f.contract->on_chain_commit(f.signed_state(id, 5, 500)),
            TemplateStatus::Ok);
  ASSERT_EQ(f.contract->request_exit(f.car.address(), id), TemplateStatus::Ok);
  EXPECT_EQ(
      f.contract->challenge(f.lot.address(), f.signed_state(id, 3, 300)),
      TemplateStatus::StaleSequence);
}

TEST(TemplateChallenge, OutsiderCannotChallenge) {
  Fixture f;
  const U256 id = f.open_channel();
  ASSERT_EQ(f.contract->request_exit(f.car.address(), id), TemplateStatus::Ok);
  const auto mallory = PrivateKey::from_seed("mallory").address();
  EXPECT_EQ(f.contract->challenge(mallory, f.signed_state(id, 2, 200)),
            TemplateStatus::NotParticipant);
}

TEST(TemplateAbi, DepositAndChannelViaTransactions) {
  // The same flows through the wire interface, as a mote would submit them.
  Fixture f;
  Transaction dep;
  dep.to = f.template_addr;
  dep.value = U256{1000};
  dep.data = abi::Encoder("deposit(uint256)").add_uint(U256{100}).build();
  const auto r1 = f.chain.submit(f.car, dep);
  ASSERT_TRUE(r1 && r1->success);
  EXPECT_EQ(f.contract->locked_of(f.car.address()), U256{900});

  Transaction create;
  create.to = f.template_addr;
  create.data = abi::Encoder("createPaymentChannel()").build();
  const auto r2 = f.chain.submit(f.car, create);
  ASSERT_TRUE(r2 && r2->success);
  EXPECT_EQ(U256::from_bytes(r2->output), U256{1});

  Transaction clock;
  clock.to = f.template_addr;
  clock.data = abi::Encoder("logicalClock()").build();
  const auto r3 = f.chain.submit(f.lot, clock);
  ASSERT_TRUE(r3 && r3->success);
  EXPECT_EQ(U256::from_bytes(r3->output), U256{1});
}

TEST(TemplateAbi, CommitViaTransaction) {
  Fixture f;
  const U256 id = f.open_channel();
  const auto state = f.signed_state(id, 1, 250);

  const auto sig_s = state.sender_sig.serialize();
  const auto sig_r = state.receiver_sig.serialize();
  Transaction commit;
  commit.to = f.template_addr;
  commit.data = abi::Encoder("commit(bytes,bytes,bytes)")
                    .add_bytes(state.state.encode())
                    .add_bytes(sig_s)
                    .add_bytes(sig_r)
                    .build();
  const auto r = f.chain.submit(f.lot, commit);
  ASSERT_TRUE(r.has_value());
  ASSERT_TRUE(r->success);
  EXPECT_EQ(f.contract->channel(id)->committed_total, U256{250});
}

TEST(TemplateAbi, ExitAndFinalizeViaTransactions) {
  Fixture f;
  const U256 id = f.open_channel();
  ASSERT_EQ(f.contract->on_chain_commit(f.signed_state(id, 1, 500)),
            TemplateStatus::Ok);

  Transaction exit_tx;
  exit_tx.to = f.template_addr;
  exit_tx.data = abi::Encoder("exit(uint256)").add_uint(id).build();
  ASSERT_TRUE(f.chain.submit(f.car, exit_tx)->success);

  f.chain.mine_blocks(kChallengePeriod + 1);
  Transaction fin;
  fin.to = f.template_addr;
  fin.data = abi::Encoder("finalize(uint256)").add_uint(id).build();
  const auto r = f.chain.submit(f.lot, fin);
  ASSERT_TRUE(r && r->success);
  EXPECT_TRUE(f.contract->channel(id)->closed);
}

TEST(TemplateAbi, MalformedCalldataRejected) {
  Fixture f;
  Transaction tx;
  tx.to = f.template_addr;
  tx.data = {0x01, 0x02};  // shorter than a selector
  const auto r = f.chain.submit(f.car, tx);
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(r->success);
}

TEST(CommitReceipts, LatestCommitIsProvable) {
  Fixture f;
  const U256 id = f.open_channel();
  ASSERT_EQ(f.contract->on_chain_commit(f.signed_state(id, 1, 300)),
            TemplateStatus::Ok);
  const auto receipt = f.contract->prove_latest_commit(id);
  ASSERT_TRUE(receipt.has_value());
  EXPECT_EQ(receipt->leaf_value, U256{300});
  EXPECT_TRUE(receipt->verify());
}

TEST(CommitReceipts, ReceiptTracksNewestCommit) {
  Fixture f;
  const U256 id = f.open_channel();
  ASSERT_EQ(f.contract->on_chain_commit(f.signed_state(id, 1, 300)),
            TemplateStatus::Ok);
  ASSERT_EQ(f.contract->on_chain_commit(f.signed_state(id, 2, 450)),
            TemplateStatus::Ok);
  const auto receipt = f.contract->prove_latest_commit(id);
  ASSERT_TRUE(receipt.has_value());
  EXPECT_EQ(receipt->leaf_value, U256{150});  // the delta, not the total
  EXPECT_EQ(receipt->leaf_index, 1u);
  EXPECT_TRUE(receipt->verify());
}

TEST(CommitReceipts, StaleReceiptDivergesFromLiveRoot) {
  // A receipt snapshots the root at proof time, so it stays internally
  // consistent — but once the tree grows, the snapshot no longer matches
  // the on-chain root, and the old proof fails against the live root.
  // Auditors must compare against the published root (the sum-audit rule).
  Fixture f;
  const U256 id = f.open_channel();
  ASSERT_EQ(f.contract->on_chain_commit(f.signed_state(id, 1, 100)),
            TemplateStatus::Ok);
  auto stale = f.contract->prove_latest_commit(id);
  ASSERT_TRUE(stale.has_value());
  EXPECT_TRUE(stale->verify());  // self-consistent snapshot

  ASSERT_EQ(f.contract->on_chain_commit(f.signed_state(id, 2, 200)),
            TemplateStatus::Ok);
  const auto live_root = f.contract->side_chain_root();
  EXPECT_NE(stale->root, live_root);
  EXPECT_FALSE(channel::MerkleSumTree::verify(
      live_root, stale->leaf_value, stale->leaf_digest, stale->proof,
      stale->cap))
      << "old proof must not verify against the live root";

  const auto fresh = f.contract->prove_latest_commit(id);
  ASSERT_TRUE(fresh.has_value());
  EXPECT_EQ(fresh->root, live_root);
  EXPECT_TRUE(fresh->verify());
}

TEST(CommitReceipts, NoCommitNoReceipt) {
  Fixture f;
  const U256 id = f.open_channel();
  EXPECT_FALSE(f.contract->prove_latest_commit(id).has_value());
  EXPECT_FALSE(f.contract->prove_latest_commit(U256{999}).has_value());
}

TEST(TemplateAnchor, GenesisBindsInstance) {
  Fixture f;
  Address other_addr{};
  other_addr[19] = 0xCD;
  TemplateContract other(f.chain, other_addr, f.lot.address(),
                         kChallengePeriod);
  EXPECT_NE(f.contract->genesis_anchor(), other.genesis_anchor());
}

}  // namespace
}  // namespace tinyevm::chain
