// Radio failure injection: lossy TSCH links retransmit (costing time and
// energy) and eventually give up; the protocol layers above survive.
#include <gtest/gtest.h>

#include "device/mote.hpp"
#include "device/offchain_round.hpp"

namespace tinyevm::device {
namespace {

TEST(TschLoss, LosslessLinkNeverRetransmits) {
  Mote a("a");
  Mote b("b");
  TschLink link(a, b);
  link.transfer(a, 500);
  EXPECT_EQ(link.frames_retransmitted(), 0u);
  EXPECT_FALSE(link.last_transfer_failed());
}

TEST(TschLoss, LossyLinkRetransmits) {
  Mote a("a");
  Mote b("b");
  TschLink link(a, b);
  link.set_loss_rate(40);
  // Enough frames that some retransmissions are statistically certain
  // under the deterministic generator.
  for (int i = 0; i < 20; ++i) link.transfer(a, 400);
  EXPECT_GT(link.frames_retransmitted(), 0u);
}

TEST(TschLoss, RetransmissionsCostTxEnergy) {
  Mote a1("a1");
  Mote b1("b1");
  TschLink clean(a1, b1);
  for (int i = 0; i < 10; ++i) clean.transfer(a1, 400);

  Mote a2("a2");
  Mote b2("b2");
  TschLink lossy(a2, b2);
  lossy.set_loss_rate(40);
  for (int i = 0; i < 10; ++i) lossy.transfer(a2, 400);

  EXPECT_GT(a2.energest().time_us(PowerState::Tx),
            a1.energest().time_us(PowerState::Tx));
  EXPECT_GT(a2.energest().energy_mj(PowerState::Tx),
            a1.energest().energy_mj(PowerState::Tx));
}

TEST(TschLoss, GivesUpAfterRetryBudget) {
  Mote a("a");
  Mote b("b");
  TschLink link(a, b);
  link.set_loss_rate(99);  // effectively dead air
  link.transfer(a, 40);
  EXPECT_TRUE(link.last_transfer_failed());
  EXPECT_GE(link.frames_retransmitted(), TschLink::kMaxRetries - 1);
}

TEST(TschLoss, DeterministicAcrossRuns) {
  auto run = [] {
    Mote a("a");
    Mote b("b");
    TschLink link(a, b);
    link.set_loss_rate(25);
    for (int i = 0; i < 15; ++i) link.transfer(a, 300);
    return link.frames_retransmitted();
  };
  EXPECT_EQ(run(), run());
}

TEST(TschLoss, OffchainRoundSurvivesModerateLoss) {
  // The protocol artifacts don't care about retransmissions — only the
  // timeline stretches. (The round constructs its own internal link, so
  // this exercises loss at the transfer layer the round uses indirectly:
  // validate by running a full round and checking it still completes.)
  Mote car_mote("car");
  Mote lot_mote("lot");
  channel::ChannelEndpoint car("car",
                               channel::PrivateKey::from_seed("car-key"),
                               keccak256("loss-anchor"));
  channel::ChannelEndpoint lot("lot",
                               channel::PrivateKey::from_seed("lot-key"),
                               keccak256("loss-anchor"));
  car.sensors().set_reading(7, U256{22});
  lot.sensors().set_reading(7, U256{21});
  OffchainRound round(car_mote, lot_mote, car, lot);
  const auto result = round.run(U256{1}, U256{10}, 7, 1);
  EXPECT_TRUE(result.ok);
}

}  // namespace
}  // namespace tinyevm::device
