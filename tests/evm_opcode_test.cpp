// Per-opcode semantic tests. Each program computes on the stack and returns
// the top word via MSTORE+RETURN so the result is observable in the output.
#include <gtest/gtest.h>

#include "evm/asm.hpp"
#include "evm/vm.hpp"

namespace tinyevm::evm {
namespace {

/// Host that serves storage from a TinyStorage and a fixed sensor bank.
class TestHost : public NullHost {
 public:
  U256 sload(const Address&, const U256& key) override {
    return storage.load(key);
  }
  bool sstore(const Address&, const U256& key, const U256& value) override {
    return storage.store(key, value);
  }
  std::optional<U256> sensor_access(const SensorRequest& req) override {
    last_request = req;
    if (req.device_id == 7) return U256{22};   // temperature sensor
    if (req.device_id == 9 && req.actuate) return U256{1};
    return std::nullopt;
  }
  void emit_log(LogEntry entry) override { logs.push_back(std::move(entry)); }

  TinyStorage storage;
  std::vector<LogEntry> logs;
  std::optional<SensorRequest> last_request;
};

/// Appends MSTORE(0)+RETURN(0,32) and runs the program in the TinyEVM
/// profile, returning the 32-byte output as a U256.
struct RunOutcome {
  ExecResult result;
  U256 top;
};

RunOutcome run_top(Assembler prog, TestHost* host = nullptr) {
  prog.push(0).op(Opcode::MSTORE).push(32).push(0).op(Opcode::RETURN);
  TestHost local;
  TestHost& h = host ? *host : local;
  Vm vm{VmConfig::tiny()};
  Message msg;
  msg.code = prog.take();
  const ExecResult r = vm.execute(h, msg);
  U256 top;
  if (r.output.size() == 32) top = U256::from_bytes(r.output);
  return {r, top};
}

ExecResult run_raw(Bytes code, TestHost& host,
                   VmConfig config = VmConfig::tiny(), Bytes data = {}) {
  Vm vm{config};
  Message msg;
  msg.code = std::move(code);
  msg.data = std::move(data);
  return vm.execute(host, msg);
}

// ---- arithmetic ----

struct BinOpCase {
  const char* name;
  Opcode op;
  std::uint64_t lhs;
  std::uint64_t rhs;
  std::uint64_t expected;
};

class BinaryOpTest : public ::testing::TestWithParam<BinOpCase> {};

TEST_P(BinaryOpTest, ComputesExpected) {
  const auto& c = GetParam();
  // Stack order: push rhs first so lhs is on top (EVM pops a then b -> a OP b).
  Assembler prog;
  prog.push(c.rhs).push(c.lhs).op(c.op);
  const auto out = run_top(std::move(prog));
  ASSERT_TRUE(out.result.ok()) << to_string(out.result.status);
  EXPECT_EQ(out.top, U256{c.expected}) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Semantics, BinaryOpTest,
    ::testing::Values(
        BinOpCase{"add", Opcode::ADD, 3, 4, 7},
        BinOpCase{"mul", Opcode::MUL, 6, 7, 42},
        BinOpCase{"sub", Opcode::SUB, 10, 4, 6},
        BinOpCase{"div", Opcode::DIV, 100, 7, 14},
        BinOpCase{"div_by_zero", Opcode::DIV, 5, 0, 0},
        BinOpCase{"mod", Opcode::MOD, 100, 7, 2},
        BinOpCase{"mod_by_zero", Opcode::MOD, 5, 0, 0},
        BinOpCase{"lt_true", Opcode::LT, 3, 4, 1},
        BinOpCase{"lt_false", Opcode::LT, 4, 3, 0},
        BinOpCase{"gt_true", Opcode::GT, 9, 2, 1},
        BinOpCase{"eq_true", Opcode::EQ, 5, 5, 1},
        BinOpCase{"eq_false", Opcode::EQ, 5, 6, 0},
        BinOpCase{"and", Opcode::AND, 0b1100, 0b1010, 0b1000},
        BinOpCase{"or", Opcode::OR, 0b1100, 0b1010, 0b1110},
        BinOpCase{"xor", Opcode::XOR, 0b1100, 0b1010, 0b0110},
        BinOpCase{"shl", Opcode::SHL, 2, 1, 4},      // note: lhs is shift
        BinOpCase{"byte31", Opcode::BYTE, 31, 0xAB, 0xAB}),
    [](const auto& info) { return info.param.name; });

TEST(OpcodeArithmetic, ShlShrUseTopAsShift) {
  // SHL pops shift first, then value.
  Assembler prog;
  prog.push(1).push(4).op(Opcode::SHL);  // value=1, shift=4 -> 16
  const auto out = run_top(std::move(prog));
  EXPECT_EQ(out.top, U256{16});

  Assembler prog2;
  prog2.push(16).push(4).op(Opcode::SHR);  // 16 >> 4 = 1
  EXPECT_EQ(run_top(std::move(prog2)).top, U256{1});
}

TEST(OpcodeArithmetic, SarOnNegative) {
  Assembler prog;
  prog.push_word(U256{8}.negate()).push(2).op(Opcode::SAR);
  EXPECT_EQ(run_top(std::move(prog)).top, U256{2}.negate());
}

TEST(OpcodeArithmetic, SdivSmodSigned) {
  Assembler prog;
  prog.push(2).push_word(U256{7}.negate()).op(Opcode::SDIV);
  EXPECT_EQ(run_top(std::move(prog)).top, U256{3}.negate());

  Assembler prog2;
  prog2.push(3).push_word(U256{7}.negate()).op(Opcode::SMOD);
  EXPECT_EQ(run_top(std::move(prog2)).top, U256{1}.negate());
}

TEST(OpcodeArithmetic, AddmodMulmod) {
  Assembler prog;
  prog.push(7).push(2).push_word(U256::max()).op(Opcode::ADDMOD);
  EXPECT_EQ(run_top(std::move(prog)).top, U256{3});

  Assembler prog2;
  prog2.push(12).push(10).push(10).op(Opcode::MULMOD);
  EXPECT_EQ(run_top(std::move(prog2)).top, U256{4});
}

TEST(OpcodeArithmetic, ExpAndSignextend) {
  Assembler prog;
  prog.push(10).push(2).op(Opcode::EXP);
  EXPECT_EQ(run_top(std::move(prog)).top, U256{1024});

  Assembler prog2;
  prog2.push(0xFF).push(0).op(Opcode::SIGNEXTEND);
  EXPECT_EQ(run_top(std::move(prog2)).top, U256::max());
}

// Boundary sweep for the signed/shift opcodes the dispatch rewrite
// touched: INT256_MIN arithmetic, SIGNEXTEND at and past byte 31, and
// shifts at and past 256 — asserted end-to-end through the interpreter.
TEST(OpcodeArithmetic, SdivSmodIntMinBoundaries) {
  // INT256_MIN / -1 wraps back to INT256_MIN (EVM overflow rule).
  Assembler prog;
  prog.push_word(U256::max()).push_word(U256::sign_bit()).op(Opcode::SDIV);
  EXPECT_EQ(run_top(std::move(prog)).top, U256::sign_bit());

  Assembler prog2;
  prog2.push_word(U256::max()).push_word(U256::sign_bit()).op(Opcode::SMOD);
  EXPECT_EQ(run_top(std::move(prog2)).top, U256{});

  // Division by zero yields zero, even at INT256_MIN.
  Assembler prog3;
  prog3.push(0).push_word(U256::sign_bit()).op(Opcode::SDIV);
  EXPECT_EQ(run_top(std::move(prog3)).top, U256{});
}

TEST(OpcodeArithmetic, SignextendIndexBoundaries) {
  const U256 x = U256::sign_bit() | U256{0x80};
  for (std::uint64_t idx : {31ULL, 32ULL, 1000ULL}) {
    Assembler prog;
    prog.push_word(x).push(idx).op(Opcode::SIGNEXTEND);
    EXPECT_EQ(run_top(std::move(prog)).top, x) << "index " << idx;
  }
  // Index that does not fit in 64 bits is also an identity.
  Assembler prog;
  prog.push_word(x).push_word(U256{1} << 200).op(Opcode::SIGNEXTEND);
  EXPECT_EQ(run_top(std::move(prog)).top, x);
  // Index 30 replaces the top byte with the sign of bit 247.
  Assembler prog2;
  prog2.push_word((U256{1} << 255) | U256{42})
      .push(30)
      .op(Opcode::SIGNEXTEND);
  EXPECT_EQ(run_top(std::move(prog2)).top, U256{42});
}

TEST(OpcodeArithmetic, ShiftsAtAndPast256) {
  for (std::uint64_t sh : {256ULL, 257ULL, 100000ULL}) {
    Assembler shl;
    shl.push_word(U256::max()).push(sh).op(Opcode::SHL);
    EXPECT_EQ(run_top(std::move(shl)).top, U256{}) << "SHL " << sh;

    Assembler shr;
    shr.push_word(U256::max()).push(sh).op(Opcode::SHR);
    EXPECT_EQ(run_top(std::move(shr)).top, U256{}) << "SHR " << sh;

    Assembler sar_neg;
    sar_neg.push_word(U256::sign_bit()).push(sh).op(Opcode::SAR);
    EXPECT_EQ(run_top(std::move(sar_neg)).top, U256::max()) << "SAR " << sh;

    Assembler sar_pos;
    sar_pos.push(5).push(sh).op(Opcode::SAR);
    EXPECT_EQ(run_top(std::move(sar_pos)).top, U256{}) << "SAR+ " << sh;
  }
  // A shift count that does not fit in 64 bits saturates identically.
  Assembler prog;
  prog.push_word(U256::max()).push_word(U256{1} << 64).op(Opcode::SHL);
  EXPECT_EQ(run_top(std::move(prog)).top, U256{});

  Assembler prog2;
  prog2.push_word(U256::sign_bit()).push_word(U256::max()).op(Opcode::SAR);
  EXPECT_EQ(run_top(std::move(prog2)).top, U256::max());

  // Shift of 255 is the last in-range count.
  Assembler prog3;
  prog3.push(1).push(255).op(Opcode::SHL);
  EXPECT_EQ(run_top(std::move(prog3)).top, U256::sign_bit());
}

TEST(OpcodeArithmetic, FusedDupPairsMatchUnfusedSemantics) {
  // DUP1+MUL / DUP1+ADD are fused by the threaded dispatcher; the stack
  // result, the transient high-water mark, and the op count must be
  // exactly those of the unfused sequence.
  Assembler prog;
  prog.push(7);
  prog.dup(1).op(Opcode::MUL);  // 49
  prog.dup(1).op(Opcode::ADD);  // 98
  const auto out = run_top(std::move(prog));
  EXPECT_EQ(out.top, U256{98});
  // PUSH + 2*(DUP+op) + MSTORE path ops: PUSH1 7, DUP1, MUL, DUP1, ADD,
  // PUSH1 0, MSTORE, PUSH1 32, PUSH1 0, RETURN = 10 ops.
  EXPECT_EQ(out.result.stats.ops_executed, 10u);
  // The DUP1 transiently reaches depth 2 even though the pair nets to 1.
  EXPECT_EQ(out.result.stats.max_stack_pointer, 2u);
}

TEST(OpcodeArithmetic, IszeroNot) {
  Assembler prog;
  prog.push(0).op(Opcode::ISZERO);
  EXPECT_EQ(run_top(std::move(prog)).top, U256{1});

  Assembler prog2;
  prog2.push(0).op(Opcode::NOT);
  EXPECT_EQ(run_top(std::move(prog2)).top, U256::max());
}

TEST(OpcodeArithmetic, SltSgtSignedComparison) {
  Assembler prog;
  prog.push(0).push_word(U256{1}.negate()).op(Opcode::SLT);  // -1 < 0
  EXPECT_EQ(run_top(std::move(prog)).top, U256{1});

  Assembler prog2;
  prog2.push_word(U256{1}.negate()).push(0).op(Opcode::SGT);  // 0 > -1
  EXPECT_EQ(run_top(std::move(prog2)).top, U256{1});
}

// ---- SHA3 ----

TEST(OpcodeSha3, HashesMemoryRange) {
  // keccak256 of 32 zero bytes.
  Assembler prog;
  prog.push(32).push(0).op(Opcode::SHA3);
  const auto out = run_top(std::move(prog));
  ASSERT_TRUE(out.result.ok());
  const Bytes zeros(32, 0);
  EXPECT_EQ(out.top, U256::from_bytes(keccak256(zeros)));
}

TEST(OpcodeSha3, EmptyRangeHashesEmptyString) {
  Assembler prog;
  prog.push(0).push(0).op(Opcode::SHA3);
  EXPECT_EQ(run_top(std::move(prog)).top,
            U256::from_bytes(keccak256(std::string_view{})));
}

// ---- stack family ----

TEST(OpcodeStack, PushAllWidths) {
  for (unsigned n = 1; n <= 32; ++n) {
    Bytes code;
    code.push_back(static_cast<std::uint8_t>(0x60 + n - 1));
    for (unsigned i = 0; i < n; ++i) code.push_back(0x11);
    // Return the value.
    Assembler tail;
    tail.push(0).op(Opcode::MSTORE).push(32).push(0).op(Opcode::RETURN);
    const Bytes t = tail.take();
    code.insert(code.end(), t.begin(), t.end());
    TestHost host;
    const auto r = run_raw(code, host);
    ASSERT_TRUE(r.ok()) << "PUSH" << n;
    U256 expected;
    for (unsigned i = 0; i < n; ++i) expected = (expected << 8) | U256{0x11};
    EXPECT_EQ(U256::from_bytes(r.output), expected) << "PUSH" << n;
  }
}

TEST(OpcodeStack, PushPastEndZeroPads) {
  // PUSH4 with only 2 immediate bytes available: missing bytes read as 0.
  TestHost host;
  Bytes code = {0x63, 0xAA, 0xBB};  // PUSH4 AA BB <eof>
  const auto r = run_raw(code, host);
  EXPECT_TRUE(r.ok());  // implicit stop after push
}

TEST(OpcodeStack, DupDepths) {
  // PUSH 1..4, DUP4 duplicates the bottom (value 1).
  Assembler prog;
  prog.push(1).push(2).push(3).push(4).dup(4);
  EXPECT_EQ(run_top(std::move(prog)).top, U256{1});
}

TEST(OpcodeStack, SwapDepths) {
  // PUSH 1..3, SWAP2 exchanges top (3) with third (1) -> top becomes 1.
  Assembler prog;
  prog.push(1).push(2).push(3).swap(2);
  EXPECT_EQ(run_top(std::move(prog)).top, U256{1});
}

TEST(OpcodeStack, PopRemovesTop) {
  Assembler prog;
  prog.push(1).push(99).op(Opcode::POP);
  EXPECT_EQ(run_top(std::move(prog)).top, U256{1});
}

TEST(OpcodeStack, DupUnderflowFails) {
  TestHost host;
  Assembler prog;
  prog.push(1).dup(2);
  const auto r = run_raw(prog.take(), host);
  EXPECT_EQ(r.status, Status::StackUnderflow);
}

TEST(OpcodeStack, SwapUnderflowFails) {
  TestHost host;
  Assembler prog;
  prog.push(1).swap(1);
  const auto r = run_raw(prog.take(), host);
  EXPECT_EQ(r.status, Status::StackUnderflow);
}

// ---- memory ----

TEST(OpcodeMemory, MstoreMloadRoundTrip) {
  Assembler prog;
  prog.push_word(*U256::from_hex("0xdeadbeef"))
      .push(64)
      .op(Opcode::MSTORE)
      .push(64)
      .op(Opcode::MLOAD);
  EXPECT_EQ(run_top(std::move(prog)).top, *U256::from_hex("0xdeadbeef"));
}

TEST(OpcodeMemory, Mstore8WritesSingleByte) {
  Assembler prog;
  prog.push(0xABCD)  // only low byte 0xCD lands
      .push(0)
      .op(Opcode::MSTORE8)
      .push(0)
      .op(Opcode::MLOAD);
  // 0xCD at offset 0 -> most significant byte of the loaded word.
  EXPECT_EQ(run_top(std::move(prog)).top, U256{0xCD} << 248);
}

TEST(OpcodeMemory, MsizeTracksWordGranularity) {
  Assembler prog;
  prog.push(1).push(33).op(Opcode::MSTORE8).op(Opcode::MSIZE);
  // Writing one byte at offset 33 expands to 64 bytes (2 words).
  EXPECT_EQ(run_top(std::move(prog)).top, U256{64});
}

TEST(OpcodeMemory, UnwrittenMemoryReadsZero) {
  Assembler prog;
  prog.push(128).op(Opcode::MLOAD);
  EXPECT_EQ(run_top(std::move(prog)).top, U256{});
}

TEST(OpcodeMemory, TinyProfileCapsMemoryAt8K) {
  TestHost host;
  Assembler prog;
  prog.push(1).push(8192).op(Opcode::MSTORE);  // would need 8224 bytes
  const auto r = run_raw(prog.take(), host);
  EXPECT_EQ(r.status, Status::OutOfMemory);
}

TEST(OpcodeMemory, TinyProfileAllowsExactly8K) {
  TestHost host;
  Assembler prog;
  prog.push(1).push(8160).op(Opcode::MSTORE);  // ends exactly at 8192
  const auto r = run_raw(prog.take(), host);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.stats.peak_memory, 8192u);
}

// ---- storage ----

TEST(OpcodeStorage, SstoreSloadRoundTrip) {
  TestHost host;
  Assembler prog;
  prog.push(1234).push(5).op(Opcode::SSTORE).push(5).op(Opcode::SLOAD);
  const auto out = run_top(std::move(prog), &host);
  ASSERT_TRUE(out.result.ok());
  EXPECT_EQ(out.top, U256{1234});
  EXPECT_EQ(host.storage.load(U256{5}), U256{1234});
}

TEST(OpcodeStorage, TinyStorageTruncatesKeysTo8Bits) {
  TestHost host;
  Assembler prog;
  // Key 0x105 truncates to 0x05.
  prog.push(42).push(0x105).op(Opcode::SSTORE).push(5).op(Opcode::SLOAD);
  const auto out = run_top(std::move(prog), &host);
  EXPECT_EQ(out.top, U256{42});
}

TEST(OpcodeStorage, ExhaustionAborts) {
  TestHost host;
  Assembler prog;
  // 33 distinct slots exceed the 1 KB / 32-slot budget.
  for (unsigned k = 0; k < 33; ++k) {
    prog.push(k + 1).push(k).op(Opcode::SSTORE);
  }
  const auto r = run_raw(prog.take(), host);
  EXPECT_EQ(r.status, Status::StorageExhausted);
  EXPECT_EQ(host.storage.used_slots(), 32u);
}

TEST(OpcodeStorage, DeletingSlotFreesBudget) {
  TinyStorage st;
  for (unsigned k = 0; k < 32; ++k) {
    ASSERT_TRUE(st.store(U256{k}, U256{1}));
  }
  EXPECT_FALSE(st.store(U256{200}, U256{1}));
  ASSERT_TRUE(st.store(U256{0}, U256{}));  // delete slot 0
  EXPECT_TRUE(st.store(U256{200}, U256{1}));
}

// ---- control flow ----

TEST(OpcodeJump, ForwardJumpSkipsCode) {
  Assembler prog;
  prog.push(1);
  // JUMP over a PUSH 99 / overwrite sequence.
  prog.push_label(10).op(Opcode::JUMP);
  prog.op(Opcode::POP).push(99);  // skipped (pc 6..9)
  while (prog.size() < 10) prog.op(Opcode::STOP);
  prog.label();
  EXPECT_EQ(run_top(std::move(prog)).top, U256{1});
}

TEST(OpcodeJump, JumpiTakenAndNotTaken) {
  // if (cond) result = 7 else result = 3
  auto build = [](std::uint64_t cond) {
    Assembler prog;
    prog.push(cond);
    prog.push_label(12).op(Opcode::JUMPI);  // consumes cond
    prog.push(3);
    prog.push_label(15).op(Opcode::JUMP);
    while (prog.size() < 12) prog.op(Opcode::STOP);
    prog.label();  // pc 12
    prog.push(7);  // pc 13-14
    prog.label();  // pc 15
    return prog;
  };
  EXPECT_EQ(run_top(build(1)).top, U256{7});
  EXPECT_EQ(run_top(build(0)).top, U256{3});
}

TEST(OpcodeJump, JumpIntoPushImmediateFails) {
  TestHost host;
  // PUSH2 0x5b5b looks like JUMPDESTs inside the immediate.
  Bytes code = {0x61, 0x5b, 0x5b,   // PUSH2 0x5b5b
                0x60, 0x01,         // PUSH1 1 (target inside immediate)
                0x56};              // JUMP
  // Fix: jump to pc=1 which is inside the PUSH2 immediate.
  code = {0x60, 0x01, 0x56, 0x61, 0x5b, 0x5b};
  const auto r = run_raw(code, host);
  EXPECT_EQ(r.status, Status::InvalidJump);
}

TEST(OpcodeJump, JumpToNonJumpdestFails) {
  TestHost host;
  Assembler prog;
  prog.push(3).op(Opcode::JUMP).op(Opcode::STOP);
  const auto r = run_raw(prog.take(), host);
  EXPECT_EQ(r.status, Status::InvalidJump);
}

TEST(OpcodeJump, BackwardLoopTerminates) {
  // for (i = 5; i != 0; --i) {}; return 0xAA
  Assembler prog;
  prog.push(5);
  const std::uint64_t loop = prog.label();
  prog.push(1).swap(1).op(Opcode::SUB);  // i = i - 1
  prog.dup(1);
  prog.push_label(loop).op(Opcode::JUMPI);
  prog.op(Opcode::POP).push(0xAA);
  const auto out = run_top(std::move(prog));
  ASSERT_TRUE(out.result.ok()) << to_string(out.result.status);
  EXPECT_EQ(out.top, U256{0xAA});
}

TEST(OpcodePc, ReportsCurrentCounter) {
  Assembler prog;
  prog.push(0).op(Opcode::POP).op(Opcode::PC);  // PC is at offset 3
  EXPECT_EQ(run_top(std::move(prog)).top, U256{3});
}

// ---- environment ----

TEST(OpcodeEnv, CallerAddressCallvalue) {
  TestHost host;
  Vm vm{VmConfig::tiny()};
  Message msg;
  msg.self[19] = 0x11;
  msg.caller[19] = 0x22;
  msg.origin[19] = 0x33;
  msg.value = U256{555};
  Assembler prog;
  prog.op(Opcode::CALLER)
      .op(Opcode::ADDRESS)
      .op(Opcode::ORIGIN)
      .op(Opcode::CALLVALUE);
  // Sum them for a single observable value.
  prog.op(Opcode::ADD).op(Opcode::ADD).op(Opcode::ADD);
  prog.push(0).op(Opcode::MSTORE).push(32).push(0).op(Opcode::RETURN);
  msg.code = prog.take();
  const auto r = vm.execute(host, msg);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(U256::from_bytes(r.output), U256{0x11 + 0x22 + 0x33 + 555});
}

TEST(OpcodeEnv, CalldataOps) {
  TestHost host;
  Bytes data = {0x01, 0x02, 0x03, 0x04};
  Assembler prog;
  prog.op(Opcode::CALLDATASIZE);
  prog.push(0).op(Opcode::MSTORE).push(32).push(0).op(Opcode::RETURN);
  const auto r = run_raw(prog.take(), host, VmConfig::tiny(), data);
  EXPECT_EQ(U256::from_bytes(r.output), U256{4});
}

TEST(OpcodeEnv, CalldataloadZeroPadsPastEnd) {
  TestHost host;
  Bytes data = {0xAA, 0xBB};
  Assembler prog;
  prog.push(0).op(Opcode::CALLDATALOAD);
  prog.push(0).op(Opcode::MSTORE).push(32).push(0).op(Opcode::RETURN);
  const auto r = run_raw(prog.take(), host, VmConfig::tiny(), data);
  // 0xAABB followed by 30 zero bytes.
  EXPECT_EQ(U256::from_bytes(r.output), (U256{0xAA} << 248) | (U256{0xBB} << 240));
}

TEST(OpcodeEnv, CalldataloadHugeOffsetReadsZero) {
  // Regression: `offset + i` wrapped past 2^64 and aliased the *start* of
  // calldata, so an offset like 2^64-1 leaked data bytes into a word the
  // EVM defines as all zeros.
  TestHost host;
  Bytes data = {0xAA, 0xBB, 0xCC, 0xDD};
  for (const std::uint64_t offset : {~0ULL, ~0ULL - 16, 1ULL << 63}) {
    Assembler prog;
    prog.push_word(U256{offset}).op(Opcode::CALLDATALOAD);
    prog.push(0).op(Opcode::MSTORE).push(32).push(0).op(Opcode::RETURN);
    const auto r = run_raw(prog.take(), host, VmConfig::tiny(), data);
    EXPECT_EQ(U256::from_bytes(r.output), U256{}) << "offset " << offset;
  }
  // An offset beyond 64 bits also reads zero.
  Assembler prog;
  prog.push_word(U256{1} << 64).op(Opcode::CALLDATALOAD);
  prog.push(0).op(Opcode::MSTORE).push(32).push(0).op(Opcode::RETURN);
  const auto r = run_raw(prog.take(), host, VmConfig::tiny(), data);
  EXPECT_EQ(U256::from_bytes(r.output), U256{});
  // A partially-in-range offset still reads the tail bytes.
  Assembler prog2;
  prog2.push(2).op(Opcode::CALLDATALOAD);
  prog2.push(0).op(Opcode::MSTORE).push(32).push(0).op(Opcode::RETURN);
  const auto r2 = run_raw(prog2.take(), host, VmConfig::tiny(), data);
  EXPECT_EQ(U256::from_bytes(r2.output),
            (U256{0xCC} << 248) | (U256{0xDD} << 240));
}

TEST(OpcodeEnv, CalldatacopyIntoMemory) {
  TestHost host;
  Bytes data = {0x11, 0x22, 0x33};
  Assembler prog;
  prog.push(32).push(0).push(0).op(Opcode::CALLDATACOPY);  // len=32 src=0 dst=0
  prog.push(32).push(0).op(Opcode::RETURN);
  const auto r = run_raw(prog.take(), host, VmConfig::tiny(), data);
  ASSERT_EQ(r.output.size(), 32u);
  EXPECT_EQ(r.output[0], 0x11);
  EXPECT_EQ(r.output[2], 0x33);
  EXPECT_EQ(r.output[3], 0x00);  // zero-fill past calldata end
}

TEST(OpcodeEnv, CodesizeAndCodecopy) {
  TestHost host;
  Assembler prog;
  prog.op(Opcode::CODESIZE);
  prog.push(0).op(Opcode::MSTORE).push(32).push(0).op(Opcode::RETURN);
  const Bytes code = prog.take();
  const auto r = run_raw(code, host);
  EXPECT_EQ(U256::from_bytes(r.output), U256{code.size()});
}

// ---- logs ----

TEST(OpcodeLog, EmitsTopicsAndData) {
  TestHost host;
  Assembler prog;
  prog.push(0x42).push(0).op(Opcode::MSTORE);            // mem[0..32] = 0x42
  prog.push(777).push(888).push(32).push(0).log(2);      // LOG2
  const auto r = run_raw(prog.take(), host);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(host.logs.size(), 1u);
  EXPECT_EQ(host.logs[0].topics.size(), 2u);
  EXPECT_EQ(host.logs[0].topics[0], U256{888});
  EXPECT_EQ(host.logs[0].topics[1], U256{777});
  EXPECT_EQ(host.logs[0].data.size(), 32u);
  EXPECT_EQ(host.logs[0].data[31], 0x42);
}

// ---- IoT opcode (the paper's extension) ----

TEST(OpcodeSensor, ReadPushesSensorValue) {
  TestHost host;
  Assembler prog;
  prog.sensor(7, false, U256{0});
  const auto out = run_top(std::move(prog), &host);
  ASSERT_TRUE(out.result.ok()) << to_string(out.result.status);
  EXPECT_EQ(out.top, U256{22});
  ASSERT_TRUE(host.last_request.has_value());
  EXPECT_EQ(host.last_request->device_id, 7u);
  EXPECT_FALSE(host.last_request->actuate);
}

TEST(OpcodeSensor, ActuationPassesParameter) {
  TestHost host;
  Assembler prog;
  prog.sensor(9, true, U256{180});
  const auto out = run_top(std::move(prog), &host);
  ASSERT_TRUE(out.result.ok());
  EXPECT_EQ(out.top, U256{1});
  EXPECT_TRUE(host.last_request->actuate);
  EXPECT_EQ(host.last_request->parameter, U256{180});
}

TEST(OpcodeSensor, MissingDeviceAborts) {
  TestHost host;
  Assembler prog;
  prog.sensor(1234, false, U256{0});
  const auto r = run_raw(prog.take(), host);
  EXPECT_EQ(r.status, Status::SensorFailure);
}

TEST(OpcodeSensor, SensorReadingFlowsIntoStorage) {
  // The paper's Listing 2 pattern: read sensor, sstore the result.
  TestHost host;
  Assembler prog;
  prog.sensor(7, false, U256{0});
  prog.push(0x0c).op(Opcode::SSTORE);  // sstore(0x0c, reading)
  const auto r = run_raw(prog.take(), host);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(host.storage.load(U256{0x0c}), U256{22});
}

TEST(OpcodeSensor, RejectedInEthereumProfile) {
  TestHost host;
  Assembler prog;
  prog.sensor(7, false, U256{0});
  const auto r = run_raw(prog.take(), host, VmConfig::ethereum());
  EXPECT_EQ(r.status, Status::InvalidOpcode);
}

// ---- return / revert / invalid ----

TEST(OpcodeReturn, OutputsMemoryRange) {
  TestHost host;
  Assembler prog;
  prog.push(0x1122).push(0).op(Opcode::MSTORE);
  prog.push(2).push(30).op(Opcode::RETURN);  // last 2 bytes of the word
  const auto r = run_raw(prog.take(), host);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.output, (Bytes{0x11, 0x22}));
}

TEST(OpcodeRevert, SignalsRevertWithPayload) {
  TestHost host;
  Assembler prog;
  prog.push(0xEE).push(0).op(Opcode::MSTORE);
  prog.push(32).push(0).op(Opcode::REVERT);
  const auto r = run_raw(prog.take(), host);
  EXPECT_EQ(r.status, Status::Revert);
  ASSERT_EQ(r.output.size(), 32u);
  EXPECT_EQ(r.output[31], 0xEE);
}

TEST(OpcodeInvalid, AbortsExecution) {
  TestHost host;
  const auto r = run_raw(Bytes{0xfe}, host);
  EXPECT_EQ(r.status, Status::InvalidOpcode);
}

TEST(OpcodeUndefined, UnknownByteAborts) {
  TestHost host;
  const auto r = run_raw(Bytes{0x2f}, host);
  EXPECT_EQ(r.status, Status::InvalidOpcode);
}

TEST(OpcodeStop, EmptyOutput) {
  TestHost host;
  Assembler prog;
  prog.push(1).op(Opcode::STOP);
  const auto r = run_raw(prog.take(), host);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.output.empty());
}

TEST(ImplicitStop, CodeEndWithoutStop) {
  TestHost host;
  Assembler prog;
  prog.push(1).push(2).op(Opcode::ADD);
  const auto r = run_raw(prog.take(), host);
  EXPECT_TRUE(r.ok());
}

}  // namespace
}  // namespace tinyevm::evm
