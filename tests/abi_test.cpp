#include "abi/abi.hpp"

#include <gtest/gtest.h>

#include "crypto/hash.hpp"

namespace tinyevm::abi {
namespace {

TEST(AbiSelector, KnownSelectors) {
  // ERC-20 transfer(address,uint256) = a9059cbb.
  const auto sel = selector("transfer(address,uint256)");
  EXPECT_EQ(to_hex(sel), "a9059cbb");
  // balanceOf(address) = 70a08231.
  EXPECT_EQ(to_hex(selector("balanceOf(address)")), "70a08231");
}

TEST(AbiEncoder, SingleUint) {
  const auto data = Encoder("f(uint256)").add_uint(U256{1}).build();
  ASSERT_EQ(data.size(), 4 + 32u);
  EXPECT_EQ(data[35], 1);
}

TEST(AbiEncoder, AddressIsRightAligned) {
  secp256k1::Address addr{};
  addr[0] = 0xAA;
  addr[19] = 0xBB;
  const auto data = Encoder().add_address(addr).build();
  ASSERT_EQ(data.size(), 32u);
  EXPECT_EQ(data[11], 0x00);
  EXPECT_EQ(data[12], 0xAA);
  EXPECT_EQ(data[31], 0xBB);
}

TEST(AbiEncoder, BoolEncodesAsWord) {
  const auto t = Encoder().add_bool(true).build();
  const auto f = Encoder().add_bool(false).build();
  EXPECT_EQ(t[31], 1);
  EXPECT_EQ(f[31], 0);
}

TEST(AbiEncoder, DynamicBytesLayout) {
  // f(uint256, bytes): head = value, offset; tail = len + padded payload.
  const std::vector<std::uint8_t> payload = {0xDE, 0xAD, 0xBE, 0xEF};
  const auto data =
      Encoder().add_uint(U256{7}).add_bytes(payload).build();
  ASSERT_EQ(data.size(), 32 + 32 + 32 + 32u);
  // Offset points past the two head words.
  EXPECT_EQ(U256::from_bytes(std::span{data}.subspan(32, 32)), U256{64});
  // Length word.
  EXPECT_EQ(U256::from_bytes(std::span{data}.subspan(64, 32)), U256{4});
  EXPECT_EQ(data[96], 0xDE);
  EXPECT_EQ(data[99], 0xEF);
  EXPECT_EQ(data[100], 0x00);  // zero padding
}

TEST(AbiEncoder, EmptyBytes) {
  const auto data = Encoder().add_bytes({}).build();
  ASSERT_EQ(data.size(), 64u);
  EXPECT_EQ(U256::from_bytes(std::span{data}.subspan(32, 32)), U256{0});
}

TEST(AbiEncoder, MultipleDynamicArguments) {
  const std::vector<std::uint8_t> a(3, 0x11);
  const std::vector<std::uint8_t> b(40, 0x22);
  const auto data = Encoder().add_bytes(a).add_bytes(b).build();
  Decoder dec(data);
  const auto ra = dec.read_bytes();
  const auto rb = dec.read_bytes();
  ASSERT_TRUE(ra && rb);
  EXPECT_EQ(*ra, a);
  EXPECT_EQ(*rb, b);
}

TEST(AbiDecoder, RoundTripMixed) {
  secp256k1::Address addr{};
  addr[19] = 0x42;
  const std::vector<std::uint8_t> sig_bytes(65, 0xCC);
  const auto data = Encoder()
                        .add_uint(U256{123456})
                        .add_address(addr)
                        .add_bool(true)
                        .add_bytes(sig_bytes)
                        .build();
  Decoder dec(data);
  EXPECT_EQ(dec.read_uint(), U256{123456});
  EXPECT_EQ(dec.read_address(), addr);
  EXPECT_EQ(dec.read_bool(), true);
  EXPECT_EQ(dec.read_bytes(), sig_bytes);
}

TEST(AbiDecoder, FailsOnTruncatedHead) {
  const std::vector<std::uint8_t> short_data(16, 0);
  Decoder dec(short_data);
  EXPECT_FALSE(dec.read_uint().has_value());
}

TEST(AbiDecoder, FailsOnOutOfBoundsOffset) {
  auto data = Encoder().add_uint(U256{9999}).build();  // not a real offset
  Decoder dec(data);
  EXPECT_FALSE(dec.read_bytes().has_value());
}

TEST(AbiDecoder, FailsOnTruncatedTail) {
  const std::vector<std::uint8_t> payload(10, 0xAB);
  auto data = Encoder().add_bytes(payload).build();
  // Keep the offset and length words but cut into the payload itself
  // (96-byte encoding -> 70 bytes leaves only 6 of the 10 payload bytes).
  data.resize(70);
  Decoder dec(data);
  EXPECT_FALSE(dec.read_bytes().has_value());
}

TEST(AbiEncoder, SelectorPrecedesArguments) {
  const auto data = Encoder("close(uint256,bytes)")
                        .add_uint(U256{5})
                        .add_bytes(std::vector<std::uint8_t>{1, 2, 3})
                        .build();
  const auto expected_sel = selector("close(uint256,bytes)");
  EXPECT_TRUE(std::equal(expected_sel.begin(), expected_sel.end(),
                         data.begin()));
  // Offsets are relative to the start of the arguments, not the selector.
  EXPECT_EQ(U256::from_bytes(std::span{data}.subspan(4 + 32, 32)), U256{64});
}

}  // namespace
}  // namespace tinyevm::abi
