// Span tracing: the golden Chrome trace-event JSON document (exact-string
// via explicit-timestamp emits — enable() resets rings and thread ids, so
// the dump is deterministic), ring overwrite accounting, the enable gate,
// and per-thread tid assignment.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>

#include "obs/trace.hpp"

namespace tinyevm::obs {
namespace {

/// Every test leaves tracing disabled, the process default.
struct ScopedTrace {
  explicit ScopedTrace(std::size_t ring_capacity = 64) {
    Tracer::instance().enable(ring_capacity);
  }
  ~ScopedTrace() { Tracer::instance().disable(); }
};

#ifdef TINYEVM_OBS_DISABLED
#define TINYEVM_REQUIRE_OBS() \
  GTEST_SKIP() << "telemetry compiled out (-DTINYEVM_OBS=OFF)"
#else
#define TINYEVM_REQUIRE_OBS() (void)0
#endif

TEST(ObsTrace, GoldenChromeTraceDocument) {
  TINYEVM_REQUIRE_OBS();
  ScopedTrace on;
  auto& tracer = Tracer::instance();
  tracer.emit("a", "cat", 1000, 2500);  // ts 1.000 us, dur 1.500 us
  TraceEvent event;
  event.name = "b";
  event.category = "cat2";
  event.start_ns = 2000;
  event.dur_ns = 500;
  event.arg = 42;
  event.has_arg = true;
  tracer.emit_event(event);

  EXPECT_EQ(tracer.chrome_trace_json(),
            "{\"traceEvents\":["
            "{\"name\":\"a\",\"cat\":\"cat\",\"ph\":\"X\",\"pid\":1,"
            "\"tid\":0,\"ts\":1.000,\"dur\":1.500},"
            "{\"name\":\"b\",\"cat\":\"cat2\",\"ph\":\"X\",\"pid\":1,"
            "\"tid\":0,\"ts\":2.000,\"dur\":0.500,"
            "\"args\":{\"value\":42}}"
            "],\"displayTimeUnit\":\"ms\"}\n");
}

TEST(ObsTrace, EmptyTraceIsStillAValidDocument) {
  ScopedTrace on;
  EXPECT_EQ(Tracer::instance().chrome_trace_json(),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}\n");
}

TEST(ObsTrace, RingOverwritesOldestAndCountsDrops) {
  TINYEVM_REQUIRE_OBS();
  ScopedTrace on(4);
  auto& tracer = Tracer::instance();
  static const char* const kNames[] = {"e0", "e1", "e2", "e3", "e4", "e5"};
  for (std::uint64_t i = 0; i < 6; ++i) {
    tracer.emit(kNames[i], "cat", i * 1000, i * 1000 + 100);
  }
  EXPECT_EQ(tracer.event_count(), 4u);
  EXPECT_EQ(tracer.dropped(), 2u);
  // The survivors are the four newest, oldest-first in the dump.
  const std::string json = tracer.chrome_trace_json();
  EXPECT_EQ(json.find("\"name\":\"e0\""), std::string::npos);
  EXPECT_EQ(json.find("\"name\":\"e1\""), std::string::npos);
  EXPECT_LT(json.find("\"name\":\"e2\""), json.find("\"name\":\"e3\""));
  EXPECT_LT(json.find("\"name\":\"e3\""), json.find("\"name\":\"e4\""));
  EXPECT_LT(json.find("\"name\":\"e4\""), json.find("\"name\":\"e5\""));
}

TEST(ObsTrace, ReenableClearsRingsAndDropCounter) {
  TINYEVM_REQUIRE_OBS();
  auto& tracer = Tracer::instance();
  tracer.enable(2);
  tracer.emit("x", "cat", 0, 1);
  tracer.emit("x", "cat", 0, 1);
  tracer.emit("x", "cat", 0, 1);
  EXPECT_EQ(tracer.dropped(), 1u);
  tracer.enable(2);
  EXPECT_EQ(tracer.event_count(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
  tracer.disable();
}

TEST(ObsTrace, DisabledEmitsAreDiscarded) {
  auto& tracer = Tracer::instance();
  tracer.disable();
  tracer.emit("ghost", "cat", 0, 100);
  { Span span("ghost-span", "cat"); }
  tracer.enable(16);
  EXPECT_EQ(tracer.event_count(), 0u);
  tracer.disable();
}

TEST(ObsTrace, SpanRecordsWhenEnabled) {
  TINYEVM_REQUIRE_OBS();
  ScopedTrace on;
  {
    Span span("span-a", "test");
    span.set_arg(7);
  }
  auto& tracer = Tracer::instance();
  EXPECT_EQ(tracer.event_count(), 1u);
  const std::string json = tracer.chrome_trace_json();
  EXPECT_NE(json.find("\"name\":\"span-a\",\"cat\":\"test\""),
            std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"value\":7}"), std::string::npos);
}

TEST(ObsTrace, ThreadsGetDistinctTids) {
  TINYEVM_REQUIRE_OBS();
  ScopedTrace on;
  auto& tracer = Tracer::instance();
  tracer.emit("main-thread", "cat", 0, 100);
  std::thread([&tracer] {
    tracer.emit("worker-thread", "cat", 50, 150);
  }).join();
  EXPECT_EQ(tracer.event_count(), 2u);
  const std::string json = tracer.chrome_trace_json();
  // Two rings, registered in emit order: tid 0 then tid 1.
  EXPECT_NE(json.find("\"name\":\"main-thread\",\"cat\":\"cat\",\"ph\":\"X\","
                      "\"pid\":1,\"tid\":0"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"name\":\"worker-thread\",\"cat\":\"cat\","
                      "\"ph\":\"X\",\"pid\":1,\"tid\":1"),
            std::string::npos)
      << json;
}

TEST(ObsTrace, WriteChromeTraceFailsOnBadPath) {
  ScopedTrace on;
  EXPECT_FALSE(Tracer::instance().write_chrome_trace(
      "/nonexistent-dir/trace.json"));
}

}  // namespace
}  // namespace tinyevm::obs
