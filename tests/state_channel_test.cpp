// Generic state-channel tests: the envelope (version clock, hash link,
// double signatures), the update protocol from both sides, concurrent
// proposal tie-breaking, and an application on top (a temperature-SLA
// monitor evolving its counters off-chain).
#include <gtest/gtest.h>

#include "channel/state_channel.hpp"

namespace tinyevm::channel {
namespace {

using secp256k1::PrivateKey;

struct Sessions {
  PrivateKey car_key = PrivateKey::from_seed("sc-car");
  PrivateKey lot_key = PrivateKey::from_seed("sc-lot");
  StateChannelSession car;
  StateChannelSession lot;

  Sessions()
      : car(car_key, lot_key.address(), /*initiator=*/true, U256{9},
            keccak256("sc-anchor")),
        lot(lot_key, car_key.address(), /*initiator=*/false, U256{9},
            keccak256("sc-anchor")) {}

  /// Runs one full update initiated by the car.
  bool update_from_car(rlp::Bytes payload) {
    auto proposal = car.propose(std::move(payload));
    const auto counter = lot.countersign(proposal.state);
    if (!counter) return false;
    proposal.responder_sig = *counter;
    return car.accept(proposal) && lot.accept(proposal);
  }

  /// Runs one full update initiated by the lot.
  bool update_from_lot(rlp::Bytes payload) {
    auto proposal = lot.propose(std::move(payload));
    const auto counter = car.countersign(proposal.state);
    if (!counter) return false;
    proposal.initiator_sig = *counter;
    return car.accept(proposal) && lot.accept(proposal);
  }
};

TEST(AppState, EncodeDecodeRoundTrip) {
  AppState s;
  s.channel_id = U256{5};
  s.version = 17;
  s.payload = {0xDE, 0xAD, 0xBE, 0xEF};
  s.prev_hash = keccak256("prev");
  const auto decoded = AppState::decode(s.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, s);
}

TEST(AppState, DigestBindsPayload) {
  AppState s;
  s.payload = {1, 2, 3};
  AppState t = s;
  t.payload = {1, 2, 4};
  EXPECT_NE(s.digest(), t.digest());
}

TEST(AppState, DecodeRejectsMalformed) {
  EXPECT_FALSE(AppState::decode(rlp::Bytes{}).has_value());
  EXPECT_FALSE(AppState::decode(rlp::Bytes{0x01}).has_value());
  const auto short_hash = rlp::encode(rlp::Item::list({
      rlp::Item::quantity(U256{1}),
      rlp::Item::quantity(U256{1}),
      rlp::Item::bytes(rlp::Bytes{}),
      rlp::Item::bytes(rlp::Bytes(8, 0)),
  }));
  EXPECT_FALSE(AppState::decode(short_hash).has_value());
}

TEST(StateChannel, UpdateFromInitiator) {
  Sessions s;
  ASSERT_TRUE(s.update_from_car({0x01}));
  EXPECT_EQ(s.car.version(), 1u);
  EXPECT_EQ(s.lot.version(), 1u);
  EXPECT_EQ(s.car.current_payload(), rlp::Bytes{0x01});
  EXPECT_EQ(s.car.final_state()->state.digest(),
            s.lot.final_state()->state.digest());
}

TEST(StateChannel, UpdateFromResponder) {
  Sessions s;
  ASSERT_TRUE(s.update_from_lot({0x02}));
  EXPECT_EQ(s.car.version(), 1u);
  EXPECT_EQ(s.lot.current_payload(), rlp::Bytes{0x02});
}

TEST(StateChannel, AlternatingUpdatesAdvanceClock) {
  Sessions s;
  for (std::uint8_t v = 1; v <= 6; ++v) {
    const bool ok = (v % 2 == 1) ? s.update_from_car({v})
                                 : s.update_from_lot({v});
    ASSERT_TRUE(ok) << static_cast<int>(v);
  }
  EXPECT_EQ(s.car.version(), 6u);
  EXPECT_EQ(s.car.history().size(), 6u);
  EXPECT_EQ(s.lot.current_payload(), rlp::Bytes{6});
}

TEST(StateChannel, CountersignRejectsWrongVersion) {
  Sessions s;
  ASSERT_TRUE(s.update_from_car({0x01}));
  AppState stale;
  stale.channel_id = U256{9};
  stale.version = 1;  // already accepted
  stale.prev_hash = keccak256("sc-anchor");
  EXPECT_FALSE(s.lot.countersign(stale).has_value());
}

TEST(StateChannel, CountersignRejectsBrokenLink) {
  Sessions s;
  AppState forged;
  forged.channel_id = U256{9};
  forged.version = 1;
  forged.prev_hash = keccak256("elsewhere");
  EXPECT_FALSE(s.lot.countersign(forged).has_value());
}

TEST(StateChannel, AcceptRejectsSingleSignature) {
  Sessions s;
  const auto proposal = s.car.propose({0x01});  // responder never signed
  StateChannelSession car_copy = s.car;
  EXPECT_FALSE(car_copy.accept(proposal));
}

TEST(StateChannel, AcceptRejectsTamperedPayload) {
  Sessions s;
  auto proposal = s.car.propose({0x01});
  const auto counter = s.lot.countersign(proposal.state);
  ASSERT_TRUE(counter.has_value());
  proposal.responder_sig = *counter;
  proposal.state.payload = {0x77};  // altered after both signed
  EXPECT_FALSE(s.car.accept(proposal));
}

TEST(StateChannel, ConcurrentProposalsTieBreakToInitiator) {
  Sessions s;
  const auto from_car = s.car.propose({0xCA});
  const auto from_lot = s.lot.propose({0x10});
  ASSERT_EQ(from_car.state.version, from_lot.state.version);
  // Both sides agree who yields.
  EXPECT_TRUE(s.car.proposal_beats(from_car.state, from_lot.state));
  EXPECT_FALSE(s.lot.proposal_beats(from_lot.state, from_car.state));
  // The loser re-bases: countersigns the winner and the channel proceeds.
  auto winner = from_car;
  const auto counter = s.lot.countersign(winner.state);
  ASSERT_TRUE(counter.has_value());
  winner.responder_sig = *counter;
  EXPECT_TRUE(s.car.accept(winner));
  EXPECT_TRUE(s.lot.accept(winner));
}

// --- application on top: a temperature-SLA monitor ---
// payload := rlp([max_temp_seen, breach_count]); a breach is any reading
// above 30. The two motes co-sign every monitor update.

rlp::Bytes sla_payload(std::uint64_t max_temp, std::uint64_t breaches) {
  return rlp::encode(rlp::Item::list({
      rlp::Item::quantity(U256{max_temp}),
      rlp::Item::quantity(U256{breaches}),
  }));
}

std::pair<std::uint64_t, std::uint64_t> sla_decode(const rlp::Bytes& p) {
  const auto item = rlp::decode(p);
  const auto& l = item->as_list();
  return {l[0].as_quantity().as_u64(), l[1].as_quantity().as_u64()};
}

TEST(SlaMonitorApp, TracksBreachesAcrossUpdates) {
  Sessions s;
  std::uint64_t max_temp = 0;
  std::uint64_t breaches = 0;
  for (std::uint64_t reading : {22u, 28u, 33u, 25u, 35u}) {
    max_temp = std::max(max_temp, reading);
    if (reading > 30) ++breaches;
    ASSERT_TRUE(s.update_from_car(sla_payload(max_temp, breaches)));
  }
  const auto [final_max, final_breaches] =
      sla_decode(s.lot.current_payload());
  EXPECT_EQ(final_max, 35u);
  EXPECT_EQ(final_breaches, 2u);
  // The doubly-signed final state is the enforceable SLA evidence.
  EXPECT_TRUE(s.lot.final_state()->verify(s.car_key.address(),
                                          s.lot_key.address()));
}

}  // namespace
}  // namespace tinyevm::channel
