// Translation-cache behaviour: LRU eviction under the byte cap, sharing
// across Vm instances, translation immutability, profile-keyed entries,
// the oversized-code fallback, and the translator's bytecode edge cases
// (truncated PUSH immediates, JUMPDEST inside pushdata, superinstruction
// fusion shapes).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "channel/manager.hpp"
#include "evm/asm.hpp"
#include "evm/code_cache.hpp"
#include "evm/decoded.hpp"
#include "evm/vm.hpp"

namespace tinyevm::evm {
namespace {

Bytes counting_loop(std::uint64_t iters) {
  Assembler a;
  a.push(iters);
  const auto loop = a.label();
  a.push(1).swap(1).op(Opcode::SUB).dup(1);
  a.push_label(loop).op(Opcode::JUMPI);
  return a.take();
}

/// A program of at least `size` bytes, distinct per `salt`.
Bytes sized_code(std::size_t size, std::uint64_t salt) {
  Assembler a;
  a.push(salt).op(Opcode::POP);
  while (a.size() < size) a.op(Opcode::JUMPDEST);
  return a.take();
}

ExecResult run(const Bytes& code, const VmConfig& config,
               std::shared_ptr<CodeCache> cache) {
  channel::SensorBank sensors;
  channel::DeviceHost host(sensors, config);
  Vm vm{config, std::move(cache)};
  Message msg;
  msg.code = code;
  return vm.execute(host, msg);
}

// ---------------------------------------------------------------------------
// Cache behaviour
// ---------------------------------------------------------------------------

TEST(CodeCache, SharesTranslationsAcrossVmInstances) {
  auto cache = std::make_shared<CodeCache>();
  const Bytes code = counting_loop(100);
  const VmConfig config = VmConfig::tiny();

  Vm a{config, cache};
  Vm b{config, cache};
  channel::SensorBank sensors;
  channel::DeviceHost host(sensors, config);
  Message msg;
  msg.code = code;

  const auto ra = a.execute(host, msg);
  const auto rb = b.execute(host, msg);
  EXPECT_EQ(ra.status, rb.status);
  EXPECT_EQ(ra.stats.ops_executed, rb.stats.ops_executed);

  const auto stats = cache->stats();
  EXPECT_EQ(stats.misses, 1u);  // first execution translated
  EXPECT_EQ(stats.hits, 1u);    // second Vm reused it
  EXPECT_EQ(stats.entries, 1u);
}

TEST(CodeCache, DefaultConstructedVmsShareTheProcessCache) {
  Vm a{VmConfig::tiny()};
  Vm b{VmConfig::ethereum()};
  EXPECT_EQ(a.code_cache().get(), b.code_cache().get());
  EXPECT_EQ(a.code_cache().get(), CodeCache::shared_default().get());
}

TEST(CodeCache, EvictsLeastRecentlyUsedUnderByteCap) {
  // Capacity sized to hold roughly two of the three programs. One shard:
  // this test pins exact LRU order, which striping would spread out.
  const TranslationProfile profile{};
  const Bytes probe = sized_code(512, 0);
  const std::size_t one_program =
      translate(probe, profile).byte_size();

  CodeCache::Config config;
  config.capacity_bytes = one_program * 5 / 2;
  config.shards = 1;
  CodeCache cache{config};

  auto p0 = cache.get_or_translate(sized_code(512, 1), profile);
  auto p1 = cache.get_or_translate(sized_code(512, 2), profile);
  auto p2 = cache.get_or_translate(sized_code(512, 3), profile);
  ASSERT_TRUE(p0 && p1 && p2);

  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_LE(stats.bytes, config.capacity_bytes);
  EXPECT_LT(stats.entries, 3u);

  // The evicted program (the least recently used = salt 1) re-translates;
  // the most recent still hits.
  cache.get_or_translate(sized_code(512, 3), profile);
  EXPECT_EQ(cache.stats().hits, 1u);
  cache.get_or_translate(sized_code(512, 1), profile);
  EXPECT_EQ(cache.stats().misses, 4u);
}

TEST(CodeCache, ProgramLargerThanCapacityIsReturnedButNotCached) {
  CodeCache::Config config;
  config.capacity_bytes = 64;  // smaller than any translation
  CodeCache cache{config};
  const auto program =
      cache.get_or_translate(counting_loop(10), TranslationProfile{});
  ASSERT_NE(program, nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
}

TEST(CodeCache, OversizedCodeFallsBackToRawLoop) {
  CodeCache::Config cache_config;
  cache_config.max_code_bytes = 8;  // force the raw-loop fallback
  auto small_cache = std::make_shared<CodeCache>(cache_config);

  const Bytes code = counting_loop(50);  // > 16 bytes
  ASSERT_GT(code.size(), cache_config.max_code_bytes);
  const VmConfig config = VmConfig::tiny();

  const auto through_fallback = run(code, config, small_cache);
  const auto through_cache = run(code, config, std::make_shared<CodeCache>());
  EXPECT_EQ(small_cache->stats().oversized, 1u);
  EXPECT_EQ(small_cache->stats().entries, 0u);
  // Fallback and pre-decoded execution agree bit-for-bit.
  EXPECT_EQ(through_fallback.status, through_cache.status);
  EXPECT_EQ(through_fallback.stats.ops_executed,
            through_cache.stats.ops_executed);
  EXPECT_EQ(through_fallback.stats.mcu_cycles,
            through_cache.stats.mcu_cycles);
}

TEST(CodeCache, KeysByProfileFlags) {
  // NUMBER is a blockchain opcode: forbidden under TinyEVM, fine under
  // Ethereum — the two profiles must not share a translation.
  Assembler a;
  a.op(Opcode::NUMBER).op(Opcode::POP);
  const Bytes code = a.take();

  auto cache = std::make_shared<CodeCache>();
  const auto tiny = run(code, VmConfig::tiny(), cache);
  const auto eth = run(code, VmConfig::ethereum(), cache);
  EXPECT_EQ(tiny.status, Status::ForbiddenOpcode);
  EXPECT_EQ(eth.status, Status::Success);
  EXPECT_EQ(cache->stats().entries, 2u);
  EXPECT_EQ(cache->stats().misses, 2u);
}

TEST(CodeCache, TranslationIsImmutableAcrossExecutions) {
  auto cache = std::make_shared<CodeCache>();
  const TranslationProfile profile{};
  const Bytes code = counting_loop(200);

  const auto program = cache->get_or_translate(code, profile);
  ASSERT_NE(program, nullptr);
  const std::vector<DecodedInst> snapshot = program->insts;
  const std::vector<std::uint32_t> jump_snapshot = program->jump_map;

  // Successful and failing executions alike must leave the shared
  // translation untouched (there is no self-modifying path).
  const VmConfig config = VmConfig::tiny();
  (void)run(code, config, cache);
  VmConfig strangled = config;
  strangled.max_ops = 3;  // watchdog failure mid-run
  (void)run(code, strangled, cache);

  const auto again = cache->get_or_translate(code, profile);
  EXPECT_EQ(again.get(), program.get());  // same shared translation
  ASSERT_EQ(program->insts.size(), snapshot.size());
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    EXPECT_EQ(program->insts[i].handler, snapshot[i].handler) << i;
    EXPECT_EQ(program->insts[i].aux, snapshot[i].aux) << i;
    EXPECT_EQ(program->insts[i].aux2, snapshot[i].aux2) << i;
    EXPECT_EQ(program->insts[i].gas, snapshot[i].gas) << i;
    EXPECT_EQ(program->insts[i].gas2, snapshot[i].gas2) << i;
    EXPECT_EQ(program->insts[i].cycles, snapshot[i].cycles) << i;
    EXPECT_EQ(program->insts[i].cycles2, snapshot[i].cycles2) << i;
    EXPECT_EQ(program->insts[i].pc, snapshot[i].pc) << i;
    EXPECT_EQ(program->insts[i].target, snapshot[i].target) << i;
    EXPECT_EQ(program->insts[i].imm, snapshot[i].imm) << i;
  }
  EXPECT_EQ(program->jump_map, jump_snapshot);
}

TEST(CodeCache, KnownCodeHashSkipsNothingSemantically) {
  // Passing the precomputed hash (the chain host path) must behave exactly
  // like letting the cache hash the code itself.
  auto cache = std::make_shared<CodeCache>();
  const TranslationProfile profile{};
  const Bytes code = counting_loop(10);
  const Hash256 hash = keccak256(code);

  const auto a = cache->get_or_translate(code, profile, &hash);
  const auto b = cache->get_or_translate(code, profile);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache->stats().hits, 1u);
}

TEST(CodeCache, ClearResetsEntriesAndStats) {
  auto cache = std::make_shared<CodeCache>();
  (void)cache->get_or_translate(counting_loop(10), TranslationProfile{});
  cache->clear();
  const auto stats = cache->stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.misses, 0u);
}

// ---------------------------------------------------------------------------
// Lock-striped shards
// ---------------------------------------------------------------------------

TEST(CodeCacheSharded, DefaultsToEightShards) {
  CodeCache cache;
  EXPECT_EQ(cache.shard_count(), 8u);
  EXPECT_EQ(cache.stats().shards, 8u);
}

TEST(CodeCacheSharded, ShardCountClampedToAtLeastOne) {
  CodeCache::Config config;
  config.shards = 0;
  CodeCache cache{config};
  EXPECT_EQ(cache.shard_count(), 1u);
  EXPECT_EQ(cache.config().shards, 1u);
}

TEST(CodeCacheSharded, DistinctProgramsSpreadAcrossShards) {
  CodeCache cache;  // 8 shards
  const TranslationProfile profile{};
  constexpr std::uint64_t kPrograms = 64;
  for (std::uint64_t i = 0; i < kPrograms; ++i) {
    ASSERT_NE(cache.get_or_translate(sized_code(64, i + 1), profile),
              nullptr);
  }
  // keccak spreads the keys: the chance all 64 land in one of 8 stripes is
  // 8^-63. Require at least half the stripes populated.
  std::size_t populated = 0;
  for (std::size_t s = 0; s < cache.shard_count(); ++s) {
    if (cache.shard_stats(s).entries > 0) ++populated;
  }
  EXPECT_GE(populated, 4u);
}

TEST(CodeCacheSharded, AggregateStatsSumShardStats) {
  CodeCache cache;
  const TranslationProfile profile{};
  for (std::uint64_t i = 0; i < 16; ++i) {
    (void)cache.get_or_translate(sized_code(64, i + 1), profile);  // miss
    (void)cache.get_or_translate(sized_code(64, i + 1), profile);  // hit
  }
  const auto total = cache.stats();
  EXPECT_EQ(total.lookups, 32u);
  EXPECT_EQ(total.hits, 16u);
  EXPECT_EQ(total.misses, 16u);
  EXPECT_EQ(total.entries, 16u);
  EXPECT_EQ(total.hits + total.misses + total.oversized, total.lookups);

  CodeCache::Stats summed;
  for (std::size_t s = 0; s < cache.shard_count(); ++s) {
    const auto shard = cache.shard_stats(s);
    // The per-shard invariant holds stripe by stripe.
    EXPECT_EQ(shard.hits + shard.misses + shard.oversized, shard.lookups)
        << s;
    summed.lookups += shard.lookups;
    summed.hits += shard.hits;
    summed.misses += shard.misses;
    summed.evictions += shard.evictions;
    summed.oversized += shard.oversized;
    summed.bytes += shard.bytes;
    summed.entries += shard.entries;
  }
  EXPECT_EQ(summed.lookups, total.lookups);
  EXPECT_EQ(summed.hits, total.hits);
  EXPECT_EQ(summed.misses, total.misses);
  EXPECT_EQ(summed.evictions, total.evictions);
  EXPECT_EQ(summed.oversized, total.oversized);
  EXPECT_EQ(summed.bytes, total.bytes);
  EXPECT_EQ(summed.entries, total.entries);
}

TEST(CodeCacheSharded, PerShardByteBudgetBoundsEachStripe) {
  const TranslationProfile profile{};
  const std::size_t one_program = translate(sized_code(512, 0), profile)
                                      .byte_size();
  CodeCache::Config config;
  config.shards = 2;
  config.capacity_bytes = one_program * 4;  // two programs per stripe
  CodeCache cache{config};
  for (std::uint64_t i = 0; i < 24; ++i) {
    ASSERT_NE(cache.get_or_translate(sized_code(512, i + 1), profile),
              nullptr);
  }
  const std::size_t per_shard = config.capacity_bytes / config.shards;
  for (std::size_t s = 0; s < cache.shard_count(); ++s) {
    EXPECT_LE(cache.shard_stats(s).bytes, per_shard) << s;
  }
  EXPECT_GE(cache.stats().evictions, 1u);
  EXPECT_LE(cache.stats().bytes, config.capacity_bytes);
}

TEST(CodeCacheSharded, OversizedLookupsStayInTheInvariant) {
  CodeCache::Config config;
  config.max_code_bytes = 8;
  CodeCache cache{config};
  const TranslationProfile profile{};
  EXPECT_EQ(cache.get_or_translate(sized_code(64, 1), profile), nullptr);
  (void)cache.get_or_translate(Bytes{0x60, 0x01}, profile);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.lookups, 2u);
  EXPECT_EQ(stats.oversized, 1u);
  EXPECT_EQ(stats.hits + stats.misses + stats.oversized, stats.lookups);
}

TEST(CodeCacheSharded, InvariantsHoldUnderThreadedStress) {
  // 8 threads hammer 32 distinct programs through an 8-stripe cache; every
  // counter invariant must survive the races (TSan runs this suite too).
  CodeCache cache;
  const TranslationProfile profile{};
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kIters = 24;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (std::size_t i = 0; i < kIters; ++i) {
        EXPECT_NE(cache.get_or_translate(
                      sized_code(64, ((t * kIters + i) % 32) + 1), profile),
                  nullptr);
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();

  const auto stats = cache.stats();
  EXPECT_EQ(stats.lookups, kThreads * kIters);
  EXPECT_EQ(stats.hits + stats.misses + stats.oversized, stats.lookups);
  EXPECT_EQ(stats.entries, 32u);
  EXPECT_GE(stats.misses, 32u);  // every program translated at least once
  // Counted-but-unasserted: lock_contentions is scheduling-dependent (and
  // zero on a single-core host).
  EXPECT_GE(stats.lock_contentions, 0u);
}

// ---------------------------------------------------------------------------
// Process-wide default configuration
// ---------------------------------------------------------------------------

TEST(CodeCacheSharedDefault, ConfigIsSettableOnceBeforeFirstUse) {
  // ctest runs every case in its own process (gtest_discover_tests), so
  // nothing has touched shared_default() yet when this body starts. A
  // whole-binary run (./evm_code_cache_test) arrives here with the
  // default already materialized by earlier tests — skip in that mode.
  CodeCache::Config config;
  config.shards = 4;
  config.capacity_bytes = 4u << 20;
  if (!CodeCache::configure_shared_default(config)) {
    GTEST_SKIP() << "process-wide default already in use";
  }
  EXPECT_EQ(CodeCache::shared_default()->shard_count(), 4u);
  EXPECT_EQ(CodeCache::shared_default()->config().capacity_bytes, 4u << 20);
  // First use has happened: later reconfiguration attempts are refused.
  CodeCache::Config late;
  late.shards = 2;
  EXPECT_FALSE(CodeCache::configure_shared_default(late));
  EXPECT_EQ(CodeCache::shared_default()->shard_count(), 4u);
}

TEST(CodeCacheSharedDefault, ConfigureAfterUseIsRejected) {
  (void)CodeCache::shared_default();
  CodeCache::Config config;
  config.shards = 2;
  EXPECT_FALSE(CodeCache::configure_shared_default(config));
}

// ---------------------------------------------------------------------------
// Translator edge cases
// ---------------------------------------------------------------------------

TEST(Translator, MaterializesTruncatedPushImmediates) {
  // PUSH32 with only one immediate byte present: the immediate reads as
  // 0xAA followed by 31 virtual zero bytes, i.e. 0xAA << 248.
  const Bytes code{0x7f, 0xAA};
  const auto program = translate(code, TranslationProfile{});
  ASSERT_EQ(program.insts.size(), 1u);
  const DecodedInst& inst = program.insts[0];
  EXPECT_EQ(inst.handler, Handler::Push);
  EXPECT_EQ(inst.aux, 32u);
  EXPECT_EQ(inst.imm, U256{0xAA} << 248);  // 0xAA in the top byte
}

TEST(Translator, PushImmediateWithNoBytesIsZero) {
  const Bytes code{0x61};  // PUSH2 at the very end of code
  const auto program = translate(code, TranslationProfile{});
  ASSERT_EQ(program.insts.size(), 1u);
  EXPECT_EQ(program.insts[0].imm, U256{});
}

TEST(Translator, JumpdestInsidePushdataIsNotATarget) {
  // PUSH1 0x5b: the 0x5b immediate byte is data, not a JUMPDEST.
  const Bytes code{0x60, 0x5b, 0x5b, 0x00};  // PUSH1 0x5b; JUMPDEST; STOP
  const auto program = translate(code, TranslationProfile{});
  ASSERT_EQ(program.jump_map.size(), code.size());
  EXPECT_EQ(program.jump_map[1], kNoJumpTarget);  // inside pushdata
  EXPECT_NE(program.jump_map[2], kNoJumpTarget);  // the real JUMPDEST
  EXPECT_EQ(program.insts[program.jump_map[2]].handler, Handler::JumpDest);
}

TEST(Translator, FusesSuperinstructionPairs) {
  Assembler a;
  a.push(1).op(Opcode::ADD);          // PushBin
  a.dup(3).op(Opcode::MUL);           // DupBin
  a.swap(1).op(Opcode::SUB);          // SwapBin
  a.swap(2).op(Opcode::SUB);          // deeper SWAP: not fused
  a.push(0).op(Opcode::JUMP);         // PushJump
  a.push(0).op(Opcode::JUMPI);        // PushJumpI
  a.push(1).op(Opcode::POP);          // PUSH + non-operator: not fused
  const auto program = translate(a.take(), TranslationProfile{});

  std::vector<Handler> heads;
  for (const auto& inst : program.insts) heads.push_back(inst.handler);
  const std::vector<Handler> expected{
      Handler::PushBin, Handler::Add,   Handler::DupBin,    Handler::Mul,
      Handler::SwapBin, Handler::Sub,   Handler::Swap,      Handler::Sub,
      Handler::PushJump, Handler::Jump, Handler::PushJumpI, Handler::JumpI,
      Handler::Push,    Handler::Pop};
  EXPECT_EQ(heads, expected);

  // Fused pairs carry the second opcode's accounting.
  EXPECT_EQ(program.insts[0].aux2,
            static_cast<std::uint8_t>(Handler::Add));
  EXPECT_EQ(program.insts[0].gas2, program.insts[1].gas);
  EXPECT_EQ(program.insts[0].cycles2, program.insts[1].cycles);
}

TEST(Translator, ResolvesPushJumpTargetsAtTranslateTime) {
  Assembler a;
  a.push(4).op(Opcode::JUMP);  // pc 0-2, target 4
  a.op(Opcode::STOP);          // pc 3
  a.op(Opcode::JUMPDEST);      // pc 4
  const auto program = translate(a.take(), TranslationProfile{});
  ASSERT_GE(program.insts.size(), 1u);
  EXPECT_EQ(program.insts[0].handler, Handler::PushJump);
  ASSERT_NE(program.insts[0].target, kNoJumpTarget);
  EXPECT_EQ(program.insts[program.insts[0].target].handler,
            Handler::JumpDest);

  // An out-of-range or non-JUMPDEST destination resolves to the sentinel.
  Assembler bad;
  bad.push(200).op(Opcode::JUMP);
  const auto bad_program = translate(bad.take(), TranslationProfile{});
  EXPECT_EQ(bad_program.insts[0].handler, Handler::PushJump);
  EXPECT_EQ(bad_program.insts[0].target, kNoJumpTarget);
}

TEST(Translator, ForbiddenSecondOpcodeBlocksFusion) {
  // GAS is forbidden under the TinyEVM profile, allowed under Ethereum:
  // PUSH+... must only fuse where the second opcode is executable.
  Assembler a;
  a.push(1).op(Opcode::GAS);
  const Bytes code = a.take();

  const auto tiny = translate(
      code, TranslationProfile{true, true, false});
  EXPECT_EQ(tiny.insts[0].handler, Handler::Push);
  EXPECT_EQ(tiny.insts[1].handler, Handler::Forbidden);
}

}  // namespace
}  // namespace tinyevm::evm
