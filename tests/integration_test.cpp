// Full-pipeline integration test — the paper's three phases (Figure 2) in
// one flow, with the device simulation in the middle: on-chain template →
// off-chain round between two simulated motes → on-chain commit → exit →
// challenge window → settlement. Everything real: bytecode, signatures,
// Merkle-Sum-Tree, logical clocks.
#include <gtest/gtest.h>

#include "abi/abi.hpp"
#include "chain/template_contract.hpp"
#include "device/offchain_round.hpp"

namespace tinyevm {
namespace {

struct Pipeline {
  chain::Blockchain mainnet;
  channel::PrivateKey car_key = channel::PrivateKey::from_seed("p-car");
  channel::PrivateKey lot_key = channel::PrivateKey::from_seed("p-lot");
  chain::Address template_addr{};
  chain::TemplateContract* tmpl = nullptr;

  device::Mote car_mote{"car"};
  device::Mote lot_mote{"lot"};
  std::optional<channel::ChannelEndpoint> car;
  std::optional<channel::ChannelEndpoint> lot;

  Pipeline() {
    template_addr[19] = 0x42;
    auto owned = std::make_unique<chain::TemplateContract>(
        mainnet, template_addr, lot_key.address(), 15);
    tmpl = owned.get();
    mainnet.register_native(template_addr, std::move(owned));
    // Covers deposits plus the up-front gas escrow of signed transactions.
    mainnet.credit(car_key.address(), U256{100'000'000});
    mainnet.credit(lot_key.address(), U256{100'000'000});

    car.emplace("car", car_key, tmpl->genesis_anchor());
    lot.emplace("lot", lot_key, tmpl->genesis_anchor());
    car->sensors().set_reading(7, U256{1});
    lot->sensors().set_reading(7, U256{1});
  }
};

TEST(Integration, FullThreePhaseFlow) {
  Pipeline p;

  // Phase 1: deposit + channel creation on-chain.
  ASSERT_EQ(p.tmpl->deposit(p.car_key.address(), U256{10'000}, U256{1'000}),
            chain::TemplateStatus::Ok);
  const auto channel_id =
      p.tmpl->create_payment_channel(p.car_key.address());
  ASSERT_TRUE(channel_id.has_value());

  // Phase 2: off-chain round on the device model (5 payments, rate 40).
  device::OffchainRound round(p.car_mote, p.lot_mote, *p.car, *p.lot);
  const auto result = round.run(*channel_id, U256{40}, 7, 5);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.paid_total, U256{200});
  EXPECT_EQ(result.sequence, 5u);

  // Both side-chain logs audit cleanly against the on-chain anchor.
  EXPECT_TRUE(p.car->log().audit(p.tmpl->genesis_anchor()));
  EXPECT_TRUE(p.lot->log().audit(p.tmpl->genesis_anchor()));
  EXPECT_EQ(p.car->log().head(), p.lot->log().head());

  // Phase 3: the lot commits the final doubly-signed state.
  const auto final_state = p.lot->final_state();
  ASSERT_TRUE(final_state.has_value());
  ASSERT_EQ(p.tmpl->on_chain_commit(*final_state),
            chain::TemplateStatus::Ok);
  EXPECT_EQ(p.tmpl->channel(*channel_id)->committed_total, U256{200});
  EXPECT_EQ(p.tmpl->side_chain_root().sum, U256{200});

  // Exit + challenge window + settlement.
  ASSERT_EQ(p.tmpl->request_exit(p.lot_key.address(), *channel_id),
            chain::TemplateStatus::Ok);
  p.mainnet.mine_blocks(16);
  const U256 lot_before = p.mainnet.balance_of(p.lot_key.address());
  ASSERT_EQ(p.tmpl->finalize(*channel_id), chain::TemplateStatus::Ok);
  EXPECT_EQ(p.mainnet.balance_of(p.lot_key.address()),
            lot_before + U256{200});
}

TEST(Integration, StaleCommitLosesToFresherLog) {
  Pipeline p;
  ASSERT_EQ(p.tmpl->deposit(p.car_key.address(), U256{10'000}, U256{1'000}),
            chain::TemplateStatus::Ok);
  const auto channel_id =
      p.tmpl->create_payment_channel(p.car_key.address());
  ASSERT_TRUE(channel_id.has_value());

  device::OffchainRound round(p.car_mote, p.lot_mote, *p.car, *p.lot);
  ASSERT_TRUE(round.run(*channel_id, U256{40}, 7, 4).ok);

  // The car tries to settle on the *first* payment (seq 1, 40 wei).
  const auto stale = p.car->log().entries().front();
  ASSERT_EQ(p.tmpl->on_chain_commit(stale), chain::TemplateStatus::Ok);
  ASSERT_EQ(p.tmpl->request_exit(p.car_key.address(), *channel_id),
            chain::TemplateStatus::Ok);

  // The lot challenges with its latest log entry (seq 4, 160 wei).
  const auto fresh = *p.lot->final_state();
  const U256 lot_before = p.mainnet.balance_of(p.lot_key.address());
  ASSERT_EQ(p.tmpl->challenge(p.lot_key.address(), fresh),
            chain::TemplateStatus::Ok);
  // Insurance slashed immediately.
  EXPECT_EQ(p.mainnet.balance_of(p.lot_key.address()),
            lot_before + U256{1'000});

  p.mainnet.mine_blocks(16);
  ASSERT_EQ(p.tmpl->finalize(*channel_id), chain::TemplateStatus::Ok);
  EXPECT_EQ(p.tmpl->channel(*channel_id)->committed_total, U256{160});
}

TEST(Integration, SequentialChannelsAdvanceLogicalClock) {
  Pipeline p;
  ASSERT_EQ(p.tmpl->deposit(p.car_key.address(), U256{10'000}, U256{0}),
            chain::TemplateStatus::Ok);
  // Three parking sessions = three channels from the same template.
  for (std::uint64_t expected_id = 1; expected_id <= 3; ++expected_id) {
    const auto id = p.tmpl->create_payment_channel(p.car_key.address());
    ASSERT_TRUE(id.has_value());
    EXPECT_EQ(*id, U256{expected_id});
  }
  EXPECT_EQ(p.tmpl->logical_clock(), 3u);
}

TEST(Integration, CommitViaSignedTransactionPath) {
  // Same flow, but the commit travels as an ABI-encoded signed transaction
  // (the gateway path a real mote would use), not the typed interface.
  Pipeline p;
  ASSERT_EQ(p.tmpl->deposit(p.car_key.address(), U256{10'000}, U256{500}),
            chain::TemplateStatus::Ok);
  const auto channel_id =
      p.tmpl->create_payment_channel(p.car_key.address());
  device::OffchainRound round(p.car_mote, p.lot_mote, *p.car, *p.lot);
  ASSERT_TRUE(round.run(*channel_id, U256{25}, 7, 2).ok);

  const auto final_state = *p.lot->final_state();
  chain::Transaction commit;
  commit.to = p.template_addr;
  commit.data = abi::Encoder("commit(bytes,bytes,bytes)")
                    .add_bytes(final_state.state.encode())
                    .add_bytes(final_state.sender_sig.serialize())
                    .add_bytes(final_state.receiver_sig.serialize())
                    .build();
  const auto receipt = p.mainnet.submit(p.lot_key, commit);
  ASSERT_TRUE(receipt.has_value());
  ASSERT_TRUE(receipt->success);
  EXPECT_EQ(p.tmpl->channel(*channel_id)->committed_total, U256{50});
}

}  // namespace
}  // namespace tinyevm
