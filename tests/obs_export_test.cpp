// Exporter round-trips: exact Prometheus text exposition (cumulative
// histogram buckets, label escaping) and the JSON scrape shape, over
// hand-built MetricFamily values and over the live registry.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace tinyevm::obs {
namespace {

struct ScopedMetrics {
  ScopedMetrics() { set_metrics_enabled(true); }
  ~ScopedMetrics() { set_metrics_enabled(false); }
};

#ifdef TINYEVM_OBS_DISABLED
#define TINYEVM_REQUIRE_OBS() \
  GTEST_SKIP() << "telemetry compiled out (-DTINYEVM_OBS=OFF)"
#else
#define TINYEVM_REQUIRE_OBS() (void)0
#endif

TEST(ObsExport, CounterRendersExactPrometheusText) {
  MetricFamily family;
  family.name = "demo_total";
  family.help = "a demo counter";
  family.type = MetricType::Counter;
  Sample sample;
  sample.labels = {{"engine", "raw"}, {"status", "ok"}};
  sample.value = 12.0;
  family.samples.push_back(sample);

  EXPECT_EQ(to_prometheus_text({family}),
            "# HELP demo_total a demo counter\n"
            "# TYPE demo_total counter\n"
            "demo_total{engine=\"raw\",status=\"ok\"} 12\n");
}

TEST(ObsExport, GaugeWithoutLabelsHasNoBraces) {
  MetricFamily family;
  family.name = "demo_gauge";
  family.help = "plain";
  family.type = MetricType::Gauge;
  Sample sample;
  sample.value = -3.0;
  family.samples.push_back(sample);

  EXPECT_EQ(to_prometheus_text({family}),
            "# HELP demo_gauge plain\n"
            "# TYPE demo_gauge gauge\n"
            "demo_gauge -3\n");
}

TEST(ObsExport, LabelValuesAreEscaped) {
  MetricFamily family;
  family.name = "demo_total";
  family.help = "escaping";
  family.type = MetricType::Counter;
  Sample sample;
  sample.labels = {{"path", "a\\b\"c\nd"}};
  sample.value = 1.0;
  family.samples.push_back(sample);

  const std::string text = to_prometheus_text({family});
  EXPECT_NE(text.find("demo_total{path=\"a\\\\b\\\"c\\nd\"} 1\n"),
            std::string::npos)
      << text;
}

TEST(ObsExport, HistogramBucketsAreCumulativeWithInfLast) {
  MetricFamily family;
  family.name = "demo_us";
  family.help = "latency";
  family.type = MetricType::Histogram;
  Sample sample;
  // One observation of 1, two of <=4 and one beyond the last finite bound.
  sample.histogram.buckets[0] = 1;
  sample.histogram.buckets[2] = 2;
  sample.histogram.buckets[Histogram::kBuckets - 1] = 1;
  sample.histogram.sum = 1 + 3 + 4 + (std::uint64_t{1} << 31);
  sample.histogram.count = 4;
  family.samples.push_back(sample);

  const std::string text = to_prometheus_text({family});
  // Cumulative counts: le=1 sees 1, le=2 still 1, le=4 jumps to 3, every
  // later finite bound stays 3, and +Inf closes at the total count.
  EXPECT_NE(text.find("demo_us_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("demo_us_bucket{le=\"2\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("demo_us_bucket{le=\"4\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("demo_us_bucket{le=\"1073741824\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("demo_us_bucket{le=\"+Inf\"} 4\n"), std::string::npos);
  EXPECT_NE(text.find("demo_us_sum 2147483656\n"), std::string::npos);
  EXPECT_NE(text.find("demo_us_count 4\n"), std::string::npos);
  // The +Inf bucket is the last bucket line; sum/count follow it.
  EXPECT_LT(text.find("le=\"+Inf\""), text.find("demo_us_sum"));
}

TEST(ObsExport, HistogramLabelsComposeWithLe) {
  MetricFamily family;
  family.name = "demo_us";
  family.help = "latency";
  family.type = MetricType::Histogram;
  Sample sample;
  sample.labels = {{"hub", "h"}};
  sample.histogram.buckets[0] = 1;
  sample.histogram.sum = 1;
  sample.histogram.count = 1;
  family.samples.push_back(sample);

  const std::string text = to_prometheus_text({family});
  EXPECT_NE(text.find("demo_us_bucket{hub=\"h\",le=\"1\"} 1\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("demo_us_sum{hub=\"h\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("demo_us_count{hub=\"h\"} 1\n"), std::string::npos);
}

TEST(ObsExport, JsonScrapeShape) {
  MetricFamily counter;
  counter.name = "demo_total";
  counter.help = "say \"hi\"";
  counter.type = MetricType::Counter;
  Sample csample;
  csample.labels = {{"k", "v"}};
  csample.value = 7.0;
  counter.samples.push_back(csample);

  MetricFamily hist;
  hist.name = "demo_us";
  hist.help = "latency";
  hist.type = MetricType::Histogram;
  Sample hsample;
  hsample.histogram.buckets[1] = 2;
  hsample.histogram.sum = 4;
  hsample.histogram.count = 2;
  hist.samples.push_back(hsample);

  const std::string json = to_json({counter, hist});
  EXPECT_EQ(json.rfind("{\"metrics\":[", 0), 0u) << json;
  EXPECT_EQ(json.substr(json.size() - 3), "]}\n");
  // Help strings are JSON-escaped.
  EXPECT_NE(json.find("\"help\":\"say \\\"hi\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"labels\":{\"k\":\"v\"},\"value\":7"),
            std::string::npos);
  // Buckets are per-bucket (non-cumulative); the +Inf bound is null.
  EXPECT_NE(json.find("{\"le\":1,\"n\":0},{\"le\":2,\"n\":2}"),
            std::string::npos);
  EXPECT_NE(json.find("{\"le\":null,\"n\":0}"), std::string::npos);
  EXPECT_NE(json.find("\"sum\":4,\"count\":2"), std::string::npos);
}

TEST(ObsExport, RegistryScrapeRoundTrip) {
  TINYEVM_REQUIRE_OBS();
  ScopedMetrics on;
  auto& registry = Registry::instance();
  registry
      .counter("obs_export_roundtrip_total", "round-trip counter",
               {{"who", "export-test"}})
      .inc(5);
  registry
      .histogram("obs_export_roundtrip_us", "round-trip histogram")
      .record(3);

  const std::string text = prometheus_scrape();
  EXPECT_NE(
      text.find("# TYPE obs_export_roundtrip_total counter"),
      std::string::npos);
  EXPECT_NE(
      text.find("obs_export_roundtrip_total{who=\"export-test\"} 5"),
      std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_export_roundtrip_us histogram"),
            std::string::npos);
  EXPECT_NE(text.find("obs_export_roundtrip_us_count 1"), std::string::npos);

  const std::string json = json_scrape();
  EXPECT_NE(json.find("\"name\":\"obs_export_roundtrip_total\""),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"obs_export_roundtrip_us\""),
            std::string::npos);
}

}  // namespace
}  // namespace tinyevm::obs
