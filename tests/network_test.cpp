// Payment-network extension tests: routing, HTLC lifecycle, multi-hop
// payments with failure injection, and Revive-style rebalancing.
#include <gtest/gtest.h>

#include "network/payment_network.hpp"

namespace tinyevm::network {
namespace {

Address addr(std::uint8_t id) {
  Address a{};
  a[19] = id;
  return a;
}

const Address kA = addr(1);
const Address kB = addr(2);
const Address kC = addr(3);
const Address kD = addr(4);
const Address kE = addr(5);

// ---- graph ----

TEST(ChannelGraph, AddAndQueryEdges) {
  ChannelGraph g;
  const auto idx = g.add_channel(kA, kB, U256{100}, U256{50}, U256{1});
  ASSERT_NE(g.edge(idx), nullptr);
  EXPECT_EQ(g.edge(idx)->capacity_from(kA), U256{100});
  EXPECT_EQ(g.edge(idx)->capacity_from(kB), U256{50});
  EXPECT_EQ(g.edges_of(kA).size(), 1u);
  EXPECT_EQ(g.edges_of(kC).size(), 0u);
}

TEST(ChannelGraph, RemoveChannelClearsAdjacency) {
  ChannelGraph g;
  const auto idx = g.add_channel(kA, kB, U256{100}, U256{100}, U256{1});
  g.remove_channel(idx);
  EXPECT_EQ(g.edge(idx), nullptr);
  EXPECT_TRUE(g.edges_of(kA).empty());
  EXPECT_FALSE(g.find_route(kA, kB, U256{1}).has_value());
}

TEST(ChannelGraph, PaymentShiftsDirectionalCapacity) {
  ChannelGraph g;
  const auto idx = g.add_channel(kA, kB, U256{100}, U256{0}, U256{1});
  ASSERT_TRUE(g.apply_payment(idx, kA, U256{30}));
  EXPECT_EQ(g.edge(idx)->capacity_from(kA), U256{70});
  EXPECT_EQ(g.edge(idx)->capacity_from(kB), U256{30});
  EXPECT_FALSE(g.apply_payment(idx, kA, U256{71}));
  // The receiver can now send back what it received.
  EXPECT_TRUE(g.apply_payment(idx, kB, U256{30}));
}

TEST(ChannelGraph, DirectRoute) {
  ChannelGraph g;
  g.add_channel(kA, kB, U256{100}, U256{100}, U256{1});
  const auto route = g.find_route(kA, kB, U256{50});
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->hops(), 1u);
  EXPECT_EQ(route->nodes.front(), kA);
  EXPECT_EQ(route->nodes.back(), kB);
}

TEST(ChannelGraph, MultiHopShortestRoute) {
  ChannelGraph g;
  // A-B-C-D chain plus a long A-E-...-D detour; BFS must pick the chain.
  g.add_channel(kA, kB, U256{100}, U256{100}, U256{1});
  g.add_channel(kB, kC, U256{100}, U256{100}, U256{2});
  g.add_channel(kC, kD, U256{100}, U256{100}, U256{3});
  g.add_channel(kA, kE, U256{100}, U256{100}, U256{4});
  g.add_channel(kE, kB, U256{100}, U256{100}, U256{5});
  const auto route = g.find_route(kA, kD, U256{10});
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->hops(), 3u);
}

TEST(ChannelGraph, RouteRespectsDirectionalCapacity) {
  ChannelGraph g;
  // A->B has only 5 forward; the A-C-B detour has plenty.
  g.add_channel(kA, kB, U256{5}, U256{100}, U256{1});
  g.add_channel(kA, kC, U256{100}, U256{100}, U256{2});
  g.add_channel(kC, kB, U256{100}, U256{100}, U256{3});
  const auto route = g.find_route(kA, kB, U256{50});
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->hops(), 2u);  // forced around the depleted edge
}

TEST(ChannelGraph, NoRouteWhenDisconnected) {
  ChannelGraph g;
  g.add_channel(kA, kB, U256{100}, U256{100}, U256{1});
  g.add_channel(kC, kD, U256{100}, U256{100}, U256{2});
  EXPECT_FALSE(g.find_route(kA, kD, U256{1}).has_value());
}

TEST(ChannelGraph, RebalanceCycleFound) {
  ChannelGraph g;
  g.add_channel(kA, kB, U256{100}, U256{100}, U256{1});
  g.add_channel(kB, kC, U256{100}, U256{100}, U256{2});
  g.add_channel(kC, kA, U256{100}, U256{100}, U256{3});
  const auto cycle = g.find_rebalance_cycle(kA, U256{10});
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->nodes.front(), kA);
  EXPECT_EQ(cycle->nodes.back(), kA);
  EXPECT_GE(cycle->hops(), 3u);
}

TEST(ChannelGraph, NoCycleInTree) {
  ChannelGraph g;
  g.add_channel(kA, kB, U256{100}, U256{100}, U256{1});
  g.add_channel(kB, kC, U256{100}, U256{100}, U256{2});
  EXPECT_FALSE(g.find_rebalance_cycle(kA, U256{10}).has_value());
}

// ---- HTLC ----

TEST(Htlc, FulfilWithCorrectPreimage) {
  const auto secret = PaymentSecret::derive("seed", 1);
  Htlc lock;
  lock.payment_hash = secret.hash;
  EXPECT_TRUE(lock.fulfil(secret.preimage));
  EXPECT_EQ(lock.state, Htlc::State::Fulfilled);
}

TEST(Htlc, RejectWrongPreimage) {
  const auto secret = PaymentSecret::derive("seed", 1);
  const auto wrong = PaymentSecret::derive("seed", 2);
  Htlc lock;
  lock.payment_hash = secret.hash;
  EXPECT_FALSE(lock.fulfil(wrong.preimage));
  EXPECT_TRUE(lock.pending());
}

TEST(Htlc, ExpiryByLogicalClock) {
  Htlc lock;
  lock.expiry_sequence = 10;
  EXPECT_FALSE(lock.expire(10));  // not yet past
  EXPECT_TRUE(lock.expire(11));
  EXPECT_EQ(lock.state, Htlc::State::Expired);
  // Dead locks cannot be fulfilled.
  const auto secret = PaymentSecret::derive("seed", 1);
  lock.payment_hash = secret.hash;
  EXPECT_FALSE(lock.fulfil(secret.preimage));
}

TEST(Htlc, FulfilledLockCannotExpire) {
  const auto secret = PaymentSecret::derive("seed", 3);
  Htlc lock;
  lock.payment_hash = secret.hash;
  lock.expiry_sequence = 1;
  ASSERT_TRUE(lock.fulfil(secret.preimage));
  EXPECT_FALSE(lock.expire(100));
}

TEST(PaymentSecret, DeterministicAndDistinct) {
  const auto s1 = PaymentSecret::derive("seed", 7);
  const auto s2 = PaymentSecret::derive("seed", 7);
  const auto s3 = PaymentSecret::derive("seed", 8);
  EXPECT_EQ(s1.preimage, s2.preimage);
  EXPECT_NE(s1.preimage, s3.preimage);
  EXPECT_EQ(keccak256(s1.preimage), s1.hash);
}

// ---- multi-hop payments ----

TEST(PaymentNetwork, DirectPayment) {
  PaymentNetwork net;
  net.open_channel(kA, kB, U256{100}, U256{0});
  const auto outcome = net.pay(kA, kB, U256{40});
  ASSERT_TRUE(outcome.success) << outcome.failure;
  EXPECT_EQ(outcome.hops, 1u);
  EXPECT_EQ(net.outbound_capacity(kA), U256{60});
  EXPECT_EQ(net.outbound_capacity(kB), U256{40});
}

TEST(PaymentNetwork, ThreeHopPayment) {
  PaymentNetwork net;
  net.open_channel(kA, kB, U256{100}, U256{0});
  net.open_channel(kB, kC, U256{100}, U256{0});
  net.open_channel(kC, kD, U256{100}, U256{0});
  const auto outcome = net.pay(kA, kD, U256{25});
  ASSERT_TRUE(outcome.success) << outcome.failure;
  EXPECT_EQ(outcome.hops, 3u);
  EXPECT_EQ(outcome.signature_rounds, 6u);  // lock + settle per hop
  // Every intermediary's balance is conserved (forwarded, not kept).
  EXPECT_EQ(net.outbound_capacity(kB), U256{100});  // -25 fwd, +25 recv
  EXPECT_EQ(net.outbound_capacity(kC), U256{100});
}

TEST(PaymentNetwork, IntermediaryStatsTracked) {
  PaymentNetwork net;
  net.open_channel(kA, kB, U256{100}, U256{0});
  net.open_channel(kB, kC, U256{100}, U256{0});
  ASSERT_TRUE(net.pay(kA, kC, U256{10}).success);
  EXPECT_EQ(net.stats(kB).htlcs_forwarded, 1u);
  EXPECT_GE(net.stats(kB).signatures, 1u);
  EXPECT_EQ(net.stats(kC).payments_received, 1u);
}

TEST(PaymentNetwork, FailsWithoutCapacity) {
  PaymentNetwork net;
  net.open_channel(kA, kB, U256{10}, U256{0});
  const auto outcome = net.pay(kA, kB, U256{50});
  EXPECT_FALSE(outcome.success);
  EXPECT_EQ(outcome.failure, "no route with capacity");
}

TEST(PaymentNetwork, CapacityRestoredByReversePayment) {
  PaymentNetwork net;
  net.open_channel(kA, kB, U256{50}, U256{0});
  ASSERT_TRUE(net.pay(kA, kB, U256{50}).success);
  EXPECT_FALSE(net.pay(kA, kB, U256{1}).success);  // drained
  ASSERT_TRUE(net.pay(kB, kA, U256{20}).success);  // flows back
  EXPECT_TRUE(net.pay(kA, kB, U256{20}).success);
}

TEST(PaymentNetwork, RoutesAroundOfflineNode) {
  PaymentNetwork net;
  // Two disjoint paths A-B-D and A-C-D; B goes offline.
  net.open_channel(kA, kB, U256{100}, U256{0});
  net.open_channel(kB, kD, U256{100}, U256{0});
  net.open_channel(kA, kC, U256{100}, U256{0});
  net.open_channel(kC, kD, U256{100}, U256{0});
  net.set_offline(kB, true);
  const auto outcome = net.pay(kA, kD, U256{30});
  ASSERT_TRUE(outcome.success) << outcome.failure;
  EXPECT_EQ(outcome.hops, 2u);
  // The abandoned locks through B expired.
  EXPECT_GT(net.htlcs_expired(), 0u);
  // C did the forwarding.
  EXPECT_EQ(net.stats(kC).htlcs_forwarded, 1u);
  EXPECT_EQ(net.stats(kB).htlcs_forwarded, 0u);
}

TEST(PaymentNetwork, FailsWhenAllRoutesOffline) {
  PaymentNetwork net;
  net.open_channel(kA, kB, U256{100}, U256{0});
  net.open_channel(kB, kC, U256{100}, U256{0});
  net.set_offline(kB, true);
  const auto outcome = net.pay(kA, kC, U256{10});
  EXPECT_FALSE(outcome.success);
}

TEST(PaymentNetwork, ReceiverOfflineStillPaid) {
  // Only *intermediaries* stall a route; the receiver itself must be
  // reachable to reveal, so an offline receiver is the sender's problem —
  // but the flag only models forwarding failure, and a direct payment to
  // an offline receiver is the radio layer's concern. Keep the protocol
  // semantics: direct payments succeed (the lock IS the delivery).
  PaymentNetwork net;
  net.open_channel(kA, kB, U256{100}, U256{0});
  net.set_offline(kB, true);
  EXPECT_TRUE(net.pay(kA, kB, U256{10}).success);
}

// ---- rebalancing ----

TEST(PaymentNetwork, RebalanceRestoresOutboundCapacity) {
  PaymentNetwork net;
  // Triangle; A's edge to B gets drained by payments.
  const auto ab = net.open_channel(kA, kB, U256{100}, U256{0});
  net.open_channel(kB, kC, U256{100}, U256{100});
  net.open_channel(kC, kA, U256{0}, U256{100});  // C->A has capacity
  ASSERT_TRUE(net.pay(kA, kB, U256{100}).success);
  EXPECT_EQ(net.graph().edge(ab)->capacity_from(kA), U256{0});

  // Shift 40 around A -> C? No: the cycle must start with an edge A can
  // still send on. A->B is drained; A has no other outbound... the cycle
  // goes A -> (C->A edge reversed)? find_rebalance_cycle starts at A and
  // needs capacity_from(A) on the first hop: the CA edge gives A 100
  // (capacity_ba). So the cycle A -> C -> B -> A exists.
  ASSERT_TRUE(net.rebalance(kA, U256{40}));
  // A->B regained 40 via the cycle's last hop (B->A direction gives A
  // inbound; the A->B edge's reverse leg).
  EXPECT_EQ(net.graph().edge(ab)->capacity_from(kA), U256{40});
}

TEST(PaymentNetwork, RebalanceFailsWithoutCycle) {
  PaymentNetwork net;
  net.open_channel(kA, kB, U256{100}, U256{100});
  EXPECT_FALSE(net.rebalance(kA, U256{10}));
}

TEST(PaymentNetwork, RebalancePreservesTotalCapacity) {
  PaymentNetwork net;
  net.open_channel(kA, kB, U256{60}, U256{40});
  net.open_channel(kB, kC, U256{60}, U256{40});
  net.open_channel(kC, kA, U256{60}, U256{40});
  const U256 before = net.outbound_capacity(kA) + net.outbound_capacity(kB) +
                      net.outbound_capacity(kC);
  ASSERT_TRUE(net.rebalance(kA, U256{20}));
  const U256 after = net.outbound_capacity(kA) + net.outbound_capacity(kB) +
                     net.outbound_capacity(kC);
  EXPECT_EQ(before, after);  // rebalancing moves, never creates, capacity
}

}  // namespace
}  // namespace tinyevm::network
