#include "crypto/secp256k1.hpp"

#include <gtest/gtest.h>

#include <random>

#include "crypto/hash.hpp"

namespace tinyevm::secp256k1 {
namespace {

U256 hex(std::string_view h) { return *U256::from_hex(h); }

TEST(Field, PrimeAndOrderSanity) {
  // p and n are both just below 2^256 and differ.
  EXPECT_EQ(field_prime().bit_length(), 256u);
  EXPECT_EQ(group_order().bit_length(), 256u);
  EXPECT_NE(field_prime(), group_order());
  // p = 2^256 - 2^32 - 977.
  EXPECT_EQ(U256::max() - field_prime(), (U256{1} << 32) + U256{977} - U256{1});
}

TEST(Field, AddSubInverse) {
  const Fe a{hex("1234567890abcdef")};
  const Fe b{hex("fedcba0987654321")};
  EXPECT_EQ((a + b) - b, a);
  EXPECT_EQ(a - a, Fe{U256{0}});
}

TEST(Field, AddWrapsModP) {
  const Fe pm1{field_prime() - U256{1}};
  EXPECT_EQ(pm1 + Fe{U256{1}}, Fe{U256{0}});
  EXPECT_EQ(pm1 + pm1, Fe{field_prime() - U256{2}});
}

TEST(Field, MulMatchesGenericModMul) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < 50; ++i) {
    const U256 a{rng(), rng(), rng(), rng()};
    const U256 b{rng(), rng(), rng(), rng()};
    const U256 ra = a % field_prime();
    const U256 rb = b % field_prime();
    EXPECT_EQ((Fe{ra} * Fe{rb}).value(), U256::mulmod(ra, rb, field_prime()));
  }
}

TEST(Field, InverseProperty) {
  std::mt19937_64 rng(11);
  for (int i = 0; i < 10; ++i) {
    const U256 raw{rng(), rng(), rng(), rng()};
    const Fe a = Fe::from_reduced(raw);
    if (a.is_zero()) continue;
    EXPECT_EQ(a * a.inverse(), Fe{U256{1}});
  }
}

TEST(Field, InverseOfZeroIsZero) {
  EXPECT_EQ(Fe{U256{0}}.inverse(), Fe{U256{0}});
}

TEST(Field, SqrtRoundTrip) {
  std::mt19937_64 rng(13);
  for (int i = 0; i < 10; ++i) {
    const Fe a = Fe::from_reduced(U256{rng(), rng(), rng(), rng()});
    const Fe square = a.square();
    const auto root = square.sqrt();
    ASSERT_TRUE(root.has_value());
    EXPECT_TRUE(*root == a || *root == a.negate());
  }
}

TEST(Field, SqrtOfNonResidueFails) {
  // -1 is a non-residue mod p (p ≡ 3 mod 4).
  const Fe minus_one{field_prime() - U256{1}};
  EXPECT_FALSE(minus_one.sqrt().has_value());
}

TEST(Curve, GeneratorOnCurve) {
  EXPECT_TRUE(generator().on_curve());
}

TEST(Curve, KnownDoubleOfG) {
  // 2G has well-known coordinates.
  const auto two_g =
      scalar_mul(U256{2}, generator()).to_affine();
  EXPECT_EQ(two_g.x.value(),
            hex("c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709e"
                "e5"));
  EXPECT_EQ(two_g.y.value(),
            hex("1ae168fea63dc339a3c58419466ceaeef7f632653266d0e1236431a950cfe5"
                "2a"));
  EXPECT_TRUE(two_g.on_curve());
}

TEST(Curve, AddMatchesDouble) {
  const auto g = JacobianPoint::from_affine(generator());
  EXPECT_EQ(add(g, g).to_affine(), double_point(g).to_affine());
}

TEST(Curve, AdditionIsCommutativeAndAssociative) {
  const auto g = JacobianPoint::from_affine(generator());
  const auto g2 = double_point(g);
  const auto g3a = add(add(g, g), g).to_affine();
  const auto g3b = add(g, g2).to_affine();
  const auto g3c = add(g2, g).to_affine();
  EXPECT_EQ(g3a, g3b);
  EXPECT_EQ(g3b, g3c);
  EXPECT_TRUE(g3a.on_curve());
}

TEST(Curve, InfinityIsIdentity) {
  const auto g = JacobianPoint::from_affine(generator());
  EXPECT_EQ(add(g, JacobianPoint::infinity()).to_affine(), generator());
  EXPECT_EQ(add(JacobianPoint::infinity(), g).to_affine(), generator());
  EXPECT_TRUE(JacobianPoint::infinity().to_affine().infinity);
}

TEST(Curve, PointPlusNegationIsInfinity) {
  const auto g = generator();
  const AffinePoint neg_g{g.x, g.y.negate(), false};
  const auto sum = add(JacobianPoint::from_affine(g),
                       JacobianPoint::from_affine(neg_g));
  EXPECT_TRUE(sum.to_affine().infinity);
}

TEST(Curve, OrderTimesGIsInfinity) {
  EXPECT_TRUE(scalar_mul(group_order(), generator()).to_affine().infinity);
}

TEST(Curve, ScalarMulDistributes) {
  // (a+b)G == aG + bG for random small scalars.
  std::mt19937_64 rng(17);
  for (int i = 0; i < 5; ++i) {
    const U256 a{rng()};
    const U256 b{rng()};
    const auto lhs = scalar_mul(a + b, generator()).to_affine();
    const auto rhs = add(scalar_mul(a, generator()),
                         scalar_mul(b, generator()))
                         .to_affine();
    EXPECT_EQ(lhs, rhs);
  }
}

TEST(Curve, ShamirMatchesSeparateMuls) {
  std::mt19937_64 rng(23);
  const auto p = scalar_mul(U256{12345}, generator()).to_affine();
  for (int i = 0; i < 5; ++i) {
    const U256 k1{rng(), 0, rng(), rng()};
    const U256 k2{0, rng(), rng(), rng()};
    const auto expected =
        add(scalar_mul(k1, generator()), scalar_mul(k2, p)).to_affine();
    EXPECT_EQ(shamir_mul(k1, k2, p).to_affine(), expected);
  }
}

TEST(Keys, WellKnownAddressOfKeyOne) {
  const auto key = PrivateKey::from_scalar(U256{1});
  ASSERT_TRUE(key.has_value());
  // Public key of d=1 is G itself.
  EXPECT_EQ(key->public_key().point, generator());
  EXPECT_EQ("0x" + to_hex(key->address()),
            "0x7e5f4552091a69125d5dfcb7b8c2659029395bdf");
}

TEST(Keys, WellKnownAddressOfKeyTwo) {
  const auto key = PrivateKey::from_scalar(U256{2});
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ("0x" + to_hex(key->address()),
            "0x2b5ad5c4795c026514f8317c7a215e218dccd6cf");
}

TEST(Keys, RejectsZeroAndOrder) {
  EXPECT_FALSE(PrivateKey::from_scalar(U256{0}).has_value());
  EXPECT_FALSE(PrivateKey::from_scalar(group_order()).has_value());
  EXPECT_TRUE(PrivateKey::from_scalar(group_order() - U256{1}).has_value());
}

TEST(Keys, SeedDerivationIsDeterministic) {
  const auto a = PrivateKey::from_seed("parking-sensor");
  const auto b = PrivateKey::from_seed("parking-sensor");
  const auto c = PrivateKey::from_seed("smart-car");
  EXPECT_EQ(a.scalar(), b.scalar());
  EXPECT_NE(a.scalar(), c.scalar());
}

// RFC 6979 deterministic-nonce vectors for secp256k1 with SHA-256
// (the de-facto standard set used by trezor/bitcoin-core test suites).
struct Rfc6979Vector {
  const char* key_hex;
  const char* message;
  const char* k_hex;
  const char* r_hex;
  const char* s_hex;
};

class Rfc6979Test : public ::testing::TestWithParam<Rfc6979Vector> {};

TEST_P(Rfc6979Test, NonceMatchesVector) {
  const auto& v = GetParam();
  const auto digest = sha256(v.message);
  EXPECT_EQ(rfc6979_nonce(hex(v.key_hex), digest), hex(v.k_hex));
}

TEST_P(Rfc6979Test, SignatureMatchesVector) {
  const auto& v = GetParam();
  const auto key = PrivateKey::from_scalar(hex(v.key_hex));
  ASSERT_TRUE(key.has_value());
  const auto digest = sha256(v.message);
  const Signature sig = sign(digest, *key);
  EXPECT_EQ(sig.r, hex(v.r_hex));
  EXPECT_EQ(sig.s, hex(v.s_hex));
  EXPECT_TRUE(verify(digest, sig, key->public_key()));
}

INSTANTIATE_TEST_SUITE_P(
    StandardVectors, Rfc6979Test,
    ::testing::Values(
        Rfc6979Vector{
            "0000000000000000000000000000000000000000000000000000000000000001",
            "Satoshi Nakamoto",
            "8f8a276c19f4149656b280621e358cce24f5f52542772691ee69063b74f15d15",
            "934b1ea10a4b3c1757e2b0c017d0b6143ce3c9a7e6a4a49860d7a6ab210ee3d8",
            "2442ce9d2b916064108014783e923ec36b49743e2ffa1c4496f01a512aafd9e5"},
        Rfc6979Vector{
            "0000000000000000000000000000000000000000000000000000000000000001",
            "All those moments will be lost in time, like tears in rain. Time"
            " to die...",
            "38aa22d72376b4dbc472e06c3ba403ee0a394da63fc58d88686c611aba98d6b3",
            "8600dbd41e348fe5c9465ab92d23e3db8b98b873beecd930736488696438cb6b",
            "547fe64427496db33bf66019dacbf0039c04199abb0122918601db38a72cfc21"},
        Rfc6979Vector{
            "fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364140",
            "Satoshi Nakamoto",
            "33a19b60e25fb6f4435af53a3d42d493644827367e6453928554f43e49aa6f90",
            "fd567d121db66e382991534ada77a6bd3106f0a1098c231e47993447cd6af2d0",
            "6b39cd0eb1bc8603e159ef5c20a5c8ad685a45b06ce9bebed3f153d10d93bed5"}));

TEST(Ecdsa, SignVerifyRoundTrip) {
  const auto key = PrivateKey::from_seed("round-trip");
  const auto digest = keccak256("payment #1: 50 wei");
  const Signature sig = sign(digest, key);
  EXPECT_TRUE(verify(digest, sig, key.public_key()));
}

TEST(Ecdsa, VerifyRejectsWrongDigest) {
  const auto key = PrivateKey::from_seed("tamper");
  const Signature sig = sign(keccak256("amount=5"), key);
  EXPECT_FALSE(verify(keccak256("amount=500"), sig, key.public_key()));
}

TEST(Ecdsa, VerifyRejectsWrongKey) {
  const auto alice = PrivateKey::from_seed("alice");
  const auto bob = PrivateKey::from_seed("bob");
  const auto digest = keccak256("msg");
  EXPECT_FALSE(verify(digest, sign(digest, alice), bob.public_key()));
}

TEST(Ecdsa, VerifyRejectsZeroOrOutOfRangeComponents) {
  const auto key = PrivateKey::from_seed("ranges");
  const auto digest = keccak256("msg");
  Signature sig = sign(digest, key);
  Signature bad = sig;
  bad.r = U256{0};
  EXPECT_FALSE(verify(digest, bad, key.public_key()));
  bad = sig;
  bad.s = U256{0};
  EXPECT_FALSE(verify(digest, bad, key.public_key()));
  bad = sig;
  bad.r = group_order();
  EXPECT_FALSE(verify(digest, bad, key.public_key()));
  bad = sig;
  bad.s = group_order() + U256{5};
  EXPECT_FALSE(verify(digest, bad, key.public_key()));
}

TEST(Ecdsa, SignaturesAreLowS) {
  for (const char* seed : {"a", "b", "c", "d", "e"}) {
    const auto key = PrivateKey::from_seed(seed);
    const Signature sig = sign(keccak256(seed), key);
    EXPECT_LE(sig.s, group_order() >> 1);
  }
}

TEST(Ecdsa, HighSVariantStillVerifiesButIsNotProduced) {
  const auto key = PrivateKey::from_seed("malleability");
  const auto digest = keccak256("msg");
  const Signature sig = sign(digest, key);
  Signature high = sig;
  high.s = group_order() - sig.s;
  // Classic ECDSA accepts the malleated twin; recovery distinguishes them
  // via the recovery id (checked in Recovery tests).
  EXPECT_TRUE(verify(digest, high, key.public_key()));
  EXPECT_NE(high.s, sig.s);
}

TEST(Recovery, RecoversSigningKey) {
  const auto key = PrivateKey::from_seed("recover-me");
  const auto digest = keccak256("channel state #7");
  const Signature sig = sign(digest, key);
  const auto recovered = recover(digest, sig);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(*recovered, key.public_key());
}

TEST(Recovery, AddressRecoveryMatches) {
  for (const char* seed : {"car", "parking", "hub"}) {
    const auto key = PrivateKey::from_seed(seed);
    const auto digest = keccak256(std::string("payment from ") + seed);
    const auto addr = recover_address(digest, sign(digest, key));
    ASSERT_TRUE(addr.has_value());
    EXPECT_EQ(*addr, key.address());
  }
}

TEST(Recovery, WrongRecoveryIdGivesDifferentKey) {
  const auto key = PrivateKey::from_seed("flip-v");
  const auto digest = keccak256("msg");
  Signature sig = sign(digest, key);
  sig.recovery_id ^= 1;
  const auto recovered = recover(digest, sig);
  if (recovered.has_value()) {
    EXPECT_NE(*recovered, key.public_key());
  }
}

TEST(Recovery, RejectsInvalidComponents) {
  const auto digest = keccak256("msg");
  EXPECT_FALSE(recover(digest, Signature{U256{0}, U256{1}, 0}).has_value());
  EXPECT_FALSE(recover(digest, Signature{U256{1}, U256{0}, 0}).has_value());
  EXPECT_FALSE(
      recover(digest, Signature{group_order(), U256{1}, 0}).has_value());
}

TEST(Signature, SerializeRoundTrip) {
  const auto key = PrivateKey::from_seed("wire");
  const Signature sig = sign(keccak256("wire-format"), key);
  const auto bytes = sig.serialize();
  EXPECT_EQ(bytes[64], 27 + sig.recovery_id);
  const auto parsed = Signature::deserialize(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, sig);
}

TEST(Signature, DeserializeRejectsBadLengthAndV) {
  std::array<std::uint8_t, 64> short_buf{};
  EXPECT_FALSE(Signature::deserialize(short_buf).has_value());
  std::array<std::uint8_t, 65> bad_v{};
  bad_v[64] = 99;
  EXPECT_FALSE(Signature::deserialize(bad_v).has_value());
}

TEST(Signature, DeserializeAcceptsRawRecoveryId) {
  std::array<std::uint8_t, 65> buf{};
  buf[31] = 1;  // r = 1
  buf[63] = 1;  // s = 1
  buf[64] = 1;  // v = 1 (raw form)
  const auto parsed = Signature::deserialize(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->recovery_id, 1);
}

}  // namespace
}  // namespace tinyevm::secp256k1
