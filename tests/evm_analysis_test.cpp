// Unit tests for the translate-time static analyzer (evm/analysis.hpp):
// basic-block construction, the per-block stack/gas summaries, the
// reachability and entry-height dataflow, each diagnostic kind, the
// elide-span attachment that feeds the interpreter's check-elided fast
// path, and the per-instruction stack algebra cross-checked against the
// opcode table. The end-to-end property that elision never changes
// results is covered by evm_dispatch_test.cpp.
#include <gtest/gtest.h>

#include <random>

#include "evm/analysis.hpp"
#include "evm/asm.hpp"
#include "evm/decoded.hpp"
#include "evm/opcodes.hpp"

namespace tinyevm::evm {
namespace {

constexpr TranslationProfile kTiny{};                       // tiny + SENSOR
constexpr TranslationProfile kEth{false, false, true};      // Ethereum

AnalysisReport analyze_hexless(const Bytes& code,
                               const TranslationProfile& profile = kTiny,
                               std::size_t stack_limit = 0) {
  const DecodedProgram program = translate(code, profile);
  AnalysisOptions opt;
  opt.stack_limit = stack_limit;
  opt.code = code;
  return analyze(program, opt);
}

bool has_diag(const AnalysisReport& report, Diagnostic::Kind kind) {
  for (const Diagnostic& d : report.diagnostics) {
    if (d.kind == kind) return true;
  }
  return false;
}

TEST(Analysis, CfgOfCountingLoop) {
  // PUSH1 10; JUMPDEST; PUSH1 1; SWAP1; SUB; DUP1; PUSH1 2; JUMPI; POP
  Assembler a;
  a.push(10);
  a.op(Opcode::JUMPDEST);  // pc 2
  a.push(1).swap(1).op(Opcode::SUB);
  a.dup(1);
  a.push(2).op(Opcode::JUMPI);
  a.op(Opcode::POP);
  const Bytes code = a.take();
  const AnalysisReport report = analyze_hexless(code);

  ASSERT_EQ(report.blocks.size(), 3u);
  const BasicBlock& entry = report.blocks[0];
  const BasicBlock& loop = report.blocks[1];
  const BasicBlock& tail = report.blocks[2];

  // Entry: one PUSH falling through into the JUMPDEST leader. The
  // successor of a FallThrough block is implicitly the next block, so no
  // static target is recorded.
  EXPECT_EQ(entry.pc, 0u);
  EXPECT_EQ(entry.exit, BlockExit::FallThrough);
  EXPECT_EQ(entry.target, BasicBlock::kNoBlock);
  EXPECT_EQ(entry.stack_require, 0);
  EXPECT_EQ(entry.stack_delta, 1);
  EXPECT_EQ(entry.stack_peak, 1);
  EXPECT_TRUE(entry.reachable);
  EXPECT_EQ(entry.entry_height, 0);

  // Loop body: JUMPDEST .. fused PUSH+JUMPI branching back to itself.
  // Slots: JumpDest, Push, SwapBin(+slot), Dup, PushJumpI(+slot) = 7;
  // fused pairs count two executed ops each.
  EXPECT_EQ(loop.pc, 2u);
  EXPECT_EQ(loop.count, 7u);
  EXPECT_EQ(loop.ops, 7u);
  EXPECT_EQ(loop.exit, BlockExit::Branch);
  EXPECT_EQ(loop.target, 1u);
  EXPECT_FALSE(loop.dynamic_exit);
  EXPECT_EQ(loop.stack_require, 1);
  EXPECT_EQ(loop.stack_delta, 0);
  EXPECT_EQ(loop.stack_peak, 2);
  EXPECT_TRUE(loop.reachable);
  // Fallthrough height 1 and the back edge (delta 0) agree.
  EXPECT_EQ(loop.entry_height, 1);

  EXPECT_EQ(tail.exit, BlockExit::CodeEnd);
  EXPECT_TRUE(tail.reachable);
  EXPECT_EQ(tail.entry_height, 1);

  EXPECT_TRUE(report.clean());
}

TEST(Analysis, BlockGasAndCycleSums) {
  // PUSH1 1; PUSH1 2; ADD: one block, static gas/cycles are plain sums of
  // the opcode table regardless of fusion.
  const AnalysisReport report =
      analyze_hexless({0x60, 0x01, 0x60, 0x02, 0x01});
  ASSERT_EQ(report.blocks.size(), 1u);
  const OpInfo& push = info(0x60);
  const OpInfo& add = info(0x01);
  EXPECT_EQ(report.blocks[0].static_gas,
            2u * push.base_gas + add.base_gas);
  EXPECT_EQ(report.blocks[0].cycles, 2u * push.mcu_cycles + add.mcu_cycles);
  EXPECT_EQ(report.blocks[0].ops, 3u);
  EXPECT_EQ(report.blocks[0].exit, BlockExit::CodeEnd);
  EXPECT_TRUE(report.clean());
}

TEST(Analysis, StackMergeConflict) {
  // PUSH1 1; PUSH1 7; JUMPI; PUSH1 9; JUMPDEST; STOP — the branch edge
  // reaches the JUMPDEST at height 0, the fallthrough at height 1.
  const AnalysisReport report =
      analyze_hexless({0x60, 0x01, 0x60, 0x07, 0x57, 0x60, 0x09, 0x5b, 0x00});
  EXPECT_TRUE(has_diag(report, Diagnostic::Kind::StackMergeConflict));
  bool saw_conflict_block = false;
  for (const BasicBlock& b : report.blocks) {
    if (b.pc == 7) {
      EXPECT_EQ(b.entry_height, BasicBlock::kConflictHeight);
      EXPECT_FALSE(b.entry_height_known());
      saw_conflict_block = true;
    }
  }
  EXPECT_TRUE(saw_conflict_block);
}

TEST(Analysis, UnreachableBlock) {
  // STOP; JUMPDEST; STOP — nothing jumps, so the JUMPDEST block is dead.
  const AnalysisReport report = analyze_hexless({0x00, 0x5b, 0x00});
  ASSERT_EQ(report.blocks.size(), 2u);
  EXPECT_TRUE(report.blocks[0].reachable);
  EXPECT_FALSE(report.blocks[1].reachable);
  EXPECT_TRUE(has_diag(report, Diagnostic::Kind::UnreachableBlock));
  EXPECT_EQ(report.error_count(), 0u);
  EXPECT_EQ(report.warning_count(), 1u);
}

TEST(Analysis, DynamicJumpReachesEveryJumpdest) {
  // CALLDATASIZE; JUMP; JUMPDEST; STOP; JUMPDEST; STOP — the jump target
  // comes off the stack, so both JUMPDEST blocks are conservatively
  // reachable, with unknown entry heights (no static edge carries one).
  const AnalysisReport report =
      analyze_hexless({0x36, 0x56, 0x5b, 0x00, 0x5b, 0x00});
  ASSERT_EQ(report.blocks.size(), 3u);
  EXPECT_EQ(report.blocks[0].exit, BlockExit::Jump);
  EXPECT_TRUE(report.blocks[0].dynamic_exit);
  EXPECT_EQ(report.blocks[0].target, BasicBlock::kNoBlock);
  for (std::size_t i = 1; i < 3; ++i) {
    EXPECT_TRUE(report.blocks[i].reachable) << "block " << i;
    EXPECT_FALSE(report.blocks[i].entry_height_known()) << "block " << i;
    EXPECT_EQ(report.blocks[i].entry_height, BasicBlock::kUnknownHeight);
  }
  EXPECT_FALSE(has_diag(report, Diagnostic::Kind::UnreachableBlock));
}

TEST(Analysis, ProvenUnderflow) {
  // A bare ADD at entry height 0.
  const AnalysisReport report = analyze_hexless({0x01});
  EXPECT_TRUE(has_diag(report, Diagnostic::Kind::ProvenUnderflow));
  EXPECT_EQ(report.error_count(), 1u);
}

TEST(Analysis, ProvenOverflow) {
  // Three pushes under a 2-element cap; no finding without a cap.
  const Bytes code{0x60, 0x01, 0x60, 0x02, 0x60, 0x03, 0x00};
  EXPECT_TRUE(has_diag(analyze_hexless(code, kTiny, 2),
                       Diagnostic::Kind::ProvenOverflow));
  EXPECT_TRUE(analyze_hexless(code, kTiny, 3).clean());
  EXPECT_TRUE(analyze_hexless(code).clean());
}

TEST(Analysis, BadJumpTargetAndPushdata) {
  // PUSH1 5; JUMP with pc 5 past the end -> bad target (error).
  EXPECT_TRUE(has_diag(analyze_hexless({0x60, 0x05, 0x56}),
                       Diagnostic::Kind::BadJumpTarget));
  // PUSH1 4; JUMP; PUSH1 0x5b; STOP — the destination byte is a 0x5b
  // hidden inside pushdata, the refined diagnostic.
  EXPECT_TRUE(has_diag(analyze_hexless({0x60, 0x04, 0x56, 0x60, 0x5b, 0x00}),
                       Diagnostic::Kind::JumpIntoPushdata));
}

TEST(Analysis, TrapDiagnostics) {
  // An undefined byte is an error when reachable...
  EXPECT_TRUE(has_diag(analyze_hexless({0xef}),
                       Diagnostic::Kind::InvalidOpcode));
  // ...SENSOR does not exist in the original EVM (undefined, not merely
  // forbidden) but is fine under TinyEVM (it pops two and pushes one, so
  // feed it operands)...
  const Bytes sensor{0x60, 0x00, 0x60, 0x00, 0x0c, 0x00};
  EXPECT_TRUE(has_diag(analyze_hexless(sensor, kEth),
                       Diagnostic::Kind::InvalidOpcode));
  EXPECT_TRUE(analyze_hexless(sensor, kTiny).clean());
  // ...NUMBER is a real opcode that the TinyEVM profile removes...
  EXPECT_TRUE(has_diag(analyze_hexless({0x43, 0x00}, kTiny),
                       Diagnostic::Kind::ForbiddenOpcode));
  EXPECT_TRUE(analyze_hexless({0x43, 0x00}, kEth).clean());
  // ...and an intentional INVALID (0xfe) trap is not a finding.
  EXPECT_TRUE(analyze_hexless({0xfe}).clean());
  // Unreachable garbage only warns about the dead block, not the bytes.
  const AnalysisReport dead = analyze_hexless({0x00, 0x5b, 0xef});
  EXPECT_FALSE(has_diag(dead, Diagnostic::Kind::InvalidOpcode));
  EXPECT_TRUE(has_diag(dead, Diagnostic::Kind::UnreachableBlock));
}

TEST(Analysis, TruncatedPush) {
  const AnalysisReport report = analyze_hexless({0x7f, 0xAA});
  EXPECT_TRUE(has_diag(report, Diagnostic::Kind::TruncatedPush));
  EXPECT_EQ(report.error_count(), 0u);
}

TEST(Analysis, ElideSpanOnEntryBlock) {
  // PUSH1 1; PUSH1 2; ADD — wholly elidable, so the entry span covers the
  // full stream (Push + fused PushBin pair = 3 slots, 3 ops).
  const DecodedProgram p =
      translate(Bytes{0x60, 0x01, 0x60, 0x02, 0x01}, kTiny);
  ASSERT_EQ(p.spans.size(), 1u);
  ASSERT_NE(p.entry_span, kNoJumpTarget);
  const ElideSpan& span = p.spans[p.entry_span];
  EXPECT_EQ(span.first, 0u);
  EXPECT_EQ(span.count, 3u);
  EXPECT_EQ(span.ops, 3u);
  EXPECT_EQ(span.stack_require, 0u);
  EXPECT_EQ(span.stack_peak, 2u);
  EXPECT_EQ(span.static_gas, 3u * info(0x60).base_gas);
}

TEST(Analysis, ElideSpanOnJumpdestLeader) {
  // JUMPDEST; PUSH1 1; PUSH1 2; ADD; STOP — the leader's span index rides
  // in the JumpDest instruction's unused jump-target field, and a
  // JUMPDEST-led program has no entry span (the leader itself still runs
  // its checked prologue).
  const DecodedProgram p =
      translate(Bytes{0x5b, 0x60, 0x01, 0x60, 0x02, 0x01, 0x00}, kTiny);
  EXPECT_EQ(p.entry_span, kNoJumpTarget);
  ASSERT_EQ(p.spans.size(), 1u);
  ASSERT_FALSE(p.insts.empty());
  ASSERT_EQ(p.insts[0].handler, Handler::JumpDest);
  ASSERT_EQ(p.insts[0].target, 0u);
  EXPECT_EQ(p.spans[0].first, 1u);  // span starts after the leader
  EXPECT_EQ(p.spans[0].ops, 3u);
}

TEST(Analysis, ShortRunsGetNoSpan) {
  // JUMPDEST; POP; STOP — a single elidable instruction cannot pay for
  // the entry test (kMinElideSpanSlots).
  const DecodedProgram p = translate(Bytes{0x5b, 0x50, 0x00}, kTiny);
  EXPECT_TRUE(p.spans.empty());
  ASSERT_FALSE(p.insts.empty());
  EXPECT_EQ(p.insts[0].target, kNoJumpTarget);
  // A terminator-only program has nothing to elide either.
  EXPECT_TRUE(translate(Bytes{0x00}, kTiny).spans.empty());
}

TEST(Analysis, NonElidableOpsEndTheSpan) {
  // PUSH1 0; PUSH1 0; MSTORE; PUSH1 1; PUSH1 2; ADD — memory growth is
  // not elidable, so the entry span stops before MSTORE and no second
  // span exists (the post-MSTORE run has no block leader to anchor it).
  const DecodedProgram p = translate(
      Bytes{0x60, 0x00, 0x60, 0x00, 0x52, 0x60, 0x01, 0x60, 0x02, 0x01},
      kTiny);
  ASSERT_EQ(p.spans.size(), 1u);
  ASSERT_NE(p.entry_span, kNoJumpTarget);
  EXPECT_EQ(p.spans[p.entry_span].first, 0u);
  EXPECT_EQ(p.spans[p.entry_span].count, 2u);  // the two leading pushes
}

TEST(Analysis, SpanSwallowsStaticJumpTail) {
  // PUSH1 10; JUMPDEST; PUSH1 1; SWAP1; SUB; DUP1; PUSH1 2; JUMPI; POP —
  // the loop body block ends in a fused PUSH+JUMPI whose target resolved
  // statically, so the span swallows it: one entry test covers the whole
  // body including the back edge.
  const DecodedProgram p = translate(
      Bytes{0x60, 0x0a, 0x5b, 0x60, 0x01, 0x90, 0x03, 0x80, 0x60, 0x02,
            0x57, 0x50},
      kTiny);
  // Entry block's lone PUSH is below the span threshold and its next
  // instruction is the JUMPDEST leader, not a fused jump.
  EXPECT_EQ(p.entry_span, kNoJumpTarget);
  ASSERT_EQ(p.spans.size(), 1u);
  const ElideSpan& span = p.spans[0];
  EXPECT_EQ(span.first, 2u);        // right after the JUMPDEST leader
  EXPECT_EQ(span.count, 4u);        // Push, SwapBin pair, Dup
  EXPECT_EQ(span.tail, kSpanTailJumpI);
  EXPECT_EQ(span.ops, 6u);          // 4 body ops + both tail halves
  EXPECT_EQ(span.stack_require, 1u);
  EXPECT_EQ(span.stack_peak, 2u);
  // The tail's gas rides in the summary: body plus both fused halves.
  const std::uint64_t want_gas =
      std::uint64_t{p.insts[2].gas} + p.insts[3].gas + p.insts[3].gas2 +
      p.insts[5].gas + p.insts[6].gas + p.insts[6].gas2;
  EXPECT_EQ(span.static_gas, want_gas);
  ASSERT_EQ(p.insts[span.first + span.count].handler, Handler::PushJumpI);
  EXPECT_EQ(p.insts[span.first + span.count].target, 1u);

  // A body-less block can still earn a span from its tail alone: JUMPDEST;
  // PUSH1 0; JUMP (a statically-resolved self-loop).
  const DecodedProgram loop = translate(Bytes{0x5b, 0x60, 0x00, 0x56}, kTiny);
  ASSERT_EQ(loop.spans.size(), 1u);
  EXPECT_EQ(loop.spans[0].count, 0u);
  EXPECT_EQ(loop.spans[0].tail, kSpanTailJump);
  EXPECT_EQ(loop.spans[0].ops, 2u);

  // An unresolvable target keeps the jump on the checked path (it can
  // fail InvalidJump): PUSH1 1; POP; PUSH1 9; JUMP — 9 is not a JUMPDEST.
  const DecodedProgram bad =
      translate(Bytes{0x60, 0x01, 0x50, 0x60, 0x09, 0x56}, kTiny);
  ASSERT_NE(bad.entry_span, kNoJumpTarget);
  EXPECT_EQ(bad.spans[bad.entry_span].count, 2u);
  EXPECT_EQ(bad.spans[bad.entry_span].tail, kSpanTailNone);
}

TEST(Analysis, AttachIsIdempotent) {
  DecodedProgram p = translate(
      Bytes{0x60, 0x0a, 0x5b, 0x60, 0x01, 0x90, 0x03, 0x80, 0x60, 0x02,
            0x57, 0x50},
      kTiny);
  const std::size_t spans = p.spans.size();
  const std::uint32_t entry = p.entry_span;
  attach_elide_spans(p);
  EXPECT_EQ(p.spans.size(), spans);
  EXPECT_EQ(p.entry_span, entry);
}

// --- whole-contract dataflow: jump resolution, pruning, loops, WCET ------

// The canonical DUP-fed counting loop: the jump target is pushed once
// before the loop and DUPed to the top each iteration, so the JUMPI is a
// plain dynamic branch until the constant dataflow proves its operand.
//   PUSH1 4; PUSH1 10; JUMPDEST; PUSH1 1; SWAP1; SUB; DUP1; DUP3; JUMPI;
//   POP; POP; STOP
const Bytes kDupFedLoop{0x60, 0x04, 0x60, 0x0a, 0x5b, 0x60, 0x01, 0x90,
                        0x03, 0x80, 0x82, 0x57, 0x50, 0x50, 0x00};

TEST(Analysis, ResolvesConstantFedDynamicJump) {
  // PUSH1 5; DUP1; POP; JUMP; JUMPDEST; STOP — the PUSH is separated from
  // the JUMP by the DUP/POP shuffle, so translation cannot fuse it; only
  // the abstract-stack propagation can prove the target.
  const AnalysisReport report =
      analyze_hexless({0x60, 0x05, 0x80, 0x50, 0x56, 0x5b, 0x00});
  ASSERT_EQ(report.blocks.size(), 2u);
  const BasicBlock& entry = report.blocks[0];
  EXPECT_TRUE(entry.dynamic_exit);
  EXPECT_TRUE(entry.resolved);
  ASSERT_EQ(entry.target, 1u);
  EXPECT_EQ(report.blocks[1].pc, 5u);
  EXPECT_EQ(report.resolved_jumps, 1u);
  EXPECT_EQ(report.unresolved_jumps, 0u);
  // The resolved edge carries a concrete entry height: push+dup put two
  // copies up, pop and the jump itself consume them both.
  EXPECT_EQ(report.blocks[1].entry_height, 0);
  EXPECT_TRUE(report.clean());
}

TEST(Analysis, ResolvesThroughDupSwapChain) {
  // PUSH1 8; PUSH1 1; PUSH1 2; SWAP2; JUMP; JUMPDEST; POP; POP; STOP —
  // the target travels from under two other values via SWAP2.
  const AnalysisReport report = analyze_hexless(
      {0x60, 0x08, 0x60, 0x01, 0x60, 0x02, 0x91, 0x56, 0x5b, 0x50, 0x50,
       0x00});
  ASSERT_EQ(report.blocks.size(), 2u);
  EXPECT_TRUE(report.blocks[0].dynamic_exit);
  EXPECT_TRUE(report.blocks[0].resolved);
  ASSERT_EQ(report.blocks[0].target, 1u);
  EXPECT_EQ(report.blocks[1].pc, 8u);
  EXPECT_EQ(report.resolved_jumps, 1u);
  EXPECT_TRUE(report.clean());
}

TEST(Analysis, UnresolvedJumpStaysConservative) {
  // The DynamicJumpReachesEveryJumpdest shape must stay unresolved: the
  // operand is CALLDATASIZE, not a propagated constant, and the sink
  // keeps every JUMPDEST reachable with unknown heights.
  const AnalysisReport report =
      analyze_hexless({0x36, 0x56, 0x5b, 0x00, 0x5b, 0x00});
  EXPECT_FALSE(report.blocks[0].resolved);
  EXPECT_EQ(report.resolved_jumps, 0u);
  EXPECT_EQ(report.unresolved_jumps, 1u);
  EXPECT_EQ(report.dead_blocks, 0u);
  EXPECT_FALSE(report.wcet.gas.certified);
  EXPECT_FALSE(report.wcet.stack.certified);
}

TEST(Analysis, DeadBlockPruning) {
  // PUSH1 5; DUP1; POP; JUMP; JUMPDEST; STOP; JUMPDEST; PUSH1 1; POP;
  // STOP — once the dynamic jump resolves to pc 5, the block at pc 7 has
  // no predecessor left and is proven dead.
  const Bytes code{0x60, 0x05, 0x80, 0x50, 0x56, 0x5b, 0x00,
                   0x5b, 0x60, 0x01, 0x50, 0x00};
  const DecodedProgram p = translate(code, kTiny);
  AnalysisOptions opt;
  opt.stack_limit = 96;
  opt.code = code;
  const AnalysisReport report = analyze(p, opt);
  ASSERT_EQ(report.blocks.size(), 3u);
  EXPECT_TRUE(report.blocks[1].reachable);
  EXPECT_FALSE(report.blocks[2].reachable);
  EXPECT_EQ(report.dead_blocks, 1u);
  EXPECT_EQ(report.dead_slots, report.blocks[2].count);
  EXPECT_TRUE(has_diag(report, Diagnostic::Kind::UnreachableBlock));

  // The translator mirrors the proof: the dead JUMPDEST leader carries
  // the dead flag and owns no elide span, while the live one keeps its
  // JUMPDEST validity (it stays a legal checked-dispatch jump target).
  const DecodedInst& dead_leader = p.insts[report.blocks[2].first];
  ASSERT_EQ(dead_leader.handler, Handler::JumpDest);
  EXPECT_NE(dead_leader.aux2 & kJumpDestDeadFlag, 0);
  EXPECT_EQ(dead_leader.target, kNoJumpTarget);
  EXPECT_EQ(p.analysis.dead_blocks, report.dead_blocks);
  EXPECT_EQ(p.analysis.dead_slots, report.dead_slots);
  EXPECT_EQ(p.analysis.resolved_jumps, report.resolved_jumps);
}

TEST(Analysis, WcetBoundedCountingLoop) {
  const AnalysisReport report = analyze_hexless(kDupFedLoop);
  ASSERT_EQ(report.blocks.size(), 3u);
  ASSERT_EQ(report.loops.size(), 1u);
  const LoopInfo& loop = report.loops[0];
  EXPECT_EQ(loop.header, 1u);
  EXPECT_TRUE(loop.bounded);
  EXPECT_EQ(loop.trip_bound, 10u);
  EXPECT_FALSE(report.irreducible);

  ASSERT_TRUE(report.wcet.gas.certified);
  ASSERT_TRUE(report.wcet.cycles.certified);
  ASSERT_TRUE(report.wcet.ops.certified);
  ASSERT_TRUE(report.wcet.stack.certified);
  // Worst case is exactly: entry once, loop body ten times, exit once.
  EXPECT_EQ(report.wcet.gas.bound,
            report.blocks[0].static_gas + 10 * report.blocks[1].static_gas +
                report.blocks[2].static_gas);
  EXPECT_EQ(report.wcet.ops.bound,
            report.blocks[0].ops + 10 * std::uint64_t{report.blocks[1].ops} +
                report.blocks[2].ops);
  EXPECT_EQ(report.wcet.cycles.bound,
            report.blocks[0].cycles + 10 * report.blocks[1].cycles +
                report.blocks[2].cycles);
  // Peak stack: [dest, counter] plus the two DUPs inside the body.
  EXPECT_EQ(report.wcet.stack.bound, 4u);
}

TEST(Analysis, WcetUnboundedCalldataLoop) {
  // CALLDATASIZE seeds the counter, so the trip prover has no constant
  // initial value: the loop structure is found but stays unbounded, and
  // only the stack dimension certifies.
  // CALLDATASIZE; JUMPDEST; PUSH1 1; SWAP1; SUB; DUP1; PUSH1 1; JUMPI;
  // STOP
  const AnalysisReport report = analyze_hexless(
      {0x36, 0x5b, 0x60, 0x01, 0x90, 0x03, 0x80, 0x60, 0x01, 0x57, 0x00});
  ASSERT_EQ(report.loops.size(), 1u);
  EXPECT_FALSE(report.loops[0].bounded);
  EXPECT_FALSE(report.wcet.gas.certified);
  EXPECT_FALSE(report.wcet.cycles.certified);
  EXPECT_FALSE(report.wcet.ops.certified);
  EXPECT_FALSE(report.wcet.gas.reason.empty());
  EXPECT_TRUE(report.wcet.stack.certified);
}

TEST(Analysis, SelfLoopWithoutCounterIsUnbounded) {
  // JUMPDEST; PUSH1 0; JUMP — a statically-resolved self-loop spins
  // forever: the latch is unconditional, so no trip bound exists.
  const AnalysisReport report = analyze_hexless({0x5b, 0x60, 0x00, 0x56});
  ASSERT_EQ(report.loops.size(), 1u);
  EXPECT_FALSE(report.loops[0].bounded);
  EXPECT_FALSE(report.wcet.ops.certified);
  EXPECT_TRUE(report.wcet.stack.certified);
}

TEST(Analysis, IrreducibleCfgBlocksCertification) {
  // Two JUMPDESTs jumping at each other with separate entries from the
  // entry branch: a loop with two headers, hence no dominator back edge
  // and irreducible control flow.
  // CALLDATASIZE; PUSH1 7; JUMPI; PUSH1 11; JUMP;
  // A(7): JUMPDEST; PUSH1 11; JUMP;  B(11): JUMPDEST; PUSH1 7; JUMP
  const AnalysisReport report = analyze_hexless(
      {0x36, 0x60, 0x07, 0x57, 0x60, 0x0b, 0x56, 0x5b, 0x60, 0x0b, 0x56,
       0x5b, 0x60, 0x07, 0x56});
  EXPECT_TRUE(report.irreducible);
  EXPECT_FALSE(report.wcet.gas.certified);
  EXPECT_FALSE(report.wcet.cycles.certified);
  EXPECT_FALSE(report.wcet.ops.certified);
  // Heights still agree on every merge, so the stack dimension holds.
  EXPECT_TRUE(report.wcet.stack.certified);
}

TEST(Analysis, SpanWidensAcrossResolvedBackEdge) {
  // The DUP-fed loop's body ends in a plain JUMPI the dataflow resolved,
  // so the span swallows the whole body including the back edge — the
  // formerly-dynamic branch becomes a one-slot span tail.
  const DecodedProgram p = translate(kDupFedLoop, kTiny);
  ASSERT_EQ(p.spans.size(), 2u);  // entry block + loop body
  const DecodedInst& leader = p.insts[2];  // JUMPDEST at pc 4
  ASSERT_EQ(leader.handler, Handler::JumpDest);
  ASSERT_NE(leader.target, kNoJumpTarget);
  const ElideSpan& span = p.spans[leader.target];
  EXPECT_EQ(span.tail, kSpanTailDynJumpI);
  // Body: Push, Swap+Sub pair, Dup1, Dup3 = 5 slots / 5 ops, then the
  // one-slot JumpI tail.
  EXPECT_EQ(span.count, 5u);
  EXPECT_EQ(span.ops, 6u);
  const DecodedInst& tail = p.insts[span.first + span.count];
  ASSERT_EQ(tail.handler, Handler::JumpI);
  ASSERT_NE(tail.target, kNoJumpTarget);
  EXPECT_EQ(p.insts[tail.target].handler, Handler::JumpDest);
  EXPECT_EQ(p.insts[tail.target].pc, 4u);
  // The summary the cache aggregates counts the widened coverage.
  EXPECT_EQ(p.analysis.resolved_jumps, 1u);
  EXPECT_GT(p.analysis.span_slots, 0u);
}

TEST(Analysis, StackEffectMatchesOpcodeTable) {
  // For every executable single opcode, the analyzer's require/delta must
  // agree with the opcode table's operand counts under both profiles.
  for (const TranslationProfile& profile : {kTiny, kEth}) {
    for (unsigned op = 0; op < 256; ++op) {
      const auto byte = static_cast<std::uint8_t>(op);
      if (classify(byte, profile.tiny_profile, profile.iot_opcodes,
                   profile.block_opcodes) != OpValidity::Ok) {
        continue;
      }
      const DecodedProgram p = translate(Bytes{byte}, profile);
      ASSERT_EQ(p.insts.size(), 1u);
      const StackEffect ef = stack_effect(p.insts[0]);
      const OpInfo& inf = info(byte);
      EXPECT_EQ(ef.require, inf.stack_in) << inf.name;
      EXPECT_EQ(ef.delta, inf.stack_out - inf.stack_in) << inf.name;
      EXPECT_GE(ef.peak, std::max(ef.delta, 0)) << inf.name;
    }
  }
}

TEST(Analysis, FusedPairsPreserveStackEffects) {
  // Fusion must not change a pair's stack algebra: compare each fused
  // head's effect against the sequential fold of its two halves.
  struct Pair {
    Bytes code;
    StackEffect expect;
  };
  const Pair pairs[] = {
      {{0x60, 0x01, 0x01}, {1, 0, 1}},        // PUSH+ADD
      {{0x80, 0x02}, {1, 0, 1}},              // DUP1+MUL
      {{0x82, 0x16}, {3, 0, 1}},              // DUP3+AND
      {{0x90, 0x03}, {2, -1, 0}},             // SWAP1+SUB
      {{0x60, 0x04, 0x56}, {0, 0, 1}},        // PUSH+JUMP
      {{0x60, 0x04, 0x57}, {1, -1, 1}},       // PUSH+JUMPI
  };
  for (const Pair& pair : pairs) {
    const DecodedProgram p = translate(pair.code, kTiny);
    ASSERT_GE(p.insts.size(), 1u);
    const StackEffect ef = stack_effect(p.insts[0]);
    EXPECT_EQ(ef.require, pair.expect.require);
    EXPECT_EQ(ef.delta, pair.expect.delta);
    EXPECT_EQ(ef.peak, pair.expect.peak);
  }
}

TEST(Analysis, RobustOnGarbage) {
  // The analyzer must hold its partition invariant (blocks exactly cover
  // the stream) and never crash on arbitrary bytes.
  std::mt19937_64 rng(20200711);
  for (int round = 0; round < 200; ++round) {
    Bytes code(1 + rng() % 384);
    for (auto& b : code) b = static_cast<std::uint8_t>(rng());
    const TranslationProfile profile = (round % 2) != 0 ? kEth : kTiny;
    const DecodedProgram p = translate(code, profile);
    AnalysisOptions opt;
    opt.stack_limit = (round % 2) != 0 ? 1024 : 96;
    opt.code = code;
    const AnalysisReport report = analyze(p, opt);
    std::size_t covered = 0;
    for (const BasicBlock& b : report.blocks) {
      ASSERT_EQ(b.first, covered);  // contiguous, in order
      covered += b.count;
    }
    ASSERT_EQ(covered, p.insts.size());
    for (const ElideSpan& span : p.spans) {
      const bool fused_tail =
          span.tail == kSpanTailJump || span.tail == kSpanTailJumpI;
      const bool dyn_tail =
          span.tail == kSpanTailDynJump || span.tail == kSpanTailDynJumpI;
      const std::uint32_t tail_slots = fused_tail ? 2u : dyn_tail ? 1u : 0u;
      ASSERT_LE(span.first + span.count + tail_slots, p.insts.size());
      ASSERT_GE(span.count + tail_slots, kMinElideSpanSlots);
      if (fused_tail) {
        const DecodedInst& t = p.insts[span.first + span.count];
        ASSERT_TRUE(t.handler == Handler::PushJump ||
                    t.handler == Handler::PushJumpI);
        ASSERT_NE(t.target, kNoJumpTarget);
      }
      if (dyn_tail) {
        // A plain JUMP/JUMPI tail is only attachable when the dataflow
        // resolved its stack operand to one proven JUMPDEST.
        const DecodedInst& t = p.insts[span.first + span.count];
        ASSERT_TRUE(t.handler == Handler::Jump ||
                    t.handler == Handler::JumpI);
        ASSERT_NE(t.target, kNoJumpTarget);
        ASSERT_LT(t.target, p.insts.size());
        ASSERT_EQ(p.insts[t.target].handler, Handler::JumpDest);
      }
    }
  }
}

}  // namespace
}  // namespace tinyevm::evm
