// Parallel corpus deployment: bit-identical outcomes vs the serial loop at
// any worker count, shared-cache counter invariants, duplicate-translation
// accounting under contention (the CodeCache loser path), and the
// thread-pool primitives underneath. This suite — with evm_code_cache_test
// — is what the TSan CI rung runs.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "corpus/corpus.hpp"
#include "corpus/parallel.hpp"
#include "evm/code_cache.hpp"
#include "runtime/thread_pool.hpp"

namespace tinyevm::corpus {
namespace {

GeneratorConfig small_config(std::size_t count) {
  GeneratorConfig cfg;
  cfg.count = count;
  return cfg;
}

std::vector<DeploymentOutcome> deploy_serial(
    const Generator& g, const evm::VmConfig& config,
    std::shared_ptr<evm::CodeCache> cache) {
  std::vector<DeploymentOutcome> out;
  out.reserve(g.config().count);
  for (std::size_t i = 0; i < g.config().count; ++i) {
    out.push_back(deploy_on_device(g.make(i), config, cache));
  }
  return out;
}

void expect_outcomes_equal(const std::vector<DeploymentOutcome>& serial,
                           const std::vector<DeploymentOutcome>& parallel,
                           std::size_t workers) {
  ASSERT_EQ(serial.size(), parallel.size()) << "workers=" << workers;
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(serial[i] == parallel[i])
        << "workers=" << workers << " contract=" << i
        << " status=" << evm::to_string(parallel[i].status)
        << " cycles=" << parallel[i].mcu_cycles << " vs "
        << serial[i].mcu_cycles;
  }
}

// ---------------------------------------------------------------------------
// Parallel vs serial equality
// ---------------------------------------------------------------------------

TEST(ParallelDeploy, MatchesSerialOutcomesAtEveryWorkerCount) {
  const Generator g{small_config(120)};
  const auto config = evm::VmConfig::tiny();
  const auto serial =
      deploy_serial(g, config, std::make_shared<evm::CodeCache>());

  for (const std::size_t workers :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    ParallelDeployConfig pcfg;
    pcfg.workers = workers;
    pcfg.code_cache = std::make_shared<evm::CodeCache>();
    const auto parallel = deploy_corpus_parallel(g, config, pcfg);
    expect_outcomes_equal(serial, parallel, workers);
  }
}

TEST(ParallelDeploy, StreamingModeMatchesSerialOutcomes) {
  // Cache-bypass mode executes through the raw threaded loop; results must
  // still be bit-identical (the raw loop is the semantic reference).
  const Generator g{small_config(60)};
  const auto config = evm::VmConfig::tiny();
  const auto serial =
      deploy_serial(g, config, std::make_shared<evm::CodeCache>());

  ParallelDeployConfig pcfg;
  pcfg.workers = 4;
  pcfg.use_translation_cache = false;
  const auto parallel = deploy_corpus_parallel(g, config, pcfg);
  expect_outcomes_equal(serial, parallel, 4);
}

TEST(ParallelDeploy, ReusesACallerProvidedPool) {
  const Generator g{small_config(40)};
  const auto config = evm::VmConfig::tiny();
  const auto serial =
      deploy_serial(g, config, std::make_shared<evm::CodeCache>());

  runtime::ThreadPool pool{4};
  ParallelDeployConfig pcfg;
  pcfg.code_cache = std::make_shared<evm::CodeCache>();
  // Two consecutive runs over the same pool: pool state is reusable and
  // the second (cache-warm) run is still identical.
  const auto first = deploy_corpus_parallel(pool, g, config, pcfg);
  const auto second = deploy_corpus_parallel(pool, g, config, pcfg);
  expect_outcomes_equal(serial, first, 4);
  expect_outcomes_equal(serial, second, 4);
  // The second pass re-deployed the same corpus: the shared cache serves
  // hits (modulo whatever the byte cap evicted between passes).
  EXPECT_GT(pcfg.code_cache->stats().hits, 0u);
}

TEST(ParallelDeploy, EmptyCorpusIsSafe) {
  const Generator g{small_config(0)};
  ParallelDeployConfig pcfg;
  pcfg.workers = 4;
  pcfg.code_cache = std::make_shared<evm::CodeCache>();
  EXPECT_TRUE(
      deploy_corpus_parallel(g, evm::VmConfig::tiny(), pcfg).empty());
}

// ---------------------------------------------------------------------------
// Shared-cache stat invariants
// ---------------------------------------------------------------------------

TEST(ParallelDeploy, SharedCacheStatsAreConsistent) {
  const Generator g{small_config(100)};
  ParallelDeployConfig pcfg;
  pcfg.workers = 4;
  pcfg.code_cache = std::make_shared<evm::CodeCache>();
  const auto outcomes =
      deploy_corpus_parallel(g, evm::VmConfig::tiny(), pcfg);
  ASSERT_EQ(outcomes.size(), 100u);

  const auto stats = pcfg.code_cache->stats();
  // Every deployment consults the cache exactly once, and each lookup
  // resolves as exactly one of hit / miss / oversized.
  EXPECT_EQ(stats.lookups, 100u);
  EXPECT_EQ(stats.hits + stats.misses + stats.oversized, stats.lookups);
  // 100 unique contracts, each deployed once: no lookup can hit.
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_LE(stats.bytes, pcfg.code_cache->config().capacity_bytes);
  EXPECT_GT(stats.entries, 0u);
}

// ---------------------------------------------------------------------------
// Many threads, one contract: the get_or_translate loser path
// ---------------------------------------------------------------------------

TEST(CodeCacheContention, DupTranslationsBoundedAndResultsIdentical) {
  const Generator g{small_config(10)};
  const Contract contract = g.make(3);  // a typical light constructor
  const auto config = evm::VmConfig::tiny();
  const auto reference =
      deploy_on_device(contract, config, std::make_shared<evm::CodeCache>());

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kItersPerThread = 8;
  auto cache = std::make_shared<evm::CodeCache>();
  std::vector<std::vector<DeploymentOutcome>> results(kThreads);

  // All workers start together to maximize the chance several of them race
  // through the translate-outside-the-lock window at once.
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      DeviceDeployer deployer{config, cache};
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (std::size_t i = 0; i < kItersPerThread; ++i) {
        results[t].push_back(deployer.deploy(contract));
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();

  for (std::size_t t = 0; t < kThreads; ++t) {
    ASSERT_EQ(results[t].size(), kItersPerThread);
    for (const auto& outcome : results[t]) {
      EXPECT_TRUE(outcome == reference) << "thread " << t;
    }
  }

  const auto stats = cache->stats();
  EXPECT_EQ(stats.entries, 1u);  // one contract, one resident translation
  EXPECT_EQ(stats.lookups, kThreads * kItersPerThread);
  EXPECT_EQ(stats.hits + stats.misses + stats.oversized, stats.lookups);
  // At most one miss per thread (each thread's first lookup may race), and
  // every duplicate translation has a distinct losing thread behind it.
  EXPECT_GE(stats.misses, 1u);
  EXPECT_LE(stats.misses, kThreads);
  EXPECT_LT(stats.dup_translations, kThreads);
  EXPECT_EQ(stats.dup_translations + 1 + stats.hits, stats.lookups);
}

TEST(CodeCacheContention, RacingRawLookupsShareOneTranslation) {
  const Generator g{small_config(10)};
  const Contract contract = g.make(5);
  auto cache = std::make_shared<evm::CodeCache>();
  const evm::TranslationProfile profile{};

  constexpr std::size_t kThreads = 8;
  std::vector<std::shared_ptr<const evm::DecodedProgram>> seen(kThreads);
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      seen[t] = cache->get_or_translate(contract.init_code, profile,
                                        &contract.init_code_hash);
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();

  // Winner or loser, every caller must come away holding the same cached
  // translation object.
  ASSERT_NE(seen[0], nullptr);
  for (std::size_t t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[t].get(), seen[0].get()) << "thread " << t;
  }
  const auto stats = cache->stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.lookups, kThreads);
  EXPECT_LT(stats.dup_translations, kThreads);
}

// ---------------------------------------------------------------------------
// Thread-pool primitives
// ---------------------------------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedTask) {
  runtime::ThreadPool pool{4};
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, DefaultsToHardwareThreads) {
  runtime::ThreadPool pool;
  EXPECT_EQ(pool.thread_count(), runtime::ThreadPool::hardware_threads());
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  runtime::ThreadPool pool{4};
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> visits(kCount);
  runtime::parallel_for(pool, kCount, 7, [&](std::size_t i) {
    visits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << i;
  }
}

TEST(ThreadPool, RunTasksPropagatesTheFirstException) {
  runtime::ThreadPool pool{2};
  std::atomic<int> ran{0};
  EXPECT_THROW(
      runtime::run_tasks(pool, 4,
                         [&](std::size_t t) {
                           ran.fetch_add(1, std::memory_order_relaxed);
                           if (t == 2) throw std::runtime_error("boom");
                         }),
      std::runtime_error);
  EXPECT_EQ(ran.load(), 4);  // the failure doesn't cancel the other tasks
}

TEST(ThreadPool, ReusableAcrossBatches) {
  runtime::ThreadPool pool{3};
  std::atomic<int> count{0};
  for (int round = 0; round < 3; ++round) {
    runtime::run_tasks(pool, 5, [&](std::size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(count.load(), 15);
  runtime::parallel_for(pool, 10, 1, [&](std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 25);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    runtime::ThreadPool pool{1};
    for (int i = 0; i < 50; ++i) {
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // ~ThreadPool joins after the queue is drained
  EXPECT_EQ(count.load(), 50);
}

}  // namespace
}  // namespace tinyevm::corpus
