// Device-model tests: Energest accounting against the paper's Table IV
// arithmetic, TSCH link timing, trace recording, crypto latencies (Table V),
// and the memory-footprint report (Table III).
#include <gtest/gtest.h>

#include "device/footprint.hpp"
#include "device/mote.hpp"

namespace tinyevm::device {
namespace {

TEST(Energest, EnergyMatchesTable4Arithmetic) {
  // Table IV: 350 ms on the crypto engine at 26 mA and 2.1 V = 19.1 mJ.
  Energest e;
  e.accumulate(PowerState::CryptoEngine, 350'000);
  EXPECT_NEAR(e.energy_mj(PowerState::CryptoEngine), 19.1, 0.05);

  // TX: 32 ms @ 24 mA -> 1.6 mJ.
  e.accumulate(PowerState::Tx, 32'000);
  EXPECT_NEAR(e.energy_mj(PowerState::Tx), 1.6, 0.02);

  // RX: 52 ms @ 20 mA -> 2.18 mJ (the paper rounds to 2.1).
  e.accumulate(PowerState::Rx, 52'000);
  EXPECT_NEAR(e.energy_mj(PowerState::Rx), 2.18, 0.05);

  // CPU: 150 ms @ 13 mA -> 4.1 mJ.
  e.accumulate(PowerState::CpuActive, 150'000);
  EXPECT_NEAR(e.energy_mj(PowerState::CpuActive), 4.1, 0.05);

  // LPM2: 982 ms @ 1.3 mA -> 2.7 mJ.
  e.accumulate(PowerState::Lpm2, 982'000);
  EXPECT_NEAR(e.energy_mj(PowerState::Lpm2), 2.7, 0.05);

  // Total: 29.6 mJ over 1,566 ms.
  EXPECT_NEAR(e.total_energy_mj(), 29.6, 0.2);
  EXPECT_NEAR(static_cast<double>(e.total_time_us()) / 1000.0, 1566.0, 0.2);
}

TEST(Energest, QuantizesToTimerResolution) {
  Energest e;
  e.accumulate(PowerState::CpuActive, 95);  // below two 30 us ticks
  EXPECT_EQ(e.time_us(PowerState::CpuActive), 90u);
}

TEST(Energest, ResetClearsAll) {
  Energest e;
  e.accumulate(PowerState::Tx, 1000);
  e.reset();
  EXPECT_EQ(e.total_time_us(), 0u);
  EXPECT_EQ(e.total_energy_mj(), 0.0);
}

TEST(Mote, SpendAdvancesClockAndTrace) {
  Mote m("car");
  m.spend(PowerState::CpuActive, 500);
  m.spend(PowerState::Tx, 300);
  EXPECT_EQ(m.now_us(), 800u);
  ASSERT_EQ(m.trace().size(), 2u);
  EXPECT_EQ(m.trace()[0].state, PowerState::CpuActive);
  EXPECT_EQ(m.trace()[0].current_ma, CurrentDraw::kCpuActiveMa);
  EXPECT_EQ(m.trace()[1].start_us, 500u);
}

TEST(Mote, CpuCyclesConvertAtCoreClock) {
  Mote m("car");
  m.spend_cpu_cycles(Cc2538Spec::kCpuHz / 1000);  // 1 ms worth
  EXPECT_EQ(m.now_us(), 1000u);
}

TEST(Mote, SleepUntilFillsWithLpm2) {
  Mote m("car");
  m.spend(PowerState::CpuActive, 100);
  m.sleep_until(1000);
  EXPECT_EQ(m.now_us(), 1000u);
  EXPECT_EQ(m.energest().time_us(PowerState::Lpm2), 900u);
  m.sleep_until(500);  // past times are no-ops
  EXPECT_EQ(m.now_us(), 1000u);
}

TEST(Mote, CryptoLatenciesMatchTable5) {
  // Reported times are quantized to the 30 us Energest tick, so compare
  // within one tick.
  const auto near_tick = [](std::uint64_t actual, std::uint64_t expected) {
    return actual <= expected &&
           expected - actual < Energest::kTimerResolutionUs;
  };
  Mote m("car");
  m.ecdsa_sign_latency();
  EXPECT_TRUE(near_tick(m.energest().time_us(PowerState::CryptoEngine),
                        CryptoLatency::kEcdsaSignUs));
  m.sha256_latency();
  EXPECT_TRUE(near_tick(m.energest().time_us(PowerState::CryptoEngine),
                        CryptoLatency::kEcdsaSignUs +
                            CryptoLatency::kSha256Us));
  // Keccak runs in software: CPU time, not engine time.
  const auto cpu_before = m.energest().time_us(PowerState::CpuActive);
  m.keccak256_latency();
  EXPECT_TRUE(near_tick(m.energest().time_us(PowerState::CpuActive),
                        cpu_before + CryptoLatency::kKeccak256Us));
}

TEST(TschLink, SingleFrameTransfer) {
  Mote a("car");
  Mote b("lot");
  TschLink link(a, b);
  const std::uint64_t elapsed = link.transfer(a, 40);
  EXPECT_GT(elapsed, 0u);
  // Sender spent TX, receiver RX, clocks aligned.
  EXPECT_GT(a.energest().time_us(PowerState::Tx), 0u);
  EXPECT_EQ(a.energest().time_us(PowerState::Rx), 0u);
  EXPECT_GT(b.energest().time_us(PowerState::Rx), 0u);
  EXPECT_EQ(a.now_us(), b.now_us());
}

TEST(TschLink, FragmentsLargePayloads) {
  EXPECT_EQ(TschLink::frames_needed(40), 1u);
  EXPECT_EQ(TschLink::frames_needed(106), 1u);
  EXPECT_EQ(TschLink::frames_needed(107), 2u);
  EXPECT_EQ(TschLink::frames_needed(500), 5u);
}

TEST(TschLink, MultiFrameTakesLonger) {
  Mote a1("a1");
  Mote b1("b1");
  TschLink l1(a1, b1);
  const auto small = l1.transfer(a1, 40);

  Mote a2("a2");
  Mote b2("b2");
  TschLink l2(a2, b2);
  const auto large = l2.transfer(a2, 400);
  EXPECT_GT(large, small);
}

TEST(TschLink, TransfersAlignToTimeslots) {
  Mote a("a");
  Mote b("b");
  a.spend(PowerState::CpuActive, 12'345);  // desync the clocks
  TschLink link(a, b);
  link.transfer(a, 40);
  // The transfer started at the next 10 ms boundary after 12,345 us, so
  // the receiver idled in LPM2 until then.
  EXPECT_GT(b.energest().time_us(PowerState::Lpm2), 19'000u);
}

TEST(TschLink, RadioTimeAtTable4Scale) {
  // A full round exchanges roughly: sensor data both ways + signed state +
  // two signatures. TX time on one mote should land in the tens of ms, as
  // Table IV reports (32 ms TX / 52 ms RX).
  Mote car("car");
  Mote lot("lot");
  TschLink link(car, lot);
  link.transfer(car, 40);    // sensor data out
  link.transfer(lot, 40);    // sensor data in
  link.transfer(car, 129);   // signed state
  link.transfer(lot, 65);    // counter-signature
  link.transfer(car, 65);    // closing signature
  link.transfer(lot, 65);    // closing signature back
  const double tx_ms = car.energest().time_ms(PowerState::Tx);
  const double rx_ms = car.energest().time_ms(PowerState::Rx);
  EXPECT_GT(tx_ms, 5.0);
  EXPECT_LT(tx_ms, 60.0);
  EXPECT_GT(rx_ms, 5.0);
  EXPECT_LT(rx_ms, 80.0);
}

TEST(Footprint, Table3Shape) {
  const auto report = footprint_report(evm::VmConfig::tiny(), 2035);
  ASSERT_EQ(report.rows.size(), 3u);

  const auto& os = report.rows[0];
  EXPECT_EQ(os.ram_bytes, ContikiFootprint::kOsRamBytes);
  EXPECT_EQ(os.rom_bytes, ContikiFootprint::kOsRomBytes);
  EXPECT_NEAR(os.ram_percent(), 33.0, 2.0);

  const auto& vm = report.rows[1];
  // Paper: TinyEVM 13,286 B RAM (42 %), ~1.9 KB ROM.
  EXPECT_NEAR(vm.ram_percent(), 42.0, 4.0);
  EXPECT_GT(vm.ram_bytes, 12'000u);
  EXPECT_LT(vm.ram_bytes, 14'500u);
  EXPECT_GT(vm.rom_bytes, 1'500u);
  EXPECT_LT(vm.rom_bytes, 2'500u);

  const auto& tmpl = report.rows[2];
  EXPECT_NEAR(tmpl.ram_percent(), 5.0, 2.0);

  // Total ~80 % of RAM, ~11 % of ROM; the rest is headroom.
  EXPECT_NEAR(report.total().ram_percent(), 80.0, 5.0);
  EXPECT_NEAR(report.total().rom_percent(), 11.0, 3.0);
  EXPECT_NEAR(report.available().ram_percent(), 20.0, 5.0);
}

TEST(Footprint, VmRamScalesWithConfiguration) {
  evm::VmConfig small = evm::VmConfig::tiny();
  small.memory_limit = 4096;
  EXPECT_LT(vm_ram_bytes(small), vm_ram_bytes(evm::VmConfig::tiny()));
}

}  // namespace
}  // namespace tinyevm::device
