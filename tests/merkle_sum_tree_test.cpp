#include "channel/merkle_sum_tree.hpp"

#include <gtest/gtest.h>

namespace tinyevm::channel {
namespace {

Hash256 digest_of(std::uint64_t n) {
  const auto w = U256{n}.to_word();
  return keccak256(w);
}

TEST(MerkleSumTree, EmptyTreeRoot) {
  MerkleSumTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.total(), U256{});
  EXPECT_EQ(tree.root().hash, keccak256(std::string_view{}));
}

TEST(MerkleSumTree, SingleLeafIsRoot) {
  MerkleSumTree tree;
  tree.append(U256{50}, digest_of(1));
  EXPECT_EQ(tree.total(), U256{50});
  EXPECT_EQ(tree.root().hash, digest_of(1));
}

TEST(MerkleSumTree, RootSumsAllLeaves) {
  MerkleSumTree tree;
  for (std::uint64_t i = 1; i <= 10; ++i) {
    tree.append(U256{i * 10}, digest_of(i));
  }
  EXPECT_EQ(tree.total(), U256{550});
  EXPECT_EQ(tree.size(), 10u);
}

TEST(MerkleSumTree, CombineIsOrderSensitive) {
  const SumNode a{U256{1}, digest_of(1)};
  const SumNode b{U256{2}, digest_of(2)};
  EXPECT_NE(MerkleSumTree::combine(a, b).hash,
            MerkleSumTree::combine(b, a).hash);
  EXPECT_EQ(MerkleSumTree::combine(a, b).sum, U256{3});
}

TEST(MerkleSumTree, ProofVerifiesForEveryLeaf) {
  MerkleSumTree tree;
  constexpr std::uint64_t kLeaves = 13;  // odd count exercises fillers
  for (std::uint64_t i = 0; i < kLeaves; ++i) {
    tree.append(U256{i + 1}, digest_of(i));
  }
  const SumNode root = tree.root();
  const U256 cap{10'000};
  for (std::uint64_t i = 0; i < kLeaves; ++i) {
    const auto proof = tree.prove(i);
    ASSERT_TRUE(proof.has_value()) << i;
    EXPECT_TRUE(MerkleSumTree::verify(root, U256{i + 1}, digest_of(i), *proof,
                                      cap))
        << i;
  }
}

TEST(MerkleSumTree, ProofFailsForWrongValue) {
  MerkleSumTree tree;
  for (std::uint64_t i = 0; i < 8; ++i) tree.append(U256{5}, digest_of(i));
  const auto proof = tree.prove(3);
  ASSERT_TRUE(proof.has_value());
  EXPECT_FALSE(MerkleSumTree::verify(tree.root(), U256{6}, digest_of(3),
                                     *proof, U256{1000}));
}

TEST(MerkleSumTree, ProofFailsForWrongDigest) {
  MerkleSumTree tree;
  for (std::uint64_t i = 0; i < 8; ++i) tree.append(U256{5}, digest_of(i));
  const auto proof = tree.prove(3);
  ASSERT_TRUE(proof.has_value());
  EXPECT_FALSE(MerkleSumTree::verify(tree.root(), U256{5}, digest_of(99),
                                     *proof, U256{1000}));
}

TEST(MerkleSumTree, ProofFailsAgainstDifferentRoot) {
  MerkleSumTree tree;
  for (std::uint64_t i = 0; i < 4; ++i) tree.append(U256{1}, digest_of(i));
  const auto proof = tree.prove(0);
  tree.append(U256{1}, digest_of(99));  // root moves on
  ASSERT_TRUE(proof.has_value());
  EXPECT_FALSE(MerkleSumTree::verify(tree.root(), U256{1}, digest_of(0),
                                     *proof, U256{1000}));
}

TEST(MerkleSumTree, SumAuditRejectsOverCap) {
  // The audit condition: any partial sum exceeding the locked funds
  // invalidates the commitment, even with a correct hash path.
  MerkleSumTree tree;
  tree.append(U256{60}, digest_of(0));
  tree.append(U256{70}, digest_of(1));
  const auto proof = tree.prove(0);
  ASSERT_TRUE(proof.has_value());
  // cap=100 < 130 total: the root-level sum breaches the cap.
  EXPECT_FALSE(MerkleSumTree::verify(tree.root(), U256{60}, digest_of(0),
                                     *proof, U256{100}));
  // cap=200 passes.
  EXPECT_TRUE(MerkleSumTree::verify(tree.root(), U256{60}, digest_of(0),
                                    *proof, U256{200}));
}

TEST(MerkleSumTree, LeafValueAboveCapRejectedImmediately) {
  MerkleSumTree tree;
  tree.append(U256{500}, digest_of(0));
  const auto proof = tree.prove(0);
  EXPECT_FALSE(MerkleSumTree::verify(tree.root(), U256{500}, digest_of(0),
                                     *proof, U256{100}));
}

TEST(MerkleSumTree, ProofForWrongIndexFails) {
  // An attacker may not re-aim leaf 5's membership proof at leaf 2's
  // (value, digest): the sibling path encodes the position.
  MerkleSumTree tree;
  for (std::uint64_t i = 0; i < 8; ++i) {
    tree.append(U256{(i + 1) * 7}, digest_of(i));
  }
  const auto proof = tree.prove(5);
  ASSERT_TRUE(proof.has_value());
  EXPECT_FALSE(MerkleSumTree::verify(tree.root(), U256{3 * 7}, digest_of(2),
                                     *proof, U256{10'000}));
  // Sanity: the same proof verifies the leaf it was issued for.
  EXPECT_TRUE(MerkleSumTree::verify(tree.root(), U256{6 * 7}, digest_of(5),
                                    *proof, U256{10'000}));
}

TEST(MerkleSumTree, SiblingSideFlippedFails) {
  // Flipping which side a sibling hangs on swaps the combine order; the
  // combinator is order-sensitive, so every flipped step must fail.
  MerkleSumTree tree;
  for (std::uint64_t i = 0; i < 8; ++i) {
    tree.append(U256{i + 1}, digest_of(i));
  }
  const auto proof = tree.prove(3);
  ASSERT_TRUE(proof.has_value());
  for (std::size_t step = 0; step < proof->size(); ++step) {
    Proof tampered = *proof;
    tampered[step].sibling_on_left = !tampered[step].sibling_on_left;
    EXPECT_FALSE(MerkleSumTree::verify(tree.root(), U256{4}, digest_of(3),
                                       tampered, U256{10'000}))
        << "flipped step " << step;
  }
}

TEST(MerkleSumTree, InflatedSiblingSumFails) {
  // Inflating a sibling's sum (keeping its hash) must break the hash path:
  // sums are committed inside every parent hash, not carried out-of-band.
  MerkleSumTree tree;
  for (std::uint64_t i = 0; i < 4; ++i) {
    tree.append(U256{10}, digest_of(i));
  }
  const auto proof = tree.prove(0);
  ASSERT_TRUE(proof.has_value());
  Proof tampered = *proof;
  tampered[0].sibling.sum = U256{1};  // deflate the neighbour's payment
  EXPECT_FALSE(MerkleSumTree::verify(tree.root(), U256{10}, digest_of(0),
                                     tampered, U256{10'000}));
}

TEST(MerkleSumTree, PartialSumAboveCapRejectedMidPath) {
  // Eight leaves, a hot pair at the front: the leaf itself is under the
  // cap, but its first combine already exceeds it — the audit condition
  // must trip on that inner node, levels before the root comparison could
  // notice anything.
  MerkleSumTree tree;
  tree.append(U256{50}, digest_of(0));
  tree.append(U256{60}, digest_of(1));  // 50 + 60 = 110 > cap at level 1
  for (std::uint64_t i = 2; i < 8; ++i) {
    tree.append(U256{1}, digest_of(i));
  }
  const auto proof = tree.prove(0);
  ASSERT_TRUE(proof.has_value());
  const U256 cap{100};
  EXPECT_FALSE(MerkleSumTree::verify(tree.root(), U256{50}, digest_of(0),
                                     *proof, cap));
  // A sibling leaf whose path stays under the cap longer still fails only
  // at the level where its partial sum crosses: leaf 7's first combine is
  // 1 + 1 = 2, but the root total 116 breaches any cap below it.
  const auto ok_proof = tree.prove(7);
  ASSERT_TRUE(ok_proof.has_value());
  EXPECT_FALSE(MerkleSumTree::verify(tree.root(), U256{1}, digest_of(7),
                                     *ok_proof, cap));
  // With the cap at the true total, both verify.
  EXPECT_TRUE(MerkleSumTree::verify(tree.root(), U256{50}, digest_of(0),
                                    *proof, U256{116}));
  EXPECT_TRUE(MerkleSumTree::verify(tree.root(), U256{1}, digest_of(7),
                                    *ok_proof, U256{116}));
}

TEST(MerkleSumTree, ProveOutOfRangeFails) {
  MerkleSumTree tree;
  tree.append(U256{1}, digest_of(0));
  EXPECT_FALSE(tree.prove(1).has_value());
  EXPECT_FALSE(tree.prove(100).has_value());
}

TEST(MerkleSumTree, AppendReturnsSequentialIndices) {
  MerkleSumTree tree;
  EXPECT_EQ(tree.append(U256{1}, digest_of(0)), 0u);
  EXPECT_EQ(tree.append(U256{1}, digest_of(1)), 1u);
  EXPECT_EQ(tree.append(U256{1}, digest_of(2)), 2u);
}

class MerkleSumTreeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MerkleSumTreeSweep, AllProofsVerifyAtEverySize) {
  const std::size_t n = GetParam();
  MerkleSumTree tree;
  U256 expected_total;
  for (std::size_t i = 0; i < n; ++i) {
    tree.append(U256{i * 3 + 1}, digest_of(i));
    expected_total += U256{i * 3 + 1};
  }
  EXPECT_EQ(tree.total(), expected_total);
  for (std::size_t i = 0; i < n; ++i) {
    const auto proof = tree.prove(i);
    ASSERT_TRUE(proof.has_value());
    EXPECT_TRUE(MerkleSumTree::verify(tree.root(), U256{i * 3 + 1},
                                      digest_of(i), *proof, U256{100'000}));
  }
}

INSTANTIATE_TEST_SUITE_P(TreeSizes, MerkleSumTreeSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 15, 16, 17,
                                           31, 64));

}  // namespace
}  // namespace tinyevm::channel
