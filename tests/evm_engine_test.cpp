// The execution-engine boundary (src/evm/engine.hpp): registry contents
// and ordering, unknown-name rejection, legacy-flag mapping, per-call
// override precedence (observable through the translation-cache counters),
// profile projection, host-callback forwarding, N-way pairwise engine
// equivalence, and registering a fourth engine at runtime.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "channel/manager.hpp"
#include "evm/asm.hpp"
#include "evm/code_cache.hpp"
#include "evm/engine.hpp"
#include "evm/vm.hpp"

namespace tinyevm::evm {
namespace {

Bytes add_program() {
  Assembler a;  // PUSH1 1 PUSH1 2 ADD; leaves 3 on the stack
  a.push(1).push(2).op(Opcode::ADD);
  return a.take();
}

ExecResult run(const VmConfig& config, const Bytes& code,
               std::string engine_override = {},
               std::shared_ptr<CodeCache> cache = nullptr) {
  channel::SensorBank sensors;
  sensors.set_reading(7, U256{22});
  channel::DeviceHost host(sensors, config);
  Vm vm{config, std::move(cache)};
  Message msg;
  msg.code = code;
  msg.engine = std::move(engine_override);
  return vm.execute(host, msg);
}

TEST(EngineRegistry, EnumerationLeadsWithTheBuiltins) {
  const std::vector<std::string> names = EngineRegistry::instance().names();
  ASSERT_GE(names.size(), 3u);
  EXPECT_EQ(names[0], kRawEngine);
  EXPECT_EQ(names[1], kPredecodedEngine);
  EXPECT_EQ(names[2], kElidedEngine);
  for (const std::string& name : names) {
    const ExecutionEngine* engine = EngineRegistry::instance().find(name);
    ASSERT_NE(engine, nullptr) << name;
    EXPECT_EQ(engine->name(), name);
    EXPECT_FALSE(engine->description().empty()) << name;
  }
  EXPECT_FALSE(EngineRegistry::instance().find(kRawEngine)
                   ->uses_translation());
  EXPECT_TRUE(EngineRegistry::instance().find(kPredecodedEngine)
                  ->uses_translation());
  EXPECT_TRUE(EngineRegistry::instance().find(kElidedEngine)
                  ->uses_translation());
}

TEST(EngineRegistry, UnknownNamesAreRejectedEverywhere) {
  EXPECT_EQ(EngineRegistry::instance().find("no-such-engine"), nullptr);
  try {
    (void)EngineRegistry::instance().require("no-such-engine");
    FAIL() << "require() accepted an unknown engine";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-engine"), std::string::npos);
    EXPECT_NE(what.find("raw"), std::string::npos);  // lists the registry
  }

  VmConfig config = VmConfig::tiny();
  config.engine = "no-such-engine";
  EXPECT_THROW(Vm{config}, std::invalid_argument);

  // Per-call override with an unknown name throws from execute().
  channel::SensorBank sensors;
  channel::DeviceHost host(sensors, VmConfig::tiny());
  Vm vm{VmConfig::tiny()};
  Message msg;
  msg.code = add_program();
  msg.engine = "no-such-engine";
  EXPECT_THROW((void)vm.execute(host, msg), std::invalid_argument);
}

TEST(EngineRegistry, LegacyFlagsMapOntoEngines) {
  VmConfig config = VmConfig::tiny();
  config.predecode = false;
  EXPECT_EQ(Vm{config}.engine_name(), kRawEngine);

  config.predecode = true;
  config.elide_checks = false;
  EXPECT_EQ(Vm{config}.engine_name(), kPredecodedEngine);

  config.elide_checks = true;
  EXPECT_EQ(Vm{config}.engine_name(), kElidedEngine);

  // An explicit engine name always beats the legacy flags.
  config.predecode = false;
  config.elide_checks = false;
  config.engine = kElidedEngine;
  EXPECT_EQ(Vm{config}.engine_name(), kElidedEngine);
}

TEST(EngineRegistry, PerCallOverrideBeatsTheConfiguredDefault) {
  // The raw engine never consults the translation cache, so the cache's
  // lookup counter tells us which engine actually ran.
  const Bytes code = add_program();

  auto cache = std::make_shared<CodeCache>();
  VmConfig config = VmConfig::tiny();
  config.engine = kElidedEngine;
  const ExecResult overridden =
      run(config, code, std::string(kRawEngine), cache);
  EXPECT_TRUE(overridden.ok());
  EXPECT_EQ(cache->stats().lookups, 0u) << "override did not reach raw";

  const ExecResult defaulted = run(config, code, {}, cache);
  EXPECT_TRUE(defaulted.ok());
  EXPECT_EQ(cache->stats().lookups, 1u) << "default engine did not run";

  // And the mirror image: a raw default overridden to a translating engine.
  auto cache2 = std::make_shared<CodeCache>();
  VmConfig raw_config = VmConfig::tiny();
  raw_config.engine = kRawEngine;
  (void)run(raw_config, code, std::string(kElidedEngine), cache2);
  EXPECT_EQ(cache2->stats().lookups, 1u);
}

TEST(EngineProfileTest, FromConfigProjectsTheSemanticsFields) {
  VmConfig config = VmConfig::ethereum();
  config.max_ops = 1234;
  const EngineProfile profile = EngineProfile::from_config(config);
  EXPECT_EQ(profile.revision, EngineRevision::Ethereum);
  EXPECT_EQ(profile.stack_limit, config.stack_limit);
  EXPECT_EQ(profile.memory_limit, config.memory_limit);
  EXPECT_EQ(profile.storage_limit, config.storage_limit);
  EXPECT_EQ(profile.metering, config.metering);
  EXPECT_EQ(profile.block_opcodes, config.block_opcodes);
  EXPECT_EQ(profile.iot_opcodes, config.iot_opcodes);
  EXPECT_EQ(profile.gas_introspection, config.gas_introspection);
  EXPECT_EQ(profile.max_call_depth, config.max_call_depth);
  EXPECT_EQ(profile.max_ops, config.max_ops);

  const EngineProfile tiny = EngineProfile::from_config(VmConfig::tiny());
  EXPECT_EQ(tiny.revision, EngineRevision::TinyEvm);
}

TEST(HostInterfaceTest, WrapForwardsToTheVirtualHost) {
  channel::SensorBank sensors;
  sensors.set_reading(3, U256{77});
  const VmConfig config = VmConfig::tiny();
  channel::DeviceHost host(sensors, config);
  const HostInterface iface = HostInterface::wrap(host);

  const Address self{};
  EXPECT_TRUE(iface.sstore(self, U256{5}, U256{99}));
  EXPECT_EQ(iface.sload(self, U256{5}), U256{99});
  EXPECT_EQ(host.sload(self, U256{5}), U256{99});  // same underlying host

  SensorRequest req;
  req.device_id = 3;
  const auto reading = iface.sensor_access(req);
  ASSERT_TRUE(reading.has_value());
  EXPECT_EQ(*reading, U256{77});

  LogEntry entry;
  entry.address = self;
  iface.emit_log(entry);
  EXPECT_EQ(host.logs().size(), 1u);
}

TEST(EngineDifferential, PairwiseSweepAcrossTheRegistry) {
  // A handful of shape-diverse programs, each swept across every engine
  // pair: all engines must agree on every observable result field. The
  // heavyweight corpus/fuzz version of this lives in evm_dispatch_test
  // (goldens) and tools/fuzz_translator.cpp.
  std::vector<Bytes> programs;
  programs.push_back(add_program());
  {
    Assembler a;  // counting loop through a JUMPDEST
    a.push(10);
    a.op(Opcode::JUMPDEST);
    a.push(1).swap(1).op(Opcode::SUB);
    a.dup(1);
    a.push(2).op(Opcode::JUMPI);
    a.op(Opcode::POP);
    programs.push_back(a.take());
  }
  {
    Assembler a;  // memory + storage traffic, RETURN payload
    a.push(0xAB).push(0).op(Opcode::MSTORE);
    a.push(0xCD).push(1).op(Opcode::SSTORE);
    a.push(32).push(0).op(Opcode::RETURN);
    programs.push_back(a.take());
  }
  programs.push_back(Bytes{0x60, 0x01, 0x01});  // PUSH+ADD underflow
  programs.push_back(Bytes{0x7f, 0xAA});        // truncated PUSH32

  const std::vector<std::string> engines = EngineRegistry::instance().names();
  for (const VmConfig& config : {VmConfig::tiny(), VmConfig::ethereum()}) {
    for (std::size_t p = 0; p < programs.size(); ++p) {
      std::vector<ExecResult> results;
      results.reserve(engines.size());
      for (const std::string& engine : engines) {
        VmConfig run_config = config;
        run_config.engine = engine;
        results.push_back(
            run(run_config, programs[p], {}, std::make_shared<CodeCache>()));
      }
      for (std::size_t i = 0; i < results.size(); ++i) {
        for (std::size_t j = i + 1; j < results.size(); ++j) {
          SCOPED_TRACE("program " + std::to_string(p) + ": " + engines[i] +
                       " vs " + engines[j]);
          EXPECT_EQ(results[i].status, results[j].status);
          EXPECT_EQ(results[i].output, results[j].output);
          EXPECT_EQ(results[i].gas_left, results[j].gas_left);
          EXPECT_EQ(results[i].stats.ops_executed,
                    results[j].stats.ops_executed);
          EXPECT_EQ(results[i].stats.mcu_cycles, results[j].stats.mcu_cycles);
          EXPECT_EQ(results[i].stats.max_stack_pointer,
                    results[j].stats.max_stack_pointer);
          EXPECT_EQ(results[i].stats.peak_memory,
                    results[j].stats.peak_memory);
        }
      }
    }
  }
}

/// A fourth engine: delegates to "raw" under a new name — the smallest
/// possible proof that the registry is open for extension.
class MirrorEngine final : public ExecutionEngine {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "test-mirror";
  }
  [[nodiscard]] std::string_view description() const override {
    return "test-only delegate to the raw engine";
  }
  [[nodiscard]] bool uses_translation() const override { return false; }
  [[nodiscard]] EngineResult execute(const HostInterface& host,
                                     const EngineContext& ctx,
                                     const EngineMessage& msg) const override {
    return EngineRegistry::instance().require(kRawEngine).execute(host, ctx,
                                                                  msg);
  }
};

TEST(EngineRegistry, ZRuntimeRegistrationAddsAFourthEngine) {
  // Prefixed Z: registration is permanent (engines are never removed), so
  // this runs after the enumeration/differential tests above. The N-way
  // harnesses pick the new engine up automatically on later runs within
  // this process — which is exactly the promised extension story.
  if (EngineRegistry::instance().find("test-mirror") == nullptr) {
    EXPECT_TRUE(
        EngineRegistry::instance().add(std::make_unique<MirrorEngine>()));
  }
  EXPECT_FALSE(
      EngineRegistry::instance().add(std::make_unique<MirrorEngine>()))
      << "duplicate names must be rejected";

  VmConfig config = VmConfig::tiny();
  config.engine = "test-mirror";
  const ExecResult mirrored = run(config, add_program());

  VmConfig raw_config = VmConfig::tiny();
  raw_config.engine = kRawEngine;
  const ExecResult raw = run(raw_config, add_program());
  EXPECT_EQ(mirrored.status, raw.status);
  EXPECT_EQ(mirrored.output, raw.output);
  EXPECT_EQ(mirrored.stats.ops_executed, raw.stats.ops_executed);
  EXPECT_EQ(mirrored.stats.mcu_cycles, raw.stats.mcu_cycles);
}

}  // namespace
}  // namespace tinyevm::evm
