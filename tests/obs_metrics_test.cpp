// The metrics registry: log2-bucket histogram boundaries, the runtime
// enable gate, instrument interning, scrape-time collectors, and the
// sharded-writer merge (suite ObsMetricsConcurrency runs under TSan in
// CI, alongside the other lock-sensitive suites).
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace tinyevm::obs {
namespace {

/// Scoped runtime enable: each test opts in explicitly and always leaves
/// the process back in the disabled default, so suites sharing this
/// binary never observe each other's instrumentation state.
struct ScopedMetrics {
  ScopedMetrics() { set_metrics_enabled(true); }
  ~ScopedMetrics() { set_metrics_enabled(false); }
};

/// With -DTINYEVM_OBS=OFF the recording paths constant-fold away, so any
/// test asserting that enabling makes instruments record must skip.
#ifdef TINYEVM_OBS_DISABLED
#define TINYEVM_REQUIRE_OBS() \
  GTEST_SKIP() << "telemetry compiled out (-DTINYEVM_OBS=OFF)"
#else
#define TINYEVM_REQUIRE_OBS() (void)0
#endif

// ---------------------------------------------------------------------------
// Histogram bucket arithmetic
// ---------------------------------------------------------------------------

TEST(ObsMetrics, BucketBoundaries) {
  // Bucket i holds samples <= 2^i; 0 and 1 both land in bucket 0 (le=1).
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 0u);
  EXPECT_EQ(Histogram::bucket_of(2), 1u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 2u);
  EXPECT_EQ(Histogram::bucket_of(5), 3u);
  EXPECT_EQ(Histogram::bucket_of(8), 3u);
  EXPECT_EQ(Histogram::bucket_of(9), 4u);
  EXPECT_EQ(Histogram::bucket_of(1024), 10u);
  EXPECT_EQ(Histogram::bucket_of(1025), 11u);
  // The last finite bound is 2^30; everything beyond lands in +Inf.
  EXPECT_EQ(Histogram::bucket_of(std::uint64_t{1} << 30), 30u);
  EXPECT_EQ(Histogram::bucket_of((std::uint64_t{1} << 30) + 1),
            Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::bucket_of(std::uint64_t{1} << 40),
            Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::bucket_of(std::numeric_limits<std::uint64_t>::max()),
            Histogram::kBuckets - 1);
}

TEST(ObsMetrics, BucketBoundsAreExhaustiveAndExclusive) {
  // Every bucket's bound is the smallest power of two holding it: a value
  // exactly at a bound stays, one past it moves up.
  for (std::size_t b = 0; b + 1 < Histogram::kBuckets; ++b) {
    const std::uint64_t bound = Histogram::upper_bound(b);
    EXPECT_EQ(Histogram::bucket_of(bound), b) << "at bound " << bound;
    if (b + 2 < Histogram::kBuckets) {
      EXPECT_EQ(Histogram::bucket_of(bound + 1), b + 1)
          << "past bound " << bound;
    }
  }
}

TEST(ObsMetrics, HistogramSnapshotCountsSumAndQuantiles) {
  TINYEVM_REQUIRE_OBS();
  ScopedMetrics on;
  auto& hist = Registry::instance().histogram(
      "obs_test_snapshot_us", "test histogram");
  for (const std::uint64_t v : {1u, 2u, 4u, 4u, 100u}) hist.record(v);
  const auto snap = hist.snapshot();
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.sum, 111u);
  EXPECT_EQ(snap.buckets[0], 1u);  // le=1: the 1
  EXPECT_EQ(snap.buckets[1], 1u);  // le=2: the 2
  EXPECT_EQ(snap.buckets[2], 2u);  // le=4: both 4s
  EXPECT_EQ(snap.buckets[7], 1u);  // le=128: the 100
  // Quantiles resolve to bucket upper bounds.
  EXPECT_EQ(snap.quantile(0.0), 1u);
  EXPECT_EQ(snap.quantile(0.5), 4u);
  EXPECT_EQ(snap.quantile(1.0), 128u);
}

// ---------------------------------------------------------------------------
// The enable gate
// ---------------------------------------------------------------------------

TEST(ObsMetrics, DisabledInstrumentsRecordNothing) {
  TINYEVM_REQUIRE_OBS();
  auto& counter =
      Registry::instance().counter("obs_test_gated_total", "test counter");
  auto& hist =
      Registry::instance().histogram("obs_test_gated_us", "test histogram");
  set_metrics_enabled(false);
  counter.inc();
  hist.record(7);
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(hist.snapshot().count, 0u);
  {
    ScopedMetrics on;
    counter.inc(3);
    hist.record(7);
  }
  EXPECT_EQ(counter.value(), 3u);
  EXPECT_EQ(hist.snapshot().count, 1u);
  // Back to disabled: the gate closes again.
  counter.inc();
  EXPECT_EQ(counter.value(), 3u);
}

// ---------------------------------------------------------------------------
// Registry interning
// ---------------------------------------------------------------------------

TEST(ObsMetrics, InstrumentsInternByNameAndLabels) {
  auto& registry = Registry::instance();
  Counter& a = registry.counter("obs_test_intern_total", "help",
                                {{"k", "v"}, {"a", "b"}});
  // Same series, labels in any order: the same object comes back.
  Counter& b = registry.counter("obs_test_intern_total", "help",
                                {{"a", "b"}, {"k", "v"}});
  EXPECT_EQ(&a, &b);
  // A different label value is a different series.
  Counter& c = registry.counter("obs_test_intern_total", "help",
                                {{"a", "b"}, {"k", "other"}});
  EXPECT_NE(&a, &c);
}

TEST(ObsMetrics, GaugeSetAndAdd) {
  TINYEVM_REQUIRE_OBS();
  ScopedMetrics on;
  auto& gauge = Registry::instance().gauge("obs_test_gauge", "test gauge");
  gauge.set(10);
  gauge.add(-3);
  EXPECT_EQ(gauge.value(), 7);
  gauge.set(-5);
  EXPECT_EQ(gauge.value(), -5);
}

TEST(ObsMetrics, CollectFindsRegisteredSeries) {
  TINYEVM_REQUIRE_OBS();
  ScopedMetrics on;
  Registry::instance()
      .counter("obs_test_collect_total", "collected", {{"x", "1"}})
      .inc(9);
  bool found = false;
  for (const MetricFamily& family : Registry::instance().collect()) {
    if (family.name != "obs_test_collect_total") continue;
    ASSERT_EQ(family.type, MetricType::Counter);
    for (const Sample& sample : family.samples) {
      if (sample.labels == LabelSet{{"x", "1"}}) {
        EXPECT_EQ(sample.value, 9.0);
        found = true;
      }
    }
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// Collectors
// ---------------------------------------------------------------------------

TEST(ObsMetrics, CollectorPublishesUntilHandleReset) {
  auto count_samples = [] {
    std::size_t n = 0;
    for (const MetricFamily& family : Registry::instance().collect()) {
      if (family.name == "obs_test_collector_gauge") n += family.samples.size();
    }
    return n;
  };
  CollectorHandle handle =
      Registry::instance().add_collector([](Collection& out) {
        out.gauge("obs_test_collector_gauge", "from a collector", {}, 42.0);
      });
  EXPECT_EQ(count_samples(), 1u);
  handle.reset();
  EXPECT_EQ(count_samples(), 0u);
}

TEST(ObsMetrics, CollectorTypeMismatchIsDropped) {
  ScopedMetrics on;
  // The instrument fixes the family as a counter; a collector publishing
  // the same name as a gauge must not corrupt the family.
  Registry::instance()
      .counter("obs_test_mismatch_total", "instrument side")
      .inc();
  CollectorHandle handle =
      Registry::instance().add_collector([](Collection& out) {
        out.gauge("obs_test_mismatch_total", "wrong type", {}, 1.0);
      });
  for (const MetricFamily& family : Registry::instance().collect()) {
    if (family.name != "obs_test_mismatch_total") continue;
    EXPECT_EQ(family.type, MetricType::Counter);
    EXPECT_EQ(family.samples.size(), 1u);
  }
}

// ---------------------------------------------------------------------------
// Sharded writers (TSan coverage: suite name is in the CI TSan regex)
// ---------------------------------------------------------------------------

TEST(ObsMetricsConcurrency, CountersMergeAcrossThreads) {
  TINYEVM_REQUIRE_OBS();
  ScopedMetrics on;
  auto& counter = Registry::instance().counter(
      "obs_test_concurrent_total", "merged across writer threads");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(ObsMetricsConcurrency, HistogramMergesAcrossThreadsUnderScrapes) {
  TINYEVM_REQUIRE_OBS();
  ScopedMetrics on;
  auto& hist = Registry::instance().histogram(
      "obs_test_concurrent_us", "merged across writer threads");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 5'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        hist.record(static_cast<std::uint64_t>(t) * 97 + i % 1024);
      }
    });
  }
  // Concurrent scrapes must see consistent (if momentary) aggregates.
  for (int s = 0; s < 50; ++s) {
    const auto snap = hist.snapshot();
    EXPECT_LE(snap.count, kThreads * kPerThread);
  }
  for (auto& t : threads) t.join();
  const auto snap = hist.snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
}

}  // namespace
}  // namespace tinyevm::obs
