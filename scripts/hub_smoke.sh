#!/usr/bin/env bash
# End-to-end smoke for the networked hub: start tinyevm-hubd on an
# ephemeral port, exchange 100 payment rounds over localhost with
# tinyevm-hubload, scrape the live server through the StatsRequest frame
# kind via tinyevm-stats --connect, then SIGINT the daemon and require the
# graceful-drain summary. Usage: hub_smoke.sh <hubd> <hubload> <stats>
set -euo pipefail

HUBD=$1
HUBLOAD=$2
STATS=$3

dir=$(mktemp -d)
pid=
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  rm -rf "$dir"
}
trap cleanup EXIT

"$HUBD" --port 0 --port-file "$dir/port" --workers 2 > "$dir/hubd.log" &
pid=$!

for _ in $(seq 100); do
  [ -s "$dir/port" ] && break
  sleep 0.1
done
[ -s "$dir/port" ] || { echo "hubd never wrote its port file" >&2; exit 1; }
port=$(cat "$dir/port")

# 4 connections x 25 rounds = the documented 100-round exchange.
"$HUBLOAD" --port "$port" --connections 4 --rounds 25

# Remote scrape on the same port must expose the net-layer metrics.
"$STATS" --connect "127.0.0.1:$port" | tee "$dir/scrape.txt" \
  | grep -q "tinyevm_net_accepted_total"
grep -q "tinyevm_hub_payments_total" "$dir/scrape.txt"

# Graceful shutdown: SIGINT, clean exit, drain summary printed.
kill -INT "$pid"
wait "$pid"
pid=
grep -q "drained:" "$dir/hubd.log"
echo "hub smoke ok (port $port)"
