#!/usr/bin/env python3
"""Gate tinyevm_lint corpus counters against the committed baseline.

Usage: check_lint_baseline.py <current.json> <baseline.json>

The CI rung runs `tinyevm_lint --corpus 2000 --json > current.json` (a
crash there fails the job before this script runs) and then diffs the
aggregate counters against tests/lint_baseline.json:

  * monotone counters must not regress — the analyzer is allowed to get
    stronger (resolve more jumps, widen spans, certify more contracts)
    but a drop means a precision regression snuck in;
  * exact counters must match — the corpus is deterministic, so block,
    instruction and diagnostic totals only move when the translator or
    generator intentionally changes, which must be a deliberate baseline
    update in the same commit.

Exits 0 when the gate holds, 1 with a per-counter report otherwise.
"""
import json
import sys

# Analyzer strength: current >= baseline required.
MONOTONE = [
    "spans",
    "span_slots",
    "resolved_jumps",
    "dead_blocks",
    "dead_slots",
    "bounded_loops",
    "wcet_gas_certified",
    "wcet_cycles_certified",
    "wcet_ops_certified",
    "wcet_stack_certified",
]
# Deterministic corpus shape: current == baseline required.
EXACT = [
    "contracts",
    "insts",
    "blocks",
    "loops",
    "diagnostics",
    "contracts_flagged",
    "unresolved_jumps",
]


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        current = json.load(f)
    with open(sys.argv[2]) as f:
        baseline = json.load(f)

    failures = []
    for key in MONOTONE:
        cur, base = current.get(key), baseline.get(key)
        if cur is None or base is None:
            failures.append(f"{key}: missing (current={cur} baseline={base})")
        elif cur < base:
            failures.append(f"{key}: regressed {base} -> {cur}")
    for key in EXACT:
        cur, base = current.get(key), baseline.get(key)
        if cur != base:
            failures.append(f"{key}: expected {base}, got {cur}")

    if failures:
        print("lint baseline gate FAILED:")
        for line in failures:
            print(f"  {line}")
        print(
            "If the change is intentional, regenerate the baseline with\n"
            "  tinyevm_lint --corpus 2000 --json > tests/lint_baseline.json\n"
            "and commit it alongside the analyzer change."
        )
        return 1

    print(
        "lint baseline gate OK: "
        f"{current['contracts']} contracts, "
        f"{current['resolved_jumps']} resolved jumps, "
        f"{current['span_slots']} span slots, "
        f"{current['wcet_ops_certified']} ops-certified"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
