// libFuzzer harness for the net frame codec. Two oracles per input:
//
//  1. Decoder robustness — the raw input bytes are fed to a FrameReader in
//     input-derived chunk sizes (exercising reassembly), and every frame
//     that survives the checksum is pushed through the message decoders.
//     Nothing may crash, throw, or read out of bounds, whatever the bytes;
//     a frame the reader accepts must re-encode to the identical wire
//     bytes (header canonicality).
//
//  2. Round-trip — the input is also used as entropy to build one of each
//     message type (OpenRequest, PaymentUpdate, CloseRequest, HubResponse,
//     plus the stats pair), which must encode → decode to an equal value.
//     Any mismatch aborts, which libFuzzer reports as a crash.
//
// Built behind TINYEVM_BUILD_FUZZERS; same build scheme as
// fuzz_translator: a real libFuzzer target under clang, a standalone
// main() over file args / built-in seeds elsewhere.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string_view>
#include <vector>

#include "channel/hub.hpp"
#include "net/frame.hpp"

namespace {

using namespace tinyevm;
using net::Frame;
using net::FrameReader;

/// Deterministic byte source over the input (wraps around; zero when the
/// input is empty) — enough structure to build valid messages from fuzz
/// entropy without consuming alignment.
class Entropy {
 public:
  Entropy(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8() {
    if (size_ == 0) return 0;
    return data_[pos_++ % size_];
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | u8();
    return v;
  }
  U256 u256() { return U256{u64(), u64(), u64(), u64()}; }
  Hash256 hash() {
    Hash256 h{};
    for (auto& b : h) b = u8();
    return h;
  }
  secp256k1::Signature signature() {
    secp256k1::Signature sig;
    sig.r = u256();
    sig.s = u256();
    sig.recovery_id = u8() & 1;
    return sig;
  }
  channel::SignedState signed_state() {
    channel::SignedState ss;
    ss.state.channel_id = u256();
    ss.state.sequence = u64();
    ss.state.paid_total = u256();
    ss.state.sensor_data = u256();
    ss.state.prev_hash = hash();
    ss.sender_sig = signature();
    ss.receiver_sig = signature();
    return ss;
  }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "fuzz_frames: %s\n", what);
    std::abort();
  }
}

/// Oracle 1: arbitrary bytes through the reader, in reassembly chunks.
void fuzz_decoder(const std::uint8_t* data, std::size_t size) {
  // Small cap: hostile length prefixes must be rejected, not buffered.
  FrameReader reader(64 * 1024);
  const std::size_t chunk = size == 0 ? 1 : 1 + (data[0] % 97);
  std::size_t off = 0;
  while (off < size) {
    const std::size_t n = std::min(chunk, size - off);
    reader.feed({data + off, n});
    off += n;
    while (auto frame = reader.next()) {
      // A frame the reader accepted must re-encode bit-identically: the
      // wire form has exactly one representation.
      const auto bytes = net::encode_frame(*frame);
      FrameReader second;
      second.feed(bytes);
      const auto again = second.next();
      check(again.has_value(), "re-encoded frame did not decode");
      check(*again == *frame, "re-encoded frame changed");
      // The message decoders must never crash or throw on any body.
      (void)net::decode_request(*frame);
      (void)net::decode_response(*frame);
      (void)net::decode_stats_request(*frame);
      (void)net::decode_stats_response(*frame);
    }
    if (reader.error() != net::FrameError::None) return;  // stream dead
  }
}

/// Oracle 2: every message type round-trips through its codec.
void fuzz_round_trip(const std::uint8_t* data, std::size_t size) {
  Entropy entropy(data, size);
  const std::uint32_t seq = static_cast<std::uint32_t>(entropy.u64());

  channel::OpenRequest open;
  open.channel_id = entropy.u256();
  open.rate = entropy.u256();
  open.sensor_device = static_cast<std::uint32_t>(entropy.u64());
  channel::PaymentUpdate payment;
  payment.channel_id = entropy.u256();
  payment.proposal = entropy.signed_state();
  channel::CloseRequest close{entropy.u256()};

  const channel::HubRequest requests[] = {
      channel::HubRequest{open},
      channel::HubRequest{payment},
      channel::HubRequest{close},
  };
  for (const auto& request : requests) {
    const auto bytes = net::encode_request(request, seq);
    FrameReader reader;
    reader.feed(bytes);
    const auto frame = reader.next();
    check(frame.has_value(), "request frame did not decode");
    check(frame->seq == seq, "request seq changed");
    const auto back = net::decode_request(*frame);
    check(back.has_value(), "request body did not decode");
    check(*back == request, "request round-trip changed");
  }

  channel::HubResponse response;
  response.status =
      static_cast<channel::HubStatus>(entropy.u8() % 8);  // all 8 statuses
  response.kind = static_cast<channel::HubResponseKind>(entropy.u8() % 3);
  response.channel_id = entropy.u256();
  if ((entropy.u8() & 1) != 0) {
    evm::Address contract{};
    for (auto& b : contract) b = entropy.u8();
    response.contract = contract;
  }
  if ((entropy.u8() & 1) != 0) response.state = entropy.signed_state();
  response.queue_us = static_cast<std::uint32_t>(entropy.u64());
  response.service_us = static_cast<std::uint32_t>(entropy.u64());
  {
    const auto bytes = net::encode_response(response, seq);
    FrameReader reader;
    reader.feed(bytes);
    const auto frame = reader.next();
    check(frame.has_value(), "response frame did not decode");
    const auto back = net::decode_response(*frame);
    check(back.has_value(), "response body did not decode");
    check(back->status == response.status &&
              back->kind == response.kind &&
              back->channel_id == response.channel_id &&
              back->contract == response.contract &&
              back->state == response.state &&
              back->queue_us == response.queue_us &&
              back->service_us == response.service_us,
          "response round-trip changed");
  }

  const net::StatsRequest stats{(entropy.u8() & 1) != 0
                                    ? net::StatsRequest::Format::Json
                                    : net::StatsRequest::Format::Prometheus};
  {
    const auto bytes = net::encode_stats_request(stats, seq);
    FrameReader reader;
    reader.feed(bytes);
    const auto frame = reader.next();
    check(frame.has_value(), "stats request frame did not decode");
    const auto back = net::decode_stats_request(*frame);
    check(back.has_value() && *back == stats,
          "stats request round-trip changed");
  }
  {
    std::string text(size % 300, 'x');
    for (auto& c : text) c = static_cast<char>('!' + entropy.u8() % 90);
    const auto bytes = net::encode_stats_response(text, seq);
    FrameReader reader;
    reader.feed(bytes);
    const auto frame = reader.next();
    check(frame.has_value(), "stats response frame did not decode");
    const auto back = net::decode_stats_response(*frame);
    check(back.has_value() && *back == text,
          "stats response round-trip changed");
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  fuzz_decoder(data, size);
  fuzz_round_trip(data, size);
  return 0;
}

#ifndef TINYEVM_FUZZ_WITH_LIBFUZZER
namespace {

/// Built-in seeds for the bare standalone invocation: valid frames of
/// every kind, plus corrupted variants (flipped crc, bad version, huge
/// declared length, truncation) and plain junk.
std::vector<std::vector<std::uint8_t>> builtin_seeds() {
  std::vector<std::vector<std::uint8_t>> seeds;
  // Valid frames of each message kind, from fixed entropy.
  std::vector<std::uint8_t> entropy;
  for (int i = 0; i < 256; ++i) {
    entropy.push_back(static_cast<std::uint8_t>(i * 37 + 11));
  }
  seeds.push_back(entropy);
  {
    channel::OpenRequest open;
    open.channel_id = U256{7};
    open.rate = U256{10};
    open.sensor_device = 7;
    seeds.push_back(net::encode_request(channel::HubRequest{open}, 1));
  }
  {
    channel::CloseRequest close{U256{7}};
    auto bytes = net::encode_request(channel::HubRequest{close}, 2);
    seeds.push_back(bytes);
    // Flip one checksum byte.
    bytes.back() ^= 0xff;
    seeds.push_back(bytes);
    // Bad version byte.
    auto bad_version = seeds[seeds.size() - 2];
    bad_version[4] ^= 0x10;
    seeds.push_back(bad_version);
    // Truncated.
    auto truncated = seeds[seeds.size() - 3];
    truncated.resize(truncated.size() / 2);
    seeds.push_back(truncated);
  }
  {
    // Hostile declared length (caps at the reader's max).
    std::vector<std::uint8_t> huge = {0xff, 0xff, 0xff, 0xff, 0x01, 0x03};
    seeds.push_back(huge);
  }
  seeds.push_back(net::encode_stats_request(
      net::StatsRequest{net::StatsRequest::Format::Prometheus}, 3));
  seeds.push_back(net::encode_stats_response("tinyevm_up 1\n", 4));
  return seeds;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t ran = 0;
  if (argc == 3 && std::string_view(argv[1]) == "--dump-seeds") {
    // Writes the built-in seeds as files — how tests/fuzz_corpus_frames/
    // is (re)generated for the libFuzzer runs in CI.
    const auto seeds = builtin_seeds();
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      char path[512];
      std::snprintf(path, sizeof path, "%s/seed-%02zu", argv[2], i);
      std::FILE* f = std::fopen(path, "wb");
      if (f == nullptr) {
        std::fprintf(stderr, "fuzz_frames: cannot write %s\n", path);
        return 1;
      }
      std::fwrite(seeds[i].data(), 1, seeds[i].size(), f);
      std::fclose(f);
    }
    std::printf("fuzz_frames: wrote %zu seeds to %s\n", seeds.size(),
                argv[2]);
    return 0;
  }
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      std::FILE* f = std::fopen(argv[i], "rb");
      if (f == nullptr) {
        std::fprintf(stderr, "fuzz_frames: cannot open %s\n", argv[i]);
        return 1;
      }
      std::vector<std::uint8_t> data;
      std::uint8_t buf[4096];
      std::size_t n = 0;
      while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
        data.insert(data.end(), buf, buf + n);
      }
      std::fclose(f);
      LLVMFuzzerTestOneInput(data.data(), data.size());
      ++ran;
    }
  } else {
    for (const auto& seed : builtin_seeds()) {
      LLVMFuzzerTestOneInput(seed.data(), seed.size());
      ++ran;
    }
  }
  std::printf("fuzz_frames (standalone): %zu inputs, no divergence\n", ran);
  return 0;
}
#endif  // TINYEVM_FUZZ_WITH_LIBFUZZER
