// tinyevm-stats — exercise the full hub/VM/crypto stack and emit the
// process-wide telemetry scrape. The smallest end-to-end demonstration of
// the observability layer: it opens N payment channels against an
// in-process ChannelHub, drives R signed payment rounds through each,
// closes them, and prints every registered metric (Prometheus text or
// JSON). With --trace-out it also writes a Chrome trace-event file of the
// run, loadable in chrome://tracing or Perfetto.
//
// With --connect it instead scrapes a running tinyevm-hubd over its
// StatsRequest frame kind — live-hub monitoring with no sidecar.
//
//   tinyevm-stats                          # 8 sessions x 2 rounds, text
//   tinyevm-stats --sessions 100 --rounds 4 --workers 4
//   tinyevm-stats --format json
//   tinyevm-stats --trace-out run.trace.json
//   tinyevm-stats --connect 127.0.0.1:9545 # scrape a live hubd
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "channel/manager.hpp"
#include "evm/code_cache.hpp"
#include "net/client.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

using namespace tinyevm;
using namespace tinyevm::channel;

namespace {

constexpr std::uint32_t kDev = 7;

void usage() {
  std::printf(
      "usage: tinyevm-stats [options]\n"
      "  --sessions <n>      channels to open (default 8)\n"
      "  --rounds <n>        signed payment rounds per channel (default 2)\n"
      "  --workers <n>       hub worker threads (default 2)\n"
      "  --engine <name>     hub execution engine (default: config default)\n"
      "  --format prom|json  scrape format (default prom)\n"
      "  --trace-out <path>  write a Chrome trace of the workload\n"
      "  --connect <host:port>  scrape a live tinyevm-hubd instead of\n"
      "                      running the in-process workload\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t sessions = 8;
  std::size_t rounds = 2;
  std::size_t workers = 2;
  std::string engine;
  std::string format = "prom";
  std::string trace_out;
  std::string connect;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    }
    if (arg == "--sessions" && i + 1 < argc) {
      sessions = static_cast<std::size_t>(std::atol(argv[++i]));
      continue;
    }
    if (arg == "--rounds" && i + 1 < argc) {
      rounds = static_cast<std::size_t>(std::atol(argv[++i]));
      continue;
    }
    if (arg == "--workers" && i + 1 < argc) {
      workers = static_cast<std::size_t>(std::atol(argv[++i]));
      continue;
    }
    if (arg == "--engine" && i + 1 < argc) {
      engine = argv[++i];
      continue;
    }
    if (arg == "--format" && i + 1 < argc) {
      format = argv[++i];
      if (format != "prom" && format != "json") {
        std::fprintf(stderr, "unknown format '%s' (want prom|json)\n",
                     format.c_str());
        return 2;
      }
      continue;
    }
    if (arg == "--trace-out" && i + 1 < argc) {
      trace_out = argv[++i];
      continue;
    }
    if (arg == "--connect" && i + 1 < argc) {
      connect = argv[++i];
      continue;
    }
    std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
    usage();
    return 2;
  }
  if (sessions == 0) sessions = 1;

  if (!connect.empty()) {
    const auto colon = connect.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "bad --connect '%s' (want host:port)\n",
                   connect.c_str());
      return 2;
    }
    const std::string host = connect.substr(0, colon);
    const int port = std::atoi(connect.substr(colon + 1).c_str());
    net::HubClient client;
    if (port <= 0 || port > 65535 ||
        !client.connect(host, static_cast<std::uint16_t>(port))) {
      std::fprintf(stderr, "cannot connect to %s\n", connect.c_str());
      return 1;
    }
    const auto scrape = client.scrape(
        format == "json" ? net::StatsRequest::Format::Json
                         : net::StatsRequest::Format::Prometheus);
    if (!scrape) {
      std::fprintf(stderr, "scrape of %s failed\n", connect.c_str());
      return 1;
    }
    std::fputs(scrape->c_str(), stdout);
    return 0;
  }

  obs::set_metrics_enabled(true);
  if (!trace_out.empty()) obs::Tracer::instance().enable();

  ChannelHub::Config config;
  config.workers = workers;
  config.engine = engine;
  ChannelHub hub("stats", PrivateKey::from_seed("stats-hub-key"),
                 keccak256("stats-anchor"), config);
  hub.set_sensor_default(kDev, U256{21});

  std::vector<ChannelEndpoint> cars;
  cars.reserve(sessions);
  std::vector<HubRequest> opens;
  opens.reserve(sessions);
  for (std::size_t i = 0; i < sessions; ++i) {
    cars.emplace_back("car-" + std::to_string(i),
                      PrivateKey::from_seed("stats-car-" + std::to_string(i)),
                      keccak256("stats-anchor"));
    cars.back().sensors().set_reading(kDev, U256{22});
    const auto open = cars.back().open_request(U256{i + 1}, U256{10}, kDev);
    if (!open) {
      std::fprintf(stderr, "endpoint %zu failed to build its open\n", i);
      return 1;
    }
    opens.push_back(*open);
  }
  for (const auto& response : hub.handle_batch(opens)) {
    if (!response.ok()) {
      std::fprintf(stderr, "open rejected: %s\n",
                   std::string(to_string(response.status)).c_str());
      return 1;
    }
  }

  for (std::size_t r = 0; r < rounds; ++r) {
    std::vector<HubRequest> updates;
    updates.reserve(sessions);
    for (auto& car : cars) {
      auto update = car.propose_payment(U256{r + 1});
      if (!update) {
        std::fprintf(stderr, "payment proposal failed in round %zu\n", r);
        return 1;
      }
      updates.push_back(std::move(*update));
    }
    const auto responses = hub.handle_batch(updates);
    for (std::size_t i = 0; i < sessions; ++i) {
      if (!responses[i].ok() || !cars[i].apply(responses[i])) {
        std::fprintf(stderr, "payment %zu rejected in round %zu\n", i, r);
        return 1;
      }
    }
  }

  std::vector<HubRequest> closes;
  closes.reserve(sessions);
  for (auto& car : cars) closes.push_back(car.close_request());
  for (const auto& response : hub.handle_batch(closes)) {
    if (!response.ok()) {
      std::fprintf(stderr, "close rejected: %s\n",
                   std::string(to_string(response.status)).c_str());
      return 1;
    }
  }
  if (!hub.audit_all()) {
    std::fprintf(stderr, "side-chain audit failed\n");
    return 1;
  }

  if (!trace_out.empty() &&
      !obs::Tracer::instance().write_chrome_trace(trace_out)) {
    std::fprintf(stderr, "cannot write trace to '%s'\n", trace_out.c_str());
    return 2;
  }
  // Scrape last, so it reflects the whole workload (and the collectors
  // see the hub still alive).
  std::fputs((format == "json" ? obs::json_scrape()
                               : obs::prometheus_scrape())
                 .c_str(),
             stdout);
  return 0;
}
