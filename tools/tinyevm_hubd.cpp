// tinyevm-hubd — the networked channel hub daemon. Binds a TCP port,
// speaks the src/net frame protocol (RLP message bodies, version byte,
// per-frame CRC), and feeds decoded requests to an in-process ChannelHub
// through its batched worker-pool path. SIGINT/SIGTERM trigger a graceful
// drain: in-flight batches finish, write queues flush (bounded by
// --drain-ms), then the process exits 0.
//
//   tinyevm-hubd --port 9545 --workers 4
//   tinyevm-hubd --port 0 --port-file /tmp/hubd.port   # ephemeral port
//   tinyevm-hubload --port-file /tmp/hubd.port ...     # companion client
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "channel/hub.hpp"
#include "evm/code_cache.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"

using namespace tinyevm;
using namespace tinyevm::channel;

namespace {

net::HubServer* g_server = nullptr;

void handle_signal(int) {
  if (g_server != nullptr) g_server->request_stop();
}

void usage() {
  std::printf(
      "usage: tinyevm-hubd [options]\n"
      "  --port <n>            TCP port (0 = ephemeral; default 9545)\n"
      "  --bind <addr>         bind address (default 127.0.0.1)\n"
      "  --port-file <path>    write the bound port to this file\n"
      "  --workers <n>         hub worker threads (default 2)\n"
      "  --engine <name>       hub execution engine (default: profile)\n"
      "  --sensor <dev>=<val>  hub-side sensor default (default 7=21)\n"
      "  --inflight <n>        per-connection request budget (default 64)\n"
      "  --batch-max <n>       max requests per hub batch (default 256)\n"
      "  --drain-ms <n>        graceful-drain deadline (default 2000)\n"
      "  --key-seed <s>        hub key seed (default hub-key)\n"
      "  --anchor <s>          on-chain anchor preimage (default "
      "hub-anchor)\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t port = 9545;
  std::string bind_address = "127.0.0.1";
  std::string port_file;
  std::size_t workers = 2;
  std::string engine;
  std::string key_seed = "hub-key";
  std::string anchor = "hub-anchor";
  net::HubServer::Config server_config;
  bool sensor_set = false;
  std::uint32_t sensor_dev = 7;
  std::uint64_t sensor_val = 21;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    }
    if (arg == "--port" && i + 1 < argc) {
      port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
      continue;
    }
    if (arg == "--bind" && i + 1 < argc) {
      bind_address = argv[++i];
      continue;
    }
    if (arg == "--port-file" && i + 1 < argc) {
      port_file = argv[++i];
      continue;
    }
    if (arg == "--workers" && i + 1 < argc) {
      workers = static_cast<std::size_t>(std::atol(argv[++i]));
      continue;
    }
    if (arg == "--engine" && i + 1 < argc) {
      engine = argv[++i];
      continue;
    }
    if (arg == "--sensor" && i + 1 < argc) {
      const std::string spec = argv[++i];
      const auto eq = spec.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "bad --sensor '%s' (want dev=value)\n",
                     spec.c_str());
        return 2;
      }
      sensor_dev =
          static_cast<std::uint32_t>(std::atol(spec.substr(0, eq).c_str()));
      sensor_val = static_cast<std::uint64_t>(
          std::atoll(spec.substr(eq + 1).c_str()));
      sensor_set = true;
      continue;
    }
    if (arg == "--inflight" && i + 1 < argc) {
      server_config.inflight_budget =
          static_cast<std::size_t>(std::atol(argv[++i]));
      continue;
    }
    if (arg == "--batch-max" && i + 1 < argc) {
      server_config.batch_max =
          static_cast<std::size_t>(std::atol(argv[++i]));
      continue;
    }
    if (arg == "--drain-ms" && i + 1 < argc) {
      server_config.drain_deadline =
          std::chrono::milliseconds(std::atol(argv[++i]));
      continue;
    }
    if (arg == "--key-seed" && i + 1 < argc) {
      key_seed = argv[++i];
      continue;
    }
    if (arg == "--anchor" && i + 1 < argc) {
      anchor = argv[++i];
      continue;
    }
    std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
    usage();
    return 2;
  }

  // Metrics always on: the StatsRequest frame kind serves remote scrapes.
  obs::set_metrics_enabled(true);

  ChannelHub::Config hub_config;
  hub_config.workers = workers;
  hub_config.engine = engine;
  ChannelHub hub("hubd", PrivateKey::from_seed(key_seed), keccak256(anchor),
                 hub_config);
  hub.set_sensor_default(sensor_dev, U256{sensor_val});
  if (!sensor_set) hub.set_sensor_default(7, U256{21});

  server_config.bind_address = bind_address;
  server_config.port = port;
  net::HubServer server(hub, server_config);
  std::uint16_t bound = 0;
  try {
    bound = server.bind();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cannot bind %s:%u: %s\n", bind_address.c_str(),
                 port, e.what());
    return 1;
  }
  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write port file '%s'\n",
                   port_file.c_str());
      return 1;
    }
    std::fprintf(f, "%u\n", bound);
    std::fclose(f);
  }
  std::printf("tinyevm-hubd listening on %s:%u (%zu workers)\n",
              bind_address.c_str(), bound, hub.worker_count());
  std::fflush(stdout);

  g_server = &server;
  struct sigaction sa{};
  sa.sa_handler = handle_signal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);

  server.serve();

  const auto s = server.stats();
  const auto h = hub.stats();
  std::printf(
      "drained: conns=%llu frames_in=%llu frames_out=%llu busy=%llu "
      "protocol_errors=%llu opens=%llu payments=%llu closes=%llu\n",
      static_cast<unsigned long long>(s.accepted),
      static_cast<unsigned long long>(s.frames_in),
      static_cast<unsigned long long>(s.frames_out),
      static_cast<unsigned long long>(s.busy_rejections),
      static_cast<unsigned long long>(s.protocol_errors),
      static_cast<unsigned long long>(h.opens),
      static_cast<unsigned long long>(h.payments),
      static_cast<unsigned long long>(h.closes));
  return 0;
}
