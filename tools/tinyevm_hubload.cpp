// tinyevm-hubload — load generator for a running tinyevm-hubd. Opens N
// concurrent TCP connections and drives the deterministic payment-channel
// script on each (open → R real-ECDSA payment rounds → close), reporting
// rounds/s and the end-to-end vs hub-service latency split.
//
//   tinyevm-hubload --port 9545 --connections 64 --rounds 8
//   tinyevm-hubload --port-file /tmp/hubd.port --connections 4 --rounds 25
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"

using namespace tinyevm;

namespace {

void usage() {
  std::printf(
      "usage: tinyevm-hubload [options]\n"
      "  --host <addr>        server address (default 127.0.0.1)\n"
      "  --port <n>           server port\n"
      "  --port-file <path>   read the port from this file (waits for it)\n"
      "  --connections <n>    concurrent sockets (default 8)\n"
      "  --rounds <n>         payment rounds per connection (default 16)\n"
      "  --threads <n>        client I/O threads (default 1)\n"
      "  --burst <n>          connects in flight at once (default 256)\n"
      "  --no-close           leave channels open\n"
      "  --key-seed <s>       endpoint key-seed prefix (default car-key-)\n"
      "  --anchor <s>         on-chain anchor preimage (default hub-anchor)\n"
      "  --json               machine-readable summary on stdout\n");
}

std::uint32_t percentile(std::vector<std::uint32_t>& v, double p) {
  if (v.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(idx),
                   v.end());
  return v[idx];
}

}  // namespace

int main(int argc, char** argv) {
  net::LoadGenerator::Config config;
  std::string port_file;
  std::string anchor = "hub-anchor";
  bool json = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    }
    if (arg == "--host" && i + 1 < argc) {
      config.host = argv[++i];
      continue;
    }
    if (arg == "--port" && i + 1 < argc) {
      config.port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
      continue;
    }
    if (arg == "--port-file" && i + 1 < argc) {
      port_file = argv[++i];
      continue;
    }
    if (arg == "--connections" && i + 1 < argc) {
      config.connections = static_cast<std::size_t>(std::atol(argv[++i]));
      continue;
    }
    if (arg == "--rounds" && i + 1 < argc) {
      config.rounds = static_cast<std::size_t>(std::atol(argv[++i]));
      continue;
    }
    if (arg == "--threads" && i + 1 < argc) {
      config.threads = static_cast<std::size_t>(std::atol(argv[++i]));
      continue;
    }
    if (arg == "--burst" && i + 1 < argc) {
      config.connect_burst = static_cast<std::size_t>(std::atol(argv[++i]));
      continue;
    }
    if (arg == "--no-close") {
      config.close_channels = false;
      continue;
    }
    if (arg == "--key-seed" && i + 1 < argc) {
      config.key_seed = argv[++i];
      continue;
    }
    if (arg == "--anchor" && i + 1 < argc) {
      anchor = argv[++i];
      continue;
    }
    if (arg == "--json") {
      json = true;
      continue;
    }
    std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
    usage();
    return 2;
  }
  config.onchain_root = keccak256(anchor);

  if (!port_file.empty()) {
    // The companion hubd writes the file after binding; wait briefly.
    for (int attempt = 0; attempt < 100; ++attempt) {
      std::FILE* f = std::fopen(port_file.c_str(), "r");
      if (f != nullptr) {
        unsigned p = 0;
        const int got = std::fscanf(f, "%u", &p);
        std::fclose(f);
        if (got == 1 && p > 0) {
          config.port = static_cast<std::uint16_t>(p);
          break;
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
  if (config.port == 0) {
    std::fprintf(stderr, "no server port (use --port or --port-file)\n");
    return 2;
  }

  net::LoadGenerator generator(config);
  auto report = generator.run();

  const double rounds_per_s =
      report.elapsed_s > 0
          ? static_cast<double>(report.rounds_done) / report.elapsed_s
          : 0.0;
  const std::uint32_t e2e_p50 = percentile(report.e2e_us, 0.50);
  const std::uint32_t e2e_p99 = percentile(report.e2e_us, 0.99);
  const std::uint32_t svc_p50 = percentile(report.service_us, 0.50);
  const std::uint32_t svc_p99 = percentile(report.service_us, 0.99);

  if (json) {
    std::printf(
        "{\"connections\":%zu,\"connections_done\":%zu,\"rounds\":%zu,"
        "\"rounds_done\":%zu,\"failures\":%zu,\"connect_failures\":%zu,"
        "\"busy_retries\":%zu,\"elapsed_s\":%.3f,\"rounds_per_s\":%.1f,"
        "\"e2e_p50_us\":%u,\"e2e_p99_us\":%u,\"service_p50_us\":%u,"
        "\"service_p99_us\":%u}\n",
        config.connections, report.connections_done, config.rounds,
        report.rounds_done, report.failures, report.connect_failures,
        report.busy_retries, report.elapsed_s, rounds_per_s, e2e_p50,
        e2e_p99, svc_p50, svc_p99);
  } else {
    std::printf(
        "%zu/%zu connections, %zu rounds in %.2fs (%.1f rounds/s)\n"
        "e2e p50/p99: %u/%u us   service p50/p99: %u/%u us\n"
        "busy retries: %zu   failures: %zu   connect failures: %zu\n",
        report.connections_done, config.connections, report.rounds_done,
        report.elapsed_s, rounds_per_s, e2e_p50, e2e_p99, svc_p50, svc_p99,
        report.busy_retries, report.failures, report.connect_failures);
  }
  const std::size_t expected = config.connections * config.rounds;
  return (report.failures == 0 && report.connect_failures == 0 &&
          report.rounds_done == expected)
             ? 0
             : 1;
}
