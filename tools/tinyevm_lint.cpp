// tinyevm-lint — static analysis over EVM bytecode, standalone. Runs the
// translate-time analyzer (src/evm/analysis.hpp) and reports its proofs
// as contract diagnostics:
//
//   tinyevm-lint 6001600201                # lint hex bytecode
//   tinyevm-lint --blocks <hex>            # also print the block table
//   tinyevm-lint --wcet <hex>              # loops + WCET certificate
//   tinyevm-lint --json <hex>              # machine-readable report
//   tinyevm-lint --file contract.bin       # raw or hex file
//   tinyevm-lint --profile ethereum <hex>  # Ethereum opcode profile
//   tinyevm-lint --corpus 100              # lint synthetic corpus entries
//   tinyevm-lint --corpus 2000 --json      # aggregate counters (CI gate)
//
// Exit status: 0 when the analysis is clean, 1 when it has findings
// (dead code, proven stack faults, invalid/forbidden opcodes, bad jump
// targets, truncated immediates), 2 on usage errors.
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "corpus/corpus.hpp"
#include "crypto/hash.hpp"
#include "device/energest.hpp"
#include "evm/analysis.hpp"
#include "evm/decoded.hpp"
#include "evm/vm.hpp"

using namespace tinyevm;

namespace {

void usage() {
  std::printf(
      "usage: tinyevm-lint [options] <hex-bytecode>\n"
      "  --profile tiny|ethereum   opcode profile (default: tiny)\n"
      "  --file <path>             load bytecode from a hex or binary file\n"
      "  --corpus <n>              lint the first n synthetic corpus\n"
      "                            contracts instead of one program\n"
      "  --blocks                  print the basic-block table\n"
      "  --wcet                    print loops and the WCET certificate\n"
      "  --json                    machine-readable report (with --corpus:\n"
      "                            aggregate counters over the corpus)\n"
      "  --quiet                   diagnostics only, no summary\n"
      "exit status: 0 clean, 1 findings, 2 usage error\n");
}

struct Options {
  evm::TranslationProfile profile;  // defaults match VmConfig::tiny()
  std::size_t stack_limit = 96;
  bool blocks = false;
  bool wcet = false;
  bool json = false;
  bool quiet = false;
  bool silent = false;  ///< corpus --json: counters only, no diagnostics
};

/// Per-contract analysis counters, summed by corpus mode into the CI
/// baseline (tests/lint_baseline.json compares these; see ci.yml).
struct LintTotals {
  std::uint64_t contracts = 0;
  std::uint64_t flagged = 0;  ///< contracts with >= 1 diagnostic
  std::uint64_t insts = 0;    ///< stream slots
  std::uint64_t blocks = 0;
  std::uint64_t spans = 0;
  std::uint64_t span_slots = 0;
  std::uint64_t resolved_jumps = 0;
  std::uint64_t unresolved_jumps = 0;
  std::uint64_t dead_blocks = 0;
  std::uint64_t dead_slots = 0;
  std::uint64_t loops = 0;
  std::uint64_t bounded_loops = 0;
  std::uint64_t wcet_gas_certified = 0;
  std::uint64_t wcet_cycles_certified = 0;
  std::uint64_t wcet_ops_certified = 0;
  std::uint64_t wcet_stack_certified = 0;
  std::uint64_t diagnostics = 0;

  void add(const evm::DecodedProgram& program,
           const evm::AnalysisReport& report) {
    ++contracts;
    if (!report.clean()) ++flagged;
    insts += program.insts.size();
    blocks += report.blocks.size();
    spans += program.spans.size();
    span_slots += program.analysis.span_slots;
    resolved_jumps += report.resolved_jumps;
    unresolved_jumps += report.unresolved_jumps;
    dead_blocks += report.dead_blocks;
    dead_slots += report.dead_slots;
    loops += report.loops.size();
    for (const evm::LoopInfo& loop : report.loops) {
      if (loop.bounded) ++bounded_loops;
    }
    wcet_gas_certified += report.wcet.gas.certified ? 1 : 0;
    wcet_cycles_certified += report.wcet.cycles.certified ? 1 : 0;
    wcet_ops_certified += report.wcet.ops.certified ? 1 : 0;
    wcet_stack_certified += report.wcet.stack.certified ? 1 : 0;
    diagnostics += report.diagnostics.size();
  }
};

/// Worst-case CPU energy for `cycles` M3 cycles on the cc2538 model:
/// E = I_active x V_supply x (cycles / f_cpu), reported in microjoules.
double cycles_to_uj(std::uint64_t cycles) {
  const double seconds = static_cast<double>(cycles) /
                         static_cast<double>(device::Cc2538Spec::kCpuHz);
  return device::current_ma(device::PowerState::CpuActive) *
         device::Cc2538Spec::kSupplyVolts * seconds * 1000.0;
}

std::string json_escape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (const char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void print_block_table(const evm::AnalysisReport& report,
                       const evm::DecodedProgram& program) {
  std::printf(
      "  blk  pc-range     insts  exit         target  stack(req/net/peak)"
      "  gas     cycles   height  loop  span\n");
  for (std::size_t i = 0; i < report.blocks.size(); ++i) {
    const evm::BasicBlock& b = report.blocks[i];
    char target[16] = "-";
    if (b.dynamic_exit) {
      if (b.resolved && b.target != evm::BasicBlock::kNoBlock) {
        // The constant dataflow turned this run-time jump into one edge.
        std::snprintf(target, sizeof target, "dyn>%u", b.target);
      } else if (b.resolved) {
        std::snprintf(target, sizeof target, "dyn!");  // proven fault
      } else {
        std::snprintf(target, sizeof target, "dyn");
      }
    } else if (b.target != evm::BasicBlock::kNoBlock) {
      std::snprintf(target, sizeof target, "%u", b.target);
    } else if (b.exit == evm::BlockExit::Jump ||
               b.exit == evm::BlockExit::Branch) {
      std::snprintf(target, sizeof target, "bad");
    }
    char height[16];
    if (b.entry_height_known()) {
      std::snprintf(height, sizeof height, "%d", b.entry_height);
    } else {
      std::snprintf(height, sizeof height, "%s",
                    b.entry_height == evm::BasicBlock::kConflictHeight
                        ? "conflict"
                        : "?");
    }
    char loop[16] = "-";
    if (b.loop != evm::BasicBlock::kNoLoop) {
      std::snprintf(loop, sizeof loop, "L%u", b.loop);
    }
    // Span coverage: the leader's elidable run, if the analyzer kept one.
    const evm::DecodedInst& lead = program.insts[b.first];
    std::uint32_t span_idx = evm::kNoJumpTarget;
    if (lead.handler == evm::Handler::JumpDest) {
      span_idx = lead.target;
    } else if (b.first == 0) {
      span_idx = program.entry_span;
    }
    char span[16] = "-";
    if (span_idx != evm::kNoJumpTarget) {
      std::snprintf(span, sizeof span, "%u ops",
                    program.spans[span_idx].ops);
    }
    std::printf(
        "  %-4zu %04x..%04x   %-6u %-12s %-7s %3d/%+3d/%-3d"
        "          %-7llu %-8llu %-7s %-5s %s%s\n",
        i, b.pc, b.pc_end, b.ops,
        std::string(evm::to_string(b.exit)).c_str(), target,
        b.stack_require, b.stack_delta, b.stack_peak,
        static_cast<unsigned long long>(b.static_gas),
        static_cast<unsigned long long>(b.cycles), height, loop, span,
        b.reachable ? "" : "  [unreachable]");
  }
}

void print_wcet(const evm::AnalysisReport& report) {
  if (report.loops.empty()) {
    std::printf("  loops: none\n");
  } else {
    std::printf("  loops:\n");
    for (std::size_t i = 0; i < report.loops.size(); ++i) {
      const evm::LoopInfo& loop = report.loops[i];
      std::printf("    L%zu: header blk %u (pc %04x), %zu block(s)", i,
                  loop.header, report.blocks[loop.header].pc,
                  loop.blocks.size());
      if (loop.parent != evm::BasicBlock::kNoLoop) {
        std::printf(", inside L%u", loop.parent);
      }
      if (loop.bounded) {
        std::printf(" -> bounded, <= %llu trips (%s)\n",
                    static_cast<unsigned long long>(loop.trip_bound),
                    loop.note.c_str());
      } else {
        std::printf(" -> unbounded (%s)\n", loop.note.c_str());
      }
    }
  }
  if (report.irreducible) {
    std::printf("  control flow: irreducible\n");
  }
  const auto row = [](const char* name, const evm::WcetBound& bound,
                      const char* unit) {
    if (bound.certified) {
      std::printf("  wcet %-7s certified, <= %llu %s\n", name,
                  static_cast<unsigned long long>(bound.bound), unit);
    } else {
      std::printf("  wcet %-7s unbounded: %s\n", name,
                  bound.reason.c_str());
    }
  };
  row("gas:", report.wcet.gas, "gas");
  row("cycles:", report.wcet.cycles, "cycles");
  row("ops:", report.wcet.ops, "instructions");
  row("stack:", report.wcet.stack, "slots");
  if (report.wcet.cycles.certified) {
    std::printf("  wcet energy:  <= %.3f uJ (cc2538 @ 32 MHz, %.1f mA, "
                "%.1f V)\n",
                cycles_to_uj(report.wcet.cycles.bound),
                device::current_ma(device::PowerState::CpuActive),
                device::Cc2538Spec::kSupplyVolts);
  }
}

void print_json_wcet_bound(const char* name, const evm::WcetBound& bound,
                           bool trailing_comma) {
  std::printf("    \"%s\": {\"certified\": %s, \"bound\": %llu, "
              "\"reason\": \"%s\"}%s\n",
              name, bound.certified ? "true" : "false",
              static_cast<unsigned long long>(bound.bound),
              json_escape(bound.reason).c_str(),
              trailing_comma ? "," : "");
}

void print_json_report(const evm::Bytes& code,
                       const evm::DecodedProgram& program,
                       const evm::AnalysisReport& report,
                       const char* label) {
  std::uint64_t bounded = 0;
  for (const evm::LoopInfo& loop : report.loops) {
    if (loop.bounded) ++bounded;
  }
  std::printf("{\n");
  std::printf("  \"label\": \"%s\",\n", json_escape(label).c_str());
  std::printf("  \"bytes\": %zu,\n", code.size());
  std::printf("  \"insts\": %zu,\n", program.insts.size());
  std::printf("  \"blocks\": %zu,\n", report.blocks.size());
  std::printf("  \"spans\": %zu,\n", program.spans.size());
  std::printf("  \"span_slots\": %u,\n", program.analysis.span_slots);
  std::printf("  \"resolved_jumps\": %u,\n", report.resolved_jumps);
  std::printf("  \"unresolved_jumps\": %u,\n", report.unresolved_jumps);
  std::printf("  \"dead_blocks\": %u,\n", report.dead_blocks);
  std::printf("  \"dead_slots\": %u,\n", report.dead_slots);
  std::printf("  \"loops\": %zu,\n", report.loops.size());
  std::printf("  \"bounded_loops\": %llu,\n",
              static_cast<unsigned long long>(bounded));
  std::printf("  \"irreducible\": %s,\n",
              report.irreducible ? "true" : "false");
  std::printf("  \"wcet\": {\n");
  print_json_wcet_bound("gas", report.wcet.gas, true);
  print_json_wcet_bound("cycles", report.wcet.cycles, true);
  print_json_wcet_bound("ops", report.wcet.ops, true);
  print_json_wcet_bound("stack", report.wcet.stack, false);
  std::printf("  },\n");
  if (report.wcet.cycles.certified) {
    std::printf("  \"wcet_energy_uj\": %.6f,\n",
                cycles_to_uj(report.wcet.cycles.bound));
  }
  std::printf("  \"diagnostics\": [\n");
  for (std::size_t i = 0; i < report.diagnostics.size(); ++i) {
    const evm::Diagnostic& d = report.diagnostics[i];
    std::printf("    {\"pc\": %u, \"kind\": \"%s\", \"severity\": \"%s\", "
                "\"message\": \"%s\"}%s\n",
                d.pc, std::string(evm::to_string(d.kind)).c_str(),
                d.severity == evm::Severity::Error ? "error" : "warning",
                json_escape(d.message).c_str(),
                i + 1 < report.diagnostics.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"errors\": %zu,\n", report.error_count());
  std::printf("  \"warnings\": %zu\n", report.warning_count());
  std::printf("}\n");
}

void print_json_totals(const LintTotals& t) {
  std::printf("{\n");
  std::printf("  \"contracts\": %llu,\n",
              static_cast<unsigned long long>(t.contracts));
  std::printf("  \"contracts_flagged\": %llu,\n",
              static_cast<unsigned long long>(t.flagged));
  std::printf("  \"insts\": %llu,\n",
              static_cast<unsigned long long>(t.insts));
  std::printf("  \"blocks\": %llu,\n",
              static_cast<unsigned long long>(t.blocks));
  std::printf("  \"spans\": %llu,\n",
              static_cast<unsigned long long>(t.spans));
  std::printf("  \"span_slots\": %llu,\n",
              static_cast<unsigned long long>(t.span_slots));
  std::printf("  \"resolved_jumps\": %llu,\n",
              static_cast<unsigned long long>(t.resolved_jumps));
  std::printf("  \"unresolved_jumps\": %llu,\n",
              static_cast<unsigned long long>(t.unresolved_jumps));
  std::printf("  \"dead_blocks\": %llu,\n",
              static_cast<unsigned long long>(t.dead_blocks));
  std::printf("  \"dead_slots\": %llu,\n",
              static_cast<unsigned long long>(t.dead_slots));
  std::printf("  \"loops\": %llu,\n",
              static_cast<unsigned long long>(t.loops));
  std::printf("  \"bounded_loops\": %llu,\n",
              static_cast<unsigned long long>(t.bounded_loops));
  std::printf("  \"wcet_gas_certified\": %llu,\n",
              static_cast<unsigned long long>(t.wcet_gas_certified));
  std::printf("  \"wcet_cycles_certified\": %llu,\n",
              static_cast<unsigned long long>(t.wcet_cycles_certified));
  std::printf("  \"wcet_ops_certified\": %llu,\n",
              static_cast<unsigned long long>(t.wcet_ops_certified));
  std::printf("  \"wcet_stack_certified\": %llu,\n",
              static_cast<unsigned long long>(t.wcet_stack_certified));
  std::printf("  \"diagnostics\": %llu\n",
              static_cast<unsigned long long>(t.diagnostics));
  std::printf("}\n");
}

int lint_one(const evm::Bytes& code, const Options& opt, const char* label,
             LintTotals* totals) {
  const evm::DecodedProgram program = evm::translate(code, opt.profile);
  evm::AnalysisOptions aopt;
  aopt.stack_limit = opt.stack_limit;
  aopt.code = code;
  const evm::AnalysisReport report = evm::analyze(program, aopt);
  if (totals != nullptr) totals->add(program, report);

  if (opt.silent) return report.clean() ? 0 : 1;
  if (opt.json) {
    print_json_report(code, program, report, label);
    return report.clean() ? 0 : 1;
  }
  if (!opt.quiet) {
    std::printf("%s: %zu bytes, %zu instructions, %zu blocks, %zu spans, "
                "%u/%u dynamic jumps resolved\n",
                label, code.size(), program.insts.size(),
                report.blocks.size(), program.spans.size(),
                report.resolved_jumps,
                report.resolved_jumps + report.unresolved_jumps);
  }
  if (opt.blocks) print_block_table(report, program);
  if (opt.wcet) print_wcet(report);
  for (const evm::Diagnostic& d : report.diagnostics) {
    std::printf("%s:%04x: %s: [%s] %s\n", label, d.pc,
                d.severity == evm::Severity::Error ? "error" : "warning",
                std::string(evm::to_string(d.kind)).c_str(),
                d.message.c_str());
  }
  if (!opt.quiet) {
    std::printf("%s: %zu error(s), %zu warning(s)\n", label,
                report.error_count(), report.warning_count());
  }
  return report.clean() ? 0 : 1;
}

/// --file accepts both encodings: a file whose bytes are all hex digits /
/// whitespace is decoded as hex, anything else is raw bytecode.
evm::Bytes load_file(const std::string& path, bool& ok) {
  ok = false;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::vector<std::uint8_t> data;
  std::uint8_t buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    data.insert(data.end(), buf, buf + n);
  }
  std::fclose(f);
  ok = true;
  bool hexish = !data.empty();
  std::string text;
  for (const std::uint8_t b : data) {
    if (std::isspace(b) != 0) continue;
    if (std::isxdigit(b) == 0) {
      hexish = false;
      break;
    }
    text.push_back(static_cast<char>(b));
  }
  if (hexish && text.size() % 2 == 0) {
    try {
      return from_hex(text);
    } catch (const std::exception&) {
      // fall through to raw
    }
  }
  return data;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  opt.profile = evm::TranslationProfile{true, true, false};
  std::string code_hex;
  std::string file_path;
  std::size_t corpus_count = 0;
  bool corpus_mode = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    }
    if (arg == "--profile" && i + 1 < argc) {
      const std::string p = argv[++i];
      if (p == "ethereum") {
        const evm::VmConfig cfg = evm::VmConfig::ethereum();
        opt.profile = evm::TranslationProfile{false, cfg.iot_opcodes,
                                              cfg.block_opcodes};
        opt.stack_limit = cfg.stack_limit;
      } else if (p != "tiny") {
        std::fprintf(stderr, "unknown profile '%s'\n", p.c_str());
        return 2;
      }
      continue;
    }
    if (arg == "--file" && i + 1 < argc) {
      file_path = argv[++i];
      continue;
    }
    if (arg == "--corpus" && i + 1 < argc) {
      corpus_mode = true;
      corpus_count = static_cast<std::size_t>(std::atoll(argv[++i]));
      continue;
    }
    if (arg == "--blocks") {
      opt.blocks = true;
      continue;
    }
    if (arg == "--wcet") {
      opt.wcet = true;
      continue;
    }
    if (arg == "--json") {
      opt.json = true;
      continue;
    }
    if (arg == "--quiet") {
      opt.quiet = true;
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage();
      return 2;
    }
    code_hex = arg;
  }

  if (corpus_mode) {
    if (corpus_count == 0) {
      std::fprintf(stderr, "--corpus needs a positive count\n");
      return 2;
    }
    const corpus::Generator gen;
    Options quiet_opt = opt;
    quiet_opt.quiet = true;
    quiet_opt.blocks = false;
    quiet_opt.wcet = false;
    quiet_opt.json = false;  // per-contract reports off; totals below
    quiet_opt.silent = opt.json;  // CI gate diffs counters, not findings
    LintTotals totals;
    for (std::size_t i = 0; i < corpus_count; ++i) {
      char label[32];
      std::snprintf(label, sizeof label, "corpus[%zu]", i);
      lint_one(gen.make(i).init_code, quiet_opt, label, &totals);
    }
    if (opt.json) {
      print_json_totals(totals);
    } else {
      std::printf("linted %zu corpus contracts: %llu with findings\n",
                  corpus_count,
                  static_cast<unsigned long long>(totals.flagged));
    }
    return totals.flagged == 0 ? 0 : 1;
  }

  evm::Bytes code;
  if (!file_path.empty()) {
    bool ok = false;
    code = load_file(file_path, ok);
    if (!ok) {
      std::fprintf(stderr, "tinyevm-lint: cannot open %s\n",
                   file_path.c_str());
      return 2;
    }
  } else if (!code_hex.empty()) {
    try {
      code = from_hex(code_hex);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bad bytecode hex: %s\n", e.what());
      return 2;
    }
  } else {
    usage();
    return 2;
  }
  if (code.empty()) {
    std::fprintf(stderr, "tinyevm-lint: empty bytecode\n");
    return 2;
  }
  return lint_one(code, opt, file_path.empty() ? "code" : file_path.c_str(),
                  nullptr);
}
