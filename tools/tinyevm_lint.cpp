// tinyevm-lint — static analysis over EVM bytecode, standalone. Runs the
// translate-time analyzer (src/evm/analysis.hpp) and reports its proofs
// as contract diagnostics:
//
//   tinyevm-lint 6001600201                # lint hex bytecode
//   tinyevm-lint --blocks <hex>            # also print the block table
//   tinyevm-lint --file contract.bin       # raw or hex file
//   tinyevm-lint --profile ethereum <hex>  # Ethereum opcode profile
//   tinyevm-lint --corpus 100              # lint synthetic corpus entries
//
// Exit status: 0 when the analysis is clean, 1 when it has findings
// (dead code, proven stack faults, invalid/forbidden opcodes, bad jump
// targets, truncated immediates), 2 on usage errors.
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "corpus/corpus.hpp"
#include "crypto/hash.hpp"
#include "evm/analysis.hpp"
#include "evm/decoded.hpp"
#include "evm/vm.hpp"

using namespace tinyevm;

namespace {

void usage() {
  std::printf(
      "usage: tinyevm-lint [options] <hex-bytecode>\n"
      "  --profile tiny|ethereum   opcode profile (default: tiny)\n"
      "  --file <path>             load bytecode from a hex or binary file\n"
      "  --corpus <n>              lint the first n synthetic corpus\n"
      "                            contracts instead of one program\n"
      "  --blocks                  print the basic-block table\n"
      "  --quiet                   diagnostics only, no summary\n"
      "exit status: 0 clean, 1 findings, 2 usage error\n");
}

struct Options {
  evm::TranslationProfile profile;  // defaults match VmConfig::tiny()
  std::size_t stack_limit = 96;
  bool blocks = false;
  bool quiet = false;
};

void print_block_table(const evm::AnalysisReport& report,
                       const evm::DecodedProgram& program) {
  std::printf(
      "  blk  pc-range     insts  exit         target  stack(req/net/peak)"
      "  gas     cycles   height  span\n");
  for (std::size_t i = 0; i < report.blocks.size(); ++i) {
    const evm::BasicBlock& b = report.blocks[i];
    char target[16] = "-";
    if (b.dynamic_exit) {
      std::snprintf(target, sizeof target, "dyn");
    } else if (b.target != evm::BasicBlock::kNoBlock) {
      std::snprintf(target, sizeof target, "%u", b.target);
    } else if (b.exit == evm::BlockExit::Jump ||
               b.exit == evm::BlockExit::Branch) {
      std::snprintf(target, sizeof target, "bad");
    }
    char height[16];
    if (b.entry_height_known()) {
      std::snprintf(height, sizeof height, "%d", b.entry_height);
    } else {
      std::snprintf(height, sizeof height, "%s",
                    b.entry_height == evm::BasicBlock::kConflictHeight
                        ? "conflict"
                        : "?");
    }
    // Span coverage: the leader's elidable run, if the analyzer kept one.
    const evm::DecodedInst& lead = program.insts[b.first];
    std::uint32_t span_idx = evm::kNoJumpTarget;
    if (lead.handler == evm::Handler::JumpDest) {
      span_idx = lead.target;
    } else if (b.first == 0) {
      span_idx = program.entry_span;
    }
    char span[16] = "-";
    if (span_idx != evm::kNoJumpTarget) {
      std::snprintf(span, sizeof span, "%u ops",
                    program.spans[span_idx].ops);
    }
    std::printf(
        "  %-4zu %04x..%04x   %-6u %-12s %-7s %3d/%+3d/%-3d"
        "          %-7llu %-8llu %-7s %s%s\n",
        i, b.pc, b.pc_end, b.ops,
        std::string(evm::to_string(b.exit)).c_str(), target,
        b.stack_require, b.stack_delta, b.stack_peak,
        static_cast<unsigned long long>(b.static_gas),
        static_cast<unsigned long long>(b.cycles), height, span,
        b.reachable ? "" : "  [unreachable]");
  }
}

int lint_one(const evm::Bytes& code, const Options& opt,
             const char* label) {
  const evm::DecodedProgram program = evm::translate(code, opt.profile);
  evm::AnalysisOptions aopt;
  aopt.stack_limit = opt.stack_limit;
  aopt.code = code;
  const evm::AnalysisReport report = evm::analyze(program, aopt);

  if (!opt.quiet) {
    std::printf("%s: %zu bytes, %zu instructions, %zu blocks, %zu spans\n",
                label, code.size(), program.insts.size(),
                report.blocks.size(), program.spans.size());
  }
  if (opt.blocks) print_block_table(report, program);
  for (const evm::Diagnostic& d : report.diagnostics) {
    std::printf("%s:%04x: %s: [%s] %s\n", label, d.pc,
                d.severity == evm::Severity::Error ? "error" : "warning",
                std::string(evm::to_string(d.kind)).c_str(),
                d.message.c_str());
  }
  if (!opt.quiet) {
    std::printf("%s: %zu error(s), %zu warning(s)\n", label,
                report.error_count(), report.warning_count());
  }
  return report.clean() ? 0 : 1;
}

/// --file accepts both encodings: a file whose bytes are all hex digits /
/// whitespace is decoded as hex, anything else is raw bytecode.
evm::Bytes load_file(const std::string& path, bool& ok) {
  ok = false;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::vector<std::uint8_t> data;
  std::uint8_t buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    data.insert(data.end(), buf, buf + n);
  }
  std::fclose(f);
  ok = true;
  bool hexish = !data.empty();
  std::string text;
  for (const std::uint8_t b : data) {
    if (std::isspace(b) != 0) continue;
    if (std::isxdigit(b) == 0) {
      hexish = false;
      break;
    }
    text.push_back(static_cast<char>(b));
  }
  if (hexish && text.size() % 2 == 0) {
    try {
      return from_hex(text);
    } catch (const std::exception&) {
      // fall through to raw
    }
  }
  return data;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  opt.profile = evm::TranslationProfile{true, true, false};
  std::string code_hex;
  std::string file_path;
  std::size_t corpus_count = 0;
  bool corpus_mode = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    }
    if (arg == "--profile" && i + 1 < argc) {
      const std::string p = argv[++i];
      if (p == "ethereum") {
        const evm::VmConfig cfg = evm::VmConfig::ethereum();
        opt.profile = evm::TranslationProfile{false, cfg.iot_opcodes,
                                              cfg.block_opcodes};
        opt.stack_limit = cfg.stack_limit;
      } else if (p != "tiny") {
        std::fprintf(stderr, "unknown profile '%s'\n", p.c_str());
        return 2;
      }
      continue;
    }
    if (arg == "--file" && i + 1 < argc) {
      file_path = argv[++i];
      continue;
    }
    if (arg == "--corpus" && i + 1 < argc) {
      corpus_mode = true;
      corpus_count = static_cast<std::size_t>(std::atoll(argv[++i]));
      continue;
    }
    if (arg == "--blocks") {
      opt.blocks = true;
      continue;
    }
    if (arg == "--quiet") {
      opt.quiet = true;
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage();
      return 2;
    }
    code_hex = arg;
  }

  if (corpus_mode) {
    if (corpus_count == 0) {
      std::fprintf(stderr, "--corpus needs a positive count\n");
      return 2;
    }
    const corpus::Generator gen;
    Options quiet_opt = opt;
    quiet_opt.quiet = true;
    quiet_opt.blocks = false;
    std::size_t flagged = 0;
    for (std::size_t i = 0; i < corpus_count; ++i) {
      char label[32];
      std::snprintf(label, sizeof label, "corpus[%zu]", i);
      if (lint_one(gen.make(i).init_code, quiet_opt, label) != 0) {
        ++flagged;
      }
    }
    std::printf("linted %zu corpus contracts: %zu with findings\n",
                corpus_count, flagged);
    return flagged == 0 ? 0 : 1;
  }

  evm::Bytes code;
  if (!file_path.empty()) {
    bool ok = false;
    code = load_file(file_path, ok);
    if (!ok) {
      std::fprintf(stderr, "tinyevm-lint: cannot open %s\n",
                   file_path.c_str());
      return 2;
    }
  } else if (!code_hex.empty()) {
    try {
      code = from_hex(code_hex);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bad bytecode hex: %s\n", e.what());
      return 2;
    }
  } else {
    usage();
    return 2;
  }
  if (code.empty()) {
    std::fprintf(stderr, "tinyevm-lint: empty bytecode\n");
    return 2;
  }
  return lint_one(code, opt, file_path.empty() ? "code" : file_path.c_str());
}
