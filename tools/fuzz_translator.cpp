// libFuzzer harness for the bytecode translator: an N-way differential
// oracle over the execution-engine registry. Every input byte string runs
// once per registered engine (raw token-threaded, checked pre-decoded,
// check-elided, and whatever else registered — each with a fresh private
// CodeCache), and any divergence from the first engine (raw, the semantic
// reference) in status, output, gas, execution statistics, logs, or
// installed contracts aborts, which libFuzzer reports as a crash. A
// fourth engine registered at startup is fuzzed for free. The static
// analyzer also runs over every input's translation: it must never crash,
// whatever the bytes, and its proofs are held to execution — the block
// partition must cover the stream after dead-block pruning, dead-marked
// JUMPDESTs must carry no elide span, every statically-resolved dynamic
// jump must land where the dataflow said (via Message::jump_trace), and
// observed gas/cycles/ops/stack must stay within any certified WCET bound.
//
// Built behind TINYEVM_BUILD_FUZZERS. Under clang the binary is a real
// libFuzzer target (-fsanitize=fuzzer); elsewhere a standalone main() runs
// the same oracle over file arguments — or a built-in seed set when
// invoked bare, which is what the ctest smoke entry does.
//
// Input layout: byte 0 selects the profile (bit 0: TinyEVM vs Ethereum),
// the rest is the bytecode.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "channel/hub.hpp"
#include "evm/analysis.hpp"
#include "evm/code_cache.hpp"
#include "evm/decoded.hpp"
#include "evm/engine.hpp"
#include "evm/vm.hpp"

namespace {

using namespace tinyevm;

evm::VmConfig fuzz_config(std::uint8_t selector) {
  evm::VmConfig config = (selector & 1) != 0 ? evm::VmConfig::ethereum()
                                             : evm::VmConfig::tiny();
  // Keep per-input cost bounded: fuzzing wants iterations, not long runs.
  // (The Ethereum profile is additionally bounded by the 1M-gas message.)
  config.max_ops = 20'000;
  return config;
}

struct Observation {
  evm::ExecResult result;
  std::size_t log_count = 0;
  std::size_t contract_count = 0;
};

Observation run_once(std::span<const std::uint8_t> code,
                     const evm::VmConfig& config, const std::string& engine,
                     std::vector<evm::JumpEdge>* jump_trace = nullptr) {
  evm::VmConfig run_config = config;
  run_config.engine = engine;
  // A private cache per run: the oracle must never see another input's
  // translation, and the translate path itself is under test.
  channel::SensorBank sensors;
  sensors.set_reading(0, U256{11});
  sensors.set_reading(1, U256{22});
  sensors.register_actuator(2);
  channel::DeviceHost host(sensors, run_config);
  evm::Vm vm{run_config, std::make_shared<evm::CodeCache>()};
  evm::Message msg;
  msg.code.assign(code.begin(), code.end());
  msg.data = {0xde, 0xad, 0xbe, 0xef};
  msg.gas = 1'000'000;
  msg.jump_trace = jump_trace;
  Observation obs;
  obs.result = vm.execute(host, msg);
  obs.log_count = host.logs().size();
  obs.contract_count = host.contract_count();
  return obs;
}

#define FUZZ_CHECK(engine, cond)                                          \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "engine '%s' diverges from raw: %s (%s:%d)\n", \
                   (engine).c_str(), #cond, __FILE__, __LINE__);          \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#define ORACLE_CHECK(cond, what)                                        \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::fprintf(stderr, "analyzer oracle failed: %s — %s (%s:%d)\n", \
                   what, #cond, __FILE__, __LINE__);                    \
      std::abort();                                                     \
    }                                                                   \
  } while (0)

void check_one_input(const std::uint8_t* data, std::size_t size) {
  if (size == 0 || size > 4096) return;  // translator cap territory is
                                         // covered by unit tests
  const evm::VmConfig config = fuzz_config(data[0]);
  const std::span<const std::uint8_t> code{data + 1, size - 1};

  // The analyzer must accept any translation without crashing, and its
  // structural invariants must hold whatever the bytes.
  const evm::TranslationProfile profile{
      config.profile == evm::VmProfile::TinyEvm, config.iot_opcodes,
      config.block_opcodes};
  const evm::DecodedProgram program = evm::translate(code, profile);
  evm::AnalysisOptions aopt;
  aopt.stack_limit = config.stack_limit;
  aopt.code = code;
  const evm::AnalysisReport report = evm::analyze(program, aopt);

  // Block partition still covers the stream after dead-block pruning.
  std::size_t covered = 0;
  for (const evm::BasicBlock& b : report.blocks) covered += b.count;
  ORACLE_CHECK(covered == program.insts.size(),
               "block partition does not cover stream");

  // Pruning: a JUMPDEST leader the translator marked dead must carry no
  // elide span, and the standalone analyzer must agree it is unreachable.
  for (const evm::BasicBlock& b : report.blocks) {
    const evm::DecodedInst& lead = program.insts[b.first];
    if (lead.handler == evm::Handler::JumpDest &&
        (lead.aux2 & evm::kJumpDestDeadFlag) != 0) {
      ORACLE_CHECK(lead.target == evm::kNoJumpTarget,
                   "dead JUMPDEST leader still owns an elide span");
      ORACLE_CHECK(!b.reachable, "dead-marked block is reachable");
    }
  }

  // The translate-time summary and the standalone analyzer are two runs
  // of the same dataflow; their counters must agree exactly.
  ORACLE_CHECK(program.analysis.resolved_jumps == report.resolved_jumps,
               "resolved_jumps summary mismatch");
  ORACLE_CHECK(program.analysis.unresolved_jumps == report.unresolved_jumps,
               "unresolved_jumps summary mismatch");
  ORACLE_CHECK(program.analysis.dead_blocks == report.dead_blocks,
               "dead_blocks summary mismatch");
  ORACLE_CHECK(program.analysis.dead_slots == report.dead_slots,
               "dead_slots summary mismatch");

  // N-way sweep: the registry's first engine ("raw", the semantic
  // reference) sets the expectation; every other engine must match it
  // observation-for-observation.
  const std::vector<std::string> engines =
      evm::EngineRegistry::instance().names();
  const Observation reference = run_once(code, config, engines.front());
  for (std::size_t i = 1; i < engines.size(); ++i) {
    const std::string& engine = engines[i];
    const Observation obs = run_once(code, config, engine);
    FUZZ_CHECK(engine, obs.result.status == reference.result.status);
    FUZZ_CHECK(engine, obs.result.output == reference.result.output);
    FUZZ_CHECK(engine, obs.result.gas_left == reference.result.gas_left);
    FUZZ_CHECK(engine, obs.result.stats.ops_executed ==
                           reference.result.stats.ops_executed);
    FUZZ_CHECK(engine, obs.result.stats.mcu_cycles ==
                           reference.result.stats.mcu_cycles);
    FUZZ_CHECK(engine, obs.result.stats.max_stack_pointer ==
                           reference.result.stats.max_stack_pointer);
    FUZZ_CHECK(engine, obs.result.stats.peak_memory ==
                           reference.result.stats.peak_memory);
    FUZZ_CHECK(engine, obs.log_count == reference.log_count);
    FUZZ_CHECK(engine, obs.contract_count == reference.contract_count);
  }

  // Soundness of the dataflow's jump resolutions: rerun the checked
  // pre-decoded engine with the jump trace on. Every taken dynamic jump
  // whose block the analysis resolved must land exactly on the resolved
  // target, and a proven-bad constant jump must never succeed (the
  // checked handler records an edge only after validating the target).
  std::vector<evm::JumpEdge> trace;
  const Observation traced = run_once(code, config, "predecoded", &trace);
  std::unordered_map<std::uint32_t, std::uint32_t> resolved_edge;
  std::unordered_set<std::uint32_t> proven_bad;
  for (const evm::BasicBlock& b : report.blocks) {
    if (!b.dynamic_exit || !b.resolved) continue;
    const std::uint32_t from = program.insts[b.first + b.count - 1].pc;
    if (b.target != evm::BasicBlock::kNoBlock) {
      resolved_edge[from] = report.blocks[b.target].pc;
    } else {
      proven_bad.insert(from);
    }
  }
  for (const evm::JumpEdge& edge : trace) {
    const auto it = resolved_edge.find(edge.from_pc);
    if (it != resolved_edge.end()) {
      ORACLE_CHECK(edge.to_pc == it->second,
                   "resolved jump took a different edge at run time");
    }
    ORACLE_CHECK(proven_bad.count(edge.from_pc) == 0,
                 "proven-bad jump succeeded at run time");
  }

  // Soundness of the WCET certificate: whatever the run's status, the
  // observed per-frame statistics must stay within every certified bound
  // (a faulting run's consumption is a prefix of some complete path).
  const evm::ExecStats& stats = traced.result.stats;
  if (report.wcet.ops.certified) {
    ORACLE_CHECK(stats.ops_executed <= report.wcet.ops.bound,
                 "executed ops exceed the certified WCET bound");
  }
  if (report.wcet.cycles.certified) {
    ORACLE_CHECK(stats.mcu_cycles <= report.wcet.cycles.bound,
                 "modeled cycles exceed the certified WCET bound");
  }
  if (report.wcet.stack.certified) {
    ORACLE_CHECK(stats.max_stack_pointer <= report.wcet.stack.bound,
                 "stack peak exceeds the certified WCET bound");
  }
  if (report.wcet.gas.certified && config.metering &&
      (traced.result.status == evm::Status::Success ||
       traced.result.status == evm::Status::Revert)) {
    const std::uint64_t gas_used = static_cast<std::uint64_t>(
        1'000'000 - traced.result.gas_left);
    ORACLE_CHECK(gas_used <= report.wcet.gas.bound,
                 "metered gas exceeds the certified WCET bound");
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  check_one_input(data, size);
  return 0;
}

#ifndef TINYEVM_FUZZ_WITH_LIBFUZZER
namespace {

/// Built-in seeds for the bare standalone invocation: the shapes the
/// translator treats specially (fusion pairs, truncated PUSH, JUMPDEST in
/// pushdata, loops, SENSOR, CREATE) under both profiles.
std::vector<std::vector<std::uint8_t>> builtin_seeds() {
  std::vector<std::vector<std::uint8_t>> seeds = {
      {0x00, 0x60, 0x01, 0x60, 0x02, 0x01},              // PUSH+PUSH+ADD
      {0x00, 0x60, 0x05, 0x80, 0x02, 0x00},              // DUP1+MUL fusion
      {0x00, 0x60, 0x03, 0x56, 0x00, 0x5b, 0x00},        // PUSH+JUMP
      {0x00, 0x60, 0x5b, 0x5b, 0x00},                    // 0x5b in pushdata
      {0x00, 0x7f, 0xaa},                                // truncated PUSH32
      {0x01, 0x43, 0x50, 0x00},                          // NUMBER (eth only)
      {0x00, 0x60, 0x00, 0x60, 0x00, 0x0c, 0x50, 0x00},  // SENSOR read
      {0x00, 0x60, 0x0a, 0x5b, 0x60, 0x01, 0x90, 0x03,
       0x80, 0x60, 0x02, 0x57, 0x00},                    // counting loop
      {0x00, 0x60, 0x04, 0x60, 0x0a, 0x5b, 0x60, 0x01, 0x90, 0x03,
       0x80, 0x82, 0x57, 0x50, 0x50, 0x00},  // DUP-fed resolved dyn loop
      {0x01, 0x60, 0x00, 0x60, 0x00, 0x60, 0x00, 0xf0, 0x50, 0x00},  // CREATE
  };
  // A biased-random blob to poke undefined bytes and odd pairings.
  std::vector<std::uint8_t> blob{0x00};
  std::uint32_t x = 0x12345678;
  for (int i = 0; i < 512; ++i) {
    x = x * 1664525u + 1013904223u;
    blob.push_back(static_cast<std::uint8_t>(x >> 24));
  }
  seeds.push_back(std::move(blob));
  return seeds;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t ran = 0;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      std::FILE* f = std::fopen(argv[i], "rb");
      if (f == nullptr) {
        std::fprintf(stderr, "fuzz_translator: cannot open %s\n", argv[i]);
        return 1;
      }
      std::vector<std::uint8_t> data;
      std::uint8_t buf[4096];
      std::size_t n = 0;
      while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
        data.insert(data.end(), buf, buf + n);
      }
      std::fclose(f);
      LLVMFuzzerTestOneInput(data.data(), data.size());
      ++ran;
    }
  } else {
    for (const auto& seed : builtin_seeds()) {
      LLVMFuzzerTestOneInput(seed.data(), seed.size());
      ++ran;
    }
  }
  std::printf("fuzz_translator (standalone): %zu inputs, no divergence\n",
              ran);
  return 0;
}
#endif  // TINYEVM_FUZZ_WITH_LIBFUZZER
