// tinyevm-exec — run raw EVM bytecode on the TinyEVM (or Ethereum) profile
// from the command line. The tool a downstream user reaches for first:
//
//   tinyevm-exec 6001600201              # PUSH1 1 PUSH1 2 ADD
//   tinyevm-exec --profile ethereum --gas 100000 <hex>
//   tinyevm-exec --calldata <hex> --sensor 7=22 <hex>
//   tinyevm-exec --engine raw <hex>      # pick an execution engine
//   tinyevm-exec --list-engines          # registry contents
//   tinyevm-exec --disasm <hex>          # just disassemble
//
// Prints status, output, stack/memory statistics, and the modeled MCU time.
#include <cstdio>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "channel/manager.hpp"
#include "device/cc2538.hpp"
#include "evm/asm.hpp"
#include "evm/vm.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

using namespace tinyevm;

namespace {

void usage() {
  std::printf(
      "usage: tinyevm-exec [options] <hex-bytecode>\n"
      "  --profile tiny|ethereum   VM profile (default: tiny)\n"
      "  --engine <name>           execution engine (see --list-engines)\n"
      "  --list-engines            print the engine registry and exit\n"
      "  --calldata <hex>          message data\n"
      "  --gas <n>                 gas limit (ethereum profile)\n"
      "  --sensor <id>=<value>     provision a sensor (repeatable)\n"
      "  --disasm                  disassemble instead of executing\n"
      "  --metrics                 print a Prometheus scrape after the run\n"
      "  --metrics-json            print the scrape as JSON instead\n"
      "  --trace-out <path>        write a Chrome trace of the run\n");
}

}  // namespace

int main(int argc, char** argv) {
  evm::VmConfig config = evm::VmConfig::tiny();
  evm::Bytes calldata;
  std::int64_t gas = 10'000'000;
  bool disasm_only = false;
  bool metrics = false;
  bool metrics_json = false;
  std::string trace_out;
  channel::SensorBank sensors;
  std::string code_hex;
  std::string engine;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    }
    if (arg == "--list-engines") {
      const auto& registry = evm::EngineRegistry::instance();
      for (const std::string& name : registry.names()) {
        const evm::ExecutionEngine* e = registry.find(name);
        std::printf("%-12s %s\n", name.c_str(),
                    e != nullptr ? std::string(e->description()).c_str() : "");
      }
      return 0;
    }
    if (arg == "--engine" && i + 1 < argc) {
      engine = argv[++i];
      continue;
    }
    if (arg == "--profile" && i + 1 < argc) {
      const std::string p = argv[++i];
      if (p == "ethereum") {
        config = evm::VmConfig::ethereum();
      } else if (p != "tiny") {
        std::fprintf(stderr, "unknown profile '%s'\n", p.c_str());
        return 2;
      }
      continue;
    }
    if (arg == "--calldata" && i + 1 < argc) {
      try {
        calldata = from_hex(argv[++i]);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "bad calldata: %s\n", e.what());
        return 2;
      }
      continue;
    }
    if (arg == "--gas" && i + 1 < argc) {
      gas = std::atoll(argv[++i]);
      continue;
    }
    if (arg == "--sensor" && i + 1 < argc) {
      const std::string spec = argv[++i];
      const auto eq = spec.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "bad sensor spec '%s' (want id=value)\n",
                     spec.c_str());
        return 2;
      }
      sensors.set_reading(
          static_cast<std::uint32_t>(std::atoi(spec.substr(0, eq).c_str())),
          U256{static_cast<std::uint64_t>(
              std::atoll(spec.substr(eq + 1).c_str()))});
      continue;
    }
    if (arg == "--disasm") {
      disasm_only = true;
      continue;
    }
    if (arg == "--metrics") {
      metrics = true;
      continue;
    }
    if (arg == "--metrics-json") {
      metrics = true;
      metrics_json = true;
      continue;
    }
    if (arg == "--trace-out" && i + 1 < argc) {
      trace_out = argv[++i];
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage();
      return 2;
    }
    code_hex = arg;
  }

  if (code_hex.empty()) {
    usage();
    return 2;
  }

  evm::Bytes code;
  try {
    code = from_hex(code_hex);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bad bytecode hex: %s\n", e.what());
    return 2;
  }

  if (disasm_only) {
    for (const auto& entry : evm::disassemble(code)) {
      std::printf("%04llx  %-14s %s\n",
                  static_cast<unsigned long long>(entry.pc),
                  entry.name.c_str(),
                  entry.immediate.empty()
                      ? ""
                      : ("0x" + to_hex(entry.immediate)).c_str());
    }
    return 0;
  }

  config.engine = engine;
  channel::DeviceHost host(sensors, config);
  std::optional<evm::Vm> vm;
  try {
    vm.emplace(config);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  if (metrics) obs::set_metrics_enabled(true);
  if (!trace_out.empty()) obs::Tracer::instance().enable();

  evm::Message msg;
  msg.code = code;
  msg.data = calldata;
  msg.gas = gas;
  const evm::ExecResult r = vm->execute(host, msg);

  std::printf("engine      : %s\n",
              std::string(vm->engine_name()).c_str());
  std::printf("status      : %s\n",
              std::string(evm::to_string(r.status)).c_str());
  std::printf("output      : %s\n",
              r.output.empty() ? "(empty)" : ("0x" + to_hex(r.output)).c_str());
  if (config.metering) {
    std::printf("gas used    : %lld\n",
                static_cast<long long>(gas - r.gas_left));
  }
  std::printf("ops executed: %llu\n",
              static_cast<unsigned long long>(r.stats.ops_executed));
  std::printf("max stack   : %zu elements\n", r.stats.max_stack_pointer);
  std::printf("peak memory : %zu bytes\n", r.stats.peak_memory);
  std::printf("MCU time    : %.3f ms @ 32 MHz (%llu cycles)\n",
              static_cast<double>(r.stats.mcu_cycles) /
                  device::Cc2538Spec::kCyclesPerMs,
              static_cast<unsigned long long>(r.stats.mcu_cycles));
  if (!trace_out.empty() &&
      !obs::Tracer::instance().write_chrome_trace(trace_out)) {
    std::fprintf(stderr, "cannot write trace to '%s'\n", trace_out.c_str());
    return 2;
  }
  if (metrics) {
    // The scrape goes after a separator so scripts can split the human
    // report from the exposition text.
    std::printf("---\n%s", (metrics_json ? obs::json_scrape()
                                         : obs::prometheus_scrape())
                               .c_str());
  }
  return r.ok() ? 0 : 1;
}
