// Channel graph and route discovery — the paper's stated future work
// ("we will investigate the feasibility of payment networks and payment
// routing algorithms on low-power IoT devices", §VIII), built in the style
// of Lightning/Raiden on top of TinyEVM channels.
//
// Nodes are mote addresses; edges are open payment channels with a
// *directional* capacity each way (how much each side can still send
// before the channel is exhausted in that direction). Routing minimizes
// hop count (each hop costs a signature round on a constrained mote, so
// hops — not fees — are the scarce resource in IoT networks).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "crypto/secp256k1.hpp"
#include "u256/u256.hpp"

namespace tinyevm::network {

using secp256k1::Address;

/// One directional capacity pair for an open channel.
struct ChannelEdge {
  Address a{};
  Address b{};
  U256 capacity_ab;  ///< a can still send this much to b
  U256 capacity_ba;  ///< b can still send this much to a
  U256 channel_id;

  [[nodiscard]] const U256& capacity_from(const Address& from) const {
    return from == a ? capacity_ab : capacity_ba;
  }
};

/// Undirected multigraph of payment channels with directional balances.
class ChannelGraph {
 public:
  /// Adds a channel; both capacities given explicitly. Returns the edge
  /// index. Parallel channels between the same pair are allowed.
  std::size_t add_channel(const Address& a, const Address& b,
                          const U256& capacity_ab, const U256& capacity_ba,
                          const U256& channel_id);

  /// Removes a channel by edge index (closing it on-chain).
  void remove_channel(std::size_t edge_index);

  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }
  [[nodiscard]] const ChannelEdge* edge(std::size_t index) const;
  [[nodiscard]] std::vector<std::size_t> edges_of(const Address& node) const;

  /// Moves `amount` of directional capacity from->to across edge `index`
  /// (a payment shifts balance: sender capacity down, receiver capacity
  /// up). False when the capacity is insufficient.
  bool apply_payment(std::size_t edge_index, const Address& from,
                     const U256& amount);

  /// A route is the sequence of edge indices from sender to receiver.
  struct Route {
    std::vector<std::size_t> edges;
    std::vector<Address> nodes;  ///< sender first, receiver last
    [[nodiscard]] std::size_t hops() const { return edges.size(); }
  };

  /// BFS shortest-hop route with at least `amount` of directional
  /// capacity on every hop. Nullopt when no such route exists.
  [[nodiscard]] std::optional<Route> find_route(const Address& from,
                                                const Address& to,
                                                const U256& amount) const;

  /// All simple cycles through `node` with positive shiftable capacity —
  /// used by the Revive-style rebalancer. Bounded depth keeps it cheap.
  [[nodiscard]] std::optional<Route> find_rebalance_cycle(
      const Address& node, const U256& amount,
      std::size_t max_hops = 5) const;

 private:
  std::vector<std::optional<ChannelEdge>> edges_;  // nullopt = removed
  std::multimap<Address, std::size_t> adjacency_;
};

}  // namespace tinyevm::network
