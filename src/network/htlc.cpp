#include "network/htlc.hpp"

#include <cstring>

namespace tinyevm::network {

bool Htlc::fulfil(std::span<const std::uint8_t> preimage) {
  if (state != State::Pending) return false;
  if (keccak256(preimage) != payment_hash) return false;
  state = State::Fulfilled;
  return true;
}

bool Htlc::expire(std::uint64_t current_sequence) {
  if (state != State::Pending) return false;
  if (current_sequence <= expiry_sequence) return false;
  state = State::Expired;
  return true;
}

PaymentSecret PaymentSecret::derive(std::string_view seed,
                                    std::uint64_t attempt) {
  std::vector<std::uint8_t> material(seed.begin(), seed.end());
  for (unsigned i = 0; i < 8; ++i) {
    material.push_back(static_cast<std::uint8_t>(attempt >> (8 * i)));
  }
  PaymentSecret out;
  const Hash256 pre = keccak256(material);
  std::memcpy(out.preimage.data(), pre.data(), 32);
  out.hash = keccak256(out.preimage);
  return out;
}

}  // namespace tinyevm::network
