// Multi-hop payment orchestration over the channel graph — the end-to-end
// payment-network protocol (lock along the route, reveal at the receiver,
// settle backwards), plus the Revive-style rebalancer that shifts capacity
// around a cycle without touching the main chain.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "network/graph.hpp"
#include "network/htlc.hpp"

namespace tinyevm::network {

/// Per-node protocol statistics — consumed by the feasibility bench
/// (signatures are what cost energy on a mote).
struct NodeStats {
  std::uint64_t signatures = 0;
  std::uint64_t verifications = 0;
  std::uint64_t htlcs_forwarded = 0;
  std::uint64_t payments_received = 0;
};

/// Outcome of a multi-hop payment attempt.
struct PaymentOutcome {
  bool success = false;
  std::size_t hops = 0;
  std::size_t signature_rounds = 0;  ///< 2 per hop: lock + settle
  std::string failure;               ///< empty on success
};

/// The network simulator: a channel graph plus per-node behaviour flags
/// (for failure injection) and per-hop HTLC ledgers.
class PaymentNetwork {
 public:
  /// Opens a channel funded `capacity_ab`/`capacity_ba`; returns the edge.
  std::size_t open_channel(const Address& a, const Address& b,
                           const U256& capacity_ab, const U256& capacity_ba);

  /// Marks a node as unresponsive (crashed / out of radio range): every
  /// HTLC routed through it stalls and expires.
  void set_offline(const Address& node, bool offline);

  /// Sends `amount` from `from` to `to`, discovering a route, locking
  /// HTLCs hop by hop, revealing the preimage at the receiver, and
  /// settling backwards. Retries over alternative routes when a hop is
  /// offline (up to `max_attempts`).
  PaymentOutcome pay(const Address& from, const Address& to,
                     const U256& amount, unsigned max_attempts = 3);

  /// Revive-style rebalance: shifts `amount` around a cycle through
  /// `node`, restoring outbound capacity without an on-chain transaction.
  bool rebalance(const Address& node, const U256& amount);

  [[nodiscard]] const ChannelGraph& graph() const { return graph_; }
  [[nodiscard]] const NodeStats& stats(const Address& node) {
    return stats_[node];
  }
  /// Directional capacity over *all* channels from `from` toward `to`
  /// neighbours (diagnostic).
  [[nodiscard]] U256 outbound_capacity(const Address& node) const;

  [[nodiscard]] std::uint64_t htlcs_created() const { return htlc_counter_; }
  [[nodiscard]] std::uint64_t htlcs_expired() const { return expired_; }

 private:
  ChannelGraph graph_;
  std::map<Address, bool> offline_;
  std::map<Address, NodeStats> stats_;
  std::map<std::size_t, std::uint64_t> channel_clocks_;  ///< per-edge seq
  std::uint64_t htlc_counter_ = 0;
  std::uint64_t expired_ = 0;
  std::uint64_t attempt_counter_ = 0;
};

}  // namespace tinyevm::network
