// Hash-time-locked payments adapted to TinyEVM's logical-clock world.
//
// A multi-hop payment locks `amount` on every hop behind the same hash; the
// receiver reveals the preimage to claim the last hop, and the preimage
// propagates back, settling each hop. Where Lightning uses wall-clock
// expiries, TinyEVM hops expire by *sequence number*: each hop's lock dies
// when its channel's logical clock passes `expiry_sequence`, preserving the
// paper's no-synchronized-time design (§IV-D).
#pragma once

#include <cstdint>
#include <optional>

#include "crypto/hash.hpp"
#include "crypto/secp256k1.hpp"
#include "u256/u256.hpp"

namespace tinyevm::network {

using secp256k1::Address;

/// A hash-locked conditional payment on one channel hop.
struct Htlc {
  U256 channel_id;
  U256 amount;
  Hash256 payment_hash{};        ///< keccak256(preimage)
  std::uint64_t expiry_sequence = 0;  ///< dead once the channel clock passes

  enum class State : std::uint8_t { Pending, Fulfilled, Expired, Cancelled };
  State state = State::Pending;

  /// Fulfil with the preimage; false when the hash does not match or the
  /// lock is not pending.
  bool fulfil(std::span<const std::uint8_t> preimage);

  /// Expire against the channel's current logical clock; false when still
  /// live or already settled.
  bool expire(std::uint64_t current_sequence);

  [[nodiscard]] bool pending() const { return state == State::Pending; }
};

/// Generates a (preimage, hash) pair for a payment attempt; preimage is
/// derived deterministically from a secret seed and an attempt counter so
/// tests and simulations are reproducible.
struct PaymentSecret {
  std::array<std::uint8_t, 32> preimage{};
  Hash256 hash{};

  static PaymentSecret derive(std::string_view seed, std::uint64_t attempt);
};

}  // namespace tinyevm::network
