#include "network/payment_network.hpp"

namespace tinyevm::network {

std::size_t PaymentNetwork::open_channel(const Address& a, const Address& b,
                                         const U256& capacity_ab,
                                         const U256& capacity_ba) {
  const U256 id{graph_.edge_count() + 1};
  const std::size_t edge =
      graph_.add_channel(a, b, capacity_ab, capacity_ba, id);
  channel_clocks_[edge] = 0;
  return edge;
}

void PaymentNetwork::set_offline(const Address& node, bool offline) {
  offline_[node] = offline;
}

U256 PaymentNetwork::outbound_capacity(const Address& node) const {
  U256 total;
  for (std::size_t idx : graph_.edges_of(node)) {
    const auto* e = graph_.edge(idx);
    if (e) total += e->capacity_from(node);
  }
  return total;
}

PaymentOutcome PaymentNetwork::pay(const Address& from, const Address& to,
                                   const U256& amount,
                                   unsigned max_attempts) {
  PaymentOutcome outcome;
  // Edges found broken during this payment are drained temporarily so the
  // next route search avoids them; the drained capacity is restored when
  // the payment concludes (the stalled HTLCs expire and release it).
  struct Drain {
    std::size_t edge;
    Address from;
    U256 amount;
  };
  std::vector<Drain> drains;
  const auto restore_drains = [&] {
    for (const Drain& d : drains) {
      const auto* e = graph_.edge(d.edge);
      if (!e) continue;
      const Address& other = e->a == d.from ? e->b : e->a;
      graph_.apply_payment(d.edge, other, d.amount);
    }
    drains.clear();
  };

  for (unsigned attempt = 0; attempt < max_attempts; ++attempt) {
    const auto route = graph_.find_route(from, to, amount);
    if (!route || route->edges.empty()) {
      restore_drains();
      outcome.failure = route ? "self payment" : "no route with capacity";
      return outcome;
    }

    // The receiver derives the secret for this attempt.
    const PaymentSecret secret =
        PaymentSecret::derive("payment-secret", attempt_counter_++);

    // --- Lock phase: sender -> receiver, one HTLC per hop. ---
    std::vector<Htlc> locks;
    bool stalled = false;
    for (std::size_t i = 0; i < route->edges.size(); ++i) {
      const Address& hop_sender = route->nodes[i];
      const Address& hop_receiver = route->nodes[i + 1];

      // The sender signs and offers the lock regardless; whether the hop
      // acknowledges is the next question.
      Htlc lock;
      lock.channel_id = graph_.edge(route->edges[i])->channel_id;
      lock.amount = amount;
      lock.payment_hash = secret.hash;
      lock.expiry_sequence = ++channel_clocks_[route->edges[i]] + 16;
      locks.push_back(lock);
      ++htlc_counter_;
      stats_[hop_sender].signatures += 1;  // offer the lock

      // An offline intermediary never acknowledges: every lock placed so
      // far (including this one) dies by logical-clock expiry and the
      // sender reroutes around the silent hop.
      if (offline_[hop_receiver] && hop_receiver != to) {
        for (std::size_t j = 0; j < locks.size(); ++j) {
          channel_clocks_[route->edges[j]] = locks[j].expiry_sequence + 1;
          if (locks[j].expire(channel_clocks_[route->edges[j]])) ++expired_;
        }
        // Drain the edge so the next BFS avoids it; restored at the end.
        const U256 drained =
            graph_.edge(route->edges[i])->capacity_from(hop_sender);
        if (graph_.apply_payment(route->edges[i], hop_sender, drained)) {
          drains.push_back(Drain{route->edges[i], hop_sender, drained});
        }
        stalled = true;
        break;
      }
      stats_[hop_receiver].verifications += 1;  // validate the lock
      if (hop_receiver != to) stats_[hop_receiver].htlcs_forwarded += 1;
    }
    if (stalled) continue;

    // --- Reveal & settle phase: receiver -> sender. ---
    bool settled = true;
    for (std::size_t i = route->edges.size(); i-- > 0;) {
      Htlc& lock = locks[i];
      if (!lock.fulfil(secret.preimage)) {
        settled = false;
        break;
      }
      const Address& hop_sender = route->nodes[i];
      if (!graph_.apply_payment(route->edges[i], hop_sender, amount)) {
        settled = false;
        break;
      }
      channel_clocks_[route->edges[i]] += 1;
      stats_[route->nodes[i + 1]].signatures += 1;  // settlement signature
      stats_[hop_sender].verifications += 1;
    }
    if (!settled) {
      restore_drains();
      outcome.failure = "settlement failed mid-route";
      return outcome;
    }

    restore_drains();
    stats_[to].payments_received += 1;
    outcome.success = true;
    outcome.hops = route->hops();
    outcome.signature_rounds = route->hops() * 2;
    return outcome;
  }
  restore_drains();
  outcome.failure = "all attempts exhausted";
  return outcome;
}

bool PaymentNetwork::rebalance(const Address& node, const U256& amount) {
  const auto cycle = graph_.find_rebalance_cycle(node, amount);
  if (!cycle) return false;
  // Shift `amount` around the cycle: every hop pays its successor. Node's
  // depleted outbound edge regains capacity on the reverse direction.
  for (std::size_t i = 0; i < cycle->edges.size(); ++i) {
    if (!graph_.apply_payment(cycle->edges[i], cycle->nodes[i], amount)) {
      // Roll back the hops already applied (cannot fail: we just added
      // reverse capacity on each).
      for (std::size_t j = i; j-- > 0;) {
        graph_.apply_payment(cycle->edges[j], cycle->nodes[j + 1], amount);
      }
      return false;
    }
    stats_[cycle->nodes[i]].signatures += 1;
  }
  return true;
}

}  // namespace tinyevm::network
