#include "network/graph.hpp"

#include <algorithm>
#include <deque>

namespace tinyevm::network {

std::size_t ChannelGraph::add_channel(const Address& a, const Address& b,
                                      const U256& capacity_ab,
                                      const U256& capacity_ba,
                                      const U256& channel_id) {
  const std::size_t index = edges_.size();
  edges_.push_back(ChannelEdge{a, b, capacity_ab, capacity_ba, channel_id});
  adjacency_.emplace(a, index);
  adjacency_.emplace(b, index);
  return index;
}

void ChannelGraph::remove_channel(std::size_t edge_index) {
  if (edge_index >= edges_.size() || !edges_[edge_index]) return;
  const ChannelEdge edge = *edges_[edge_index];
  edges_[edge_index].reset();
  for (const Address* node : {&edge.a, &edge.b}) {
    auto [lo, hi] = adjacency_.equal_range(*node);
    for (auto it = lo; it != hi; ++it) {
      if (it->second == edge_index) {
        adjacency_.erase(it);
        break;
      }
    }
  }
}

const ChannelEdge* ChannelGraph::edge(std::size_t index) const {
  if (index >= edges_.size() || !edges_[index]) return nullptr;
  return &*edges_[index];
}

std::vector<std::size_t> ChannelGraph::edges_of(const Address& node) const {
  std::vector<std::size_t> out;
  auto [lo, hi] = adjacency_.equal_range(node);
  for (auto it = lo; it != hi; ++it) out.push_back(it->second);
  return out;
}

bool ChannelGraph::apply_payment(std::size_t edge_index, const Address& from,
                                 const U256& amount) {
  if (edge_index >= edges_.size() || !edges_[edge_index]) return false;
  ChannelEdge& e = *edges_[edge_index];
  if (from != e.a && from != e.b) return false;
  U256& forward = from == e.a ? e.capacity_ab : e.capacity_ba;
  U256& backward = from == e.a ? e.capacity_ba : e.capacity_ab;
  if (forward < amount) return false;
  forward -= amount;
  backward += amount;
  return true;
}

std::optional<ChannelGraph::Route> ChannelGraph::find_route(
    const Address& from, const Address& to, const U256& amount) const {
  if (from == to) return Route{{}, {from}};
  // BFS over nodes; remember the (edge, previous node) that discovered
  // each node.
  std::map<Address, std::pair<std::size_t, Address>> parent;
  std::deque<Address> frontier{from};
  std::map<Address, bool> seen{{from, true}};

  while (!frontier.empty()) {
    const Address node = frontier.front();
    frontier.pop_front();
    auto [lo, hi] = adjacency_.equal_range(node);
    for (auto it = lo; it != hi; ++it) {
      const auto* e = edge(it->second);
      if (!e) continue;
      if (e->capacity_from(node) < amount) continue;
      const Address next = e->a == node ? e->b : e->a;
      if (seen[next]) continue;
      seen[next] = true;
      parent[next] = {it->second, node};
      if (next == to) {
        // Reconstruct.
        Route route;
        Address cursor = to;
        while (cursor != from) {
          const auto& [edge_idx, prev] = parent[cursor];
          route.edges.push_back(edge_idx);
          route.nodes.push_back(cursor);
          cursor = prev;
        }
        route.nodes.push_back(from);
        std::reverse(route.edges.begin(), route.edges.end());
        std::reverse(route.nodes.begin(), route.nodes.end());
        return route;
      }
      frontier.push_back(next);
    }
  }
  return std::nullopt;
}

std::optional<ChannelGraph::Route> ChannelGraph::find_rebalance_cycle(
    const Address& node, const U256& amount, std::size_t max_hops) const {
  // DFS for a simple cycle node -> ... -> node with capacity everywhere.
  struct Frame {
    Address at;
    std::vector<std::size_t> edges;
    std::vector<Address> visited;
  };
  std::vector<Frame> stack{{node, {}, {node}}};
  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    if (frame.edges.size() >= max_hops) continue;
    auto [lo, hi] = adjacency_.equal_range(frame.at);
    for (auto it = lo; it != hi; ++it) {
      const auto* e = edge(it->second);
      if (!e) continue;
      if (e->capacity_from(frame.at) < amount) continue;
      // No edge reuse.
      if (std::find(frame.edges.begin(), frame.edges.end(), it->second) !=
          frame.edges.end()) {
        continue;
      }
      const Address next = e->a == frame.at ? e->b : e->a;
      if (next == node) {
        if (frame.edges.size() + 1 >= 3) {  // a real cycle, not an echo
          Route route;
          route.edges = frame.edges;
          route.edges.push_back(it->second);
          route.nodes = frame.visited;
          route.nodes.push_back(node);
          return route;
        }
        continue;
      }
      if (std::find(frame.visited.begin(), frame.visited.end(), next) !=
          frame.visited.end()) {
        continue;
      }
      Frame child = frame;
      child.at = next;
      child.edges.push_back(it->second);
      child.visited.push_back(next);
      stack.push_back(std::move(child));
    }
  }
  return std::nullopt;
}

}  // namespace tinyevm::network
