// Clang Thread Safety Analysis annotations (-Wthread-safety), plus a
// std::mutex wrapper the analysis can see.
//
// The macros follow the Abseil/clang-doc naming and expand to nothing on
// compilers without the attributes, so annotated headers stay portable to
// gcc. CI's clang leg builds with -Wthread-safety -Werror=thread-safety,
// turning "touched a GUARDED_BY field without its mutex" into a build
// break instead of a TSan-run coin flip.
//
// Annotate with:
//   * GUARDED_BY(mu) on data members that require `mu` held,
//   * REQUIRES(mu) on functions that must be called with `mu` held,
//   * runtime::Mutex + runtime::MutexLock instead of std::mutex +
//     std::unique_lock where the analysis should track the acquisition.
//
// std::mutex itself carries no capability attribute, so locks over it are
// invisible to the analysis; keep std::mutex only where a
// condition_variable needs the real type.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define TINYEVM_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef TINYEVM_THREAD_ANNOTATION
#define TINYEVM_THREAD_ANNOTATION(x)  // not clang: expand to nothing
#endif

#define CAPABILITY(x) TINYEVM_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY TINYEVM_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) TINYEVM_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) TINYEVM_THREAD_ANNOTATION(pt_guarded_by(x))
#define ACQUIRE(...) \
  TINYEVM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RELEASE(...) \
  TINYEVM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  TINYEVM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define REQUIRES(...) \
  TINYEVM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define EXCLUDES(...) TINYEVM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define RETURN_CAPABILITY(x) TINYEVM_THREAD_ANNOTATION(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  TINYEVM_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace tinyevm::runtime {

/// std::mutex with the `capability` attribute, so clang can connect
/// GUARDED_BY members to the lock that protects them. `impl()` exposes the
/// underlying mutex for code the analysis must not double-count (the
/// MutexLock constructors below).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }
  [[nodiscard]] std::mutex& impl() { return mu_; }

 private:
  std::mutex mu_;
};

/// Scoped lock over runtime::Mutex — std::unique_lock is invisible to the
/// analysis (and a scoped capability must not be returned from a function,
/// which rules out lock-helper factories; construct this inline instead).
/// The two-argument form counts the acquisition into `contentions` when
/// the mutex was already held: the lock-contention signal CodeCache and
/// ChannelHub export, now fused with the annotation-visible lock.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.impl().lock(); }

  MutexLock(Mutex& mu, std::atomic<std::uint64_t>& contentions) ACQUIRE(mu)
      : mu_(mu) {
    if (!mu_.impl().try_lock()) {
      contentions.fetch_add(1, std::memory_order_relaxed);
      mu_.impl().lock();
    }
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  ~MutexLock() RELEASE() { mu_.impl().unlock(); }

 private:
  Mutex& mu_;
};

}  // namespace tinyevm::runtime
