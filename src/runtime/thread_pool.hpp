// Reusable worker-pool runtime.
//
// The production-scale workloads (parallel corpus deployment today; the
// channel-hub and routing drivers the ROADMAP names next) all share the
// same shape: many independent units of work, each a few hundred
// microseconds to a few seconds, fanned out over a fixed set of worker
// threads that keep per-worker state (a Vm, a device host) alive across
// units. This module provides that substrate once: a task-queue thread
// pool plus fork-join helpers (`run_tasks`, `parallel_for`) with
// exception propagation, so callers never touch std::thread directly.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace tinyevm::runtime {

/// Fixed-size pool of worker threads consuming a FIFO task queue.
/// Destruction drains every task already submitted, then joins.
class ThreadPool {
 public:
  /// `threads == 0` means hardware_threads().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const { return threads_.size(); }

  /// Enqueues one task. Tasks must not throw (wrap with run_tasks for
  /// exception propagation) and must not submit-and-wait on the same pool
  /// from inside a task (that can deadlock a fully busy pool).
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and every popped task has finished.
  void wait_idle();

  /// std::thread::hardware_concurrency(), clamped to at least 1.
  [[nodiscard]] static std::size_t hardware_threads();

  /// Tasks submitted but not yet popped by a worker.
  [[nodiscard]] std::size_t queue_depth() const;
  /// Tasks popped and currently running.
  [[nodiscard]] std::size_t in_flight() const;
  /// Tasks completed since construction.
  [[nodiscard]] std::uint64_t tasks_executed() const;

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // workers sleep here
  std::condition_variable idle_cv_;  // wait_idle() sleeps here
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  // popped but not yet finished
  std::uint64_t tasks_executed_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
  /// Scrape-time registration publishing queue depth / in-flight /
  /// executed under a per-instance `pool` label. Declared last: the
  /// handle's destructor is the barrier that keeps a concurrent scrape
  /// from reading a pool mid-teardown.
  obs::CollectorHandle collector_;
};

/// Fork-join: runs fn(0) .. fn(tasks-1) on the pool and blocks until all
/// complete. The first exception any task throws is rethrown here (the
/// remaining tasks still run to completion).
void run_tasks(ThreadPool& pool, std::size_t tasks,
               const std::function<void(std::size_t)>& fn);

/// Blocking parallel loop over [0, count): worker tasks claim `chunk`
/// consecutive indices at a time from a shared cursor (dynamic
/// scheduling — heavy-tailed per-index cost doesn't serialize behind one
/// worker). fn must be safe to call concurrently for distinct indices.
void parallel_for(ThreadPool& pool, std::size_t count, std::size_t chunk,
                  const std::function<void(std::size_t)>& fn);

}  // namespace tinyevm::runtime
