#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <string>
#include <utility>

namespace tinyevm::runtime {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = hardware_threads();
  threads_.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    threads_.emplace_back([this] { worker_loop(); });
  }
  // Distinguish concurrent pools by construction order; the label is
  // stable for a fixed construction sequence, which is all the benches
  // and tools need.
  static std::atomic<std::uint64_t> next_pool_id{0};
  const std::string pool_label =
      "p" + std::to_string(next_pool_id.fetch_add(1, std::memory_order_relaxed));
  collector_ = obs::Registry::instance().add_collector(
      [this, pool_label](obs::Collection& out) {
        out.gauge("tinyevm_pool_threads", "Worker threads in the pool",
                  {{"pool", pool_label}},
                  static_cast<double>(thread_count()));
        out.gauge("tinyevm_pool_queue_depth",
                  "Tasks submitted but not yet picked up by a worker",
                  {{"pool", pool_label}}, static_cast<double>(queue_depth()));
        out.gauge("tinyevm_pool_in_flight", "Tasks currently running",
                  {{"pool", pool_label}}, static_cast<double>(in_flight()));
        out.counter("tinyevm_pool_tasks_total",
                    "Tasks completed since pool construction",
                    {{"pool", pool_label}},
                    static_cast<double>(tasks_executed()));
      });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

std::size_t ThreadPool::hardware_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

std::size_t ThreadPool::queue_depth() const {
  std::lock_guard lock(mu_);
  return queue_.size();
}

std::size_t ThreadPool::in_flight() const {
  std::lock_guard lock(mu_);
  return in_flight_;
}

std::uint64_t ThreadPool::tasks_executed() const {
  std::lock_guard lock(mu_);
  return tasks_executed_;
}

void ThreadPool::worker_loop() {
  std::unique_lock lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stop_ set and nothing left to drain
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++in_flight_;
    lock.unlock();
    task();
    lock.lock();
    --in_flight_;
    ++tasks_executed_;
    if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
  }
}

void run_tasks(ThreadPool& pool, std::size_t tasks,
               const std::function<void(std::size_t)>& fn) {
  if (tasks == 0) return;
  std::mutex mu;
  std::condition_variable done_cv;
  std::size_t remaining = tasks;
  std::exception_ptr error;
  for (std::size_t t = 0; t < tasks; ++t) {
    pool.submit([&, t] {
      std::exception_ptr thrown;
      try {
        fn(t);
      } catch (...) {
        thrown = std::current_exception();
      }
      std::lock_guard lock(mu);
      if (thrown && !error) error = thrown;
      if (--remaining == 0) done_cv.notify_all();
    });
  }
  std::unique_lock lock(mu);
  done_cv.wait(lock, [&] { return remaining == 0; });
  if (error) std::rethrow_exception(error);
}

void parallel_for(ThreadPool& pool, std::size_t count, std::size_t chunk,
                  const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (chunk == 0) chunk = 1;
  const std::size_t chunks = (count + chunk - 1) / chunk;
  const std::size_t runners = std::min(pool.thread_count(), chunks);
  std::atomic<std::size_t> cursor{0};
  run_tasks(pool, runners, [&](std::size_t) {
    for (;;) {
      const std::size_t begin =
          cursor.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= count) return;
      const std::size_t end = std::min(count, begin + chunk);
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }
  });
}

}  // namespace tinyevm::runtime
