// Simulated Ethereum main chain — the substrate the on-chain half of
// TinyEVM runs on. Provides accounts, balances, nonces, signed
// transactions, block production (block height doubles as the challenge
// clock), EVM contract deployment/calls in the Ethereum profile, and a
// native-contract hook used to host the Template contract.
//
// Consensus is out of scope for the paper as well: both parties trust the
// chain's finality, and the evaluation never measures mining. The chain
// here is a single-node state machine with deterministic block production.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "crypto/hash.hpp"
#include "crypto/secp256k1.hpp"
#include "evm/code_cache.hpp"
#include "evm/host.hpp"
#include "evm/vm.hpp"
#include "rlp/rlp.hpp"
#include "u256/u256.hpp"

namespace tinyevm::chain {

using secp256k1::Address;
using secp256k1::PrivateKey;

struct Account {
  U256 balance;
  std::uint64_t nonce = 0;
  evm::Bytes code;
  /// keccak256(code), maintained whenever code is installed; passed with
  /// every Message so the EVM's translation cache never rehashes the code.
  /// All-zero for accounts without code.
  Hash256 code_hash{};
  std::map<U256, U256> storage;
};

struct Transaction {
  Address from{};
  std::optional<Address> to;  ///< nullopt = contract creation
  U256 value;
  evm::Bytes data;
  std::uint64_t nonce = 0;
  std::int64_t gas_limit = 8'000'000;
  U256 gas_price{1};

  [[nodiscard]] Hash256 digest() const;
};

struct Receipt {
  bool success = false;
  Address contract_address{};  ///< set for creations
  evm::Bytes output;
  std::int64_t gas_used = 0;
  U256 fee_paid;
  std::vector<evm::LogEntry> logs;
};

struct Block {
  std::uint64_t number = 0;
  std::uint64_t timestamp = 0;
  Hash256 parent_hash{};
  Hash256 hash{};
  std::vector<Hash256> tx_hashes;
};

/// A native contract executes C++ instead of bytecode when called. The
/// on-chain Template contract registers through this hook, mirroring how a
/// production deployment would publish audited Solidity.
class NativeContract {
 public:
  virtual ~NativeContract() = default;
  /// Returns (success, output). May mutate chain state through the
  /// blockchain reference captured at registration.
  virtual std::pair<bool, evm::Bytes> invoke(const Address& caller,
                                             const U256& value,
                                             std::span<const std::uint8_t>
                                                 data) = 0;
};

class Blockchain {
 public:
  /// `code_cache` overrides the process-wide translation cache the chain's
  /// EVM consults (see evm::CodeCache); null keeps the shared default, so
  /// contracts deployed here warm the same cache the device VMs use.
  /// `engine` picks the chain Vm's execution engine (EngineRegistry name);
  /// empty keeps the Ethereum profile's default, unknown names throw
  /// std::invalid_argument.
  explicit Blockchain(std::shared_ptr<evm::CodeCache> code_cache = nullptr,
                      std::string engine = {});

  /// The registry name of the engine the chain Vm resolved.
  [[nodiscard]] std::string_view engine_name() const {
    return vm_.engine_name();
  }

  // -- accounts --
  void credit(const Address& addr, const U256& amount);
  [[nodiscard]] U256 balance_of(const Address& addr) const;
  [[nodiscard]] std::uint64_t nonce_of(const Address& addr) const;
  [[nodiscard]] const evm::Bytes* code_of(const Address& addr) const;
  [[nodiscard]] U256 storage_at(const Address& addr, const U256& key) const;

  // -- blocks (the logical challenge clock) --
  [[nodiscard]] std::uint64_t height() const { return blocks_.back().number; }
  [[nodiscard]] const Block& head() const { return blocks_.back(); }
  /// Seals the current block and starts the next (advances the clock).
  void mine_block();
  void mine_blocks(std::uint64_t n);

  // -- transactions --
  /// Applies a transaction (nonce + fee checks, EVM execution). The
  /// sender's key signs the canonical digest; a bad signature is rejected.
  std::optional<Receipt> apply(const Transaction& tx,
                               const secp256k1::Signature& sig);
  /// Convenience: sign with `key` and apply.
  std::optional<Receipt> submit(const PrivateKey& key, Transaction tx);

  // -- native contracts --
  void register_native(const Address& addr,
                       std::unique_ptr<NativeContract> contract);
  [[nodiscard]] bool is_native(const Address& addr) const {
    return natives_.contains(addr);
  }
  /// Nullptr when no native contract lives at `addr`.
  [[nodiscard]] NativeContract* native(const Address& addr) {
    const auto it = natives_.find(addr);
    return it == natives_.end() ? nullptr : it->second.get();
  }

  /// CREATE address derivation: keccak256(rlp([sender, nonce]))[12..].
  static Address derive_create_address(const Address& sender,
                                       std::uint64_t nonce);

  /// Direct value transfer between accounts (used by native contracts to
  /// move escrowed funds). False on insufficient balance. Takes `amount`
  /// by value: callers often pass a live balance reference, which the
  /// transfer itself mutates.
  bool transfer(const Address& from, const Address& to, U256 amount);

  [[nodiscard]] const std::vector<evm::LogEntry>& all_logs() const {
    return logs_;
  }

 private:
  Account& account(const Address& addr) { return accounts_[addr]; }

  std::map<Address, Account> accounts_;
  std::map<Address, std::unique_ptr<NativeContract>> natives_;
  std::vector<Block> blocks_;
  std::vector<evm::LogEntry> logs_;
  evm::Vm vm_;
};

}  // namespace tinyevm::chain
