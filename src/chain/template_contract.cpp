#include "chain/template_contract.hpp"

#include "abi/abi.hpp"

namespace tinyevm::chain {

std::string_view to_string(TemplateStatus s) {
  switch (s) {
    case TemplateStatus::Ok: return "ok";
    case TemplateStatus::UnknownChannel: return "unknown channel";
    case TemplateStatus::BadSignature: return "bad signature";
    case TemplateStatus::StaleSequence: return "stale sequence";
    case TemplateStatus::OverLockedFunds: return "over locked funds";
    case TemplateStatus::ChannelClosed: return "channel closed";
    case TemplateStatus::NotInChallenge: return "not in challenge window";
    case TemplateStatus::ChallengeActive: return "challenge window active";
    case TemplateStatus::InsufficientDeposit: return "insufficient deposit";
    case TemplateStatus::NotParticipant: return "not a participant";
  }
  return "unknown";
}

TemplateContract::TemplateContract(Blockchain& chain, Address self,
                                   Address receiver,
                                   std::uint64_t challenge_period)
    : chain_(chain),
      self_(self),
      receiver_(receiver),
      challenge_period_(challenge_period) {}

Hash256 TemplateContract::genesis_anchor() const {
  // Binds the off-chain logs to this specific template instance.
  std::array<std::uint8_t, 40> seed{};
  std::copy(self_.begin(), self_.end(), seed.begin());
  std::copy(receiver_.begin(), receiver_.end(), seed.begin() + 20);
  return keccak256(seed);
}

TemplateStatus TemplateContract::deposit(const Address& payer,
                                         const U256& amount,
                                         const U256& insurance) {
  if (insurance > amount) return TemplateStatus::InsufficientDeposit;
  if (!chain_.transfer(payer, self_, amount)) {
    return TemplateStatus::InsufficientDeposit;
  }
  locked_[payer] += amount - insurance;
  insurance_[payer] += insurance;
  return TemplateStatus::Ok;
}

std::optional<U256> TemplateContract::create_payment_channel(
    const Address& payer) {
  const auto it = locked_.find(payer);
  if (it == locked_.end() || it->second.is_zero()) return std::nullopt;

  logical_clock_ += 1;  // Listing 1: Logical-Clock += 1
  const U256 id{logical_clock_};
  ChannelRecord rec;
  rec.sender = payer;
  rec.receiver = receiver_;
  rec.deposit = it->second;
  rec.insurance = insurance_[payer];
  channels_[id] = rec;
  return id;
}

TemplateStatus TemplateContract::validate_commit(
    const channel::SignedState& state, ChannelRecord& rec) {
  if (rec.closed) return TemplateStatus::ChannelClosed;
  // Both parties must have signed exactly this digest.
  if (!state.verify(rec.sender, rec.receiver)) {
    return TemplateStatus::BadSignature;
  }
  // Logical clock: only strictly newer states advance the channel.
  if (state.state.sequence <= rec.highest_sequence) {
    return TemplateStatus::StaleSequence;
  }
  // Sum audit: cumulative payments can never exceed the locked funds.
  if (state.state.paid_total > rec.deposit) {
    return TemplateStatus::OverLockedFunds;
  }
  // Monotonicity of money: a newer state cannot pay less.
  if (state.state.paid_total < rec.committed_total) {
    return TemplateStatus::OverLockedFunds;
  }
  return TemplateStatus::Ok;
}

TemplateStatus TemplateContract::on_chain_commit(
    const channel::SignedState& state) {
  const auto it = channels_.find(state.state.channel_id);
  if (it == channels_.end()) return TemplateStatus::UnknownChannel;
  ChannelRecord& rec = it->second;

  const TemplateStatus status = validate_commit(state, rec);
  if (status != TemplateStatus::Ok) return status;

  // "Reporting a state with a higher sequence number accumulates the
  // changes of the previous states" — the delta joins the sum tree so the
  // root always carries the total committed value.
  const U256 delta = state.state.paid_total - rec.committed_total;
  rec.latest_leaf = tree_.append(delta, state.state.digest());
  rec.committed_delta = delta;

  rec.highest_sequence = state.state.sequence;
  rec.committed_total = state.state.paid_total;
  rec.committed_digest = state.state.digest();
  return TemplateStatus::Ok;
}

std::optional<CommitReceipt> TemplateContract::prove_latest_commit(
    const U256& channel_id) const {
  const auto it = channels_.find(channel_id);
  if (it == channels_.end() || !it->second.latest_leaf) return std::nullopt;
  const ChannelRecord& rec = it->second;
  auto proof = tree_.prove(*rec.latest_leaf);
  if (!proof) return std::nullopt;
  CommitReceipt receipt;
  receipt.leaf_index = *rec.latest_leaf;
  receipt.leaf_value = rec.committed_delta;
  receipt.leaf_digest = rec.committed_digest;
  receipt.proof = std::move(*proof);
  receipt.root = tree_.root();
  // The audit cap is the total value locked across the template: the sum
  // of every channel's committed value may never exceed the escrowed
  // deposits held by this contract.
  receipt.cap = chain_.balance_of(self_);
  return receipt;
}

TemplateStatus TemplateContract::challenge(
    const Address& challenger, const channel::SignedState& newer_state) {
  const auto it = channels_.find(newer_state.state.channel_id);
  if (it == channels_.end()) return TemplateStatus::UnknownChannel;
  ChannelRecord& rec = it->second;

  if (challenger != rec.sender && challenger != rec.receiver) {
    return TemplateStatus::NotParticipant;
  }
  if (!rec.exit_requested || rec.closed) {
    return TemplateStatus::NotInChallenge;
  }
  if (chain_.height() > rec.challenge_deadline) {
    return TemplateStatus::NotInChallenge;
  }
  if (!newer_state.verify(rec.sender, rec.receiver)) {
    return TemplateStatus::BadSignature;
  }
  if (newer_state.state.sequence <= rec.highest_sequence) {
    return TemplateStatus::StaleSequence;
  }
  if (newer_state.state.paid_total > rec.deposit ||
      newer_state.state.paid_total < rec.committed_total) {
    return TemplateStatus::OverLockedFunds;
  }

  // Fraud proven: the party that tried to settle on the stale state loses.
  // Only the payer posts insurance in this template (Listing 1), so the
  // bond is slashed to the challenger when the payer cheated; a cheating
  // receiver simply loses the stale claim. Either way the newer state wins.
  const Address cheat = challenger == rec.sender ? rec.receiver : rec.sender;
  if (cheat == rec.sender) {
    U256& bond = insurance_[rec.sender];
    if (!bond.is_zero()) {
      chain_.transfer(self_, challenger, bond);
      bond = U256{};
      rec.insurance = U256{};
    }
  }

  const U256 delta = newer_state.state.paid_total - rec.committed_total;
  rec.latest_leaf = tree_.append(delta, newer_state.state.digest());
  rec.committed_delta = delta;
  rec.highest_sequence = newer_state.state.sequence;
  rec.committed_total = newer_state.state.paid_total;
  rec.committed_digest = newer_state.state.digest();
  return TemplateStatus::Ok;
}

TemplateStatus TemplateContract::request_exit(const Address& requester,
                                              const U256& channel_id) {
  const auto it = channels_.find(channel_id);
  if (it == channels_.end()) return TemplateStatus::UnknownChannel;
  ChannelRecord& rec = it->second;
  if (rec.closed) return TemplateStatus::ChannelClosed;
  if (requester != rec.sender && requester != rec.receiver) {
    return TemplateStatus::NotParticipant;
  }
  rec.exit_requested = true;
  rec.challenge_deadline = chain_.height() + challenge_period_;
  return TemplateStatus::Ok;
}

TemplateStatus TemplateContract::finalize(const U256& channel_id) {
  const auto it = channels_.find(channel_id);
  if (it == channels_.end()) return TemplateStatus::UnknownChannel;
  ChannelRecord& rec = it->second;
  if (rec.closed) return TemplateStatus::ChannelClosed;
  if (!rec.exit_requested) return TemplateStatus::NotInChallenge;
  if (chain_.height() <= rec.challenge_deadline) {
    return TemplateStatus::ChallengeActive;
  }

  // Settle: receiver gets the committed total, sender the remainder plus
  // any surviving insurance.
  chain_.transfer(self_, rec.receiver, rec.committed_total);
  const U256 refund = rec.deposit - rec.committed_total;
  U256& bond = insurance_[rec.sender];
  chain_.transfer(self_, rec.sender, refund + bond);
  locked_[rec.sender] -= rec.deposit;
  bond = U256{};
  rec.closed = true;
  return TemplateStatus::Ok;
}

const ChannelRecord* TemplateContract::channel(const U256& id) const {
  const auto it = channels_.find(id);
  return it == channels_.end() ? nullptr : &it->second;
}

U256 TemplateContract::locked_of(const Address& payer) const {
  const auto it = locked_.find(payer);
  return it == locked_.end() ? U256{} : it->second;
}

// ---- ABI dispatch ----
//
// Wire interface used when motes interact via signed transactions:
//   deposit(uint256 insurance)                      payable
//   createPaymentChannel()                          -> uint256 id
//   commit(bytes state, bytes sigS, bytes sigR)
//   challenge(bytes state, bytes sigS, bytes sigR)
//   exit(uint256 id)
//   finalize(uint256 id)
//   logicalClock()                                  -> uint256

std::pair<bool, evm::Bytes> TemplateContract::invoke(
    const Address& caller, const U256& value,
    std::span<const std::uint8_t> data) {
  if (data.size() < 4) return {false, {}};
  const std::array<std::uint8_t, 4> sel{data[0], data[1], data[2], data[3]};
  abi::Decoder args(data.subspan(4));

  auto ok_uint = [](const U256& v) {
    const auto w = v.to_word();
    return std::make_pair(true, evm::Bytes{w.begin(), w.end()});
  };
  auto status_result = [](TemplateStatus s) {
    const auto w = U256{static_cast<std::uint64_t>(s)}.to_word();
    return std::make_pair(s == TemplateStatus::Ok,
                          evm::Bytes{w.begin(), w.end()});
  };
  auto parse_signed_state =
      [&args]() -> std::optional<channel::SignedState> {
    const auto state_bytes = args.read_bytes();
    const auto sig_s = args.read_bytes();
    const auto sig_r = args.read_bytes();
    if (!state_bytes || !sig_s || !sig_r) return std::nullopt;
    const auto state = channel::ChannelState::decode(*state_bytes);
    const auto sender_sig = secp256k1::Signature::deserialize(*sig_s);
    const auto receiver_sig = secp256k1::Signature::deserialize(*sig_r);
    if (!state || !sender_sig || !receiver_sig) return std::nullopt;
    return channel::SignedState{*state, *sender_sig, *receiver_sig};
  };

  if (sel == abi::selector("deposit(uint256)")) {
    const auto insurance = args.read_uint();
    if (!insurance) return {false, {}};
    // `value` was already credited to this contract by the chain; record it.
    if (*insurance > value) return {false, {}};
    locked_[caller] += value - *insurance;
    insurance_[caller] += *insurance;
    return {true, {}};
  }
  if (sel == abi::selector("createPaymentChannel()")) {
    const auto id = create_payment_channel(caller);
    if (!id) return {false, {}};
    return ok_uint(*id);
  }
  if (sel == abi::selector("commit(bytes,bytes,bytes)")) {
    const auto state = parse_signed_state();
    if (!state) return {false, {}};
    return status_result(on_chain_commit(*state));
  }
  if (sel == abi::selector("challenge(bytes,bytes,bytes)")) {
    const auto state = parse_signed_state();
    if (!state) return {false, {}};
    return status_result(challenge(caller, *state));
  }
  if (sel == abi::selector("exit(uint256)")) {
    const auto id = args.read_uint();
    if (!id) return {false, {}};
    return status_result(request_exit(caller, *id));
  }
  if (sel == abi::selector("finalize(uint256)")) {
    const auto id = args.read_uint();
    if (!id) return {false, {}};
    return status_result(finalize(*id));
  }
  if (sel == abi::selector("logicalClock()")) {
    return ok_uint(U256{logical_clock_});
  }
  return {false, {}};
}

}  // namespace tinyevm::chain
