// The on-chain Template contract (paper §IV-A/C/E, Listing 1).
//
// Published once by the service provider, it bridges the main chain and the
// off-chain payment channels:
//   * the payer locks a deposit (the channel budget + insurance),
//   * CreatePaymentChannel mints channel ids from a monotonic logical clock,
//   * OnChainCommit accepts doubly-signed channel states, validates the
//     sequence number against the highest seen, audits the cumulative sum
//     against the locked funds, and appends the state to a Merkle-Sum-Tree,
//   * Challenge lets the counterparty override a stale commit with a
//     higher-sequence signed state and claim the insurance,
//   * Exit starts the challenge period; Finalize (after it expires) settles
//     balances and dissolves the channel.
//
// All timing is logical: block height drives the challenge period, sequence
// numbers drive state ordering — no synchronized clocks anywhere.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "chain/chain.hpp"
#include "channel/merkle_sum_tree.hpp"
#include "channel/state.hpp"

namespace tinyevm::chain {

/// Result codes surfaced to callers (and the tests).
enum class TemplateStatus : std::uint8_t {
  Ok,
  UnknownChannel,
  BadSignature,        ///< signer pair does not match the channel parties
  StaleSequence,       ///< sequence not above the highest committed
  OverLockedFunds,     ///< cumulative sum exceeds the deposit (fraud)
  ChannelClosed,
  NotInChallenge,      ///< challenge/finalize outside the window
  ChallengeActive,     ///< finalize before the window expired
  InsufficientDeposit,
  NotParticipant,
};

[[nodiscard]] std::string_view to_string(TemplateStatus s);

struct ChannelRecord {
  Address sender{};    ///< payer (the car)
  Address receiver{};  ///< payee (the parking service)
  U256 deposit;        ///< locked channel budget
  U256 insurance;      ///< slashable bond, part of the deposit
  std::uint64_t highest_sequence = 0;
  U256 committed_total;        ///< paid_total of the best commit
  Hash256 committed_digest{};  ///< digest of the best committed state
  U256 committed_delta;        ///< value carried by the latest tree leaf
  std::optional<std::size_t> latest_leaf;  ///< index in the sum tree
  bool exit_requested = false;
  std::uint64_t challenge_deadline = 0;  ///< block height
  bool closed = false;
};

/// A verifiable receipt for one on-chain commit: the leaf the state landed
/// in, its membership proof, and the root/cap to audit against. Nodes use
/// this to confirm their payment is in the tree and the sum condition
/// holds ("the sum value is used as a validation condition along with the
/// hash value", §IV-E).
struct CommitReceipt {
  std::size_t leaf_index = 0;
  U256 leaf_value;       ///< delta this commit added
  Hash256 leaf_digest{}; ///< the committed state's digest
  channel::Proof proof;
  channel::SumNode root;
  U256 cap;  ///< the channel's locked funds

  [[nodiscard]] bool verify() const {
    return channel::MerkleSumTree::verify(root, leaf_value, leaf_digest,
                                          proof, cap);
  }
};

/// Native implementation of the factory/template contract. Registered on
/// the simulated chain at a fixed address; motes interact with it through
/// signed transactions exactly as they would with deployed Solidity.
class TemplateContract : public NativeContract {
 public:
  /// `challenge_period` in blocks ("in order of days" on mainnet; the
  /// simulation uses block counts directly).
  TemplateContract(Blockchain& chain, Address self, Address receiver,
                   std::uint64_t challenge_period);

  // ---- direct (typed) interface, used by tests and the device runtime ----

  /// Locks `amount` of `payer`'s on-chain funds into the contract;
  /// `insurance` of it is the slashable bond.
  TemplateStatus deposit(const Address& payer, const U256& amount,
                         const U256& insurance);

  /// Mints the next channel id from the logical clock.
  std::optional<U256> create_payment_channel(const Address& payer);

  /// Commits a doubly-signed off-chain state.
  TemplateStatus on_chain_commit(const channel::SignedState& state);

  /// Counterparty disputes with a strictly newer signed state during the
  /// challenge window; success slashes the misbehaving party's insurance to
  /// the challenger.
  TemplateStatus challenge(const Address& challenger,
                           const channel::SignedState& newer_state);

  /// Starts the challenge window for a channel (either party).
  TemplateStatus request_exit(const Address& requester, const U256& channel_id);

  /// After the window: pays the receiver the committed total, refunds the
  /// remainder (and unclaimed insurance) to the sender, closes the channel.
  TemplateStatus finalize(const U256& channel_id);

  // ---- views ----
  /// Membership receipt for a channel's latest commit; nullopt when the
  /// channel has no commit yet.
  [[nodiscard]] std::optional<CommitReceipt> prove_latest_commit(
      const U256& channel_id) const;

  [[nodiscard]] const ChannelRecord* channel(const U256& id) const;
  [[nodiscard]] std::uint64_t logical_clock() const { return logical_clock_; }
  [[nodiscard]] channel::SumNode side_chain_root() const {
    return tree_.root();
  }
  [[nodiscard]] U256 locked_of(const Address& payer) const;
  [[nodiscard]] const Address& receiver() const { return receiver_; }
  [[nodiscard]] const Address& address() const { return self_; }
  /// Root hash published with the template; anchors every mote's
  /// side-chain log (genesis link).
  [[nodiscard]] Hash256 genesis_anchor() const;

  // ---- NativeContract (ABI) interface ----
  std::pair<bool, evm::Bytes> invoke(const Address& caller, const U256& value,
                                     std::span<const std::uint8_t>
                                         data) override;

 private:
  TemplateStatus validate_commit(const channel::SignedState& state,
                                 ChannelRecord& rec);

  Blockchain& chain_;
  Address self_;
  Address receiver_;
  std::uint64_t challenge_period_;
  std::uint64_t logical_clock_ = 0;
  std::map<U256, ChannelRecord> channels_;
  std::map<Address, U256> locked_;     ///< per-payer escrow not yet assigned
  std::map<Address, U256> insurance_;  ///< per-payer slashable bond
  channel::MerkleSumTree tree_;
};

}  // namespace tinyevm::chain
