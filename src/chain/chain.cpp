#include "chain/chain.hpp"

#include <cstring>

namespace tinyevm::chain {
namespace {

/// Host adapter exposing Blockchain state to the Ethereum-profile EVM.
class ChainHost : public evm::Host {
 public:
  ChainHost(Blockchain& chain, std::map<Address, Account>& accounts,
            std::vector<evm::LogEntry>& logs, const Block& head,
            const evm::Vm& vm)
      : chain_(chain),
        accounts_(accounts),
        logs_(logs),
        head_(head),
        vm_(vm) {}

  U256 sload(const Address& addr, const U256& key) override {
    auto& st = accounts_[addr].storage;
    const auto it = st.find(key);
    return it == st.end() ? U256{} : it->second;
  }
  bool sstore(const Address& addr, const U256& key,
              const U256& value) override {
    auto& st = accounts_[addr].storage;
    if (value.is_zero()) {
      st.erase(key);
    } else {
      st[key] = value;
    }
    return true;
  }
  U256 balance(const Address& addr) override {
    return accounts_[addr].balance;
  }
  evm::Bytes code_at(const Address& addr) override {
    return accounts_[addr].code;
  }
  evm::BlockInfo block_info() override {
    evm::BlockInfo info;
    info.number = head_.number;
    info.timestamp = head_.timestamp;
    info.gas_limit = 8'000'000;
    return info;
  }
  Hash256 block_hash(std::uint64_t number) override {
    Hash256 h{};
    // Only the current chain head lineage matters to the simulation.
    h[23] = 0xB1;
    for (unsigned i = 0; i < 8; ++i) {
      h[31 - i] = static_cast<std::uint8_t>(number >> (8 * i));
    }
    return h;
  }
  evm::CallResult call(const evm::CallRequest& req) override {
    if (chain_.is_native(req.to)) {
      const auto [ok, output] =
          chain_.native(req.to)->invoke(req.sender, req.value, req.data);
      return evm::CallResult{ok, output, req.gas};
    }
    // Value transfer first (CALL semantics).
    if (!req.value.is_zero() &&
        !chain_.transfer(req.sender, req.to, req.value)) {
      return evm::CallResult{false, {}, 0};
    }
    const Account& callee = accounts_[req.to];
    if (callee.code.empty()) return evm::CallResult{true, {}, req.gas};
    evm::Message msg;
    msg.self = req.kind == evm::CallKind::DelegateCall ? req.sender : req.to;
    msg.caller = req.sender;
    msg.value = req.value;
    msg.data = req.data;
    msg.code = callee.code;
    // The per-account hash lets the translation cache skip rehashing the
    // runtime on every call.
    if (callee.code_hash != Hash256{}) {
      msg.code_hash = callee.code_hash;
    }
    msg.gas = req.gas;
    msg.depth = req.depth;
    msg.is_static = req.is_static;
    const evm::ExecResult r = vm_.execute(*this, msg);
    return evm::CallResult{r.ok(), r.output, r.gas_left};
  }
  evm::CreateResult create(const evm::CreateRequest& req) override {
    Account& sender = accounts_[req.sender];
    const Address addr =
        Blockchain::derive_create_address(req.sender, sender.nonce);
    sender.nonce += 1;
    if (!req.value.is_zero() &&
        !chain_.transfer(req.sender, addr, req.value)) {
      return evm::CreateResult{false, {}, 0};
    }
    evm::Message msg;
    msg.self = addr;
    msg.caller = req.sender;
    msg.value = req.value;
    msg.code = req.init_code;
    msg.gas = req.gas;
    msg.depth = req.depth;
    const evm::ExecResult r = vm_.execute(*this, msg);
    if (!r.ok()) return evm::CreateResult{false, {}, r.gas_left};
    accounts_[addr].code = r.output;
    accounts_[addr].code_hash = keccak256(r.output);
    return evm::CreateResult{true, addr, r.gas_left};
  }
  void emit_log(evm::LogEntry entry) override {
    logs_.push_back(std::move(entry));
  }
  void self_destruct(const Address& addr, const Address& beneficiary) override {
    // Copy before transferring: transfer() mutates the source balance,
    // and passing a reference into it would zero the amount mid-flight.
    const U256 swept = accounts_[addr].balance;
    chain_.transfer(addr, beneficiary, swept);
    accounts_[addr].code.clear();
    accounts_[addr].code_hash = Hash256{};
    accounts_[addr].storage.clear();
  }
  std::optional<U256> sensor_access(const evm::SensorRequest&) override {
    return std::nullopt;  // no sensors on the main chain
  }

 private:
  Blockchain& chain_;
  std::map<Address, Account>& accounts_;
  std::vector<evm::LogEntry>& logs_;
  const Block& head_;
  const evm::Vm& vm_;
};

}  // namespace

Hash256 Transaction::digest() const {
  std::vector<rlp::Item> fields;
  fields.push_back(rlp::Item::bytes(from));
  fields.push_back(to ? rlp::Item::bytes(*to) : rlp::Item::bytes(rlp::Bytes{}));
  fields.push_back(rlp::Item::quantity(value));
  fields.push_back(rlp::Item::bytes(data));
  fields.push_back(rlp::Item::quantity(U256{nonce}));
  fields.push_back(
      rlp::Item::quantity(U256{static_cast<std::uint64_t>(gas_limit)}));
  fields.push_back(rlp::Item::quantity(gas_price));
  return keccak256(rlp::encode(rlp::Item::list(std::move(fields))));
}

namespace {

evm::VmConfig chain_config(std::string engine) {
  evm::VmConfig config = evm::VmConfig::ethereum();
  config.engine = std::move(engine);
  return config;
}

}  // namespace

Blockchain::Blockchain(std::shared_ptr<evm::CodeCache> code_cache,
                       std::string engine)
    : vm_(chain_config(std::move(engine)), std::move(code_cache)) {
  Block genesis;
  genesis.number = 0;
  genesis.timestamp = 1'600'000'000;
  genesis.hash = keccak256("tinyevm-genesis");
  blocks_.push_back(genesis);
}

void Blockchain::credit(const Address& addr, const U256& amount) {
  accounts_[addr].balance += amount;
}

U256 Blockchain::balance_of(const Address& addr) const {
  const auto it = accounts_.find(addr);
  return it == accounts_.end() ? U256{} : it->second.balance;
}

std::uint64_t Blockchain::nonce_of(const Address& addr) const {
  const auto it = accounts_.find(addr);
  return it == accounts_.end() ? 0 : it->second.nonce;
}

const evm::Bytes* Blockchain::code_of(const Address& addr) const {
  const auto it = accounts_.find(addr);
  return it == accounts_.end() ? nullptr : &it->second.code;
}

U256 Blockchain::storage_at(const Address& addr, const U256& key) const {
  const auto it = accounts_.find(addr);
  if (it == accounts_.end()) return U256{};
  const auto slot = it->second.storage.find(key);
  return slot == it->second.storage.end() ? U256{} : slot->second;
}

void Blockchain::mine_block() {
  Block next;
  next.number = blocks_.back().number + 1;
  next.timestamp = blocks_.back().timestamp + 15;  // nominal 15 s cadence
  next.parent_hash = blocks_.back().hash;
  std::array<std::uint8_t, 40> seed{};
  std::memcpy(seed.data(), next.parent_hash.data(), 32);
  for (unsigned i = 0; i < 8; ++i) {
    seed[32 + i] = static_cast<std::uint8_t>(next.number >> (8 * i));
  }
  next.hash = keccak256(seed);
  blocks_.push_back(next);
}

void Blockchain::mine_blocks(std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) mine_block();
}

bool Blockchain::transfer(const Address& from, const Address& to,
                          U256 amount) {
  Account& src = accounts_[from];
  if (src.balance < amount) return false;
  src.balance -= amount;
  accounts_[to].balance += amount;
  return true;
}

Address Blockchain::derive_create_address(const Address& sender,
                                          std::uint64_t nonce) {
  const auto payload = rlp::encode(rlp::Item::list(
      {rlp::Item::bytes(sender), rlp::Item::quantity(U256{nonce})}));
  const Hash256 h = keccak256(payload);
  Address out;
  std::memcpy(out.data(), h.data() + 12, 20);
  return out;
}

void Blockchain::register_native(const Address& addr,
                                 std::unique_ptr<NativeContract> contract) {
  natives_[addr] = std::move(contract);
}

std::optional<Receipt> Blockchain::apply(const Transaction& tx,
                                         const secp256k1::Signature& sig) {
  // Sender authentication: the recovered address must match tx.from.
  const auto signer = secp256k1::recover_address(tx.digest(), sig);
  if (!signer || *signer != tx.from) return std::nullopt;

  Account& sender = accounts_[tx.from];
  if (tx.nonce != sender.nonce) return std::nullopt;

  // Up-front fee escrow (gas_limit * price) — the paper's motivation for
  // channels is precisely that this fee makes micropayments unaffordable.
  const U256 max_fee =
      U256{static_cast<std::uint64_t>(tx.gas_limit)} * tx.gas_price;
  if (sender.balance < max_fee + tx.value) return std::nullopt;
  sender.nonce += 1;
  sender.balance -= max_fee;

  Receipt receipt;
  const std::size_t log_mark = logs_.size();
  ChainHost host(*this, accounts_, logs_, blocks_.back(), vm_);

  if (!tx.to) {
    // Contract creation.
    evm::CreateRequest req;
    req.sender = tx.from;
    req.value = tx.value;
    req.init_code = tx.data;
    req.gas = tx.gas_limit;
    // create() bumps the nonce again for address derivation; compensate so
    // the external nonce advances exactly once per transaction.
    sender.nonce -= 1;
    const auto r = host.create(req);
    receipt.success = r.success;
    receipt.contract_address = r.address;
    receipt.gas_used = tx.gas_limit - r.gas_left;
  } else if (is_native(*tx.to)) {
    if (!tx.value.is_zero() && !transfer(tx.from, *tx.to, tx.value)) {
      receipt.success = false;
    } else {
      const auto [ok, output] =
          natives_.at(*tx.to)->invoke(tx.from, tx.value, tx.data);
      receipt.success = ok;
      receipt.output = output;
      receipt.gas_used = 21'000;  // flat native-call cost
    }
  } else {
    evm::CallRequest req;
    req.to = *tx.to;
    req.sender = tx.from;
    req.value = tx.value;
    req.data = tx.data;
    req.gas = tx.gas_limit;
    const auto r = host.call(req);
    receipt.success = r.success;
    receipt.output = r.output;
    receipt.gas_used = tx.gas_limit - r.gas_left;
  }

  if (receipt.gas_used < 21'000) receipt.gas_used = 21'000;  // intrinsic gas
  receipt.fee_paid =
      U256{static_cast<std::uint64_t>(receipt.gas_used)} * tx.gas_price;
  // Refund the unused escrow.
  sender.balance += max_fee - receipt.fee_paid;
  receipt.logs.assign(logs_.begin() + static_cast<long>(log_mark),
                      logs_.end());
  blocks_.back().tx_hashes.push_back(tx.digest());
  return receipt;
}

std::optional<Receipt> Blockchain::submit(const PrivateKey& key,
                                          Transaction tx) {
  tx.from = key.address();
  tx.nonce = nonce_of(tx.from);
  const auto sig = secp256k1::sign(tx.digest(), key);
  return apply(tx, sig);
}

}  // namespace tinyevm::chain
