#include "crypto/secp256k1.hpp"

#include <cassert>
#include <chrono>
#include <cstring>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tinyevm::secp256k1 {
namespace {

/// RAII latency sample for one ECDSA primitive: records elapsed µs into
/// `tinyevm_crypto_<op>_us` on scope exit. The registry intern (mutex +
/// string build) only happens when metrics are enabled, and at ~3 ms per
/// scalar multiplication it is noise even then.
class CryptoSample {
 public:
  CryptoSample(const char* op, const char* help) noexcept {
    if (!obs::metrics_enabled()) return;
    op_ = op;
    help_ = help;
    start_ = std::chrono::steady_clock::now();
  }
  CryptoSample(const CryptoSample&) = delete;
  CryptoSample& operator=(const CryptoSample&) = delete;
  ~CryptoSample() {
    if (op_ == nullptr || !obs::metrics_enabled()) return;
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    obs::Registry::instance()
        .histogram(std::string("tinyevm_crypto_") + op_ + "_us", help_)
        .record(static_cast<std::uint64_t>(us));
  }

 private:
  const char* op_ = nullptr;
  const char* help_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

// p = 2^256 - 2^32 - 977
const U256 kP = U256{0xFFFFFFFFFFFFFFFFULL, 0xFFFFFFFFFFFFFFFFULL,
                     0xFFFFFFFFFFFFFFFFULL, 0xFFFFFFFEFFFFFC2FULL};
// n (group order)
const U256 kN = U256{0xFFFFFFFFFFFFFFFFULL, 0xFFFFFFFFFFFFFFFEULL,
                     0xBAAEDCE6AF48A03BULL, 0xBFD25E8CD0364141ULL};
// Generator coordinates.
const U256 kGx = U256{0x79BE667EF9DCBBACULL, 0x55A06295CE870B07ULL,
                      0x029BFCDB2DCE28D9ULL, 0x59F2815B16F81798ULL};
const U256 kGy = U256{0x483ADA7726A3C465ULL, 0x5DA4FBFC0E1108A8ULL,
                      0xFD17B448A6855419ULL, 0x9C47D08FFB10D4B8ULL};

// 2^256 - p = 2^32 + 977; fits a single limb, enabling fast folding
// reduction of 512-bit products.
constexpr std::uint64_t kPComplement = 0x1000003D1ULL;

using u64 = std::uint64_t;
using u128 = unsigned __int128;

// Reduce a 5-limb value (4 limbs + carry limb `extra`) modulo p by folding
// extra * 2^256 ≡ extra * kPComplement (mod p).
U256 fold_once(const U256& lo, u64 extra, bool& overflow) {
  U256 add = U256{extra} * U256{kPComplement};
  // add < 2^97, lo < 2^256: the sum can carry one bit out.
  U256 sum = lo + add;
  overflow = sum < lo;  // wrapped past 2^256
  return sum;
}

// a * b mod p using the 2^256 ≡ 2^32 + 977 identity (two folds + final
// conditional subtractions).
U256 mul_mod_p(const U256& a, const U256& b) {
  const U512 wide = U512::mul(a, b);
  U256 lo{wide.limb(3), wide.limb(2), wide.limb(1), wide.limb(0)};
  const U256 hi{wide.limb(7), wide.limb(6), wide.limb(5), wide.limb(4)};

  // r = lo + hi * kPComplement (hi * c is up to 2^256 * 2^33 -> 2 limbs of
  // overflow handled by a second fold).
  const U512 hi_c = U512::mul(hi, U256{kPComplement});
  const U256 hi_c_lo{hi_c.limb(3), hi_c.limb(2), hi_c.limb(1), hi_c.limb(0)};
  const u64 hi_c_hi = hi_c.limb(4);  // < 2^33

  U256 r = lo + hi_c_lo;
  u64 carry = (r < lo) ? 1 : 0;
  // Fold (carry + hi_c_hi) * 2^256.
  bool ovf = false;
  r = fold_once(r, carry + hi_c_hi, ovf);
  if (ovf) {
    // One more tiny fold; the addend is kPComplement < 2^65 so no further
    // overflow is possible after subtraction below.
    r = r + U256{kPComplement};
  }
  while (r >= kP) r -= kP;
  return r;
}

U256 add_mod_p(const U256& a, const U256& b) {
  U256 r = a + b;
  if (r < a || r >= kP) r -= kP;  // wrapped or exceeded p
  return r;
}

U256 sub_mod_p(const U256& a, const U256& b) {
  if (a >= b) return a - b;
  return a + (kP - b);
}

// Generic modular helpers for the scalar field (cold path; U512-based).
U256 mul_mod_n(const U256& a, const U256& b) {
  return U256::mulmod(a, b, kN);
}

U256 add_mod_n(const U256& a, const U256& b) {
  return U256::addmod(a, b, kN);
}

U256 inv_mod_n(const U256& a) {
  // Fermat: a^(n-2) mod n.
  U256 result{1};
  U256 base = a % kN;
  U256 e = kN - U256{2};
  for (unsigned i = 0; i < e.bit_length(); ++i) {
    if (e.bit(i)) result = mul_mod_n(result, base);
    base = mul_mod_n(base, base);
  }
  return result;
}

}  // namespace

U256 field_prime() { return kP; }
U256 group_order() { return kN; }

Fe::Fe(const U256& v) : v_(v) { assert(v < kP); }

Fe Fe::from_reduced(const U256& v) {
  Fe out;
  out.v_ = v % kP;
  return out;
}

Fe operator+(const Fe& a, const Fe& b) { return Fe{add_mod_p(a.v_, b.v_)}; }
Fe operator-(const Fe& a, const Fe& b) { return Fe{sub_mod_p(a.v_, b.v_)}; }
Fe operator*(const Fe& a, const Fe& b) { return Fe{mul_mod_p(a.v_, b.v_)}; }

Fe Fe::inverse() const {
  // a^(p-2) via square-and-multiply (LSB first).
  Fe result{U256{1}};
  Fe base = *this;
  const U256 e = kP - U256{2};
  for (unsigned i = 0; i < e.bit_length(); ++i) {
    if (e.bit(i)) result = result * base;
    base = base.square();
  }
  return result;
}

std::optional<Fe> Fe::sqrt() const {
  // p ≡ 3 (mod 4): sqrt(a) = a^((p+1)/4) when a is a QR.
  Fe result{U256{1}};
  Fe base = *this;
  const U256 e = (kP + U256{1}) >> 2;
  for (unsigned i = 0; i < e.bit_length(); ++i) {
    if (e.bit(i)) result = result * base;
    base = base.square();
  }
  if (result.square() == *this) return result;
  return std::nullopt;
}

Fe Fe::negate() const {
  if (v_.is_zero()) return *this;
  return Fe{kP - v_};
}

bool AffinePoint::on_curve() const {
  if (infinity) return true;
  const Fe seven{U256{7}};
  return y.square() == x.square() * x + seven;
}

JacobianPoint JacobianPoint::infinity() {
  return {Fe{U256{1}}, Fe{U256{1}}, Fe{U256{0}}};
}

JacobianPoint JacobianPoint::from_affine(const AffinePoint& p) {
  if (p.infinity) return infinity();
  return {p.x, p.y, Fe{U256{1}}};
}

AffinePoint JacobianPoint::to_affine() const {
  if (z.is_zero()) return AffinePoint{};
  const Fe z_inv = z.inverse();
  const Fe z_inv2 = z_inv.square();
  return AffinePoint{x * z_inv2, y * z_inv2 * z_inv, false};
}

AffinePoint generator() { return AffinePoint{Fe{kGx}, Fe{kGy}, false}; }

JacobianPoint double_point(const JacobianPoint& p) {
  if (p.z.is_zero() || p.y.is_zero()) return JacobianPoint::infinity();
  // Standard dbl-2009-l formulas for a = 0.
  const Fe a = p.x.square();
  const Fe b = p.y.square();
  const Fe c = b.square();
  Fe d = (p.x + b).square() - a - c;
  d = d + d;  // D = 2*((X+B)^2 - A - C)
  const Fe e = a + a + a;
  const Fe f = e.square();
  const Fe x3 = f - (d + d);
  Fe c8 = c + c;
  c8 = c8 + c8;
  c8 = c8 + c8;
  const Fe y3 = e * (d - x3) - c8;
  const Fe z3 = (p.y * p.z) + (p.y * p.z);
  return {x3, y3, z3};
}

JacobianPoint add(const JacobianPoint& p, const JacobianPoint& q) {
  if (p.z.is_zero()) return q;
  if (q.z.is_zero()) return p;
  // add-2007-bl.
  const Fe z1z1 = p.z.square();
  const Fe z2z2 = q.z.square();
  const Fe u1 = p.x * z2z2;
  const Fe u2 = q.x * z1z1;
  const Fe s1 = p.y * q.z * z2z2;
  const Fe s2 = q.y * p.z * z1z1;
  if (u1 == u2) {
    if (s1 == s2) return double_point(p);
    return JacobianPoint::infinity();
  }
  const Fe h = u2 - u1;
  Fe i = h + h;
  i = i.square();
  const Fe j = h * i;
  Fe r = s2 - s1;
  r = r + r;
  const Fe v = u1 * i;
  const Fe x3 = r.square() - j - (v + v);
  Fe s1j = s1 * j;
  const Fe y3 = r * (v - x3) - (s1j + s1j);
  const Fe z3 = ((p.z + q.z).square() - z1z1 - z2z2) * h;
  return {x3, y3, z3};
}

JacobianPoint scalar_mul(const U256& k, const AffinePoint& p) {
  JacobianPoint acc = JacobianPoint::infinity();
  const JacobianPoint base = JacobianPoint::from_affine(p);
  for (int i = static_cast<int>(k.bit_length()) - 1; i >= 0; --i) {
    acc = double_point(acc);
    if (k.bit(static_cast<unsigned>(i))) acc = add(acc, base);
  }
  return acc;
}

JacobianPoint shamir_mul(const U256& k1, const U256& k2,
                         const AffinePoint& p) {
  const JacobianPoint g = JacobianPoint::from_affine(generator());
  const JacobianPoint q = JacobianPoint::from_affine(p);
  const JacobianPoint gq = add(g, q);
  JacobianPoint acc = JacobianPoint::infinity();
  const unsigned bits = std::max(k1.bit_length(), k2.bit_length());
  for (int i = static_cast<int>(bits) - 1; i >= 0; --i) {
    acc = double_point(acc);
    const bool b1 = k1.bit(static_cast<unsigned>(i));
    const bool b2 = k2.bit(static_cast<unsigned>(i));
    if (b1 && b2) {
      acc = add(acc, gq);
    } else if (b1) {
      acc = add(acc, g);
    } else if (b2) {
      acc = add(acc, q);
    }
  }
  return acc;
}

std::array<std::uint8_t, 64> PublicKey::serialize() const {
  std::array<std::uint8_t, 64> out;
  const auto xw = point.x.value().to_word();
  const auto yw = point.y.value().to_word();
  std::memcpy(out.data(), xw.data(), 32);
  std::memcpy(out.data() + 32, yw.data(), 32);
  return out;
}

Address PublicKey::address() const {
  const auto ser = serialize();
  const Hash256 h = keccak256(ser);
  Address out;
  std::memcpy(out.data(), h.data() + 12, 20);
  return out;
}

std::optional<PrivateKey> PrivateKey::from_scalar(const U256& k) {
  if (k.is_zero() || k >= kN) return std::nullopt;
  return PrivateKey{k};
}

std::optional<PrivateKey> PrivateKey::from_bytes(const Hash256& bytes) {
  return from_scalar(U256::from_bytes(bytes));
}

PrivateKey PrivateKey::from_seed(std::string_view seed) {
  Hash256 h = keccak256(seed);
  for (;;) {
    if (auto key = from_bytes(h)) return *key;
    h = keccak256(h);
  }
}

PublicKey PrivateKey::public_key() const {
  return PublicKey{scalar_mul(d_, generator()).to_affine()};
}

std::array<std::uint8_t, 65> Signature::serialize() const {
  std::array<std::uint8_t, 65> out;
  const auto rw = r.to_word();
  const auto sw = s.to_word();
  std::memcpy(out.data(), rw.data(), 32);
  std::memcpy(out.data() + 32, sw.data(), 32);
  out[64] = static_cast<std::uint8_t>(27 + recovery_id);
  return out;
}

std::optional<Signature> Signature::deserialize(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() != 65) return std::nullopt;
  Signature sig;
  sig.r = U256::from_bytes(bytes.subspan(0, 32));
  sig.s = U256::from_bytes(bytes.subspan(32, 32));
  const std::uint8_t v = bytes[64];
  if (v != 27 && v != 28 && v != 0 && v != 1) return std::nullopt;
  sig.recovery_id = static_cast<std::uint8_t>(v >= 27 ? v - 27 : v);
  return sig;
}

U256 rfc6979_nonce(const U256& key, const Hash256& digest) {
  // RFC 6979 §3.2 with SHA-256; qlen == hlen == 256 so bits2octets is a
  // plain reduction mod n.
  const auto key_word = key.to_word();
  const U256 h_reduced = U256::from_bytes(digest) % kN;
  const auto h_word = h_reduced.to_word();

  std::array<std::uint8_t, 32> v;
  std::array<std::uint8_t, 32> k;
  v.fill(0x01);
  k.fill(0x00);

  auto hmac_concat = [&](std::uint8_t sep_byte, bool include_material) {
    std::vector<std::uint8_t> msg(v.begin(), v.end());
    msg.push_back(sep_byte);
    if (include_material) {
      msg.insert(msg.end(), key_word.begin(), key_word.end());
      msg.insert(msg.end(), h_word.begin(), h_word.end());
    }
    return hmac_sha256(k, msg);
  };

  Hash256 t = hmac_concat(0x00, true);
  std::memcpy(k.data(), t.data(), 32);
  t = hmac_sha256(k, v);
  std::memcpy(v.data(), t.data(), 32);
  t = hmac_concat(0x01, true);
  std::memcpy(k.data(), t.data(), 32);
  t = hmac_sha256(k, v);
  std::memcpy(v.data(), t.data(), 32);

  for (;;) {
    t = hmac_sha256(k, v);
    std::memcpy(v.data(), t.data(), 32);
    const U256 candidate = U256::from_bytes(v);
    if (!candidate.is_zero() && candidate < kN) return candidate;
    // Retry path: K = HMAC(K, V || 0x00); V = HMAC(K, V).
    std::vector<std::uint8_t> msg(v.begin(), v.end());
    msg.push_back(0x00);
    t = hmac_sha256(k, msg);
    std::memcpy(k.data(), t.data(), 32);
    t = hmac_sha256(k, v);
    std::memcpy(v.data(), t.data(), 32);
  }
}

Signature sign(const Hash256& digest, const PrivateKey& key) {
  obs::Span span("crypto.sign", "crypto");
  CryptoSample sample("sign", "ECDSA sign latency in microseconds");
  const U256 z = U256::from_bytes(digest) % kN;
  U256 k = rfc6979_nonce(key.scalar(), digest);
  for (;;) {
    const AffinePoint rp = scalar_mul(k, generator()).to_affine();
    const U256 r = rp.x.value() % kN;
    if (r.is_zero()) {
      k = add_mod_n(k, U256{1});
      continue;
    }
    const U256 k_inv = inv_mod_n(k);
    U256 s = mul_mod_n(k_inv, add_mod_n(z, mul_mod_n(r, key.scalar())));
    if (s.is_zero()) {
      k = add_mod_n(k, U256{1});
      continue;
    }
    std::uint8_t rec = rp.y.value().bit(0) ? 1 : 0;
    // Low-s normalization (Ethereum/BIP-62): s' = n - s flips R.y parity.
    if (s > (kN >> 1)) {
      s = kN - s;
      rec ^= 1;
    }
    return Signature{r, s, rec};
  }
}

bool verify(const Hash256& digest, const Signature& sig,
            const PublicKey& pub) {
  obs::Span span("crypto.verify", "crypto");
  CryptoSample sample("verify", "ECDSA verify latency in microseconds");
  if (sig.r.is_zero() || sig.r >= kN || sig.s.is_zero() || sig.s >= kN) {
    return false;
  }
  if (pub.point.infinity || !pub.point.on_curve()) return false;
  const U256 z = U256::from_bytes(digest) % kN;
  const U256 s_inv = inv_mod_n(sig.s);
  const U256 u1 = mul_mod_n(z, s_inv);
  const U256 u2 = mul_mod_n(sig.r, s_inv);
  const AffinePoint r_point = shamir_mul(u1, u2, pub.point).to_affine();
  if (r_point.infinity) return false;
  return r_point.x.value() % kN == sig.r;
}

std::optional<PublicKey> recover(const Hash256& digest, const Signature& sig) {
  obs::Span span("crypto.recover", "crypto");
  CryptoSample sample("recover", "ECDSA recover latency in microseconds");
  if (sig.r.is_zero() || sig.r >= kN || sig.s.is_zero() || sig.s >= kN) {
    return std::nullopt;
  }
  // R.x = r (we ignore the r + n overflow case: probability ~2^-128 and
  // Ethereum tooling does the same for channel messages).
  if (sig.r >= kP) return std::nullopt;
  const Fe x{sig.r};
  const Fe y2 = x.square() * x + Fe{U256{7}};
  const auto y_opt = y2.sqrt();
  if (!y_opt) return std::nullopt;
  Fe y = *y_opt;
  const bool y_is_odd = y.value().bit(0);
  if (y_is_odd != (sig.recovery_id == 1)) y = y.negate();

  const AffinePoint r_point{x, y, false};
  // Q = r^{-1} (s*R - z*G)
  const U256 r_inv = inv_mod_n(sig.r);
  const U256 z = U256::from_bytes(digest) % kN;
  const U256 u1 = mul_mod_n(kN - (z % kN), r_inv);  // -z * r^-1
  const U256 u2 = mul_mod_n(sig.s, r_inv);
  const AffinePoint q = shamir_mul(u1, u2, r_point).to_affine();
  if (q.infinity) return std::nullopt;
  return PublicKey{q};
}

std::optional<Address> recover_address(const Hash256& digest,
                                       const Signature& sig) {
  const auto pub = recover(digest, sig);
  if (!pub) return std::nullopt;
  return pub->address();
}

}  // namespace tinyevm::secp256k1
