// secp256k1 elliptic-curve arithmetic and ECDSA, implemented from scratch.
//
// TinyEVM's off-chain payments are "stand-alone artifacts that can claim
// money from the main-chain" (paper §IV-D) — their security is entirely the
// ECDSA signatures exchanged between the two motes, so this repo implements
// real signatures rather than stubs. The curve is Ethereum's secp256k1
// (y^2 = x^3 + 7 over F_p, p = 2^256 - 2^32 - 977); signing uses RFC-6979
// deterministic nonces and Ethereum's low-s normalization, and public-key
// recovery gives the ecrecover semantics used to verify payments by address.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>

#include "crypto/hash.hpp"
#include "u256/u256.hpp"

namespace tinyevm::secp256k1 {

/// Field prime p = 2^256 - 2^32 - 977.
U256 field_prime();
/// Group order n.
U256 group_order();

/// Element of F_p. Thin wrapper over U256 with fast specialized reduction.
class Fe {
 public:
  constexpr Fe() = default;
  /// Value must already be < p (checked by assert in debug builds).
  explicit Fe(const U256& v);
  static Fe from_reduced(const U256& v);  ///< reduces v mod p first

  [[nodiscard]] const U256& value() const { return v_; }
  [[nodiscard]] bool is_zero() const { return v_.is_zero(); }

  friend Fe operator+(const Fe& a, const Fe& b);
  friend Fe operator-(const Fe& a, const Fe& b);
  friend Fe operator*(const Fe& a, const Fe& b);
  friend bool operator==(const Fe& a, const Fe& b) = default;

  [[nodiscard]] Fe square() const { return *this * *this; }
  /// Multiplicative inverse via Fermat (a^(p-2)); inverse of 0 is 0.
  [[nodiscard]] Fe inverse() const;
  /// Square root if it exists (p ≡ 3 mod 4, so a^((p+1)/4)).
  [[nodiscard]] std::optional<Fe> sqrt() const;
  [[nodiscard]] Fe negate() const;

 private:
  U256 v_;
};

/// Affine point; `infinity` flag models the identity.
struct AffinePoint {
  Fe x;
  Fe y;
  bool infinity = true;

  [[nodiscard]] bool on_curve() const;
  friend bool operator==(const AffinePoint& a, const AffinePoint& b) = default;
};

/// Jacobian projective point (X/Z^2, Y/Z^3) for add/double without per-op
/// inversions.
struct JacobianPoint {
  Fe x;
  Fe y;
  Fe z;  // z == 0 encodes infinity

  static JacobianPoint infinity();
  static JacobianPoint from_affine(const AffinePoint& p);
  [[nodiscard]] AffinePoint to_affine() const;
};

/// Curve generator G.
AffinePoint generator();

JacobianPoint add(const JacobianPoint& p, const JacobianPoint& q);
JacobianPoint double_point(const JacobianPoint& p);
/// Scalar multiplication k*P (double-and-add, MSB first).
JacobianPoint scalar_mul(const U256& k, const AffinePoint& p);
/// k1*G + k2*P in one pass (Shamir's trick) — the ECDSA-verify hot path.
JacobianPoint shamir_mul(const U256& k1, const U256& k2, const AffinePoint& p);

/// 20-byte Ethereum address.
using Address = std::array<std::uint8_t, 20>;

struct PublicKey {
  AffinePoint point;

  /// 64-byte uncompressed X||Y (no 0x04 tag — Ethereum convention for
  /// address derivation).
  [[nodiscard]] std::array<std::uint8_t, 64> serialize() const;
  /// keccak256(X||Y)[12..31].
  [[nodiscard]] Address address() const;

  friend bool operator==(const PublicKey& a, const PublicKey& b) = default;
};

class PrivateKey {
 public:
  /// Key must be in [1, n-1]; returns nullopt otherwise.
  static std::optional<PrivateKey> from_bytes(const Hash256& bytes);
  static std::optional<PrivateKey> from_scalar(const U256& k);
  /// Deterministic test/demo key derived by hashing a seed string until a
  /// valid scalar appears (not for production use, stated in README).
  static PrivateKey from_seed(std::string_view seed);

  [[nodiscard]] const U256& scalar() const { return d_; }
  [[nodiscard]] PublicKey public_key() const;
  [[nodiscard]] Address address() const { return public_key().address(); }

 private:
  explicit PrivateKey(const U256& d) : d_(d) {}
  U256 d_;
};

struct Signature {
  U256 r;
  U256 s;
  /// Recovery id (0 or 1): parity of R.y after low-s normalization, as in
  /// Ethereum's `v = 27 + recovery_id`.
  std::uint8_t recovery_id = 0;

  /// 65-byte r||s||v wire form used in the channel messages.
  [[nodiscard]] std::array<std::uint8_t, 65> serialize() const;
  static std::optional<Signature> deserialize(
      std::span<const std::uint8_t> bytes);

  friend bool operator==(const Signature& a, const Signature& b) = default;
};

/// ECDSA over a 32-byte digest with an RFC-6979 deterministic nonce.
/// The returned signature is low-s normalized.
Signature sign(const Hash256& digest, const PrivateKey& key);

/// Standard ECDSA verification (accepts any s, not just low-s).
bool verify(const Hash256& digest, const Signature& sig, const PublicKey& pub);

/// Recovers the signing public key (ecrecover); nullopt when the signature
/// does not correspond to a valid curve point.
std::optional<PublicKey> recover(const Hash256& digest, const Signature& sig);

/// Convenience: recover + address extraction; zero address on failure is
/// never returned (nullopt instead).
std::optional<Address> recover_address(const Hash256& digest,
                                       const Signature& sig);

/// RFC-6979 nonce for (key, digest) — exposed for test vectors.
U256 rfc6979_nonce(const U256& key, const Hash256& digest);

}  // namespace tinyevm::secp256k1
