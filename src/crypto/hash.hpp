// Hash primitives used throughout TinyEVM.
//
// Keccak-256 uses the original Keccak padding (0x01) as Ethereum does — the
// paper implements it in software on the MCU because the CC2538 crypto engine
// lacks it (Table V). SHA-256 matches FIPS 180-4 and backs HMAC/RFC-6979.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace tinyevm {

using Hash256 = std::array<std::uint8_t, 32>;

/// Ethereum-style Keccak-256 (original Keccak submission padding, not the
/// NIST SHA3-256 variant).
[[nodiscard]] Hash256 keccak256(std::span<const std::uint8_t> data);
[[nodiscard]] Hash256 keccak256(std::string_view data);

/// FIPS 180-4 SHA-256.
[[nodiscard]] Hash256 sha256(std::span<const std::uint8_t> data);
[[nodiscard]] Hash256 sha256(std::string_view data);

/// HMAC-SHA-256 (RFC 2104), used by the RFC-6979 deterministic nonce
/// generator in the ECDSA signer.
[[nodiscard]] Hash256 hmac_sha256(std::span<const std::uint8_t> key,
                                  std::span<const std::uint8_t> message);

/// Incremental SHA-256, needed by HMAC and available for streaming use.
class Sha256 {
 public:
  Sha256();
  void update(std::span<const std::uint8_t> data);
  [[nodiscard]] Hash256 finalize();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_{};
  std::uint64_t total_len_ = 0;
  std::size_t buffer_len_ = 0;
};

/// Hex rendering for diagnostics and test vectors ("deadbeef", no prefix).
[[nodiscard]] std::string to_hex(std::span<const std::uint8_t> data);
/// Parses bare hex ("0x" prefix allowed); throws std::invalid_argument on
/// malformed input.
[[nodiscard]] std::vector<std::uint8_t> from_hex(std::string_view hex);

}  // namespace tinyevm
