#include "crypto/hash.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>
#include <string>

namespace tinyevm {
namespace {

// ---- Keccak-f[1600] ----

constexpr std::array<std::uint64_t, 24> kKeccakRoundConstants = {
    0x0000000000000001ULL, 0x0000000000008082ULL, 0x800000000000808aULL,
    0x8000000080008000ULL, 0x000000000000808bULL, 0x0000000080000001ULL,
    0x8000000080008081ULL, 0x8000000000008009ULL, 0x000000000000008aULL,
    0x0000000000000088ULL, 0x0000000080008009ULL, 0x000000008000000aULL,
    0x000000008000808bULL, 0x800000000000008bULL, 0x8000000000008089ULL,
    0x8000000000008003ULL, 0x8000000000008002ULL, 0x8000000000000080ULL,
    0x000000000000800aULL, 0x800000008000000aULL, 0x8000000080008081ULL,
    0x8000000000008080ULL, 0x0000000080000001ULL, 0x8000000080008008ULL};

constexpr std::array<unsigned, 25> kRotationOffsets = {
    0,  1,  62, 28, 27,  // x=0..4, y=0
    36, 44, 6,  55, 20,  // y=1
    3,  10, 43, 25, 39,  // y=2
    41, 45, 15, 21, 8,   // y=3
    18, 2,  61, 56, 14,  // y=4
};

void keccak_f1600(std::array<std::uint64_t, 25>& a) {
  for (unsigned round = 0; round < 24; ++round) {
    // Theta
    std::array<std::uint64_t, 5> c{};
    for (unsigned x = 0; x < 5; ++x) {
      c[x] = a[x] ^ a[x + 5] ^ a[x + 10] ^ a[x + 15] ^ a[x + 20];
    }
    for (unsigned x = 0; x < 5; ++x) {
      const std::uint64_t d = c[(x + 4) % 5] ^ std::rotl(c[(x + 1) % 5], 1);
      for (unsigned y = 0; y < 5; ++y) a[x + 5 * y] ^= d;
    }
    // Rho + Pi
    std::array<std::uint64_t, 25> b{};
    for (unsigned x = 0; x < 5; ++x) {
      for (unsigned y = 0; y < 5; ++y) {
        const unsigned src = x + 5 * y;
        const unsigned dst = y + 5 * ((2 * x + 3 * y) % 5);
        b[dst] = std::rotl(a[src], static_cast<int>(kRotationOffsets[src]));
      }
    }
    // Chi
    for (unsigned y = 0; y < 5; ++y) {
      for (unsigned x = 0; x < 5; ++x) {
        a[x + 5 * y] =
            b[x + 5 * y] ^ (~b[(x + 1) % 5 + 5 * y] & b[(x + 2) % 5 + 5 * y]);
      }
    }
    // Iota
    a[0] ^= kKeccakRoundConstants[round];
  }
}

Hash256 keccak256_impl(std::span<const std::uint8_t> data) {
  constexpr std::size_t kRate = 136;  // (1600 - 2*256) / 8
  std::array<std::uint64_t, 25> state{};

  // Absorb full blocks.
  std::size_t offset = 0;
  while (data.size() - offset >= kRate) {
    for (std::size_t i = 0; i < kRate / 8; ++i) {
      std::uint64_t lane;
      std::memcpy(&lane, data.data() + offset + i * 8, 8);
      state[i] ^= lane;  // little-endian host assumed (x86-64/ARM64)
    }
    keccak_f1600(state);
    offset += kRate;
  }

  // Final partial block with 0x01 ... 0x80 padding (original Keccak).
  std::array<std::uint8_t, kRate> block{};
  const std::size_t remaining = data.size() - offset;
  // Empty input has a null data(); memcpy's arguments are declared
  // nonnull even for zero sizes (UBSan flags it).
  if (remaining != 0) {
    std::memcpy(block.data(), data.data() + offset, remaining);
  }
  block[remaining] = 0x01;
  block[kRate - 1] |= 0x80;
  for (std::size_t i = 0; i < kRate / 8; ++i) {
    std::uint64_t lane;
    std::memcpy(&lane, block.data() + i * 8, 8);
    state[i] ^= lane;
  }
  keccak_f1600(state);

  Hash256 out;
  std::memcpy(out.data(), state.data(), 32);
  return out;
}

// ---- SHA-256 constants ----

constexpr std::array<std::uint32_t, 64> kSha256K = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

}  // namespace

Hash256 keccak256(std::span<const std::uint8_t> data) {
  return keccak256_impl(data);
}

Hash256 keccak256(std::string_view data) {
  return keccak256_impl(
      {reinterpret_cast<const std::uint8_t*>(data.data()), data.size()});
}

Sha256::Sha256()
    : state_{0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
             0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19} {}

void Sha256::process_block(const std::uint8_t* block) {
  std::array<std::uint32_t, 64> w;
  for (unsigned i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[i * 4]) << 24) |
           (static_cast<std::uint32_t>(block[i * 4 + 1]) << 16) |
           (static_cast<std::uint32_t>(block[i * 4 + 2]) << 8) |
           static_cast<std::uint32_t>(block[i * 4 + 3]);
  }
  for (unsigned i = 16; i < 64; ++i) {
    const std::uint32_t s0 = std::rotr(w[i - 15], 7) ^ std::rotr(w[i - 15], 18) ^
                             (w[i - 15] >> 3);
    const std::uint32_t s1 = std::rotr(w[i - 2], 17) ^ std::rotr(w[i - 2], 19) ^
                             (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  auto [a, b, c, d, e, f, g, h] = state_;
  for (unsigned i = 0; i < 64; ++i) {
    const std::uint32_t s1 =
        std::rotr(e, 6) ^ std::rotr(e, 11) ^ std::rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t temp1 = h + s1 + ch + kSha256K[i] + w[i];
    const std::uint32_t s0 =
        std::rotr(a, 2) ^ std::rotr(a, 13) ^ std::rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t temp2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha256::update(std::span<const std::uint8_t> data) {
  if (data.empty()) return;  // empty spans have a null data() (UB in memcpy)
  total_len_ += data.size();
  std::size_t offset = 0;
  if (buffer_len_ > 0) {
    const std::size_t take = std::min(data.size(), 64 - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset = take;
    if (buffer_len_ == 64) {
      process_block(buffer_.data());
      buffer_len_ = 0;
    }
  }
  while (data.size() - offset >= 64) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffer_len_ = data.size() - offset;
  }
}

Hash256 Sha256::finalize() {
  const std::uint64_t bit_len = total_len_ * 8;
  const std::uint8_t pad = 0x80;
  update({&pad, 1});
  const std::uint8_t zero = 0x00;
  while (buffer_len_ != 56) {
    update({&zero, 1});
  }
  std::array<std::uint8_t, 8> len_bytes;
  for (unsigned i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<std::uint8_t>(bit_len >> ((7 - i) * 8));
  }
  update(len_bytes);

  Hash256 out;
  for (unsigned i = 0; i < 8; ++i) {
    out[i * 4] = static_cast<std::uint8_t>(state_[i] >> 24);
    out[i * 4 + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    out[i * 4 + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    out[i * 4 + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return out;
}

Hash256 sha256(std::span<const std::uint8_t> data) {
  Sha256 h;
  h.update(data);
  return h.finalize();
}

Hash256 sha256(std::string_view data) {
  return sha256(
      std::span{reinterpret_cast<const std::uint8_t*>(data.data()), data.size()});
}

Hash256 hmac_sha256(std::span<const std::uint8_t> key,
                    std::span<const std::uint8_t> message) {
  std::array<std::uint8_t, 64> block_key{};
  if (key.size() > 64) {
    const Hash256 hashed = sha256(key);
    std::memcpy(block_key.data(), hashed.data(), hashed.size());
  } else {
    std::memcpy(block_key.data(), key.data(), key.size());
  }

  std::array<std::uint8_t, 64> ipad;
  std::array<std::uint8_t, 64> opad;
  for (unsigned i = 0; i < 64; ++i) {
    ipad[i] = block_key[i] ^ 0x36;
    opad[i] = block_key[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(message);
  const Hash256 inner_hash = inner.finalize();

  Sha256 outer;
  outer.update(opad);
  outer.update(inner_hash);
  return outer.finalize();
}

std::string to_hex(std::span<const std::uint8_t> data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

std::vector<std::uint8_t> from_hex(std::string_view hex) {
  if (hex.starts_with("0x") || hex.starts_with("0X")) hex.remove_prefix(2);
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("from_hex: odd-length input");
  }
  auto digit = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  std::vector<std::uint8_t> out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = digit(hex[i]);
    const int lo = digit(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      throw std::invalid_argument("from_hex: non-hex character");
    }
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

}  // namespace tinyevm
