// Device-side payment-channel endpoint.
//
// Each mote runs a ChannelEndpoint: a name, an ECDSA key, one local
// TinyEVM interpreter, and one ChannelSession (hub.hpp) holding the
// deployed template contract and the hash-linked side-chain log. The
// session machine itself lives in hub.hpp — the same state machine a
// ChannelHub runs thousands of times over — and the endpoint methods are
// thin adapters binding it to this device's key and Vm.
//
// Two ways to talk to a peer:
//   * the classic two-party calls (make_payment / countersign / accept),
//     which the Table IV / Figure 5 benches and the mote examples drive;
//   * the hub message API (open_request / propose_payment / close_request
//     → ChannelHub::handle → apply), where the endpoint exchanges only
//     serialized SignedState artifacts with a channel server.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "channel/hub.hpp"
#include "channel/state.hpp"
#include "channel/template_bytecode.hpp"
#include "evm/host.hpp"
#include "evm/vm.hpp"

namespace tinyevm::channel {

/// One side of a payment channel (e.g. the smart car, or the parking
/// sensor). Owns a key, a local TinyEVM, and the side-chain log.
class ChannelEndpoint {
 public:
  /// `engine` picks the local Vm's execution engine (EngineRegistry name);
  /// empty keeps the TinyEVM profile's default. Unknown names throw
  /// std::invalid_argument (from the Vm constructor).
  ChannelEndpoint(std::string name, const PrivateKey& key,
                  const Hash256& onchain_root, std::string engine = {});

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Address address() const { return key_.address(); }
  /// The registry name of the engine the local Vm resolved.
  [[nodiscard]] std::string_view engine_name() const {
    return vm_.engine_name();
  }
  [[nodiscard]] SensorBank& sensors() { return session_->sensors(); }
  [[nodiscard]] const SideChainLog& log() const { return session_->log(); }
  [[nodiscard]] const EndpointStats& stats() const {
    return session_->stats();
  }
  [[nodiscard]] const DeviceHost& host() const { return session_->host(); }
  [[nodiscard]] const U256& channel_id() const {
    return session_->channel_id();
  }

  /// Phase-2 step 1: execute the template bytecode locally to open the
  /// channel (constructor samples `sensor_device`). Returns the deployed
  /// contract address; nullopt when the VM run fails.
  std::optional<evm::Address> open_channel(const U256& channel_id,
                                           const U256& rate,
                                           std::uint32_t sensor_device);

  /// Phase-2 step 2 (payer side): run pay(units) on the local contract,
  /// then build and sign the next channel state. The peer countersigns.
  std::optional<SignedState> make_payment(const U256& units);

  /// Countersigns a peer-proposed state after re-validating it against the
  /// local log (monotone sequence, non-decreasing paid_total, hash link).
  std::optional<Signature> countersign(const ChannelState& state);

  /// Records a fully-signed state into the local side-chain log.
  bool accept(const SignedState& signed_state);

  /// Runs close() on the local contract and returns the final state to be
  /// submitted on-chain.
  std::optional<SignedState> close_channel();

  /// Latest fully-signed state (what this node would submit on-chain).
  [[nodiscard]] std::optional<SignedState> final_state() const {
    return session_->log().latest();
  }

  /// The negotiated per-unit rate currently stored in the local contract.
  [[nodiscard]] U256 stored(std::uint8_t slot) const {
    return session_->stored(slot);
  }

  // -- Hub message API ------------------------------------------------------

  /// Opens the channel locally and emits the wire request for the hub to
  /// open its side; nullopt when the local open fails.
  std::optional<OpenRequest> open_request(const U256& channel_id,
                                          const U256& rate,
                                          std::uint32_t sensor_device);

  /// Runs one payment locally and wraps the half-signed state for the hub
  /// to countersign.
  std::optional<PaymentUpdate> propose_payment(const U256& units);

  /// The wire request closing this endpoint's current channel on the hub.
  [[nodiscard]] CloseRequest close_request() const {
    return CloseRequest{session_->channel_id()};
  }

  /// Ingests a hub response for this endpoint's channel, switching on the
  /// response kind: a countersigned payment state is verified and appended
  /// to the local log; open acknowledgements and hub-final close artifacts
  /// (hub signature only) just report success. False when the hub rejected
  /// the request, the channel id is not this endpoint's, or the state
  /// fails verification.
  bool apply(const HubResponse& response);

 private:
  std::string name_;
  PrivateKey key_;
  evm::VmConfig config_;
  evm::Vm vm_;
  /// Behind unique_ptr so the endpoint stays movable: the session pins the
  /// SensorBank its DeviceHost references.
  std::unique_ptr<ChannelSession> session_;
};

}  // namespace tinyevm::channel
