// Device-side payment-channel engine.
//
// Each mote runs a ChannelEndpoint: it deploys the payment-channel template
// on its local TinyEVM (constructor samples the on-board sensor via the
// 0x0c opcode), then produces/accepts signed channel states, extending the
// hash-linked side-chain log. Peers exchange SignedState artifacts over the
// radio; either side can hand its log to the on-chain Template contract.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "channel/state.hpp"
#include "channel/template_bytecode.hpp"
#include "evm/host.hpp"
#include "evm/vm.hpp"

namespace tinyevm::channel {

/// In-memory sensor/actuator bank standing in for the mote's peripherals.
/// Device ids map to current readings; actuation records the last command.
class SensorBank {
 public:
  void set_reading(std::uint32_t device, const U256& value) {
    readings_[device] = value;
  }
  [[nodiscard]] std::optional<U256> read(std::uint32_t device) const {
    const auto it = readings_.find(device);
    if (it == readings_.end()) return std::nullopt;
    return it->second;
  }
  bool actuate(std::uint32_t device, const U256& value) {
    if (!readings_.contains(device)) return false;
    actuations_[device] = value;
    return true;
  }
  [[nodiscard]] std::optional<U256> last_actuation(std::uint32_t device) const {
    const auto it = actuations_.find(device);
    if (it == actuations_.end()) return std::nullopt;
    return it->second;
  }

 private:
  std::map<std::uint32_t, U256> readings_;
  std::map<std::uint32_t, U256> actuations_;
};

/// Host wiring a local TinyEVM to per-contract TinyStorage and the mote's
/// SensorBank. CREATE deploys into the device-local contract table.
class DeviceHost : public evm::Host {
 public:
  explicit DeviceHost(SensorBank& sensors, evm::VmConfig config)
      : sensors_(sensors), config_(config) {}

  U256 sload(const evm::Address& addr, const U256& key) override;
  bool sstore(const evm::Address& addr, const U256& key,
              const U256& value) override;
  U256 balance(const evm::Address&) override { return U256{}; }
  evm::Bytes code_at(const evm::Address& addr) override;
  evm::BlockInfo block_info() override { return {}; }
  Hash256 block_hash(std::uint64_t) override { return {}; }
  evm::CallResult call(const evm::CallRequest& req) override;
  evm::CreateResult create(const evm::CreateRequest& req) override;
  void emit_log(evm::LogEntry entry) override {
    logs_.push_back(std::move(entry));
  }
  void self_destruct(const evm::Address& addr, const evm::Address&) override;
  std::optional<U256> sensor_access(const evm::SensorRequest& req) override;

  [[nodiscard]] const std::vector<evm::LogEntry>& logs() const {
    return logs_;
  }
  [[nodiscard]] const evm::TinyStorage* storage_of(
      const evm::Address& addr) const;
  [[nodiscard]] std::size_t contract_count() const {
    return contracts_.size();
  }

 private:
  SensorBank& sensors_;
  evm::VmConfig config_;
  std::map<evm::Address, evm::Bytes> contracts_;
  /// keccak256 of each installed runtime, computed once at CREATE so
  /// repeat calls skip rehashing in the EVM's translation cache.
  std::map<evm::Address, Hash256> code_hashes_;
  std::map<evm::Address, evm::TinyStorage> storage_;
  std::vector<evm::LogEntry> logs_;
  std::uint64_t next_contract_ = 1;
};

/// Aggregate statistics for one endpoint — consumed by the energy/latency
/// benchmarks (Table IV, Figure 5).
struct EndpointStats {
  std::uint64_t vm_cycles = 0;       ///< MCU cycles in the interpreter
  std::uint64_t signatures = 0;      ///< ECDSA signs performed
  std::uint64_t verifications = 0;   ///< signature recoveries performed
  std::uint64_t states_signed = 0;
};

/// One side of a payment channel (e.g. the smart car, or the parking
/// sensor). Owns a key, a local TinyEVM, and the side-chain log.
class ChannelEndpoint {
 public:
  ChannelEndpoint(std::string name, const PrivateKey& key,
                  const Hash256& onchain_root);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Address address() const { return key_.address(); }
  [[nodiscard]] SensorBank& sensors() { return sensors_; }
  [[nodiscard]] const SideChainLog& log() const { return log_; }
  [[nodiscard]] const EndpointStats& stats() const { return stats_; }
  [[nodiscard]] const DeviceHost& host() const { return host_; }

  /// Phase-2 step 1: execute the template bytecode locally to open the
  /// channel (constructor samples `sensor_device`). Returns the deployed
  /// contract address; nullopt when the VM run fails.
  std::optional<evm::Address> open_channel(const U256& channel_id,
                                           const U256& rate,
                                           std::uint32_t sensor_device);

  /// Phase-2 step 2 (payer side): run pay(units) on the local contract,
  /// then build and sign the next channel state. The peer countersigns.
  std::optional<SignedState> make_payment(const U256& units);

  /// Countersigns a peer-proposed state after re-validating it against the
  /// local log (monotone sequence, non-decreasing paid_total, hash link).
  std::optional<Signature> countersign(const ChannelState& state);

  /// Records a fully-signed state into the local side-chain log.
  bool accept(const SignedState& signed_state);

  /// Runs close() on the local contract and returns the final state to be
  /// submitted on-chain.
  std::optional<SignedState> close_channel();

  /// Latest fully-signed state (what this node would submit on-chain).
  [[nodiscard]] std::optional<SignedState> final_state() const {
    return log_.latest();
  }

  /// The negotiated per-unit rate currently stored in the local contract.
  [[nodiscard]] U256 stored(std::uint8_t slot) const;

 private:
  std::optional<U256> run_contract(const evm::Bytes& calldata);
  ChannelState next_state(const U256& paid_total, std::uint64_t seq) const;

  std::string name_;
  PrivateKey key_;
  SensorBank sensors_;
  evm::VmConfig config_;
  DeviceHost host_;
  evm::Vm vm_;
  SideChainLog log_;
  EndpointStats stats_;

  U256 channel_id_;
  std::uint32_t sensor_device_ = 0;
  std::optional<evm::Address> contract_;
  evm::Bytes runtime_code_;   ///< installed by the constructor run
  Hash256 runtime_code_hash_{};  ///< translation-cache key, hashed once
};

}  // namespace tinyevm::channel
