// Merkle-Sum-Tree (Plasma-style, paper §IV-E): every node carries the sum of
// the payments beneath it next to the hash, so an on-chain verifier can audit
// that the total committed value never exceeds the locked funds while
// checking membership with a logarithmic proof.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/hash.hpp"
#include "u256/u256.hpp"

namespace tinyevm::channel {

struct SumNode {
  U256 sum;
  Hash256 hash{};

  friend bool operator==(const SumNode& a, const SumNode& b) = default;
};

/// One step of a membership proof: the sibling node and which side it
/// hangs on.
struct ProofStep {
  SumNode sibling;
  bool sibling_on_left = false;
};

using Proof = std::vector<ProofStep>;

/// Append-only Merkle-Sum-Tree. Leaves are (value, digest) pairs — for
/// TinyEVM, the digest of a committed channel state and the payment sum it
/// carries. The tree is rebuilt lazily; odd nodes are paired with an empty
/// (0, zero-hash) filler.
class MerkleSumTree {
 public:
  /// Appends a leaf and returns its index.
  std::size_t append(const U256& value, const Hash256& digest);

  [[nodiscard]] std::size_t size() const { return leaves_.size(); }
  [[nodiscard]] bool empty() const { return leaves_.empty(); }

  /// Root node; (0, keccak("")) for an empty tree.
  [[nodiscard]] SumNode root() const;

  /// Total committed value (the root sum).
  [[nodiscard]] U256 total() const { return root().sum; }

  /// Membership proof for leaf `index`; nullopt when out of range.
  [[nodiscard]] std::optional<Proof> prove(std::size_t index) const;

  /// Verifies that (value, digest) is a leaf under `root` via `proof`, and
  /// that every partial sum on the path stays <= `cap` (the audit condition:
  /// "if it exceeds the allowed range, the payment is invalid").
  static bool verify(const SumNode& root, const U256& value,
                     const Hash256& digest, const Proof& proof,
                     const U256& cap);

  /// Parent-node combinator, exposed for tests: hash over both children's
  /// sums and hashes, sum added.
  static SumNode combine(const SumNode& left, const SumNode& right);

  /// The empty filler node used to pair odd layers.
  static SumNode filler();

 private:
  [[nodiscard]] std::vector<std::vector<SumNode>> build_layers() const;

  std::vector<SumNode> leaves_;
};

}  // namespace tinyevm::channel
