#include "channel/state.hpp"

#include <map>
#include <stdexcept>

namespace tinyevm::channel {

rlp::Bytes ChannelState::encode() const {
  return rlp::encode(rlp::Item::list({
      rlp::Item::quantity(channel_id),
      rlp::Item::quantity(U256{sequence}),
      rlp::Item::quantity(paid_total),
      rlp::Item::quantity(sensor_data),
      rlp::Item::bytes(prev_hash),
  }));
}

std::optional<ChannelState> ChannelState::decode(
    std::span<const std::uint8_t> data) {
  const auto item = rlp::decode(data);
  if (!item || !item->is_list()) return std::nullopt;
  const auto& fields = item->as_list();
  if (fields.size() != 5) return std::nullopt;
  for (unsigned i = 0; i < 4; ++i) {
    if (fields[i].is_list()) return std::nullopt;
  }
  if (fields[4].is_list() || fields[4].as_bytes().size() != 32) {
    return std::nullopt;
  }
  try {
    ChannelState out;
    out.channel_id = fields[0].as_quantity();
    const U256 seq = fields[1].as_quantity();
    if (!seq.fits_u64()) return std::nullopt;
    out.sequence = seq.as_u64();
    out.paid_total = fields[2].as_quantity();
    out.sensor_data = fields[3].as_quantity();
    std::copy(fields[4].as_bytes().begin(), fields[4].as_bytes().end(),
              out.prev_hash.begin());
    return out;
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
}

Hash256 ChannelState::digest() const { return keccak256(encode()); }

std::optional<SignedState::Signers> SignedState::recover_signers() const {
  const Hash256 d = state.digest();
  const auto sender = secp256k1::recover_address(d, sender_sig);
  const auto receiver = secp256k1::recover_address(d, receiver_sig);
  if (!sender || !receiver) return std::nullopt;
  return Signers{*sender, *receiver};
}

bool SignedState::verify(const Address& sender,
                         const Address& receiver) const {
  const auto signers = recover_signers();
  return signers && signers->sender == sender &&
         signers->receiver == receiver;
}

bool SideChainLog::append(const SignedState& signed_state) {
  if (signed_state.state.prev_hash != head_) return false;
  // Sequence numbers are the per-channel logical clock: they must advance
  // within a channel, while a fresh channel may restart at 1 ("the nodes
  // can open and close an arbitrary number of payment channels", §IV-A).
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (it->state.channel_id != signed_state.state.channel_id) continue;
    if (signed_state.state.sequence <= it->state.sequence) return false;
    break;
  }
  head_ = signed_state.state.digest();
  entries_.push_back(signed_state);
  return true;
}

bool SideChainLog::audit(const Hash256& genesis) const {
  Hash256 expected = genesis;
  std::map<U256, std::uint64_t> channel_clocks;
  for (const SignedState& entry : entries_) {
    if (entry.state.prev_hash != expected) return false;
    const auto it = channel_clocks.find(entry.state.channel_id);
    if (it != channel_clocks.end() && entry.state.sequence <= it->second) {
      return false;
    }
    channel_clocks[entry.state.channel_id] = entry.state.sequence;
    expected = entry.state.digest();
  }
  return expected == head_;
}

}  // namespace tinyevm::channel
