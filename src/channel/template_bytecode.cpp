#include "channel/template_bytecode.hpp"

#include "evm/asm.hpp"

namespace tinyevm::channel {

using evm::Assembler;
using evm::Bytes;
using evm::Opcode;

Bytes payment_channel_runtime() {
  // The dispatcher compares the low byte of calldata word 0 against each
  // selector; label addresses are resolved in a second pass by assembling
  // twice (sizes are stable because push widths are fixed).
  auto assemble = [](std::uint64_t pay_pc, std::uint64_t status_pc,
                     std::uint64_t close_pc, std::uint64_t revert_pc,
                     std::uint64_t* out_pay, std::uint64_t* out_status,
                     std::uint64_t* out_close, std::uint64_t* out_revert) {
    Assembler a;
    // selector = calldata[0] & 0xFF  (word 0, low byte)
    a.push(0).op(Opcode::CALLDATALOAD).push(0xFF).op(Opcode::AND);

    a.dup(1).push(TemplateFn::kPay).op(Opcode::EQ);
    a.push_label(pay_pc).op(Opcode::JUMPI);
    a.dup(1).push(TemplateFn::kStatus).op(Opcode::EQ);
    a.push_label(status_pc).op(Opcode::JUMPI);
    a.dup(1).push(TemplateFn::kClose).op(Opcode::EQ);
    a.push_label(close_pc).op(Opcode::JUMPI);
    a.push_label(revert_pc).op(Opcode::JUMP);

    // --- pay(units): units in calldata word 1 ---
    *out_pay = a.label();
    a.op(Opcode::POP);                                    // drop selector
    a.push(32).op(Opcode::CALLDATALOAD);                  // units
    a.push(TemplateSlots::kRate).op(Opcode::SLOAD);       // rate
    a.op(Opcode::MUL);                                    // amount
    a.push(TemplateSlots::kPaidTotal).op(Opcode::SLOAD);  // paid_total
    a.op(Opcode::ADD);
    a.dup(1);
    a.push(TemplateSlots::kPaidTotal).op(Opcode::SSTORE);  // store new total
    // seq += 1
    a.push(TemplateSlots::kSequence).op(Opcode::SLOAD);
    a.push(1).op(Opcode::ADD);
    a.dup(1);
    a.push(TemplateSlots::kSequence).op(Opcode::SSTORE);
    // log1(topic=seq, data=paid_total)
    a.swap(1);                       // stack: paid_total, seq
    a.push(0).op(Opcode::MSTORE);    // mem[0] = paid_total
    a.push(32).push(0).log(1);       // LOG1 topic=seq
    // return paid_total
    a.push(32).push(0).op(Opcode::RETURN);

    // --- status(): return (seq << 128) | paid_total ---
    *out_status = a.label();
    a.op(Opcode::POP);
    a.push(TemplateSlots::kSequence).op(Opcode::SLOAD);
    a.push(128).op(Opcode::SHL);
    a.push(TemplateSlots::kPaidTotal).op(Opcode::SLOAD);
    a.op(Opcode::OR);
    a.push(0).op(Opcode::MSTORE);
    a.push(32).push(0).op(Opcode::RETURN);

    // --- close(): fold the payment log into the side-chain record, emit
    // the final state, self-destruct to caller. The folding loop models
    // the side-chain registration work the paper measures at ~0.08 s
    // (§VI-C) — ~1,300 iterations under the 32 MHz cycle model. ---
    *out_close = a.label();
    a.op(Opcode::POP);
    a.push(TemplateSlots::kPaidTotal).op(Opcode::SLOAD);
    a.push(1300);
    const std::uint64_t fold = a.label();
    a.swap(1).push(31).op(Opcode::MUL).dup(2).op(Opcode::ADD).swap(1);
    a.push(1).swap(1).op(Opcode::SUB).dup(1);
    a.push_label(fold).op(Opcode::JUMPI);
    a.op(Opcode::POP).op(Opcode::POP);  // drop i and the folded digest
    a.push(TemplateSlots::kPaidTotal).op(Opcode::SLOAD);
    a.push(0).op(Opcode::MSTORE);
    a.push(TemplateSlots::kSequence).op(Opcode::SLOAD);  // topic
    a.push(32).push(0).log(1);
    a.op(Opcode::CALLER).op(Opcode::SELFDESTRUCT);

    // --- fallback: revert ---
    *out_revert = a.label();
    a.push(0).push(0).op(Opcode::REVERT);
    return a.take();
  };

  // First pass with placeholder targets to learn the label addresses.
  std::uint64_t pay = 0;
  std::uint64_t status = 0;
  std::uint64_t close = 0;
  std::uint64_t revert = 0;
  assemble(0, 0, 0, 0, &pay, &status, &close, &revert);
  std::uint64_t pay2 = 0;
  std::uint64_t status2 = 0;
  std::uint64_t close2 = 0;
  std::uint64_t revert2 = 0;
  return assemble(pay, status, close, revert, &pay2, &status2, &close2,
                  &revert2);
}

Bytes payment_channel_init_code(std::uint32_t sensor_device) {
  // Constructor prologue (runs before the CODECOPY/RETURN scaffold):
  //   sstore(0x0c, SENSOR(sensor_device, 0))   -- Listing 2
  //   sstore(RATE, calldata[0])                -- negotiated rate
  //   rate-table derivation loop               -- channel bookkeeping
  //
  // The derivation loop mirrors the production template's initialization
  // work (per-hour price table, channel record setup): the paper measures
  // template execution at ~0.20 s on the 32 MHz mote (§VI-C), which the
  // cycle model reproduces with ~2,000 loop iterations.
  Assembler prologue;
  prologue.sensor(sensor_device, /*actuate=*/false, U256{0});
  prologue.push(TemplateSlots::kSensor).op(Opcode::SSTORE);
  prologue.push(0).op(Opcode::CALLDATALOAD);
  prologue.push(TemplateSlots::kRate).op(Opcode::SSTORE);

  // acc = sensor; for (i = 3500; i != 0; --i) acc = acc*31 + i
  // then fold acc into the pricing slots 0x04..0x07.
  prologue.push(TemplateSlots::kSensor).op(Opcode::SLOAD);
  prologue.push(3500);
  const std::uint64_t loop = prologue.label();
  // stack: acc, i
  prologue.swap(1).push(31).op(Opcode::MUL).dup(2).op(Opcode::ADD).swap(1);
  prologue.push(1).swap(1).op(Opcode::SUB).dup(1);
  prologue.push_label(loop).op(Opcode::JUMPI);
  prologue.op(Opcode::POP);  // drop i == 0
  for (std::uint64_t slot = 4; slot <= 7; ++slot) {
    prologue.dup(1).push(slot).op(Opcode::SSTORE);
  }
  prologue.op(Opcode::POP);  // drop acc
  return Assembler::deployer(payment_channel_runtime(), prologue.take());
}

namespace {
Bytes one_word_call(std::uint64_t selector, const U256& arg,
                    bool include_arg) {
  Bytes out(32, 0);
  out[31] = static_cast<std::uint8_t>(selector);
  if (include_arg) {
    const auto w = arg.to_word();
    out.insert(out.end(), w.begin(), w.end());
  }
  return out;
}
}  // namespace

Bytes encode_pay_call(const U256& units) {
  return one_word_call(TemplateFn::kPay, units, true);
}
Bytes encode_status_call() {
  return one_word_call(TemplateFn::kStatus, U256{}, false);
}
Bytes encode_close_call() {
  return one_word_call(TemplateFn::kClose, U256{}, false);
}

}  // namespace tinyevm::channel
