#include "channel/manager.hpp"

#include <cstring>

namespace tinyevm::channel {

// ---- DeviceHost ----

U256 DeviceHost::sload(const evm::Address& addr, const U256& key) {
  const auto it = storage_.find(addr);
  return it == storage_.end() ? U256{} : it->second.load(key);
}

bool DeviceHost::sstore(const evm::Address& addr, const U256& key,
                        const U256& value) {
  auto [it, inserted] =
      storage_.try_emplace(addr, evm::TinyStorage{config_.storage_limit});
  return it->second.store(key, value);
}

evm::Bytes DeviceHost::code_at(const evm::Address& addr) {
  const auto it = contracts_.find(addr);
  return it == contracts_.end() ? evm::Bytes{} : it->second;
}

evm::CreateResult DeviceHost::create(const evm::CreateRequest& req) {
  evm::Vm vm{config_};
  evm::Message msg;
  // Device-local address scheme: 0xD1 marker byte, counter in the tail.
  msg.self[0] = 0xD1;
  std::uint64_t n = next_contract_++;
  for (int i = 19; i > 11 && n != 0; --i) {
    msg.self[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(n);
    n >>= 8;
  }
  msg.caller = req.sender;
  msg.value = req.value;
  msg.code = req.init_code;
  msg.gas = req.gas;
  msg.depth = req.depth;
  const evm::ExecResult r = vm.execute(*this, msg);
  if (!r.ok()) return evm::CreateResult{false, {}, r.gas_left};
  contracts_[msg.self] = r.output;
  code_hashes_[msg.self] = keccak256(r.output);
  return evm::CreateResult{true, msg.self, r.gas_left};
}

evm::CallResult DeviceHost::call(const evm::CallRequest& req) {
  const auto it = contracts_.find(req.to);
  if (it == contracts_.end()) {
    return evm::CallResult{true, {}, req.gas};  // value-transfer no-op
  }
  evm::Vm vm{config_};
  evm::Message msg;
  msg.self = req.to;
  msg.caller = req.sender;
  msg.value = req.value;
  msg.data = req.data;
  msg.code = it->second;
  if (const auto hash = code_hashes_.find(req.to);
      hash != code_hashes_.end()) {
    msg.code_hash = hash->second;
  }
  msg.gas = req.gas;
  msg.depth = req.depth;
  msg.is_static = req.is_static;
  const evm::ExecResult r = vm.execute(*this, msg);
  return evm::CallResult{r.ok(), r.output, r.gas_left};
}

void DeviceHost::self_destruct(const evm::Address& addr,
                               const evm::Address&) {
  // The side-chain log is the durable artifact; the contract and its slots
  // go away with the channel.
  contracts_.erase(addr);
  code_hashes_.erase(addr);
  storage_.erase(addr);
}

std::optional<U256> DeviceHost::sensor_access(const evm::SensorRequest& req) {
  if (req.actuate) {
    return sensors_.actuate(req.device_id, req.parameter)
               ? std::optional<U256>{U256{1}}
               : std::nullopt;
  }
  return sensors_.read(req.device_id);
}

const evm::TinyStorage* DeviceHost::storage_of(
    const evm::Address& addr) const {
  const auto it = storage_.find(addr);
  return it == storage_.end() ? nullptr : &it->second;
}

// ---- ChannelEndpoint ----

ChannelEndpoint::ChannelEndpoint(std::string name, const PrivateKey& key,
                                 const Hash256& onchain_root)
    : name_(std::move(name)),
      key_(key),
      config_(evm::VmConfig::tiny()),
      host_(sensors_, config_),
      vm_(config_),
      log_(onchain_root) {}

std::optional<evm::Address> ChannelEndpoint::open_channel(
    const U256& channel_id, const U256& rate, std::uint32_t sensor_device) {
  channel_id_ = channel_id;
  sensor_device_ = sensor_device;

  // Per-channel contract address: 0xCC marker + low bytes of the channel id
  // (device-local namespace; the on-chain id is what peers agree on).
  evm::Address addr{};
  addr[0] = 0xCC;
  const auto idw = channel_id.to_word();
  std::memcpy(addr.data() + 12, idw.data() + 24, 8);

  // Execute the template's constructor on the local TinyEVM. The negotiated
  // rate arrives as constructor calldata word 0; the 0x0c opcode inside the
  // prologue samples the on-board sensor (paper Listing 2).
  evm::Message msg;
  msg.self = addr;
  msg.code = payment_channel_init_code(sensor_device);
  // One named word: `rate.to_word().begin(), rate.to_word().end()` would
  // take iterators from two distinct temporaries (caught by the ASan CI
  // sweep when it grew to cover this suite).
  const auto rate_word = rate.to_word();
  msg.data.assign(rate_word.begin(), rate_word.end());
  msg.gas = 10'000'000;
  const evm::ExecResult r = vm_.execute(host_, msg);
  stats_.vm_cycles += r.stats.mcu_cycles;
  if (!r.ok() || r.output.empty()) return std::nullopt;

  contract_ = addr;
  runtime_code_ = r.output;
  runtime_code_hash_ = keccak256(runtime_code_);
  return contract_;
}

std::optional<U256> ChannelEndpoint::run_contract(
    const evm::Bytes& calldata) {
  if (!contract_) return std::nullopt;
  evm::Message msg;
  msg.self = *contract_;
  msg.caller = evm::Address{};
  msg.data = calldata;
  msg.code = runtime_code_;
  if (runtime_code_hash_ != Hash256{}) {
    msg.code_hash = runtime_code_hash_;  // every round reruns the same code
  }
  msg.gas = 10'000'000;
  const evm::ExecResult r = vm_.execute(host_, msg);
  stats_.vm_cycles += r.stats.mcu_cycles;
  if (!r.ok()) return std::nullopt;
  if (r.output.size() != 32) return U256{};
  return U256::from_bytes(r.output);
}

ChannelState ChannelEndpoint::next_state(const U256& paid_total,
                                         std::uint64_t seq) const {
  ChannelState state;
  state.channel_id = channel_id_;
  state.sequence = seq;
  state.paid_total = paid_total;
  state.sensor_data = stored(TemplateSlots::kSensor);
  state.prev_hash = log_.head();
  return state;
}

std::optional<SignedState> ChannelEndpoint::make_payment(const U256& units) {
  const auto paid_total = run_contract(encode_pay_call(units));
  if (!paid_total) return std::nullopt;
  const auto status = run_contract(encode_status_call());
  if (!status) return std::nullopt;
  const std::uint64_t seq = (*status >> 128).as_u64();

  SignedState signed_state;
  signed_state.state = next_state(*paid_total, seq);
  signed_state.sender_sig = secp256k1::sign(signed_state.state.digest(), key_);
  ++stats_.signatures;
  ++stats_.states_signed;
  return signed_state;
}

std::optional<Signature> ChannelEndpoint::countersign(
    const ChannelState& state) {
  if (state.channel_id != channel_id_) return std::nullopt;
  if (state.prev_hash != log_.head()) return std::nullopt;
  // Validate against the latest state of *this* channel — sequence numbers
  // are per-channel logical clocks, and a node may have older channels'
  // states in the same log (§IV-A).
  for (auto it = log_.entries().rbegin(); it != log_.entries().rend(); ++it) {
    if (it->state.channel_id != state.channel_id) continue;
    if (state.sequence <= it->state.sequence) return std::nullopt;
    if (state.paid_total < it->state.paid_total) return std::nullopt;
    break;
  }
  ++stats_.signatures;
  return secp256k1::sign(state.digest(), key_);
}

bool ChannelEndpoint::accept(const SignedState& signed_state) {
  stats_.verifications += 2;
  const auto signers = signed_state.recover_signers();
  if (!signers) return false;
  return log_.append(signed_state);
}

std::optional<SignedState> ChannelEndpoint::close_channel() {
  const auto status = run_contract(encode_status_call());
  if (!status) return std::nullopt;
  const U256 paid = *status & ((U256{1} << 128) - U256{1});
  const std::uint64_t seq = (*status >> 128).as_u64() + 1;
  const U256 sensor_at_close = stored(TemplateSlots::kSensor);
  (void)run_contract(encode_close_call());
  // close() ends in SELFDESTRUCT; the endpoint holds the runtime outside the
  // host's contract table, so retire it here as well.
  contract_.reset();
  runtime_code_.clear();
  runtime_code_hash_ = Hash256{};

  SignedState signed_state;
  signed_state.state = next_state(paid, seq);
  signed_state.state.sensor_data = sensor_at_close;
  signed_state.sender_sig = secp256k1::sign(signed_state.state.digest(), key_);
  ++stats_.signatures;
  return signed_state;
}

U256 ChannelEndpoint::stored(std::uint8_t slot) const {
  if (!contract_) return U256{};
  const auto* st = host_.storage_of(*contract_);
  return st ? st->load(U256{slot}) : U256{};
}

}  // namespace tinyevm::channel
