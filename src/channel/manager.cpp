#include "channel/manager.hpp"

namespace tinyevm::channel {

namespace {

evm::VmConfig endpoint_config(std::string engine) {
  evm::VmConfig config = evm::VmConfig::tiny();
  config.engine = std::move(engine);
  return config;
}

}  // namespace

ChannelEndpoint::ChannelEndpoint(std::string name, const PrivateKey& key,
                                 const Hash256& onchain_root,
                                 std::string engine)
    : name_(std::move(name)),
      key_(key),
      config_(endpoint_config(std::move(engine))),
      vm_(config_),
      session_(std::make_unique<ChannelSession>(onchain_root, config_)) {}

std::optional<evm::Address> ChannelEndpoint::open_channel(
    const U256& channel_id, const U256& rate, std::uint32_t sensor_device) {
  return session_->open(vm_, channel_id, rate, sensor_device);
}

std::optional<SignedState> ChannelEndpoint::make_payment(const U256& units) {
  return session_->make_payment(vm_, key_, units);
}

std::optional<Signature> ChannelEndpoint::countersign(
    const ChannelState& state) {
  return session_->countersign(state, key_);
}

bool ChannelEndpoint::accept(const SignedState& signed_state) {
  return session_->accept(signed_state);
}

std::optional<SignedState> ChannelEndpoint::close_channel() {
  return session_->close(vm_, key_);
}

std::optional<OpenRequest> ChannelEndpoint::open_request(
    const U256& channel_id, const U256& rate, std::uint32_t sensor_device) {
  if (!open_channel(channel_id, rate, sensor_device)) return std::nullopt;
  return OpenRequest{channel_id, rate, sensor_device};
}

std::optional<PaymentUpdate> ChannelEndpoint::propose_payment(
    const U256& units) {
  auto proposal = make_payment(units);
  if (!proposal) return std::nullopt;
  return PaymentUpdate{session_->channel_id(), std::move(*proposal)};
}

bool ChannelEndpoint::apply(const HubResponse& response) {
  if (!response.ok()) return false;
  if (response.channel_id != session_->channel_id()) return false;
  switch (response.kind) {
    case HubResponseKind::Open:
      return true;  // acknowledgement only
    case HubResponseKind::Payment:
      // The countersigned state goes into the local log (verified there).
      return response.state.has_value() && accept(*response.state);
    case HubResponseKind::Close:
      return true;  // the hub-signed final artifact is informational here
  }
  return false;
}

}  // namespace tinyevm::channel
