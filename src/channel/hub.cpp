#include "channel/hub.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>
#include <type_traits>
#include <unordered_map>

#include "evm/code_cache.hpp"
#include "obs/trace.hpp"

namespace tinyevm::channel {

/// Registry instruments for one hub name, interned once so the request
/// path costs pointer dereferences, never the registry mutex. Hubs that
/// share a name share series (counters accumulate across them).
struct ChannelHub::Instruments {
  static constexpr std::size_t kKinds = 3;     // HubResponseKind values
  static constexpr std::size_t kStatuses = 8;  // HubStatus values
  std::array<std::array<obs::Counter*, kStatuses>, kKinds> requests{};
  std::array<obs::Histogram*, kKinds> service_us{};
  obs::Histogram* queue_us = nullptr;

  static const char* kind_name(std::size_t kind) {
    switch (static_cast<HubResponseKind>(kind)) {
      case HubResponseKind::Open: return "open";
      case HubResponseKind::Payment: return "payment";
      case HubResponseKind::Close: return "close";
    }
    return "?";
  }
  /// The span name for one request kind (static storage, as Tracer
  /// requires).
  static const char* span_name(std::size_t kind) {
    switch (static_cast<HubResponseKind>(kind)) {
      case HubResponseKind::Open: return "hub.open";
      case HubResponseKind::Payment: return "hub.payment";
      case HubResponseKind::Close: return "hub.close";
    }
    return "hub.request";
  }

  explicit Instruments(const std::string& hub) {
    auto& registry = obs::Registry::instance();
    for (std::size_t k = 0; k < kKinds; ++k) {
      for (std::size_t s = 0; s < kStatuses; ++s) {
        requests[k][s] = &registry.counter(
            "tinyevm_hub_requests_total",
            "Hub requests served, by request kind and response status",
            {{"hub", hub},
             {"kind", kind_name(k)},
             {"status", std::string(to_string(static_cast<HubStatus>(s)))}});
      }
      service_us[k] = &registry.histogram(
          "tinyevm_hub_service_us",
          "Worker service time per request (dispatch start to response), "
          "microseconds",
          {{"hub", hub}, {"kind", kind_name(k)}});
    }
    queue_us = &registry.histogram(
        "tinyevm_hub_queue_us",
        "Wait before a worker started on a request (Vm lease / batch "
        "position), microseconds",
        {{"hub", hub}});
  }

  static Instruments& for_hub(const std::string& hub) {
    static std::mutex mu;
    static auto* table =
        new std::unordered_map<std::string, std::unique_ptr<Instruments>>();
    std::lock_guard lock(mu);
    auto it = table->find(hub);
    if (it == table->end()) {
      it = table->emplace(hub, std::make_unique<Instruments>(hub)).first;
    }
    return *it->second;
  }
};

// ---- DeviceHost ----

U256 DeviceHost::sload(const evm::Address& addr, const U256& key) {
  const auto it = storage_.find(addr);
  return it == storage_.end() ? U256{} : it->second.load(key);
}

bool DeviceHost::sstore(const evm::Address& addr, const U256& key,
                        const U256& value) {
  auto [it, inserted] =
      storage_.try_emplace(addr, evm::TinyStorage{config_.storage_limit});
  return it->second.store(key, value);
}

evm::Bytes DeviceHost::code_at(const evm::Address& addr) {
  const auto it = contracts_.find(addr);
  return it == contracts_.end() ? evm::Bytes{} : it->second;
}

evm::CreateResult DeviceHost::create(const evm::CreateRequest& req) {
  evm::Vm vm{config_};
  evm::Message msg;
  // Device-local address scheme: 0xD1 marker byte, counter in the tail.
  msg.self[0] = 0xD1;
  std::uint64_t n = next_contract_++;
  for (int i = 19; i > 11 && n != 0; --i) {
    msg.self[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(n);
    n >>= 8;
  }
  msg.caller = req.sender;
  msg.value = req.value;
  msg.code = req.init_code;
  msg.gas = req.gas;
  msg.depth = req.depth;
  const evm::ExecResult r = vm.execute(*this, msg);
  if (!r.ok()) return evm::CreateResult{false, {}, r.gas_left};
  contracts_[msg.self] = r.output;
  code_hashes_[msg.self] = keccak256(r.output);
  return evm::CreateResult{true, msg.self, r.gas_left};
}

evm::CallResult DeviceHost::call(const evm::CallRequest& req) {
  const auto it = contracts_.find(req.to);
  if (it == contracts_.end()) {
    return evm::CallResult{true, {}, req.gas};  // value-transfer no-op
  }
  evm::Vm vm{config_};
  evm::Message msg;
  msg.self = req.to;
  msg.caller = req.sender;
  msg.value = req.value;
  msg.data = req.data;
  msg.code = it->second;
  if (const auto hash = code_hashes_.find(req.to);
      hash != code_hashes_.end()) {
    msg.code_hash = hash->second;
  }
  msg.gas = req.gas;
  msg.depth = req.depth;
  msg.is_static = req.is_static;
  const evm::ExecResult r = vm.execute(*this, msg);
  return evm::CallResult{r.ok(), r.output, r.gas_left};
}

void DeviceHost::self_destruct(const evm::Address& addr,
                               const evm::Address&) {
  // The side-chain log is the durable artifact; the contract and its slots
  // go away with the channel.
  contracts_.erase(addr);
  code_hashes_.erase(addr);
  storage_.erase(addr);
}

std::optional<U256> DeviceHost::sensor_access(const evm::SensorRequest& req) {
  if (req.actuate) {
    return sensors_.actuate(req.device_id, req.parameter)
               ? std::optional<U256>{U256{1}}
               : std::nullopt;
  }
  return sensors_.read(req.device_id);
}

const evm::TinyStorage* DeviceHost::storage_of(
    const evm::Address& addr) const {
  const auto it = storage_.find(addr);
  return it == storage_.end() ? nullptr : &it->second;
}

// ---- ChannelSession ----

std::optional<evm::Address> ChannelSession::open(evm::Vm& vm,
                                                 const U256& channel_id,
                                                 const U256& rate,
                                                 std::uint32_t sensor_device) {
  channel_id_ = channel_id;
  sensor_device_ = sensor_device;

  // Per-channel contract address: 0xCC marker + low bytes of the channel id
  // (device-local namespace; the on-chain id is what peers agree on).
  evm::Address addr{};
  addr[0] = 0xCC;
  const auto idw = channel_id.to_word();
  std::memcpy(addr.data() + 12, idw.data() + 24, 8);

  // Execute the template's constructor on the local TinyEVM. The negotiated
  // rate arrives as constructor calldata word 0; the 0x0c opcode inside the
  // prologue samples the on-board sensor (paper Listing 2).
  evm::Message msg;
  msg.self = addr;
  msg.code = payment_channel_init_code(sensor_device);
  // One named word: `rate.to_word().begin(), rate.to_word().end()` would
  // take iterators from two distinct temporaries (caught by the ASan CI
  // sweep when it grew to cover this suite).
  const auto rate_word = rate.to_word();
  msg.data.assign(rate_word.begin(), rate_word.end());
  msg.gas = 10'000'000;
  const evm::ExecResult r = vm.execute(host_, msg);
  stats_.vm_cycles += r.stats.mcu_cycles;
  if (!r.ok() || r.output.empty()) return std::nullopt;

  contract_ = addr;
  runtime_code_ = r.output;
  runtime_code_hash_ = keccak256(runtime_code_);
  return contract_;
}

std::optional<U256> ChannelSession::run_contract(evm::Vm& vm,
                                                 const evm::Bytes& calldata) {
  if (!contract_) return std::nullopt;
  evm::Message msg;
  msg.self = *contract_;
  msg.caller = evm::Address{};
  msg.data = calldata;
  msg.code = runtime_code_;
  if (runtime_code_hash_ != Hash256{}) {
    msg.code_hash = runtime_code_hash_;  // every round reruns the same code
  }
  msg.gas = 10'000'000;
  const evm::ExecResult r = vm.execute(host_, msg);
  stats_.vm_cycles += r.stats.mcu_cycles;
  if (!r.ok()) return std::nullopt;
  if (r.output.size() != 32) return U256{};
  return U256::from_bytes(r.output);
}

ChannelState ChannelSession::next_state(const U256& paid_total,
                                        std::uint64_t seq) const {
  ChannelState state;
  state.channel_id = channel_id_;
  state.sequence = seq;
  state.paid_total = paid_total;
  state.sensor_data = stored(TemplateSlots::kSensor);
  state.prev_hash = log_.head();
  return state;
}

std::optional<SignedState> ChannelSession::make_payment(evm::Vm& vm,
                                                        const PrivateKey& key,
                                                        const U256& units) {
  const auto paid_total = run_contract(vm, encode_pay_call(units));
  if (!paid_total) return std::nullopt;
  const auto status = run_contract(vm, encode_status_call());
  if (!status) return std::nullopt;
  const std::uint64_t seq = (*status >> 128).as_u64();

  SignedState signed_state;
  signed_state.state = next_state(*paid_total, seq);
  signed_state.sender_sig = secp256k1::sign(signed_state.state.digest(), key);
  ++stats_.signatures;
  ++stats_.states_signed;
  return signed_state;
}

std::optional<Signature> ChannelSession::countersign(const ChannelState& state,
                                                     const PrivateKey& key) {
  if (state.channel_id != channel_id_) return std::nullopt;
  if (state.prev_hash != log_.head()) return std::nullopt;
  // Validate against the latest state of *this* channel — sequence numbers
  // are per-channel logical clocks, and a node may have older channels'
  // states in the same log (§IV-A).
  for (auto it = log_.entries().rbegin(); it != log_.entries().rend(); ++it) {
    if (it->state.channel_id != state.channel_id) continue;
    if (state.sequence <= it->state.sequence) return std::nullopt;
    if (state.paid_total < it->state.paid_total) return std::nullopt;
    break;
  }
  ++stats_.signatures;
  return secp256k1::sign(state.digest(), key);
}

bool ChannelSession::accept(const SignedState& signed_state) {
  stats_.verifications += 2;
  const auto signers = signed_state.recover_signers();
  if (!signers) return false;
  return log_.append(signed_state);
}

std::optional<SignedState> ChannelSession::close(evm::Vm& vm,
                                                 const PrivateKey& key) {
  const auto status = run_contract(vm, encode_status_call());
  if (!status) return std::nullopt;
  const U256 paid = *status & ((U256{1} << 128) - U256{1});
  const std::uint64_t seq = (*status >> 128).as_u64() + 1;
  const U256 sensor_at_close = stored(TemplateSlots::kSensor);
  (void)run_contract(vm, encode_close_call());
  // close() ends in SELFDESTRUCT; the session holds the runtime outside the
  // host's contract table, so retire it here as well.
  contract_.reset();
  runtime_code_.clear();
  runtime_code_hash_ = Hash256{};

  SignedState signed_state;
  signed_state.state = next_state(paid, seq);
  signed_state.state.sensor_data = sensor_at_close;
  signed_state.sender_sig = secp256k1::sign(signed_state.state.digest(), key);
  ++stats_.signatures;
  return signed_state;
}

U256 ChannelSession::stored(std::uint8_t slot) const {
  if (!contract_) return U256{};
  const auto* st = host_.storage_of(*contract_);
  return st ? st->load(U256{slot}) : U256{};
}

// ---- Wire surface ----

std::string_view to_string(HubStatus s) {
  switch (s) {
    case HubStatus::Ok: return "ok";
    case HubStatus::UnknownChannel: return "unknown-channel";
    case HubStatus::DuplicateChannel: return "duplicate-channel";
    case HubStatus::ChannelClosed: return "channel-closed";
    case HubStatus::VmFailure: return "vm-failure";
    case HubStatus::BadState: return "bad-state";
    case HubStatus::BadSignature: return "bad-signature";
    case HubStatus::Busy: return "busy";
  }
  return "?";
}

// ---- ChannelHub ----

ChannelHub::ChannelHub(std::string name, const PrivateKey& key,
                       const Hash256& onchain_root)
    : ChannelHub(std::move(name), key, onchain_root, Config{}) {}

ChannelHub::ChannelHub(std::string name, const PrivateKey& key,
                       const Hash256& onchain_root, Config config)
    : name_(std::move(name)),
      key_(key),
      onchain_root_(onchain_root),
      vm_config_(config.vm_config),
      cache_(config.code_cache ? std::move(config.code_cache)
                               : evm::CodeCache::shared_default()),
      pool_(config.workers) {
  if (!config.engine.empty()) vm_config_.engine = config.engine;
  const std::size_t workers = pool_.thread_count();
  vms_.reserve(workers);
  free_vms_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    vms_.push_back(std::make_unique<evm::Vm>(vm_config_, cache_));
    free_vms_.push_back(vms_.back().get());
  }
  obs_ = &Instruments::for_hub(name_);
  obs_collector_ = obs::Registry::instance().add_collector(
      [this](obs::Collection& out) {
        const Stats s = stats();
        const obs::LabelSet hub{{"hub", name_}};
        out.counter("tinyevm_hub_opens_total", "Sessions opened successfully",
                    hub, static_cast<double>(s.opens));
        out.counter("tinyevm_hub_payments_total", "Payment updates applied",
                    hub, static_cast<double>(s.payments));
        out.counter("tinyevm_hub_closes_total", "Sessions closed", hub,
                    static_cast<double>(s.closes));
        out.counter("tinyevm_hub_rejected_total",
                    "Requests answered with a non-Ok status", hub,
                    static_cast<double>(s.rejected));
        out.counter("tinyevm_hub_signatures_total",
                    "ECDSA signs across every session", hub,
                    static_cast<double>(s.signatures));
        out.counter("tinyevm_hub_verifications_total",
                    "Signature recoveries across every session", hub,
                    static_cast<double>(s.verifications));
        out.counter("tinyevm_hub_vm_cycles_total",
                    "Modeled MCU cycles across every session", hub,
                    static_cast<double>(s.vm_cycles));
        out.gauge("tinyevm_hub_sessions", "Session-table size (open + closed)",
                  hub, static_cast<double>(s.sessions));
        out.gauge("tinyevm_hub_open_sessions", "Sessions currently open", hub,
                  static_cast<double>(s.open_sessions));
        out.gauge("tinyevm_hub_workers", "Worker threads / leased Vm set",
                  hub, static_cast<double>(worker_count()));
        std::size_t free_vms = 0;
        {
          std::lock_guard lock(vm_mu_);
          free_vms = free_vms_.size();
        }
        out.gauge("tinyevm_hub_free_vms", "Vms not currently leased", hub,
                  static_cast<double>(free_vms));
      });
}

// RAII admission into the lifecycle gate. A gate that fails to admit means
// the hub is tearing down: the caller must answer Busy WITHOUT touching any
// other member, because the destructor is no longer waiting for it.
struct ChannelHub::CallGate {
  explicit CallGate(ChannelHub& hub) {
    std::lock_guard lock(hub.lifecycle_mu_);
    if (hub.closing_) return;
    ++hub.active_calls_;
    hub_ = &hub;
  }
  CallGate(const CallGate&) = delete;
  CallGate& operator=(const CallGate&) = delete;
  ~CallGate() {
    if (hub_ == nullptr) return;
    std::lock_guard lock(hub_->lifecycle_mu_);
    if (--hub_->active_calls_ == 0) hub_->lifecycle_cv_.notify_all();
  }
  [[nodiscard]] bool admitted() const { return hub_ != nullptr; }

 private:
  ChannelHub* hub_ = nullptr;
};

ChannelHub::~ChannelHub() {
  std::unique_lock lock(lifecycle_mu_);
  closing_ = true;
  lifecycle_cv_.wait(lock, [this] { return active_calls_ == 0; });
}

void ChannelHub::set_sensor_default(std::uint32_t device, const U256& value) {
  runtime::MutexLock lock(sessions_mu_);
  sensor_defaults_.set_reading(device, value);
}

void ChannelHub::register_actuator_default(std::uint32_t device) {
  runtime::MutexLock lock(sessions_mu_);
  sensor_defaults_.register_actuator(device);
}

evm::Vm& ChannelHub::acquire_vm() {
  std::unique_lock lock(vm_mu_);
  vm_cv_.wait(lock, [this] { return !free_vms_.empty(); });
  evm::Vm* vm = free_vms_.back();
  free_vms_.pop_back();
  return *vm;
}

void ChannelHub::release_vm(evm::Vm& vm) {
  {
    std::lock_guard lock(vm_mu_);
    free_vms_.push_back(&vm);
  }
  vm_cv_.notify_one();
}

std::shared_ptr<ChannelHub::SessionSlot> ChannelHub::find_session(
    const U256& channel_id) const {
  runtime::MutexLock lock(sessions_mu_);
  const auto it = sessions_.find(channel_id);
  return it == sessions_.end() ? nullptr : it->second;
}

const U256& ChannelHub::channel_of(const HubRequest& request) {
  return std::visit([](const auto& r) -> const U256& { return r.channel_id; },
                    request);
}

HubResponseKind ChannelHub::kind_of(const HubRequest& request) {
  // Variant order == kind order (see dispatch()).
  return static_cast<HubResponseKind>(request.index());
}

namespace {

// A Busy answer built without touching the hub: used when the lifecycle
// gate refuses admission, at which point the hub may already be past the
// destructor's drain wait.
HubResponse shutdown_busy(HubResponseKind kind, const U256& channel_id) {
  HubResponse response;
  response.status = HubStatus::Busy;
  response.kind = kind;
  response.channel_id = channel_id;
  return response;
}

}  // namespace

HubResponse ChannelHub::reject(HubStatus status, HubResponseKind kind,
                               const U256& channel_id) {
  rejected_.fetch_add(1, std::memory_order_relaxed);
  HubResponse response;
  response.status = status;
  response.kind = kind;
  response.channel_id = channel_id;
  return response;
}

HubResponse ChannelHub::serve(const OpenRequest& request, evm::Vm& vm) {
  std::shared_ptr<SessionSlot> slot;
  {
    runtime::MutexLock lock(sessions_mu_);
    auto [it, inserted] = sessions_.try_emplace(request.channel_id, nullptr);
    if (!inserted) {
      return reject(HubStatus::DuplicateChannel, HubResponseKind::Open,
                    request.channel_id);
    }
    it->second = std::make_shared<SessionSlot>(onchain_root_, vm_config_);
    slot = it->second;
    // Seed the session's peripherals before the constructor samples them.
    slot->session.sensors() = sensor_defaults_;
  }
  runtime::MutexLock session_lock(slot->mu);
  const auto contract = slot->session.open(vm, request.channel_id,
                                           request.rate,
                                           request.sensor_device);
  if (!contract) {
    // The constructor failed; drop the placeholder so the endpoint can
    // retry the open (e.g. after the sensor comes up).
    runtime::MutexLock lock(sessions_mu_);
    sessions_.erase(request.channel_id);
    return reject(HubStatus::VmFailure, HubResponseKind::Open,
                  request.channel_id);
  }
  opens_.fetch_add(1, std::memory_order_relaxed);
  HubResponse response;
  response.kind = HubResponseKind::Open;
  response.channel_id = request.channel_id;
  response.contract = contract;
  return response;
}

HubResponse ChannelHub::serve(const PaymentUpdate& request) {
  const auto slot = find_session(request.channel_id);
  if (!slot) {
    return reject(HubStatus::UnknownChannel, HubResponseKind::Payment,
                  request.channel_id);
  }
  runtime::MutexLock session_lock(slot->mu);
  if (!slot->session.is_open()) {
    return reject(HubStatus::ChannelClosed, HubResponseKind::Payment,
                  request.channel_id);
  }
  const auto counter = slot->session.countersign(request.proposal.state, key_);
  if (!counter) {
    return reject(HubStatus::BadState, HubResponseKind::Payment,
                  request.channel_id);
  }
  SignedState full = request.proposal;
  full.receiver_sig = *counter;
  if (!slot->session.accept(full)) {
    return reject(HubStatus::BadSignature, HubResponseKind::Payment,
                  request.channel_id);
  }
  payments_.fetch_add(1, std::memory_order_relaxed);
  HubResponse response;
  response.kind = HubResponseKind::Payment;
  response.channel_id = request.channel_id;
  response.state = std::move(full);
  return response;
}

HubResponse ChannelHub::serve(const CloseRequest& request, evm::Vm& vm) {
  const auto slot = find_session(request.channel_id);
  if (!slot) {
    return reject(HubStatus::UnknownChannel, HubResponseKind::Close,
                  request.channel_id);
  }
  runtime::MutexLock session_lock(slot->mu);
  if (!slot->session.is_open()) {
    return reject(HubStatus::ChannelClosed, HubResponseKind::Close,
                  request.channel_id);
  }
  auto final_state = slot->session.close(vm, key_);
  if (!final_state) {
    return reject(HubStatus::VmFailure, HubResponseKind::Close,
                  request.channel_id);
  }
  closes_.fetch_add(1, std::memory_order_relaxed);
  HubResponse response;
  response.kind = HubResponseKind::Close;
  response.channel_id = request.channel_id;
  response.state = std::move(*final_state);
  return response;
}

HubResponse ChannelHub::dispatch(const HubRequest& request, evm::Vm* vm,
                                 std::uint32_t queue_us) {
  const std::size_t kind = request.index();  // variant order == kind order
  obs::Span span(Instruments::span_name(kind), "hub");
  const auto start = std::chrono::steady_clock::now();
  HubResponse response = std::visit(
      [&](const auto& r) {
        if constexpr (std::is_same_v<std::decay_t<decltype(r)>,
                                     PaymentUpdate>) {
          return serve(r);
        } else {
          return serve(r, *vm);  // callers lease a Vm for open/close
        }
      },
      request);
  response.queue_us = queue_us;
  response.service_us = static_cast<std::uint32_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  if (obs::metrics_enabled()) {
    obs_->requests[kind][static_cast<std::size_t>(response.status)]->inc();
    obs_->service_us[kind]->record(response.service_us);
    obs_->queue_us->record(queue_us);
  }
  return response;
}

HubResponse ChannelHub::handle(const HubRequest& request) {
  CallGate gate(*this);
  if (!gate.admitted()) {
    return shutdown_busy(kind_of(request), channel_of(request));
  }
  if (std::holds_alternative<PaymentUpdate>(request)) {
    // Countersigning is pure ECDSA + log work; don't queue ~6 ms of it
    // behind the bounded interpreter set the request never touches.
    return dispatch(request, nullptr);
  }
  // Time the lease wait — with every Vm out, this is where a request
  // queues. Measured unconditionally (like service_us: it is part of the
  // response's bench telemetry); the trace event alone is gated.
  const std::uint64_t trace_start =
      obs::trace_enabled() ? obs::detail::trace_now_ns() : 0;
  const auto wait_start = std::chrono::steady_clock::now();
  evm::Vm& vm = acquire_vm();
  const auto queue_us = static_cast<std::uint32_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - wait_start)
          .count());
  if (obs::trace_enabled()) {
    obs::Tracer::instance().emit("hub.queue_wait", "hub", trace_start,
                                 obs::detail::trace_now_ns());
  }
  VmLease lease{*this, vm};
  return dispatch(request, &lease.vm(), queue_us);
}

HubResponse ChannelHub::handle(const OpenRequest& request) {
  return handle(HubRequest{request});
}

HubResponse ChannelHub::handle(const PaymentUpdate& request) {
  return handle(HubRequest{request});
}

HubResponse ChannelHub::handle(const CloseRequest& request) {
  return handle(HubRequest{request});
}

std::vector<HubResponse> ChannelHub::handle_batch(
    std::span<const HubRequest> requests) {
  std::vector<HubResponse> responses(requests.size());
  if (requests.empty()) return responses;
  CallGate gate(*this);
  if (!gate.admitted()) {
    for (std::size_t i = 0; i < requests.size(); ++i) {
      responses[i] =
          shutdown_busy(kind_of(requests[i]), channel_of(requests[i]));
    }
    return responses;
  }

  // Group by channel id: one group is one session's requests in batch
  // order, so per-session effects are deterministic at any worker count.
  std::map<U256, std::size_t> group_of;
  std::vector<std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const auto [it, inserted] =
        group_of.try_emplace(channel_of(requests[i]), groups.size());
    if (inserted) groups.emplace_back();
    groups[it->second].push_back(i);
  }

  std::atomic<std::size_t> cursor{0};
  const std::size_t workers =
      std::min(pool_.thread_count(), groups.size());
  // Queue wait for a batched request: batch submission to the moment a
  // worker starts dispatching it (time spent behind earlier groups and
  // other sessions' work).
  const auto batch_start = std::chrono::steady_clock::now();
  runtime::run_tasks(pool_, workers, [&](std::size_t) {
    evm::Vm& vm = acquire_vm();
    VmLease lease{*this, vm};
    for (;;) {
      const std::size_t g = cursor.fetch_add(1, std::memory_order_relaxed);
      if (g >= groups.size()) return;
      for (const std::size_t i : groups[g]) {
        const auto queue_us = static_cast<std::uint32_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - batch_start)
                .count());
        responses[i] = dispatch(requests[i], &lease.vm(), queue_us);
      }
    }
  });
  return responses;
}

ChannelHub::Stats ChannelHub::stats() const {
  Stats s;
  s.opens = opens_.load(std::memory_order_relaxed);
  s.payments = payments_.load(std::memory_order_relaxed);
  s.closes = closes_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  std::vector<std::shared_ptr<SessionSlot>> slots;
  {
    runtime::MutexLock lock(sessions_mu_);
    s.sessions = sessions_.size();
    slots.reserve(sessions_.size());
    for (const auto& [id, slot] : sessions_) slots.push_back(slot);
  }
  for (const auto& slot : slots) {
    runtime::MutexLock session_lock(slot->mu);
    const EndpointStats& e = slot->session.stats();
    s.signatures += e.signatures;
    s.verifications += e.verifications;
    s.vm_cycles += e.vm_cycles;
    if (slot->session.is_open()) ++s.open_sessions;
  }
  return s;
}

std::size_t ChannelHub::session_count() const {
  runtime::MutexLock lock(sessions_mu_);
  return sessions_.size();
}

std::optional<SideChainLog> ChannelHub::session_log(
    const U256& channel_id) const {
  const auto slot = find_session(channel_id);
  if (!slot) return std::nullopt;
  runtime::MutexLock session_lock(slot->mu);
  return slot->session.log();
}

std::optional<U256> ChannelHub::session_stored(const U256& channel_id,
                                               std::uint8_t slot_key) const {
  const auto slot = find_session(channel_id);
  if (!slot) return std::nullopt;
  runtime::MutexLock session_lock(slot->mu);
  return slot->session.stored(slot_key);
}

bool ChannelHub::audit_all() const {
  std::vector<std::shared_ptr<SessionSlot>> slots;
  {
    runtime::MutexLock lock(sessions_mu_);
    slots.reserve(sessions_.size());
    for (const auto& [id, slot] : sessions_) slots.push_back(slot);
  }
  return std::all_of(slots.begin(), slots.end(), [&](const auto& slot) {
    runtime::MutexLock session_lock(slot->mu);
    return slot->session.log().audit(onchain_root_);
  });
}

}  // namespace tinyevm::channel
