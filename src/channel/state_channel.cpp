#include "channel/state_channel.hpp"

#include <stdexcept>

namespace tinyevm::channel {

rlp::Bytes AppState::encode() const {
  return rlp::encode(rlp::Item::list({
      rlp::Item::quantity(channel_id),
      rlp::Item::quantity(U256{version}),
      rlp::Item::bytes(payload),
      rlp::Item::bytes(prev_hash),
  }));
}

std::optional<AppState> AppState::decode(std::span<const std::uint8_t> data) {
  const auto item = rlp::decode(data);
  if (!item || !item->is_list()) return std::nullopt;
  const auto& fields = item->as_list();
  if (fields.size() != 4) return std::nullopt;
  for (const auto& f : fields) {
    if (f.is_list()) return std::nullopt;
  }
  if (fields[3].as_bytes().size() != 32) return std::nullopt;
  try {
    AppState out;
    out.channel_id = fields[0].as_quantity();
    const U256 version = fields[1].as_quantity();
    if (!version.fits_u64()) return std::nullopt;
    out.version = version.as_u64();
    out.payload = fields[2].as_bytes();
    std::copy(fields[3].as_bytes().begin(), fields[3].as_bytes().end(),
              out.prev_hash.begin());
    return out;
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
}

Hash256 AppState::digest() const { return keccak256(encode()); }

bool SignedAppState::verify(const secp256k1::Address& initiator,
                            const secp256k1::Address& responder) const {
  const Hash256 d = state.digest();
  const auto a = secp256k1::recover_address(d, initiator_sig);
  const auto b = secp256k1::recover_address(d, responder_sig);
  return a && b && *a == initiator && *b == responder;
}

StateChannelSession::StateChannelSession(const secp256k1::PrivateKey& key,
                                         const secp256k1::Address& peer,
                                         bool is_initiator,
                                         const U256& channel_id,
                                         const Hash256& anchor)
    : key_(key),
      peer_(peer),
      is_initiator_(is_initiator),
      channel_id_(channel_id),
      head_(anchor) {}

SignedAppState StateChannelSession::propose(rlp::Bytes payload) const {
  SignedAppState out;
  out.state.channel_id = channel_id_;
  out.state.version = version_ + 1;
  out.state.payload = std::move(payload);
  out.state.prev_hash = head_;
  const Hash256 d = out.state.digest();
  if (is_initiator_) {
    out.initiator_sig = secp256k1::sign(d, key_);
  } else {
    out.responder_sig = secp256k1::sign(d, key_);
  }
  return out;
}

std::optional<secp256k1::Signature> StateChannelSession::countersign(
    const AppState& state) const {
  if (state.channel_id != channel_id_) return std::nullopt;
  if (state.version != version_ + 1) return std::nullopt;
  if (state.prev_hash != head_) return std::nullopt;
  return secp256k1::sign(state.digest(), key_);
}

bool StateChannelSession::accept(const SignedAppState& signed_state) {
  if (signed_state.state.channel_id != channel_id_) return false;
  if (signed_state.state.version != version_ + 1) return false;
  if (signed_state.state.prev_hash != head_) return false;
  const auto initiator = is_initiator_ ? self() : peer_;
  const auto responder = is_initiator_ ? peer_ : self();
  if (!signed_state.verify(initiator, responder)) return false;
  head_ = signed_state.state.digest();
  version_ = signed_state.state.version;
  payload_ = signed_state.state.payload;
  history_.push_back(signed_state);
  return true;
}

bool StateChannelSession::proposal_beats(const AppState& mine,
                                         const AppState& theirs) const {
  if (mine.version != theirs.version) return mine.version > theirs.version;
  // Deterministic tie-break: the initiator's proposal dominates.
  return is_initiator_;
}

}  // namespace tinyevm::channel
