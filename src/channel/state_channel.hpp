// Generic state channels — the §II-C generalization TinyEVM's payment
// channels specialize: two mutually-distrusting parties evolve *arbitrary
// application state* off-chain under double signatures, a per-channel
// logical clock, and a hash link, and either party can later hold the
// final state against the other.
//
// The payment channel stores (paid_total, sensor_data); an application
// channel stores whatever the app serializes — an SLA monitor's breach
// counters, a firmware-update negotiation, a shared sensor calibration.
// Only the envelope is fixed: version, app payload, hash link, signatures.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/hash.hpp"
#include "crypto/secp256k1.hpp"
#include "rlp/rlp.hpp"
#include "u256/u256.hpp"

namespace tinyevm::channel {

/// One version of the application state.
struct AppState {
  U256 channel_id;
  std::uint64_t version = 0;  ///< logical clock, strictly increasing
  rlp::Bytes payload;         ///< app-defined serialized state
  Hash256 prev_hash{};        ///< link to the previous accepted version

  [[nodiscard]] rlp::Bytes encode() const;
  static std::optional<AppState> decode(std::span<const std::uint8_t> data);
  [[nodiscard]] Hash256 digest() const;

  friend bool operator==(const AppState& a, const AppState& b) = default;
};

/// App state plus both parties' signatures over its digest.
struct SignedAppState {
  AppState state;
  secp256k1::Signature initiator_sig;
  secp256k1::Signature responder_sig;

  [[nodiscard]] bool verify(const secp256k1::Address& initiator,
                            const secp256k1::Address& responder) const;
};

/// One party's view of a generic state channel. Both sides run one; the
/// transport between them is the application's concern (TSCH, BLE, …).
///
/// Update flow: either party `propose`s the next state (version = latest
/// accepted + 1); the peer validates and `countersign`s; both `accept` the
/// doubly-signed result. Concurrent proposals at the same version are
/// resolved deterministically: the initiator's proposal wins ties, so the
/// responder re-bases (`proposal_beats` tells who should yield).
class StateChannelSession {
 public:
  StateChannelSession(const secp256k1::PrivateKey& key,
                      const secp256k1::Address& peer, bool is_initiator,
                      const U256& channel_id, const Hash256& anchor);

  [[nodiscard]] secp256k1::Address self() const { return key_.address(); }
  [[nodiscard]] const secp256k1::Address& peer() const { return peer_; }
  [[nodiscard]] std::uint64_t version() const { return version_; }
  [[nodiscard]] const rlp::Bytes& current_payload() const {
    return payload_;
  }
  [[nodiscard]] const std::vector<SignedAppState>& history() const {
    return history_;
  }

  /// Builds and self-signs the next state carrying `payload`.
  [[nodiscard]] SignedAppState propose(rlp::Bytes payload) const;

  /// Validates a peer proposal (channel id, version, hash link) and signs
  /// it; nullopt when invalid.
  [[nodiscard]] std::optional<secp256k1::Signature> countersign(
      const AppState& state) const;

  /// Records a doubly-signed state; false when signatures or links fail.
  bool accept(const SignedAppState& signed_state);

  /// Tie-break for concurrent proposals at the same version: true when
  /// `mine` should win over `theirs` (initiator's proposals dominate).
  [[nodiscard]] bool proposal_beats(const AppState& mine,
                                    const AppState& theirs) const;

  /// Latest doubly-signed state — the artifact to settle with.
  [[nodiscard]] std::optional<SignedAppState> final_state() const {
    if (history_.empty()) return std::nullopt;
    return history_.back();
  }

 private:
  secp256k1::PrivateKey key_;
  secp256k1::Address peer_;
  bool is_initiator_;
  U256 channel_id_;
  Hash256 head_;
  std::uint64_t version_ = 0;
  rlp::Bytes payload_;
  std::vector<SignedAppState> history_;
};

}  // namespace tinyevm::channel
