#include "channel/merkle_sum_tree.hpp"

#include <cstring>

namespace tinyevm::channel {

SumNode MerkleSumTree::filler() {
  return SumNode{U256{}, Hash256{}};
}

SumNode MerkleSumTree::combine(const SumNode& left, const SumNode& right) {
  std::array<std::uint8_t, 128> buf;
  const auto ls = left.sum.to_word();
  const auto rs = right.sum.to_word();
  std::memcpy(buf.data(), ls.data(), 32);
  std::memcpy(buf.data() + 32, left.hash.data(), 32);
  std::memcpy(buf.data() + 64, rs.data(), 32);
  std::memcpy(buf.data() + 96, right.hash.data(), 32);
  return SumNode{left.sum + right.sum, keccak256(buf)};
}

std::size_t MerkleSumTree::append(const U256& value, const Hash256& digest) {
  leaves_.push_back(SumNode{value, digest});
  return leaves_.size() - 1;
}

std::vector<std::vector<SumNode>> MerkleSumTree::build_layers() const {
  std::vector<std::vector<SumNode>> layers;
  layers.push_back(leaves_);
  while (layers.back().size() > 1) {
    const auto& prev = layers.back();
    std::vector<SumNode> next;
    next.reserve((prev.size() + 1) / 2);
    for (std::size_t i = 0; i < prev.size(); i += 2) {
      const SumNode& left = prev[i];
      const SumNode right = i + 1 < prev.size() ? prev[i + 1] : filler();
      next.push_back(combine(left, right));
    }
    layers.push_back(std::move(next));
  }
  return layers;
}

SumNode MerkleSumTree::root() const {
  if (leaves_.empty()) {
    return SumNode{U256{}, keccak256(std::string_view{})};
  }
  return build_layers().back()[0];
}

std::optional<Proof> MerkleSumTree::prove(std::size_t index) const {
  if (index >= leaves_.size()) return std::nullopt;
  const auto layers = build_layers();
  Proof proof;
  std::size_t pos = index;
  for (std::size_t level = 0; level + 1 < layers.size(); ++level) {
    const auto& layer = layers[level];
    const bool is_right = (pos % 2) == 1;
    const std::size_t sibling_pos = is_right ? pos - 1 : pos + 1;
    const SumNode sibling =
        sibling_pos < layer.size() ? layer[sibling_pos] : filler();
    proof.push_back(ProofStep{sibling, is_right});
    pos /= 2;
  }
  return proof;
}

bool MerkleSumTree::verify(const SumNode& root, const U256& value,
                           const Hash256& digest, const Proof& proof,
                           const U256& cap) {
  SumNode node{value, digest};
  if (node.sum > cap) return false;
  for (const ProofStep& step : proof) {
    node = step.sibling_on_left ? combine(step.sibling, node)
                                : combine(node, step.sibling);
    // Audit condition: partial sums along the path may never exceed the
    // locked funds; a violation anywhere invalidates the commitment.
    if (node.sum > cap) return false;
  }
  return node == root;
}

}  // namespace tinyevm::channel
