// Hand-assembled EVM bytecode for the off-chain payment-channel contract —
// the deployable "smart contract template" both motes execute locally
// (paper §IV-D, Listings 1/2).
//
// Constructor (Listing 2 pattern):
//     sensor_reading = SENSOR(device, param)   // 0x0c IoT opcode
//     sstore(SLOT_SENSOR, sensor_reading)
//     sstore(SLOT_RATE, calldata[0])           // negotiated hourly rate
//     return runtime
//
// Runtime dispatch (selector in calldata word 0, big-endian low byte):
//     0x01 pay(units)    -> paid_total += units * rate; seq += 1;
//                           log1(paid_total, seq); return paid_total
//     0x02 status()      -> return (seq << 128) | paid_total
//     0x03 close()       -> log1(paid_total, seq); selfdestruct(caller)
//     otherwise          -> revert
//
// Storage layout (8-bit TinyEVM keys):
//     0x0c sensor reading   (the paper stores it at the opcode's own slot)
//     0x01 negotiated rate
//     0x02 cumulative paid_total
//     0x03 sequence number (logical clock)
#pragma once

#include <cstdint>

#include "evm/state.hpp"
#include "u256/u256.hpp"

namespace tinyevm::channel {

struct TemplateSlots {
  static constexpr std::uint8_t kSensor = 0x0c;
  static constexpr std::uint8_t kRate = 0x01;
  static constexpr std::uint8_t kPaidTotal = 0x02;
  static constexpr std::uint8_t kSequence = 0x03;
};

/// Function selectors for the runtime dispatcher (single byte in the low
/// byte of calldata word 0).
struct TemplateFn {
  static constexpr std::uint64_t kPay = 0x01;
  static constexpr std::uint64_t kStatus = 0x02;
  static constexpr std::uint64_t kClose = 0x03;
};

/// Deployment bytecode: constructor (sensor read + rate init) + runtime.
/// `sensor_device` names the on-board device sampled at deploy time.
evm::Bytes payment_channel_init_code(std::uint32_t sensor_device);

/// Just the runtime, for size accounting and direct execution.
evm::Bytes payment_channel_runtime();

/// ABI helpers for the single-word calldata convention of the template.
evm::Bytes encode_pay_call(const U256& units);
evm::Bytes encode_status_call();
evm::Bytes encode_close_call();

}  // namespace tinyevm::channel
