// Session-centric channel serving: the ChannelHub server.
//
// The paper's workload is one pairwise payment channel between a mote and
// a gateway; the ROADMAP north-star is a channel *server* handling
// thousands to millions of endpoints. This header is the session-centric
// redesign of the channel layer's public API:
//
//   * `ChannelSession` — the per-channel state machine (local contract,
//     hash-linked side-chain log, signing/validation rules) extracted from
//     the old endpoint class so one process can own thousands of them
//     without a heavy Vm per channel.
//   * `OpenRequest` / `PaymentUpdate` / `CloseRequest` → `HubResponse` —
//     the explicit wire surface. Endpoints interact with a hub purely
//     through these serialized SignedState exchanges.
//   * `ChannelHub` — the server: a worker pool, a bounded per-worker Vm
//     set, and a table of sessions keyed by channel id. Requests for
//     distinct channels execute concurrently; requests for one channel
//     are serialized in arrival order, so batch results are deterministic
//     (bit-identical logs) at any worker count.
//
// The device-side peripherals (`SensorBank`, `DeviceHost`) live here too:
// a hub session runs the same template bytecode against the same host
// shape as a mote-side endpoint, which is what makes the serial endpoint
// exchange and the hub exchange byte-for-byte comparable.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "channel/state.hpp"
#include "channel/template_bytecode.hpp"
#include "evm/host.hpp"
#include "evm/vm.hpp"
#include "obs/metrics.hpp"
#include "runtime/thread_annotations.hpp"
#include "runtime/thread_pool.hpp"

namespace tinyevm::channel {

/// In-memory sensor/actuator bank standing in for the mote's peripherals.
/// Device ids map to current readings; actuation records the last command.
/// Actuator registration is separate from readings, so a hub-side session
/// can drive an actuator that never produced a reading.
class SensorBank {
 public:
  void set_reading(std::uint32_t device, const U256& value) {
    readings_[device] = value;
  }
  [[nodiscard]] std::optional<U256> read(std::uint32_t device) const {
    const auto it = readings_.find(device);
    if (it == readings_.end()) return std::nullopt;
    return it->second;
  }
  /// Declares `device` actuatable. Devices with a reading are implicitly
  /// actuatable too (a sensor that also accepts commands).
  void register_actuator(std::uint32_t device) { actuators_.insert(device); }
  bool actuate(std::uint32_t device, const U256& value) {
    if (!actuators_.contains(device) && !readings_.contains(device)) {
      return false;  // unknown device: the 0x0c opcode must abort
    }
    actuations_[device] = value;
    return true;
  }
  [[nodiscard]] std::optional<U256> last_actuation(std::uint32_t device) const {
    const auto it = actuations_.find(device);
    if (it == actuations_.end()) return std::nullopt;
    return it->second;
  }

 private:
  std::map<std::uint32_t, U256> readings_;
  std::map<std::uint32_t, U256> actuations_;
  std::set<std::uint32_t> actuators_;
};

/// Host wiring a local TinyEVM to per-contract TinyStorage and the mote's
/// SensorBank. CREATE deploys into the device-local contract table.
class DeviceHost : public evm::Host {
 public:
  explicit DeviceHost(SensorBank& sensors, evm::VmConfig config)
      : sensors_(sensors), config_(config) {}

  U256 sload(const evm::Address& addr, const U256& key) override;
  bool sstore(const evm::Address& addr, const U256& key,
              const U256& value) override;
  U256 balance(const evm::Address&) override { return U256{}; }
  evm::Bytes code_at(const evm::Address& addr) override;
  evm::BlockInfo block_info() override { return {}; }
  Hash256 block_hash(std::uint64_t) override { return {}; }
  evm::CallResult call(const evm::CallRequest& req) override;
  evm::CreateResult create(const evm::CreateRequest& req) override;
  void emit_log(evm::LogEntry entry) override {
    logs_.push_back(std::move(entry));
  }
  void self_destruct(const evm::Address& addr, const evm::Address&) override;
  std::optional<U256> sensor_access(const evm::SensorRequest& req) override;

  [[nodiscard]] const std::vector<evm::LogEntry>& logs() const {
    return logs_;
  }
  [[nodiscard]] const evm::TinyStorage* storage_of(
      const evm::Address& addr) const;
  [[nodiscard]] std::size_t contract_count() const {
    return contracts_.size();
  }

 private:
  SensorBank& sensors_;
  evm::VmConfig config_;
  std::map<evm::Address, evm::Bytes> contracts_;
  /// keccak256 of each installed runtime, computed once at CREATE so
  /// repeat calls skip rehashing in the EVM's translation cache.
  std::map<evm::Address, Hash256> code_hashes_;
  std::map<evm::Address, evm::TinyStorage> storage_;
  std::vector<evm::LogEntry> logs_;
  std::uint64_t next_contract_ = 1;
};

/// Aggregate statistics for one session/endpoint — consumed by the
/// energy/latency benchmarks (Table IV, Figure 5) and the hub counters.
struct EndpointStats {
  std::uint64_t vm_cycles = 0;       ///< MCU cycles in the interpreter
  std::uint64_t signatures = 0;      ///< ECDSA signs performed
  std::uint64_t verifications = 0;   ///< signature recoveries performed
  std::uint64_t states_signed = 0;
};

/// One side of one payment channel: the local contract instance, the
/// hash-linked side-chain log, and the signing/validation state machine —
/// everything *except* the interpreter and the private key, which the
/// owner (a ChannelEndpoint with its own Vm, or a ChannelHub handing out
/// worker Vms) supplies per call. Not thread-safe; the hub serializes
/// access per session.
class ChannelSession {
 public:
  ChannelSession(const Hash256& onchain_root, const evm::VmConfig& config)
      : config_(config), host_(sensors_, config_), log_(onchain_root) {}

  // The host keeps a reference to this session's SensorBank; pinning the
  // object keeps that wiring trivially valid (the hub stores sessions
  // behind unique_ptr).
  ChannelSession(const ChannelSession&) = delete;
  ChannelSession& operator=(const ChannelSession&) = delete;

  [[nodiscard]] SensorBank& sensors() { return sensors_; }
  [[nodiscard]] const SideChainLog& log() const { return log_; }
  [[nodiscard]] const EndpointStats& stats() const { return stats_; }
  [[nodiscard]] const DeviceHost& host() const { return host_; }
  [[nodiscard]] const U256& channel_id() const { return channel_id_; }
  /// True between a successful open() and close().
  [[nodiscard]] bool is_open() const { return contract_.has_value(); }

  /// Executes the template bytecode locally to open the channel (the
  /// constructor samples `sensor_device`). Returns the deployed contract
  /// address; nullopt when the VM run fails.
  std::optional<evm::Address> open(evm::Vm& vm, const U256& channel_id,
                                   const U256& rate,
                                   std::uint32_t sensor_device);

  /// Payer side: run pay(units) on the local contract, then build and
  /// sign the next channel state. The peer countersigns.
  std::optional<SignedState> make_payment(evm::Vm& vm, const PrivateKey& key,
                                          const U256& units);

  /// Countersigns a peer-proposed state after re-validating it against the
  /// local log (monotone sequence, non-decreasing paid_total, hash link).
  std::optional<Signature> countersign(const ChannelState& state,
                                       const PrivateKey& key);

  /// Records a fully-signed state into the local side-chain log.
  bool accept(const SignedState& signed_state);

  /// Runs close() on the local contract and returns the final state to be
  /// submitted on-chain.
  std::optional<SignedState> close(evm::Vm& vm, const PrivateKey& key);

  /// The value currently stored in the local contract at `slot`.
  [[nodiscard]] U256 stored(std::uint8_t slot) const;

 private:
  std::optional<U256> run_contract(evm::Vm& vm, const evm::Bytes& calldata);
  ChannelState next_state(const U256& paid_total, std::uint64_t seq) const;

  evm::VmConfig config_;
  SensorBank sensors_;
  DeviceHost host_;
  SideChainLog log_;
  EndpointStats stats_;

  U256 channel_id_;
  std::uint32_t sensor_device_ = 0;
  std::optional<evm::Address> contract_;
  evm::Bytes runtime_code_;   ///< installed by the constructor run
  Hash256 runtime_code_hash_{};  ///< translation-cache key, hashed once
};

// ---------------------------------------------------------------------------
// Wire surface
// ---------------------------------------------------------------------------

enum class HubStatus : std::uint8_t {
  Ok,
  UnknownChannel,    ///< no session under this channel id
  DuplicateChannel,  ///< open for a channel id already served
  ChannelClosed,     ///< payment/close after the session closed
  VmFailure,         ///< template execution failed on the hub side
  BadState,          ///< proposal failed log validation (replay, regression)
  BadSignature,      ///< countersigned state failed recovery / append
  Busy,              ///< overload shed: hub shutting down, or the socket
                     ///< front-end's per-connection budget was exceeded —
                     ///< retry after backoff
};

[[nodiscard]] std::string_view to_string(HubStatus s);

/// Open a channel: the hub instantiates its side of the template with the
/// negotiated rate, sampling `sensor_device` in the constructor.
struct OpenRequest {
  U256 channel_id;
  U256 rate;
  std::uint32_t sensor_device = 0;

  friend bool operator==(const OpenRequest& a,
                         const OpenRequest& b) = default;
};

/// One payment round: the endpoint's half-signed next channel state. The
/// hub validates it against the session log, countersigns, records it, and
/// returns the fully-signed state.
struct PaymentUpdate {
  U256 channel_id;
  SignedState proposal;  ///< sender_sig set; receiver_sig empty

  friend bool operator==(const PaymentUpdate& a,
                         const PaymentUpdate& b) = default;
};

/// Close the channel: the hub runs close() on its contract and returns its
/// signed final state.
struct CloseRequest {
  U256 channel_id;

  friend bool operator==(const CloseRequest& a,
                         const CloseRequest& b) = default;
};

using HubRequest = std::variant<OpenRequest, PaymentUpdate, CloseRequest>;

/// Which request a HubResponse answers — explicit so endpoints never have
/// to infer the kind from the payload shape.
enum class HubResponseKind : std::uint8_t { Open, Payment, Close };

struct HubResponse {
  HubStatus status = HubStatus::Ok;
  HubResponseKind kind = HubResponseKind::Open;
  U256 channel_id;
  /// OpenRequest: the hub-side contract address.
  std::optional<evm::Address> contract;
  /// PaymentUpdate: the fully-signed state (both signatures).
  /// CloseRequest: the hub's final state (hub signature only).
  std::optional<SignedState> state;
  /// Time spent waiting before a worker started on the request — blocking
  /// on a Vm lease (`handle`) or sitting in the batch behind earlier
  /// groups (`handle_batch`) — microseconds (bench telemetry; not part of
  /// the deterministic payload).
  std::uint32_t queue_us = 0;
  /// Worker service time for this request — dispatch start to response,
  /// excluding queue_us — microseconds (bench telemetry; not part of the
  /// deterministic payload).
  std::uint32_t service_us = 0;

  [[nodiscard]] bool ok() const { return status == HubStatus::Ok; }
};

// ---------------------------------------------------------------------------
// The hub server
// ---------------------------------------------------------------------------

/// A channel server: one identity (key), many concurrent sessions.
///
/// Requests arrive either one at a time (`handle`, thread-safe) or as a
/// batch (`handle_batch`), which fans session groups out across the worker
/// pool. Each worker leases one Vm from a bounded set sized to the pool,
/// so a hub serving 10k sessions still owns only `workers` interpreters;
/// translations are shared through the (sharded) CodeCache.
class ChannelHub {
 public:
  struct Config {
    /// Worker threads and leased Vms; 0 = ThreadPool::hardware_threads().
    std::size_t workers = 0;
    evm::VmConfig vm_config = evm::VmConfig::tiny();
    /// Translation cache shared by every worker Vm; null = the process
    /// default (CodeCache::shared_default()).
    std::shared_ptr<evm::CodeCache> code_cache;
    /// Execution engine for every worker Vm (EngineRegistry name). Empty =
    /// whatever vm_config selects; unknown names make the ctor throw.
    std::string engine;
  };

  /// Hub-wide counters, aggregated on demand.
  struct Stats {
    std::uint64_t opens = 0;      ///< sessions opened successfully
    std::uint64_t payments = 0;   ///< payment updates applied
    std::uint64_t closes = 0;     ///< sessions closed
    std::uint64_t rejected = 0;   ///< requests answered with a non-Ok status
    std::uint64_t signatures = 0;
    std::uint64_t verifications = 0;
    std::uint64_t vm_cycles = 0;
    std::size_t sessions = 0;       ///< table size (open + closed)
    std::size_t open_sessions = 0;
  };

  ChannelHub(std::string name, const PrivateKey& key,
             const Hash256& onchain_root);
  ChannelHub(std::string name, const PrivateKey& key,
             const Hash256& onchain_root, Config config);
  /// Blocks until every in-flight handle()/handle_batch() call drains, so
  /// destruction never races the session table a live batch is walking;
  /// calls arriving after teardown begins are answered `Busy`.
  ~ChannelHub();

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Address address() const { return key_.address(); }
  [[nodiscard]] std::size_t worker_count() const { return vms_.size(); }
  [[nodiscard]] const std::shared_ptr<evm::CodeCache>& code_cache() const {
    return cache_;
  }

  /// Default sensor readings / actuator registrations copied into every
  /// new session's SensorBank before its constructor runs. Install these
  /// before serving opens.
  void set_sensor_default(std::uint32_t device, const U256& value);
  void register_actuator_default(std::uint32_t device);

  /// Serves one request. Thread-safe; blocks while every Vm is leased.
  HubResponse handle(const OpenRequest& request);
  HubResponse handle(const PaymentUpdate& request);
  HubResponse handle(const CloseRequest& request);
  HubResponse handle(const HubRequest& request);

  /// Serves a batch on the worker pool. Requests for distinct channels run
  /// concurrently; requests for the same channel run in batch order, so
  /// responses (and session logs) are identical at any worker count.
  std::vector<HubResponse> handle_batch(std::span<const HubRequest> requests);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t session_count() const;
  /// Snapshot of one session's side-chain log (nullopt: unknown channel).
  [[nodiscard]] std::optional<SideChainLog> session_log(
      const U256& channel_id) const;
  /// One session's contract storage at `slot` (nullopt: unknown channel).
  [[nodiscard]] std::optional<U256> session_stored(const U256& channel_id,
                                                   std::uint8_t slot) const;
  /// Audits every session log against the on-chain anchor.
  [[nodiscard]] bool audit_all() const;

 private:
  /// A session plus the mutex serializing its state machine.
  struct SessionSlot {
    SessionSlot(const Hash256& root, const evm::VmConfig& config)
        : session(root, config) {}
    mutable runtime::Mutex mu;
    ChannelSession session GUARDED_BY(mu);
  };

  /// RAII lease over one of the hub's bounded Vm set.
  class VmLease {
   public:
    VmLease(ChannelHub& hub, evm::Vm& vm) : hub_(hub), vm_(vm) {}
    ~VmLease() { hub_.release_vm(vm_); }
    VmLease(const VmLease&) = delete;
    VmLease& operator=(const VmLease&) = delete;
    [[nodiscard]] evm::Vm& vm() { return vm_; }

   private:
    ChannelHub& hub_;
    evm::Vm& vm_;
  };

  evm::Vm& acquire_vm();
  void release_vm(evm::Vm& vm);

  [[nodiscard]] std::shared_ptr<SessionSlot> find_session(
      const U256& channel_id) const;
  static const U256& channel_of(const HubRequest& request);
  static HubResponseKind kind_of(const HubRequest& request);

  /// `vm` may be null only when the request is a PaymentUpdate, which
  /// never touches an interpreter. `queue_us` is the wait the caller
  /// already measured (Vm lease / batch position); dispatch stamps it into
  /// the response and the queue-wait histogram.
  HubResponse dispatch(const HubRequest& request, evm::Vm* vm,
                       std::uint32_t queue_us = 0);
  HubResponse serve(const OpenRequest& request, evm::Vm& vm);
  HubResponse serve(const PaymentUpdate& request);
  HubResponse serve(const CloseRequest& request, evm::Vm& vm);
  HubResponse reject(HubStatus status, HubResponseKind kind,
                     const U256& channel_id);

  std::string name_;
  PrivateKey key_;
  Hash256 onchain_root_;
  evm::VmConfig vm_config_;
  std::shared_ptr<evm::CodeCache> cache_;
  SensorBank sensor_defaults_;

  std::vector<std::unique_ptr<evm::Vm>> vms_;
  std::mutex vm_mu_;
  std::condition_variable vm_cv_;
  std::vector<evm::Vm*> free_vms_;

  mutable runtime::Mutex sessions_mu_;
  std::map<U256, std::shared_ptr<SessionSlot>> sessions_
      GUARDED_BY(sessions_mu_);

  /// Lifecycle gate: counts in-flight handle()/handle_batch() calls. The
  /// destructor flips `closing_` and waits for the count to reach zero
  /// before member teardown begins, so a batch racing destruction always
  /// finishes against a live session table. Plain std::mutex (not
  /// runtime::Mutex): a condition_variable needs the real type.
  struct CallGate;
  friend struct CallGate;
  mutable std::mutex lifecycle_mu_;
  std::condition_variable lifecycle_cv_;
  std::size_t active_calls_ = 0;
  bool closing_ = false;

  std::atomic<std::uint64_t> opens_{0};
  std::atomic<std::uint64_t> payments_{0};
  std::atomic<std::uint64_t> closes_{0};
  std::atomic<std::uint64_t> rejected_{0};

  /// Registry instruments shared by every hub with this name (hub.cpp;
  /// interned once in the ctor so the request path never takes the
  /// registry mutex).
  struct Instruments;
  Instruments* obs_ = nullptr;

  /// Declared after the counters: destroyed first among the state above,
  /// so the pool drains and joins its workers before the Vms and sessions
  /// they touch go away.
  runtime::ThreadPool pool_;

  /// Scrape-time registration republishing stats() under {hub=<name>}.
  /// Declared last: destroyed before everything the collector reads, and
  /// the handle's destructor synchronizes with any in-flight scrape.
  obs::CollectorHandle obs_collector_;
};

}  // namespace tinyevm::channel
