// Off-chain channel state and signed payment messages.
//
// A payment is a "stand-alone artifact that can claim money from the
// main-chain" (paper §IV-D): it binds the channel id, a monotone sequence
// number (the logical clock), the cumulative amount paid, and the sensor
// data the price was derived from, all under both parties' ECDSA
// signatures. Sequence numbers give causal order without synchronized time.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/hash.hpp"
#include "crypto/secp256k1.hpp"
#include "rlp/rlp.hpp"
#include "u256/u256.hpp"

namespace tinyevm::channel {

using secp256k1::Address;
using secp256k1::PrivateKey;
using secp256k1::Signature;

/// One off-chain channel state (also the payment message format — each
/// payment is the next state of the channel).
struct ChannelState {
  U256 channel_id;
  std::uint64_t sequence = 0;  ///< logical clock; strictly increasing
  U256 paid_total;             ///< cumulative, never decreasing
  U256 sensor_data;            ///< reading the price was computed from
  Hash256 prev_hash{};         ///< hash link to the previous state

  /// Canonical RLP encoding (stable across devices).
  [[nodiscard]] rlp::Bytes encode() const;
  static std::optional<ChannelState> decode(
      std::span<const std::uint8_t> data);

  /// keccak256 of the canonical encoding — what both parties sign.
  [[nodiscard]] Hash256 digest() const;

  friend bool operator==(const ChannelState& a,
                         const ChannelState& b) = default;
};

/// A channel state plus the signatures that make it enforceable on-chain.
struct SignedState {
  ChannelState state;
  Signature sender_sig;
  Signature receiver_sig;

  /// Recovers both signer addresses from the state digest; nullopt when
  /// either signature is malformed.
  struct Signers {
    Address sender;
    Address receiver;
  };
  [[nodiscard]] std::optional<Signers> recover_signers() const;

  /// True when the signatures recover exactly (sender, receiver).
  [[nodiscard]] bool verify(const Address& sender,
                            const Address& receiver) const;

  /// Bit-identical comparison (state fields and both signatures) — what
  /// the hub-vs-serial differential tests assert log entry by log entry.
  friend bool operator==(const SignedState& a, const SignedState& b) = default;
};

/// Device-local, hash-linked side-chain log: "each execution of the payment
/// channel extends the local (side-chain) log of the node, which links each
/// state with the previous" (§IV-D).
class SideChainLog {
 public:
  /// The genesis link anchors at the on-chain root published with the
  /// template, binding the log to the main chain.
  explicit SideChainLog(const Hash256& genesis) : head_(genesis) {}

  /// Hash expected in the next state's prev_hash field.
  [[nodiscard]] const Hash256& head() const { return head_; }

  /// Appends; false when the state's prev_hash does not extend the head or
  /// its sequence does not advance the log.
  bool append(const SignedState& signed_state);

  [[nodiscard]] const std::vector<SignedState>& entries() const {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::optional<SignedState> latest() const {
    if (entries_.empty()) return std::nullopt;
    return entries_.back();
  }

  /// Verifies the whole chain of hash links from the genesis anchor —
  /// "ensures that no transactions are omitted".
  [[nodiscard]] bool audit(const Hash256& genesis) const;

 private:
  Hash256 head_;
  std::vector<SignedState> entries_;
};

}  // namespace tinyevm::channel
