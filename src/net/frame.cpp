#include "net/frame.hpp"

#include <array>
#include <cstring>

namespace tinyevm::net {
namespace {

using channel::ChannelState;
using channel::CloseRequest;
using channel::HubRequest;
using channel::HubResponse;
using channel::HubResponseKind;
using channel::HubStatus;
using channel::OpenRequest;
using channel::PaymentUpdate;
using channel::SignedState;
using secp256k1::Signature;

constexpr std::size_t kHeaderBytes = 1 + 1 + 4;  // version, kind, seq
constexpr std::size_t kCrcBytes = 4;

void put_u32(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

bool known_kind(std::uint8_t k) {
  switch (static_cast<FrameKind>(k)) {
    case FrameKind::Open:
    case FrameKind::Payment:
    case FrameKind::Close:
    case FrameKind::Response:
    case FrameKind::StatsRequest:
    case FrameKind::StatsResponse:
      return true;
  }
  return false;
}

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

// ---- RLP helpers ----------------------------------------------------------

rlp::Item u32_item(std::uint32_t v) { return rlp::Item::quantity(v); }

/// Quantity field -> uint32_t, rejecting anything wider.
std::optional<std::uint32_t> as_u32(const rlp::Item& item) {
  if (item.is_list()) return std::nullopt;
  const U256 v = item.as_quantity();  // throws handled by caller
  if (!v.fits_u64() || v.as_u64() > 0xFFFF'FFFFull) return std::nullopt;
  return static_cast<std::uint32_t>(v.as_u64());
}

rlp::Item signature_item(const Signature& sig) {
  const auto wire = sig.serialize();
  return rlp::Item::bytes(std::span<const std::uint8_t>{wire});
}

std::optional<Signature> parse_signature(const rlp::Item& item) {
  if (item.is_list()) return std::nullopt;
  return Signature::deserialize(item.as_bytes());
}

rlp::Item state_item(const ChannelState& state) {
  return rlp::Item::list({
      rlp::Item::quantity(state.channel_id),
      rlp::Item::quantity(U256{state.sequence}),
      rlp::Item::quantity(state.paid_total),
      rlp::Item::quantity(state.sensor_data),
      rlp::Item::bytes(std::span<const std::uint8_t>{state.prev_hash}),
  });
}

std::optional<ChannelState> parse_state(const rlp::Item& item) {
  if (!item.is_list()) return std::nullopt;
  const auto& f = item.as_list();
  if (f.size() != 5) return std::nullopt;
  for (unsigned i = 0; i < 4; ++i) {
    if (f[i].is_list()) return std::nullopt;
  }
  if (f[4].is_list() || f[4].as_bytes().size() != 32) return std::nullopt;
  ChannelState out;
  out.channel_id = f[0].as_quantity();
  const U256 seq = f[1].as_quantity();
  if (!seq.fits_u64()) return std::nullopt;
  out.sequence = seq.as_u64();
  out.paid_total = f[2].as_quantity();
  out.sensor_data = f[3].as_quantity();
  std::memcpy(out.prev_hash.data(), f[4].as_bytes().data(), 32);
  return out;
}

rlp::Item signed_state_item(const SignedState& ss) {
  return rlp::Item::list({
      state_item(ss.state),
      signature_item(ss.sender_sig),
      signature_item(ss.receiver_sig),
  });
}

std::optional<SignedState> parse_signed_state(const rlp::Item& item) {
  if (!item.is_list()) return std::nullopt;
  const auto& f = item.as_list();
  if (f.size() != 3) return std::nullopt;
  const auto state = parse_state(f[0]);
  const auto sender = parse_signature(f[1]);
  const auto receiver = parse_signature(f[2]);
  if (!state || !sender || !receiver) return std::nullopt;
  return SignedState{*state, *sender, *receiver};
}

Bytes finish_frame(FrameKind kind, std::uint32_t seq, const rlp::Item& body) {
  return encode_frame(Frame{kind, seq, rlp::encode(body)});
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  const auto& table = crc_table();
  std::uint32_t crc = 0xFFFF'FFFFu;
  for (const std::uint8_t byte : data) {
    crc = table[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFF'FFFFu;
}

std::string_view to_string(FrameError e) {
  switch (e) {
    case FrameError::None: return "none";
    case FrameError::BadVersion: return "bad-version";
    case FrameError::BadChecksum: return "bad-checksum";
    case FrameError::BadLength: return "bad-length";
    case FrameError::Oversized: return "oversized";
  }
  return "?";
}

Bytes encode_frame(const Frame& frame) {
  const std::size_t payload =
      kHeaderBytes + frame.body.size() + kCrcBytes;
  Bytes out;
  out.reserve(4 + payload);
  put_u32(out, static_cast<std::uint32_t>(payload));
  out.push_back(kProtocolVersion);
  out.push_back(static_cast<std::uint8_t>(frame.kind));
  put_u32(out, frame.seq);
  out.insert(out.end(), frame.body.begin(), frame.body.end());
  const std::uint32_t crc =
      crc32(std::span<const std::uint8_t>{out.data() + 4, out.size() - 4});
  put_u32(out, crc);
  return out;
}

void FrameReader::feed(std::span<const std::uint8_t> data) {
  if (error_ != FrameError::None) return;
  // Compact the consumed prefix before it outgrows the useful tail.
  if (pos_ > 0 && (pos_ >= buffer_.size() || pos_ > 64 * 1024)) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

std::optional<Frame> FrameReader::next() {
  if (error_ != FrameError::None) return std::nullopt;
  const std::size_t avail = buffer_.size() - pos_;
  if (avail < 4) return std::nullopt;
  const std::uint32_t payload = get_u32(buffer_.data() + pos_);
  if (payload < kHeaderBytes + kCrcBytes) {
    error_ = FrameError::BadLength;
    return std::nullopt;
  }
  if (payload > max_frame_bytes_) {
    error_ = FrameError::Oversized;
    return std::nullopt;
  }
  if (avail < 4 + static_cast<std::size_t>(payload)) return std::nullopt;

  const std::uint8_t* p = buffer_.data() + pos_ + 4;
  const std::uint32_t declared_crc = get_u32(p + payload - kCrcBytes);
  const std::uint32_t actual_crc =
      crc32(std::span<const std::uint8_t>{p, payload - kCrcBytes});
  if (declared_crc != actual_crc) {
    error_ = FrameError::BadChecksum;
    return std::nullopt;
  }
  if (p[0] != kProtocolVersion) {
    error_ = FrameError::BadVersion;
    return std::nullopt;
  }
  if (!known_kind(p[1])) {
    // Unknown kinds fail the stream the same way a version skew would:
    // the peer speaks a protocol we don't.
    error_ = FrameError::BadVersion;
    return std::nullopt;
  }
  Frame frame;
  frame.kind = static_cast<FrameKind>(p[1]);
  frame.seq = get_u32(p + 2);
  frame.body.assign(p + kHeaderBytes, p + payload - kCrcBytes);
  pos_ += 4 + static_cast<std::size_t>(payload);
  if (pos_ == buffer_.size()) {
    buffer_.clear();
    pos_ = 0;
  }
  return frame;
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

Bytes encode_request(const HubRequest& request, std::uint32_t seq) {
  if (const auto* open = std::get_if<OpenRequest>(&request)) {
    return finish_frame(FrameKind::Open, seq,
                        rlp::Item::list({
                            rlp::Item::quantity(open->channel_id),
                            rlp::Item::quantity(open->rate),
                            u32_item(open->sensor_device),
                        }));
  }
  if (const auto* pay = std::get_if<PaymentUpdate>(&request)) {
    return finish_frame(FrameKind::Payment, seq,
                        rlp::Item::list({
                            rlp::Item::quantity(pay->channel_id),
                            signed_state_item(pay->proposal),
                        }));
  }
  const auto& close = std::get<CloseRequest>(request);
  return finish_frame(FrameKind::Close, seq,
                      rlp::Item::list({
                          rlp::Item::quantity(close.channel_id),
                      }));
}

std::optional<HubRequest> decode_request(const Frame& frame) {
  const auto item = rlp::decode(frame.body);
  if (!item || !item->is_list()) return std::nullopt;
  const auto& f = item->as_list();
  try {
    switch (frame.kind) {
      case FrameKind::Open: {
        if (f.size() != 3 || f[0].is_list() || f[1].is_list()) {
          return std::nullopt;
        }
        const auto device = as_u32(f[2]);
        if (!device) return std::nullopt;
        OpenRequest open;
        open.channel_id = f[0].as_quantity();
        open.rate = f[1].as_quantity();
        open.sensor_device = *device;
        return HubRequest{open};
      }
      case FrameKind::Payment: {
        if (f.size() != 2 || f[0].is_list()) return std::nullopt;
        const auto proposal = parse_signed_state(f[1]);
        if (!proposal) return std::nullopt;
        PaymentUpdate pay;
        pay.channel_id = f[0].as_quantity();
        pay.proposal = *proposal;
        return HubRequest{pay};
      }
      case FrameKind::Close: {
        if (f.size() != 1 || f[0].is_list()) return std::nullopt;
        return HubRequest{CloseRequest{f[0].as_quantity()}};
      }
      default:
        return std::nullopt;
    }
  } catch (const std::invalid_argument&) {
    return std::nullopt;  // non-canonical quantity
  }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

Bytes encode_response(const HubResponse& response, std::uint32_t seq) {
  std::vector<rlp::Item> fields;
  fields.reserve(7);
  fields.push_back(
      rlp::Item::quantity(static_cast<std::uint64_t>(response.status)));
  fields.push_back(
      rlp::Item::quantity(static_cast<std::uint64_t>(response.kind)));
  fields.push_back(rlp::Item::quantity(response.channel_id));
  fields.push_back(
      response.contract
          ? rlp::Item::bytes(std::span<const std::uint8_t>{*response.contract})
          : rlp::Item::bytes(Bytes{}));
  fields.push_back(response.state ? signed_state_item(*response.state)
                                  : rlp::Item::bytes(Bytes{}));
  fields.push_back(u32_item(response.queue_us));
  fields.push_back(u32_item(response.service_us));
  return finish_frame(FrameKind::Response, seq,
                      rlp::Item::list(std::move(fields)));
}

std::optional<HubResponse> decode_response(const Frame& frame) {
  if (frame.kind != FrameKind::Response) return std::nullopt;
  const auto item = rlp::decode(frame.body);
  if (!item || !item->is_list()) return std::nullopt;
  const auto& f = item->as_list();
  if (f.size() != 7) return std::nullopt;
  try {
    const auto status = as_u32(f[0]);
    const auto kind = as_u32(f[1]);
    if (!status || *status > static_cast<std::uint32_t>(HubStatus::Busy)) {
      return std::nullopt;
    }
    if (!kind || *kind > static_cast<std::uint32_t>(HubResponseKind::Close)) {
      return std::nullopt;
    }
    if (f[2].is_list()) return std::nullopt;

    HubResponse out;
    out.status = static_cast<HubStatus>(*status);
    out.kind = static_cast<HubResponseKind>(*kind);
    out.channel_id = f[2].as_quantity();

    if (f[3].is_list()) return std::nullopt;
    const auto& contract = f[3].as_bytes();
    if (!contract.empty()) {
      if (contract.size() != 20) return std::nullopt;
      evm::Address addr;
      std::memcpy(addr.data(), contract.data(), 20);
      out.contract = addr;
    }
    if (f[4].is_list()) {
      const auto state = parse_signed_state(f[4]);
      if (!state) return std::nullopt;
      out.state = *state;
    } else if (!f[4].as_bytes().empty()) {
      return std::nullopt;
    }
    const auto queue_us = as_u32(f[5]);
    const auto service_us = as_u32(f[6]);
    if (!queue_us || !service_us) return std::nullopt;
    out.queue_us = *queue_us;
    out.service_us = *service_us;
    return out;
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
}

// ---------------------------------------------------------------------------
// Stats scrape
// ---------------------------------------------------------------------------

Bytes encode_stats_request(const StatsRequest& request, std::uint32_t seq) {
  return finish_frame(
      FrameKind::StatsRequest, seq,
      rlp::Item::list(
          {rlp::Item::quantity(static_cast<std::uint64_t>(request.format))}));
}

std::optional<StatsRequest> decode_stats_request(const Frame& frame) {
  if (frame.kind != FrameKind::StatsRequest) return std::nullopt;
  const auto item = rlp::decode(frame.body);
  if (!item || !item->is_list()) return std::nullopt;
  const auto& f = item->as_list();
  if (f.size() != 1) return std::nullopt;
  try {
    const auto format = as_u32(f[0]);
    if (!format ||
        *format > static_cast<std::uint32_t>(StatsRequest::Format::Json)) {
      return std::nullopt;
    }
    return StatsRequest{static_cast<StatsRequest::Format>(*format)};
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
}

Bytes encode_stats_response(std::string_view text, std::uint32_t seq) {
  return finish_frame(FrameKind::StatsResponse, seq,
                      rlp::Item::list({rlp::Item::string(text)}));
}

std::optional<std::string> decode_stats_response(const Frame& frame) {
  if (frame.kind != FrameKind::StatsResponse) return std::nullopt;
  const auto item = rlp::decode(frame.body);
  if (!item || !item->is_list()) return std::nullopt;
  const auto& f = item->as_list();
  if (f.size() != 1 || f[0].is_list()) return std::nullopt;
  const auto& b = f[0].as_bytes();
  return std::string{b.begin(), b.end()};
}

}  // namespace tinyevm::net
