// The networked hub front-end: a TCP server that speaks the src/net frame
// protocol and feeds decoded requests to a ChannelHub.
//
// Threading model — exactly two threads touch a serving HubServer:
//
//   * the I/O thread (whoever calls serve()) runs the EventLoop: it
//     accepts, reads, decodes frames, writes responses, and owns every
//     Connection outright;
//   * the dispatcher thread batches decoded requests and calls
//     ChannelHub::handle_batch on the existing worker pool, then hands the
//     encoded responses back to the I/O thread via EventLoop::defer.
//
// Backpressure is per connection and two-sided:
//
//   * inflight budget — a connection may have at most
//     Config::inflight_budget requests decoded-but-unanswered; requests
//     beyond that are answered `HubStatus::Busy` immediately by the I/O
//     thread (bounded queueing, the client backs off and retries);
//   * write-queue cap — a peer that stops reading accumulates bytes in its
//     write queue; past Config::max_write_queue_bytes the connection is
//     closed (a slow reader must not hold response memory hostage).
//
// Stream corruption (bad checksum/version/length, malformed RLP body, a
// response kind arriving from a client) closes the connection: framing is
// unrecoverable after the first bad frame.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "channel/hub.hpp"
#include "net/event_loop.hpp"
#include "net/frame.hpp"
#include "obs/metrics.hpp"

namespace tinyevm::net {

/// Listening socket: binds, listens, and accepts nonblocking connections.
class Acceptor {
 public:
  /// Binds `address:port` (port 0 picks an ephemeral port) and listens.
  /// Throws std::system_error on failure.
  void listen(const std::string& address, std::uint16_t port);
  /// The bound port (resolves an ephemeral request).
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] int fd() const { return fd_.get(); }
  /// One accepted nonblocking connection fd, or -1 when none is pending.
  [[nodiscard]] int accept_one();
  void close() { fd_.reset(); }

 private:
  Fd fd_;
  std::uint16_t port_ = 0;
};

/// One client connection, owned and touched only by the I/O thread.
struct Connection {
  std::uint64_t id = 0;
  Fd fd;
  FrameReader reader;
  Bytes write_buf;          ///< unsent response bytes
  std::size_t write_pos = 0;
  std::size_t inflight = 0;  ///< decoded requests not yet answered
  bool want_write = false;   ///< EPOLLOUT currently armed

  explicit Connection(std::size_t max_frame_bytes)
      : reader(max_frame_bytes) {}
  [[nodiscard]] std::size_t queued_bytes() const {
    return write_buf.size() - write_pos;
  }
};

class HubServer {
 public:
  struct Config {
    std::string name = "hubd";           ///< obs label
    std::string bind_address = "127.0.0.1";
    std::uint16_t port = 0;              ///< 0 = ephemeral
    std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
    std::size_t inflight_budget = 64;    ///< per-connection, then Busy
    std::size_t max_write_queue_bytes = 1u << 20;  ///< then close
    std::size_t batch_max = 256;         ///< requests per handle_batch call
    /// Graceful-drain bound: after request_stop(), serve() finishes
    /// in-flight batches and flushes write queues for at most this long.
    std::chrono::milliseconds drain_deadline{2000};
  };

  /// Counter/gauge snapshot (all monotonic except open_connections).
  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t open_connections = 0;
    std::uint64_t rx_bytes = 0;
    std::uint64_t tx_bytes = 0;
    std::uint64_t frames_in = 0;
    std::uint64_t frames_out = 0;
    std::uint64_t busy_rejections = 0;
    std::uint64_t protocol_errors = 0;
    std::uint64_t slow_reader_closed = 0;
    std::uint64_t batches = 0;
  };

  HubServer(channel::ChannelHub& hub, Config config);
  ~HubServer();
  HubServer(const HubServer&) = delete;
  HubServer& operator=(const HubServer&) = delete;

  /// Binds and listens; returns the actual port. Call before serve().
  std::uint16_t bind();
  [[nodiscard]] std::uint16_t port() const { return acceptor_.port(); }

  /// Serves on the calling thread until request_stop(), then performs the
  /// bounded graceful drain (finish batches, flush write queues) and
  /// returns. Starts and joins the dispatcher thread internally.
  void serve();

  /// Stops a serve() in progress. Async-signal-safe.
  void request_stop() { loop_.request_stop(); }

  /// Test hook: while paused, the dispatcher holds between batches so
  /// requests pile up against the inflight budget deterministically.
  void pause_dispatch(bool paused);

  [[nodiscard]] Stats stats() const;

 private:
  struct Pending {
    std::uint64_t conn_id = 0;
    std::uint32_t seq = 0;
    channel::HubRequest request;
  };

  void on_acceptable();
  void on_connection_event(std::uint64_t id, std::uint32_t events);
  void on_readable(Connection& conn);
  /// Decodes and routes every complete frame buffered on `conn`. Returns
  /// false when the connection was closed (protocol error).
  bool drain_frames(Connection& conn);
  void queue_write(Connection& conn, const Bytes& bytes);
  void flush_writes(Connection& conn);
  void update_interest(Connection& conn);
  void close_connection(std::uint64_t id);
  void run_dispatcher();
  void deliver(std::uint64_t conn_id, const Bytes& encoded);
  void graceful_drain();
  [[nodiscard]] bool dispatcher_idle() const;

  channel::ChannelHub& hub_;
  Config config_;
  EventLoop loop_;
  Acceptor acceptor_;
  std::uint64_t next_conn_id_ = 1;
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> conns_;
  bool draining_ = false;  ///< I/O thread only: reject new work, flush out

  // I/O thread -> dispatcher queue.
  mutable std::mutex pending_mu_;
  std::condition_variable pending_cv_;
  std::deque<Pending> pending_;
  bool dispatch_stop_ = false;   ///< exit once pending_ is empty
  bool dispatch_paused_ = false;
  bool in_batch_ = false;
  std::thread dispatcher_;

  // Telemetry (written by both threads; plain counters).
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> open_connections_{0};
  std::atomic<std::uint64_t> rx_bytes_{0};
  std::atomic<std::uint64_t> tx_bytes_{0};
  std::atomic<std::uint64_t> frames_in_{0};
  std::atomic<std::uint64_t> frames_out_{0};
  std::atomic<std::uint64_t> busy_rejections_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> slow_reader_closed_{0};
  std::atomic<std::uint64_t> batches_{0};
  obs::CollectorHandle obs_collector_;
};

}  // namespace tinyevm::net
