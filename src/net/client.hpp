// Client side of the networked hub: a small blocking client for tests and
// tooling, and a multiplexed load generator that drives thousands of
// concurrent payment-channel sessions over real sockets.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "channel/hub.hpp"
#include "channel/manager.hpp"
#include "net/event_loop.hpp"
#include "net/frame.hpp"

namespace tinyevm::net {

/// Blocking frame client: one socket, sequential or pipelined calls.
/// Intended for tests and CLI tooling, not high connection counts.
class HubClient {
 public:
  /// Connects to host:port; false on failure (errno describes why).
  bool connect(const std::string& host, std::uint16_t port);
  void close() { fd_.reset(); }
  [[nodiscard]] bool connected() const { return static_cast<bool>(fd_); }
  [[nodiscard]] int fd() const { return fd_.get(); }

  /// Sends one request frame; returns its correlation seq.
  std::uint32_t send(const channel::HubRequest& request);
  /// Sends raw bytes verbatim (malformed-frame tests).
  bool send_raw(std::span<const std::uint8_t> bytes);

  /// Blocks for the next response frame (any kind the hub sends). nullopt
  /// on EOF, read error, or a frame that fails to decode.
  std::optional<std::pair<std::uint32_t, channel::HubResponse>> recv();

  /// send() + recv() until the matching seq arrives.
  std::optional<channel::HubResponse> call(
      const channel::HubRequest& request);

  /// Remote metrics scrape over the same port.
  std::optional<std::string> scrape(
      StatsRequest::Format format = StatsRequest::Format::Prometheus);

 private:
  /// Blocks until a complete frame is buffered; nullopt on EOF/error.
  std::optional<Frame> recv_frame();

  Fd fd_;
  FrameReader reader_;
  std::uint32_t next_seq_ = 1;
};

/// Drives N concurrent sessions against a hub server, each running the
/// deterministic open → R payments → close script (identical to the
/// in-process exchange the differential test replays), with one request in
/// flight per connection so per-channel ordering matches handle_batch.
class LoadGenerator {
 public:
  struct Config {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    std::size_t connections = 8;
    std::size_t rounds = 16;      ///< payment rounds per connection
    std::size_t threads = 1;      ///< client I/O threads
    std::size_t connect_burst = 256;  ///< nonblocking connects in flight
    bool close_channels = true;
    /// Endpoint i uses PrivateKey::from_seed(key_seed + i), channel id
    /// channel_id_base + i, and payment units (r + i) % 4 + 1 — the same
    /// script as the in-process reference exchange.
    std::string key_seed = "car-key-";
    std::size_t channel_id_base = 1;
    U256 rate{10};
    std::uint32_t sensor_device = 7;
    U256 sensor_reading{22};
    Hash256 onchain_root{};
    std::string engine;  ///< endpoint Vm engine; empty = profile default
  };

  struct Report {
    std::size_t connections_done = 0;
    std::size_t rounds_done = 0;   ///< successful payment rounds
    std::size_t busy_retries = 0;  ///< Busy responses (request re-sent)
    std::size_t failures = 0;      ///< rejected requests / apply failures
    std::size_t connect_failures = 0;
    double elapsed_s = 0;
    /// Per payment round, microseconds: end-to-end (send → response) and
    /// the hub-reported split of that round.
    std::vector<std::uint32_t> e2e_us;
    std::vector<std::uint32_t> service_us;
    std::vector<std::uint32_t> queue_us;
  };

  explicit LoadGenerator(Config config) : config_(std::move(config)) {}

  /// Runs the whole load to completion and returns the merged report.
  Report run();

 private:
  Config config_;
};

}  // namespace tinyevm::net
