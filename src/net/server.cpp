#include "net/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <span>
#include <system_error>
#include <utility>
#include <variant>

#include "obs/export.hpp"

namespace tinyevm::net {

namespace {

const U256& channel_of(const channel::HubRequest& request) {
  return std::visit(
      [](const auto& r) -> const U256& { return r.channel_id; },
      request);
}

channel::HubResponseKind kind_of(const channel::HubRequest& request) {
  return static_cast<channel::HubResponseKind>(request.index());
}

/// The I/O thread's immediate overload answer: no hub involvement, zero
/// queue/service time (the request never entered the queue).
Bytes busy_frame(const channel::HubRequest& request, std::uint32_t seq) {
  channel::HubResponse response;
  response.status = channel::HubStatus::Busy;
  response.kind = kind_of(request);
  response.channel_id = channel_of(request);
  return encode_response(response, seq);
}

}  // namespace

// ---- Acceptor ----

void Acceptor::listen(const std::string& address, std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!fd) {
    throw std::system_error(errno, std::generic_category(), "socket");
  }
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    throw std::system_error(EINVAL, std::generic_category(),
                            "inet_pton " + address);
  }
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw std::system_error(errno, std::generic_category(), "bind");
  }
  if (::listen(fd.get(), 1024) != 0) {
    throw std::system_error(errno, std::generic_category(), "listen");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    throw std::system_error(errno, std::generic_category(), "getsockname");
  }
  port_ = ntohs(bound.sin_port);
  fd_ = std::move(fd);
}

int Acceptor::accept_one() {
  const int fd =
      ::accept4(fd_.get(), nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
  if (fd >= 0) {
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return fd;
}

// ---- HubServer ----

HubServer::HubServer(channel::ChannelHub& hub, Config config)
    : hub_(hub), config_(std::move(config)) {
  obs_collector_ = obs::Registry::instance().add_collector(
      [this](obs::Collection& out) {
        const Stats s = stats();
        const obs::LabelSet server{{"server", config_.name}};
        out.gauge("tinyevm_net_connections", "Connections currently open",
                  server, static_cast<double>(s.open_connections));
        out.counter("tinyevm_net_accepted_total", "Connections accepted",
                    server, static_cast<double>(s.accepted));
        out.counter("tinyevm_net_rx_bytes_total", "Bytes received", server,
                    static_cast<double>(s.rx_bytes));
        out.counter("tinyevm_net_tx_bytes_total", "Bytes sent", server,
                    static_cast<double>(s.tx_bytes));
        out.counter("tinyevm_net_frames_in_total", "Frames decoded", server,
                    static_cast<double>(s.frames_in));
        out.counter("tinyevm_net_frames_out_total", "Frames written", server,
                    static_cast<double>(s.frames_out));
        out.counter("tinyevm_net_busy_total",
                    "Requests shed with Busy (backpressure)", server,
                    static_cast<double>(s.busy_rejections));
        out.counter("tinyevm_net_protocol_errors_total",
                    "Connections closed on a malformed frame", server,
                    static_cast<double>(s.protocol_errors));
        out.counter("tinyevm_net_slow_reader_closed_total",
                    "Connections closed over the write-queue cap", server,
                    static_cast<double>(s.slow_reader_closed));
        out.counter("tinyevm_net_batches_total",
                    "handle_batch calls dispatched", server,
                    static_cast<double>(s.batches));
      });
}

HubServer::~HubServer() {
  if (dispatcher_.joinable()) {
    {
      std::lock_guard lock(pending_mu_);
      dispatch_stop_ = true;
      dispatch_paused_ = false;
    }
    pending_cv_.notify_all();
    dispatcher_.join();
  }
}

std::uint16_t HubServer::bind() {
  acceptor_.listen(config_.bind_address, config_.port);
  return acceptor_.port();
}

void HubServer::serve() {
  if (acceptor_.fd() < 0) bind();
  loop_.add(acceptor_.fd(), EPOLLIN, [this](std::uint32_t) {
    on_acceptable();
  });
  {
    std::lock_guard lock(pending_mu_);
    dispatch_stop_ = false;
  }
  dispatcher_ = std::thread([this] { run_dispatcher(); });
  loop_.run();
  graceful_drain();
}

void HubServer::pause_dispatch(bool paused) {
  {
    std::lock_guard lock(pending_mu_);
    dispatch_paused_ = paused;
  }
  pending_cv_.notify_all();
}

HubServer::Stats HubServer::stats() const {
  Stats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.open_connections = open_connections_.load(std::memory_order_relaxed);
  s.rx_bytes = rx_bytes_.load(std::memory_order_relaxed);
  s.tx_bytes = tx_bytes_.load(std::memory_order_relaxed);
  s.frames_in = frames_in_.load(std::memory_order_relaxed);
  s.frames_out = frames_out_.load(std::memory_order_relaxed);
  s.busy_rejections = busy_rejections_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.slow_reader_closed = slow_reader_closed_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  return s;
}

void HubServer::on_acceptable() {
  for (;;) {
    const int fd = acceptor_.accept_one();
    if (fd < 0) return;  // EAGAIN or transient accept failure
    const std::uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Connection>(config_.max_frame_bytes);
    conn->id = id;
    conn->fd.reset(fd);
    loop_.add(fd, EPOLLIN, [this, id](std::uint32_t events) {
      on_connection_event(id, events);
    });
    conns_.emplace(id, std::move(conn));
    accepted_.fetch_add(1, std::memory_order_relaxed);
    open_connections_.fetch_add(1, std::memory_order_relaxed);
  }
}

void HubServer::on_connection_event(std::uint64_t id, std::uint32_t events) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Connection& conn = *it->second;
  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    close_connection(id);
    return;
  }
  if ((events & EPOLLOUT) != 0) {
    flush_writes(conn);
    if (conns_.find(id) == conns_.end()) return;  // closed as slow reader
  }
  if ((events & EPOLLIN) != 0) on_readable(conn);
}

void HubServer::on_readable(Connection& conn) {
  const std::uint64_t id = conn.id;
  std::array<std::uint8_t, 64 * 1024> chunk{};
  for (;;) {
    const ssize_t n = ::read(conn.fd.get(), chunk.data(), chunk.size());
    if (n > 0) {
      rx_bytes_.fetch_add(static_cast<std::uint64_t>(n),
                          std::memory_order_relaxed);
      conn.reader.feed({chunk.data(), static_cast<std::size_t>(n)});
      if (!drain_frames(conn)) return;  // closed on protocol error
      continue;
    }
    if (n == 0) {  // peer closed
      close_connection(id);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    close_connection(id);
    return;
  }
}

bool HubServer::drain_frames(Connection& conn) {
  const std::uint64_t id = conn.id;
  while (auto frame = conn.reader.next()) {
    frames_in_.fetch_add(1, std::memory_order_relaxed);
    if (frame->kind == FrameKind::StatsRequest) {
      const auto req = decode_stats_request(*frame);
      if (!req) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        close_connection(id);
        return false;
      }
      const std::string text = req->format == StatsRequest::Format::Json
                                   ? obs::json_scrape()
                                   : obs::prometheus_scrape();
      queue_write(conn, encode_stats_response(text, frame->seq));
      if (conns_.find(id) == conns_.end()) return false;
      continue;
    }
    if (!is_request_kind(frame->kind)) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      close_connection(id);
      return false;
    }
    auto request = decode_request(*frame);
    if (!request) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      close_connection(id);
      return false;
    }
    if (draining_ || conn.inflight >= config_.inflight_budget) {
      busy_rejections_.fetch_add(1, std::memory_order_relaxed);
      queue_write(conn, busy_frame(*request, frame->seq));
      if (conns_.find(id) == conns_.end()) return false;
      continue;
    }
    ++conn.inflight;
    {
      std::lock_guard lock(pending_mu_);
      pending_.push_back(Pending{id, frame->seq, std::move(*request)});
    }
    pending_cv_.notify_one();
  }
  if (conn.reader.error() != FrameError::None) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    close_connection(id);
    return false;
  }
  return true;
}

void HubServer::queue_write(Connection& conn, const Bytes& bytes) {
  frames_out_.fetch_add(1, std::memory_order_relaxed);
  conn.write_buf.insert(conn.write_buf.end(), bytes.begin(), bytes.end());
  flush_writes(conn);
}

void HubServer::flush_writes(Connection& conn) {
  while (conn.write_pos < conn.write_buf.size()) {
    // MSG_NOSIGNAL: a client may hang up with responses still queued;
    // that must surface as EPIPE here, not kill the server with SIGPIPE.
    const ssize_t n =
        ::send(conn.fd.get(), conn.write_buf.data() + conn.write_pos,
               conn.write_buf.size() - conn.write_pos, MSG_NOSIGNAL);
    if (n > 0) {
      tx_bytes_.fetch_add(static_cast<std::uint64_t>(n),
                          std::memory_order_relaxed);
      conn.write_pos += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    close_connection(conn.id);
    return;
  }
  if (conn.write_pos == conn.write_buf.size()) {
    conn.write_buf.clear();
    conn.write_pos = 0;
  } else if (conn.write_pos > (64u << 10)) {
    // Compact the consumed prefix so a long-lived slow peer doesn't grow
    // the buffer without bound below the cap.
    conn.write_buf.erase(conn.write_buf.begin(),
                         conn.write_buf.begin() +
                             static_cast<std::ptrdiff_t>(conn.write_pos));
    conn.write_pos = 0;
  }
  if (conn.queued_bytes() > config_.max_write_queue_bytes) {
    slow_reader_closed_.fetch_add(1, std::memory_order_relaxed);
    close_connection(conn.id);
    return;
  }
  update_interest(conn);
}

void HubServer::update_interest(Connection& conn) {
  const bool want = conn.queued_bytes() > 0;
  if (want == conn.want_write) return;
  conn.want_write = want;
  loop_.modify(conn.fd.get(),
               want ? (EPOLLIN | EPOLLOUT) : static_cast<std::uint32_t>(
                                                 EPOLLIN));
}

void HubServer::close_connection(std::uint64_t id) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  loop_.remove(it->second->fd.get());
  conns_.erase(it);
  open_connections_.fetch_sub(1, std::memory_order_relaxed);
}

void HubServer::deliver(std::uint64_t conn_id, const Bytes& encoded) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;  // connection died while in the batch
  Connection& conn = *it->second;
  if (conn.inflight > 0) --conn.inflight;
  queue_write(conn, encoded);
}

void HubServer::run_dispatcher() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock lock(pending_mu_);
      pending_cv_.wait(lock, [this] {
        return dispatch_stop_ || (!dispatch_paused_ && !pending_.empty());
      });
      if (pending_.empty()) {
        if (dispatch_stop_) return;
        continue;
      }
      if (dispatch_paused_ && !dispatch_stop_) continue;
      const std::size_t take = std::min(config_.batch_max, pending_.size());
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(pending_.front()));
        pending_.pop_front();
      }
      in_batch_ = true;
    }
    std::vector<channel::HubRequest> requests;
    requests.reserve(batch.size());
    for (const auto& p : batch) requests.push_back(p.request);
    const std::vector<channel::HubResponse> responses =
        hub_.handle_batch(requests);
    batches_.fetch_add(1, std::memory_order_relaxed);
    auto deliveries =
        std::make_shared<std::vector<std::pair<std::uint64_t, Bytes>>>();
    deliveries->reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      deliveries->emplace_back(batch[i].conn_id,
                               encode_response(responses[i], batch[i].seq));
    }
    loop_.defer([this, deliveries] {
      for (const auto& [conn_id, encoded] : *deliveries) {
        deliver(conn_id, encoded);
      }
    });
    {
      std::lock_guard lock(pending_mu_);
      in_batch_ = false;
    }
    pending_cv_.notify_all();
  }
}

bool HubServer::dispatcher_idle() const {
  std::lock_guard lock(pending_mu_);
  return pending_.empty() && !in_batch_;
}

void HubServer::graceful_drain() {
  const auto deadline =
      std::chrono::steady_clock::now() + config_.drain_deadline;
  // Stop accepting; mark draining so requests decoded from residual bytes
  // are shed with Busy instead of entering the queue.
  loop_.remove(acceptor_.fd());
  acceptor_.close();
  draining_ = true;
  // Phase 1: let the dispatcher finish everything already queued. It keeps
  // defer()ing response deliveries, so the loop must keep polling.
  {
    std::lock_guard lock(pending_mu_);
    dispatch_stop_ = true;
    dispatch_paused_ = false;  // a paused dispatcher must still drain
  }
  pending_cv_.notify_all();
  while (!dispatcher_idle() && std::chrono::steady_clock::now() < deadline) {
    loop_.poll(10);
  }
  if (dispatcher_.joinable()) dispatcher_.join();
  // Phase 2: deliver the batched responses still deferred and flush every
  // write queue until empty or the deadline passes.
  const auto flushed = [this] {
    if (!loop_.deferred_empty()) return false;
    for (const auto& [id, conn] : conns_) {
      if (conn->queued_bytes() > 0) return false;
    }
    return true;
  };
  while (!flushed() && std::chrono::steady_clock::now() < deadline) {
    loop_.poll(10);
  }
  // Teardown: close every connection.
  while (!conns_.empty()) close_connection(conns_.begin()->first);
  loop_.clear_stop();
}

}  // namespace tinyevm::net
