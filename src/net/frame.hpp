// Wire framing for the networked channel hub (ROADMAP "Networked hub
// front-end").
//
// The hub's wire surface (OpenRequest / PaymentUpdate / CloseRequest →
// HubResponse, hub.hpp) gains a byte encoding here so it can cross a TCP
// connection instead of a function call. Each message travels in one
// length-prefixed frame:
//
//   ┌────────────┬─────────┬──────┬─────────┬──────────────┬───────────┐
//   │ length u32 │ version │ kind │ seq u32 │ RLP body     │ crc32 u32 │
//   │ big-endian │ 1 byte  │ 1 B  │ BE      │ length-10 B  │ BE        │
//   └────────────┴─────────┴──────┴─────────┴──────────────┴───────────┘
//
// `length` counts everything after itself (version through crc32, so the
// minimum is 10); `seq` is a caller-chosen correlation id the hub echoes
// in the matching response, so clients may pipeline; `crc32` (IEEE
// 802.3, reflected) covers version..body and catches corruption that TCP
// checksums let through on middleboxes. Message bodies reuse `src/rlp` —
// the same canonical encoding the channel states are hashed and signed
// under — so a PaymentUpdate's signed state crosses the wire in exactly
// the bytes its digest commits to.
//
// `FrameReader` is the receive side: an accumulation buffer fed from
// nonblocking reads that yields complete frames and flags stream
// corruption (bad version, checksum mismatch, oversized or short
// declared length). After an error the stream is unrecoverable — framing
// is lost — so connections drop on the first bad frame.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "channel/hub.hpp"
#include "rlp/rlp.hpp"

namespace tinyevm::net {

using Bytes = rlp::Bytes;

/// Protocol version carried in every frame; receivers reject mismatches
/// instead of guessing at future layouts.
inline constexpr std::uint8_t kProtocolVersion = 0x01;

/// Frame kinds. Requests flow client→hub, Response/StatsResponse hub→
/// client; a hub closes any connection that sends it a response kind.
enum class FrameKind : std::uint8_t {
  Open = 0x01,
  Payment = 0x02,
  Close = 0x03,
  Response = 0x10,
  StatsRequest = 0x20,   ///< remote metrics scrape, same port as payments
  StatsResponse = 0x21,
};

[[nodiscard]] constexpr bool is_request_kind(FrameKind k) {
  return k == FrameKind::Open || k == FrameKind::Payment ||
         k == FrameKind::Close || k == FrameKind::StatsRequest;
}

/// Bytes of frame overhead around the RLP body: the u32 length prefix plus
/// version, kind, seq, and the trailing crc32.
inline constexpr std::size_t kFrameOverhead = 4 + 1 + 1 + 4 + 4;

/// Default cap on one frame's declared length (version..crc). Channel
/// messages are a few hundred bytes; the stats scrape can reach a few
/// hundred KiB on a long-lived hub. Anything larger is a hostile or
/// corrupt peer.
inline constexpr std::size_t kDefaultMaxFrameBytes = 4u << 20;

/// One decoded frame: kind, correlation id, and the raw RLP body.
struct Frame {
  FrameKind kind = FrameKind::Open;
  std::uint32_t seq = 0;
  Bytes body;

  friend bool operator==(const Frame& a, const Frame& b) = default;
};

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `data`.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Serializes one frame (length prefix, header, body, checksum).
[[nodiscard]] Bytes encode_frame(const Frame& frame);

/// Why a FrameReader refused its stream. `None` means healthy.
enum class FrameError : std::uint8_t {
  None,
  BadVersion,    ///< version byte != kProtocolVersion
  BadChecksum,   ///< crc32 mismatch — corruption in flight
  BadLength,     ///< declared length shorter than the fixed header
  Oversized,     ///< declared length beyond the configured cap
};

[[nodiscard]] std::string_view to_string(FrameError e);

/// Incremental frame decoder over a byte stream delivered in arbitrary
/// chunks (nonblocking reads). Feed bytes, then drain complete frames
/// with next(); once error() != None the stream is dead and next() stays
/// empty.
class FrameReader {
 public:
  explicit FrameReader(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void feed(std::span<const std::uint8_t> data);

  /// The next complete, checksum-valid frame, or nullopt when more bytes
  /// are needed (or the stream already failed).
  std::optional<Frame> next();

  [[nodiscard]] FrameError error() const { return error_; }
  [[nodiscard]] std::size_t buffered() const { return buffer_.size() - pos_; }

 private:
  std::size_t max_frame_bytes_;
  Bytes buffer_;
  std::size_t pos_ = 0;  ///< consumed prefix, compacted lazily
  FrameError error_ = FrameError::None;
};

// ---------------------------------------------------------------------------
// Message codecs: hub wire structs <-> frames
// ---------------------------------------------------------------------------

/// Encodes one hub request as a complete frame (kind derived from the
/// variant alternative).
[[nodiscard]] Bytes encode_request(const channel::HubRequest& request,
                                   std::uint32_t seq);

/// Decodes an Open/Payment/Close frame body. nullopt on shape mismatch
/// (wrong field count, non-canonical quantities, bad signature length).
[[nodiscard]] std::optional<channel::HubRequest> decode_request(
    const Frame& frame);

[[nodiscard]] Bytes encode_response(const channel::HubResponse& response,
                                    std::uint32_t seq);
[[nodiscard]] std::optional<channel::HubResponse> decode_response(
    const Frame& frame);

/// Remote metrics scrape request: which exposition format to return.
struct StatsRequest {
  enum class Format : std::uint8_t { Prometheus = 0, Json = 1 };
  Format format = Format::Prometheus;

  friend bool operator==(const StatsRequest& a, const StatsRequest& b) =
      default;
};

[[nodiscard]] Bytes encode_stats_request(const StatsRequest& request,
                                         std::uint32_t seq);
[[nodiscard]] std::optional<StatsRequest> decode_stats_request(
    const Frame& frame);

[[nodiscard]] Bytes encode_stats_response(std::string_view text,
                                          std::uint32_t seq);
[[nodiscard]] std::optional<std::string> decode_stats_response(
    const Frame& frame);

}  // namespace tinyevm::net
