#include "net/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <system_error>
#include <utility>

namespace tinyevm::net {

void Fd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

EventLoop::EventLoop() {
  epoll_.reset(::epoll_create1(EPOLL_CLOEXEC));
  if (!epoll_) {
    throw std::system_error(errno, std::generic_category(), "epoll_create1");
  }
  wake_.reset(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
  if (!wake_) {
    throw std::system_error(errno, std::generic_category(), "eventfd");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_.get();
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, wake_.get(), &ev) != 0) {
    throw std::system_error(errno, std::generic_category(), "epoll_ctl wake");
  }
}

EventLoop::~EventLoop() = default;

void EventLoop::add(int fd, std::uint32_t events, Callback callback) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, fd, &ev) != 0) {
    throw std::system_error(errno, std::generic_category(), "epoll_ctl add");
  }
  callbacks_[fd] = std::make_shared<Callback>(std::move(callback));
}

void EventLoop::modify(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, fd, &ev) != 0) {
    throw std::system_error(errno, std::generic_category(), "epoll_ctl mod");
  }
}

void EventLoop::remove(int fd) {
  // The fd may already be closed by the caller; EPOLL_CTL_DEL failing with
  // EBADF/ENOENT is then expected, so errors are ignored.
  ::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, fd, nullptr);
  callbacks_.erase(fd);
}

void EventLoop::drain_wake() {
  std::uint64_t counter = 0;
  while (::read(wake_.get(), &counter, sizeof(counter)) > 0) {
  }
}

std::size_t EventLoop::poll(int timeout_ms) {
  std::array<epoll_event, 128> events{};
  int n = ::epoll_wait(epoll_.get(), events.data(),
                       static_cast<int>(events.size()), timeout_ms);
  if (n < 0) {
    if (errno == EINTR) n = 0;
    else
      throw std::system_error(errno, std::generic_category(), "epoll_wait");
  }
  std::size_t dispatched = 0;
  for (int i = 0; i < n; ++i) {
    const int fd = events[static_cast<std::size_t>(i)].data.fd;
    if (fd == wake_.get()) {
      drain_wake();
      continue;
    }
    // Look the callback up per event: an earlier callback in this batch
    // may have removed this fd (e.g. closed a sibling connection).
    const auto it = callbacks_.find(fd);
    if (it == callbacks_.end()) continue;
    const std::shared_ptr<Callback> cb = it->second;
    (*cb)(events[static_cast<std::size_t>(i)].events);
    ++dispatched;
  }
  std::vector<std::function<void()>> deferred;
  {
    std::lock_guard lock(deferred_mu_);
    deferred.swap(deferred_);
  }
  for (auto& fn : deferred) fn();
  return dispatched;
}

void EventLoop::run() {
  while (!stop_requested()) poll(-1);
}

void EventLoop::request_stop() {
  stop_.store(true, std::memory_order_release);
  const std::uint64_t one = 1;
  // write(2) is async-signal-safe; short writes cannot happen for 8 bytes
  // on an eventfd. The result only matters insofar as the loop wakes, and
  // a full eventfd counter (EAGAIN) means a wake is already pending.
  [[maybe_unused]] const ssize_t rc =
      ::write(wake_.get(), &one, sizeof(one));
}

void EventLoop::defer(std::function<void()> fn) {
  {
    std::lock_guard lock(deferred_mu_);
    deferred_.push_back(std::move(fn));
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t rc =
      ::write(wake_.get(), &one, sizeof(one));
}

bool EventLoop::deferred_empty() const {
  std::lock_guard lock(deferred_mu_);
  return deferred_.empty();
}

}  // namespace tinyevm::net
