// A minimal epoll event loop for the networked hub front-end.
//
// One loop == one thread: every fd registered with add() has its callback
// invoked on the thread running run()/poll(), so connection state needs no
// locking as long as it is only touched from callbacks (or from closures
// handed to defer(), which are executed on the loop thread too). The only
// cross-thread entry points are defer() and request_stop(); the latter is
// async-signal-safe so a SIGINT handler can stop a serving loop directly.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace tinyevm::net {

/// Owning file-descriptor handle: closes on destruction, move-only.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset(other.fd_);
      other.fd_ = -1;
    }
    return *this;
  }

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] explicit operator bool() const { return fd_ >= 0; }
  /// Closes the current fd (if any) and takes ownership of `fd`.
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

class EventLoop {
 public:
  /// Invoked with the ready epoll event mask (EPOLLIN/EPOLLOUT/...).
  using Callback = std::function<void(std::uint32_t events)>;

  /// Throws std::system_error when epoll/eventfd creation fails.
  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` for `events`; `callback` runs on the loop thread.
  void add(int fd, std::uint32_t events, Callback callback);
  /// Changes the interest mask of a registered fd.
  void modify(int fd, std::uint32_t events);
  /// Deregisters; safe to call from inside the fd's own callback (any
  /// events already harvested for it this poll round are dropped).
  void remove(int fd);

  /// One epoll pass: waits up to `timeout_ms` (-1 = indefinitely), then
  /// runs ready callbacks and any deferred closures. Returns the number of
  /// fd events dispatched.
  std::size_t poll(int timeout_ms);

  /// poll(-1) until request_stop(). Deferred closures still run between
  /// passes, so a stopping loop never strands queued work submitted before
  /// the stop.
  void run();

  /// Wakes the loop and makes run() return after the current pass.
  /// Async-signal-safe (an atomic store plus an eventfd write).
  void request_stop();
  [[nodiscard]] bool stop_requested() const {
    return stop_.load(std::memory_order_acquire);
  }
  /// Re-arms a loop whose run() returned so it can be run again (drain
  /// phases call poll() after the main run).
  void clear_stop() { stop_.store(false, std::memory_order_release); }

  /// Queues `fn` to run on the loop thread at the end of the next poll
  /// pass and wakes the loop. Callable from any thread.
  void defer(std::function<void()> fn);

  /// True when no deferred closures are queued (drain-phase predicate).
  [[nodiscard]] bool deferred_empty() const;

 private:
  void drain_wake();

  Fd epoll_;
  Fd wake_;  ///< eventfd: defer()/request_stop() wakeups
  std::atomic<bool> stop_{false};
  // shared_ptr so a callback that remove()s its own fd (or a sibling's)
  // mid-dispatch cannot free the std::function currently executing.
  std::unordered_map<int, std::shared_ptr<Callback>> callbacks_;
  mutable std::mutex deferred_mu_;
  std::vector<std::function<void()>> deferred_;
};

}  // namespace tinyevm::net
