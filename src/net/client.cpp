#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <variant>

namespace tinyevm::net {

namespace {

int open_tcp_socket(const std::string& host, std::uint16_t port,
                    bool nonblocking, sockaddr_in* out_addr) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    errno = EINVAL;
    return -1;
  }
  int flags = SOCK_STREAM | SOCK_CLOEXEC;
  if (nonblocking) flags |= SOCK_NONBLOCK;
  const int fd = ::socket(AF_INET, flags, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (out_addr != nullptr) *out_addr = addr;
  return fd;
}

bool write_all(int fd, std::span<const std::uint8_t> bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    // MSG_NOSIGNAL: a hung-up peer must surface as EPIPE, not kill
    // the process with SIGPIPE.
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace

// ---- HubClient ----

bool HubClient::connect(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  const int fd = open_tcp_socket(host, port, /*nonblocking=*/false, &addr);
  if (fd < 0) return false;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  fd_.reset(fd);
  reader_ = FrameReader();
  return true;
}

std::uint32_t HubClient::send(const channel::HubRequest& request) {
  const std::uint32_t seq = next_seq_++;
  if (!write_all(fd_.get(), encode_request(request, seq))) close();
  return seq;
}

bool HubClient::send_raw(std::span<const std::uint8_t> bytes) {
  if (!connected()) return false;
  if (!write_all(fd_.get(), bytes)) {
    close();
    return false;
  }
  return true;
}

std::optional<Frame> HubClient::recv_frame() {
  if (!connected()) return std::nullopt;
  std::array<std::uint8_t, 64 * 1024> chunk{};
  for (;;) {
    if (auto frame = reader_.next()) return frame;
    if (reader_.error() != FrameError::None) return std::nullopt;
    const ssize_t n = ::read(fd_.get(), chunk.data(), chunk.size());
    if (n > 0) {
      reader_.feed({chunk.data(), static_cast<std::size_t>(n)});
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return std::nullopt;  // EOF or read error
  }
}

std::optional<std::pair<std::uint32_t, channel::HubResponse>>
HubClient::recv() {
  const auto frame = recv_frame();
  if (!frame || frame->kind != FrameKind::Response) return std::nullopt;
  auto response = decode_response(*frame);
  if (!response) return std::nullopt;
  return std::make_pair(frame->seq, std::move(*response));
}

std::optional<channel::HubResponse> HubClient::call(
    const channel::HubRequest& request) {
  const std::uint32_t seq = send(request);
  for (;;) {
    auto next = recv();
    if (!next) return std::nullopt;
    if (next->first == seq) return std::move(next->second);
  }
}

std::optional<std::string> HubClient::scrape(StatsRequest::Format format) {
  if (!connected()) return std::nullopt;
  const std::uint32_t seq = next_seq_++;
  if (!write_all(fd_.get(),
                 encode_stats_request(StatsRequest{format}, seq))) {
    close();
    return std::nullopt;
  }
  for (;;) {
    const auto frame = recv_frame();
    if (!frame) return std::nullopt;
    if (frame->kind != FrameKind::StatsResponse) continue;
    return decode_stats_response(*frame);
  }
}

// ---- LoadGenerator ----

namespace {

using channel::ChannelEndpoint;
using channel::HubResponse;
using channel::HubStatus;
using secp256k1::PrivateKey;

/// One scripted session: open → rounds payments → close, lockstep (a
/// single request in flight), driven by nonblocking socket events.
struct Session {
  enum class Phase : std::uint8_t {
    Unstarted,
    Connecting,
    AwaitOpen,
    AwaitPay,
    AwaitClose,
    Done,
    Failed,
  };

  std::size_t index = 0;  ///< global connection index (keys, channel id)
  Phase phase = Phase::Unstarted;
  Fd fd;
  FrameReader reader;
  Bytes out;
  std::size_t out_pos = 0;
  bool want_write = false;
  std::unique_ptr<ChannelEndpoint> endpoint;
  Bytes last_frame;  ///< encoded request, re-sent verbatim on Busy
  std::size_t round = 0;
  std::chrono::steady_clock::time_point sent_at;
};

/// Per-thread shard runner; sessions [begin, end) of the global range.
class ShardRunner {
 public:
  ShardRunner(const LoadGenerator::Config& config, std::size_t begin,
              std::size_t end)
      : config_(config), begin_(begin) {
    epoll_.reset(::epoll_create1(EPOLL_CLOEXEC));
    sessions_.resize(end - begin);
    for (std::size_t i = 0; i < sessions_.size(); ++i) {
      sessions_[i].index = begin + i;
    }
  }

  LoadGenerator::Report run() {
    start_more();
    std::array<epoll_event, 128> events{};
    while (finished_ < sessions_.size()) {
      const int n = ::epoll_wait(epoll_.get(), events.data(),
                                 static_cast<int>(events.size()), 1000);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      for (int i = 0; i < n; ++i) {
        const auto& ev = events[static_cast<std::size_t>(i)];
        handle_event(ev.data.u64, ev.events);
      }
      start_more();
    }
    return std::move(report_);
  }

 private:
  [[nodiscard]] U256 units_for(std::size_t round, std::size_t index) const {
    return U256{(round + index) % 4 + 1};
  }

  void start_more() {
    while (connecting_ < config_.connect_burst &&
           next_unstarted_ < sessions_.size()) {
      start_session(sessions_[next_unstarted_++]);
    }
  }

  void start_session(Session& s) {
    sockaddr_in addr{};
    const int fd = open_tcp_socket(config_.host, config_.port,
                                   /*nonblocking=*/true, &addr);
    if (fd < 0) {
      fail_connect(s);
      return;
    }
    s.fd.reset(fd);
    const int rc = ::connect(
        fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
    if (rc != 0 && errno != EINPROGRESS) {
      fail_connect(s);
      return;
    }
    s.phase = Session::Phase::Connecting;
    ++connecting_;
    epoll_event ev{};
    ev.events = EPOLLOUT;
    ev.data.u64 = s.index - begin_;
    ::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, fd, &ev);
  }

  void fail_connect(Session& s) {
    ++report_.connect_failures;
    finish(s, /*success=*/false);
  }

  void finish(Session& s, bool success) {
    if (s.phase == Session::Phase::Connecting) --connecting_;
    if (s.fd) {
      ::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, s.fd.get(), nullptr);
      s.fd.reset();
    }
    s.phase = success ? Session::Phase::Done : Session::Phase::Failed;
    if (success) ++report_.connections_done;
    ++finished_;
  }

  void set_interest(Session& s) {
    const bool want = s.out_pos < s.out.size();
    if (want == s.want_write) return;
    s.want_write = want;
    epoll_event ev{};
    ev.events = want ? (EPOLLIN | EPOLLOUT)
                     : static_cast<std::uint32_t>(EPOLLIN);
    ev.data.u64 = s.index - begin_;
    ::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, s.fd.get(), &ev);
  }

  void send_frame(Session& s, Bytes frame) {
    s.last_frame = std::move(frame);
    s.out.insert(s.out.end(), s.last_frame.begin(), s.last_frame.end());
    s.sent_at = std::chrono::steady_clock::now();
    flush(s);
  }

  void resend_last(Session& s) {
    ++report_.busy_retries;
    s.out.insert(s.out.end(), s.last_frame.begin(), s.last_frame.end());
    s.sent_at = std::chrono::steady_clock::now();
    flush(s);
  }

  void flush(Session& s) {
    while (s.out_pos < s.out.size()) {
      const ssize_t n = ::send(s.fd.get(), s.out.data() + s.out_pos,
                               s.out.size() - s.out_pos, MSG_NOSIGNAL);
      if (n > 0) {
        s.out_pos += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      ++report_.failures;
      finish(s, /*success=*/false);
      return;
    }
    if (s.out_pos == s.out.size()) {
      s.out.clear();
      s.out_pos = 0;
    }
    set_interest(s);
  }

  void on_connected(Session& s) {
    --connecting_;
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(s.fd.get(), SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      s.phase = Session::Phase::AwaitOpen;  // leave Connecting for finish()
      ++report_.connect_failures;
      finish(s, /*success=*/false);
      return;
    }
    // Re-arm from the connect-only EPOLLOUT mask to the steady-state
    // read interest (flush() adds EPOLLOUT back while bytes are queued).
    s.want_write = false;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = s.index - begin_;
    ::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, s.fd.get(), &ev);
    // The endpoint mirrors the in-process reference exchange exactly:
    // seeded key, seeded sensor reading, deterministic channel id.
    s.endpoint = std::make_unique<ChannelEndpoint>(
        "car-" + std::to_string(s.index),
        PrivateKey::from_seed(config_.key_seed + std::to_string(s.index)),
        config_.onchain_root, config_.engine);
    s.endpoint->sensors().set_reading(config_.sensor_device,
                                      config_.sensor_reading);
    const U256 channel_id{config_.channel_id_base + s.index};
    const auto open = s.endpoint->open_request(channel_id, config_.rate,
                                               config_.sensor_device);
    if (!open) {
      ++report_.failures;
      finish(s, /*success=*/false);
      return;
    }
    s.phase = Session::Phase::AwaitOpen;
    send_frame(s, encode_request(channel::HubRequest{*open}, next_seq_++));
  }

  /// Advances the script after a successful (non-Busy) response.
  void advance(Session& s, const HubResponse& response) {
    if (response.status != HubStatus::Ok) {
      ++report_.failures;
      finish(s, /*success=*/false);
      return;
    }
    if (!s.endpoint->apply(response)) {
      ++report_.failures;
      finish(s, /*success=*/false);
      return;
    }
    if (s.phase == Session::Phase::AwaitPay) {
      const auto now = std::chrono::steady_clock::now();
      report_.e2e_us.push_back(static_cast<std::uint32_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(now -
                                                                s.sent_at)
              .count()));
      report_.service_us.push_back(response.service_us);
      report_.queue_us.push_back(response.queue_us);
      ++report_.rounds_done;
      ++s.round;
    }
    if (s.round < config_.rounds) {
      const auto update =
          s.endpoint->propose_payment(units_for(s.round, s.index));
      if (!update) {
        ++report_.failures;
        finish(s, /*success=*/false);
        return;
      }
      s.phase = Session::Phase::AwaitPay;
      send_frame(s,
                 encode_request(channel::HubRequest{*update}, next_seq_++));
      return;
    }
    if (s.phase != Session::Phase::AwaitClose && config_.close_channels) {
      s.phase = Session::Phase::AwaitClose;
      send_frame(s, encode_request(
                        channel::HubRequest{s.endpoint->close_request()},
                        next_seq_++));
      return;
    }
    finish(s, /*success=*/true);
  }

  void on_readable(Session& s) {
    std::array<std::uint8_t, 64 * 1024> chunk{};
    for (;;) {
      const ssize_t n = ::read(s.fd.get(), chunk.data(), chunk.size());
      if (n > 0) {
        s.reader.feed({chunk.data(), static_cast<std::size_t>(n)});
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      // EOF or hard error with the script unfinished.
      ++report_.failures;
      finish(s, /*success=*/false);
      return;
    }
    while (auto frame = s.reader.next()) {
      if (frame->kind != FrameKind::Response) {
        ++report_.failures;
        finish(s, /*success=*/false);
        return;
      }
      auto response = decode_response(*frame);
      if (!response) {
        ++report_.failures;
        finish(s, /*success=*/false);
        return;
      }
      if (response->status == HubStatus::Busy) {
        resend_last(s);
      } else {
        advance(s, *response);
      }
      if (s.phase == Session::Phase::Done ||
          s.phase == Session::Phase::Failed) {
        return;
      }
    }
    if (s.reader.error() != FrameError::None) {
      ++report_.failures;
      finish(s, /*success=*/false);
    }
  }

  void handle_event(std::uint64_t slot, std::uint32_t events) {
    Session& s = sessions_[static_cast<std::size_t>(slot)];
    if (s.phase == Session::Phase::Done || s.phase == Session::Phase::Failed) {
      return;
    }
    if (s.phase == Session::Phase::Connecting) {
      if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
        --connecting_;
        s.phase = Session::Phase::AwaitOpen;
        ++report_.connect_failures;
        finish(s, /*success=*/false);
        return;
      }
      if ((events & EPOLLOUT) != 0) on_connected(s);
      return;
    }
    if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
      ++report_.failures;
      finish(s, /*success=*/false);
      return;
    }
    if ((events & EPOLLOUT) != 0) {
      flush(s);
      if (s.phase == Session::Phase::Done ||
          s.phase == Session::Phase::Failed) {
        return;
      }
    }
    if ((events & EPOLLIN) != 0) on_readable(s);
  }

  const LoadGenerator::Config& config_;
  std::size_t begin_;
  Fd epoll_;
  std::vector<Session> sessions_;
  std::size_t next_unstarted_ = 0;
  std::size_t connecting_ = 0;
  std::size_t finished_ = 0;
  std::uint32_t next_seq_ = 1;
  LoadGenerator::Report report_;
};

}  // namespace

LoadGenerator::Report LoadGenerator::run() {
  const std::size_t threads =
      std::max<std::size_t>(1, std::min(config_.threads, config_.connections));
  std::vector<Report> reports(threads);
  const auto start = std::chrono::steady_clock::now();
  if (threads == 1) {
    ShardRunner runner(config_, 0, config_.connections);
    reports[0] = runner.run();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    const std::size_t per = (config_.connections + threads - 1) / threads;
    for (std::size_t t = 0; t < threads; ++t) {
      const std::size_t begin = t * per;
      const std::size_t end = std::min(config_.connections, begin + per);
      if (begin >= end) break;
      pool.emplace_back([this, t, begin, end, &reports] {
        ShardRunner runner(config_, begin, end);
        reports[t] = runner.run();
      });
    }
    for (auto& th : pool) th.join();
  }
  Report merged;
  for (auto& r : reports) {
    merged.connections_done += r.connections_done;
    merged.rounds_done += r.rounds_done;
    merged.busy_retries += r.busy_retries;
    merged.failures += r.failures;
    merged.connect_failures += r.connect_failures;
    merged.e2e_us.insert(merged.e2e_us.end(), r.e2e_us.begin(),
                         r.e2e_us.end());
    merged.service_us.insert(merged.service_us.end(), r.service_us.begin(),
                             r.service_us.end());
    merged.queue_us.insert(merged.queue_us.end(), r.queue_us.begin(),
                           r.queue_us.end());
  }
  merged.elapsed_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - start)
          .count();
  return merged;
}

}  // namespace tinyevm::net
