#include "device/mote.hpp"

namespace tinyevm::device {

std::uint64_t TschLink::transfer(Mote& from, std::uint32_t payload_bytes) {
  Mote& to = peer(from);
  delivery_failed_ = false;
  const std::uint64_t start = std::max(from.now_us(), to.now_us());
  // Both radios meet at the next shared timeslot; intervening time is LPM2.
  std::uint64_t slot = next_slot(start);
  from.sleep_until(slot);
  to.sleep_until(slot);

  const std::uint32_t frames = frames_needed(payload_bytes);
  constexpr std::uint32_t kMacPayload = RadioSpec::kMaxFrameBytes - 21;
  std::uint32_t remaining = payload_bytes;
  for (std::uint32_t f = 0; f < frames; ++f) {
    const std::uint32_t chunk = std::min(remaining, kMacPayload);
    remaining -= chunk;
    const std::uint64_t airtime = RadioSpec::frame_airtime_us(chunk + 21);

    // Transmit until the ACK arrives or the retry budget is exhausted.
    // A lost frame still costs the full TX/RX window (the sender waits
    // out the missing ACK), then both sides rendezvous at the next slot.
    unsigned attempt = 0;
    for (;; ++attempt) {
      from.spend(PowerState::Tx, airtime);
      to.spend(PowerState::Rx, airtime + 400 /* guard */);
      if (!frame_lost()) break;
      ++retransmissions_;
      if (attempt + 1 >= kMaxRetries) {
        delivery_failed_ = true;
        break;
      }
      slot = next_slot(std::max(from.now_us(), to.now_us()));
      from.sleep_until(slot);
      to.sleep_until(slot);
    }
    if (delivery_failed_) break;

    // Next frame waits for the next slot; idle remainder is LPM2.
    if (f + 1 < frames) {
      slot = next_slot(std::max(from.now_us(), to.now_us()));
      from.sleep_until(slot);
      to.sleep_until(slot);
    }
  }
  // Re-align both clocks to the transfer end.
  const std::uint64_t end = std::max(from.now_us(), to.now_us());
  from.sleep_until(end);
  to.sleep_until(end);
  return end - start;
}

}  // namespace tinyevm::device
