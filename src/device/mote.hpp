// Simulated mote: a CC2538-class device with a microsecond clock, Energest
// accounting, a current-trace recorder (Figure 5), a TSCH link, and the
// device-side crypto latency model (Table V). The VM cycle counts produced
// by the interpreter are converted to CPU-active time here.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "device/cc2538.hpp"
#include "device/energest.hpp"

namespace tinyevm::device {

/// One sample of the Figure 5 current trace: the device entered `state` at
/// `start_us` and stayed for `duration_us`, drawing `current_ma`.
struct TraceSegment {
  std::uint64_t start_us = 0;
  std::uint64_t duration_us = 0;
  PowerState state = PowerState::Lpm2;
  double current_ma = 0.0;
};

/// A mote's local clock + energy ledger. All protocol/VM layers report
/// their activity here; nothing else touches time.
class Mote {
 public:
  explicit Mote(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint64_t now_us() const { return now_us_; }
  [[nodiscard]] const Energest& energest() const { return energest_; }
  [[nodiscard]] const std::vector<TraceSegment>& trace() const {
    return trace_;
  }

  /// Spends wall-clock time in `state`, advancing the local clock.
  void spend(PowerState state, std::uint64_t duration_us) {
    if (duration_us == 0) return;
    trace_.push_back(TraceSegment{now_us_, duration_us, state,
                                  current_ma(state)});
    energest_.accumulate(state, duration_us);
    now_us_ += duration_us;
  }

  /// CPU-active time for `cycles` MCU cycles (the interpreter's output).
  void spend_cpu_cycles(std::uint64_t cycles) {
    spend(PowerState::CpuActive,
          cycles * 1'000'000 / Cc2538Spec::kCpuHz);
  }

  /// Idles until the local clock reaches `target_us` (radio
  /// synchronization, waiting for the peer's slot). A TSCH node is never
  /// fully asleep: once per slotframe it wakes to listen for enhanced
  /// beacons / keep-alives, so long sleeps interleave one short RX window
  /// per slotframe with LPM2 — visible as the periodic RX blips in the
  /// paper's Figure 5 trace.
  void sleep_until(std::uint64_t target_us) {
    constexpr std::uint64_t kSlotframeUs =
        RadioSpec::kTimeslotUs * RadioSpec::kSlotframeLength;
    constexpr std::uint64_t kIdleListenUs = 2'200;
    while (target_us > now_us_) {
      const std::uint64_t remaining = target_us - now_us_;
      if (remaining > kSlotframeUs) {
        spend(PowerState::Lpm2, kSlotframeUs - kIdleListenUs);
        spend(PowerState::Rx, kIdleListenUs);
      } else {
        spend(PowerState::Lpm2, remaining);
      }
    }
  }

  // --- device crypto (Table V latencies; the digests themselves are
  // computed by the caller with the host-side primitives) ---
  void ecdsa_sign_latency() {
    spend(PowerState::CryptoEngine, CryptoLatency::kEcdsaSignUs);
  }
  void ecdsa_verify_latency() {
    spend(PowerState::CryptoEngine, CryptoLatency::kEcdsaVerifyUs);
  }
  void sha256_latency() {
    spend(PowerState::CryptoEngine, CryptoLatency::kSha256Us);
  }
  /// Keccak is software: CPU-active, not crypto-engine (Table V).
  void keccak256_latency() {
    spend(PowerState::CpuActive, CryptoLatency::kKeccak256Us);
  }

  void reset() {
    now_us_ = 0;
    energest_.reset();
    trace_.clear();
  }

 private:
  std::string name_;
  std::uint64_t now_us_ = 0;
  Energest energest_;
  std::vector<TraceSegment> trace_;
};

/// Point-to-point TSCH link between two motes. Transfers are quantized to
/// 10 ms timeslots; the sender spends TX airtime, the receiver RX airtime
/// (plus guard listening), and both sleep through unused slot remainder in
/// LPM2 — reproducing the duty-cycled shape of the Figure 5 trace.
///
/// Failure injection: `set_loss_rate(p)` drops each frame with
/// deterministic pseudo-probability p; dropped frames are retransmitted in
/// the next slot (up to `kMaxRetries`), costing extra TX/RX time and
/// energy, so lossy-link sensitivity can be benchmarked.
class TschLink {
 public:
  static constexpr unsigned kMaxRetries = 8;

  TschLink(Mote& a, Mote& b) : a_(a), b_(b) {}

  /// Per-frame loss probability in percent (0-99), applied with a
  /// deterministic LCG so runs are reproducible.
  void set_loss_rate(unsigned percent) { loss_percent_ = percent % 100; }

  [[nodiscard]] std::uint32_t frames_retransmitted() const {
    return retransmissions_;
  }
  [[nodiscard]] bool last_transfer_failed() const { return delivery_failed_; }

  /// Number of MAC frames needed for `payload_bytes`.
  [[nodiscard]] static std::uint32_t frames_needed(std::uint32_t payload_bytes) {
    constexpr std::uint32_t kMacPayload =
        RadioSpec::kMaxFrameBytes - 21;  // MAC header + MIC overhead
    return (payload_bytes + kMacPayload - 1) / kMacPayload;
  }

  /// Sends `payload_bytes` from `from` to the other mote. Both clocks
  /// advance to the end of the transfer; returns the transfer time in µs.
  std::uint64_t transfer(Mote& from, std::uint32_t payload_bytes);

 private:
  [[nodiscard]] Mote& peer(Mote& m) { return &m == &a_ ? b_ : a_; }

  /// Next slot boundary at or after `t`.
  [[nodiscard]] static std::uint64_t next_slot(std::uint64_t t) {
    const std::uint64_t slot = RadioSpec::kTimeslotUs;
    return (t + slot - 1) / slot * slot;
  }

  /// Deterministic per-frame loss decision.
  [[nodiscard]] bool frame_lost() {
    if (loss_percent_ == 0) return false;
    rng_state_ = rng_state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return (rng_state_ >> 33) % 100 < loss_percent_;
  }

  Mote& a_;
  Mote& b_;
  unsigned loss_percent_ = 0;
  std::uint64_t rng_state_ = 0x5DEECE66DULL;
  std::uint32_t retransmissions_ = 0;
  bool delivery_failed_ = false;
};

}  // namespace tinyevm::device
