// Full off-chain payment-round simulation between two motes (paper §VI-C,
// Figure 5 and Table IV): sensor-data exchange over TSCH, template
// execution on the local TinyEVM to open the channel, a signed payment,
// the side-chain registration, and the closing signature exchange.
//
// The two real subsystems (TinyEVM interpreter, secp256k1 signer) produce
// the artifacts; the Mote model maps their work onto device time and
// current draw.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "channel/manager.hpp"
#include "device/mote.hpp"

namespace tinyevm::device {

/// Per-phase timing of one round, for the Figure 5 narration.
struct RoundTiming {
  std::uint64_t exchange_sensor_us = 0;  ///< initial TSCH data exchange
  std::uint64_t open_channel_us = 0;     ///< VM execution of the template
  std::uint64_t sign_payment_us = 0;     ///< ECDSA on the crypto engine
  std::uint64_t register_sidechain_us = 0;  ///< VM run logging the payment
  std::uint64_t closing_exchange_us = 0;    ///< signature exchange over TSCH
  std::uint64_t total_us = 0;
  /// The paper's headline metric — "complete an off-chain payment in
  /// 584 ms": the payer-side latency of sign + ship + side-chain
  /// registration for one payment.
  std::uint64_t payment_latency_us = 0;
};

struct RoundResult {
  RoundTiming timing;
  bool ok = false;
  U256 paid_total;
  std::uint64_t sequence = 0;
  /// Registry name of the execution engine the payer's Vm resolved —
  /// round reports stay attributable when endpoints pick different
  /// engines (the timings themselves are engine-invariant: device time is
  /// modeled from MCU cycles, and every engine reports identical cycles).
  std::string engine;
};

/// Orchestrates the paper's evaluation scenario: `car` pays `lot` for
/// parking, both simulated as CC2538 motes.
class OffchainRound {
 public:
  OffchainRound(Mote& car_mote, Mote& lot_mote,
                channel::ChannelEndpoint& car, channel::ChannelEndpoint& lot)
      : car_mote_(car_mote), lot_mote_(lot_mote), car_(car), lot_(lot) {}

  /// Runs one complete round: open channel (id/rate pre-agreed on-chain),
  /// `payments` signed payments, close. Mirrors Figure 5's single-payment
  /// round when payments == 1.
  RoundResult run(const U256& channel_id, const U256& rate,
                  std::uint32_t sensor_device, unsigned payments = 1);

 private:
  /// Converts the VM cycles an endpoint accumulated since the last call
  /// into CPU time on `mote`.
  void account_vm(Mote& mote, channel::ChannelEndpoint& endpoint,
                  std::uint64_t& cursor);

  Mote& car_mote_;
  Mote& lot_mote_;
  channel::ChannelEndpoint& car_;
  channel::ChannelEndpoint& lot_;
};

}  // namespace tinyevm::device
