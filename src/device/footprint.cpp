#include "device/footprint.hpp"

#include "evm/opcodes.hpp"

namespace tinyevm::device {

std::uint32_t vm_ram_bytes(const evm::VmConfig& config) {
  // Fixed arenas on the MCU build (the paper's §VI-A configuration):
  const std::uint32_t stack_arena =
      static_cast<std::uint32_t>(config.stack_limit) * 32;     // 3 KB
  const std::uint32_t memory_arena =
      static_cast<std::uint32_t>(config.memory_limit);         // 8 KB
  const std::uint32_t storage_arena =
      static_cast<std::uint32_t>(config.storage_limit);        // 1 KB
  // Interpreter bookkeeping: frame registers, a JUMPDEST bitmap sized for
  // the 8 KB deployment ceiling (1 bit/byte), return-data buffer and the
  // host's contract/slot tables.
  const std::uint32_t analysis_bitmap = 8192 / 8;
  const std::uint32_t frame_state = 256;
  const std::uint32_t host_tables = 512;
  return stack_arena + memory_arena + storage_arena + analysis_bitmap +
         frame_state + host_tables;
}

std::uint32_t vm_rom_bytes() {
  // Opcode metadata table (one packed descriptor per active opcode) plus
  // the dispatch/handler code. The descriptor packs to 8 bytes on the MCU;
  // handler code measured at ~1.2 KB thumb-2 in the reference build.
  const auto& table = evm::opcode_table();
  std::uint32_t active = 0;
  for (const auto& inf : table) {
    if (inf.defined || inf.tinyevm) ++active;
  }
  const std::uint32_t metadata = active * 8;
  const std::uint32_t handlers = 1220;
  return metadata + handlers;
}

FootprintRow FootprintReport::total() const {
  FootprintRow out{"Total footprint", 0, 0};
  for (const auto& row : rows) {
    out.ram_bytes += row.ram_bytes;
    out.rom_bytes += row.rom_bytes;
  }
  return out;
}

FootprintRow FootprintReport::available() const {
  const FootprintRow t = total();
  return FootprintRow{"Available memory",
                      Cc2538Spec::kRamBytes - t.ram_bytes,
                      Cc2538Spec::kRomBytes - t.rom_bytes};
}

FootprintReport footprint_report(const evm::VmConfig& config,
                                 std::uint32_t template_bytes) {
  FootprintReport report;
  report.rows.push_back(FootprintRow{"Contiki-NG OS",
                                     ContikiFootprint::kOsRamBytes,
                                     ContikiFootprint::kOsRomBytes});
  report.rows.push_back(
      FootprintRow{"TinyEVM", vm_ram_bytes(config), vm_rom_bytes()});
  report.rows.push_back(
      FootprintRow{"Smart Contract Template", template_bytes, 0});
  return report;
}

}  // namespace tinyevm::device
