// Memory-footprint accounting (paper Table III): how the 32 KB of RAM and
// 512 KB of ROM divide between Contiki-NG, the TinyEVM module, and the
// deployed smart-contract template. The OS rows come from the calibration
// header; the TinyEVM rows are computed from the configured VM (stack,
// memory, storage arenas plus interpreter state), and the template row from
// the actual bytecode this repo assembles.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "device/cc2538.hpp"
#include "evm/vm.hpp"

namespace tinyevm::device {

struct FootprintRow {
  std::string component;
  std::uint32_t ram_bytes = 0;
  std::uint32_t rom_bytes = 0;

  [[nodiscard]] double ram_percent() const {
    return 100.0 * ram_bytes / Cc2538Spec::kRamBytes;
  }
  [[nodiscard]] double rom_percent() const {
    return 100.0 * rom_bytes / Cc2538Spec::kRomBytes;
  }
};

struct FootprintReport {
  std::vector<FootprintRow> rows;

  [[nodiscard]] FootprintRow total() const;
  [[nodiscard]] FootprintRow available() const;
};

/// RAM a VM instance reserves at the given configuration: the 3 KB stack
/// arena, the 8 KB RAM arena, the 1 KB side-chain storage, plus interpreter
/// bookkeeping (analysis bitmap, frame state, host tables).
[[nodiscard]] std::uint32_t vm_ram_bytes(const evm::VmConfig& config);

/// ROM for the interpreter: dispatch table + opcode metadata + handlers.
/// Derived from the sizes of this repo's compiled tables, scaled to the
/// thumb-2 footprint the paper reports (1,937 B).
[[nodiscard]] std::uint32_t vm_rom_bytes();

/// Builds the Table III report for a VM configuration and a deployed
/// template of `template_bytes`.
[[nodiscard]] FootprintReport footprint_report(const evm::VmConfig& config,
                                               std::uint32_t template_bytes);

}  // namespace tinyevm::device
