#include "device/offchain_round.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tinyevm::device {
namespace {

/// Wire sizes of the exchanged artifacts (bytes). The negotiation payloads
/// carry sensor readings plus channel metadata; the payment message ships
/// the RLP channel state, the 65-byte signature and framing.
constexpr std::uint32_t kSensorMessage = 200;
constexpr std::uint32_t kSignedStateMessage = 300;
constexpr std::uint32_t kSignatureMessage = 80;

}  // namespace

void OffchainRound::account_vm(Mote& mote,
                               channel::ChannelEndpoint& endpoint,
                               std::uint64_t& cursor) {
  const std::uint64_t cycles = endpoint.stats().vm_cycles;
  if (cycles > cursor) {
    mote.spend_cpu_cycles(cycles - cursor);
    cursor = cycles;
  }
}

RoundResult OffchainRound::run(const U256& channel_id, const U256& rate,
                               std::uint32_t sensor_device,
                               unsigned payments) {
  obs::Span span("round.run", "device");
  RoundResult result;
  result.engine = std::string(car_.engine_name());
  TschLink link(car_mote_, lot_mote_);
  std::uint64_t car_vm_cursor = car_.stats().vm_cycles;
  std::uint64_t lot_vm_cursor = lot_.stats().vm_cycles;
  const std::uint64_t t0 = car_mote_.now_us();

  // --- Phase A: exchange sensor data (car sends, then receives). ---
  link.transfer(car_mote_, kSensorMessage);
  link.transfer(lot_mote_, kSensorMessage);
  result.timing.exchange_sensor_us = car_mote_.now_us() - t0;

  // --- Phase B: execute the template to open the channel (both sides,
  // concurrently — each on its own MCU). ---
  const std::uint64_t t1 = car_mote_.now_us();
  if (!car_.open_channel(channel_id, rate, sensor_device)) return result;
  if (!lot_.open_channel(channel_id, rate, sensor_device)) return result;
  account_vm(car_mote_, car_, car_vm_cursor);
  account_vm(lot_mote_, lot_, lot_vm_cursor);
  // Each side hashes the deployed code for the side-chain anchor
  // (software keccak, Table V).
  car_mote_.keccak256_latency();
  lot_mote_.keccak256_latency();
  const std::uint64_t sync1 = std::max(car_mote_.now_us(), lot_mote_.now_us());
  car_mote_.sleep_until(sync1);
  lot_mote_.sleep_until(sync1);
  result.timing.open_channel_us = sync1 - t1;

  // --- Phase C: signed payment(s). The payer's measured path is
  // digest + ECDSA sign + ship (Table IV charges exactly one crypto-engine
  // operation to the measured mote); the peer's validation and
  // counter-signature run on the *peer's* engine while the payer proceeds
  // to its side-chain registration — the phases overlap, as in Figure 5.
  std::optional<channel::SignedState> last_state;
  std::uint64_t sign_slices = 0;
  for (unsigned i = 0; i < payments; ++i) {
    const std::uint64_t pay_start = car_mote_.now_us();
    auto proposal = car_.make_payment(U256{1});
    if (!proposal) return result;
    account_vm(car_mote_, car_, car_vm_cursor);
    car_mote_.keccak256_latency();   // state digest (SW)
    car_mote_.ecdsa_sign_latency();  // the 350 ms Table V signature

    // Ship the proposed state; the lot validates and countersigns on its
    // own engine.
    link.transfer(car_mote_, kSignedStateMessage);
    sign_slices += car_mote_.now_us() - pay_start;
    lot_mote_.keccak256_latency();
    lot_mote_.ecdsa_verify_latency();
    const auto counter = lot_.countersign(proposal->state);
    if (!counter) return result;
    lot_mote_.ecdsa_sign_latency();
    proposal->receiver_sig = *counter;

    // The counter-signature comes back whenever the lot is done; the car
    // sleeps through the wait (LPM2 + idle listening).
    link.transfer(lot_mote_, kSignatureMessage);

    if (!car_.accept(*proposal)) return result;
    if (!lot_.accept(*proposal)) return result;
    last_state = *proposal;
  }
  result.timing.sign_payment_us = sign_slices;

  // --- Phase D: register the final state on the local side-chain (the
  // close() run folds the payment log into the side-chain record). The
  // phase is mote-local: each side runs its own close; only the *car's*
  // time is the measured register latency. ---
  const std::uint64_t t3 = car_mote_.now_us();
  (void)car_.close_channel();
  account_vm(car_mote_, car_, car_vm_cursor);
  result.timing.register_sidechain_us = car_mote_.now_us() - t3;
  (void)lot_.close_channel();
  account_vm(lot_mote_, lot_, lot_vm_cursor);
  const std::uint64_t sync3 = std::max(car_mote_.now_us(), lot_mote_.now_us());
  car_mote_.sleep_until(sync3);
  lot_mote_.sleep_until(sync3);

  // --- Phase E: exchange the closing signatures. ---
  const std::uint64_t t4 = car_mote_.now_us();
  link.transfer(car_mote_, kSignatureMessage);
  link.transfer(lot_mote_, kSignatureMessage);
  result.timing.closing_exchange_us = car_mote_.now_us() - t4;

  result.timing.total_us = car_mote_.now_us() - t0;
  // Payer-side payment latency: one sign+ship slice plus the side-chain
  // registration — the paper's 584 ms headline.
  result.timing.payment_latency_us =
      payments == 0 ? 0
                    : sign_slices / payments +
                          result.timing.register_sidechain_us;
  result.ok = last_state.has_value();
  if (last_state) {
    result.paid_total = last_state->state.paid_total;
    result.sequence = last_state->state.sequence;
  }
  if (obs::metrics_enabled()) {
    // Rounds are seconds of modeled device time; the registry mutex on
    // this cold path is noise.
    auto& registry = obs::Registry::instance();
    const obs::LabelSet labels{
        {"engine", result.engine},
        {"result", result.ok ? "ok" : "failed"}};
    registry
        .counter("tinyevm_round_total",
                 "Off-chain payment rounds simulated, by payer engine",
                 labels)
        .inc();
    registry
        .histogram("tinyevm_round_payment_latency_us",
                   "Modeled payer-side payment latency per round (the "
                   "paper's 584 ms headline), microseconds",
                   {{"engine", result.engine}})
        .record(result.timing.payment_latency_us);
    registry
        .histogram("tinyevm_round_total_us",
                   "Modeled wall time of one complete round, microseconds",
                   {{"engine", result.engine}})
        .record(result.timing.total_us);
  }
  return result;
}

}  // namespace tinyevm::device
