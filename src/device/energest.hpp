// Energest-style energy accounting (Dunkels et al., the module Contiki-NG
// ships and the paper relies on, §VI-C). Tracks time spent in each power
// state with a 30 µs timer resolution and converts to millijoules using the
// Table IV current table and supply voltage.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "device/cc2538.hpp"

namespace tinyevm::device {

enum class PowerState : std::uint8_t {
  CpuActive,     ///< M3 running the VM or protocol code
  CryptoEngine,  ///< HW crypto engine busy
  Tx,            ///< radio transmitting
  Rx,            ///< radio receiving / listening
  Lpm2,          ///< low-power mode 2 (paper's idle configuration)
};
inline constexpr std::size_t kPowerStateCount = 5;

[[nodiscard]] constexpr std::string_view to_string(PowerState s) {
  switch (s) {
    case PowerState::CpuActive: return "CPU @ 32 MHz";
    case PowerState::CryptoEngine: return "Cryptographic Engine";
    case PowerState::Tx: return "TX";
    case PowerState::Rx: return "RX";
    case PowerState::Lpm2: return "CPU @ LPM2";
  }
  return "?";
}

[[nodiscard]] constexpr double current_ma(PowerState s) {
  switch (s) {
    case PowerState::CpuActive: return CurrentDraw::kCpuActiveMa;
    case PowerState::CryptoEngine: return CurrentDraw::kCryptoEngineMa;
    case PowerState::Tx: return CurrentDraw::kTxMa;
    case PowerState::Rx: return CurrentDraw::kRxMa;
    case PowerState::Lpm2: return CurrentDraw::kLpm2Ma;
  }
  return 0.0;
}

/// Accumulates per-state dwell times. Times are quantized to the Energest
/// timer resolution (30 µs) when read, matching the measurement granularity
/// the paper reports.
class Energest {
 public:
  static constexpr std::uint64_t kTimerResolutionUs = 30;

  void accumulate(PowerState state, std::uint64_t duration_us) {
    raw_us_[index(state)] += duration_us;
  }

  /// Dwell time quantized to the timer resolution.
  [[nodiscard]] std::uint64_t time_us(PowerState state) const {
    const std::uint64_t raw = raw_us_[index(state)];
    return raw - raw % kTimerResolutionUs;
  }
  [[nodiscard]] double time_ms(PowerState state) const {
    return static_cast<double>(time_us(state)) / 1000.0;
  }

  /// Energy in millijoules: E = I * V * t.
  [[nodiscard]] double energy_mj(PowerState state) const {
    return current_ma(state) * Cc2538Spec::kSupplyVolts *
           (static_cast<double>(time_us(state)) / 1'000'000.0);
  }

  [[nodiscard]] double total_energy_mj() const {
    double total = 0;
    for (std::size_t i = 0; i < kPowerStateCount; ++i) {
      total += energy_mj(static_cast<PowerState>(i));
    }
    return total;
  }

  [[nodiscard]] std::uint64_t total_time_us() const {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < kPowerStateCount; ++i) {
      total += time_us(static_cast<PowerState>(i));
    }
    return total;
  }

  void reset() { raw_us_.fill(0); }

 private:
  static std::size_t index(PowerState s) {
    return static_cast<std::size_t>(s);
  }
  std::array<std::uint64_t, kPowerStateCount> raw_us_{};
};

}  // namespace tinyevm::device
