// CC2538 / OpenMote-B device model — the calibration header.
//
// The paper evaluates on an OpenMote-B (TI-CC2538 SoC: 32-bit Cortex-M3 @
// 32 MHz, 32 KB RAM, 512 KB ROM, crypto engine @ 250 MHz, 802.15.4 radio).
// We substitute the physical board with a declarative timing/current model;
// every constant below is taken from the paper's Tables III-V or the SoC
// datasheet values the paper cites, so the calibration is auditable in one
// place.
#pragma once

#include <cstdint>

namespace tinyevm::device {

/// Static platform parameters (paper §VI-A).
struct Cc2538Spec {
  static constexpr std::uint64_t kCpuHz = 32'000'000;       // 32 MHz M3
  static constexpr std::uint64_t kCryptoHz = 250'000'000;   // crypto engine
  static constexpr std::uint32_t kRamBytes = 32 * 1024;
  static constexpr std::uint32_t kRomBytes = 512 * 1024;
  static constexpr double kSupplyVolts = 2.1;               // Table IV

  /// Cycles per millisecond at the CPU clock.
  static constexpr std::uint64_t kCyclesPerMs = kCpuHz / 1000;
};

/// Current draw per power state in milliamps (paper Table IV).
struct CurrentDraw {
  static constexpr double kCryptoEngineMa = 26.0;
  static constexpr double kTxMa = 24.0;
  static constexpr double kRxMa = 20.0;
  static constexpr double kCpuActiveMa = 13.0;
  static constexpr double kLpm2Ma = 1.3;
};

/// Crypto-operation latencies in microseconds (paper Table V).
/// ECDSA and SHA-256 run on the hardware engine; Keccak-256 is software.
struct CryptoLatency {
  static constexpr std::uint64_t kEcdsaSignUs = 350'000;  // 350 ms HW
  static constexpr std::uint64_t kEcdsaVerifyUs = 350'000;  // same engine path
  static constexpr std::uint64_t kSha256Us = 1'000;       // 1 ms HW
  static constexpr std::uint64_t kKeccak256Us = 5'000;    // 5 ms SW
};

/// 802.15.4 / TSCH radio parameters (Contiki-NG defaults the paper uses).
struct RadioSpec {
  static constexpr std::uint64_t kBitrateBps = 250'000;  // 2.4 GHz O-QPSK
  static constexpr std::uint32_t kMaxFrameBytes = 127;
  static constexpr std::uint64_t kTimeslotUs = 10'000;   // 10 ms TSCH slot
  static constexpr std::uint32_t kSlotframeLength = 7;   // minimal schedule
  /// Per-frame radio-on overhead beyond payload airtime (CCA, turnaround,
  /// ACK wait) — keeps the modeled TX/RX totals at the paper's Table IV
  /// scale (32 ms TX / 52 ms RX for a full round).
  static constexpr std::uint64_t kFrameOverheadUs = 2'000;

  /// Airtime of `bytes` of MAC payload including the ACK exchange.
  static constexpr std::uint64_t frame_airtime_us(std::uint32_t bytes) {
    const std::uint64_t phy = bytes + 6 /* PHY header+len */;
    return phy * 8 * 1'000'000 / kBitrateBps + kFrameOverheadUs;
  }
};

/// Contiki-NG memory-footprint constants (paper Table III). The TinyEVM
/// RAM/ROM rows are *measured* from the configured VM at runtime; the OS
/// rows are fixed by the Contiki-NG build the paper used.
struct ContikiFootprint {
  static constexpr std::uint32_t kOsRamBytes = 10'394;
  static constexpr std::uint32_t kOsRomBytes = 40'527;
};

}  // namespace tinyevm::device
