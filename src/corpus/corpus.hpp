// Synthetic smart-contract corpus (substitute for the paper's 7,000
// Etherscan-verified contracts, see DESIGN.md §2).
//
// The deployment experiment (Figures 3a-3c, 4; Table II) measures what
// happens when real-world constructor bytecode runs under TinyEVM's memory
// limits. We cannot redistribute Etherscan's corpus, so this generator
// produces *executable* deployment bytecode whose size distribution matches
// the paper's reported statistics (mean 4 KB, std 2.9 KB, min 28 B, max
// 25 KB, lognormal body) and whose constructors perform realistic work:
// storage initialization loops, keccak-based slot derivation, memory
// staging of the runtime, and occasional deep expression stacks. Stack and
// memory usage then *emerge from execution* rather than being sampled.
#pragma once

#include <cstdint>
#include <memory>
#include <random>
#include <string_view>
#include <vector>

#include "evm/code_cache.hpp"
#include "evm/state.hpp"
#include "evm/vm.hpp"

namespace tinyevm::corpus {

struct GeneratorConfig {
  std::uint64_t seed = 20200711;  ///< paper download date, why not
  std::size_t count = 7000;
  /// Size distribution targets (paper Table II / §VI-B).
  double lognormal_mu = 8.15;     ///< exp(mu) ~ 3.5 KB median
  double lognormal_sigma = 0.62;
  std::size_t min_size = 28;
  std::size_t max_size = 25'000;
};

/// One synthetic verified contract: deployment bytecode (constructor +
/// runtime) plus generator metadata for sanity checks.
struct Contract {
  evm::Bytes init_code;
  /// keccak256(init_code) — real corpora know their code hashes, and
  /// carrying it lets repeat deployments hit the translation cache without
  /// rehashing.
  Hash256 init_code_hash{};
  std::size_t runtime_size = 0;
  unsigned storage_inits = 0;   ///< constructor SSTORE count
  unsigned hash_ops = 0;        ///< constructor SHA3 count
  unsigned expression_depth = 0;  ///< deepest constructor expression tree
};

/// Deterministic corpus generator.
class Generator {
 public:
  explicit Generator(GeneratorConfig config = {}) : config_(config) {}

  /// Generates the i-th contract (deterministic in (seed, index)).
  [[nodiscard]] Contract make(std::size_t index) const;

  /// Generates the whole corpus.
  [[nodiscard]] std::vector<Contract> make_all() const;

  [[nodiscard]] const GeneratorConfig& config() const { return config_; }

 private:
  GeneratorConfig config_;
};

/// Outcome of deploying one corpus contract on the device model. Every
/// field derives deterministically from (contract, VmConfig) — deploy_time
/// comes from the modeled cycle count, not wall clock — so the parallel
/// deployment path can assert bit-identical equality against the serial
/// loop.
struct DeploymentOutcome {
  bool success = false;
  evm::Status status = evm::Status::Success;
  std::size_t contract_size = 0;   ///< init-code bytes (Fig 3a x-axis)
  std::size_t memory_used = 0;     ///< peak VM memory (Fig 3b y-axis)
  std::size_t max_stack_pointer = 0;  ///< Fig 3c
  std::size_t stack_bytes = 0;        ///< max SP * 32 rounded to the arena
  std::uint64_t mcu_cycles = 0;
  double deploy_time_ms = 0;       ///< Fig 4 y-axis (32 MHz model)

  bool operator==(const DeploymentOutcome&) const = default;
};

/// Reusable deployment engine: owns a sensor bank and one Vm — reused
/// across deployments, one instance per worker in the parallel path — and
/// builds a fresh DeviceHost per contract, so every deployment sees the
/// same pristine device state the serial loop gives it (the host
/// accumulates storage/contract tables across executions; sharing one
/// across contracts would change outcomes).
class DeviceDeployer {
 public:
  /// `code_cache` as in deploy_on_device (null = process-wide default).
  explicit DeviceDeployer(const evm::VmConfig& config,
                          std::shared_ptr<evm::CodeCache> code_cache = nullptr);
  ~DeviceDeployer();
  DeviceDeployer(DeviceDeployer&&) noexcept;
  DeviceDeployer& operator=(DeviceDeployer&&) noexcept;

  [[nodiscard]] DeploymentOutcome deploy(const Contract& contract);

  /// Registry name of the execution engine this deployer's Vm resolved
  /// (outcomes are engine-invariant; the name is telemetry).
  [[nodiscard]] std::string_view engine_name() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Runs a contract's deployment on a TinyEVM with the paper's limits
/// (8 KB memory, 3 KB stack, sensors available for IoT-flavoured
/// contracts). `code_cache` overrides the translation cache the device VM
/// consults (null = the process-wide default), so repeat deployments of
/// the same contract — and the upcoming parallel corpus workers — hit warm
/// translations.
[[nodiscard]] DeploymentOutcome deploy_on_device(
    const Contract& contract, const evm::VmConfig& config,
    std::shared_ptr<evm::CodeCache> code_cache = nullptr);

/// Aggregate statistics over a corpus run (Table II).
struct CorpusStats {
  std::size_t deployed = 0;
  std::size_t failed = 0;
  double success_rate = 0;

  struct Summary {
    double max = 0;
    double min = 0;
    double mean = 0;
    double stddev = 0;
  };
  Summary contract_size;
  Summary stack_pointer;   ///< successful deployments only
  Summary stack_bytes;
  Summary memory_bytes;
  Summary deploy_time_ms;
};

[[nodiscard]] CorpusStats summarize(
    const std::vector<DeploymentOutcome>& outcomes);

}  // namespace tinyevm::corpus
