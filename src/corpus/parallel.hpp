// Parallel corpus deployment (ROADMAP "corpus-scale runs").
//
// The Figure 3 / Table II experiment deploys every corpus contract
// independently, which makes it embarrassingly parallel: each worker owns
// its Vm and device host, all workers share one translation cache
// (code_cache.hpp is thread-safe), and contract i's outcome lands at index
// i no matter which worker ran it or in what order. The resulting outcome
// vector — and therefore summarize() and every Fig 3 statistic — is
// bit-identical to the serial deploy_on_device loop at any worker count
// (deploy times are modeled from MCU cycles, not wall clock).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "corpus/corpus.hpp"

namespace tinyevm::runtime {
class ThreadPool;
}

namespace tinyevm::corpus {

struct ParallelDeployConfig {
  /// Worker count; 0 = std::thread::hardware_concurrency().
  std::size_t workers = 0;
  /// Contract indices a worker claims per grab from the shared cursor.
  /// Small chunks keep the heavy-tail constructors (seconds of modeled
  /// work) from serializing behind one worker; the fetch_add is noise
  /// against millisecond-scale deployments.
  std::size_t chunk = 4;
  /// Translation cache shared by every worker (null = the process-wide
  /// CodeCache::shared_default()). Ignored in streaming mode.
  std::shared_ptr<evm::CodeCache> code_cache;
  /// When false, workers run the "raw" execution engine (the token-
  /// threaded loop) and never touch the translation cache —
  /// the streaming mode for unique-code corpora whose decoded working set
  /// overruns the cache capacity, where caching is pure
  /// translate/insert/evict churn. Results stay bit-identical (the raw
  /// loop is the semantic reference, tests/evm_dispatch_test.cpp).
  bool use_translation_cache = true;
};

/// Generates and deploys generator.config().count contracts across the
/// pool's workers. Generation happens inside the workers (make(i) is
/// deterministic per index), so no corpus-sized staging buffer is needed.
std::vector<DeploymentOutcome> deploy_corpus_parallel(
    runtime::ThreadPool& pool, const Generator& generator,
    const evm::VmConfig& vm_config, const ParallelDeployConfig& config = {});

/// Convenience overload: spins up a dedicated pool of config.workers
/// threads for this one run.
std::vector<DeploymentOutcome> deploy_corpus_parallel(
    const Generator& generator, const evm::VmConfig& vm_config,
    const ParallelDeployConfig& config = {});

}  // namespace tinyevm::corpus
