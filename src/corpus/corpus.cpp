#include "corpus/corpus.hpp"

#include <algorithm>
#include <cmath>

#include "channel/manager.hpp"
#include "device/cc2538.hpp"
#include "evm/asm.hpp"

namespace tinyevm::corpus {
namespace {

using evm::Assembler;
using evm::Bytes;
using evm::Opcode;

/// Emits an expression tree of the given depth that leaves one value on the
/// stack; deep trees reproduce the Fig 3c stack-pointer tail.
void emit_expression(Assembler& a, std::mt19937_64& rng, unsigned depth) {
  if (depth == 0) {
    a.push(rng() & 0xFFFF);
    return;
  }
  emit_expression(a, rng, depth - 1);
  emit_expression(a, rng, depth - 1);
  static constexpr Opcode kOps[] = {Opcode::ADD, Opcode::MUL, Opcode::SUB,
                                    Opcode::XOR, Opcode::OR,  Opcode::AND};
  a.op(kOps[rng() % std::size(kOps)]);
}

/// Emits a linear deep-stack phase: push `n` operands then fold them with
/// ADD. Max stack pointer grows to ~n at linear cost — the cheap way to
/// produce Fig 3c's tail (compiled solidity reaches similar depths through
/// nested call argument staging).
void emit_deep_stack(Assembler& a, std::mt19937_64& rng, unsigned n) {
  for (unsigned i = 0; i < n; ++i) a.push(rng() & 0xFFFF);
  for (unsigned i = 1; i < n; ++i) a.op(Opcode::ADD);
  a.op(Opcode::POP);
}

/// Emits a bounded storage-initialization loop: for (i = n; i != 0; --i)
/// sstore(slot_base + i%16, value). Touches at most 16 distinct slots so
/// well-formed contracts stay inside the 1 KB side-chain budget.
void emit_storage_loop(Assembler& a, std::mt19937_64& rng, unsigned n) {
  const std::uint64_t slot_base = rng() % 8;
  a.push(n);
  const std::uint64_t loop = a.label();
  // value = i * constant
  a.dup(1).push(3 + rng() % 97).op(Opcode::MUL);
  // slot = slot_base + (i & 0x0F)
  a.dup(2).push(0x0F).op(Opcode::AND).push(slot_base).op(Opcode::ADD);
  a.op(Opcode::SSTORE);
  // --i; loop while i != 0
  a.push(1).swap(1).op(Opcode::SUB);
  a.dup(1);
  a.push_label(loop).op(Opcode::JUMPI);
  a.op(Opcode::POP);
}

/// Emits keccak hashing of a memory window — slot-derivation patterns
/// solidity compilers produce for mappings/arrays.
void emit_hash_block(Assembler& a, std::mt19937_64& rng) {
  const std::uint64_t offset = (rng() % 8) * 32;
  a.push(rng() & 0xFFFFFFFF).push(offset).op(Opcode::MSTORE);
  a.push(64).push(offset).op(Opcode::SHA3);
  // Reduce the digest to a small slot index before storing: digest & 0x0F.
  a.push(0x0F).op(Opcode::AND);
  a.push(rng() & 0xFFFF).swap(1).op(Opcode::SSTORE);
}

/// Emits a memory-staging block (CALLDATACOPY/MSTORE churn within the 8 KB
/// arena).
void emit_memory_block(Assembler& a, std::mt19937_64& rng) {
  const std::uint64_t base = (rng() % 64) * 32;
  for (unsigned i = 0; i < 4; ++i) {
    a.push(rng()).push(base + i * 32).op(Opcode::MSTORE);
  }
  a.push(base).op(Opcode::MLOAD).op(Opcode::POP);
}

/// Runtime body filler: a plausible dispatcher skeleton padded with dead
/// code to hit the target size. Only deployed, never executed by the
/// experiment, exactly like the Etherscan corpus deployments.
Bytes make_runtime(std::mt19937_64& rng, std::size_t target_size) {
  Assembler a;
  // Minimal dispatcher prologue.
  a.push(0).op(Opcode::CALLDATALOAD).push(0xE0 / 4).op(Opcode::SHR);
  a.op(Opcode::POP);
  // Dead-code padding: PUSH/POP pairs and arithmetic islands. Uses the
  // same opcode mix as compiled solidity (heavy PUSH traffic).
  while (a.size() + 34 < target_size) {
    switch (rng() % 4) {
      case 0:
        a.push(rng()).op(Opcode::POP);
        break;
      case 1:
        a.push(rng() & 0xFFFF).push(rng() & 0xFFFF).op(Opcode::ADD)
            .op(Opcode::POP);
        break;
      case 2:
        a.push_word(U256{rng(), rng(), rng(), rng()}).op(Opcode::POP);
        break;
      default:
        a.op(Opcode::JUMPDEST);
        break;
    }
  }
  while (a.size() < target_size) a.op(Opcode::STOP);
  return a.take();
}

double clamp_size(double v, const GeneratorConfig& cfg) {
  return std::min(static_cast<double>(cfg.max_size),
                  std::max(static_cast<double>(cfg.min_size), v));
}

}  // namespace

Contract Generator::make(std::size_t index) const {
  std::mt19937_64 rng(config_.seed ^ (0x9E3779B97F4A7C15ULL * (index + 1)));
  std::lognormal_distribution<double> size_dist(config_.lognormal_mu,
                                                config_.lognormal_sigma);

  Contract out;
  const auto target =
      static_cast<std::size_t>(clamp_size(size_dist(rng), config_));

  // A small fraction of the corpus are micro-contracts (proxies,
  // selfdestruct stubs) — sized to the paper's 28-byte minimum: a 13-byte
  // runtime under the 15-byte deployment scaffold.
  if (index % 211 == 0) {
    Assembler stub;
    stub.push(0).op(Opcode::CALLDATALOAD).op(Opcode::POP);  // 4 bytes
    stub.op(Opcode::CALLER).op(Opcode::SELFDESTRUCT);       // 2 bytes
    while (stub.size() < 13) stub.op(Opcode::STOP);
    Bytes runtime = stub.take();
    out.init_code = Assembler::deployer(runtime);
    out.init_code_hash = keccak256(out.init_code);
    out.runtime_size = runtime.size();
    return out;
  }

  // Constructor workload scales with an independent draw — the paper found
  // *no correlation* between bytecode size and deployment time (Fig 4), so
  // the work term must not follow the size term. Loop lengths are sized so
  // the 32 MHz cycle model lands at the paper's Table II scale: one loop
  // iteration costs ~3.2k modeled cycles (0.1 ms), so the mix below yields
  // a ~215 ms mean with a multi-second heavy tail.
  const unsigned work_class = static_cast<unsigned>(rng() % 100);
  Assembler prologue;
  unsigned storage_inits = 0;
  unsigned hash_ops = 0;
  unsigned depth = 2 + static_cast<unsigned>(rng() % 4);

  if (work_class < 65) {
    // Light constructors (~2M cycles): one init loop, one expression.
    emit_storage_loop(prologue, rng, 40 + rng() % 960);
    storage_inits = 1;
    emit_expression(prologue, rng, depth);
    prologue.op(Opcode::POP);
  } else if (work_class < 95) {
    // Medium (~8M cycles): longer loop + hashing + memory staging + a
    // moderately deep argument stack.
    emit_storage_loop(prologue, rng, 800 + rng() % 3200);
    emit_hash_block(prologue, rng);
    emit_memory_block(prologue, rng);
    depth = 6 + static_cast<unsigned>(rng() % 10);
    emit_deep_stack(prologue, rng, depth);
    storage_inits = 2;
    hash_ops = 1;
  } else {
    // Heavy tail (tens of millions of cycles, the Fig 4 multi-second
    // outliers): log-uniform loop length, repeated hashing, deep stacks
    // up to the Fig 3c maximum of ~41 elements.
    const unsigned scale = 1u << (rng() % 6);  // 1..32
    emit_storage_loop(prologue, rng, 2000 * scale + rng() % 2000);
    const unsigned rounds = 2 + static_cast<unsigned>(rng() % 4);
    for (unsigned r = 0; r < rounds; ++r) {
      emit_hash_block(prologue, rng);
    }
    depth = 20 + static_cast<unsigned>(rng() % 22);
    emit_deep_stack(prologue, rng, depth);
    storage_inits = 1;
    hash_ops = rounds;
  }

  const std::size_t prologue_size = prologue.size();
  const std::size_t runtime_target =
      target > prologue_size + 64 ? target - prologue_size - 15 : 32;
  Bytes runtime = make_runtime(rng, runtime_target);

  out.runtime_size = runtime.size();
  out.storage_inits = storage_inits;
  out.hash_ops = hash_ops;
  out.expression_depth = depth;
  out.init_code = Assembler::deployer(runtime, prologue.take());

  // A quarter of real deployments carry ABI-encoded constructor arguments
  // appended after the runtime. They inflate the *bytecode* size without
  // touching deployment *memory* — the paper's Fig 3b outliers that exceed
  // 8 KB of code yet still deploy.
  if (rng() % 100 < 25) {
    const std::size_t arg_words = 1 + rng() % 64;
    for (std::size_t w = 0; w < arg_words; ++w) {
      const auto word = U256{rng(), rng(), rng(), rng()}.to_word();
      out.init_code.insert(out.init_code.end(), word.begin(), word.end());
    }
  }
  out.init_code_hash = keccak256(out.init_code);
  return out;
}

std::vector<Contract> Generator::make_all() const {
  std::vector<Contract> out;
  out.reserve(config_.count);
  for (std::size_t i = 0; i < config_.count; ++i) {
    out.push_back(make(i));
  }
  return out;
}

struct DeviceDeployer::Impl {
  evm::VmConfig config;
  channel::SensorBank sensors;
  evm::Vm vm;

  Impl(const evm::VmConfig& cfg, std::shared_ptr<evm::CodeCache> cache)
      : config(cfg), vm(cfg, std::move(cache)) {
    sensors.set_reading(7, U256{22});
  }
};

DeviceDeployer::DeviceDeployer(const evm::VmConfig& config,
                               std::shared_ptr<evm::CodeCache> code_cache)
    : impl_(std::make_unique<Impl>(config, std::move(code_cache))) {}

std::string_view DeviceDeployer::engine_name() const {
  return impl_->vm.engine_name();
}

DeviceDeployer::~DeviceDeployer() = default;
DeviceDeployer::DeviceDeployer(DeviceDeployer&&) noexcept = default;
DeviceDeployer& DeviceDeployer::operator=(DeviceDeployer&&) noexcept =
    default;

DeploymentOutcome DeviceDeployer::deploy(const Contract& contract) {
  // Fresh host per contract: deployments must not see each other's
  // storage/contract tables (all corpus deployments run as account 0x01).
  channel::DeviceHost host(impl_->sensors, impl_->config);

  evm::Message msg;
  msg.self[19] = 0x01;
  msg.code = contract.init_code;
  if (contract.init_code_hash != Hash256{}) {
    msg.code_hash = contract.init_code_hash;
  }
  msg.gas = 50'000'000;
  const evm::ExecResult r = impl_->vm.execute(host, msg);

  DeploymentOutcome out;
  out.status = r.status;
  out.success = r.ok() && !r.output.empty();
  out.contract_size = contract.init_code.size();
  out.memory_used = r.stats.peak_memory;
  out.max_stack_pointer = r.stats.max_stack_pointer;
  out.stack_bytes = r.stats.max_stack_pointer * 32;
  // Fixed per-deployment overhead on the mote: receiving the bytecode into
  // the code buffer, hashing it for the side-chain anchor (SW keccak), and
  // installing the runtime — the paper's 5 ms deployment-time floor.
  constexpr std::uint64_t kDeployOverheadCycles = 160'000;
  out.mcu_cycles = r.stats.mcu_cycles + kDeployOverheadCycles;
  out.deploy_time_ms = static_cast<double>(out.mcu_cycles) /
                       device::Cc2538Spec::kCyclesPerMs;
  return out;
}

DeploymentOutcome deploy_on_device(const Contract& contract,
                                   const evm::VmConfig& config,
                                   std::shared_ptr<evm::CodeCache> code_cache) {
  return DeviceDeployer{config, std::move(code_cache)}.deploy(contract);
}

namespace {

CorpusStats::Summary summarize_values(const std::vector<double>& values) {
  CorpusStats::Summary s;
  if (values.empty()) return s;
  s.max = *std::max_element(values.begin(), values.end());
  s.min = *std::min_element(values.begin(), values.end());
  double sum = 0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());
  double var = 0;
  for (double v : values) var += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(values.size()));
  return s;
}

}  // namespace

CorpusStats summarize(const std::vector<DeploymentOutcome>& outcomes) {
  CorpusStats stats;
  std::vector<double> sizes;
  std::vector<double> sps;
  std::vector<double> stack_bytes;
  std::vector<double> memories;
  std::vector<double> times;
  for (const auto& o : outcomes) {
    if (!o.success) {
      ++stats.failed;
      continue;
    }
    ++stats.deployed;
    sizes.push_back(static_cast<double>(o.contract_size));
    sps.push_back(static_cast<double>(o.max_stack_pointer));
    stack_bytes.push_back(static_cast<double>(o.stack_bytes));
    memories.push_back(static_cast<double>(o.memory_used));
    times.push_back(o.deploy_time_ms);
  }
  stats.success_rate =
      outcomes.empty()
          ? 0
          : 100.0 * static_cast<double>(stats.deployed) /
                static_cast<double>(outcomes.size());
  stats.contract_size = summarize_values(sizes);
  stats.stack_pointer = summarize_values(sps);
  stats.stack_bytes = summarize_values(stack_bytes);
  stats.memory_bytes = summarize_values(memories);
  stats.deploy_time_ms = summarize_values(times);
  return stats;
}

}  // namespace tinyevm::corpus
