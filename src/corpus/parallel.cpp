#include "corpus/parallel.hpp"

#include <algorithm>
#include <atomic>

#include "evm/code_cache.hpp"
#include "runtime/thread_pool.hpp"

namespace tinyevm::corpus {

std::vector<DeploymentOutcome> deploy_corpus_parallel(
    runtime::ThreadPool& pool, const Generator& generator,
    const evm::VmConfig& vm_config, const ParallelDeployConfig& config) {
  const std::size_t count = generator.config().count;
  std::vector<DeploymentOutcome> outcomes(count);
  if (count == 0) return outcomes;

  evm::VmConfig worker_config = vm_config;
  std::shared_ptr<evm::CodeCache> cache;
  if (config.use_translation_cache) {
    cache = config.code_cache ? config.code_cache
                              : evm::CodeCache::shared_default();
  } else {
    // Raw engine: decodes per run, never touches the translation cache.
    worker_config.engine = evm::kRawEngine;
  }

  const std::size_t chunk = std::max<std::size_t>(1, config.chunk);
  const std::size_t workers = std::max<std::size_t>(
      1, config.workers != 0 ? config.workers : pool.thread_count());

  std::atomic<std::size_t> cursor{0};
  runtime::run_tasks(pool, workers, [&](std::size_t) {
    DeviceDeployer deployer{worker_config, cache};
    for (;;) {
      const std::size_t begin =
          cursor.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= count) return;
      const std::size_t end = std::min(count, begin + chunk);
      for (std::size_t i = begin; i < end; ++i) {
        outcomes[i] = deployer.deploy(generator.make(i));
      }
    }
  });
  return outcomes;
}

std::vector<DeploymentOutcome> deploy_corpus_parallel(
    const Generator& generator, const evm::VmConfig& vm_config,
    const ParallelDeployConfig& config) {
  runtime::ThreadPool pool{config.workers};
  return deploy_corpus_parallel(pool, generator, vm_config, config);
}

}  // namespace tinyevm::corpus
