// ---------------------------------------------------------------------------
// Pre-decoded interpreter loop (the PredecodedEngine / ElidedEngine body)
// ---------------------------------------------------------------------------
//
// Same token-threaded structure and register-cached state as the raw loop
// in engine_raw.cpp, but iterating over a DecodedProgram: PUSH immediates
// are already U256 values, dynamic jumps resolve through the translation's
// pc->index map instead of a per-run bitmap, and the peephole
// superinstructions (PushBin/DupBin/SwapBin/PushJump/PushJumpI) execute
// fused pairs in one dispatch. Every fused handler accounts
// gas/cycles/ops and the transient stack high-water exactly as if the two
// opcodes ran separately, and falls back to executing only the first
// opcode when the second would trip gas, the watchdog, or a stack limit —
// the second instruction is still in the stream, so the fallback path and
// all failure points are bit-identical to the raw loop (held to that by
// tests/evm_dispatch_test.cpp).
//
// The one engine-strategy knob is Frame::elide_: ElidedEngine sets it and
// the loop then runs the analyzer's span fast path at block leaders;
// PredecodedEngine leaves it off and every instruction stays checked.
//
// This TU builds with -fno-crossjumping -fno-gcse under GCC so the
// replicated dispatch tails stay distinct (see TINYEVM_NEXT below).

#include <limits>

#include "evm/frame.hpp"

namespace tinyevm::evm {

void Frame::run_decoded() {
  const DecodedInst* const insts = decoded_->insts.data();
  const std::uint64_t inst_count = decoded_->insts.size();
  const std::uint32_t* const jmap = decoded_->jump_map.data();
  // Jump bounds come from the translation itself, not msg_.code: the two
  // are equal whenever the cache key was honest, and using the map's own
  // extent keeps a stale Message::code_hash memory-safe (a wrong
  // translation, never an out-of-bounds jump_map read).
  const std::uint64_t code_size = decoded_->code_size;
  const bool metered = profile_.metering;
  const std::uint64_t ops_cap =
      profile_.max_ops == 0 ? std::numeric_limits<std::uint64_t>::max()
                            : profile_.max_ops;
  std::uint64_t ip = 0;
  const DecodedInst* e = nullptr;
  std::int64_t gas = gas_;
  std::uint64_t cyc = cycles_;
  std::uint64_t ops = ops_;
  U256* const sb = stack_.base();  // sb[-1] is a scratch word (see Stack)
  const std::size_t slimit = stack_.limit();
  std::size_t sp = stack_.size();
  std::size_t smax = stack_.max_pointer();
  U256 tos = sp != 0 ? sb[sp - 1] : U256{};
  // Check-elision state: span summaries the translate-time analyzer
  // attached to the translation. One bool folds the engine gate and the
  // no-spans case out of the JumpDest hot path.
  const ElideSpan* const spans = decoded_->spans.data();
  const bool elide = elide_ && !decoded_->spans.empty();

#define TINYEVM_SYNCED(expr)        \
  do {                              \
    gas_ = gas;                     \
    cycles_ = cyc;                  \
    sb[sp - 1] = tos;               \
    stack_.set_state(sp, smax);     \
    expr;                           \
    gas = gas_;                     \
    cyc = cycles_;                  \
    sp = stack_.size();             \
    smax = stack_.max_pointer();    \
    tos = sb[sp - 1];               \
  } while (0)

#define TINYEVM_PUSH(v)             \
  do {                              \
    if (sp >= slimit) {             \
      fail(Status::StackOverflow);  \
    } else {                        \
      sb[sp - 1] = tos;             \
      tos = (v);                    \
      ++sp;                         \
      if (sp > smax) smax = sp;     \
    }                               \
  } while (0)

// Identical accounting order to the raw prologue: validity short-circuit,
// folded static gas, cycle model, watchdog, instruction-pointer advance.
#define TINYEVM_PROLOGUE()                                                  \
  if (done_ || ip >= inst_count) goto run_exit;                             \
  e = &insts[ip];                                                           \
  if (static_cast<std::uint8_t>(e->handler) <=                              \
      static_cast<std::uint8_t>(Handler::Forbidden)) {                      \
    fail(e->handler == Handler::Undefined ? Status::InvalidOpcode           \
                                          : Status::ForbiddenOpcode);       \
    goto run_exit;                                                          \
  }                                                                         \
  if (metered) {                                                            \
    gas -= e->gas;                                                          \
    if (gas < 0) {                                                          \
      fail(Status::OutOfGas);                                               \
      goto run_exit;                                                        \
    }                                                                       \
  }                                                                         \
  cyc += e->cycles;                                                         \
  if (++ops > ops_cap) {                                                    \
    fail(Status::WatchdogExpired);                                          \
    goto run_exit;                                                          \
  }                                                                         \
  ++ip;

// The run-time half of the fusion contract: the second opcode of a pair
// executes only if its prologue could not fail — gas affordable and the
// watchdog not at the boundary (stack preconditions are checked by each
// fused handler). Mirrors the raw loop's DUP1+MUL/ADD fusion guard.
#define TINYEVM_FUSE_OK() ((!metered || gas >= e->gas2) && ops < ops_cap)

// Charges the fused second opcode exactly as its own prologue would.
#define TINYEVM_FUSE_CHARGE()       \
  do {                              \
    if (metered) gas -= e->gas2;    \
    cyc += e->cycles2;              \
    ++ops;                          \
  } while (0)

// Applies a fused binary operator in place: `tos = first ⊗ tos`. The
// hottest operators (ADD/MUL/SUB and the bitwise trio) are special-cased
// so the squaring/doubling/counting patterns stay entirely in the tos
// registers, exactly like the raw loop's DUP1+MUL/ADD fusion; the long
// tail goes through the generic apply_fused_bin switch. Parameterized on
// the second-opcode handler so both the checked superinstruction handlers
// (which read e->aux2) and the span interpreter (bi->aux2) share it.
#define TINYEVM_APPLY_BIN(op2v, first)                   \
  do {                                                   \
    const Handler op2 = (op2v);                          \
    if (op2 == Handler::Add) {                           \
      tos.add_assign(first);                             \
    } else if (op2 == Handler::Mul) {                    \
      tos.mul_assign(first);                             \
    } else if (op2 == Handler::Sub) {                    \
      tos.rsub_assign(first); /* tos = first - tos */    \
    } else if (op2 == Handler::Xor) {                    \
      tos.xor_assign(first);                             \
    } else if (op2 == Handler::And) {                    \
      tos.and_assign(first);                             \
    } else if (op2 == Handler::Or) {                     \
      tos.or_assign(first);                              \
    } else {                                             \
      U256 fused_a = (first);                            \
      apply_fused_bin(op2, fused_a, tos);                \
      tos = fused_a;                                     \
    }                                                    \
  } while (0)

#define TINYEVM_FUSED_APPLY(first) \
  TINYEVM_APPLY_BIN(static_cast<Handler>(e->aux2), first)

// --- check-elided span interpreter (see analysis.hpp) ---------------------
//
// The bodies below are the checked handlers with their guards deleted and
// nothing else changed: the span entry test proves every per-instruction
// stack/gas/watchdog branch in the run would pass, so eliding them cannot
// change results. sb[sp - 1] stores into the scratch word when sp == 0
// (legal; see Stack), and smax is settled once at entry from the proven
// transient peak.
#define TINYEVM_SPAN_BIN(name, body) \
  case Handler::name: {              \
    const U256& s = sb[sp - 2];      \
    body;                            \
    --sp;                            \
  } break;

#define TINYEVM_SPAN_PUSH(v) \
  sb[sp - 1] = tos;          \
  tos = (v);                 \
  ++sp;                      \
  break;

// One test per block: when the whole elidable run after a leader is
// provably free of stack/gas/watchdog faults, bulk-charge its summary and
// execute the body with per-instruction checks compiled out. When the
// test fails, nothing happens — the checked handlers run as before and
// reproduce the exact failure point, so status, gas, stats, and logs are
// bit-identical either way. Every charge below equals the sum of the
// per-instruction prologues it replaces (fused pairs count both halves),
// and the entry conditions imply each replaced check passes:
//   sp >= stack_require        -> no underflow anywhere in the run
//   sp + stack_peak <= slimit  -> no overflow at any transient height
//   gas >= static_gas          -> every prefix of the run is affordable
//   ops + span.ops <= ops_cap  -> the watchdog stays clear of every ++ops
#define TINYEVM_TRY_SPAN(span_index)                                        \
  do {                                                                      \
    const ElideSpan& bs = spans[span_index];                                \
    if (sp >= bs.stack_require && bs.stack_peak <= slimit - sp &&           \
        (!metered || gas >= static_cast<std::int64_t>(bs.static_gas)) &&    \
        bs.ops <= ops_cap - ops) {                                          \
      if (metered) gas -= static_cast<std::int64_t>(bs.static_gas);         \
      cyc += bs.cycles;                                                     \
      ops += bs.ops;                                                        \
      if (sp + bs.stack_peak > smax) smax = sp + bs.stack_peak;             \
      const DecodedInst* bi = insts + bs.first;                             \
      const DecodedInst* const bi_end = bi + bs.count;                      \
      for (; bi != bi_end; ++bi) {                                          \
        switch (bi->handler) {                                              \
          TINYEVM_SPAN_BIN(Add, tos.add_assign(s))                          \
          TINYEVM_SPAN_BIN(Mul, tos.mul_assign(s))                          \
          TINYEVM_SPAN_BIN(Sub, tos.sub_assign(s))                          \
          TINYEVM_SPAN_BIN(Div, tos = tos / s)                              \
          TINYEVM_SPAN_BIN(Sdiv, tos = U256::sdiv(tos, s))                  \
          TINYEVM_SPAN_BIN(Mod, tos = tos % s)                              \
          TINYEVM_SPAN_BIN(Smod, tos = U256::smod(tos, s))                  \
          TINYEVM_SPAN_BIN(Lt, tos = U256{tos < s ? 1ULL : 0ULL})           \
          TINYEVM_SPAN_BIN(Gt, tos = U256{tos > s ? 1ULL : 0ULL})           \
          TINYEVM_SPAN_BIN(Slt,                                             \
                           tos = U256{U256::slt(tos, s) ? 1ULL : 0ULL})     \
          TINYEVM_SPAN_BIN(Sgt,                                             \
                           tos = U256{U256::sgt(tos, s) ? 1ULL : 0ULL})     \
          TINYEVM_SPAN_BIN(Eq, tos = U256{tos == s ? 1ULL : 0ULL})          \
          TINYEVM_SPAN_BIN(And, tos.and_assign(s))                          \
          TINYEVM_SPAN_BIN(Or, tos.or_assign(s))                            \
          TINYEVM_SPAN_BIN(Xor, tos.xor_assign(s))                          \
          TINYEVM_SPAN_BIN(Byte, tos = U256::byte(tos, s))                  \
          TINYEVM_SPAN_BIN(Shl, {                                           \
            const bool in_range = tos.fits_u64() && tos.as_u64() < 256;     \
            const unsigned sh = static_cast<unsigned>(tos.as_u64());        \
            if (in_range) {                                                 \
              tos = s;                                                      \
              tos.shl_assign(sh);                                           \
            } else {                                                        \
              tos = U256{};                                                 \
            }                                                               \
          })                                                                \
          TINYEVM_SPAN_BIN(Shr, {                                           \
            const bool in_range = tos.fits_u64() && tos.as_u64() < 256;     \
            const unsigned sh = static_cast<unsigned>(tos.as_u64());        \
            if (in_range) {                                                 \
              tos = s;                                                      \
              tos.shr_assign(sh);                                           \
            } else {                                                        \
              tos = U256{};                                                 \
            }                                                               \
          })                                                                \
          TINYEVM_SPAN_BIN(Sar, tos = U256::sar(tos, s))                    \
          TINYEVM_SPAN_BIN(SignExtend, tos = U256::signextend(tos, s))      \
          case Handler::AddMod:                                             \
            tos = U256::addmod(tos, sb[sp - 2], sb[sp - 3]);                \
            sp -= 2;                                                        \
            break;                                                          \
          case Handler::MulMod:                                             \
            tos = U256::mulmod(tos, sb[sp - 2], sb[sp - 3]);                \
            sp -= 2;                                                        \
            break;                                                          \
          case Handler::IsZero:                                             \
            tos = U256{tos.is_zero() ? 1ULL : 0ULL};                        \
            break;                                                          \
          case Handler::Not:                                                \
            tos.not_assign();                                               \
            break;                                                          \
          case Handler::Address:                                            \
            TINYEVM_SPAN_PUSH(U256::from_bytes(msg_.self))                  \
          case Handler::Origin:                                             \
            TINYEVM_SPAN_PUSH(U256::from_bytes(msg_.origin))                \
          case Handler::Caller:                                             \
            TINYEVM_SPAN_PUSH(U256::from_bytes(msg_.caller))                \
          case Handler::CallValue:                                          \
            TINYEVM_SPAN_PUSH(msg_.value)                                   \
          case Handler::CallDataLoad:                                       \
            tos = calldata_word(tos);                                       \
            break;                                                          \
          case Handler::CallDataSize:                                       \
            TINYEVM_SPAN_PUSH(U256{msg_.data.size()})                       \
          case Handler::CodeSize:                                           \
            TINYEVM_SPAN_PUSH(U256{msg_.code.size()})                       \
          case Handler::ReturnDataSize:                                     \
            TINYEVM_SPAN_PUSH(U256{return_data_.size()})                    \
          case Handler::GasPrice:                                           \
            TINYEVM_SPAN_PUSH(U256{1})                                      \
          case Handler::Pop:                                                \
            --sp;                                                           \
            tos = sb[sp - 1];                                               \
            break;                                                          \
          case Handler::Pc:                                                 \
            TINYEVM_SPAN_PUSH(U256{bi->pc})                                 \
          case Handler::MSize:                                              \
            TINYEVM_SPAN_PUSH(U256{memory_.size()})                         \
          case Handler::Push:                                               \
            TINYEVM_SPAN_PUSH(bi->imm)                                      \
          case Handler::Dup: {                                              \
            const unsigned n = bi->aux;                                     \
            sb[sp - 1] = tos; /* spill; DUP1 keeps tos as-is */             \
            if (n > 1) tos = sb[sp - n];                                    \
            ++sp;                                                           \
          } break;                                                          \
          case Handler::Swap: {                                             \
            const unsigned n = bi->aux;                                     \
            U256& other = sb[sp - 1 - n];                                   \
            const U256 t = other;                                           \
            other = tos;                                                    \
            tos = t;                                                        \
          } break;                                                          \
          case Handler::PushBin:                                            \
            TINYEVM_APPLY_BIN(static_cast<Handler>(bi->aux2), bi->imm);     \
            ++bi; /* the fallback continuation never runs fused */          \
            break;                                                          \
          case Handler::DupBin: {                                           \
            const unsigned n = bi->aux;                                     \
            const U256& dup_val = n == 1 ? tos : sb[sp - n];                \
            TINYEVM_APPLY_BIN(static_cast<Handler>(bi->aux2), dup_val);     \
            ++bi;                                                           \
          } break;                                                          \
          case Handler::SwapBin:                                            \
            TINYEVM_APPLY_BIN(static_cast<Handler>(bi->aux2), sb[sp - 2]);  \
            --sp;                                                           \
            ++bi;                                                           \
            break;                                                          \
          default:                                                          \
            break; /* unreachable: spans hold elidable handlers only */     \
        }                                                                   \
      }                                                                     \
      /* Tail: the block's terminating jump, when its target is statically \
         known. Fused PUSH+JUMP/JUMPI mirror their handlers with the       \
         guards hoisted into the entry test (the transient push's          \
         high-water is folded into stack_peak above). DynJump/DynJumpI are \
         plain JUMP/JUMPI whose operand the translate-time dataflow proved \
         constant: the destination on the stack always equals tj->target's \
         pc, so the jmap lookup and validity check are elided too (the     \
         checked handlers keep resolving from the live stack — the fuzz    \
         oracle diffs the two paths). */                                   \
      if (bs.tail == kSpanTailNone) {                                       \
        ip = bs.first + bs.count;                                           \
      } else if (bs.tail == kSpanTailJump || bs.tail == kSpanTailJumpI) {   \
        const DecodedInst* const tj = insts + bs.first + bs.count;          \
        if (bs.tail == kSpanTailJumpI) {                                    \
          const bool taken = !tos.is_zero();                                \
          --sp;                                                             \
          tos = sb[sp - 1];                                                 \
          ip = taken ? tj->target : bs.first + bs.count + 2;                \
        } else {                                                            \
          ip = tj->target;                                                  \
        }                                                                   \
      } else {                                                              \
        const DecodedInst* const tj = insts + bs.first + bs.count;          \
        if (bs.tail == kSpanTailDynJumpI) {                                 \
          const bool taken = !sb[sp - 2].is_zero();                         \
          sp -= 2;                                                          \
          tos = sb[sp - 1];                                                 \
          ip = taken ? tj->target : bs.first + bs.count + 1;                \
        } else {                                                            \
          --sp;                                                             \
          tos = sb[sp - 1];                                                 \
          ip = tj->target;                                                  \
        }                                                                   \
      }                                                                     \
    }                                                                       \
  } while (0)

  // The entry block has no JUMPDEST to hang its span on; test it before
  // the first dispatch (ip is still 0, so a pass skips straight past the
  // covered run).
  if (elide && decoded_->entry_span != kNoJumpTarget) {
    TINYEVM_TRY_SPAN(decoded_->entry_span);
  }

#if TINYEVM_COMPUTED_GOTO
  static const void* const kJump[] = {
#define TINYEVM_H_LABEL(name) &&h_##name,
      TINYEVM_HANDLER_LIST(TINYEVM_H_LABEL)
#undef TINYEVM_H_LABEL
  };
#define TINYEVM_OP(name) h_##name:
#define TINYEVM_NEXT                                           \
  do {                                                         \
    TINYEVM_PROLOGUE()                                         \
    goto *kJump[static_cast<std::uint8_t>(e->handler)];        \
  } while (0)
  TINYEVM_NEXT;
#else
#define TINYEVM_OP(name) case Handler::name:
#define TINYEVM_NEXT break
  for (;;) {
    TINYEVM_PROLOGUE()
    switch (e->handler) {
#endif

  // Unreachable in practice — the prologue short-circuits these two — but
  // kept as real handlers so the jump table is total.
  TINYEVM_OP(Undefined) { fail(Status::InvalidOpcode); }
  TINYEVM_NEXT;
  TINYEVM_OP(Forbidden) { fail(Status::ForbiddenOpcode); }
  TINYEVM_NEXT;

  TINYEVM_OP(Stop) { done_ = true; }
  TINYEVM_NEXT;

#define TINYEVM_BINARY(body)                    \
  {                                             \
    if (sp < 2) {                               \
      fail(Status::StackUnderflow);             \
      TINYEVM_NEXT;                             \
    }                                           \
    const U256& s = sb[sp - 2];                 \
    body;                                       \
    --sp;                                       \
  }                                             \
  TINYEVM_NEXT

  TINYEVM_OP(Add) TINYEVM_BINARY(tos.add_assign(s));
  TINYEVM_OP(Mul) TINYEVM_BINARY(tos.mul_assign(s));
  TINYEVM_OP(Sub) TINYEVM_BINARY(tos.sub_assign(s));  // tos = top - second
  TINYEVM_OP(Div) TINYEVM_BINARY(tos = tos / s);
  TINYEVM_OP(Sdiv) TINYEVM_BINARY(tos = U256::sdiv(tos, s));
  TINYEVM_OP(Mod) TINYEVM_BINARY(tos = tos % s);
  TINYEVM_OP(Smod) TINYEVM_BINARY(tos = U256::smod(tos, s));
  TINYEVM_OP(Lt) TINYEVM_BINARY(tos = U256{tos < s ? 1ULL : 0ULL});
  TINYEVM_OP(Gt) TINYEVM_BINARY(tos = U256{tos > s ? 1ULL : 0ULL});
  TINYEVM_OP(Slt) TINYEVM_BINARY(tos = U256{U256::slt(tos, s) ? 1ULL : 0ULL});
  TINYEVM_OP(Sgt) TINYEVM_BINARY(tos = U256{U256::sgt(tos, s) ? 1ULL : 0ULL});
  TINYEVM_OP(Eq) TINYEVM_BINARY(tos = U256{tos == s ? 1ULL : 0ULL});
  TINYEVM_OP(And) TINYEVM_BINARY(tos.and_assign(s));
  TINYEVM_OP(Or) TINYEVM_BINARY(tos.or_assign(s));
  TINYEVM_OP(Xor) TINYEVM_BINARY(tos.xor_assign(s));
  TINYEVM_OP(Byte) TINYEVM_BINARY(tos = U256::byte(tos, s));
  TINYEVM_OP(Shl) TINYEVM_BINARY({
    const bool in_range = tos.fits_u64() && tos.as_u64() < 256;
    const unsigned n = static_cast<unsigned>(tos.as_u64());
    if (in_range) {
      tos = s;
      tos.shl_assign(n);
    } else {
      tos = U256{};
    }
  });
  TINYEVM_OP(Shr) TINYEVM_BINARY({
    const bool in_range = tos.fits_u64() && tos.as_u64() < 256;
    const unsigned n = static_cast<unsigned>(tos.as_u64());
    if (in_range) {
      tos = s;
      tos.shr_assign(n);
    } else {
      tos = U256{};
    }
  });
  TINYEVM_OP(Sar) TINYEVM_BINARY(tos = U256::sar(tos, s));
  TINYEVM_OP(SignExtend) TINYEVM_BINARY(tos = U256::signextend(tos, s));

#undef TINYEVM_BINARY

  TINYEVM_OP(AddMod) {
    if (sp < 3) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    tos = U256::addmod(tos, sb[sp - 2], sb[sp - 3]);
    sp -= 2;
  }
  TINYEVM_NEXT;
  TINYEVM_OP(MulMod) {
    if (sp < 3) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    tos = U256::mulmod(tos, sb[sp - 2], sb[sp - 3]);
    sp -= 2;
  }
  TINYEVM_NEXT;

  TINYEVM_OP(Exp) { TINYEVM_SYNCED(op_exp()); }
  TINYEVM_NEXT;

  TINYEVM_OP(IsZero) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    tos = U256{tos.is_zero() ? 1ULL : 0ULL};
  }
  TINYEVM_NEXT;
  TINYEVM_OP(Not) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    tos.not_assign();
  }
  TINYEVM_NEXT;

  TINYEVM_OP(Sensor) { TINYEVM_SYNCED(op_sensor()); }
  TINYEVM_NEXT;
  TINYEVM_OP(Sha3) { TINYEVM_SYNCED(op_sha3()); }
  TINYEVM_NEXT;

  // --- environment ---
  TINYEVM_OP(Address) { TINYEVM_PUSH(U256::from_bytes(msg_.self)); }
  TINYEVM_NEXT;
  TINYEVM_OP(Origin) { TINYEVM_PUSH(U256::from_bytes(msg_.origin)); }
  TINYEVM_NEXT;
  TINYEVM_OP(Caller) { TINYEVM_PUSH(U256::from_bytes(msg_.caller)); }
  TINYEVM_NEXT;
  TINYEVM_OP(CallValue) { TINYEVM_PUSH(msg_.value); }
  TINYEVM_NEXT;
  TINYEVM_OP(Balance) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    tos = host_.balance(to_address(tos));
  }
  TINYEVM_NEXT;
  TINYEVM_OP(CallDataLoad) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    tos = calldata_word(tos);
  }
  TINYEVM_NEXT;
  TINYEVM_OP(CallDataSize) { TINYEVM_PUSH(U256{msg_.data.size()}); }
  TINYEVM_NEXT;
  TINYEVM_OP(CodeSize) { TINYEVM_PUSH(U256{msg_.code.size()}); }
  TINYEVM_NEXT;
  TINYEVM_OP(ReturnDataSize) { TINYEVM_PUSH(U256{return_data_.size()}); }
  TINYEVM_NEXT;
  TINYEVM_OP(CallDataCopy) { TINYEVM_SYNCED(op_copy(msg_.data, false)); }
  TINYEVM_NEXT;
  TINYEVM_OP(CodeCopy) { TINYEVM_SYNCED(op_copy(msg_.code, false)); }
  TINYEVM_NEXT;
  TINYEVM_OP(ReturnDataCopy) { TINYEVM_SYNCED(op_copy(return_data_, false)); }
  TINYEVM_NEXT;
  TINYEVM_OP(GasPrice) { TINYEVM_PUSH(U256{1}); }  // flat simulated price
  TINYEVM_NEXT;
  TINYEVM_OP(ExtCodeSize) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    tos = U256{host_.code_at(to_address(tos)).size()};
  }
  TINYEVM_NEXT;
  TINYEVM_OP(ExtCodeCopy) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    const Address addr = to_address(tos);
    --sp;
    tos = sb[sp - 1];
    TINYEVM_SYNCED(op_copy(host_.code_at(addr), true));
  }
  TINYEVM_NEXT;

  // --- block data ---
  TINYEVM_OP(BlockHash) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    tos = tos.fits_u64() ? U256::from_bytes(host_.block_hash(tos.as_u64()))
                         : U256{};
  }
  TINYEVM_NEXT;
  TINYEVM_OP(Coinbase) {
    TINYEVM_PUSH(U256::from_bytes(host_.block_info().coinbase));
  }
  TINYEVM_NEXT;
  TINYEVM_OP(Timestamp) { TINYEVM_PUSH(U256{host_.block_info().timestamp}); }
  TINYEVM_NEXT;
  TINYEVM_OP(Number) { TINYEVM_PUSH(U256{host_.block_info().number}); }
  TINYEVM_NEXT;
  TINYEVM_OP(Difficulty) { TINYEVM_PUSH(host_.block_info().difficulty); }
  TINYEVM_NEXT;
  TINYEVM_OP(GasLimit) { TINYEVM_PUSH(U256{host_.block_info().gas_limit}); }
  TINYEVM_NEXT;

  // --- stack / memory / storage / control flow ---
  TINYEVM_OP(Pop) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    --sp;
    tos = sb[sp - 1];
  }
  TINYEVM_NEXT;
  TINYEVM_OP(MLoad) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    if (!tos.fits_u64()) {
      fail(metered ? Status::OutOfGas : Status::OutOfMemory);
      TINYEVM_NEXT;
    }
    const std::uint64_t off = tos.as_u64();
    bool ok = false;
    TINYEVM_SYNCED(ok = grow(off, 32));
    if (!ok) TINYEVM_NEXT;
    tos = memory_.load_word(off);
  }
  TINYEVM_NEXT;
  TINYEVM_OP(MStore) {
    if (sp < 2) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    if (!tos.fits_u64()) {
      fail(metered ? Status::OutOfGas : Status::OutOfMemory);
      TINYEVM_NEXT;
    }
    const std::uint64_t off = tos.as_u64();
    bool ok = false;
    TINYEVM_SYNCED(ok = grow(off, 32));
    if (!ok) TINYEVM_NEXT;
    memory_.store_word(off, sb[sp - 2]);
    sp -= 2;
    tos = sb[sp - 1];
  }
  TINYEVM_NEXT;
  TINYEVM_OP(MStore8) {
    if (sp < 2) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    if (!tos.fits_u64()) {
      fail(metered ? Status::OutOfGas : Status::OutOfMemory);
      TINYEVM_NEXT;
    }
    const std::uint64_t off = tos.as_u64();
    bool ok = false;
    TINYEVM_SYNCED(ok = grow(off, 1));
    if (!ok) TINYEVM_NEXT;
    memory_.store_byte(off, static_cast<std::uint8_t>(sb[sp - 2].limb(0) &
                                                      0xFF));
    sp -= 2;
    tos = sb[sp - 1];
  }
  TINYEVM_NEXT;
  TINYEVM_OP(SLoad) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    tos = host_.sload(msg_.self, tos);
  }
  TINYEVM_NEXT;
  TINYEVM_OP(SStore) { TINYEVM_SYNCED(op_sstore()); }
  TINYEVM_NEXT;
  TINYEVM_OP(Jump) {
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    // Same rule as the raw path's CodeAnalysis bitmap, resolved through
    // the translation's pc -> instruction-index map.
    const bool dest_ok = tos.fits_u64() && tos.as_u64() < code_size;
    const std::uint32_t t = dest_ok ? jmap[tos.as_u64()] : kNoJumpTarget;
    if (t == kNoJumpTarget) {
      fail(Status::InvalidJump);
      TINYEVM_NEXT;
    }
    if (msg_.jump_trace) {
      msg_.jump_trace->push_back(
          {e->pc, static_cast<std::uint32_t>(tos.as_u64())});
    }
    ip = t;
    --sp;
    tos = sb[sp - 1];
  }
  TINYEVM_NEXT;
  TINYEVM_OP(JumpI) {
    if (sp < 2) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    const bool taken = !sb[sp - 2].is_zero();
    const bool dest_ok = tos.fits_u64() && tos.as_u64() < code_size;
    const std::uint64_t dest = tos.as_u64();
    sp -= 2;
    tos = sb[sp - 1];
    if (taken) {
      const std::uint32_t t = dest_ok ? jmap[dest] : kNoJumpTarget;
      if (t == kNoJumpTarget) {
        fail(Status::InvalidJump);
        TINYEVM_NEXT;
      }
      if (msg_.jump_trace) {
        msg_.jump_trace->push_back({e->pc, static_cast<std::uint32_t>(dest)});
      }
      ip = t;
    }
  }
  TINYEVM_NEXT;
  TINYEVM_OP(Pc) { TINYEVM_PUSH(U256{e->pc}); }
  TINYEVM_NEXT;
  TINYEVM_OP(MSize) { TINYEVM_PUSH(U256{memory_.size()}); }
  TINYEVM_NEXT;
  TINYEVM_OP(Gas) {
    TINYEVM_PUSH(U256{static_cast<std::uint64_t>(gas > 0 ? gas : 0)});
  }
  TINYEVM_NEXT;
  TINYEVM_OP(JumpDest) {
    // Block leader: e->target carries the block's span index when the
    // analyzer proved the following run elidable (kNoJumpTarget
    // otherwise — the field is unused by JUMPDEST's own semantics).
    if (elide && e->target != kNoJumpTarget) TINYEVM_TRY_SPAN(e->target);
  }
  TINYEVM_NEXT;

  // --- stack families (index in e->aux) ---
  TINYEVM_OP(Push) { TINYEVM_PUSH(e->imm); }
  TINYEVM_NEXT;
  TINYEVM_OP(Dup) {
    // No run-time peephole here: the translator already fused every
    // DUP+operator pair into DupBin below.
    const unsigned n = e->aux;
    if (n > sp || sp >= slimit) {
      fail(sp >= slimit ? Status::StackOverflow : Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    sb[sp - 1] = tos;  // spill; DUP1 keeps tos as-is
    if (n > 1) tos = sb[sp - n];
    ++sp;
    if (sp > smax) smax = sp;
  }
  TINYEVM_NEXT;
  TINYEVM_OP(Swap) {
    const unsigned n = e->aux;
    if (n + 1 > sp) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    U256& other = sb[sp - 1 - n];
    const U256 t = other;
    other = tos;
    tos = t;
  }
  TINYEVM_NEXT;
  TINYEVM_OP(Log) { TINYEVM_SYNCED(op_log(e->aux)); }
  TINYEVM_NEXT;

  // --- superinstructions (fused pairs; see the fusion contract above) ---
  //
  // Each fused body runs `tos = first ⊗ tos` in place via
  // TINYEVM_FUSED_APPLY / TINYEVM_APPLY_BIN (defined with the span
  // machinery above).
  TINYEVM_OP(PushBin) {
    // PUSHn imm; BINOP — the immediate is the first (top) operand.
    if (sp >= 1 && sp < slimit && TINYEVM_FUSE_OK()) {
      TINYEVM_FUSE_CHARGE();
      ++ip;                              // consume the second instruction
      if (sp + 1 > smax) smax = sp + 1;  // the transient PUSH high-water
      TINYEVM_FUSED_APPLY(e->imm);
    } else {
      // Plain PUSH; the operator executes as its own instruction and
      // reproduces the exact unfused failure (underflow / gas / watchdog).
      TINYEVM_PUSH(e->imm);
    }
  }
  TINYEVM_NEXT;
  TINYEVM_OP(DupBin) {
    // DUPn; BINOP — the duplicated value is the first operand.
    const unsigned n = e->aux;
    if (n <= sp && sp < slimit && TINYEVM_FUSE_OK()) {
      TINYEVM_FUSE_CHARGE();
      ++ip;
      if (sp + 1 > smax) smax = sp + 1;
      // Aliasing is fine for n == 1: the *_assign ops are self-safe.
      const U256& dup_val = n == 1 ? tos : sb[sp - n];
      TINYEVM_FUSED_APPLY(dup_val);
    } else if (n > sp || sp >= slimit) {
      fail(sp >= slimit ? Status::StackOverflow : Status::StackUnderflow);
    } else {
      sb[sp - 1] = tos;
      if (n > 1) tos = sb[sp - n];
      ++sp;
      if (sp > smax) smax = sp;
    }
  }
  TINYEVM_NEXT;
  TINYEVM_OP(SwapBin) {
    // SWAP1; BINOP — the old second element becomes the first operand.
    if (sp >= 2 && TINYEVM_FUSE_OK()) {
      TINYEVM_FUSE_CHARGE();
      ++ip;
      TINYEVM_FUSED_APPLY(sb[sp - 2]);
      --sp;
    } else if (sp < 2) {
      fail(Status::StackUnderflow);
    } else {
      const U256 t = sb[sp - 2];
      sb[sp - 2] = tos;
      tos = t;
    }
  }
  TINYEVM_NEXT;
  TINYEVM_OP(PushJump) {
    // PUSHn dest; JUMP — target index resolved at translate time.
    if (sp < slimit && TINYEVM_FUSE_OK()) {
      TINYEVM_FUSE_CHARGE();
      if (sp + 1 > smax) smax = sp + 1;
      if (e->target == kNoJumpTarget) {
        fail(Status::InvalidJump);
        TINYEVM_NEXT;
      }
      ip = e->target;
    } else {
      TINYEVM_PUSH(e->imm);
    }
  }
  TINYEVM_NEXT;
  TINYEVM_OP(PushJumpI) {
    // PUSHn dest; JUMPI — the current top is the condition.
    if (sp >= 1 && sp < slimit && TINYEVM_FUSE_OK()) {
      TINYEVM_FUSE_CHARGE();
      if (sp + 1 > smax) smax = sp + 1;
      const bool taken = !tos.is_zero();
      --sp;
      tos = sb[sp - 1];
      if (taken) {
        if (e->target == kNoJumpTarget) {
          fail(Status::InvalidJump);
          TINYEVM_NEXT;
        }
        ip = e->target;
      } else {
        ++ip;  // fall through past the JUMPI instruction
      }
    } else {
      TINYEVM_PUSH(e->imm);
    }
  }
  TINYEVM_NEXT;

  // --- lifecycle ---
  TINYEVM_OP(Create) { TINYEVM_SYNCED(op_create()); }
  TINYEVM_NEXT;
  TINYEVM_OP(Call) { TINYEVM_SYNCED(op_call(CallKind::Call)); }
  TINYEVM_NEXT;
  TINYEVM_OP(CallCode) { TINYEVM_SYNCED(op_call(CallKind::CallCode)); }
  TINYEVM_NEXT;
  TINYEVM_OP(DelegateCall) { TINYEVM_SYNCED(op_call(CallKind::DelegateCall)); }
  TINYEVM_NEXT;
  TINYEVM_OP(StaticCall) { TINYEVM_SYNCED(op_call(CallKind::StaticCall)); }
  TINYEVM_NEXT;
  TINYEVM_OP(Return) { TINYEVM_SYNCED(op_return(false)); }
  TINYEVM_NEXT;
  TINYEVM_OP(Revert) { TINYEVM_SYNCED(op_return(true)); }
  TINYEVM_NEXT;
  TINYEVM_OP(Invalid) { fail(Status::InvalidOpcode); }
  TINYEVM_NEXT;
  TINYEVM_OP(SelfDestruct) {
    if (msg_.is_static) {
      fail(Status::StaticViolation);
      TINYEVM_NEXT;
    }
    if (sp < 1) {
      fail(Status::StackUnderflow);
      TINYEVM_NEXT;
    }
    const Address beneficiary = to_address(tos);
    --sp;
    tos = sb[sp - 1];
    host_.self_destruct(msg_.self, beneficiary);
    done_ = true;
  }
  TINYEVM_NEXT;

#if !TINYEVM_COMPUTED_GOTO
    }  // switch
  }  // for
#endif

run_exit:
  if (e != nullptr) pc_ = e->pc;
  gas_ = gas;
  cycles_ = cyc;
  ops_ = ops;
  sb[sp - 1] = tos;  // restore the flat-memory stack view
  stack_.set_state(sp, smax);

#undef TINYEVM_SYNCED
#undef TINYEVM_PUSH
#undef TINYEVM_PROLOGUE
#undef TINYEVM_FUSE_OK
#undef TINYEVM_FUSE_CHARGE
#undef TINYEVM_APPLY_BIN
#undef TINYEVM_FUSED_APPLY
#undef TINYEVM_SPAN_BIN
#undef TINYEVM_SPAN_PUSH
#undef TINYEVM_TRY_SPAN
#undef TINYEVM_OP
#undef TINYEVM_NEXT
}

}  // namespace tinyevm::evm
