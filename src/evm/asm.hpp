// Tiny EVM assembler — a fluent builder for bytecode used by the tests, the
// examples, the payment-channel template, and the synthetic corpus
// generator. Also provides a disassembler for diagnostics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "evm/opcodes.hpp"
#include "evm/state.hpp"
#include "u256/u256.hpp"

namespace tinyevm::evm {

class Assembler {
 public:
  /// Appends a bare opcode.
  Assembler& op(Opcode o) {
    code_.push_back(static_cast<std::uint8_t>(o));
    return *this;
  }
  Assembler& raw(std::uint8_t byte) {
    code_.push_back(byte);
    return *this;
  }
  Assembler& raw(std::span<const std::uint8_t> bytes) {
    code_.insert(code_.end(), bytes.begin(), bytes.end());
    return *this;
  }

  /// PUSHn with the smallest immediate that holds `v` (PUSH1 0 for zero).
  Assembler& push(const U256& v);
  Assembler& push(std::uint64_t v) { return push(U256{v}); }
  /// PUSH32 of a full word (addresses, hashes).
  Assembler& push_word(const U256& v);

  /// DUPn / SWAPn / LOGn helpers (n is 1-based for dup/swap, 0-based topics
  /// for log).
  Assembler& dup(unsigned n) {
    code_.push_back(static_cast<std::uint8_t>(0x80 + n - 1));
    return *this;
  }
  Assembler& swap(unsigned n) {
    code_.push_back(static_cast<std::uint8_t>(0x90 + n - 1));
    return *this;
  }
  Assembler& log(unsigned topics) {
    code_.push_back(static_cast<std::uint8_t>(0xa0 + topics));
    return *this;
  }

  /// Marks a JUMPDEST and returns its program counter.
  std::uint64_t label();
  /// PUSH2 of a label value (fits all code the 8 KB deployment limit
  /// allows).
  Assembler& push_label(std::uint64_t pc);

  /// SENSOR convenience: encodes (device, actuate) into the selector word,
  /// pushes parameter then selector, then the 0x0c opcode.
  Assembler& sensor(std::uint32_t device_id, bool actuate, const U256& param);

  [[nodiscard]] std::size_t size() const { return code_.size(); }
  [[nodiscard]] const Bytes& bytes() const { return code_; }
  [[nodiscard]] Bytes take() { return std::move(code_); }

  /// Standard deployment wrapper: a constructor that CODECOPYs `runtime`
  /// into memory and RETURNs it, followed by the runtime itself. `prologue`
  /// runs inside the constructor before the copy (storage init etc.).
  static Bytes deployer(const Bytes& runtime, const Bytes& prologue = {});

 private:
  Bytes code_;
};

/// One decoded instruction.
struct DisasmEntry {
  std::uint64_t pc = 0;
  std::uint8_t opcode = 0;
  std::string name;
  Bytes immediate;
};

/// Linear disassembly (PUSH immediates consumed; undefined bytes named
/// "UNDEFINED(0x..)").
std::vector<DisasmEntry> disassemble(std::span<const std::uint8_t> code);

}  // namespace tinyevm::evm
