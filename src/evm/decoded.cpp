#include "evm/decoded.hpp"

#include "evm/analysis.hpp"

namespace tinyevm::evm {

Handler exec_handler(std::uint8_t op) {
  if (is_push(op)) return Handler::Push;
  if (is_dup(op)) return Handler::Dup;
  if (is_swap(op)) return Handler::Swap;
  if (is_log(op)) return Handler::Log;
  switch (static_cast<Opcode>(op)) {
    case Opcode::STOP: return Handler::Stop;
    case Opcode::ADD: return Handler::Add;
    case Opcode::MUL: return Handler::Mul;
    case Opcode::SUB: return Handler::Sub;
    case Opcode::DIV: return Handler::Div;
    case Opcode::SDIV: return Handler::Sdiv;
    case Opcode::MOD: return Handler::Mod;
    case Opcode::SMOD: return Handler::Smod;
    case Opcode::ADDMOD: return Handler::AddMod;
    case Opcode::MULMOD: return Handler::MulMod;
    case Opcode::EXP: return Handler::Exp;
    case Opcode::SIGNEXTEND: return Handler::SignExtend;
    case Opcode::SENSOR: return Handler::Sensor;
    case Opcode::LT: return Handler::Lt;
    case Opcode::GT: return Handler::Gt;
    case Opcode::SLT: return Handler::Slt;
    case Opcode::SGT: return Handler::Sgt;
    case Opcode::EQ: return Handler::Eq;
    case Opcode::ISZERO: return Handler::IsZero;
    case Opcode::AND: return Handler::And;
    case Opcode::OR: return Handler::Or;
    case Opcode::XOR: return Handler::Xor;
    case Opcode::NOT: return Handler::Not;
    case Opcode::BYTE: return Handler::Byte;
    case Opcode::SHL: return Handler::Shl;
    case Opcode::SHR: return Handler::Shr;
    case Opcode::SAR: return Handler::Sar;
    case Opcode::SHA3: return Handler::Sha3;
    case Opcode::ADDRESS: return Handler::Address;
    case Opcode::BALANCE: return Handler::Balance;
    case Opcode::ORIGIN: return Handler::Origin;
    case Opcode::CALLER: return Handler::Caller;
    case Opcode::CALLVALUE: return Handler::CallValue;
    case Opcode::CALLDATALOAD: return Handler::CallDataLoad;
    case Opcode::CALLDATASIZE: return Handler::CallDataSize;
    case Opcode::CALLDATACOPY: return Handler::CallDataCopy;
    case Opcode::CODESIZE: return Handler::CodeSize;
    case Opcode::CODECOPY: return Handler::CodeCopy;
    case Opcode::GASPRICE: return Handler::GasPrice;
    case Opcode::EXTCODESIZE: return Handler::ExtCodeSize;
    case Opcode::EXTCODECOPY: return Handler::ExtCodeCopy;
    case Opcode::RETURNDATASIZE: return Handler::ReturnDataSize;
    case Opcode::RETURNDATACOPY: return Handler::ReturnDataCopy;
    case Opcode::BLOCKHASH: return Handler::BlockHash;
    case Opcode::COINBASE: return Handler::Coinbase;
    case Opcode::TIMESTAMP: return Handler::Timestamp;
    case Opcode::NUMBER: return Handler::Number;
    case Opcode::DIFFICULTY: return Handler::Difficulty;
    case Opcode::GASLIMIT: return Handler::GasLimit;
    case Opcode::POP: return Handler::Pop;
    case Opcode::MLOAD: return Handler::MLoad;
    case Opcode::MSTORE: return Handler::MStore;
    case Opcode::MSTORE8: return Handler::MStore8;
    case Opcode::SLOAD: return Handler::SLoad;
    case Opcode::SSTORE: return Handler::SStore;
    case Opcode::JUMP: return Handler::Jump;
    case Opcode::JUMPI: return Handler::JumpI;
    case Opcode::PC: return Handler::Pc;
    case Opcode::MSIZE: return Handler::MSize;
    case Opcode::GAS: return Handler::Gas;
    case Opcode::JUMPDEST: return Handler::JumpDest;
    case Opcode::CREATE: return Handler::Create;
    case Opcode::CALL: return Handler::Call;
    case Opcode::CALLCODE: return Handler::CallCode;
    case Opcode::DELEGATECALL: return Handler::DelegateCall;
    case Opcode::STATICCALL: return Handler::StaticCall;
    case Opcode::RETURN: return Handler::Return;
    case Opcode::REVERT: return Handler::Revert;
    case Opcode::INVALID: return Handler::Invalid;
    case Opcode::SELFDESTRUCT: return Handler::SelfDestruct;
    default: return Handler::Undefined;
  }
}

bool is_fusible_bin(Handler h) {
  switch (h) {
    case Handler::Add:
    case Handler::Mul:
    case Handler::Sub:
    case Handler::Div:
    case Handler::Sdiv:
    case Handler::Mod:
    case Handler::Smod:
    case Handler::Lt:
    case Handler::Gt:
    case Handler::Slt:
    case Handler::Sgt:
    case Handler::Eq:
    case Handler::And:
    case Handler::Or:
    case Handler::Xor:
    case Handler::Byte:
    case Handler::Shl:
    case Handler::Shr:
    case Handler::Sar:
    case Handler::SignExtend:
      return true;
    default:
      return false;
  }
}

DecodedProgram translate(std::span<const std::uint8_t> code,
                         const TranslationProfile& profile) {
  DecodedProgram p;
  p.code_size = code.size();
  p.jump_map.assign(code.size(), kNoJumpTarget);
  p.insts.reserve(code.size() / 2 + 1);

  // Pass 1: linear decode. Advancing past PUSH immediates here is what
  // makes "JUMPDEST inside pushdata" invalid, exactly like CodeAnalysis.
  for (std::uint64_t pc = 0; pc < code.size();) {
    const std::uint8_t op = code[pc];
    DecodedInst inst;
    inst.pc = static_cast<std::uint32_t>(pc);
    // Any JUMPDEST byte outside pushdata is a valid jump target, even if
    // the profile would refuse to *execute* it (the jump then lands on a
    // Forbidden trap, matching the raw path's CodeAnalysis bitmap).
    if (op == static_cast<std::uint8_t>(Opcode::JUMPDEST)) {
      p.jump_map[pc] = static_cast<std::uint32_t>(p.insts.size());
    }
    switch (classify(op, profile.tiny_profile, profile.iot_opcodes,
                     profile.block_opcodes)) {
      case OpValidity::Undefined:
        inst.handler = Handler::Undefined;
        break;
      case OpValidity::Forbidden:
        inst.handler = Handler::Forbidden;
        break;
      case OpValidity::Ok: {
        const OpInfo& inf = info(op);
        inst.handler = exec_handler(op);
        inst.gas = inf.base_gas;
        inst.cycles = inf.mcu_cycles;
        if (is_push(op)) {
          const unsigned n = push_size(op);
          inst.aux = static_cast<std::uint8_t>(n);
          inst.imm = load_push(code.data() + pc + 1, code.size() - pc - 1, n);
        } else if (is_dup(op)) {
          inst.aux = static_cast<std::uint8_t>(op - 0x7f);
        } else if (is_swap(op)) {
          inst.aux = static_cast<std::uint8_t>(op - 0x8f);
        } else if (is_log(op)) {
          inst.aux = static_cast<std::uint8_t>(op - 0xa0);
        }
        break;
      }
    }
    p.insts.push_back(inst);
    pc += 1 + push_size(op);
  }

  // Pass 2: peephole fusion of adjacent pairs. Jumps only ever land on
  // JUMPDEST instructions, so control flow can never enter a pair at its
  // second instruction; that instruction stays in the stream untouched as
  // the fallback continuation for the run-time edges (gas, watchdog,
  // stack limits) where the pair must not fuse. Heads (PUSH/DUP/SWAP1)
  // and seconds (binary ops, JUMP/JUMPI) are disjoint sets, so fusing one
  // pair never consumes the head of the next.
  for (std::size_t i = 0; i + 1 < p.insts.size(); ++i) {
    DecodedInst& a = p.insts[i];
    const DecodedInst& b = p.insts[i + 1];
    if (a.handler == Handler::Push) {
      if (is_fusible_bin(b.handler)) {
        a.handler = Handler::PushBin;
      } else if (b.handler == Handler::Jump ||
                 b.handler == Handler::JumpI) {
        a.handler = b.handler == Handler::Jump ? Handler::PushJump
                                               : Handler::PushJumpI;
        if (a.imm.fits_u64() && a.imm.as_u64() < code.size()) {
          a.target = p.jump_map[a.imm.as_u64()];
        }
      } else {
        continue;
      }
    } else if (a.handler == Handler::Dup && is_fusible_bin(b.handler)) {
      a.handler = Handler::DupBin;
    } else if (a.handler == Handler::Swap && a.aux == 1 &&
               is_fusible_bin(b.handler)) {
      a.handler = Handler::SwapBin;
    } else {
      continue;
    }
    a.aux2 = static_cast<std::uint8_t>(b.handler);
    a.gas2 = b.gas;
    a.cycles2 = b.cycles;
  }

  // Pass 3: static analysis — the whole-contract constant dataflow resolves
  // dynamic jumps with propagated-constant operands and dead-marks
  // unreachable JUMPDEST leaders, then each live block leader's elidable
  // run (plus any statically-known tail jump) is folded into an ElideSpan
  // so run_decoded() can hoist the per-instruction checks.
  analyze_for_translation(p);

  p.insts.shrink_to_fit();
  return p;
}

}  // namespace tinyevm::evm
