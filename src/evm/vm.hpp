// The TinyEVM interpreter.
//
// One interpreter, two profiles (paper §IV-B): the Ethereum profile meters
// gas, allows a 1024-deep stack and the blockchain opcodes; the TinyEVM
// profile removes gas ("no charging for the off-chain computations"), caps
// the stack at 3 KB / memory at 8 KB, truncates storage keys to 8 bits, and
// enables the 0x0c SENSOR opcode.
//
// Execution itself happens behind the EVMC-style boundary in engine.hpp:
// Vm resolves an ExecutionEngine from the registry (by VmConfig::engine,
// with the legacy predecode/elide_checks flags as the fallback mapping),
// consults the translation cache when the engine wants a pre-decoded
// stream, and dispatches — Vm::execute is cache lookup + engine dispatch,
// nothing more.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "evm/engine.hpp"
#include "evm/host.hpp"
#include "evm/opcodes.hpp"
#include "evm/state.hpp"
#include "u256/u256.hpp"

namespace tinyevm::evm {

class CodeCache;

enum class VmProfile : std::uint8_t { Ethereum, TinyEvm };

struct VmConfig {
  VmProfile profile = VmProfile::TinyEvm;
  std::size_t stack_limit = 96;      ///< elements (96 * 32 B = 3 KB)
  std::size_t memory_limit = 8192;   ///< bytes; 0 = unbounded (gas-bounded)
  std::size_t storage_limit = 1024;  ///< TinyEVM side-chain budget (bytes)
  bool metering = false;             ///< charge gas, abort on exhaustion
  bool block_opcodes = false;        ///< BLOCKHASH..GASLIMIT available
  bool iot_opcodes = true;           ///< SENSOR (0x0c) available
  bool gas_introspection = false;    ///< GAS/GASPRICE/EXTCODE* available
  int max_call_depth = 8;            ///< nested frames an MCU can afford
  /// Watchdog: abort after this many executed operations (0 = unlimited).
  /// Gas bounds on-chain execution; off-chain the mote's watchdog timer
  /// plays that role — without it a buggy contract would wedge the device.
  std::uint64_t max_ops = 50'000'000;
  /// Legacy engine-selection flag: lower bytecode to a cached pre-decoded
  /// instruction stream before executing (see decoded.hpp /
  /// code_cache.hpp). Consulted only when `engine` is empty — off maps to
  /// the "raw" engine. Not part of the semantics: every engine must
  /// produce bit-identical results (tests/evm_dispatch_test.cpp).
  bool predecode = true;
  /// Legacy engine-selection flag: use the translation's static-analysis
  /// spans (decoded.hpp::ElideSpan) to replace per-instruction
  /// stack/gas/watchdog branches with one test per basic block where the
  /// analyzer proved them redundant. Consulted only when `engine` is
  /// empty — predecode without elision maps to "predecoded", with it to
  /// "elided". Also not semantics: results stay bit-identical either way.
  bool elide_checks = true;
  /// Execution engine name (EngineRegistry). Empty = derive from the
  /// legacy predecode/elide_checks flags above; unknown names make the Vm
  /// constructor throw std::invalid_argument.
  std::string engine;

  /// Original EVM (Istanbul-era) semantics.
  static VmConfig ethereum() {
    return VmConfig{.profile = VmProfile::Ethereum,
                    .stack_limit = 1024,
                    .memory_limit = 0,
                    .storage_limit = 0,
                    .metering = true,
                    .block_opcodes = true,
                    .iot_opcodes = false,
                    .gas_introspection = true,
                    .max_call_depth = 1024,
                    .max_ops = 0,
                    .predecode = true,
                    .elide_checks = true,
                    .engine = {}};
  }
  /// The paper's MCU configuration (§VI-A).
  static VmConfig tiny() { return VmConfig{}; }
};

/// Execution request: run `code` in the context of account `self`.
struct Message {
  Address self{};
  Address caller{};
  Address origin{};
  U256 value;
  Bytes data;
  Bytes code;
  /// keccak256(code) when the caller already knows it (the chain caches it
  /// per account); saves the translation cache a rehash per execution.
  std::optional<Hash256> code_hash;
  std::int64_t gas = 10'000'000;
  int depth = 0;
  bool is_static = false;
  /// Per-call engine override (EngineRegistry name). Empty = the Vm's
  /// configured engine; unknown names make Vm::execute throw.
  std::string engine;
  /// Optional jump-trace collector, forwarded to the engine (see
  /// EngineMessage::jump_trace). Test/fuzz instrumentation only.
  std::vector<JumpEdge>* jump_trace = nullptr;
};

/// Execution results are the flat engine-boundary struct (engine.hpp).
using ExecResult = EngineResult;

/// JUMPDEST bitmap produced by one linear pre-pass over the code (PUSH
/// immediates are skipped, so data bytes can't alias a jump target).
class CodeAnalysis {
 public:
  explicit CodeAnalysis(std::span<const std::uint8_t> code);
  [[nodiscard]] bool valid_jumpdest(std::uint64_t pc) const {
    return pc < jumpdest_.size() && jumpdest_[pc];
  }

 private:
  std::vector<bool> jumpdest_;
};

/// Executes one message through the configured ExecutionEngine. Nested
/// CALL/CREATE are delegated to the host, which typically re-enters
/// another Vm::execute with depth+1.
///
/// When the engine consumes translations (every built-in except "raw"),
/// execution first consults a translation cache (code_cache.hpp) for a
/// pre-decoded instruction stream keyed by keccak256(code); a null `cache`
/// means the process-wide CodeCache::shared_default(), so independent Vm
/// instances reuse each other's translations.
class Vm {
 public:
  /// Throws std::invalid_argument when config.engine names no registered
  /// engine.
  explicit Vm(VmConfig config, std::shared_ptr<CodeCache> cache = nullptr);

  [[nodiscard]] const VmConfig& config() const { return config_; }
  /// The flat semantics descriptor handed to engines.
  [[nodiscard]] const EngineProfile& profile() const { return profile_; }
  /// The resolved default engine's registry name.
  [[nodiscard]] std::string_view engine_name() const {
    return engine_->name();
  }
  /// The translation cache this Vm consults.
  [[nodiscard]] const std::shared_ptr<CodeCache>& code_cache() const {
    return cache_;
  }

  /// Throws std::invalid_argument when msg.engine names no registered
  /// engine.
  ExecResult execute(Host& host, const Message& msg) const;

 private:
  VmConfig config_;
  EngineProfile profile_;
  const ExecutionEngine* engine_;  // registry-owned, process lifetime
  std::shared_ptr<const DispatchTable> dispatch_;
  std::shared_ptr<CodeCache> cache_;
};

}  // namespace tinyevm::evm
