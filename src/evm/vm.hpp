// The TinyEVM interpreter.
//
// One interpreter, two profiles (paper §IV-B): the Ethereum profile meters
// gas, allows a 1024-deep stack and the blockchain opcodes; the TinyEVM
// profile removes gas ("no charging for the off-chain computations"), caps
// the stack at 3 KB / memory at 8 KB, truncates storage keys to 8 bits, and
// enables the 0x0c SENSOR opcode.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "evm/host.hpp"
#include "evm/opcodes.hpp"
#include "evm/state.hpp"
#include "u256/u256.hpp"

namespace tinyevm::evm {

class CodeCache;

enum class VmProfile : std::uint8_t { Ethereum, TinyEvm };

struct VmConfig {
  VmProfile profile = VmProfile::TinyEvm;
  std::size_t stack_limit = 96;      ///< elements (96 * 32 B = 3 KB)
  std::size_t memory_limit = 8192;   ///< bytes; 0 = unbounded (gas-bounded)
  std::size_t storage_limit = 1024;  ///< TinyEVM side-chain budget (bytes)
  bool metering = false;             ///< charge gas, abort on exhaustion
  bool block_opcodes = false;        ///< BLOCKHASH..GASLIMIT available
  bool iot_opcodes = true;           ///< SENSOR (0x0c) available
  bool gas_introspection = false;    ///< GAS/GASPRICE/EXTCODE* available
  int max_call_depth = 8;            ///< nested frames an MCU can afford
  /// Watchdog: abort after this many executed operations (0 = unlimited).
  /// Gas bounds on-chain execution; off-chain the mote's watchdog timer
  /// plays that role — without it a buggy contract would wedge the device.
  std::uint64_t max_ops = 50'000'000;
  /// Lower bytecode to a cached pre-decoded instruction stream before
  /// executing (see decoded.hpp / code_cache.hpp). Not part of the
  /// semantics: the raw threaded loop — which also serves as the
  /// translate-miss / oversized-code fallback — must produce bit-identical
  /// results (tests/evm_dispatch_test.cpp).
  bool predecode = true;
  /// Use the translation's static-analysis spans (decoded.hpp::ElideSpan)
  /// to replace per-instruction stack/gas/watchdog branches with one test
  /// per basic block where the analyzer proved them redundant. Also not
  /// part of the semantics: the checked handlers remain the fallback for
  /// unprovable blocks and for entry tests that fail, and results stay
  /// bit-identical either way (the differential suite holds all three
  /// paths — raw, checked, elided — to the same outputs).
  bool elide_checks = true;

  /// Original EVM (Istanbul-era) semantics.
  static VmConfig ethereum() {
    return VmConfig{VmProfile::Ethereum, 1024,  0,    0,   true,
                    true,                false, true, 1024, 0};
  }
  /// The paper's MCU configuration (§VI-A).
  static VmConfig tiny() { return VmConfig{}; }
};

enum class Status : std::uint8_t {
  Success,
  Revert,
  OutOfGas,
  StackOverflow,
  StackUnderflow,
  OutOfMemory,       ///< TinyEVM 8 KB memory cap exceeded
  StorageExhausted,  ///< TinyEVM 1 KB side-chain storage cap exceeded
  InvalidJump,
  InvalidOpcode,     ///< undefined byte, or INVALID (0xfe)
  ForbiddenOpcode,   ///< opcode not in the active profile
  SensorFailure,     ///< SENSOR opcode: no such device / read failed
  CallDepthExceeded,
  StaticViolation,   ///< state mutation inside STATICCALL
  WatchdogExpired,   ///< VmConfig::max_ops exceeded (runaway off-chain code)
};

[[nodiscard]] std::string_view to_string(Status s);

/// Execution request: run `code` in the context of account `self`.
struct Message {
  Address self{};
  Address caller{};
  Address origin{};
  U256 value;
  Bytes data;
  Bytes code;
  /// keccak256(code) when the caller already knows it (the chain caches it
  /// per account); saves the translation cache a rehash per execution.
  std::optional<Hash256> code_hash;
  std::int64_t gas = 10'000'000;
  int depth = 0;
  bool is_static = false;
};

/// Per-run statistics consumed by the evaluation harness (Figures 3/4,
/// Table II).
struct ExecStats {
  std::size_t max_stack_pointer = 0;  ///< Fig 3c
  std::size_t peak_memory = 0;        ///< Fig 3a/3b (bytes)
  std::uint64_t ops_executed = 0;
  std::uint64_t mcu_cycles = 0;       ///< Fig 4 (deployment time model)
};

struct ExecResult {
  Status status = Status::Success;
  Bytes output;
  std::int64_t gas_left = 0;
  ExecStats stats;

  [[nodiscard]] bool ok() const { return status == Status::Success; }
};

/// JUMPDEST bitmap produced by one linear pre-pass over the code (PUSH
/// immediates are skipped, so data bytes can't alias a jump target).
class CodeAnalysis {
 public:
  explicit CodeAnalysis(std::span<const std::uint8_t> code);
  [[nodiscard]] bool valid_jumpdest(std::uint64_t pc) const {
    return pc < jumpdest_.size() && jumpdest_[pc];
  }

 private:
  std::vector<bool> jumpdest_;
};

/// 256-entry opcode -> handler dispatch table with the per-opcode static
/// gas and MCU-cycle model folded into each entry, so the interpreter's
/// common case is a single table load (no separate validity/gas switches).
/// Built once per Vm from the profile flags; opaque outside the
/// interpreter translation unit.
struct DispatchTable;

/// Executes one message. Nested CALL/CREATE are delegated to the host,
/// which typically re-enters another Vm::execute with depth+1.
///
/// When `config.predecode` is on (the default), execution first consults a
/// translation cache (code_cache.hpp) for a pre-decoded instruction stream
/// keyed by keccak256(code); a null `cache` means the process-wide
/// CodeCache::shared_default(), so independent Vm instances reuse each
/// other's translations.
class Vm {
 public:
  explicit Vm(VmConfig config, std::shared_ptr<CodeCache> cache = nullptr);

  [[nodiscard]] const VmConfig& config() const { return config_; }
  /// The translation cache this Vm consults.
  [[nodiscard]] const std::shared_ptr<CodeCache>& code_cache() const {
    return cache_;
  }

  ExecResult execute(Host& host, const Message& msg) const;

 private:
  VmConfig config_;
  std::shared_ptr<const DispatchTable> dispatch_;
  std::shared_ptr<CodeCache> cache_;
};

}  // namespace tinyevm::evm
